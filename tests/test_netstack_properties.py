"""Hypothesis property tests for the netstack wire primitives.

The evasion strategies stand on two low-level behaviours: IP-fragment
reassembly under an explicit overlap policy (the §3.2 discrepancy lever)
and TCP-option (de)serialization (the §5.3 insertion vehicles).  These
properties pin them for arbitrary inputs, not just the happy paths the
strategies happen to exercise:

- fragment/reassemble round-trips for any payload and any legal
  fragment size, in any delivery order;
- overlapping fragments resolve exactly per FIRST_WINS/LAST_WINS, at
  byte granularity, for arbitrary overlap geometries;
- option lists survive serialize -> parse for every modelled option and
  for unknown (Raw) kinds, under NOP padding.
"""

from hypothesis import given, settings, strategies as st

from repro.netstack.fragment import (
    FragmentReassembler,
    OverlapPolicy,
    fragment_packet,
    make_fragment,
)
from repro.netstack.options import (
    KIND_MD5SIG,
    MD5SignatureOption,
    MSSOption,
    RawOption,
    SACKPermittedOption,
    TimestampOption,
    WindowScaleOption,
    find_option,
    parse_options,
    serialize_options,
)
from repro.netstack.packet import ACK, PSH, tcp_packet
from repro.netstack.wire import transport_bytes


def _keyword_packet(payload: bytes):
    return tcp_packet(
        src="10.0.0.1", dst="10.0.0.2", src_port=32768, dst_port=80,
        flags=PSH | ACK, seq=1000, ack=2000, payload=payload,
    )


# ---------------------------------------------------------------------------
# fragmentation round-trips
# ---------------------------------------------------------------------------
@settings(max_examples=120, deadline=None)
@given(
    payload=st.binary(min_size=0, max_size=160),
    fragment_units=st.integers(1, 8),
    shuffle_seed=st.randoms(use_true_random=False),
)
def test_fragment_reassemble_round_trip_any_order(
    payload, fragment_units, shuffle_seed
):
    packet = _keyword_packet(payload)
    fragment_size = fragment_units * 8
    body = transport_bytes(packet)
    if fragment_size >= len(body):
        return  # fragment_packet rejects degenerate splits (tested below)
    fragments = fragment_packet(packet, fragment_size)

    # Geometry: 8-byte aligned offsets, last fragment closes the body.
    assert [f.frag_offset * 8 for f in fragments] == list(
        range(0, len(body), fragment_size)
    )
    assert all(f.more_fragments for f in fragments[:-1])
    assert not fragments[-1].more_fragments
    assert b"".join(bytes(f.payload) for f in fragments) == body

    shuffled = list(fragments)
    shuffle_seed.shuffle(shuffled)
    reassembler = FragmentReassembler(OverlapPolicy.LAST_WINS)
    results = [reassembler.add(fragment) for fragment in shuffled]
    completed = [packet for packet in results if packet is not None]
    assert results[:-1] == [None] * (len(shuffled) - 1)
    assert len(completed) == 1
    segment = completed[0].payload
    assert segment.payload == payload
    assert (segment.src_port, segment.dst_port) == (32768, 80)
    assert reassembler.pending_count() == 0


@settings(max_examples=60, deadline=None)
@given(
    payload=st.binary(min_size=0, max_size=40),
    fragment_units=st.integers(1, 8),
)
def test_fragment_packet_rejects_degenerate_sizes(payload, fragment_units):
    import pytest

    packet = _keyword_packet(payload)
    body = transport_bytes(packet)
    with pytest.raises(ValueError):
        fragment_packet(packet, fragment_units * 8 + 1)  # unaligned
    with pytest.raises(ValueError):
        fragment_packet(packet, (len(body) // 8 + 1) * 8)  # >= payload


# ---------------------------------------------------------------------------
# overlap policies, byte-granular
# ---------------------------------------------------------------------------
def _wire_normalized(body: bytes) -> bytes:
    """serialize_tcp re-emits the data-offset byte with the reserved
    nibble zeroed and masks flags to the six classic bits; apply the
    same normalization to a raw reference body so it can be compared
    against a parse -> serialize round-trip."""
    normalized = bytearray(body)
    normalized[12] &= 0xF0
    normalized[13] &= 0x3F
    return bytes(normalized)


@settings(max_examples=120, deadline=None)
@given(
    # >= 3 units so the reassembled body holds a full TCP header
    # (parse_tcp rejects anything shorter than 20 bytes).
    total_units=st.integers(3, 6),
    overlap_start_units=st.integers(0, 5),
    overlap_units=st.integers(1, 6),
    first_wins=st.booleans(),
)
def test_overlap_resolution_matches_policy_reference(
    total_units, overlap_start_units, overlap_units, first_wins
):
    """A garbage fragment overlapping the real body resolves exactly as
    a byte-wise first-wins/last-wins reference predicts."""
    total = total_units * 8
    start = min(overlap_start_units, total_units - 1) * 8
    length = min(overlap_units * 8, total - start)

    real = bytes(range(32, 32 + total))
    garbage = bytes([0xEE]) * length
    packet = _keyword_packet(b"")
    base = make_fragment(packet, real, 0, more_fragments=True)
    tail = make_fragment(packet, b"", total, more_fragments=False)
    overlap = make_fragment(packet, garbage, start, more_fragments=True)

    policy = OverlapPolicy.FIRST_WINS if first_wins else OverlapPolicy.LAST_WINS
    reassembler = FragmentReassembler(policy)
    assert reassembler.add(base) is None
    assert reassembler.add(overlap) is None
    completed = reassembler.add(tail)
    assert completed is not None

    expected = bytearray(real)
    if not first_wins:
        expected[start : start + length] = garbage
    observed = transport_bytes(completed)
    assert observed == _wire_normalized(bytes(expected))


def test_same_offset_same_length_discrepancy():
    """The paper's §3.2 lever verbatim: two fragments at the same offset
    and length — the GFW (first-wins) keeps the former, a last-wins
    stack keeps the latter."""
    packet = _keyword_packet(b"")
    former = bytes([0xAA]) * 24
    latter = bytes([0xBB]) * 24
    kept = {}
    for policy in (OverlapPolicy.FIRST_WINS, OverlapPolicy.LAST_WINS):
        reassembler = FragmentReassembler(policy)
        assert reassembler.add(
            make_fragment(packet, former, 0, more_fragments=True)
        ) is None
        assert reassembler.add(
            make_fragment(packet, latter, 0, more_fragments=True)
        ) is None
        completed = reassembler.add(
            make_fragment(packet, b"", 24, more_fragments=False)
        )
        assert completed is not None
        kept[policy] = transport_bytes(completed)
    assert kept[OverlapPolicy.FIRST_WINS] == _wire_normalized(former)
    assert kept[OverlapPolicy.LAST_WINS] == _wire_normalized(latter)


# ---------------------------------------------------------------------------
# TCP options round-trips
# ---------------------------------------------------------------------------
_option = st.one_of(
    st.builds(MSSOption, mss=st.integers(0, 0xFFFF)),
    st.builds(WindowScaleOption, shift=st.integers(0, 14)),
    st.builds(SACKPermittedOption),
    st.builds(
        TimestampOption,
        tsval=st.integers(0, 0xFFFFFFFF),
        tsecr=st.integers(0, 0xFFFFFFFF),
    ),
    st.builds(MD5SignatureOption, digest=st.binary(min_size=16, max_size=16)),
    st.builds(
        RawOption,
        # Steer clear of kinds the parser maps back to typed options and
        # of EOL/NOP, which are padding, not options.
        raw_kind=st.integers(40, 252),
        data=st.binary(min_size=0, max_size=12),
    ),
)


@settings(max_examples=150, deadline=None)
@given(options=st.lists(_option, min_size=0, max_size=6))
def test_options_round_trip_through_serialize_parse(options):
    blob = serialize_options(options)
    assert len(blob) % 4 == 0  # NOP-padded to a header-legal length
    parsed = parse_options(blob)
    assert parsed == options


@settings(max_examples=150, deadline=None)
@given(blob=st.binary(min_size=0, max_size=60))
def test_parse_options_is_total_on_arbitrary_bytes(blob):
    """Lenient parsing never raises, and whatever it accepts must
    re-serialize back to parseable bytes (parse is a retraction)."""
    parsed = parse_options(blob)
    again = parse_options(serialize_options(parsed))
    assert again == parsed


@settings(max_examples=60, deadline=None)
@given(digest=st.binary(min_size=16, max_size=16))
def test_md5sig_survives_round_trip_and_is_findable(digest):
    options = [TimestampOption(tsval=1, tsecr=2), MD5SignatureOption(digest)]
    parsed = parse_options(serialize_options(options))
    found = find_option(parsed, KIND_MD5SIG)
    assert isinstance(found, MD5SignatureOption)
    assert found.digest == digest
    assert find_option(parsed, 77) is None


def test_md5sig_rejects_bad_digest_length():
    import pytest

    with pytest.raises(ValueError):
        MD5SignatureOption(digest=b"\x00" * 15)
