"""Unit tests for the packet dataclasses and sequence arithmetic."""

import pytest
from hypothesis import given, strategies as st

from repro.netstack.packet import (
    ACK,
    FIN,
    IPPacket,
    PSH,
    RST,
    SYN,
    TCPSegment,
    UDPDatagram,
    flags_to_str,
    in_window,
    int_to_ip,
    ip_to_int,
    seq_add,
    seq_lt,
    seq_lte,
    seq_sub,
    tcp_packet,
    udp_packet,
)


class TestFlags:
    def test_pure_syn(self):
        assert TCPSegment(1, 2, flags=SYN).is_pure_syn
        assert not TCPSegment(1, 2, flags=SYN | ACK).is_pure_syn

    def test_synack(self):
        assert TCPSegment(1, 2, flags=SYN | ACK).is_synack
        assert not TCPSegment(1, 2, flags=SYN).is_synack
        assert not TCPSegment(1, 2, flags=SYN | ACK | RST).is_synack

    def test_no_flags(self):
        assert TCPSegment(1, 2, flags=0).has_no_flags
        assert not TCPSegment(1, 2, flags=ACK).has_no_flags

    def test_flag_string(self):
        assert flags_to_str(SYN | ACK) == "SA"
        assert flags_to_str(RST) == "R"
        assert flags_to_str(FIN | PSH | ACK) == "FPA"
        assert flags_to_str(0) == "-"


class TestSequenceSpace:
    def test_seg_len_counts_syn_and_fin(self):
        assert TCPSegment(1, 2, flags=SYN).seg_len == 1
        assert TCPSegment(1, 2, flags=FIN, payload=b"ab").seg_len == 3
        assert TCPSegment(1, 2, flags=ACK, payload=b"abc").seg_len == 3

    def test_end_seq_wraps(self):
        segment = TCPSegment(1, 2, seq=0xFFFFFFFF, flags=SYN)
        assert segment.end_seq == 0

    def test_seq_lt_wraparound(self):
        assert seq_lt(0xFFFFFFF0, 5)
        assert not seq_lt(5, 0xFFFFFFF0)
        assert seq_lt(1, 2)
        assert not seq_lt(2, 2)

    def test_seq_lte(self):
        assert seq_lte(2, 2)
        assert seq_lte(1, 2)

    def test_seq_sub_signed(self):
        assert seq_sub(10, 3) == 7
        assert seq_sub(3, 10) == -7
        assert seq_sub(2, 0xFFFFFFFE) == 4

    def test_in_window(self):
        assert in_window(105, 100, 10)
        assert in_window(100, 100, 10)
        assert not in_window(110, 100, 10)
        assert in_window(2, 0xFFFFFFFE, 10)

    @given(st.integers(0, 2**32 - 1), st.integers(0, 2**31 - 2))
    def test_seq_add_sub_roundtrip(self, base, delta):
        assert seq_sub(seq_add(base, delta), base) == delta


class TestAddresses:
    def test_roundtrip(self):
        for address in ("0.0.0.0", "255.255.255.255", "10.1.2.3"):
            assert int_to_ip(ip_to_int(address)) == address

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            ip_to_int("300.1.1.1")
        with pytest.raises(ValueError):
            ip_to_int("1.2.3")
        with pytest.raises(ValueError):
            int_to_ip(2**32)

    @given(st.integers(0, 2**32 - 1))
    def test_int_roundtrip(self, value):
        assert ip_to_int(int_to_ip(value)) == value


class TestIPPacket:
    def test_protocol_detection(self):
        assert tcp_packet("1.1.1.1", "2.2.2.2", 1, 2).protocol == 6
        assert udp_packet("1.1.1.1", "2.2.2.2", 1, 2).protocol == 17

    def test_accessors_raise_on_wrong_kind(self):
        packet = udp_packet("1.1.1.1", "2.2.2.2", 1, 2)
        with pytest.raises(TypeError):
            _ = packet.tcp
        packet = tcp_packet("1.1.1.1", "2.2.2.2", 1, 2)
        with pytest.raises(TypeError):
            _ = packet.udp

    def test_flow_key_directional(self):
        packet = tcp_packet("1.1.1.1", "2.2.2.2", 1000, 80)
        assert packet.flow_key() == ("1.1.1.1", 1000, "2.2.2.2", 80)

    def test_connection_key_direction_agnostic(self):
        forward = tcp_packet("1.1.1.1", "2.2.2.2", 1000, 80)
        backward = tcp_packet("2.2.2.2", "1.1.1.1", 80, 1000)
        assert forward.connection_key() == backward.connection_key()

    def test_fragment_flag(self):
        packet = tcp_packet("1.1.1.1", "2.2.2.2", 1, 2)
        assert not packet.is_fragment
        packet.more_fragments = True
        assert packet.is_fragment

    def test_copy_is_deep_for_payload_and_meta(self):
        packet = tcp_packet("1.1.1.1", "2.2.2.2", 1, 2, payload=b"x")
        packet.meta["origin"] = "a"
        duplicate = packet.copy()
        duplicate.tcp.seq = 99
        duplicate.meta["origin"] = "b"
        assert packet.tcp.seq == 0
        assert packet.meta["origin"] == "a"

    def test_segment_copy_does_not_share_options(self):
        from repro.netstack.options import MSSOption

        segment = TCPSegment(1, 2, options=[MSSOption()])
        duplicate = segment.copy()
        duplicate.options.append(MSSOption(mss=5))
        assert len(segment.options) == 1

    def test_summary_mentions_corruption(self):
        segment = TCPSegment(1, 2, checksum_override=0xBEEF)
        assert "badcsum" in segment.summary()

    def test_udp_summary(self):
        assert "UDP" in UDPDatagram(5, 53, b"abc").summary()

    def test_packet_summary_includes_ttl(self):
        packet = tcp_packet("1.1.1.1", "2.2.2.2", 1, 2, ttl=7)
        assert "ttl=7" in packet.summary()
