"""Per-kernel behaviour divergence tests — the §5.3 cross-validation
findings, asserted stack-by-stack."""

import pytest

from repro.netstack.options import MD5SignatureOption
from repro.netstack.packet import ACK, IPPacket, RST, SYN, TCPSegment, seq_add
from repro.tcp.profiles import (
    ALL_PROFILES,
    LINUX_2_4_37,
    LINUX_2_6_34,
    LINUX_3_14,
    LINUX_4_0,
    LINUX_4_4,
    profile_by_name,
)
from repro.tcp.tcb import TCPState

from helpers import CLIENT_IP, SERVER_IP, mini_topology


def _established_world(profile):
    world = mini_topology(with_gfw=False, server_profile=profile)
    connection = world.client_tcp.connect(SERVER_IP, 80)
    world.run(1.0)
    server = world.server_tcp.connections[(80, CLIENT_IP, connection.tcb.local_port)]
    assert server.state is TCPState.ESTABLISHED
    return world, connection, server


class TestProfileLookup:
    def test_all_profiles_resolvable(self):
        for profile in ALL_PROFILES:
            assert profile_by_name(profile.name) is profile

    def test_unknown_profile_raises(self):
        with pytest.raises(KeyError):
            profile_by_name("linux-9.99")

    def test_describe_mentions_name(self):
        assert "linux-4.4" in LINUX_4_4.describe()


class TestSynInEstablished:
    """§5.3 finding 1: 4.x challenge-ACKs, 3.14 silently ignores,
    pre-3.x resets per RFC 793."""

    def _fire_syn(self, profile):
        world, connection, server = _established_world(profile)
        syn = connection.make_packet(flags=SYN, seq=connection.tcb.snd_nxt, ack=0)
        world.client.send_raw(syn)
        world.run(0.5)
        return server

    def test_linux_44_challenge_acks(self):
        server = self._fire_syn(LINUX_4_4)
        assert server.state is TCPState.ESTABLISHED
        assert server.challenge_acks_sent == 1

    def test_linux_40_challenge_acks(self):
        server = self._fire_syn(LINUX_4_0)
        assert server.challenge_acks_sent == 1

    def test_linux_314_silently_ignores(self):
        server = self._fire_syn(LINUX_3_14)
        assert server.state is TCPState.ESTABLISHED
        assert server.challenge_acks_sent == 0

    def test_linux_2634_resets_on_in_window_syn(self):
        server = self._fire_syn(LINUX_2_6_34)
        assert server.state is TCPState.CLOSED

    def test_old_kernel_ignores_out_of_window_syn(self):
        """§5.2's caution: the Resync+Desync fake SYN must be out of the
        server's window precisely so old kernels don't reset."""
        world, connection, server = _established_world(LINUX_2_6_34)
        syn = connection.make_packet(
            flags=SYN, seq=seq_add(connection.tcb.snd_nxt, 0x30000000), ack=0
        )
        world.client.send_raw(syn)
        world.run(0.5)
        assert server.state is TCPState.ESTABLISHED


class TestNoAckFlagData:
    """§5.3 finding 2: 2.6.34/2.4.37 accept data without the ACK flag."""

    @pytest.mark.parametrize(
        "profile,accepted",
        [
            (LINUX_4_4, False),
            (LINUX_3_14, False),
            (LINUX_2_6_34, True),
            (LINUX_2_4_37, True),
        ],
        ids=lambda value: getattr(value, "name", str(value)),
    )
    def test_no_flag_acceptance(self, profile, accepted):
        world, connection, server = _established_world(profile)
        packet = connection.make_packet(flags=0, payload=b"NOFLAGS")
        world.client.send_raw(packet)
        world.run(0.5)
        assert (bytes(server.application_data) == b"NOFLAGS") == accepted


class TestMD5Option:
    """§5.3 finding 3: 2.4.37 predates RFC 2385 and accepts MD5-optioned
    packets."""

    @pytest.mark.parametrize(
        "profile,accepted",
        [(LINUX_4_4, False), (LINUX_2_6_34, False), (LINUX_2_4_37, True)],
        ids=lambda value: getattr(value, "name", str(value)),
    )
    def test_md5_data_acceptance(self, profile, accepted):
        world, connection, server = _established_world(profile)
        packet = connection.make_packet(flags=ACK, payload=b"MD5DATA")
        packet.tcp.options.append(MD5SignatureOption())
        world.client.send_raw(packet)
        world.run(0.5)
        assert (bytes(server.application_data) == b"MD5DATA") == accepted

    def test_md5_rst_resets_2437(self):
        """The paper's caveat: MD5-vehicle RSTs do reset pre-RFC2385
        servers — a Failure 1 source for the improved strategies."""
        world, connection, server = _established_world(LINUX_2_4_37)
        rst = connection.make_packet(flags=RST, seq=connection.tcb.snd_nxt, ack=0)
        rst.tcp.options.append(MD5SignatureOption())
        world.client.send_raw(rst)
        world.run(0.5)
        assert server.state is TCPState.CLOSED

    def test_md5_rst_ignored_by_44(self):
        world, connection, server = _established_world(LINUX_4_4)
        rst = connection.make_packet(flags=RST, seq=connection.tcb.snd_nxt, ack=0)
        rst.tcp.options.append(MD5SignatureOption())
        world.client.send_raw(rst)
        world.run(0.5)
        assert server.state is TCPState.ESTABLISHED


class TestRSTPolicies:
    def test_old_kernel_accepts_in_window_inexact_rst(self):
        world, connection, server = _established_world(LINUX_2_6_34)
        rst = connection.make_packet(
            flags=RST, seq=seq_add(connection.tcb.snd_nxt, 100), ack=0
        )
        world.client.send_raw(rst)
        world.run(0.5)
        assert server.state is TCPState.CLOSED

    def test_modern_kernel_challenges_same_rst(self):
        world, connection, server = _established_world(LINUX_4_4)
        rst = connection.make_packet(
            flags=RST, seq=seq_add(connection.tcb.snd_nxt, 100), ack=0
        )
        world.client.send_raw(rst)
        world.run(0.5)
        assert server.state is TCPState.ESTABLISHED


class TestBadAckAcceptance:
    def test_old_kernel_accepts_bad_ack_data(self):
        """The §3.4 "variations in server implementations" Failure 1."""
        world, connection, server = _established_world(LINUX_2_4_37)
        packet = connection.make_packet(
            flags=ACK, payload=b"JUNK",
            ack=seq_add(connection.tcb.rcv_nxt, 0x30000000),
        )
        world.client.send_raw(packet)
        world.run(0.5)
        assert bytes(server.application_data) == b"JUNK"

    def test_timestampless_kernel_ignores_paws(self):
        """2.4.37 negotiates no timestamps, so stale-TSval packets are
        not filtered — the old-timestamp vehicle fails against it."""
        from repro.netstack.options import TimestampOption

        world, connection, server = _established_world(LINUX_2_4_37)
        assert not server.tcb.timestamps_enabled
        packet = connection.make_packet(flags=ACK, payload=b"STALE")
        packet.tcp.options.append(TimestampOption(tsval=1))
        world.client.send_raw(packet)
        world.run(0.5)
        assert bytes(server.application_data) == b"STALE"
