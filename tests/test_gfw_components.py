"""Unit tests for the GFW's auxiliary components: blacklist, cluster,
DNS poisoner, active prober, and reset-injector signatures."""

import random

import pytest

from repro.gfw.active_prober import ActiveProber
from repro.gfw.blacklist import Blacklist
from repro.gfw.cluster import GFWCluster
from repro.gfw.dns_poisoner import DNSPoisoner, POISONED_ANSWER_IP
from repro.gfw.resets import ResetInjector
from repro.netsim.simclock import SimClock


class TestBlacklist:
    def test_symmetric_keying(self):
        blacklist = Blacklist()
        blacklist.add("1.1.1.1", "2.2.2.2", now=0.0)
        assert blacklist.contains("2.2.2.2", "1.1.1.1", now=1.0)

    def test_expiry(self):
        blacklist = Blacklist(duration=90.0)
        blacklist.add("a", "b", now=0.0)
        assert blacklist.contains("a", "b", now=89.9)
        assert not blacklist.contains("a", "b", now=90.0)

    def test_re_add_extends(self):
        blacklist = Blacklist(duration=90.0)
        blacklist.add("a", "b", now=0.0)
        blacklist.add("a", "b", now=60.0)
        assert blacklist.contains("a", "b", now=120.0)
        assert blacklist.total_blacklistings == 2

    def test_remaining(self):
        blacklist = Blacklist(duration=90.0)
        blacklist.add("a", "b", now=10.0)
        assert blacklist.remaining("a", "b", now=40.0) == pytest.approx(60.0)
        assert blacklist.remaining("x", "y", now=0.0) == 0.0

    def test_clear_and_len(self):
        blacklist = Blacklist()
        blacklist.add("a", "b", now=0.0)
        assert len(blacklist) == 1
        blacklist.clear()
        assert len(blacklist) == 0


class TestCluster:
    def test_miss_draw_is_stable_per_flow(self):
        cluster = GFWCluster(random.Random(1), miss_probability=0.5)
        key = (("a", 1), ("b", 2))
        first = cluster.flow_missed(key)
        assert all(cluster.flow_missed(key) == first for _ in range(10))

    def test_new_trial_redraws(self):
        cluster = GFWCluster(random.Random(2), miss_probability=0.5)
        key = (("a", 1), ("b", 2))
        draws = set()
        for _ in range(20):
            draws.add(cluster.flow_missed(key))
            cluster.new_trial()
        assert draws == {True, False}

    def test_miss_rate_statistics(self):
        cluster = GFWCluster(random.Random(3), miss_probability=0.028)
        misses = 0
        for index in range(2000):
            if cluster.flow_missed((("a", index), ("b", 80))):
                misses += 1
        assert 30 <= misses <= 90  # ~56 expected


class TestResetInjectorSignatures:
    def test_type1_is_single_plain_rst(self):
        injector = ResetInjector(1, random.Random(4), "t1")
        packets = injector.forged_resets(("s", 80), ("c", 999), seq_base=50)
        assert len(packets) == 1
        assert packets[0].tcp.flags == 0x04  # RST only

    def test_type1_random_ttl_and_window(self):
        injector = ResetInjector(1, random.Random(4), "t1")
        ttls = set()
        windows = set()
        for _ in range(30):
            packet = injector.forged_resets(("s", 80), ("c", 9), 0)[0]
            ttls.add(packet.ttl)
            windows.add(packet.tcp.window)
        assert len(ttls) > 10
        assert len(windows) > 20

    def test_type2_three_rstacks_future_offsets(self):
        injector = ResetInjector(2, random.Random(5), "t2")
        packets = injector.forged_resets(("s", 80), ("c", 9), seq_base=1000)
        assert len(packets) == 3
        offsets = [(p.tcp.seq - 1000) & 0xFFFFFFFF for p in packets]
        assert offsets == [0, 1460, 4380]
        assert all(p.tcp.flags == 0x14 for p in packets)  # RST|ACK

    def test_type2_cyclic_ttl(self):
        injector = ResetInjector(2, random.Random(5), "t2")
        ttls = []
        for _ in range(10):
            ttls.extend(
                p.ttl for p in injector.forged_resets(("s", 80), ("c", 9), 0)
            )
        increments = [b - a for a, b in zip(ttls, ttls[1:])]
        assert increments.count(1) >= len(increments) - 2  # cyclic wrap allowed

    def test_forged_synack_acks_syn(self):
        injector = ResetInjector(2, random.Random(6), "t2")
        packet = injector.forged_synack(("s", 80), ("c", 9), acked_seq=500)
        assert packet.tcp.is_synack
        assert packet.tcp.ack == 501
        assert packet.meta["forged"] == "synack"

    def test_invalid_type_rejected(self):
        with pytest.raises(ValueError):
            ResetInjector(3, random.Random(0), "bad")


class TestActiveProber:
    class FakeDevice:
        def __init__(self):
            self.blocked = []

        def block_ip(self, ip):
            self.blocked.append(ip)

    def test_confirmed_probe_blocks_ip(self):
        clock = SimClock()
        prober = ActiveProber(clock, bridge_oracle=lambda ip, port: True,
                              probe_delay=2.0)
        device = self.FakeDevice()
        prober.schedule_probe(device, "9.9.9.9", 443, now=0.0)
        clock.run_for(1.0)
        assert device.blocked == []  # probe still in flight
        clock.run_for(2.0)
        assert device.blocked == ["9.9.9.9"]
        assert prober.confirmed_blocks == ["9.9.9.9"]

    def test_unconfirmed_probe_blocks_nothing(self):
        clock = SimClock()
        prober = ActiveProber(clock, bridge_oracle=lambda ip, port: False)
        device = self.FakeDevice()
        prober.schedule_probe(device, "9.9.9.9", 443, now=0.0)
        clock.run_for(10.0)
        assert device.blocked == []
        assert prober.probes[0][3] is False

    def test_default_oracle_denies(self):
        clock = SimClock()
        prober = ActiveProber(clock)
        device = self.FakeDevice()
        prober.schedule_probe(device, "9.9.9.9", 443, now=0.0)
        clock.run_for(10.0)
        assert device.blocked == []


class TestDNSPoisonerParsing:
    def test_malformed_udp_ignored(self):
        from repro.netstack.packet import udp_packet

        poisoner = DNSPoisoner()

        class FakeDevice:
            class config:
                class rules:
                    @staticmethod
                    def domain_is_poisoned(domain):
                        return True

            def _inject(self, packet):  # pragma: no cover
                raise AssertionError("must not inject for garbage")

        packet = udp_packet("1.1.1.1", "8.8.8.8", 5000, 53, b"\x00\x01")
        poisoner.handle(FakeDevice(), packet, None, 0.0)
        assert poisoner.poisonings == []

    def test_poisoned_answer_constant_is_routable_looking(self):
        from repro.netstack.packet import ip_to_int

        assert ip_to_int(POISONED_ANSWER_IP) > 0
