"""Network traversal tests: TTL, taps vs in-path boxes, loss, injection,
route drift, and the trace recorder."""

import random

import pytest

from repro.netstack.packet import ACK, IPPacket, RST, TCPSegment, tcp_packet
from repro.netsim import (
    Direction,
    Host,
    InlineBox,
    Network,
    Path,
    SimClock,
    Tap,
    TraceRecorder,
)
from repro.netsim.path import ProcessResult

A, B = "10.0.0.1", "10.0.0.9"


class RecordingTap(Tap):
    def __init__(self, name, hop):
        super().__init__(name, hop)
        self.seen = []

    def observe(self, packet, direction, now):
        self.seen.append((packet, direction, now))


class DropBox(InlineBox):
    def __init__(self, name, hop, drop=True):
        super().__init__(name, hop)
        self.drop = drop
        self.seen = 0

    def process(self, packet, direction, now):
        self.seen += 1
        return ProcessResult.drop() if self.drop else ProcessResult.forward()


class Sink(Host):
    def __init__(self, ip, name=None):
        super().__init__(ip, name)
        self.received = []
        self.register_handler(self._take)

    def _take(self, packet, now):
        self.received.append((packet, now))
        return True


def _world(hop_count=10, loss_rate=0.0, seed=1, trace=False):
    clock = SimClock()
    network = Network(
        clock=clock, rng=random.Random(seed),
        trace=TraceRecorder(enabled=trace),
    )
    a = network.add_host(Sink(A, "a"))
    b = network.add_host(Sink(B, "b"))
    path = Path(A, B, hop_count=hop_count, loss_rate=loss_rate)
    network.add_path(path)
    return clock, network, a, b, path


def _pkt(ttl=64, src=A, dst=B):
    return tcp_packet(src, dst, 1000, 80, flags=ACK, ttl=ttl, payload=b"x")


class TestDelivery:
    def test_basic_delivery_with_delay(self):
        clock, net, a, b, path = _world()
        a.send(_pkt())
        clock.run()
        assert len(b.received) == 1
        _, when = b.received[0]
        assert when == pytest.approx(path.base_delay)

    def test_reverse_direction(self):
        clock, net, a, b, path = _world()
        b.send(_pkt(src=B, dst=A))
        clock.run()
        assert len(a.received) == 1

    def test_no_route_counts_undeliverable(self):
        clock, net, a, b, path = _world()
        a.send(_pkt(dst="172.16.0.1"))
        clock.run()
        assert net.undeliverable == 1

    def test_duplicate_host_rejected(self):
        _, net, _, _, _ = _world()
        with pytest.raises(ValueError):
            net.add_host(Host(A))

    def test_duplicate_path_rejected(self):
        _, net, _, _, _ = _world()
        with pytest.raises(ValueError):
            net.add_path(Path(A, B))


class TestTTL:
    def test_packet_with_sufficient_ttl_arrives(self):
        clock, net, a, b, path = _world(hop_count=10)
        a.send(_pkt(ttl=11))
        clock.run()
        assert len(b.received) == 1

    def test_packet_with_exact_hop_count_ttl_dies_at_last_router(self):
        clock, net, a, b, path = _world(hop_count=10)
        a.send(_pkt(ttl=10))
        clock.run()
        assert len(b.received) == 0

    def test_low_ttl_reaches_tap_but_not_destination(self):
        """The core insertion-packet mechanic."""
        clock, net, a, b, path = _world(hop_count=10)
        tap = RecordingTap("tap", hop=4)
        path.add_element(tap)
        a.send(_pkt(ttl=5))
        clock.run()
        assert len(tap.seen) == 1
        assert len(b.received) == 0

    def test_ttl_too_low_even_for_tap(self):
        clock, net, a, b, path = _world(hop_count=10)
        tap = RecordingTap("tap", hop=4)
        path.add_element(tap)
        a.send(_pkt(ttl=4))
        clock.run()
        assert len(tap.seen) == 0

    def test_ttl_decrement_visible_at_tap(self):
        clock, net, a, b, path = _world(hop_count=10)
        tap = RecordingTap("tap", hop=4)
        path.add_element(tap)
        a.send(_pkt(ttl=64))
        clock.run()
        packet, _, _ = tap.seen[0]
        assert packet.ttl == 60

    def test_server_to_client_ttl_accounting(self):
        """TTL is measured from the actual sender, not the path client."""
        clock, net, a, b, path = _world(hop_count=10)
        tap = RecordingTap("tap", hop=4)  # 6 hops from the server end
        path.add_element(tap)
        b.send(_pkt(src=B, dst=A, ttl=7))
        clock.run()
        assert len(tap.seen) == 1  # 7 > 6: reaches the tap…
        assert len(a.received) == 0  # …but dies before the client (10 hops)


class TestElements:
    def test_inline_drop(self):
        clock, net, a, b, path = _world()
        box = DropBox("box", hop=3)
        path.add_element(box)
        a.send(_pkt())
        clock.run()
        assert box.seen == 1
        assert len(b.received) == 0

    def test_inline_forward(self):
        clock, net, a, b, path = _world()
        box = DropBox("box", hop=3, drop=False)
        path.add_element(box)
        a.send(_pkt())
        clock.run()
        assert len(b.received) == 1

    def test_replace_continues_traversal(self):
        class Rewriter(InlineBox):
            def process(self, packet, direction, now):
                replacement = packet.copy()
                replacement.tcp.payload = b"rewritten"
                return ProcessResult.replace([replacement])

        clock, net, a, b, path = _world()
        path.add_element(Rewriter("rw", 3))
        a.send(_pkt())
        clock.run()
        assert b.received[0][0].tcp.payload == b"rewritten"

    def test_elements_visited_in_hop_order(self):
        clock, net, a, b, path = _world()
        taps = [RecordingTap(f"t{i}", hop=i) for i in (7, 2, 5)]
        for tap in taps:
            path.add_element(tap)
        a.send(_pkt())
        clock.run()
        times = {tap.name: tap.seen[0][2] for tap in taps}
        assert times["t2"] < times["t5"] < times["t7"]

    def test_element_outside_path_rejected(self):
        _, _, _, _, path = _world(hop_count=5)
        with pytest.raises(ValueError):
            path.add_element(RecordingTap("bad", hop=5))

    def test_tap_sees_copy_not_original(self):
        class Mutator(Tap):
            def observe(self, packet, direction, now):
                packet.tcp.payload = b"mutated"

        clock, net, a, b, path = _world()
        path.add_element(Mutator("m", 3))
        a.send(_pkt())
        clock.run()
        assert b.received[0][0].tcp.payload == b"x"


class TestInjection:
    def test_tap_injection_toward_client(self):
        clock, net, a, b, path = _world()
        tap = RecordingTap("gfw", hop=4)
        path.add_element(tap)
        a.send(_pkt())
        clock.run()
        forged = tcp_packet(B, A, 80, 1000, flags=RST, ttl=64)
        tap.inject_toward_client(forged)
        clock.run()
        assert any(p.tcp.is_rst for p, _ in a.received)

    def test_tap_injection_toward_server(self):
        clock, net, a, b, path = _world()
        tap = RecordingTap("gfw", hop=4)
        path.add_element(tap)
        forged = tcp_packet(A, B, 1000, 80, flags=RST, ttl=64)
        tap.inject_toward_server(forged)
        clock.run()
        assert any(p.tcp.is_rst for p, _ in b.received)

    def test_injection_requires_attachment(self):
        tap = RecordingTap("stray", hop=1)
        with pytest.raises(RuntimeError):
            tap.inject_toward_client(_pkt())

    def test_injected_packet_arrives_before_original_at_destination(self):
        """A reset injected from mid-path wins the race to the server."""
        clock, net, a, b, path = _world()

        class Injector(Tap):
            def observe(self, packet, direction, now):
                if packet.is_tcp and packet.tcp.has_ack:
                    forged = tcp_packet(A, B, 1000, 80, flags=RST)
                    self.inject_toward_server(forged)

        path.add_element(Injector("inj", hop=5))
        a.send(_pkt())
        clock.run()
        kinds = [("R" if p.tcp.is_rst else "A") for p, _ in b.received]
        assert kinds == ["R", "A"]


class TestLoss:
    def test_lossless_path_delivers_everything(self):
        clock, net, a, b, path = _world(loss_rate=0.0)
        for _ in range(50):
            a.send(_pkt())
        clock.run()
        assert len(b.received) == 50

    def test_full_loss_delivers_nothing(self):
        clock, net, a, b, path = _world(loss_rate=1.0)
        for _ in range(20):
            a.send(_pkt())
        clock.run()
        assert len(b.received) == 0

    def test_loss_rate_statistics(self):
        clock, net, a, b, path = _world(loss_rate=0.3, seed=5)
        for _ in range(400):
            a.send(_pkt())
        clock.run()
        delivered = len(b.received)
        assert 230 <= delivered <= 330  # ~280 expected

    def test_elements_before_drop_hop_still_observe(self):
        """Loss after the tap: the censor sees packets the server never
        gets — a real asymmetry the strategies rely on."""
        clock, net, a, b, path = _world(loss_rate=1.0, seed=3)
        tap = RecordingTap("tap", hop=1)
        path.add_element(tap)
        for _ in range(100):
            a.send(_pkt())
        clock.run()
        assert len(b.received) == 0
        assert len(tap.seen) > 0


class TestRouteDrift:
    def test_server_side_drift_changes_hop_count_only(self):
        _, _, _, _, path = _world(hop_count=10)
        tap = RecordingTap("t", hop=4)
        path.add_element(tap)
        path.drift_server_side(2)
        assert path.hop_count == 12
        assert tap.hop == 4

    def test_client_side_drift_shifts_elements(self):
        _, _, _, _, path = _world(hop_count=10)
        tap = RecordingTap("t", hop=4)
        path.add_element(tap)
        path.drift_client_side(2)
        assert path.hop_count == 12
        assert tap.hop == 6

    def test_invalid_drifts_rejected(self):
        _, _, _, _, path = _world(hop_count=10)
        tap = RecordingTap("t", hop=4)
        path.add_element(tap)
        with pytest.raises(ValueError):
            path.drift_server_side(-7)
        with pytest.raises(ValueError):
            path.drift_client_side(-4)


class TestTrace:
    def test_trace_records_send_observe_deliver(self):
        clock, net, a, b, path = _world(trace=True)
        path.add_element(RecordingTap("tap", hop=4))
        a.send(_pkt())
        clock.run()
        actions = [event.action for event in net.trace.events]
        assert "send" in actions
        assert "observe" in actions
        assert "deliver" in actions

    def test_trace_filter_and_ladder(self):
        clock, net, a, b, path = _world(trace=True)
        a.send(_pkt())
        clock.run()
        sends = net.trace.filter(action="send")
        assert len(sends) == 1
        ladder = net.trace.format_ladder()
        assert "send" in ladder and "deliver" in ladder

    def test_disabled_trace_records_nothing(self):
        clock, net, a, b, path = _world(trace=False)
        a.send(_pkt())
        clock.run()
        assert len(net.trace) == 0
