"""DNS forwarder tests: UDP→TCP conversion, transparency, and the
interplay with DNS poisoning (§6, §7.2)."""

import random

import pytest

from repro.apps.dns import DNSTcpResolver, DNSUdpClient, DNSUdpResolver
from repro.apps.udp import UDPHost
from repro.core.intang import INTANG
from repro.gfw import evolved_config
from repro.gfw.dns_poisoner import POISONED_ANSWER_IP, DNSPoisoner

from helpers import SERVER_IP, mini_topology

REAL_ANSWER = "104.16.100.29"
CENSORED = "www.dropbox.com"


def _dns_world(with_gfw=True, seed=2):
    world = mini_topology(with_gfw=with_gfw, serve_http=False, seed=seed)
    client_udp = UDPHost(world.client)
    server_udp = UDPHost(world.server)
    zone = {CENSORED: REAL_ANSWER, "ok.example": "1.2.3.4"}
    DNSUdpResolver(server_udp, zone)
    DNSTcpResolver(world.server_tcp, zone)
    if with_gfw:
        world.gfw.dns_poisoner = DNSPoisoner()
    world.server_udp = server_udp
    return world, client_udp


def _resolve(world, client_udp, qname):
    client = DNSUdpClient(client_udp, SERVER_IP, world.clock)
    answers = []
    client.resolve(qname, lambda message: answers.extend(message.answers))
    world.run(8.0)
    return answers


class TestPoisoningBaseline:
    def test_censored_domain_poisoned_over_udp(self):
        world, client_udp = _dns_world()
        answers = _resolve(world, client_udp, CENSORED)
        assert answers == [POISONED_ANSWER_IP]
        assert world.gfw.dns_poisoner.poisonings

    def test_clean_domain_resolves_honestly(self):
        world, client_udp = _dns_world()
        answers = _resolve(world, client_udp, "ok.example")
        assert answers == ["1.2.3.4"]

    def test_forgery_races_ahead_of_real_answer(self):
        """The forgery is injected mid-path and wins; the real answer
        arrives later and is discarded by the qid-matched client."""
        world, client_udp = _dns_world()
        client = DNSUdpClient(client_udp, SERVER_IP, world.clock)
        all_answers = []
        client.resolve(CENSORED, lambda m: all_answers.append(list(m.answers)))
        world.run(8.0)
        assert all_answers == [[POISONED_ANSWER_IP]]


class TestForwarder:
    def _with_intang(self, world, strategy="improved-tcb-teardown"):
        return INTANG(
            host=world.client, tcp_host=world.client_tcp, clock=world.clock,
            network=world.network, rng=random.Random(1),
            fixed_strategy=strategy, dns_resolver_ip=SERVER_IP,
        )

    def test_forwarder_defeats_poisoning(self):
        world, client_udp = _dns_world()
        intang = self._with_intang(world)
        answers = _resolve(world, client_udp, CENSORED)
        assert answers == [REAL_ANSWER]
        assert intang.dns_forwarder.queries_forwarded == 1
        assert intang.dns_forwarder.responses_returned == 1
        # The poisoner never saw a UDP query to act on.
        assert not world.gfw.dns_poisoner.poisonings

    def test_forwarder_transparent_source_address(self):
        """The answer appears to come from the resolver the app queried."""
        world, client_udp = _dns_world()
        self._with_intang(world)
        seen_sources = []
        original = client_udp._on_packet

        def spy(packet, now):
            if packet.is_udp and packet.udp.src_port == 53:
                seen_sources.append(packet.src)
            return original(packet, now)

        world.client._handlers[world.client._handlers.index(original)] = spy
        _resolve(world, client_udp, CENSORED)
        assert seen_sources == [SERVER_IP]

    def test_tcp_dns_without_evasion_is_reset(self):
        """DNS over TCP alone is not enough: the GFW resets it (§2.1)."""
        world, client_udp = _dns_world()
        self._with_intang(world, strategy="none")
        answers = _resolve(world, client_udp, CENSORED)
        assert answers == []
        assert len(world.gfw.detections) == 1

    def test_non_dns_udp_unaffected(self):
        world, client_udp = _dns_world()
        self._with_intang(world)
        server_udp_got = []
        world.server_udp.bind(
            7000, lambda src, sport, data, now: server_udp_got.append(data)
        )
        client_udp.sendto(b"not-dns", SERVER_IP, 7000, src_port=4000)
        world.run(2.0)
        assert server_udp_got == [b"not-dns"]

    def test_multiple_queries_multiplex_by_qid(self):
        world, client_udp = _dns_world()
        self._with_intang(world)
        client = DNSUdpClient(client_udp, SERVER_IP, world.clock)
        results = {}
        client.resolve(CENSORED, lambda m: results.update(censored=m.answers))
        client.resolve("ok.example", lambda m: results.update(ok=m.answers))
        world.run(10.0)
        assert results["censored"] == [REAL_ANSWER]
        assert results["ok"] == ["1.2.3.4"]
