"""Edge-case tests across modules: listener gating, half-close states,
GFW fragment reassembly, trace predicates, and codec corners."""

import random

import pytest

from repro.netstack.fragment import fragment_packet
from repro.netstack.options import MD5SignatureOption, MSSOption
from repro.netstack.packet import (
    ACK,
    FIN,
    IPPacket,
    RST,
    SYN,
    TCPSegment,
    seq_add,
)
from repro.netsim.trace import TraceEvent, TraceRecorder
from repro.tcp.tcb import TCPState

from helpers import CLIENT_IP, SERVER_IP, detections, fetch, mini_topology


class TestListenerGating:
    """The universal ignore paths also gate connection creation."""

    def _syn(self, **kw):
        segment = TCPSegment(src_port=7000, dst_port=80, seq=100, flags=SYN)
        for name, value in kw.items():
            setattr(segment, name, value)
        return IPPacket(src=CLIENT_IP, dst=SERVER_IP, payload=segment)

    def test_bad_checksum_syn_creates_nothing(self):
        world = mini_topology(with_gfw=False)
        world.client.send_raw(self._syn(checksum_override=0x1234))
        world.run(0.5)
        assert (80, CLIENT_IP, 7000) not in world.server_tcp.connections

    def test_md5_syn_creates_nothing(self):
        world = mini_topology(with_gfw=False)
        world.client.send_raw(self._syn(options=[MD5SignatureOption()]))
        world.run(0.5)
        assert (80, CLIENT_IP, 7000) not in world.server_tcp.connections

    def test_oversize_length_syn_creates_nothing(self):
        world = mini_topology(with_gfw=False)
        packet = self._syn()
        packet.total_length_override = 9999
        world.client.send_raw(packet)
        world.run(0.5)
        assert (80, CLIENT_IP, 7000) not in world.server_tcp.connections

    def test_clean_syn_creates_connection(self):
        from dataclasses import replace

        world = mini_topology(with_gfw=False)
        # The raw SYN has no client-side connection; keep the client's
        # own stack from RST-ing the returning SYN/ACK as a stray.
        world.client_tcp.profile = replace(
            world.client_tcp.profile, rst_on_stray_packets=False
        )
        world.client.send_raw(self._syn(options=[MSSOption()]))
        world.run(0.5)
        connection = world.server_tcp.connections[(80, CLIENT_IP, 7000)]
        assert connection.tcb.state is TCPState.SYN_RECV

    def test_non_syn_to_listener_is_stray(self):
        world = mini_topology(with_gfw=False)
        data = self._syn(flags=ACK, payload=b"hello")
        world.client.send_raw(data)
        world.run(0.5)
        assert world.server_tcp.stray_rsts_sent == 1


class TestHalfCloseStates:
    def _pair(self):
        world = mini_topology(with_gfw=False, serve_http=False)
        accepted = []
        world.server_tcp.listen(80, accepted.append)
        connection = world.client_tcp.connect(SERVER_IP, 80)
        world.run(1.0)
        return world, connection, accepted[0]

    def test_fin_wait_2_then_remote_fin(self):
        world, client, server = self._pair()
        client.close()
        world.run(0.5)
        assert client.state is TCPState.FIN_WAIT_2
        assert server.state is TCPState.CLOSE_WAIT
        server.close()
        world.run(0.5)
        assert client.state is TCPState.TIME_WAIT

    def test_time_wait_expires_to_closed(self):
        world, client, server = self._pair()
        client.close()
        world.run(0.5)
        server.close()
        world.run(3.0)
        assert client.state is TCPState.CLOSED
        assert server.state is TCPState.CLOSED

    def test_data_during_close_wait_still_flows(self):
        world, client, server = self._pair()
        received = []
        client.on_data = lambda conn, data: received.append(data)
        client.close()
        world.run(0.5)
        server.send(b"parting words")  # CLOSE_WAIT may still send
        world.run(0.5)
        assert received == [b"parting words"]

    def test_rst_in_time_wait_closes_immediately(self):
        world, client, server = self._pair()
        client.close()
        world.run(0.5)
        server.close()
        world.run(0.3)
        assert client.state is TCPState.TIME_WAIT
        # Forge a server-side RST at the exact expected sequence.
        rst = IPPacket(
            src=SERVER_IP, dst=CLIENT_IP,
            payload=TCPSegment(
                src_port=80, dst_port=client.tcb.local_port,
                seq=client.tcb.rcv_nxt, flags=RST,
            ),
        )
        world.server.send_raw(rst)
        world.run(0.3)
        assert client.state is TCPState.CLOSED


class TestGFWFragmentReassembly:
    def test_gfw_reassembles_fragments_and_detects(self):
        """A fragmented keyword request does not evade by itself: the
        device's own reassembler restores it (first-wins has nothing to
        prefer without overlaps)."""
        world = mini_topology()
        connection = world.client_tcp.connect(SERVER_IP, 80)
        world.run(1.0)
        request = connection.make_packet(
            flags=ACK,
            payload=b"GET /?q=ultrasurf HTTP/1.1\r\nHost: x\r\n\r\n",
        )
        for fragment in fragment_packet(request, 24):
            world.client.send_raw(fragment)
        world.run(2.0)
        assert detections(world) == 1

    def test_incomplete_fragments_never_inspected(self):
        world = mini_topology()
        connection = world.client_tcp.connect(SERVER_IP, 80)
        world.run(1.0)
        request = connection.make_packet(
            flags=ACK,
            payload=b"GET /?q=ultrasurf HTTP/1.1\r\nHost: x\r\n\r\n",
        )
        fragments = fragment_packet(request, 24)
        for fragment in fragments[:-1]:  # withhold the last piece
            world.client.send_raw(fragment)
        world.run(2.0)
        assert detections(world) == 0


class TestGFWSequenceWindow:
    def test_data_just_inside_window_accepted(self):
        from repro.analysis.probe import GFWHarness

        harness = GFWHarness()
        harness.establish()
        data = harness._client_segment(
            ACK, seq=seq_add(harness.client_snd_nxt(), 60000),
            ack=harness.client_rcv_nxt(), payload=b"x" * 8,
        )
        harness.send_from_client(data)
        flow = harness.flow()
        assert flow.buffer.pending_bytes() == 8  # queued out-of-order

    def test_data_just_outside_window_ignored(self):
        from repro.analysis.probe import GFWHarness

        harness = GFWHarness()
        harness.establish()
        data = harness._client_segment(
            ACK, seq=seq_add(harness.client_snd_nxt(), 70000),
            ack=harness.client_rcv_nxt(), payload=b"x" * 8,
        )
        harness.send_from_client(data)
        assert harness.flow().buffer.pending_bytes() == 0


class TestTraceRecorder:
    def test_predicate_filters_events(self):
        recorder = TraceRecorder(
            enabled=True,
            predicate=lambda event: event.action == "send",
        )
        recorder.record(0.0, "a", "send")
        recorder.record(0.0, "a", "deliver")
        assert len(recorder) == 1

    def test_clear(self):
        recorder = TraceRecorder(enabled=True)
        recorder.record(0.0, "a", "send")
        recorder.clear()
        assert len(recorder) == 0

    def test_event_format_includes_note(self):
        event = TraceEvent(0.001, "gfw", "drop", "pkt", note="ttl-expired")
        assert "ttl-expired" in event.format()
        assert "1.000ms" in event.format()

    def test_ladder_sorted_by_time(self):
        recorder = TraceRecorder(enabled=True)
        recorder.record(2.0, "b", "deliver")
        recorder.record(1.0, "a", "send")
        ladder = recorder.format_ladder().splitlines()
        assert "send" in ladder[0]
        assert "deliver" in ladder[1]


class TestCalibrationObject:
    def test_variant_does_not_mutate_original(self):
        from repro.experiments.calibration import DEFAULT_CALIBRATION

        changed = DEFAULT_CALIBRATION.variant(hop_delta=5)
        assert changed.hop_delta == 5
        assert DEFAULT_CALIBRATION.hop_delta == 2

    def test_clean_room_is_noise_free(self):
        from repro.experiments.calibration import CLEAN_ROOM

        assert CLEAN_ROOM.gfw_miss_probability == 0.0
        assert CLEAN_ROOM.base_loss_rate == 0.0
        assert CLEAN_ROOM.route_drift_probability == 0.0
        assert CLEAN_ROOM.stateful_firewall_fraction == 0.0


class TestDNSCodecCorners:
    def test_max_length_label(self):
        from repro.apps.dns import encode_query, extract_query_name

        label = "a" * 63
        assert extract_query_name(encode_query(1, label)) == label

    def test_oversized_label_rejected(self):
        from repro.apps.dns import encode_query

        with pytest.raises(ValueError):
            encode_query(1, "a" * 64)

    def test_compressed_names_rejected_not_crashed(self):
        from repro.apps.dns import parse_message

        # Header + a name starting with a compression pointer (0xC0).
        blob = (b"\x00\x01\x01\x00\x00\x01\x00\x00\x00\x00\x00\x00"
                b"\xc0\x0c\x00\x01\x00\x01")
        with pytest.raises(ValueError):
            parse_message(blob)

    def test_response_with_multiple_answers(self):
        import struct

        from repro.apps.dns import encode_response, parse_message
        from repro.netstack.packet import ip_to_int

        raw = encode_response(5, "x.example", "1.1.1.1")
        # Append a second A record by hand and bump ancount.
        extra = (b"\x01x\x07example\x00" + struct.pack("!HHIH", 1, 1, 60, 4)
                 + struct.pack("!I", ip_to_int("2.2.2.2")))
        raw = raw[:6] + struct.pack("!H", 2) + raw[8:] + extra
        message = parse_message(raw)
        assert message.answers == ["1.1.1.1", "2.2.2.2"]
