"""The worker-merge protocol: per-worker registry deltas folded back into
the parent must reproduce the serial run's registry exactly, whatever
order the workers finish in."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments import (
    CHINA_VANTAGE_POINTS,
    DEFAULT_CALIBRATION,
    outside_china_catalog,
    run_http_trial,
)
from repro.experiments.parallel import map_trials, shutdown_pool
from repro.experiments.replay import ENGINE_PREFIXES
from repro.telemetry import MetricsRegistry, get_registry


def _mergeable(snapshot):
    """The order-independently mergeable part of a snapshot: counters and
    histogram buckets (gauges merge by max and are compared separately).

    Engine-owned instruments are stripped: how much pool/replay/netsim
    work each process performed depends on its warm state (fork-inherited
    scenario pools, recorded replay programs), not on the trials — only
    trial-owned accounting must merge identically."""
    return {
        "counters": {
            name: value
            for name, value in snapshot["counters"].items()
            if not name.startswith(ENGINE_PREFIXES)
        },
        "histograms": snapshot["histograms"],
    }


# ---------------------------------------------------------------------------
# Property: merging per-worker deltas in ANY order equals the serial run.
#
# One small Table-1 sweep runs once (module-level memo); each cell's
# registry delta stands in for one worker's returned snapshot.  The
# serial reference is the whole-sweep delta.
# ---------------------------------------------------------------------------
_SWEEP = {}


def _sweep_deltas():
    if _SWEEP:
        return _SWEEP["chunks"], _SWEEP["serial"]
    registry = get_registry()
    sweep_before = registry.snapshot()
    chunks = []
    sites = outside_china_catalog(count=2)
    for vantage in CHINA_VANTAGE_POINTS[:3]:
        for website in sites:
            before = registry.snapshot()
            run_http_trial(
                vantage, website, "none", DEFAULT_CALIBRATION, seed=1
            )
            chunks.append(registry.diff(before))
    _SWEEP["chunks"] = chunks
    _SWEEP["serial"] = registry.diff(sweep_before)
    return _SWEEP["chunks"], _SWEEP["serial"]


@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_merge_is_permutation_invariant(data):
    chunks, serial = _sweep_deltas()
    order = data.draw(st.permutations(range(len(chunks))))
    merged = MetricsRegistry()
    for index in order:
        merged.merge(chunks[index])
    snapshot = merged.snapshot()
    assert _mergeable(snapshot) == _mergeable(serial)
    # Gauges merge by maximum; the serial diff reports current values,
    # which for a monotone sweep is the same maximum.
    assert snapshot["gauges"] == serial["gauges"]


def test_chunk_deltas_register_every_instrument():
    """Zero-valued entries survive diff() so a merged registry lists the
    same instruments as the serial one — not just the nonzero ones."""
    chunks, serial = _sweep_deltas()
    merged = MetricsRegistry()
    merged.merge(chunks[0])
    assert set(merged.snapshot()["counters"]) == set(serial["counters"])


# ---------------------------------------------------------------------------
# The real thing: a forked pool with REPRO_WORKERS=2 must hand back
# deltas that merge into exactly the serial registry.
# ---------------------------------------------------------------------------
def _one_trial(cell):
    """Module-level so the process pool can pickle it."""
    vantage, website = cell
    record = run_http_trial(
        vantage, website, "none", DEFAULT_CALIBRATION, seed=2
    )
    return record.outcome.value


def test_parallel_sweep_matches_serial_registry(monkeypatch):
    monkeypatch.setenv("REPRO_RESULT_CACHE", "0")  # replay has no metrics
    registry = get_registry()
    sites = outside_china_catalog(count=2)
    cells = [
        (vantage, website)
        for vantage in CHINA_VANTAGE_POINTS[:2]
        for website in sites
    ]

    before = registry.snapshot()
    serial_outcomes = map_trials(_one_trial, cells, workers=1)
    serial_delta = registry.diff(before)

    # Fork fresh workers under the patched environment.
    shutdown_pool()
    monkeypatch.setenv("REPRO_WORKERS", "2")
    try:
        before = registry.snapshot()
        parallel_outcomes = map_trials(_one_trial, cells)
        parallel_delta = registry.diff(before)
    finally:
        shutdown_pool()  # do not leak env-poisoned workers to other tests

    assert parallel_outcomes == serial_outcomes
    assert _mergeable(parallel_delta) == _mergeable(serial_delta)
