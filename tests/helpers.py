"""Shared topology builders for the test suite.

``mini_topology`` builds the smallest useful world: a client and a
server joined by one path, optionally with a GFW device and middleboxes,
all noise sources off.  Tests assert *mechanism* on it; the statistical
behaviour is exercised by the experiment-level tests and benchmarks.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional

from repro.netsim import Host, Network, Path, SimClock, TraceRecorder
from repro.netsim.path import PathElement
from repro.tcp import TCPHost
from repro.tcp.profiles import LINUX_4_4, StackProfile
from repro.gfw import GFWConfig, GFWDevice, evolved_config
from repro.apps.http import HTTPClient, HTTPServer

CLIENT_IP = "10.0.0.1"
SERVER_IP = "93.184.216.34"
KEYWORD_PATH = "/?q=ultrasurf"


@dataclass
class MiniWorld:
    clock: SimClock
    network: Network
    client: Host
    server: Host
    path: Path
    client_tcp: TCPHost
    server_tcp: TCPHost
    gfw: Optional[GFWDevice] = None
    trace: Optional[TraceRecorder] = None
    gfw_resets_at_client: List[object] = field(default_factory=list)

    def run(self, duration: float = 8.0) -> None:
        self.clock.run_for(duration)


def mini_topology(
    gfw_config: Optional[GFWConfig] = None,
    with_gfw: bool = True,
    hop_count: int = 14,
    gfw_hop: int = 8,
    server_profile: StackProfile = LINUX_4_4,
    elements: Optional[List[PathElement]] = None,
    seed: int = 11,
    loss_rate: float = 0.0,
    trace: bool = False,
    serve_http: bool = True,
) -> MiniWorld:
    """One client, one server, optionally one deterministic GFW device."""
    clock = SimClock()
    recorder = TraceRecorder(enabled=trace)
    network = Network(clock=clock, rng=random.Random(seed), trace=recorder)
    client = network.add_host(Host(CLIENT_IP, "client"))
    server = network.add_host(Host(SERVER_IP, "server"))
    path = Path(CLIENT_IP, SERVER_IP, hop_count=hop_count, loss_rate=loss_rate)
    network.add_path(path)
    gfw = None
    if with_gfw:
        config = gfw_config or evolved_config()
        config.miss_probability = 0.0
        gfw = GFWDevice(
            "gfw", hop=gfw_hop, config=config, clock=clock,
            rng=random.Random(seed + 1),
        )
        gfw.cluster.miss_probability = 0.0
        path.add_element(gfw)
    for element in elements or []:
        path.add_element(element)
    client_tcp = TCPHost(client, clock, rng=random.Random(seed + 2))
    server_tcp = TCPHost(
        server, clock, profile=server_profile, rng=random.Random(seed + 3)
    )
    world = MiniWorld(
        clock=clock, network=network, client=client, server=server,
        path=path, client_tcp=client_tcp, server_tcp=server_tcp,
        gfw=gfw, trace=recorder,
    )
    if serve_http:
        HTTPServer(server_tcp)

    def sniff(packet, now):
        origin = str(packet.meta.get("origin", ""))
        if origin.startswith("gfw") and packet.is_tcp and packet.tcp.is_rst:
            world.gfw_resets_at_client.append(packet)
        return False

    client.register_handler(sniff, prepend=True)
    return world


def fetch(world: MiniWorld, path: str = KEYWORD_PATH, duration: float = 8.0):
    """Issue one HTTP GET and run the world; returns the exchange."""
    client = HTTPClient(world.client_tcp)
    _connection, exchange = client.get(SERVER_IP, host="example.com", path=path)
    world.run(duration)
    return exchange


def detections(world: MiniWorld) -> int:
    return len(world.gfw.detections) if world.gfw is not None else 0
