"""Historical-result reuse (the INTANG trick applied to the harness)."""

import pytest

from repro.core.cache import FrontedStore, KeyValueStore
from repro.experiments import result_cache
from repro.experiments.calibration import DEFAULT_CALIBRATION
from repro.experiments.runner import (
    Outcome,
    make_persistent_selector,
    run_http_outcomes,
    run_http_trial,
    run_strategy_cell,
)
from repro.experiments.vantage import CHINA_VANTAGE_POINTS
from repro.experiments.websites import outside_china_catalog

VANTAGE = CHINA_VANTAGE_POINTS[0]
SITES = outside_china_catalog(count=3)


class TestFrontedStore:
    def _clocked(self):
        now = [0.0]
        store = KeyValueStore(time_source=lambda: now[0])
        return now, FrontedStore(store, front_capacity=4)

    def test_write_through_and_front_hit(self):
        _, fronted = self._clocked()
        fronted.set("k", {"v": 1})
        assert fronted.get("k") == {"v": 1}
        assert fronted.front.hits == 1  # second read came from the front
        assert fronted.get("missing", "d") == "d"

    def test_ttl_expiry_invalidates_front(self):
        now, fronted = self._clocked()
        fronted.set("k", "v", ttl=10.0)
        assert fronted.get("k") == "v"
        now[0] = 11.0
        assert fronted.get("k") is None
        assert "k" not in fronted.front

    def test_delete_invalidates_front(self):
        _, fronted = self._clocked()
        fronted.set("k", "v")
        fronted.get("k")
        assert fronted.delete("k")
        assert fronted.get("k") is None

    def test_load_clears_front(self):
        _, fronted = self._clocked()
        fronted.set("k", "stale")
        fronted.get("k")
        _, other = self._clocked()
        other.set("k", "fresh")
        fronted.load(other.dump())
        assert fronted.get("k") == "fresh"

    def test_mirrors_store_surface(self):
        _, fronted = self._clocked()
        fronted.set("a", 1)
        fronted.set("b", 2, ttl=5.0)
        assert fronted.exists("a") and fronted.ttl("b") == 5.0
        assert sorted(fronted.keys()) == ["a", "b"]
        assert len(fronted) == 2
        assert dict(fronted.items()) == {"a": 1, "b": 2}
        assert fronted.expire("a", 1.0)


class TestKnobAndKeys:
    def test_disabled_by_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_RESULT_CACHE", "0")
        assert not result_cache.enabled()
        result_cache.record_trial("k", "success", {"x": 1})
        assert result_cache.lookup("k") is None

    def test_enabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_RESULT_CACHE", raising=False)
        assert result_cache.enabled()

    def test_keys_separate_every_input(self):
        base = dict(
            kind="http", vantage=VANTAGE, target=SITES[0],
            strategy_id="s", calibration=DEFAULT_CALIBRATION, seed=1,
        )
        key = result_cache.trial_key(**base)
        assert key != result_cache.trial_key(**{**base, "seed": 2})
        assert key != result_cache.trial_key(**{**base, "strategy_id": "t"})
        assert key != result_cache.trial_key(**{**base, "target": SITES[1]})
        assert key != result_cache.trial_key(**{**base, "kind": "dns"})
        assert key != result_cache.trial_key(**base, keyword=False)
        changed = DEFAULT_CALIBRATION.variant(hop_delta=9)
        assert key != result_cache.trial_key(**{**base, "calibration": changed})
        assert key == result_cache.trial_key(**base)

    def test_outcome_entry_never_downgrades_record(self):
        result_cache.record_trial("k", "success", {"full": True})
        result_cache.record_outcome("k", "failure1")
        payload = result_cache.lookup("k")
        assert payload == {"outcome": "success", "record": {"full": True}}

    def test_clear_invalidates_and_zeroes_stats(self):
        result_cache.record_outcome("k", "success")
        assert result_cache.lookup("k") is not None
        result_cache.clear()
        assert result_cache.lookup("k") is None
        assert result_cache.stats()["entries"] == 0


class TestRunnerIntegration:
    def test_cached_trial_replays_identical_record(self):
        first = run_http_trial(VANTAGE, SITES[0], "tcb-teardown-rst/ttl", seed=3)
        hits_before = result_cache.stats()["hits"]
        second = run_http_trial(VANTAGE, SITES[0], "tcb-teardown-rst/ttl", seed=3)
        assert result_cache.stats()["hits"] == hits_before + 1
        assert first == second  # every TrialRecord field, not just outcome

    def test_cache_disabled_still_deterministic(self, monkeypatch):
        first = run_http_trial(VANTAGE, SITES[0], "none", seed=5)
        monkeypatch.setenv("REPRO_RESULT_CACHE", "0")
        result_cache.clear()
        second = run_http_trial(VANTAGE, SITES[0], "none", seed=5)
        assert first == second
        assert result_cache.stats() == {
            "entries": 0, "hits": 0, "misses": 0,
            "front_hits": 0, "front_evictions": 0,
        }

    def test_adaptive_selector_trials_bypass_cache(self):
        selector = make_persistent_selector()
        run_http_trial(VANTAGE, SITES[0], None, seed=3, selector=selector)
        assert result_cache.stats()["entries"] == 0

    def test_cell_warm_rerun_matches_cold(self):
        cold = run_strategy_cell(
            "inorder-overlap/ttl", [VANTAGE], SITES, repeats=2, seed=11
        )
        entries = result_cache.stats()["entries"]
        assert entries >= len(SITES) * 2
        warm = run_strategy_cell(
            "inorder-overlap/ttl", [VANTAGE], SITES, repeats=2, seed=11
        )
        assert result_cache.stats()["entries"] == entries  # nothing re-ran
        assert cold == warm

    def test_outcomes_partial_warmth(self):
        tasks = [
            (VANTAGE, site, "none", DEFAULT_CALIBRATION, seed, True)
            for site in SITES
            for seed in (21, 22)
        ]
        full = run_http_outcomes(tasks)
        result_cache.clear()
        half = run_http_outcomes(tasks[:3])
        mixed = run_http_outcomes(tasks)  # 3 cached + 3 fresh
        assert mixed[:3] == half
        assert mixed == full
        assert all(isinstance(outcome, Outcome) for outcome in mixed)

    def test_dump_load_roundtrip_replays(self):
        record = run_http_trial(VANTAGE, SITES[1], "none", seed=9)
        blob = result_cache.dump()
        result_cache.clear()
        result_cache.load(blob)
        hits_before = result_cache.stats()["hits"]
        replay = run_http_trial(VANTAGE, SITES[1], "none", seed=9)
        assert result_cache.stats()["hits"] == hits_before + 1
        assert replay == record
