"""Flow-table LRU management and device resource accounting.

The device bounds its concurrent TCBs (§2.1: stateful tracking is
costly); these tests pin the eviction order, the NB1-consistent
"evicted flow needs a fresh TCB-creating packet" semantics, the
between-trial counter reset, and the ``stats()`` snapshot.
"""

import random

import pytest

from repro.netstack.packet import ACK, FIN, IPPacket, SYN, TCPSegment
from repro.netsim.path import Direction
from repro.netsim.simclock import SimClock
from repro.gfw.device import GFWDevice
from repro.gfw.flow import FlowTable, GFWFlow, GFWFlowState, connection_key
from repro.gfw.models import evolved_config

from helpers import detections, fetch, mini_topology

CLIENT_IP = "10.1.0.1"
SERVER_IP = "93.184.216.34"


def make_flow(port: int) -> GFWFlow:
    return GFWFlow(
        believed_client=(CLIENT_IP, port),
        believed_server=(SERVER_IP, 80),
        state=GFWFlowState.ESTABLISHED,
    )


def make_device(max_flows: int = 4096) -> GFWDevice:
    config = evolved_config(max_flows=max_flows)
    config.miss_probability = 0.0
    device = GFWDevice(
        "table-test", hop=3, config=config, clock=SimClock(),
        rng=random.Random(11),
    )
    device.cluster.miss_probability = 0.0
    return device


def syn_packet(port: int, seq: int = 1000) -> IPPacket:
    segment = TCPSegment(src_port=port, dst_port=80, seq=seq, flags=SYN)
    return IPPacket(src=CLIENT_IP, dst=SERVER_IP, payload=segment)


def data_packet(port: int, seq: int, payload: bytes) -> IPPacket:
    segment = TCPSegment(
        src_port=port, dst_port=80, seq=seq, ack=1, flags=ACK, payload=payload
    )
    return IPPacket(src=CLIENT_IP, dst=SERVER_IP, payload=segment)


class TestFlowTableLRU:
    def test_eviction_order_is_least_recently_touched(self):
        table = FlowTable(capacity=3)
        keys = [connection_key((CLIENT_IP, p), (SERVER_IP, 80)) for p in (1, 2, 3, 4)]
        for key, port in zip(keys[:3], (1, 2, 3)):
            table[key] = make_flow(port)
        # Touch key 0 so key 1 becomes the least recently used.
        assert table.get(keys[0]) is not None
        table[keys[3]] = make_flow(4)
        assert keys[1] not in table
        assert keys[0] in table and keys[2] in table and keys[3] in table
        assert table.flows_evicted == 1
        assert table.flows_created == 4
        assert table.peak_tracked == 3

    def test_overwrite_does_not_evict(self):
        table = FlowTable(capacity=2)
        key_a = connection_key((CLIENT_IP, 1), (SERVER_IP, 80))
        key_b = connection_key((CLIENT_IP, 2), (SERVER_IP, 80))
        table[key_a] = make_flow(1)
        table[key_b] = make_flow(2)
        table[key_a] = make_flow(1)  # re-insert under the existing key
        assert len(table) == 2
        assert table.flows_evicted == 0
        # The overwrite counted as a touch: key_b is now least recent.
        table[connection_key((CLIENT_IP, 3), (SERVER_IP, 80))] = make_flow(3)
        assert key_b not in table and key_a in table

    def test_reset_clears_counters_clear_does_not(self):
        table = FlowTable(capacity=1)
        for port in (1, 2, 3):
            table[connection_key((CLIENT_IP, port), (SERVER_IP, 80))] = make_flow(port)
        assert table.flows_evicted == 2
        table.clear()
        assert len(table) == 0
        assert table.flows_created == 3 and table.flows_evicted == 2
        table.reset()
        assert table.flows_created == 0
        assert table.flows_evicted == 0
        assert table.peak_tracked == 0

    def test_dict_shaped_api(self):
        table = FlowTable(capacity=4)
        key = connection_key((CLIENT_IP, 5), (SERVER_IP, 80))
        assert not table  # empty table is falsy (bench guards rely on it)
        table[key] = make_flow(5)
        assert table
        assert table[key] is table.get(key)
        assert list(table.values())[0].believed_client == (CLIENT_IP, 5)
        assert list(table) == [key]
        del table[key]
        assert key not in table
        with pytest.raises(KeyError):
            table[key]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            FlowTable(capacity=0)


class TestDeviceEviction:
    def test_device_evicts_and_forgets(self):
        device = make_device(max_flows=2)
        for port in (4001, 4002, 4003):
            device.observe(syn_packet(port), Direction.CLIENT_TO_SERVER, 0.0)
        assert device.tracked_flow_count() == 2
        assert device.flows.flows_evicted == 1
        # The evicted flow (port 4001, least recently touched) is gone:
        assert device.flow_for(CLIENT_IP, 4001, SERVER_IP, 80) is None

    def test_data_on_evicted_flow_is_invisible(self):
        """Post-eviction the connection does not exist for the censor —
        data packets neither inspect nor recreate a TCB (matching the
        'no TCB, no inspection' rule)."""
        device = make_device(max_flows=1)
        device.observe(syn_packet(5001), Direction.CLIENT_TO_SERVER, 0.0)
        device.observe(syn_packet(5002), Direction.CLIENT_TO_SERVER, 0.0)  # evicts
        device.observe(
            data_packet(5001, seq=1001, payload=b"GET /?q=ultrasurf HTTP/1.1\r\n\r\n"),
            Direction.CLIENT_TO_SERVER,
            0.1,
        )
        assert device.flow_for(CLIENT_IP, 5001, SERVER_IP, 80) is None
        assert not device.detections

    def test_reinsertion_after_eviction_creates_fresh_tcb(self):
        """A new SYN after eviction builds a brand-new TCB (NB1-family
        semantics): old reassembly progress is gone."""
        device = make_device(max_flows=1)
        device.observe(syn_packet(6001, seq=1000), Direction.CLIENT_TO_SERVER, 0.0)
        first = device.flow_for(CLIENT_IP, 6001, SERVER_IP, 80)
        device.observe(
            data_packet(6001, seq=1001, payload=b"GET /?q=ultra"),
            Direction.CLIENT_TO_SERVER,
            0.1,
        )
        device.observe(syn_packet(6002), Direction.CLIENT_TO_SERVER, 0.2)  # evicts
        device.observe(syn_packet(6001, seq=9000), Direction.CLIENT_TO_SERVER, 0.3)
        fresh = device.flow_for(CLIENT_IP, 6001, SERVER_IP, 80)
        assert fresh is not None and fresh is not first
        assert fresh.client_next_seq == 9001
        assert fresh.syn_count == 1
        # The half-fed keyword from the first incarnation is forgotten:
        device.observe(
            data_packet(6001, seq=9001, payload=b"surf HTTP/1.1\r\n\r\n"),
            Direction.CLIENT_TO_SERVER,
            0.4,
        )
        assert not device.detections


def fin_packet(port: int, seq: int) -> IPPacket:
    segment = TCPSegment(src_port=port, dst_port=80, seq=seq, ack=1, flags=FIN | ACK)
    return IPPacket(src=CLIENT_IP, dst=SERVER_IP, payload=segment)


class TestEvictionSplit:
    """Evictions-while-active vs. evictions-after-FIN (fleet accounting)."""

    def test_table_splits_active_and_after_fin(self):
        from repro.telemetry import get_registry

        registry = get_registry()
        active_before = registry.counter_value("gfw.flows_evicted_active")
        fin_before = registry.counter_value("gfw.flows_evicted_after_fin")
        table = FlowTable(capacity=2)
        finished = make_flow(1)
        finished.fin_seen = True
        table[connection_key((CLIENT_IP, 1), (SERVER_IP, 80))] = finished
        table[connection_key((CLIENT_IP, 2), (SERVER_IP, 80))] = make_flow(2)
        table[connection_key((CLIENT_IP, 3), (SERVER_IP, 80))] = make_flow(3)
        # The finished flow went first (LRU) and counted as after-FIN.
        assert table.flows_evicted_after_fin == 1
        assert table.flows_evicted_active == 0
        table[connection_key((CLIENT_IP, 4), (SERVER_IP, 80))] = make_flow(4)
        # The second eviction lost a mid-stream flow.
        assert table.flows_evicted_active == 1
        assert table.flows_evicted == 2
        # The registry mirrors the split, process-lifetime.
        assert registry.counter_value("gfw.flows_evicted_active") == active_before + 1
        assert registry.counter_value("gfw.flows_evicted_after_fin") == fin_before + 1
        table.reset()
        assert table.flows_evicted_active == 0
        assert table.flows_evicted_after_fin == 0

    def test_on_evict_callback_names_the_lost_flow(self):
        table = FlowTable(capacity=1)
        seen = []
        table.on_evict = lambda key, flow: seen.append((key, flow))
        key_a = connection_key((CLIENT_IP, 1), (SERVER_IP, 80))
        table[key_a] = make_flow(1)
        table[connection_key((CLIENT_IP, 2), (SERVER_IP, 80))] = make_flow(2)
        assert len(seen) == 1
        assert seen[0][0] == key_a
        assert seen[0][1].believed_client == (CLIENT_IP, 1)
        # Overwrites under an existing key never fire the callback.
        key_b = connection_key((CLIENT_IP, 2), (SERVER_IP, 80))
        table[key_b] = make_flow(2)
        assert len(seen) == 1

    def test_device_fin_latches_without_teardown(self):
        """Under the evolved model (``fin_tears_down=False``) the TCB
        survives the FIN but remembers it, so a later capacity eviction
        counts as after-FIN bookkeeping, not a mid-stream loss."""
        device = make_device(max_flows=1)
        device.observe(syn_packet(7001), Direction.CLIENT_TO_SERVER, 0.0)
        device.observe(fin_packet(7001, seq=1001), Direction.CLIENT_TO_SERVER, 0.1)
        flow = device.flow_for(CLIENT_IP, 7001, SERVER_IP, 80)
        assert flow is not None and flow.fin_seen
        device.observe(syn_packet(7002), Direction.CLIENT_TO_SERVER, 0.2)  # evicts
        assert device.flows.flows_evicted_after_fin == 1
        assert device.flows.flows_evicted_active == 0
        assert device.stats()["flows_evicted_after_fin"] == 1

    def test_old_model_fin_still_tears_down(self):
        config = evolved_config(max_flows=4, fin_tears_down=True)
        config.miss_probability = 0.0
        device = GFWDevice(
            "fin-test", hop=3, config=config, clock=SimClock(),
            rng=random.Random(11),
        )
        device.observe(syn_packet(7101), Direction.CLIENT_TO_SERVER, 0.0)
        device.observe(fin_packet(7101, seq=1001), Direction.CLIENT_TO_SERVER, 0.1)
        assert device.flow_for(CLIENT_IP, 7101, SERVER_IP, 80) is None

    def test_namespaced_keys_keep_identical_four_tuples_apart(self):
        """Shared-device batch mode: two devices with different
        ``flow_namespace`` values share one table without aliasing the
        same four-tuple."""
        shared = FlowTable(capacity=8)
        devices = []
        for namespace in (0, 1):
            device = make_device()
            device.flows = shared
            device.flow_namespace = namespace
            devices.append(device)
        for device in devices:
            device.observe(syn_packet(7201), Direction.CLIENT_TO_SERVER, 0.0)
        assert shared.flows_created == 2
        assert len(shared) == 2
        assert devices[0].flow_for(CLIENT_IP, 7201, SERVER_IP, 80) is None

    def test_eviction_event_carries_namespace(self):
        from repro.telemetry import capturing

        device = make_device(max_flows=1)
        device.flow_namespace = 42
        with capturing() as bus:
            device.observe(syn_packet(7301), Direction.CLIENT_TO_SERVER, 0.0)
            device.observe(syn_packet(7302), Direction.CLIENT_TO_SERVER, 0.1)
            events = [e for e in bus.events() if e.kind == "flow_evicted"]
        assert len(events) == 1
        assert events[0].fields["namespace"] == 42
        assert events[0].fields["after_fin"] is False


class TestDeviceStats:
    def test_stats_snapshot_after_detection(self):
        world = mini_topology()
        fetch(world)
        assert detections(world) == 1
        stats = world.gfw.stats()
        assert stats["flows_tracked"] >= 1
        assert stats["flows_created"] >= 1
        assert stats["peak_flows_tracked"] >= stats["flows_tracked"] - 1
        assert stats["bytes_inspected"] > 0
        assert stats["matcher_state_bytes"] > 0
        assert stats["detections"] == 1
        assert stats["resets_injected"] > 0
        assert stats["flow_table_capacity"] == world.gfw.config.max_flows

    def test_reset_state_zeroes_accounting(self):
        world = mini_topology()
        fetch(world)
        assert world.gfw.bytes_inspected > 0
        world.gfw.reset_state()
        stats = world.gfw.stats()
        assert stats["flows_tracked"] == 0
        assert stats["flows_created"] == 0
        assert stats["flows_evicted"] == 0
        assert stats["peak_flows_tracked"] == 0
        assert stats["bytes_inspected"] == 0
        assert stats["matcher_state_bytes"] == 0
