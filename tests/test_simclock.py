"""Event-clock tests: ordering, cancellation, time semantics."""

import pytest

from repro.netsim.simclock import SimClock


def test_time_starts_at_zero():
    assert SimClock().now == 0.0


def test_events_run_in_time_order():
    clock = SimClock()
    order = []
    clock.schedule(0.3, order.append, "c")
    clock.schedule(0.1, order.append, "a")
    clock.schedule(0.2, order.append, "b")
    clock.run()
    assert order == ["a", "b", "c"]


def test_same_time_events_run_in_scheduling_order():
    """Deterministic FIFO tie-breaking — packet races depend on it."""
    clock = SimClock()
    order = []
    for name in "abcde":
        clock.schedule(1.0, order.append, name)
    clock.run()
    assert order == list("abcde")


def test_run_until_stops_and_advances_time():
    clock = SimClock()
    fired = []
    clock.schedule(5.0, fired.append, 1)
    executed = clock.run(until=2.0)
    assert executed == 0
    assert clock.now == 2.0
    assert not fired
    clock.run(until=6.0)
    assert fired == [1]


def test_run_for_is_relative():
    clock = SimClock()
    clock.run_for(3.0)
    clock.schedule(1.0, lambda: None)
    clock.run_for(0.5)
    assert clock.now == 3.5
    assert clock.pending() == 1


def test_cancellation():
    clock = SimClock()
    fired = []
    handle = clock.schedule(1.0, fired.append, 1)
    handle.cancel()
    clock.run()
    assert not fired
    assert clock.pending() == 0


def test_schedule_during_event_execution():
    clock = SimClock()
    order = []

    def outer():
        order.append("outer")
        clock.schedule(0.5, order.append, "inner")

    clock.schedule(1.0, outer)
    clock.run()
    assert order == ["outer", "inner"]
    assert clock.now == 1.5


def test_schedule_at_absolute_time():
    clock = SimClock()
    fired = []
    clock.run_for(2.0)
    clock.schedule_at(3.0, fired.append, "x")
    clock.run()
    assert fired == ["x"]
    assert clock.now == 3.0


def test_schedule_at_past_runs_immediately():
    clock = SimClock()
    clock.run_for(5.0)
    fired = []
    clock.schedule_at(1.0, fired.append, "late")
    clock.run()
    assert fired == ["late"]
    assert clock.now == 5.0


def test_negative_delay_rejected():
    with pytest.raises(ValueError):
        SimClock().schedule(-1.0, lambda: None)


def test_max_events_guard():
    clock = SimClock()

    def rearm():
        clock.schedule(0.001, rearm)

    clock.schedule(0.0, rearm)
    executed = clock.run(max_events=100)
    assert executed == 100


def test_callback_args_passed_through():
    clock = SimClock()
    seen = []
    clock.schedule(0.0, lambda a, b: seen.append((a, b)), 1, "two")
    clock.run()
    assert seen == [(1, "two")]
