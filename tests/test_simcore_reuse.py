"""Heap-scheduled simulator core and per-cell scenario reuse.

Three contracts from the perf PR are pinned here:

1. the heapq event queue fires in (time, FIFO) order, including events
   scheduled from inside other events and cancelled handles — checked
   against a brute-force reference queue on hypothesis-random workloads;
2. the precomputed per-direction visit schedule matches the legacy
   sort-and-filter scan for arbitrary topologies, and is rebuilt only on
   invalidation (the ``netsim.schedule_rebuilds`` counter);
3. scenario reuse is invisible: a reused scenario replays the exact RNG
   draw sequence, so its trials — down to the packet ladder — are
   byte-identical to a from-scratch build, with the knob on or off and
   for any worker count.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.netsim.network import Path
from repro.netsim.path import Direction, Tap
from repro.netsim.simclock import SimClock
from repro.telemetry.metrics import get_registry


# ---------------------------------------------------------------------------
# 1. heap scheduler vs reference queue
# ---------------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(
    delays=st.lists(st.integers(0, 50), min_size=1, max_size=25),
    cancels=st.lists(st.booleans(), min_size=25, max_size=25),
    child_delay=st.integers(0, 20),
)
def test_simclock_order_matches_reference_queue(delays, cancels, child_delay):
    clock = SimClock()
    fired = []

    def callback(tag):
        fired.append((clock.now, tag))
        if tag < 1000 and tag % 5 == 0:
            # Re-entrant scheduling from inside a firing event.
            clock.schedule(child_delay / 1000.0, callback, 1000 + tag)

    handles = [
        clock.schedule(delay / 1000.0, callback, index)
        for index, delay in enumerate(delays)
    ]
    for handle, cancel in zip(handles, cancels):
        if cancel:
            handle.cancel()
    clock.run()

    # Reference: a brute-force stable priority queue over (time, seq).
    pending = [
        [delay / 1000.0, seq, seq, cancels[seq]]
        for seq, delay in enumerate(delays)
    ]
    next_seq = len(delays)
    expected = []
    while pending:
        pending.sort(key=lambda entry: (entry[0], entry[1]))
        time, _seq, tag, cancelled = pending.pop(0)
        if cancelled:
            continue
        expected.append((time, tag))
        if tag < 1000 and tag % 5 == 0:
            pending.append([time + child_delay / 1000.0, next_seq, 1000 + tag, False])
            next_seq += 1
    assert fired == expected


def test_simclock_run_until_is_inclusive_and_resumable():
    clock = SimClock()
    fired = []
    for delay in (0.5, 1.0, 1.5):
        clock.schedule(delay, fired.append, delay)
    clock.run(until=1.0)
    assert fired == [0.5, 1.0]
    assert clock.now == 1.0
    clock.run()
    assert fired == [0.5, 1.0, 1.5]


def test_simclock_reset_clears_pending_events():
    clock = SimClock()
    fired = []
    clock.schedule(1.0, fired.append, "stale")
    clock.run(until=0.2)
    clock.reset()
    assert clock.now == 0.0
    assert clock.pending() == 0
    clock.schedule(0.1, fired.append, "fresh")
    clock.run()
    assert fired == ["fresh"]


# ---------------------------------------------------------------------------
# 2. precomputed visit schedules
# ---------------------------------------------------------------------------
@settings(max_examples=80, deadline=None)
@given(
    hop_count=st.integers(2, 12),
    element_hops=st.lists(st.integers(1, 11), max_size=6),
    origin=st.integers(0, 12),
    client_to_server=st.booleans(),
)
def test_travel_plan_matches_legacy_scan(
    hop_count, element_hops, origin, client_to_server
):
    path = Path(
        client_ip="10.0.0.1", server_ip="10.0.0.2",
        hop_count=hop_count, base_delay=0.01,
    )
    for index, hop in enumerate(element_hops):
        hop = min(hop, hop_count - 1)
        path.add_element(Tap(f"tap{index}", hop))
    origin = min(origin, hop_count)
    direction = (
        Direction.CLIENT_TO_SERVER if client_to_server
        else Direction.SERVER_TO_CLIENT
    )

    plan, start = path.travel_plan(origin, direction)

    # Legacy oracle: stable sort by hop, filter strictly ahead of origin.
    forward = sorted(path.elements, key=lambda element: element.hop)
    if direction is Direction.CLIENT_TO_SERVER:
        expected = [element for element in forward if element.hop > origin]
    else:
        expected = [
            element for element in reversed(forward) if element.hop < origin
        ]
    assert list(plan[start:]) == expected
    assert path.elements_ahead(origin, direction) == expected


def test_schedule_rebuilds_only_on_invalidation():
    registry = get_registry()

    def rebuilds():
        return registry.counter_value("netsim.schedule_rebuilds")

    path = Path(client_ip="10.0.0.1", server_ip="10.0.0.2", hop_count=10)
    path.add_element(Tap("tap-a", 4))
    base = rebuilds()

    path.travel_plan(0, Direction.CLIENT_TO_SERVER)
    assert rebuilds() == base + 1
    # Any number of plans off the cached schedule is free.
    for origin in range(10):
        path.travel_plan(origin, Direction.CLIENT_TO_SERVER)
        path.travel_plan(origin, Direction.SERVER_TO_CLIENT)
    assert rebuilds() == base + 1

    path.add_element(Tap("tap-b", 7))
    path.travel_plan(0, Direction.CLIENT_TO_SERVER)
    assert rebuilds() == base + 2

    path.drift_client_side(+1)
    path.travel_plan(0, Direction.CLIENT_TO_SERVER)
    assert rebuilds() == base + 3

    path.reconfigure(hop_count=12, base_delay=0.05, loss_rate=0.0)
    path.travel_plan(0, Direction.SERVER_TO_CLIENT)
    assert rebuilds() == base + 4

    path.clear_elements()
    path.travel_plan(0, Direction.CLIENT_TO_SERVER)
    assert rebuilds() == base + 5


# ---------------------------------------------------------------------------
# 3. scenario reuse parity
# ---------------------------------------------------------------------------
def _vantage_and_site():
    from repro.experiments.vantage import CHINA_VANTAGE_POINTS
    from repro.experiments.websites import outside_china_catalog

    return CHINA_VANTAGE_POINTS[0], outside_china_catalog(count=2)[0]


def _drive_http(scenario, website):
    from repro.apps.http import HTTPClient
    from repro.experiments.runner import SENSITIVE_PATH

    client = HTTPClient(scenario.client_tcp)
    _conn, exchange = client.get(
        website.ip, host=website.name, path=SENSITIVE_PATH
    )
    scenario.run()
    return (
        exchange.got_response,
        scenario.gfw_resets_received(),
        scenario.gfw_detections(),
        scenario.trace.format_ladder(),
    )


def test_scenario_reset_is_byte_identical_to_fresh_build():
    from repro.experiments.scenarios import build_scenario

    vantage, website = _vantage_and_site()
    fresh = _drive_http(
        build_scenario(vantage, website, seed=41, trace=True), website
    )

    warm = build_scenario(vantage, website, seed=13, trace=True)
    _drive_http(warm, website)  # dirty every reusable object
    reused_scenario = warm.reset(41)
    assert reused_scenario.clock is warm.clock
    assert reused_scenario.network is warm.network
    assert reused_scenario.client_tcp is warm.client_tcp
    assert _drive_http(reused_scenario, website) == fresh


def test_runner_parity_with_reuse_knob_on_and_off(monkeypatch):
    from repro.experiments import scenarios
    from repro.experiments.runner import _simulate_http_trial

    vantage, website = _vantage_and_site()
    records = {}
    for flag in ("0", "1"):
        monkeypatch.setenv("REPRO_SCENARIO_REUSE", flag)
        scenarios.clear_scenario_pool()
        out = []
        for strategy in (None, "tcb-teardown-rst/ttl"):
            for seed in range(6):
                record, scenario = _simulate_http_trial(
                    vantage, website, strategy, seed=seed
                )
                out.append((
                    record.outcome, record.strategy_id, record.drift,
                    record.detections, record.diagnosis,
                    scenario.gfw_resets_received(),
                ))
        records[flag] = out
    scenarios.clear_scenario_pool()
    assert records["0"] == records["1"]


def test_cell_parity_serial_vs_workers_with_reuse(monkeypatch):
    from repro.experiments import result_cache, scenarios
    from repro.experiments.runner import run_strategy_cell
    from repro.experiments.vantage import CHINA_VANTAGE_POINTS
    from repro.experiments.websites import outside_china_catalog

    monkeypatch.setenv("REPRO_SCENARIO_REUSE", "1")
    scenarios.clear_scenario_pool()
    vantages = CHINA_VANTAGE_POINTS[:2]
    sites = outside_china_catalog(count=2)
    serial = run_strategy_cell(
        "tcb-teardown-rst/ttl", vantages, sites, repeats=1, seed=3, workers=0
    )
    result_cache.clear()
    parallel = run_strategy_cell(
        "tcb-teardown-rst/ttl", vantages, sites, repeats=1, seed=3, workers=2
    )
    assert serial == parallel


def test_acquire_scenario_pools_per_cell(monkeypatch):
    from repro.experiments.scenarios import (
        acquire_scenario,
        clear_scenario_pool,
    )

    monkeypatch.setenv("REPRO_SCENARIO_REUSE", "1")
    vantage, website = _vantage_and_site()
    registry = get_registry()
    clear_scenario_pool()
    built = registry.counter_value("scenario.built")
    reused = registry.counter_value("scenario.reused")

    first = acquire_scenario(vantage, website=website, seed=1)
    second = acquire_scenario(vantage, website=website, seed=2)
    assert second.clock is first.clock
    assert second.network is first.network
    assert second.path is first.path
    assert registry.counter_value("scenario.built") == built + 1
    assert registry.counter_value("scenario.reused") == reused + 1

    # Traced trials stay fully isolated from the pool.
    traced = acquire_scenario(vantage, website=website, seed=3, trace=True)
    assert traced.clock is not first.clock

    # The knob falls back to plain builds.
    monkeypatch.setenv("REPRO_SCENARIO_REUSE", "0")
    plain = acquire_scenario(vantage, website=website, seed=4)
    assert plain.clock is not first.clock
    clear_scenario_pool()


def test_path_reconfigure_threads_and_validates_jitter():
    path = Path(
        client_ip="10.0.0.1", server_ip="10.0.0.2",
        hop_count=5, base_delay=0.01,
    )
    path.reconfigure(hop_count=6, base_delay=0.02, loss_rate=0.1, jitter=0.25)
    assert path.jitter == 0.25
    assert path.loss_rate == 0.1
    # Omitting jitter resets it: a pooled path configured for a jittery
    # cell must not leak delay noise into the next cell.
    path.reconfigure(hop_count=6, base_delay=0.02, loss_rate=0.0)
    assert path.jitter == 0.0
    with pytest.raises(ValueError):
        path.reconfigure(hop_count=6, base_delay=0.02, loss_rate=0.0,
                         jitter=1.0)
    with pytest.raises(ValueError):
        path.reconfigure(hop_count=6, base_delay=0.02, loss_rate=0.0,
                         jitter=-0.1)
    with pytest.raises(ValueError):
        path.reconfigure(hop_count=1, base_delay=0.02, loss_rate=0.0)
    assert path.jitter == 0.0  # failed reconfigure leaves state intact


def test_runner_parity_with_reuse_under_loss_and_jitter(monkeypatch):
    """Extends the zero-fault parity pin above to a degraded path: same
    seed => identical outcome with scenario reuse on or off, at nonzero
    loss *and* jitter (the conformance fault grid), under a forced GFW
    model variant."""
    from repro.experiments import scenarios
    from repro.experiments.calibration import CLEAN_ROOM
    from repro.experiments.runner import _simulate_http_trial

    lossy = CLEAN_ROOM.variant(base_loss_rate=0.08, path_jitter=0.15)
    vantage, website = _vantage_and_site()
    records = {}
    for flag in ("0", "1"):
        monkeypatch.setenv("REPRO_SCENARIO_REUSE", flag)
        scenarios.clear_scenario_pool()
        out = []
        for seed in range(8):
            record, scenario = _simulate_http_trial(
                vantage, website, "tcb-teardown-rst/ttl", lossy,
                seed=seed, gfw_variant="evolved-nb3-off",
            )
            out.append((
                record.outcome, record.detections, record.diagnosis,
                scenario.gfw_resets_received(),
                scenario.path.loss_rate, scenario.path.jitter,
            ))
        records[flag] = out
    scenarios.clear_scenario_pool()
    assert records["0"] == records["1"]
    # The fault knobs actually reached the path on every build.
    assert all(row[-2] == 0.08 and row[-1] == 0.15 for row in records["1"])


def test_lossy_ladder_is_seed_deterministic():
    """Same seed => byte-identical packet ladder even with loss and
    jitter draws in play (golden-ladder prerequisite)."""
    from repro.experiments.calibration import CLEAN_ROOM
    from repro.experiments.runner import _simulate_http_trial

    lossy = CLEAN_ROOM.variant(base_loss_rate=0.08, path_jitter=0.15)
    vantage, website = _vantage_and_site()
    ladders = []
    for _ in range(2):
        record, scenario = _simulate_http_trial(
            vantage, website, "resync-desync", lossy,
            seed=23, trace=True, gfw_variant="evolved",
        )
        ladders.append((record.outcome, scenario.trace.format_ladder()))
    assert ladders[0] == ladders[1]
    assert ladders[0][1]  # the trace actually recorded something


def test_reused_host_handler_order_matches_fresh(monkeypatch):
    """INTANG, the sniffer, and the TCP stack must re-register in the
    same order on a reused host as on a fresh one."""
    from repro.experiments.scenarios import build_scenario

    vantage, website = _vantage_and_site()
    fresh = build_scenario(vantage, website, seed=9)
    names_fresh = [
        getattr(handler, "__qualname__", repr(handler))
        for handler in fresh.client._handlers
    ]
    warm = build_scenario(vantage, website, seed=5)
    reused = build_scenario(vantage, website, seed=9, reuse=warm)
    names_reused = [
        getattr(handler, "__qualname__", repr(handler))
        for handler in reused.client._handlers
    ]
    assert names_reused == names_fresh
