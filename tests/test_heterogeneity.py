"""Spatiotemporal heterogeneity: route assignment, temporal suppression,
TTL drift, and the inconsistency sweep's shard-independence.

The route ensemble is a *pure function* of (seed, vantage, target) — no
recorded RNG draws — so the properties here mirror the fleet sampler
pins: permutation-stability, seed-determinism, and byte-identical
reports for any serial/worker/shard split.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.conformance.matrix import ConformanceCell, FAULT_GRID, run_cell
from repro.experiments.calibration import CLEAN_ROOM
from repro.gfw.blacklist import Blacklist
from repro.gfw.heterogeneity import (
    HETEROGENEOUS_VARIANT,
    RouteEnsemble,
    TemporalProfile,
    active_ensemble,
    is_heterogeneous,
    resolve_route,
    use_ensemble,
    validate_variant,
)
from repro.telemetry.metrics import get_registry

CLEAN = FAULT_GRID[0]


# ---------------------------------------------------------------------------
# route assignment: pure, permutation-stable, seed-deterministic
# ---------------------------------------------------------------------------
class TestRouteAssignment:
    ROUTES = [
        (f"vp-{i}", f"site-{j}.example") for i in range(6) for j in range(4)
    ]

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        order=st.randoms(use_true_random=False),
    )
    def test_assignment_permutation_stable_and_seed_deterministic(
        self, seed, order
    ):
        ensemble = RouteEnsemble(seed=seed)
        baseline = {
            route: ensemble.resolve(*route) for route in self.ROUTES
        }
        shuffled = list(self.ROUTES)
        order.shuffle(shuffled)
        # Resolution order cannot change any route's assignment…
        for route in shuffled:
            assert ensemble.resolve(*route) == baseline[route]
        # …and a freshly constructed equal-seed ensemble reproduces the
        # whole map (no hidden per-instance state).
        again = RouteEnsemble(seed=seed)
        assert {
            route: again.resolve(*route) for route in self.ROUTES
        } == baseline
        # Every assignment is a registered member with a profile.
        for member, profile in baseline.values():
            assert member in ensemble.members
            assert profile is not None

    def test_default_ensemble_spreads_members(self):
        ensemble = active_ensemble()
        members = {
            ensemble.member_for(f"route-vp-{i:02d}", "target.example")
            for i in range(16)
        }
        assert len(members) > 1  # heterogeneity, not a constant map

    def test_ensemble_validation(self):
        with pytest.raises(KeyError):
            RouteEnsemble(members=("no-such-variant",))
        with pytest.raises(ValueError):
            RouteEnsemble(members=())
        with pytest.raises(ValueError):
            RouteEnsemble(members=(HETEROGENEOUS_VARIANT,))
        validate_variant("heterogeneous")
        validate_variant("evolved")
        with pytest.raises(KeyError):
            validate_variant("no-such-variant")

    def test_resolve_route_identity_for_concrete_variants(self):
        assert resolve_route(None, "a", "b") == (None, None)
        assert resolve_route("evolved", "a", "b") == ("evolved", None)
        assert is_heterogeneous("heterogeneous")
        assert not is_heterogeneous("mixed")

    def test_resolve_route_counts_heterogeneous_assignments(self):
        registry = get_registry()
        before = registry.counter_value("hetero.routes_assigned")
        resolve_route("evolved", "a", "b")  # identity: no count
        assert registry.counter_value("hetero.routes_assigned") == before
        member, profile = resolve_route(HETEROGENEOUS_VARIANT, "a", "b")
        assert registry.counter_value("hetero.routes_assigned") == before + 1
        assert member in active_ensemble().members
        assert profile is not None


# ---------------------------------------------------------------------------
# temporal profile: suppression pinned at fixed sim hours
# ---------------------------------------------------------------------------
class TestTemporalProfile:
    def test_reset_suppression_at_fixed_hours(self):
        profile = TemporalProfile(
            peak_hour=12.0, base_suppression=0.1, amplitude=0.3
        )
        assert profile.reset_suppression(12.0) == pytest.approx(0.4)
        assert profile.reset_suppression(0.0) == pytest.approx(0.1)
        assert profile.reset_suppression(24.0) == pytest.approx(0.1)
        assert profile.reset_suppression(6.0) == pytest.approx(0.25)
        assert profile.reset_suppression(18.0) == pytest.approx(0.25)

    def test_generated_profiles_stay_in_load_band(self):
        ensemble = RouteEnsemble(seed=99)
        for i in range(32):
            profile = ensemble.profile_for(f"vp{i}", "t.example")
            peak = profile.reset_suppression(profile.peak_hour)
            trough = profile.reset_suppression(profile.peak_hour + 12.0)
            assert 0.0 < trough < peak <= 0.45 + 1e-9  # load, not outage
            low, high = ensemble.ttl_drift
            assert low <= profile.ttl_factor <= high

    def test_device_suppression_pinned_at_full_load(self):
        """suppression=1.0: detection stands, enforcement never fires."""
        from repro.experiments.runner import Outcome, _simulate_http_trial
        from repro.analysis.inconsistency import lab_vantages
        from repro.conformance.matrix import conformance_site

        vantage = lab_vantages(1)[0]
        website = conformance_site()
        always = RouteEnsemble(
            members=("evolved",),
            profile=TemporalProfile(base_suppression=1.0, amplitude=0.0),
        )
        with use_ensemble(always):
            record, scenario = _simulate_http_trial(
                vantage, website, "none", CLEAN_ROOM, seed=3,
                keyword=True, gfw_variant=HETEROGENEOUS_VARIANT,
            )
        device = scenario.gfw_devices[0]
        assert record.outcome is Outcome.SUCCESS
        assert device.resets_suppressed >= 1
        assert device.resets_injected == 0
        assert len(device.detections) >= 1  # the DPI match stands
        assert device.blacklist.total_blacklistings == 0

    def test_device_enforces_at_zero_load(self):
        """suppression=0.0 under the same ensemble shape: blocked."""
        from repro.experiments.runner import Outcome, _simulate_http_trial
        from repro.analysis.inconsistency import lab_vantages
        from repro.conformance.matrix import conformance_site

        vantage = lab_vantages(1)[0]
        website = conformance_site()
        never = RouteEnsemble(
            members=("evolved",),
            profile=TemporalProfile(base_suppression=0.0, amplitude=0.0),
        )
        with use_ensemble(never):
            record, scenario = _simulate_http_trial(
                vantage, website, "none", CLEAN_ROOM, seed=3,
                keyword=True, gfw_variant=HETEROGENEOUS_VARIANT,
            )
        device = scenario.gfw_devices[0]
        assert record.outcome is Outcome.FAILURE2
        assert device.resets_suppressed == 0
        assert device.resets_injected > 0


# ---------------------------------------------------------------------------
# blacklist TTL drift: expiry and re-add
# ---------------------------------------------------------------------------
class TestBlacklistTTLDrift:
    def test_drifted_ttl_expiry_and_readd(self):
        blacklist = Blacklist(duration=4.5)  # 0.05 x the 90 s window
        blacklist.add("1.2.3.4", "5.6.7.8", now=100.0)
        assert blacklist.contains("1.2.3.4", "5.6.7.8", 104.4)
        assert blacklist.total_expirations == 0
        assert not blacklist.contains("1.2.3.4", "5.6.7.8", 104.6)
        assert blacklist.total_expirations == 1
        assert len(blacklist) == 0
        # Re-add after expiry is a fresh full window.
        blacklist.add("1.2.3.4", "5.6.7.8", now=105.0)
        assert blacklist.total_blacklistings == 2
        assert blacklist.contains("1.2.3.4", "5.6.7.8", 109.4)
        assert blacklist.sweep(200.0) == 1
        assert blacklist.total_expirations == 2

    def test_ttl_expired_counter_on_registry(self):
        registry = get_registry()
        before = registry.counter_value("blacklist.ttl_expired")
        blacklist = Blacklist(duration=1.0)
        blacklist.add("a", "b", now=0.0)
        blacklist.contains("a", "b", 2.0)
        assert registry.counter_value("blacklist.ttl_expired") == before + 1

    def test_route_ttl_factor_scales_scenario_blacklist(self):
        from repro.experiments.runner import _simulate_http_trial
        from repro.analysis.inconsistency import lab_vantages
        from repro.conformance.matrix import conformance_site

        vantage = lab_vantages(1)[0]
        website = conformance_site()
        ensemble = active_ensemble()
        _record, scenario = _simulate_http_trial(
            vantage, website, "none", CLEAN_ROOM, seed=11,
            keyword=True, gfw_variant=HETEROGENEOUS_VARIANT,
        )
        profile = ensemble.profile_for(vantage.name, website.name)
        for device in scenario.gfw_devices:
            assert device.blacklist.duration == pytest.approx(
                90.0 * profile.ttl_factor
            )


# ---------------------------------------------------------------------------
# conformance reduction + sweep shard-independence
# ---------------------------------------------------------------------------
class TestHeterogeneousConformance:
    def test_single_variant_ensemble_reduces_to_mixed(self):
        """A one-member, temporal-off ensemble must reproduce the plain
        ``mixed`` variant's counts byte-for-byte — heterogeneity with
        the heterogeneity removed is the identity."""
        degenerate = RouteEnsemble(members=("mixed",), temporal=False)
        for strategy in ("none", "improved-tcb-teardown", "resync-desync"):
            with use_ensemble(degenerate):
                hetero = run_cell(
                    ConformanceCell(
                        strategy, HETEROGENEOUS_VARIANT, "neutral", CLEAN
                    ),
                    repeats=4,
                    seed=77,
                )
            plain = run_cell(
                ConformanceCell(strategy, "mixed", "neutral", CLEAN),
                repeats=4,
                seed=77,
            )
            assert (hetero.success, hetero.failure1, hetero.failure2) == (
                plain.success,
                plain.failure1,
                plain.failure2,
            )

    def test_inconsistency_report_serial_equals_sharded(self):
        """Same pattern as the fleet parity pins: the canonical JSON is
        byte-identical serial vs 2 workers vs 2 shards."""
        from repro.analysis.inconsistency import run_inconsistency

        kwargs = dict(
            vantages=3,
            hours=(0.0, 12.0),
            strategies=("none", "tcb-reversal"),
            repeats=2,
            seed=41,
        )
        serial = run_inconsistency(**kwargs).to_json()
        workers = run_inconsistency(**kwargs, workers=2).to_json()
        sharded = run_inconsistency(**kwargs, shards=2, workers=2).to_json()
        assert serial == workers == sharded

    def test_report_cells_carry_wilson_bounds(self):
        from repro.analysis.inconsistency import run_inconsistency

        report = run_inconsistency(
            vantages=2,
            hours=(12.0,),
            strategies=("none",),
            repeats=2,
            seed=5,
        )
        payload = report.as_payload()
        for cell in payload["cells"]:
            assert 0.0 <= cell["wilson_low"] <= cell["wilson_high"] <= 1.0
        assert payload["grid"]["gfw_variant"] == HETEROGENEOUS_VARIANT
        assert set(payload["routes"]) == set(report.vantage_names)
        assert not math.isnan(payload["diurnal_curve"][0]["suppression_rate"])
