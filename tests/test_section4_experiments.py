"""§4's probing experiments, replayed as executable tests.

The paper infers the evolved GFW model by a series of controlled
client/server experiments.  Each test here is one of those experiments,
run against the evolved device; together they retrace the paper's
inference chain — including the two candidate explanations §4 *rules
out* (multiple TCBs; a stateless per-packet matcher) and the one it
confirms (re-synchronization).
"""

import pytest

from repro.analysis.probe import GFWHarness
from repro.gfw import evolved_config
from repro.gfw.flow import GFWFlowState
from repro.netstack.packet import ACK, RST, SYN, TCPSegment, seq_add

REQUEST = b"GET /?q=ultrasurf HTTP/1.1\r\nHost: x\r\n\r\n"


def _request_segment(harness, seq=None, payload=REQUEST):
    return harness._client_segment(
        ACK,
        seq=harness.client_snd_nxt() if seq is None else seq,
        ack=harness.client_rcv_nxt(),
        payload=payload,
    )


class TestPriorAssumption1:
    """'The GFW creates a TCB only upon seeing a SYN packet.'"""

    def test_partial_handshake_syn_only_still_tracks(self):
        """Omitting SYN/ACK and ACK: a SYN alone creates a working TCB."""
        harness = GFWHarness()
        harness.send_from_client(
            harness._client_segment(SYN, seq=harness.client_isn)
        )
        harness.send_from_client(_request_segment(harness))
        assert len(harness.device.detections) == 1

    def test_partial_handshake_synack_only_still_tracks(self):
        """§4's surprise: a bare SYN/ACK (no SYN seen) creates a TCB
        whose monitored direction is toward the SYN/ACK's destination."""
        harness = GFWHarness()
        synack = TCPSegment(
            src_port=80, dst_port=45000, seq=harness.server_isn,
            ack=seq_add(harness.client_isn, 1), flags=SYN | ACK,
        )
        harness.send_from_server(synack)
        assert harness.flow() is not None
        harness.send_from_client(_request_segment(harness))
        assert len(harness.device.detections) == 1

    def test_no_handshake_at_all_is_invisible(self):
        harness = GFWHarness()
        harness.send_from_client(_request_segment(harness, seq=123456))
        assert len(harness.device.detections) == 0


class TestPriorAssumption2:
    """'The GFW uses the first SYN's sequence number and ignores later
    SYNs' — and the three candidate explanations for its failure."""

    def _multi_syn_setup(self, true_syn_position: int):
        """Send three SYNs; the 'true' one (matching the later request)
        at the given position.  §4: 'no matter where we put the true SYN
        packet, the GFW can always detect the later sensitive keyword'."""
        harness = GFWHarness()
        fakes = [seq_add(harness.client_isn, 0x11111111),
                 seq_add(harness.client_isn, 0x22222222)]
        seqs = fakes[:true_syn_position] + [harness.client_isn] + fakes[true_syn_position:]
        for seq in seqs:
            harness.send_from_client(harness._client_segment(SYN, seq=seq))
        return harness

    @pytest.mark.parametrize("position", [0, 1, 2])
    def test_keyword_detected_wherever_the_true_syn_sits(self, position):
        harness = self._multi_syn_setup(position)
        harness.send_from_client(_request_segment(harness))
        assert len(harness.device.detections) == 1

    def test_hypothesis1_multiple_tcbs_ruled_out(self):
        """(1) would track one TCB per SYN — then a request whose seq is
        out of window w.r.t. *every* SYN would be missed.  It is not."""
        harness = self._multi_syn_setup(0)
        far_out = seq_add(harness.client_isn, 0x7A000000)
        harness.send_from_client(_request_segment(harness, seq=far_out))
        assert len(harness.device.detections) == 1

    def test_hypothesis2_stateless_mode_ruled_out(self):
        """(2) per-packet matching would miss a keyword split across
        segments.  The real device still detects it…"""
        harness = self._multi_syn_setup(0)
        half = 12  # splits mid-keyword: b"GET /?q=ultr" | b"asurf ..."
        assert b"ultrasurf" not in REQUEST[:half]
        assert b"ultrasurf" not in REQUEST[half:]
        harness.send_from_client(_request_segment(harness, payload=REQUEST[:half]))
        harness.send_from_client(
            _request_segment(
                harness,
                seq=seq_add(harness.client_snd_nxt(), half),
                payload=REQUEST[half:],
            )
        )
        assert len(harness.device.detections) == 1

    def test_hypothetical_stateless_device_would_miss_the_split(self):
        """…whereas an actual stateless design (the knob) misses it —
        which is precisely how the paper eliminated the hypothesis."""
        config = evolved_config(stateless_mode=True)
        harness = GFWHarness(config=config)
        harness.establish()
        half = 12  # splits mid-keyword
        harness.send_from_client(_request_segment(harness, payload=REQUEST[:half]))
        harness.send_from_client(
            _request_segment(
                harness,
                seq=seq_add(harness.client_snd_nxt(), half),
                payload=REQUEST[half:],
            )
        )
        assert len(harness.device.detections) == 0

    def test_stateless_device_still_catches_whole_packets(self):
        config = evolved_config(stateless_mode=True)
        harness = GFWHarness(config=config)
        harness.establish()
        harness.send_from_client(_request_segment(harness))
        assert len(harness.device.detections) == 1

    def test_hypothesis3_resynchronization_confirmed(self):
        """(3) 'before sending the HTTP request, we send some random
        data with a false sequence number, and then the HTTP request
        with true sequence number; the GFW cannot detect it'."""
        harness = self._multi_syn_setup(0)
        harness.send_from_client(
            _request_segment(
                harness,
                seq=seq_add(harness.client_isn, 0x40000000),
                payload=b"randomdata",
            )
        )
        harness.send_from_client(_request_segment(harness))
        assert len(harness.device.detections) == 0


class TestResyncTriggersAndResolvers:
    """§4: which packets enter, and which resolve, the resync state."""

    def _resynced(self):
        harness = GFWHarness()
        harness.establish()
        harness.send_from_client(harness._client_segment(SYN, seq=999))
        assert harness.flow().state is GFWFlowState.RESYNC
        return harness

    def test_server_data_does_not_resynchronize(self):
        harness = self._resynced()
        server_data = TCPSegment(
            src_port=80, dst_port=45000,
            seq=seq_add(harness.server_isn, 1),
            ack=harness.client_snd_nxt(), flags=ACK, payload=b"HTTP/1.1 200",
        )
        harness.send_from_server(server_data)
        assert harness.flow().state is GFWFlowState.RESYNC

    def test_pure_acks_do_not_resynchronize_either_direction(self):
        harness = self._resynced()
        harness.send_from_client(
            harness._client_segment(ACK, seq=0x123, ack=0x456)
        )
        server_ack = TCPSegment(
            src_port=80, dst_port=45000, seq=0x111, ack=0x222, flags=ACK,
        )
        harness.send_from_server(server_ack)
        assert harness.flow().state is GFWFlowState.RESYNC

    def test_server_synack_resynchronizes(self):
        harness = self._resynced()
        synack = TCPSegment(
            src_port=80, dst_port=45000, seq=harness.server_isn,
            ack=seq_add(harness.client_isn, 1), flags=SYN | ACK,
        )
        harness.send_from_server(synack)
        flow = harness.flow()
        assert flow.state is GFWFlowState.ESTABLISHED
        assert flow.client_next_seq == seq_add(harness.client_isn, 1)

    def test_client_data_resynchronizes(self):
        harness = self._resynced()
        harness.send_from_client(
            _request_segment(harness, seq=0x5000, payload=b"x")
        )
        flow = harness.flow()
        assert flow.state is GFWFlowState.ESTABLISHED
        assert flow.client_next_seq == 0x5001


class TestPriorAssumption3:
    """RST/RST-ACK teardown vs the resync state, in and out of the
    handshake window."""

    def test_rst_during_handshake_resyncs_more_often(self):
        """§4: 'this happens way more frequently for the former case' —
        encoded as two separate cluster coins; assert the wiring."""
        config = evolved_config()
        config.resync_on_rst_probability = 0.0
        config.resync_on_rst_handshake_probability = 1.0
        harness = GFWHarness(config=config)
        # RST between SYN/ACK and ACK: handshake incomplete -> resync.
        harness.send_from_client(
            harness._client_segment(SYN, seq=harness.client_isn)
        )
        synack = TCPSegment(
            src_port=80, dst_port=45000, seq=harness.server_isn,
            ack=seq_add(harness.client_isn, 1), flags=SYN | ACK,
        )
        harness.send_from_server(synack)
        harness.send_from_client(
            harness._client_segment(RST, seq=harness.client_snd_nxt())
        )
        assert harness.flow() is not None
        assert harness.flow().state is GFWFlowState.RESYNC

    def test_rst_after_handshake_uses_established_coin(self):
        config = evolved_config()
        config.resync_on_rst_probability = 0.0
        config.resync_on_rst_handshake_probability = 1.0
        harness = GFWHarness(config=config)
        harness.establish()  # includes the client's pure ACK
        harness.send_from_client(
            harness._client_segment(RST, seq=harness.client_snd_nxt())
        )
        assert harness.flow() is None  # torn down: established coin said so
