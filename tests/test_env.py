"""The shared ``REPRO_*`` environment-knob parser (repro.core.env)."""

import pytest

from repro.core.env import EnvKnobError, env_flag, env_int


class TestEnvFlag:
    def test_unset_returns_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_TEST_FLAG", raising=False)
        assert env_flag("REPRO_TEST_FLAG", default=True) is True
        assert env_flag("REPRO_TEST_FLAG", default=False) is False

    def test_empty_returns_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_FLAG", "   ")
        assert env_flag("REPRO_TEST_FLAG", default=True) is True

    @pytest.mark.parametrize("raw", ["1", "true", "TRUE", "Yes", "on", " ON "])
    def test_truthy_spellings(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_TEST_FLAG", raw)
        assert env_flag("REPRO_TEST_FLAG", default=False) is True

    @pytest.mark.parametrize("raw", ["0", "false", "No", "OFF", " off "])
    def test_falsy_spellings(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_TEST_FLAG", raw)
        assert env_flag("REPRO_TEST_FLAG", default=True) is False

    @pytest.mark.parametrize("raw", ["2", "yep", "enabled", "tru"])
    def test_garbage_raises_naming_the_variable(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_TEST_FLAG", raw)
        with pytest.raises(EnvKnobError, match="REPRO_TEST_FLAG"):
            env_flag("REPRO_TEST_FLAG")

    def test_knob_error_is_a_value_error(self):
        assert issubclass(EnvKnobError, ValueError)


class TestEnvInt:
    def test_unset_returns_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_TEST_INT", raising=False)
        assert env_int("REPRO_TEST_INT", default=3) == 3

    def test_parses_integers(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_INT", " 42 ")
        assert env_int("REPRO_TEST_INT", default=0) == 42
        monkeypatch.setenv("REPRO_TEST_INT", "-1")
        assert env_int("REPRO_TEST_INT", default=0) == -1

    def test_garbage_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_INT", "four")
        with pytest.raises(EnvKnobError, match="REPRO_TEST_INT"):
            env_int("REPRO_TEST_INT", default=0)

    def test_minimum_enforced(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_INT", "1")
        assert env_int("REPRO_TEST_INT", default=0, minimum=1) == 1
        monkeypatch.setenv("REPRO_TEST_INT", "0")
        with pytest.raises(EnvKnobError, match="minimum"):
            env_int("REPRO_TEST_INT", default=0, minimum=1)


class TestKnobRouting:
    """The real knobs go through this parser, so typos fail loudly."""

    def test_result_cache_routes_through_env_flag(self, monkeypatch):
        from repro.experiments import result_cache

        monkeypatch.setenv("REPRO_RESULT_CACHE", "0")
        assert result_cache.enabled() is False
        monkeypatch.setenv("REPRO_RESULT_CACHE", "yes")
        assert result_cache.enabled() is True
        monkeypatch.delenv("REPRO_RESULT_CACHE", raising=False)
        assert result_cache.enabled() is True  # default on
        monkeypatch.setenv("REPRO_RESULT_CACHE", "maybe")
        with pytest.raises(EnvKnobError, match="REPRO_RESULT_CACHE"):
            result_cache.enabled()

    def test_workers_routes_through_env_int(self, monkeypatch):
        from repro.experiments.parallel import configured_workers

        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert configured_workers() == 3
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert configured_workers() == 1  # default serial
        assert configured_workers(2) == 2  # explicit argument wins
        monkeypatch.setenv("REPRO_WORKERS", "0")
        assert configured_workers() >= 1  # non-positive -> all cores
        monkeypatch.setenv("REPRO_WORKERS", "lots")
        with pytest.raises(EnvKnobError, match="REPRO_WORKERS"):
            configured_workers()

    def test_telemetry_knob_controls_bus(self, monkeypatch):
        from repro.telemetry import events

        monkeypatch.setenv("REPRO_TELEMETRY", "1")
        events.reset_bus()
        assert events.get_bus().enabled is True
        monkeypatch.setenv("REPRO_TELEMETRY", "off")
        events.reset_bus()
        assert events.get_bus().enabled is False
        monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
        events.reset_bus()
        assert events.get_bus().enabled is False  # default off
