"""Cross-module integration tests: whole-paper behaviours end to end."""

import random

import pytest

from repro.core.intang import INTANG
from repro.experiments import (
    CHINA_VANTAGE_POINTS,
    CLEAN_ROOM,
    DEFAULT_CALIBRATION,
    Outcome,
    outside_china_catalog,
    run_http_trial,
)
from repro.experiments.runner import make_persistent_selector
from repro.gfw import evolved_config

from helpers import CLIENT_IP, SERVER_IP, detections, fetch, mini_topology


class TestNinetySecondBlacklist:
    """§2.1's post-detection regime, across real connections."""

    def _tripped_world(self):
        world = mini_topology(seed=31)
        fetch(world)
        assert detections(world) == 1
        return world

    def test_fresh_connection_during_blacklist_fails(self):
        world = self._tripped_world()
        world.client_tcp.purge_closed()
        exchange = fetch(world, path="/benign.html")
        assert not exchange.got_response

    def test_connection_after_expiry_succeeds(self):
        world = self._tripped_world()
        world.run(91.0)
        world.client_tcp.purge_closed()
        exchange = fetch(world, path="/benign.html")
        assert exchange.got_response

    def test_forged_synack_has_wrong_sequence(self):
        world = self._tripped_world()
        world.client_tcp.purge_closed()
        synacks = []
        world.client.register_handler(
            lambda p, now: (
                synacks.append(p)
                if p.is_tcp and p.tcp.is_synack and "forged" in p.meta
                else None,
                False,
            )[1],
            prepend=True,
        )
        connection = world.client_tcp.connect(SERVER_IP, 80)
        world.run(2.0)
        assert synacks
        assert synacks[0].meta["forged"] == "synack"


class TestEvasionUnderBlacklistThreat:
    def test_successful_evasion_never_trips_blacklist(self):
        world = mini_topology(seed=32)
        INTANG(
            host=world.client, tcp_host=world.client_tcp, clock=world.clock,
            network=world.network, fixed_strategy="tcb-teardown+tcb-reversal",
            rng=random.Random(1),
        )
        for index in range(3):
            world.client_tcp.purge_closed()
            exchange = fetch(world)
            assert exchange.got_response, f"request {index} failed"
        assert len(world.gfw.blacklist) == 0


class TestINTANGAdaptivity:
    def test_selector_converges_after_failures(self):
        """A strategy that fails against this site rotates out; a working
        one gets pinned — the §6 measurement-driven loop."""
        vantage = CHINA_VANTAGE_POINTS[1]
        site = outside_china_catalog()[2]
        selector = make_persistent_selector(
            priority=["tcb-teardown-fin/ttl", "tcb-teardown+tcb-reversal"]
        )
        outcomes = []
        for repeat in range(4):
            record = run_http_trial(
                vantage, site, None, CLEAN_ROOM, seed=100 + repeat,
                selector=selector,
            )
            outcomes.append((record.strategy_id, record.outcome))
        # First trial used the failing FIN strategy; later trials pinned
        # the working combination.
        assert outcomes[0][0] == "tcb-teardown-fin/ttl"
        assert outcomes[0][1] is Outcome.FAILURE2
        assert outcomes[-1][0] == "tcb-teardown+tcb-reversal"
        assert outcomes[-1][1] is Outcome.SUCCESS

    def test_pinned_strategy_reused_across_trials(self):
        vantage = CHINA_VANTAGE_POINTS[1]
        site = outside_china_catalog()[2]
        selector = make_persistent_selector()
        for repeat in range(3):
            run_http_trial(
                vantage, site, None, CLEAN_ROOM, seed=200 + repeat,
                selector=selector,
            )
        record = selector.record_for(site.ip)
        assert record.pinned is not None


class TestReportingLoop:
    def test_report_result_updates_store(self):
        world = mini_topology(seed=33)
        intang = INTANG(
            host=world.client, tcp_host=world.client_tcp, clock=world.clock,
            network=world.network, rng=random.Random(5),
        )
        exchange = fetch(world)
        server_ip = SERVER_IP
        intang.report_result(server_ip, exchange.got_response)
        record = intang.selector.record_for(server_ip)
        strategy = intang.last_strategy_for(server_ip)
        assert record.attempts(strategy) == 1

    def test_insertions_counted(self):
        world = mini_topology(seed=34)
        intang = INTANG(
            host=world.client, tcp_host=world.client_tcp, clock=world.clock,
            network=world.network, fixed_strategy="improved-tcb-teardown",
            rng=random.Random(5),
        )
        fetch(world)
        assert intang.insertions_sent() >= 2

    def test_forget_finished_connections(self):
        world = mini_topology(seed=35)
        intang = INTANG(
            host=world.client, tcp_host=world.client_tcp, clock=world.clock,
            network=world.network, fixed_strategy="none",
        )
        fetch(world)
        key = next(iter(intang.framework.contexts))
        intang.framework.forget_connection(key)
        assert intang.forget_finished_connections() == 1


class TestFigureTraces:
    """Fig. 3 / Fig. 4 as packet-ladder traces (also exercised by the
    fig3/fig4 benchmarks)."""

    def _traced_run(self, strategy_id):
        world = mini_topology(seed=36, trace=True)
        INTANG(
            host=world.client, tcp_host=world.client_tcp, clock=world.clock,
            network=world.network, fixed_strategy=strategy_id,
            rng=random.Random(1),
        )
        exchange = fetch(world)
        assert exchange.got_response
        sends = [
            event for event in world.trace.events
            if event.action == "send" and "[S" in event.summary
        ]
        return world, sends

    def test_fig3_packet_order(self):
        """Fig. 3: fake SYN, real handshake, second fake SYN, desync."""
        world, sends = self._traced_run("tcb-creation+resync-desync")
        syn_sends = [e for e in sends if "[S]" in e.summary]
        # 3 copies of fake SYN #1 + the real SYN + 3 copies of fake SYN #2
        assert len(syn_sends) == 7

    def test_fig4_packet_order(self):
        """Fig. 4: fake SYN/ACK precedes the real SYN; RST follows the
        handshake."""
        world, _ = self._traced_run("tcb-teardown+tcb-reversal")
        events = [
            event.summary for event in world.trace.events
            if event.action == "send"
        ]
        first_synack = next(i for i, s in enumerate(events) if "[SA]" in s)
        first_syn = next(i for i, s in enumerate(events) if "[S]" in s)
        first_rst = next(i for i, s in enumerate(events) if "[R]" in s)
        assert first_synack < first_syn < first_rst


class TestNoiseResilience:
    def test_evasion_survives_moderate_loss(self):
        successes = 0
        for seed in range(8):
            world = mini_topology(seed=seed, loss_rate=0.08)
            INTANG(
                host=world.client, tcp_host=world.client_tcp,
                clock=world.clock, network=world.network,
                fixed_strategy="improved-tcb-teardown",
                rng=random.Random(seed),
            )
            exchange = fetch(world, duration=15.0)
            if exchange.got_response and not world.gfw_resets_at_client:
                successes += 1
        assert successes >= 6

    def test_default_calibration_trial_is_reproducible(self):
        vantage = CHINA_VANTAGE_POINTS[0]
        site = outside_china_catalog()[0]
        first = run_http_trial(vantage, site, "improved-tcb-teardown",
                               DEFAULT_CALIBRATION, seed=77)
        second = run_http_trial(vantage, site, "improved-tcb-teardown",
                                DEFAULT_CALIBRATION, seed=77)
        assert first.outcome is second.outcome
        assert first.drift == second.drift
