"""Unit tests for the RFC 1071 checksum implementation."""

import struct

import pytest
from hypothesis import given, strategies as st

from repro.netstack.checksum import (
    internet_checksum,
    pseudo_header,
    pseudo_header_checksum,
    verify_checksum,
)
from repro.netstack.packet import ip_to_int


def test_empty_data_checksums_to_all_ones():
    assert internet_checksum(b"") == 0xFFFF


def test_single_zero_byte():
    assert internet_checksum(b"\x00") == 0xFFFF


def test_known_vector():
    # Classic RFC 1071 example bytes.
    assert internet_checksum(b"\x00\x01\xf2\x03\xf4\xf5\xf6\xf7") == 0x220D


def test_odd_length_padding():
    # Trailing byte is padded with zero on the right.
    assert internet_checksum(b"\xab") == internet_checksum(b"\xab\x00")


def test_carry_folding():
    # All-ones words force repeated carry folds: the folded sum is
    # 0xFFFF again, whose complement is zero.
    assert internet_checksum(b"\xff\xff" * 5) == 0


def test_checksum_of_data_plus_its_checksum_is_zero():
    data = b"the quick brown fox!"
    checksum = internet_checksum(data)
    combined = data + struct.pack("!H", checksum)
    assert internet_checksum(combined) == 0


@given(st.binary(min_size=0, max_size=256))
def test_checksum_verifies_itself(data):
    """Property: appending the checksum always yields a zero checksum."""
    if len(data) % 2:
        data += b"\x00"
    checksum = internet_checksum(data)
    assert internet_checksum(data + struct.pack("!H", checksum)) == 0


@given(st.binary(min_size=2, max_size=128), st.integers(0, 15))
def test_corruption_detected(data, bit):
    """Property: flipping one bit changes the checksum (ones-complement
    sums detect all single-bit errors)."""
    if len(data) % 2:
        data += b"\x00"
    checksum = internet_checksum(data)
    corrupted = bytearray(data)
    corrupted[0] ^= 1 << (bit % 8)
    assert internet_checksum(bytes(corrupted)) != checksum


def test_pseudo_header_layout():
    header = pseudo_header(ip_to_int("1.2.3.4"), ip_to_int("5.6.7.8"), 6, 20)
    assert len(header) == 12
    assert header[:4] == bytes([1, 2, 3, 4])
    assert header[4:8] == bytes([5, 6, 7, 8])
    assert header[8] == 0
    assert header[9] == 6
    assert header[10:12] == struct.pack("!H", 20)


def test_pseudo_header_checksum_and_verify_roundtrip():
    src = ip_to_int("10.0.0.1")
    dst = ip_to_int("10.0.0.2")
    segment = bytearray(b"\x00" * 20 + b"payload!")
    checksum = pseudo_header_checksum(src, dst, 6, bytes(segment))
    segment[16:18] = struct.pack("!H", checksum)
    assert verify_checksum(src, dst, 6, bytes(segment))


def test_verify_rejects_wrong_checksum():
    src = ip_to_int("10.0.0.1")
    dst = ip_to_int("10.0.0.2")
    segment = bytearray(b"\x00" * 20 + b"payload!")
    segment[16:18] = b"\xde\xad"
    assert not verify_checksum(src, dst, 6, bytes(segment))


def test_checksum_is_order_sensitive_across_words():
    a = internet_checksum(b"\x12\x34\x56\x78")
    b = internet_checksum(b"\x56\x78\x12\x34")
    # Ones-complement addition is commutative over 16-bit words, so
    # word-swaps do NOT change the sum — a real protocol property.
    assert a == b


def test_byte_swap_within_word_changes_checksum():
    assert internet_checksum(b"\x12\x34") != internet_checksum(b"\x34\x12")
