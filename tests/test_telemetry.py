"""The telemetry layer: registry, event bus, instrumentation, diagnosis."""

import json

import pytest

from repro.telemetry import (
    EventBus,
    MetricsRegistry,
    capturing,
    diagnose_trial,
    get_bus,
    get_registry,
)
from repro.telemetry.events import reset_bus

from helpers import KEYWORD_PATH, detections, fetch, mini_topology


# ---------------------------------------------------------------------------
# Instruments and registry
# ---------------------------------------------------------------------------
class TestInstruments:
    def test_counter_increments_and_rejects_negative(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        counter.inc()
        counter.inc(4)
        assert registry.counter_value("c") == 5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_counter_is_create_or_fetch(self):
        registry = MetricsRegistry()
        assert registry.counter("c") is registry.counter("c")

    def test_gauge_set(self):
        registry = MetricsRegistry()
        registry.gauge("g").set(2.5)
        assert registry.gauge_value("g") == 2.5

    def test_histogram_buckets(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h", buckets=(10, 20))
        for value in (5, 15, 25, 1000):
            histogram.observe(value)
        assert histogram.counts == [1, 1, 2]  # last is the overflow bucket
        assert histogram.count == 4
        assert histogram.sum == 1045

    def test_histogram_bucket_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.histogram("h", buckets=(10, 20))
        with pytest.raises(ValueError):
            registry.histogram("h", buckets=(1, 2))

    def test_cross_type_name_reuse_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")
        with pytest.raises(ValueError):
            registry.histogram("x")

    def test_reset_zeroes_in_place(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        counter.inc(3)
        registry.reset()
        assert counter.value == 0  # the cached reference stays valid
        counter.inc()
        assert registry.counter_value("c") == 1

    def test_format_table_filters_by_prefix(self):
        registry = MetricsRegistry()
        registry.counter("gfw.a").inc()
        registry.counter("dpi.b").inc()
        table = registry.format_table("gfw.")
        assert "gfw.a" in table and "dpi.b" not in table


class TestSnapshots:
    def test_snapshot_is_json_representable(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        registry.gauge("g").set(1.5)
        registry.histogram("h", buckets=(10,)).observe(3)
        snapshot = registry.snapshot()
        assert json.loads(json.dumps(snapshot)) == snapshot

    def test_diff_reports_only_what_happened_since(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(10)
        before = registry.snapshot()
        registry.counter("c").inc(3)
        delta = registry.diff(before)
        assert delta["counters"]["c"] == 3

    def test_diff_keeps_zero_entries_for_exact_merge_equality(self):
        registry = MetricsRegistry()
        registry.counter("quiet")
        delta = registry.diff(registry.snapshot())
        assert delta["counters"]["quiet"] == 0

    def test_merge_is_order_independent(self):
        def build(*deltas):
            registry = MetricsRegistry()
            for delta in deltas:
                registry.merge(delta)
            return registry.snapshot()

        a = {
            "counters": {"c": 2},
            "gauges": {"g": 1.0},
            "histograms": {
                "h": {"buckets": [10.0], "counts": [1, 0], "sum": 3.0, "count": 1}
            },
        }
        b = {
            "counters": {"c": 5, "d": 1},
            "gauges": {"g": 4.0},
            "histograms": {
                "h": {"buckets": [10.0], "counts": [0, 2], "sum": 60.0, "count": 2}
            },
        }
        assert build(a, b) == build(b, a)
        merged = build(a, b)
        assert merged["counters"] == {"c": 7, "d": 1}
        assert merged["gauges"] == {"g": 4.0}  # max, the order-free merge
        assert merged["histograms"]["h"]["counts"] == [1, 2]


# ---------------------------------------------------------------------------
# Event bus
# ---------------------------------------------------------------------------
class TestEventBus:
    def test_disabled_bus_publishes_nothing(self):
        bus = EventBus(enabled=False)
        assert bus.publish("x", "y") is None
        assert len(bus) == 0

    def test_seq_is_monotonic_and_bus_wide(self):
        bus = EventBus(enabled=True)
        bus.publish("a", "k1")
        bus.publish("b", "k2")
        events = bus.events()
        assert [e.seq for e in events] == [0, 1]

    def test_ring_is_bounded_and_counts_drops(self):
        bus = EventBus(capacity=3, enabled=True)
        for index in range(5):
            bus.publish("c", "k", index=index)
        assert len(bus) == 3
        assert bus.dropped == 2
        # The survivors are the newest, and seq keeps counting.
        assert [e.fields["index"] for e in bus.events()] == [2, 3, 4]
        assert bus.next_seq == 5

    def test_filters(self):
        bus = EventBus(enabled=True)
        bus.publish("gfw", "rst_sent")
        bus.publish("gfw", "dpi_match")
        bus.publish("netsim", "send")
        assert len(bus.events(component="gfw")) == 2
        assert len(bus.events(kind="send")) == 1
        assert len(bus.events(component="gfw", kind="dpi_match")) == 1

    def test_capturing_restores_prior_state(self):
        bus = get_bus()
        assert bus.enabled is False  # conftest resets; REPRO_TELEMETRY off
        with capturing() as inner:
            assert inner is bus
            assert bus.enabled is True
        assert bus.enabled is False

    def test_event_format_mentions_component_and_fields(self):
        bus = EventBus(enabled=True)
        event = bus.publish("gfw", "resync_enter", time=0.25, cause="NB2a")
        line = event.format()
        assert "250.000ms" in line
        assert "gfw" in line and "resync_enter" in line and "cause=NB2a" in line


# ---------------------------------------------------------------------------
# Trace recorder determinism (satellite: (time, seq) ordering)
# ---------------------------------------------------------------------------
class TestTraceOrdering:
    def test_ladder_is_deterministic_under_time_ties(self):
        from repro.netsim.trace import TraceRecorder

        recorder = TraceRecorder()
        # Many events at the same instant, recorded in a known order.
        for index in range(8):
            recorder.record(0.001, f"loc{index}", "observe", None)
        recorder.record(0.0005, "early", "send", None)
        ladder = recorder.format_ladder()
        lines = ladder.splitlines()
        assert lines[0].split()[1] == "early"
        assert [line.split()[1] for line in lines[1:]] == [
            f"loc{index}" for index in range(8)
        ]
        # And it is stable across repeated renders.
        assert recorder.format_ladder() == ladder

    def test_trace_events_carry_monotonic_seq(self):
        from repro.netsim.trace import TraceRecorder

        recorder = TraceRecorder()
        for _ in range(3):
            recorder.record(0.0, "x", "send", None)
        assert [event.seq for event in recorder.events] == [0, 1, 2]

    def test_trace_forwards_to_bus_when_enabled(self):
        from repro.netsim.trace import TraceRecorder

        with capturing(clear=True) as bus:
            recorder = TraceRecorder()
            recorder.record(0.5, "gfw", "observe", None, note="hi")
            events = bus.events(component="netsim")
        assert len(events) == 1
        assert events[0].kind == "observe"
        assert events[0].fields["location"] == "gfw"


# ---------------------------------------------------------------------------
# GFW instrumentation through a real trial
# ---------------------------------------------------------------------------
class TestGFWInstrumentation:
    def test_baseline_fetch_counts_dpi_match_and_rsts(self):
        registry = get_registry()
        before = registry.snapshot()
        world = mini_topology(seed=5)
        exchange = fetch(world, path=KEYWORD_PATH)
        delta = registry.diff(before)["counters"]
        assert detections(world) >= 1
        assert not exchange.got_response
        assert delta.get("dpi.match", 0) == len(world.gfw.detections)
        assert delta.get("gfw.rst_sent", 0) == world.gfw.resets_injected > 0
        assert delta.get("gfw.tcb_created", 0) >= 1
        assert delta.get("gfw.bytes_inspected", 0) == world.gfw.bytes_inspected

    def test_state_transitions_publish_events(self):
        with capturing(clear=True) as bus:
            world = mini_topology(seed=5)
            fetch(world, path=KEYWORD_PATH)
            kinds = {event.kind for event in bus.events(component="gfw")}
        assert "tcb_create" in kinds
        assert "dpi_match" in kinds
        assert "rst_sent" in kinds

    def test_stats_shim_shape_unchanged(self):
        world = mini_topology(seed=5)
        fetch(world, path=KEYWORD_PATH)
        stats = world.gfw.stats()
        assert set(stats) == {
            "flows_tracked", "flows_created", "flows_evicted",
            "flows_evicted_active", "flows_evicted_after_fin",
            "peak_flows_tracked", "flow_table_capacity", "bytes_inspected",
            "matcher_state_bytes", "detections", "missed_detections",
            "resets_injected", "forged_synacks_injected",
        }
        assert all(isinstance(value, int) for value in stats.values())

    def test_device_reset_state_does_not_zero_registry(self):
        registry = get_registry()
        world = mini_topology(seed=5)
        fetch(world, path=KEYWORD_PATH)
        created = registry.counter_value("gfw.tcb_created")
        assert created >= 1
        world.gfw.reset_state()
        assert world.gfw.stats()["flows_created"] == 0  # per-trial: zeroed
        assert registry.counter_value("gfw.tcb_created") == created


class TestResultCacheShim:
    def test_stats_shape_and_registry_backing(self):
        from repro.experiments import result_cache

        result_cache.clear()
        result_cache.lookup("missing-key")
        result_cache.record_outcome("k", "success")
        result_cache.lookup("k")
        stats = result_cache.stats()
        assert set(stats) == {
            "entries", "hits", "misses", "front_hits", "front_evictions"
        }
        assert stats["misses"] == 1
        assert stats["hits"] == 1
        registry = get_registry()
        assert registry.counter_value("result_cache.hits") == 1
        assert registry.counter_value("result_cache.misses") == 1
        result_cache.clear()
        assert result_cache.stats()["hits"] == 0


# ---------------------------------------------------------------------------
# Diagnosis
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def _diagnosis_inputs():
    from repro.experiments import outside_china_catalog, vantage_by_name

    return vantage_by_name("aliyun-beijing"), outside_china_catalog(count=2)[0]


class TestDiagnoseTrial:
    def test_failure2_names_the_dpi_match(self, _diagnosis_inputs):
        vantage, website = _diagnosis_inputs
        diagnosis = diagnose_trial(vantage, website, "none", seed=3)
        assert diagnosis.record.outcome.value == "failure2"
        assert "dpi_match" in diagnosis.explanation()
        kinds = [event.kind for event in diagnosis.transitions()]
        assert "dpi_match" in kinds and "rst_sent" in kinds

    def test_timeline_interleaves_packets_and_state(self, _diagnosis_inputs):
        vantage, website = _diagnosis_inputs
        diagnosis = diagnose_trial(vantage, website, "none", seed=3)
        components = {event.component for event in diagnosis.events}
        assert "netsim" in components  # the packet ladder
        assert "gfw" in components     # the state transitions
        timeline = diagnosis.timeline()
        ordered = sorted(
            diagnosis.events, key=lambda event: (event.time, event.seq)
        )
        assert timeline.splitlines()[0] == ordered[0].format()

    def test_success_explanation_names_the_transition(self, _diagnosis_inputs):
        vantage, website = _diagnosis_inputs
        for seed in range(8):
            diagnosis = diagnose_trial(
                vantage, website, "resync-desync", seed=seed
            )
            if diagnosis.record.outcome.value == "success":
                assert "RESYNC" in diagnosis.explanation()
                break
        else:
            pytest.fail("resync-desync never succeeded in 8 seeds")

    def test_render_contains_all_sections(self, _diagnosis_inputs):
        vantage, website = _diagnosis_inputs
        diagnosis = diagnose_trial(vantage, website, "none", seed=3)
        rendered = diagnosis.render()
        assert "outcome : failure2" in rendered
        assert "timeline" in rendered
        assert "metrics delta" in rendered
        assert "dpi.match" in rendered

    def test_diagnosis_leaves_bus_disabled(self, _diagnosis_inputs):
        vantage, website = _diagnosis_inputs
        reset_bus()
        diagnose_trial(vantage, website, "none", seed=3)
        assert get_bus().enabled is False


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------
class TestTelemetryCLI:
    def test_diagnose_smoke(self, capsys):
        from repro.cli import main

        code = main(["telemetry", "diagnose", "--strategy", "none",
                     "--seed", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "verdict" in out and "timeline" in out

    def test_metrics_json_and_baseline(self, capsys, tmp_path):
        from repro.cli import main

        out_file = tmp_path / "snap.json"
        code = main([
            "telemetry", "metrics", "--sites", "2", "--seed", "3",
            "--json", "--out", str(out_file), "--check-baseline",
        ])
        assert code == 0
        printed = json.loads(capsys.readouterr().out)
        assert printed["counters"]["dpi.match"] > 0
        assert printed["counters"]["gfw.rst_sent"] > 0
        on_disk = json.loads(out_file.read_text())
        assert on_disk == printed

    def test_metrics_baseline_fails_without_detections(self, capsys):
        from repro.cli import main

        # An evading strategy keeps dpi.match at 0 on most seeds; the
        # check must then exit nonzero.  Run with a tiny sweep.
        from repro.telemetry.metrics import get_registry

        get_registry().reset()
        code = main([
            "telemetry", "metrics", "--sites", "1", "--repeats", "1",
            "--seed", "4", "--strategy", "tcb-teardown-rst/ttl",
            "--check-baseline",
        ])
        err = capsys.readouterr().err
        if code == 1:
            assert "FAILED" in err
        else:  # the strategy got caught on this seed; check still ran
            assert "baseline check ok" in err
