"""Insertion-packet crafting tests: each discrepancy produces exactly the
on-wire anomaly it claims, and the Table 5 preference map is enforced."""

import random

import pytest

from repro.core.strategy_base import ConnectionContext
from repro.netstack.options import KIND_MD5SIG, KIND_TIMESTAMP
from repro.netstack.packet import ACK, RST, SYN
from repro.netstack.wire import tcp_checksum_valid, wire_lengths
from repro.strategies.insertion import (
    Discrepancy,
    MIDDLEBOX_SAFE,
    PREFERRED_DISCREPANCIES,
    apply_discrepancy,
    craft_insertion,
    junk_payload,
    packet_type_of,
)

from helpers import CLIENT_IP, SERVER_IP


@pytest.fixture
def ctx():
    context = ConnectionContext(
        src_ip=CLIENT_IP, src_port=40000, dst_ip=SERVER_IP, dst_port=80,
        clock=None, rng=random.Random(0), raw_send=lambda p: None,
        insertion_ttl=9,
    )
    context.snd_nxt = 5000
    context.rcv_nxt = 9000
    context.last_tsval_sent = 7_000_000
    return context


class TestDiscrepancies:
    def test_low_ttl(self, ctx):
        packet = craft_insertion(ctx, ACK, Discrepancy.LOW_TTL, payload=b"x")
        assert packet.ttl == 9

    def test_bad_checksum_is_really_wrong(self, ctx):
        packet = craft_insertion(ctx, ACK, Discrepancy.BAD_CHECKSUM, payload=b"x")
        assert packet.tcp.checksum_override is not None
        assert not tcp_checksum_valid(packet.tcp, CLIENT_IP, SERVER_IP)

    def test_bad_ack_outside_acceptable_range(self, ctx):
        packet = craft_insertion(ctx, ACK, Discrepancy.BAD_ACK, payload=b"x")
        delta = (packet.tcp.ack - ctx.rcv_nxt) & 0xFFFFFFFF
        assert delta >= 0x10000000
        assert packet.tcp.has_ack

    def test_no_flag_clears_everything(self, ctx):
        packet = craft_insertion(ctx, ACK, Discrepancy.NO_FLAG, payload=b"x")
        assert packet.tcp.flags == 0
        assert packet.tcp.ack == 0

    def test_md5_option_attached(self, ctx):
        packet = craft_insertion(ctx, ACK, Discrepancy.MD5_OPTION, payload=b"x")
        assert packet.tcp.find_option(KIND_MD5SIG) is not None

    def test_old_timestamp_is_older_than_last_sent(self, ctx):
        packet = craft_insertion(ctx, ACK, Discrepancy.OLD_TIMESTAMP, payload=b"x")
        option = packet.tcp.find_option(KIND_TIMESTAMP)
        assert option is not None
        assert ((ctx.last_tsval_sent - option.tsval) & 0xFFFFFFFF) >= 1_000_000

    def test_short_header(self, ctx):
        packet = craft_insertion(ctx, ACK, Discrepancy.SHORT_HEADER, payload=b"x")
        assert packet.tcp.data_offset_override == 4

    def test_oversize_ip_length(self, ctx):
        packet = craft_insertion(
            ctx, ACK, Discrepancy.OVERSIZE_IP_LENGTH, payload=b"x"
        )
        emitted, actual = wire_lengths(packet)
        assert emitted > actual

    def test_rst_bad_ack_forces_flags(self, ctx):
        packet = apply_discrepancy(
            ctx.make_packet(flags=RST), Discrepancy.RST_BAD_ACK, ctx
        )
        assert packet.tcp.flags == RST | ACK

    def test_original_packet_untouched(self, ctx):
        base = ctx.make_packet(flags=ACK, payload=b"x")
        apply_discrepancy(base, Discrepancy.BAD_CHECKSUM, ctx)
        assert base.tcp.checksum_override is None

    def test_discrepancy_recorded_in_meta(self, ctx):
        packet = craft_insertion(ctx, ACK, Discrepancy.MD5_OPTION, payload=b"x")
        assert packet.meta["discrepancy"] == "md5"


class TestTable5Preferences:
    def test_preference_map_matches_paper(self):
        assert PREFERRED_DISCREPANCIES["SYN"] == (Discrepancy.LOW_TTL,)
        assert Discrepancy.MD5_OPTION in PREFERRED_DISCREPANCIES["RST"]
        assert Discrepancy.BAD_ACK in PREFERRED_DISCREPANCIES["DATA"]
        assert Discrepancy.OLD_TIMESTAMP in PREFERRED_DISCREPANCIES["DATA"]

    def test_syn_cannot_use_md5(self, ctx):
        with pytest.raises(ValueError):
            craft_insertion(ctx, SYN, Discrepancy.MD5_OPTION)

    def test_rst_cannot_use_old_timestamp(self, ctx):
        """§5.3: a stale-timestamp RST still resets an ESTABLISHED server."""
        with pytest.raises(ValueError):
            craft_insertion(ctx, RST, Discrepancy.OLD_TIMESTAMP)

    def test_rst_may_use_md5(self, ctx):
        packet = craft_insertion(ctx, RST, Discrepancy.MD5_OPTION)
        assert packet.tcp.is_rst

    def test_universal_discrepancies_always_allowed(self, ctx):
        packet = craft_insertion(ctx, SYN, Discrepancy.BAD_CHECKSUM)
        assert packet.tcp.is_syn

    def test_middlebox_safe_set(self):
        assert Discrepancy.LOW_TTL not in MIDDLEBOX_SAFE
        assert Discrepancy.MD5_OPTION in MIDDLEBOX_SAFE


class TestHelpers:
    def test_packet_type_of(self, ctx):
        assert packet_type_of(ctx.make_packet(flags=SYN)) == "SYN"
        assert packet_type_of(ctx.make_packet(flags=RST)) == "RST"
        assert packet_type_of(ctx.make_packet(flags=ACK, payload=b"d")) == "DATA"

    def test_junk_payload_length_and_cleanliness(self, ctx):
        junk = junk_payload(ctx, 64)
        assert len(junk) == 64
        assert b"ultrasurf" not in junk
