"""INTANG framework and strategy-selection tests."""

import random

import pytest

from repro.core.cache import KeyValueStore
from repro.core.framework import InterceptionFramework
from repro.core.hops import HopEstimator
from repro.core.selection import StrategyRecord, StrategySelector
from repro.core.strategy_base import ConnectionContext, EvasionStrategy, NoStrategy
from repro.netstack.packet import ACK, SYN

from helpers import CLIENT_IP, SERVER_IP, fetch, mini_topology


class CountingStrategy(EvasionStrategy):
    strategy_id = "counting"

    def __init__(self, ctx):
        super().__init__(ctx)
        self.outgoing = []
        self.incoming = []

    def on_outgoing(self, packet):
        self.outgoing.append(packet)
        return [packet]

    def on_incoming(self, packet):
        self.incoming.append(packet)


class TestInterceptionFramework:
    def _world_with_framework(self):
        world = mini_topology(with_gfw=False)
        created = []

        def factory(ctx):
            strategy = CountingStrategy(ctx)
            created.append(strategy)
            return strategy

        framework = InterceptionFramework(
            host=world.client, clock=world.clock, strategy_factory=factory
        )
        return world, framework, created

    def test_strategy_created_per_connection(self):
        world, framework, created = self._world_with_framework()
        fetch(world, path="/x")
        assert len(created) == 1

    def test_outgoing_and_incoming_observed(self):
        world, framework, created = self._world_with_framework()
        fetch(world, path="/x")
        strategy = created[0]
        assert any(p.tcp.is_pure_syn for p in strategy.outgoing)
        assert any(p.tcp.is_synack for p in strategy.incoming)

    def test_context_tracks_sequence_numbers(self):
        world, framework, created = self._world_with_framework()
        fetch(world, path="/x")
        ctx = created[0].ctx
        assert ctx.saw_syn and ctx.saw_synack and ctx.handshake_done
        assert ctx.client_isn is not None
        assert ctx.server_isn is not None
        assert ctx.snd_nxt != ctx.client_isn

    def test_raw_send_bypasses_interception(self):
        world, framework, created = self._world_with_framework()
        connection = world.client_tcp.connect(SERVER_IP, 80)
        world.run(1.0)
        before = len(created[0].outgoing)
        world.client.send_raw(connection.make_packet(flags=ACK))
        world.run(0.2)
        assert len(created[0].outgoing) == before

    def test_detach_stops_interception(self):
        world, framework, created = self._world_with_framework()
        framework.detach()
        fetch(world, path="/x")
        assert created == []

    def test_mid_connection_packets_pass_without_context(self):
        """Packets of a connection the framework never saw the SYN of
        pass through unmodified (e.g. attach-after-start)."""
        world = mini_topology(with_gfw=False)
        connection = world.client_tcp.connect(SERVER_IP, 80)
        world.run(1.0)
        framework = InterceptionFramework(host=world.client, clock=world.clock)
        connection.send(b"late data")
        world.run(1.0)
        assert framework.contexts == {}

    def test_forget_connection(self):
        world, framework, created = self._world_with_framework()
        fetch(world, path="/x")
        key = next(iter(framework.contexts))
        framework.forget_connection(key)
        assert key not in framework.contexts


class TestConnectionContext:
    def _ctx(self):
        sent = []
        ctx = ConnectionContext(
            src_ip=CLIENT_IP, src_port=1234, dst_ip=SERVER_IP, dst_port=80,
            clock=None, rng=random.Random(0), raw_send=sent.append,
            insertion_ttl=9,
        )
        return ctx, sent

    def test_make_packet_uses_four_tuple(self):
        ctx, _ = self._ctx()
        packet = ctx.make_packet(flags=SYN, seq=5)
        assert packet.src == CLIENT_IP and packet.dst == SERVER_IP
        assert packet.tcp.src_port == 1234 and packet.tcp.dst_port == 80
        assert packet.meta["origin"] == "intang-insertion"

    def test_send_insertion_copies(self):
        ctx, sent = self._ctx()
        ctx.send_insertion(ctx.make_packet(flags=SYN), copies=3)
        assert len(sent) == 3
        assert len(ctx.insertions_sent) == 3
        assert sent[0] is not sent[1]  # independent copies

    def test_queue_insertion_appends_in_order(self):
        ctx, sent = self._ctx()
        released = [ctx.make_packet(flags=ACK)]
        ctx.queue_insertion(released, ctx.make_packet(flags=SYN), copies=2)
        assert len(released) == 3
        assert released[1].tcp.is_syn and released[2].tcp.is_syn
        assert sent == []  # queued, not raw-sent

    def test_out_of_window_seq_is_far(self):
        ctx, _ = self._ctx()
        ctx.snd_nxt = 1000
        assert (ctx.out_of_window_seq() - 1000) & 0xFFFFFFFF >= 0x10000000


class TestHopEstimator:
    def test_measure_returns_responding_ttl(self):
        world = mini_topology(with_gfw=False, hop_count=12)
        estimator = HopEstimator(world.network, CLIENT_IP)
        assert estimator.measure(SERVER_IP) == 13  # hop_count + 1

    def test_insertion_ttl_subtracts_delta(self):
        world = mini_topology(with_gfw=False, hop_count=12)
        estimator = HopEstimator(world.network, CLIENT_IP, delta=2)
        assert estimator.insertion_ttl(SERVER_IP) == 11

    def test_cache_goes_stale_on_drift(self):
        world = mini_topology(with_gfw=False, hop_count=12)
        estimator = HopEstimator(world.network, CLIENT_IP)
        estimator.measure(SERVER_IP)
        world.path.drift_server_side(-2)
        assert estimator.measure(SERVER_IP) == 13  # stale on purpose
        assert estimator.measure(SERVER_IP, refresh=True) == 11

    def test_adjust_converges(self):
        world = mini_topology(with_gfw=False, hop_count=12)
        estimator = HopEstimator(world.network, CLIENT_IP, delta=2)
        assert estimator.adjust(SERVER_IP, +1) == 12

    def test_minimum_ttl_enforced(self):
        world = mini_topology(with_gfw=False, hop_count=12)
        estimator = HopEstimator(world.network, CLIENT_IP, delta=50)
        assert estimator.insertion_ttl(SERVER_IP) >= 2

    def test_forget(self):
        world = mini_topology(with_gfw=False, hop_count=12)
        estimator = HopEstimator(world.network, CLIENT_IP)
        estimator.measure(SERVER_IP)
        estimator.forget(SERVER_IP)
        world.path.drift_server_side(3)
        assert estimator.measure(SERVER_IP) == 16


class TestStrategySelector:
    def _selector(self, priority=("s1", "s2", "s3")):
        store = KeyValueStore(time_source=lambda: 0.0)
        return StrategySelector(store, priority=list(priority))

    def test_first_choice_is_priority_head(self):
        assert self._selector().choose("1.1.1.1") == "s1"

    def test_success_pins_strategy(self):
        selector = self._selector()
        selector.report("1.1.1.1", "s2", True)
        assert selector.choose("1.1.1.1") == "s2"

    def test_failure_rotates(self):
        selector = self._selector()
        selector.report("1.1.1.1", "s1", False)
        assert selector.choose("1.1.1.1") == "s2"

    def test_single_pinned_failure_is_tolerated(self):
        selector = self._selector()
        selector.report("1.1.1.1", "s1", True)
        selector.report("1.1.1.1", "s1", False)
        assert selector.choose("1.1.1.1") == "s1"
        selector.report("1.1.1.1", "s1", False)
        assert selector.choose("1.1.1.1") != "s1"

    def test_per_server_isolation(self):
        selector = self._selector()
        selector.report("1.1.1.1", "s1", False)
        assert selector.choose("2.2.2.2") == "s1"

    def test_all_failing_falls_back_to_best_rate(self):
        selector = self._selector()
        for strategy in ("s1", "s2", "s3"):
            selector.report("1.1.1.1", strategy, False)
        selector.report("1.1.1.1", "s2", True)
        selector.report("1.1.1.1", "s2", False)
        selector.report("1.1.1.1", "s2", False)
        # everything exhausted; highest historical success rate wins
        assert selector.choose("1.1.1.1") == "s2"

    def test_record_ttl_expiry_resets_history(self):
        time = [0.0]
        store = KeyValueStore(time_source=lambda: time[0])
        selector = StrategySelector(store, priority=["s1", "s2"], record_ttl=100.0)
        selector.report("1.1.1.1", "s1", False)
        assert selector.choose("1.1.1.1") == "s2"
        time[0] = 200.0
        assert selector.choose("1.1.1.1") == "s1"  # record expired

    def test_empty_priority_rejected(self):
        store = KeyValueStore(time_source=lambda: 0.0)
        with pytest.raises(ValueError):
            StrategySelector(store, priority=[])

    def test_record_json_roundtrip(self):
        record = StrategyRecord()
        record.note("a", True)
        record.note("a", False)
        record.note("b", False)
        restored = StrategyRecord.from_json(record.to_json())
        assert restored.pinned == record.pinned
        assert restored.outcomes == record.outcomes
        assert restored.success_rate("a") == 0.5
        assert restored.attempts("b") == 1
