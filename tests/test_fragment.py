"""IP fragmentation and overlap-policy reassembly tests.

The first-wins / last-wins divergence here is the engine behind the
out-of-order IP-fragment evasion strategy (§3.2), so both policies are
pinned down precisely, including partial overlaps.
"""

import pytest
from hypothesis import given, strategies as st

from repro.netstack.fragment import (
    FragmentReassembler,
    OverlapPolicy,
    fragment_packet,
    make_fragment,
)
from repro.netstack.packet import ACK, IPPacket, TCPSegment
from repro.netstack.wire import transport_bytes

SRC, DST = "10.0.0.1", "10.0.0.2"


def _packet(payload=b"A" * 64):
    segment = TCPSegment(src_port=1, dst_port=80, seq=5, flags=ACK, payload=payload)
    return IPPacket(src=SRC, dst=DST, payload=segment, identification=42)


class TestFragmentation:
    def test_sizes_and_offsets(self):
        packet = _packet()
        fragments = fragment_packet(packet, fragment_size=24)
        assert fragments[0].frag_offset == 0
        assert fragments[1].frag_offset == 3  # 24 bytes / 8
        assert all(f.more_fragments for f in fragments[:-1])
        assert not fragments[-1].more_fragments

    def test_rejects_unaligned_size(self):
        with pytest.raises(ValueError):
            fragment_packet(_packet(), fragment_size=10)

    def test_rejects_oversized_fragment_size(self):
        with pytest.raises(ValueError):
            fragment_packet(_packet(payload=b"ab"), fragment_size=4096)

    def test_fragment_bytes_reconstruct_original(self):
        packet = _packet()
        wire = transport_bytes(packet)
        fragments = fragment_packet(packet, fragment_size=16)
        rebuilt = b"".join(bytes(f.payload) for f in fragments)
        assert rebuilt == wire

    def test_make_fragment_requires_aligned_offset(self):
        with pytest.raises(ValueError):
            make_fragment(_packet(), b"x" * 8, byte_offset=5, more_fragments=True)


class TestReassembly:
    def test_in_order_reassembly(self):
        packet = _packet()
        reassembler = FragmentReassembler()
        result = None
        for fragment in fragment_packet(packet, fragment_size=24):
            result = reassembler.add(fragment)
        assert result is not None
        assert result.tcp.payload == packet.tcp.payload
        assert reassembler.pending_count() == 0

    def test_out_of_order_reassembly(self):
        packet = _packet()
        fragments = fragment_packet(packet, fragment_size=24)
        reassembler = FragmentReassembler()
        result = reassembler.add(fragments[-1])
        assert result is None
        for fragment in fragments[:-1]:
            result = reassembler.add(fragment)
        assert result is not None
        assert result.tcp.payload == packet.tcp.payload

    def test_non_fragment_passes_through(self):
        packet = _packet()
        assert FragmentReassembler().add(packet) is packet

    def test_flows_keyed_by_identification(self):
        packet_a = _packet()
        packet_b = _packet()
        packet_b.identification = 43
        reassembler = FragmentReassembler()
        frags_a = fragment_packet(packet_a, 24)
        frags_b = fragment_packet(packet_b, 24)
        assert reassembler.add(frags_a[0]) is None
        assert reassembler.add(frags_b[0]) is None
        assert reassembler.pending_count() == 2

    def test_first_wins_keeps_garbage_sent_first(self):
        """The GFW-side behaviour the evasion strategy exploits."""
        packet = _packet()
        wire = transport_bytes(packet)
        split = 32
        garbage = bytes(len(wire) - split)
        reassembler = FragmentReassembler(policy=OverlapPolicy.FIRST_WINS)
        assert reassembler.add(
            make_fragment(packet, garbage, split, more_fragments=False)
        ) is None
        assert reassembler.add(
            make_fragment(packet, wire[split:], split, more_fragments=False)
        ) is None
        result = reassembler.add(
            make_fragment(packet, wire[:split], 0, more_fragments=True)
        )
        assert result is not None
        rebuilt = transport_bytes(result)
        assert rebuilt[split:] == garbage  # garbage was kept

    def test_last_wins_keeps_real_data_sent_second(self):
        """The endpoint-side behaviour that recovers the real request."""
        packet = _packet()
        wire = transport_bytes(packet)
        split = 32
        garbage = bytes(len(wire) - split)
        reassembler = FragmentReassembler(policy=OverlapPolicy.LAST_WINS)
        reassembler.add(make_fragment(packet, garbage, split, more_fragments=False))
        reassembler.add(make_fragment(packet, wire[split:], split, more_fragments=False))
        result = reassembler.add(
            make_fragment(packet, wire[:split], 0, more_fragments=True)
        )
        assert result is not None
        assert transport_bytes(result)[split:] == wire[split:]

    def test_partial_overlap_byte_granularity(self):
        packet = _packet(payload=b"B" * 44)  # wire = 20 + 44 = 64 bytes
        wire = transport_bytes(packet)
        reassembler = FragmentReassembler(policy=OverlapPolicy.FIRST_WINS)
        reassembler.add(make_fragment(packet, b"\xff" * 24, 24, False))
        reassembler.add(make_fragment(packet, wire[16:], 16, False))
        result = reassembler.add(make_fragment(packet, wire[:16], 0, True))
        assert result is not None
        rebuilt = transport_bytes(result)
        # Bytes 24..47 were claimed first by the garbage fragment.
        assert rebuilt[24:48] == b"\xff" * 24
        assert rebuilt[16:24] == wire[16:24]

    def test_raw_payload_required(self):
        fragment = _packet()
        fragment.more_fragments = True
        with pytest.raises(TypeError):
            FragmentReassembler().add(fragment)

    @given(st.integers(1, 6), st.binary(min_size=48, max_size=120))
    def test_any_arrival_order_reassembles(self, seed, payload):
        """Property: every permutation of fragments reassembles to the
        original wire bytes when there are no overlaps."""
        import random as _random

        packet = _packet(payload=payload)
        fragments = fragment_packet(packet, fragment_size=16)
        order = list(fragments)
        _random.Random(seed).shuffle(order)
        reassembler = FragmentReassembler()
        results = [reassembler.add(fragment) for fragment in order]
        completed = [r for r in results if r is not None]
        assert len(completed) == 1
        assert transport_bytes(completed[0]) == transport_bytes(packet)
