"""The parallel trial engine and the hot-path optimizations.

Covers the determinism contract (any worker count produces byte-identical
rates — the property the whole engine is built around), the vectorized
checksum against a reference implementation of the original word loop,
the stable trial-seed formula, the KeyValueStore lazy TTL sweep, and the
``__slots__`` layout of the packet dataclasses.
"""

import os
import struct

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.cache import KeyValueStore
from repro.experiments import (
    CHINA_VANTAGE_POINTS,
    DEFAULT_CALIBRATION,
    DYN_RESOLVERS,
    configured_workers,
    map_trials,
    outside_china_catalog,
    run_dns_cell,
    run_per_vantage,
    run_strategy_cell,
    strategy_salt,
    trial_seed,
)
from repro.netstack.checksum import (
    fold_carries,
    internet_checksum,
    ones_complement_sum,
)
from repro.netstack.packet import IPPacket, TCPSegment, UDPDatagram


# ---------------------------------------------------------------------------
# Worker-count independence: the engine's core contract
# ---------------------------------------------------------------------------
class TestParallelDeterminism:
    VANTAGES = CHINA_VANTAGE_POINTS[:2]
    SITES = outside_china_catalog(count=3)

    @pytest.mark.parametrize("seed", [0, 2])
    def test_strategy_cell_identical_across_worker_counts(self, seed):
        serial = run_strategy_cell(
            "improved-tcb-teardown", self.VANTAGES, self.SITES,
            DEFAULT_CALIBRATION, seed=seed, workers=1,
        )
        for workers in (2, 4):
            fanned = run_strategy_cell(
                "improved-tcb-teardown", self.VANTAGES, self.SITES,
                DEFAULT_CALIBRATION, seed=seed, workers=workers,
            )
            assert fanned == serial

    def test_per_vantage_identical_across_worker_counts(self):
        serial = run_per_vantage(
            "tcb-reversal", self.VANTAGES, self.SITES,
            DEFAULT_CALIBRATION, seed=1, workers=1,
        )
        fanned = run_per_vantage(
            "tcb-reversal", self.VANTAGES, self.SITES,
            DEFAULT_CALIBRATION, seed=1, workers=2,
        )
        assert fanned.rates == serial.rates

    def test_adaptive_per_vantage_identical_across_worker_counts(self):
        # The adaptive selector is stateful *within* a vantage; the
        # engine must still be deterministic because each vantage's
        # serial trial sequence is one work unit.
        serial = run_per_vantage(
            None, self.VANTAGES, self.SITES,
            DEFAULT_CALIBRATION, seed=3, adaptive=True, workers=1,
        )
        fanned = run_per_vantage(
            None, self.VANTAGES, self.SITES,
            DEFAULT_CALIBRATION, seed=3, adaptive=True, workers=2,
        )
        assert fanned.rates == serial.rates

    def test_dns_cell_identical_across_worker_counts(self):
        serial = run_dns_cell(
            CHINA_VANTAGE_POINTS[0], DYN_RESOLVERS[0], 6, seed=5, workers=1,
        )
        fanned = run_dns_cell(
            CHINA_VANTAGE_POINTS[0], DYN_RESOLVERS[0], 6, seed=5, workers=2,
        )
        assert fanned == serial

    def test_map_trials_preserves_task_order(self):
        tasks = list(range(20))
        assert map_trials(_square, tasks, workers=1) == [t * t for t in tasks]
        assert map_trials(_square, tasks, workers=2) == [t * t for t in tasks]

    def test_configured_workers_env_knob(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert configured_workers() == 1
        monkeypatch.setenv("REPRO_WORKERS", "4")
        assert configured_workers() == 4
        assert configured_workers(workers=2) == 2  # explicit beats env
        monkeypatch.setenv("REPRO_WORKERS", "0")
        assert configured_workers() == os.cpu_count()


def _square(task):
    return task * task


# ---------------------------------------------------------------------------
# Trial seeds: stable across interpreter runs
# ---------------------------------------------------------------------------
class TestTrialSeeds:
    def test_strategy_salt_is_pinned(self):
        # crc32-derived, unlike hash(): the same value in every run.
        assert strategy_salt("improved-tcb-teardown") == 50852
        assert strategy_salt("tcb-reversal") == 6049

    def test_trial_seed_is_pinned(self):
        assert trial_seed(2, 1, 2, 0, "improved-tcb-teardown") == 1993411
        assert trial_seed(0, 0, 0, 0, "tcb-reversal") == 6049

    def test_trial_seed_separates_axes(self):
        base = trial_seed(7, 0, 0, 0, "tcb-reversal")
        assert trial_seed(7, 1, 0, 0, "tcb-reversal") != base
        assert trial_seed(7, 0, 1, 0, "tcb-reversal") != base
        assert trial_seed(7, 0, 0, 1, "tcb-reversal") != base
        assert trial_seed(7, 0, 0, 0, "improved-tcb-teardown") != base


# ---------------------------------------------------------------------------
# Checksum: the vectorized path against the original word loop
# ---------------------------------------------------------------------------
def _reference_checksum(data: bytes) -> int:
    """The original per-word ``struct.iter_unpack`` implementation."""
    if len(data) % 2:
        data += b"\x00"
    total = 0
    for (word,) in struct.iter_unpack("!H", data):
        total += word
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


class TestChecksumRegression:
    @given(st.binary(max_size=4096))
    @settings(max_examples=200, deadline=None)
    def test_matches_reference_implementation(self, data):
        assert internet_checksum(data) == _reference_checksum(data)

    def test_odd_length(self):
        assert internet_checksum(b"\xab") == _reference_checksum(b"\xab")
        assert internet_checksum(b"\x01\x02\x03") == _reference_checksum(
            b"\x01\x02\x03"
        )

    def test_carry_fold_saturation(self):
        # All-ones input folds to 0xFFFF; its complement is zero.  This
        # is the edge where "sum mod 0xFFFF" alone would be wrong.
        assert internet_checksum(b"\xff\xff") == 0
        assert internet_checksum(b"\xff" * 1460) == 0
        assert ones_complement_sum(b"\xff\xff") == 0xFFFF

    def test_known_vector(self):
        assert internet_checksum(b"\x00\x01\xf2\x03\xf4\xf5\xf6\xf7") == 8717

    @given(st.binary(max_size=256), st.integers(min_value=0, max_value=0xFFFF))
    @settings(max_examples=100, deadline=None)
    def test_sum_is_substitutable_under_addition(self, data, extra_word):
        # Serializers add header words to the body sum before folding;
        # the reduced sum must behave exactly like the raw word sum.
        raw = 0
        padded = data + b"\x00" if len(data) % 2 else data
        for (word,) in struct.iter_unpack("!H", padded):
            raw += word
        assert fold_carries(ones_complement_sum(data) + extra_word) == (
            fold_carries(raw + extra_word)
        )


# ---------------------------------------------------------------------------
# KeyValueStore: lazy TTL sweep
# ---------------------------------------------------------------------------
class TestLazySweep:
    def make_store(self):
        state = {"now": 0.0}
        store = KeyValueStore(lambda: state["now"])
        return store, state

    def test_expired_key_vanishes_on_read(self):
        store, state = self.make_store()
        store.set("k", "v", ttl=10.0)
        assert store.get("k") == "v"
        state["now"] = 10.0
        assert store.get("k") is None
        assert not store.exists("k")

    def test_expiry_callback_fires_via_lazy_sweep(self):
        store, state = self.make_store()
        evicted = []
        store.on_expire(evicted.append)
        store.set("a", 1, ttl=5.0)
        store.set("b", 2, ttl=15.0)
        state["now"] = 6.0
        store.get("unrelated")  # any read past the watermark sweeps
        assert evicted == ["a"]
        assert store.get("b") == 2

    def test_no_sweep_before_first_deadline(self):
        store, state = self.make_store()
        store.set("a", 1, ttl=5.0)
        state["now"] = 4.999
        store.get("a")
        assert "a" in store._expiry  # untouched until the watermark

    def test_expire_lowers_the_watermark(self):
        store, state = self.make_store()
        store.set("a", 1, ttl=100.0)
        store.expire("a", 1.0)
        state["now"] = 2.0
        assert store.get("a") is None

    def test_persistent_keys_never_swept(self):
        store, state = self.make_store()
        store.set("p", "forever")
        state["now"] = 1e9
        assert store.get("p") == "forever"


# ---------------------------------------------------------------------------
# __slots__ on the hot packet dataclasses
# ---------------------------------------------------------------------------
class TestPacketSlots:
    def test_packet_classes_have_no_dict(self):
        segment = TCPSegment(src_port=1, dst_port=2)
        datagram = UDPDatagram(src_port=1, dst_port=2)
        packet = IPPacket(src="10.0.0.1", dst="10.0.0.2", payload=segment)
        for instance in (segment, datagram, packet):
            assert not hasattr(instance, "__dict__")
            with pytest.raises(AttributeError):
                instance.arbitrary_new_attribute = 1

    def test_copy_still_works_with_slots(self):
        segment = TCPSegment(src_port=1, dst_port=2, payload=b"x")
        clone = segment.copy(seq=9)
        assert clone.seq == 9 and clone.payload == b"x"
        packet = IPPacket(src="10.0.0.1", dst="10.0.0.2", payload=segment)
        assert packet.copy(ttl=3).ttl == 3
