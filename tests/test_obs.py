"""Observability acceptance tests: spans, flight recorder, exporters.

Pins the PR-8 contracts:

- serial vs ``shards=2`` conformance runs produce span forests with
  identical trial-semantic content, and the sharded forest exports as
  valid Chrome trace-event JSON;
- a fleet shape with exactly one induced eviction false negative
  produces exactly one flight-recorder dump whose event ring names the
  evicting LRU transition and the evicted flow's namespaced key;
- the EventBus surfaces ring overflow through the registry
  (``telemetry.events_dropped``);
- ``repro telemetry metrics --prefix`` filters the table and the JSON
  views identically;
- ``diagnose_fleet_flow`` resolves one flow's timeline out of a shared
  censor without aliasing (namespaced connection keys);
- the exporters (OpenMetrics text, histogram quantiles) and the bench
  harness's monotonic run ordinal behave as documented.
"""

import json

import pytest

from repro.telemetry import events as events_module
from repro.telemetry import flight as flight_module
from repro.telemetry import trace as trace_module
from repro.telemetry.export import (
    chrome_trace,
    histogram_quantile,
    latency_summary,
    openmetrics,
)
from repro.telemetry.trace import (
    SpanTracer,
    get_tracer,
    make_span,
    trial_semantic,
)


@pytest.fixture(autouse=True)
def _fresh_observability():
    """Every test starts and ends with pristine tracer/flight state."""
    trace_module.reset_tracer()
    flight_module._FLIGHT = None
    yield
    trace_module.reset_tracer()
    flight_module._FLIGHT = None


# -- SpanTracer unit behaviour ------------------------------------------


def test_tracer_disabled_is_inert():
    tracer = SpanTracer(enabled=False)
    assert tracer.begin("x", "trial") is None
    tracer.end(None)
    tracer.add(make_span("y", "trial"))
    assert tracer.drain() == []


def test_tracer_nesting_and_drain():
    tracer = SpanTracer(enabled=True)
    outer = tracer.begin("sweep", "sweep", cells=2)
    inner = tracer.begin("cell:a", "cell")
    tracer.end(inner, verdict="evades")
    tracer.end(outer)
    trees = tracer.drain()
    assert len(trees) == 1
    root = trees[0]
    assert root["name"] == "sweep"
    assert root["attrs"] == {"cells": 2}
    assert root["wall_end"] >= root["wall_start"]
    (child,) = root["children"]
    assert child["name"] == "cell:a"
    assert child["attrs"]["verdict"] == "evades"
    assert tracer.drain() == []


def test_tracer_end_recovers_leaked_children():
    """A child left open by an exception attaches under the closing
    ancestor instead of orphaning the stack."""
    tracer = SpanTracer(enabled=True)
    outer = tracer.begin("outer", "sweep")
    tracer.begin("leaked", "trial")  # never explicitly ended
    tracer.end(outer)
    (root,) = tracer.drain()
    assert [c["name"] for c in root["children"]] == ["leaked"]


def test_tracer_merge_works_while_disabled():
    """The parent of a sharded run may itself have tracing off; worker
    trees must still be collected (mirrors MetricsRegistry.merge)."""
    tracer = SpanTracer(enabled=False)
    tracer.merge([make_span("from-worker", "trial")])
    assert [t["name"] for t in tracer.roots] == ["from-worker"]


def test_trial_semantic_strips_hoists_and_sorts():
    trial_b = make_span("trial:b", "trial", sim_end=2.0, wall_end=9.9)
    trial_a = make_span("trial:a", "trial", sim_end=1.0, wall_end=1.1)
    shard = make_span("shard[2]", "shard", children=[trial_b, trial_a])
    sweep = make_span("cell:x", "cell", children=[shard])
    reduced = trial_semantic([sweep])
    assert len(reduced) == 1
    cell = reduced[0]
    # Wall fields are gone, the shard wrapper is hoisted away, and the
    # out-of-order siblings are canonically sorted.
    assert "wall_end" not in cell
    assert [c["name"] for c in cell["children"]] == ["trial:a", "trial:b"]


# -- serial vs sharded span parity (acceptance) -------------------------


def _run_traced_matrix(shards):
    from repro.conformance import default_cells, run_matrix

    cells = default_cells(
        strategies=["tcb-teardown-rst/ttl", "inorder-overlap/ttl"],
        variants=["evolved"],
        profiles=["neutral"],
        faults=["clean"],
    )
    tracer = trace_module.reset_tracer()
    tracer.enabled = True
    results = run_matrix(cells, repeats=4, seed=11, shards=shards)
    return results, tracer.drain()


@pytest.mark.slow
def test_span_forest_serial_vs_sharded_semantic_identity():
    serial_results, serial_trees = _run_traced_matrix(shards=None)
    sharded_results, sharded_trees = _run_traced_matrix(shards=2)
    # The verdicts were already pinned identical by the conformance
    # tests; the new contract is the span forests.
    assert {k: r.as_payload() for k, r in serial_results.items()} == {
        k: r.as_payload() for k, r in sharded_results.items()
    }
    serial_semantic = trial_semantic(serial_trees)
    sharded_semantic = trial_semantic(sharded_trees)
    assert serial_semantic == sharded_semantic
    assert serial_semantic  # non-vacuous: spans were actually recorded
    kinds = {node["kind"] for node in serial_semantic}
    assert "cell" in kinds

    # The sharded forest must export as valid Chrome trace-event JSON.
    document = chrome_trace(sharded_trees)
    text = json.dumps(document)
    parsed = json.loads(text)
    assert parsed["traceEvents"], "trace export produced no events"
    for event in parsed["traceEvents"]:
        assert event["ph"] == "X"
        assert {"name", "ts", "dur", "pid", "tid"} <= set(event)


# -- flight recorder (acceptance) ---------------------------------------


#: The pinned anomalous fleet shape: exactly ONE eviction false
#: negative (and zero blacklist false positives, so exactly one dump).
EVICTION_FN_SPEC = dict(
    flows=24, groups=1, window=12, max_flows=11, sites=6, seed=1
)


@pytest.mark.slow
def test_flight_recorder_single_eviction_false_negative_dump():
    from repro.experiments.fleet import FleetSpec, run_fleet
    from repro.telemetry.flight import enable_flight, get_flight

    spec = FleetSpec(**EVICTION_FN_SPEC)
    enable_flight(True)
    try:
        get_flight().clear()
        result = run_fleet(spec, shards=1)
        dumps = get_flight().drain()
    finally:
        enable_flight(False)

    assert result.eviction_false_negatives == 1
    assert result.blacklist_false_positives == 0
    assert len(dumps) == 1
    dump = dumps[0]
    assert dump["anomaly"] == "eviction_false_negative"

    # The ring must name the evicting LRU transition and the evicted
    # flow's namespaced key.
    evicted = [e for e in dump["events"] if e["kind"] == "flow_evicted"]
    assert evicted, "dump ring is missing the flow_evicted transition"
    flow_index = dump["context"]["flow"]
    key_repr = dump["context"]["evicted_key"]
    assert key_repr.startswith(f"({flow_index},"), key_repr
    assert any(e["fields"].get("key") == key_repr for e in evicted)
    # Every ringed event is attributed to the anomalous flow.
    for event in dump["events"]:
        fields = event["fields"]
        assert flow_index in (fields.get("flow"), fields.get("namespace"))
    # The dump must survive a JSON round-trip (CI uploads it).
    assert json.loads(json.dumps(dump))["anomaly"] == dump["anomaly"]


# -- EventBus drop accounting (satellite) -------------------------------


def test_event_bus_drop_counter_reaches_registry():
    from repro.telemetry.metrics import get_registry

    registry = get_registry()
    before = registry.counter_value("telemetry.events_dropped")
    bus = events_module.EventBus(capacity=4, enabled=True)
    for index in range(6):
        bus.publish("test", "tick", time=float(index))
    assert bus.dropped == 2
    assert registry.counter_value("telemetry.events_dropped") == before + 2
    # The ring kept the newest events.
    assert [e.time for e in bus.events()] == [2.0, 3.0, 4.0, 5.0]


# -- CLI surfaces -------------------------------------------------------


def test_metrics_cli_prefix_filters_json_and_table(capsys):
    from repro.cli import main

    rc = main(
        [
            "telemetry", "metrics", "--json", "--prefix", "dpi.",
            "--sites", "2", "--seed", "31",
        ]
    )
    assert rc == 0
    snapshot = json.loads(capsys.readouterr().out)
    names = [
        name
        for family in ("counters", "gauges", "histograms")
        for name in snapshot.get(family, {})
    ]
    assert names, "prefix filter removed everything"
    assert all(name.startswith("dpi.") for name in names)

    rc = main(
        [
            "telemetry", "metrics", "--prefix", "dpi.",
            "--sites", "2", "--seed", "31",
        ]
    )
    assert rc == 0
    table = capsys.readouterr().out
    table_names = [
        line.split()[0] for line in table.splitlines() if line.strip()
    ]
    # Same instrument set through both views.
    assert sorted(table_names) == sorted(names)


def test_fleet_cli_json_reports_latency_percentiles(capsys):
    from repro.cli import main

    rc = main(
        [
            "fleet", "run", "--flows", "24", "--groups", "1",
            "--window", "12", "--sites", "6", "--seed", "5", "--json",
        ]
    )
    assert rc == 0
    payload = json.loads(capsys.readouterr().out)
    latency = payload["flow_sim_latency"]
    assert latency["count"] == 24
    assert 0.0 < latency["p50"] <= latency["p90"] <= latency["p99"]


def test_obs_report_renders_trajectory(tmp_path, capsys):
    from repro.cli import main

    history = tmp_path / "history.jsonl"
    runs = [
        {"run": 1, "benches": [
            {"bench": "b1", "trials": 10, "trials_per_second": 100.0},
        ]},
        {"run": 2, "benches": [
            {"bench": "b1", "trials": 10, "trials_per_second": 150.0},
        ]},
    ]
    history.write_text(
        "".join(json.dumps(doc) + "\n" for doc in runs), encoding="utf-8"
    )
    rc = main(
        ["obs", "report", "--history", str(history), "--format", "md"]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "| b1 |" in out
    assert "+50.0%" in out


# -- shared-censor flow diagnosis (satellite) ---------------------------


@pytest.mark.slow
def test_diagnose_fleet_flow_is_namespace_exact():
    from repro.experiments.fleet import FleetSpec
    from repro.telemetry import diagnose_fleet_flow

    spec = FleetSpec(flows=24, groups=2, window=8, sites=6, seed=13)
    index = 7  # group 1 under index % groups
    diagnosis = diagnose_fleet_flow(spec, index)
    assert diagnosis.flow.index == index
    assert diagnosis.group_result.group == index % spec.groups
    assert diagnosis.events, "no events attributed to the flow"
    # Namespacing is exact: every attributed event carries the target
    # flow's identity, never a pooled-scenario alias.
    for event in diagnosis.events:
        assert index in (
            event.fields.get("namespace"), event.fields.get("flow")
        )
    rendered = diagnosis.render()
    assert f"#{index}" in rendered

    with pytest.raises(ValueError):
        diagnose_fleet_flow(spec, spec.flows)


# -- exporters ----------------------------------------------------------


def test_histogram_quantile_interpolates():
    data = {
        "buckets": [1.0, 2.0, 4.0],
        "counts": [4, 4, 0, 0],  # 4 in (<=1], 4 in (1, 2]
        "sum": 12.0,
        "count": 8,
    }
    assert histogram_quantile(data, 0.5) == pytest.approx(1.0)
    assert histogram_quantile(data, 0.75) == pytest.approx(1.5)
    assert histogram_quantile(data, 1.0) == pytest.approx(2.0)
    assert histogram_quantile({"buckets": [1.0], "counts": [0, 0],
                               "sum": 0.0, "count": 0}, 0.5) == 0.0


def test_openmetrics_exposition_shape():
    snapshot = {
        "counters": {"gfw.rst_sent": 3},
        "gauges": {"pool.size": 2.0},
        "histograms": {
            "trial.wall_seconds": {
                "buckets": [0.1, 1.0],
                "counts": [2, 1, 1],
                "sum": 1.5,
                "count": 4,
            }
        },
    }
    text = openmetrics(snapshot)
    assert "repro_gfw_rst_sent_total 3" in text
    assert "repro_pool_size 2.0" in text
    # Cumulative buckets, closed by +Inf == count.
    assert 'repro_trial_wall_seconds_bucket{le="0.1"} 2' in text
    assert 'repro_trial_wall_seconds_bucket{le="1"} 3' in text
    assert 'repro_trial_wall_seconds_bucket{le="+Inf"} 4' in text
    assert text.endswith("# EOF\n")
    summaries = latency_summary(snapshot, names=["trial.wall_seconds"])
    assert summaries["trial.wall_seconds"]["count"] == 4


# -- bench run ordinal (satellite) --------------------------------------


def _bench_conftest():
    import importlib.util
    import os

    path = os.path.join(
        os.path.dirname(__file__), "..", "benchmarks", "conftest.py"
    )
    spec = importlib.util.spec_from_file_location("bench_conftest", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_bench_run_ordinal_is_monotonic_and_clock_free(tmp_path):
    bench = _bench_conftest()
    assert bench._next_run_ordinal({}) == 1
    benches = {
        "a": {"bench": "a", "run": 3},
        "b": {"bench": "b", "run": 7},
        "c": {"bench": "c"},  # pre-ordinal record
    }
    assert bench._next_run_ordinal(benches) == 8

    history = tmp_path / "BENCH_history.jsonl"
    for run in (1, 2):
        bench._append_history(str(history), {"run": run, "benches": []})
    lines = [
        json.loads(line)
        for line in history.read_text().splitlines() if line
    ]
    assert [doc["run"] for doc in lines] == [1, 2]
    # The file is bounded: old lines fall off.
    for run in range(3, bench._HISTORY_KEEP + 5):
        bench._append_history(str(history), {"run": run, "benches": []})
    lines = history.read_text().splitlines()
    assert len(lines) == bench._HISTORY_KEEP
