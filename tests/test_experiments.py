"""Experiment-harness tests: vantage/catalog invariants, classification,
scenario assembly, the Table 2 probe, and small statistical checks."""

import pytest

from repro.experiments import (
    ALL_VANTAGE_POINTS,
    CHINA_VANTAGE_POINTS,
    CLEAN_ROOM,
    DEFAULT_CALIBRATION,
    DYN_RESOLVERS,
    OPENDNS_RESOLVERS,
    OUTSIDE_VANTAGE_POINTS,
    Outcome,
    RateTriple,
    build_scenario,
    inside_china_catalog,
    outside_china_catalog,
    run_dns_trial,
    run_http_trial,
    run_tor_trial,
    run_vpn_trial,
    vantage_by_name,
)
from repro.experiments.middlebox_probe import probe_vantage
from repro.experiments.runner import classify, run_strategy_cell
from repro.experiments.vantage import provider_counts, tor_unfiltered_points


class TestVantagePoints:
    def test_paper_population(self):
        """§3.3: 11 clients, 9 cities, 3 ISPs; §7: 4 outside China."""
        assert len(CHINA_VANTAGE_POINTS) == 11
        assert len({v.city for v in CHINA_VANTAGE_POINTS}) == 9
        assert provider_counts() == {"Aliyun": 6, "QCloud": 3, "China Unicom": 2}
        assert len(OUTSIDE_VANTAGE_POINTS) == 4

    def test_unique_ips(self):
        ips = [v.ip for v in ALL_VANTAGE_POINTS]
        assert len(set(ips)) == len(ips)

    def test_tor_unfiltered_points_match_paper(self):
        """§7.3: four vantage points in three northern cities."""
        points = tor_unfiltered_points()
        assert len(points) == 4
        assert {v.city for v in points} == {"Beijing", "Zhangjiakou", "Qingdao"}

    def test_lookup(self):
        assert vantage_by_name("unicom-tianjin").provider_profile == "unicom-tj"
        with pytest.raises(KeyError):
            vantage_by_name("nowhere")


class TestWebsiteCatalogs:
    def test_sizes(self):
        assert len(outside_china_catalog()) == 77
        assert len(inside_china_catalog()) == 33

    def test_deterministic(self):
        assert outside_china_catalog() == outside_china_catalog()

    def test_unique_ips_and_asns(self):
        sites = outside_china_catalog()
        assert len({site.ip for site in sites}) == 77
        assert len({site.asn for site in sites}) == 77

    def test_rank_range_matches_paper(self):
        ranks = [site.alexa_rank for site in outside_china_catalog()]
        assert min(ranks) >= 41
        assert max(ranks) <= 2091 + 26

    def test_kernel_quotas(self):
        sites = outside_china_catalog()
        old = [s for s in sites if s.server_profile.startswith("linux-2")]
        assert len(old) == round(77 * DEFAULT_CALIBRATION.old_server_fraction)
        assert sum(1 for s in old if s.server_profile == "linux-2.4.37") >= 1

    def test_gfw_position_inside_path(self):
        for site in outside_china_catalog():
            assert 2 <= site.gfw_hop <= site.hop_count - 2

    def test_resolver_constants(self):
        assert [r.ip for r in DYN_RESOLVERS] == ["216.146.35.35", "216.146.36.36"]
        assert all(not r.censored_path for r in OPENDNS_RESOLVERS)


class TestClassification:
    def test_notation(self):
        """§3.4's Success / Failure 1 / Failure 2 definitions."""
        assert classify(True, 0) is Outcome.SUCCESS
        assert classify(False, 0) is Outcome.FAILURE1
        assert classify(False, 3) is Outcome.FAILURE2
        # "receive no reset packets from the GFW" is part of Success:
        assert classify(True, 1) is Outcome.FAILURE2

    def test_rate_triple(self):
        triple = RateTriple.from_outcomes(
            [Outcome.SUCCESS, Outcome.SUCCESS, Outcome.FAILURE1, Outcome.FAILURE2]
        )
        assert triple.success == 0.5
        assert triple.failure1 == 0.25
        assert triple.failure2 == 0.25
        assert triple.trials == 4

    def test_rate_triple_empty(self):
        assert RateTriple.from_outcomes([]).trials == 0


class TestScenarioAssembly:
    def test_http_scenario_shape(self):
        scenario = build_scenario(
            vantage=CHINA_VANTAGE_POINTS[0],
            website=outside_china_catalog()[0],
            calibration=CLEAN_ROOM,
            seed=1,
        )
        assert scenario.gfw_devices
        assert scenario.http_server is not None
        assert scenario.path.hop_count == outside_china_catalog()[0].hop_count

    def test_outside_china_geometry(self):
        site = inside_china_catalog()[0]
        scenario = build_scenario(
            vantage=OUTSIDE_VANTAGE_POINTS[0],
            website=site,
            calibration=CLEAN_ROOM,
            seed=1,
        )
        gap = scenario.path.hop_count - scenario.gfw_devices[0].hop
        assert 2 <= gap <= 5  # §7.1: GFW within a few hops of the server

    def test_clean_room_is_deterministic_success(self):
        vantage = vantage_by_name("qcloud-guangzhou")
        site = outside_china_catalog()[3]
        outcomes = {
            run_http_trial(vantage, site, "tcb-teardown+tcb-reversal",
                           CLEAN_ROOM, seed=s).outcome
            for s in range(5)
        }
        assert outcomes == {Outcome.SUCCESS}

    def test_clean_room_baseline_always_caught(self):
        vantage = vantage_by_name("qcloud-guangzhou")
        site = outside_china_catalog()[3]
        outcomes = {
            run_http_trial(vantage, site, "none", CLEAN_ROOM, seed=s).outcome
            for s in range(5)
        }
        assert outcomes == {Outcome.FAILURE2}

    def test_benign_clean_room_succeeds_without_strategy(self):
        vantage = vantage_by_name("aliyun-beijing")
        site = outside_china_catalog()[5]
        record = run_http_trial(vantage, site, "none", CLEAN_ROOM, seed=1,
                                keyword=False)
        assert record.outcome is Outcome.SUCCESS
        assert record.detections == 0

    def test_dns_workload_requires_resolver(self):
        with pytest.raises(ValueError):
            build_scenario(
                vantage=CHINA_VANTAGE_POINTS[0], calibration=CLEAN_ROOM,
                seed=0, workload="dns",
            )

    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError):
            build_scenario(
                vantage=CHINA_VANTAGE_POINTS[0],
                website=outside_china_catalog()[0],
                calibration=CLEAN_ROOM, seed=0, workload="smtp",
            )


class TestMiddleboxProbe:
    """Regenerating Table 2 rows from live probes."""

    @pytest.fixture(scope="class")
    def reports(self):
        return {
            name: probe_vantage(vantage_by_name(name))
            for name in (
                "aliyun-beijing", "qcloud-qingdao",
                "unicom-shijiazhuang", "unicom-tianjin",
            )
        }

    def test_aliyun_row(self, reports):
        results = reports["aliyun-beijing"].results
        assert results["ip-fragments"] == "Discarded"
        assert results["bad-checksum"] == "Pass"
        assert results["rst"] == "Pass"
        assert results["fin"] == "Sometimes dropped"

    def test_qcloud_row(self, reports):
        results = reports["qcloud-qingdao"].results
        assert results["ip-fragments"] == "Reassembled"
        assert results["rst"] == "Sometimes dropped"
        assert results["fin"] == "Pass"

    def test_unicom_sjz_row(self, reports):
        results = reports["unicom-shijiazhuang"].results
        assert results["ip-fragments"] == "Reassembled"
        assert results["fin"] == "Dropped"
        assert results["bad-checksum"] == "Pass"

    def test_unicom_tj_row(self, reports):
        results = reports["unicom-tianjin"].results
        assert results["bad-checksum"] == "Dropped"
        assert results["no-flag"] == "Dropped"
        assert results["fin"] == "Dropped"
        assert results["rst"] == "Pass"


class TestWorkloadTrials:
    def test_dns_trial_success_with_intang(self):
        result = run_dns_trial(
            vantage_by_name("aliyun-shanghai"), DYN_RESOLVERS[0],
            calibration=CLEAN_ROOM, seed=1,
        )
        assert result.success

    def test_dns_trial_poisoned_without_intang(self):
        result = run_dns_trial(
            vantage_by_name("aliyun-shanghai"), DYN_RESOLVERS[0],
            calibration=CLEAN_ROOM, seed=1, use_intang=False,
        )
        assert result.poisoned

    def test_opendns_uncensored_even_bare(self):
        """§7.2's accidental discovery."""
        result = run_dns_trial(
            vantage_by_name("aliyun-shanghai"), OPENDNS_RESOLVERS[0],
            calibration=CLEAN_ROOM, seed=1, use_intang=False,
        )
        assert result.success

    def test_tor_blocked_without_intang_on_filtered_path(self):
        bridge = outside_china_catalog()[0]
        result = run_tor_trial(
            vantage_by_name("aliyun-shanghai"), bridge, None,
            calibration=CLEAN_ROOM, seed=2,
        )
        assert result.first_circuit_ok
        assert result.probe_launched and result.ip_blocked
        assert not result.reconnect_ok

    def test_tor_survives_on_northern_paths(self):
        bridge = outside_china_catalog()[0]
        result = run_tor_trial(
            vantage_by_name("aliyun-beijing"), bridge, None,
            calibration=CLEAN_ROOM, seed=2,
        )
        assert result.first_circuit_ok and result.reconnect_ok
        assert not result.probe_launched

    def test_tor_with_intang_never_probed(self):
        bridge = outside_china_catalog()[0]
        result = run_tor_trial(
            vantage_by_name("aliyun-shanghai"), bridge,
            "improved-tcb-teardown", calibration=CLEAN_ROOM, seed=2,
        )
        assert result.first_circuit_ok and result.reconnect_ok
        assert not result.ip_blocked

    def test_vpn_reset_without_intang(self):
        site = outside_china_catalog()[1]
        result = run_vpn_trial(
            vantage_by_name("aliyun-shanghai"), site, None,
            calibration=CLEAN_ROOM, seed=2,
        )
        assert result.reset
        assert not result.frames_ok

    def test_vpn_alive_with_intang(self):
        site = outside_china_catalog()[1]
        result = run_vpn_trial(
            vantage_by_name("aliyun-shanghai"), site,
            "improved-tcb-teardown", calibration=CLEAN_ROOM, seed=2,
        )
        assert result.established and result.frames_ok and not result.reset


class TestStatisticalShape:
    """Small-sample sanity checks that the calibrated environment yields
    paper-shaped aggregates (the benches do the full-size runs)."""

    def test_no_strategy_mostly_failure2(self):
        triple = run_strategy_cell(
            "none", CHINA_VANTAGE_POINTS[:4], outside_china_catalog()[:6],
            DEFAULT_CALIBRATION, seed=2,
        )
        assert triple.failure2 > 0.85

    def test_combined_strategy_mostly_success(self):
        triple = run_strategy_cell(
            "tcb-teardown+tcb-reversal", CHINA_VANTAGE_POINTS[:4],
            outside_china_catalog()[:6], DEFAULT_CALIBRATION, seed=2,
        )
        assert triple.success > 0.8

    def test_fin_teardown_mostly_caught(self):
        triple = run_strategy_cell(
            "tcb-teardown-fin/ttl", CHINA_VANTAGE_POINTS[:4],
            outside_china_catalog()[:6], DEFAULT_CALIBRATION, seed=2,
        )
        assert triple.failure2 > 0.7
