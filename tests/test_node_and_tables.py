"""Host handler/egress mechanics and the table-rendering utilities."""

import pytest

from repro.netstack.fragment import fragment_packet
from repro.netstack.packet import ACK, tcp_packet
from repro.netsim import Host, Network, Path, SimClock
from repro.experiments.runner import PerVantageRates, RateTriple, Outcome
from repro.experiments.tables import (
    format_rate_line,
    format_table4,
    format_table6,
    pct,
    render_table,
)

A, B = "10.0.0.1", "10.0.0.9"


def _pair():
    clock = SimClock()
    network = Network(clock=clock)
    a = network.add_host(Host(A, "a"))
    b = network.add_host(Host(B, "b"))
    network.add_path(Path(A, B, hop_count=4))
    return clock, a, b


class TestHostHandlers:
    def test_handlers_run_in_order_until_claimed(self):
        clock, a, b = _pair()
        calls = []
        b.register_handler(lambda p, now: (calls.append("first"), False)[1])
        b.register_handler(lambda p, now: (calls.append("second"), True)[1])
        b.register_handler(lambda p, now: (calls.append("third"), True)[1])
        a.send(tcp_packet(A, B, 1, 2, flags=ACK))
        clock.run()
        assert calls == ["first", "second"]

    def test_prepend_puts_handler_first(self):
        clock, a, b = _pair()
        calls = []
        b.register_handler(lambda p, now: (calls.append("old"), True)[1])
        b.register_handler(lambda p, now: (calls.append("new"), False)[1],
                           prepend=True)
        a.send(tcp_packet(A, B, 1, 2, flags=ACK))
        clock.run()
        assert calls == ["new", "old"]

    def test_unclaimed_counter(self):
        clock, a, b = _pair()
        a.send(tcp_packet(A, B, 1, 2, flags=ACK))
        clock.run()
        assert b.unclaimed_packets == 1

    def test_unregister_handler(self):
        clock, a, b = _pair()
        calls = []

        def handler(p, now):
            calls.append(1)
            return True

        b.register_handler(handler)
        b.unregister_handler(handler)
        a.send(tcp_packet(A, B, 1, 2, flags=ACK))
        clock.run()
        assert calls == []

    def test_host_reassembles_fragments_before_dispatch(self):
        clock, a, b = _pair()
        seen = []
        b.register_handler(lambda p, now: (seen.append(p), True)[1])
        packet = tcp_packet(A, B, 1, 2, flags=ACK, payload=b"Z" * 48)
        for fragment in fragment_packet(packet, 24):
            a.send(fragment)
        clock.run()
        assert len(seen) == 1
        assert seen[0].tcp.payload == b"Z" * 48


class TestEgressFilters:
    def test_filter_can_multiply_packets(self):
        clock, a, b = _pair()
        seen = []
        b.register_handler(lambda p, now: (seen.append(p), True)[1])
        a.add_egress_filter(lambda p, now: [p, p.copy()])
        a.send(tcp_packet(A, B, 1, 2, flags=ACK))
        clock.run()
        assert len(seen) == 2

    def test_filter_can_swallow_packets(self):
        clock, a, b = _pair()
        seen = []
        b.register_handler(lambda p, now: (seen.append(p), True)[1])
        a.add_egress_filter(lambda p, now: [])
        a.send(tcp_packet(A, B, 1, 2, flags=ACK))
        clock.run()
        assert seen == []

    def test_send_raw_bypasses_filters(self):
        clock, a, b = _pair()
        seen = []
        b.register_handler(lambda p, now: (seen.append(p), True)[1])
        a.add_egress_filter(lambda p, now: [])
        a.send_raw(tcp_packet(A, B, 1, 2, flags=ACK))
        clock.run()
        assert len(seen) == 1

    def test_filters_chain_in_order(self):
        clock, a, b = _pair()
        order = []
        a.add_egress_filter(lambda p, now: (order.append(1), [p])[1])
        a.add_egress_filter(lambda p, now: (order.append(2), [p])[1])
        a.send(tcp_packet(A, B, 1, 2, flags=ACK))
        clock.run()
        assert order == [1, 2]

    def test_remove_and_clear_filters(self):
        clock, a, b = _pair()
        flt = lambda p, now: []
        a.add_egress_filter(flt)
        a.remove_egress_filter(flt)
        a.add_egress_filter(flt)
        a.clear_egress_filters()
        seen = []
        b.register_handler(lambda p, now: (seen.append(p), True)[1])
        a.send(tcp_packet(A, B, 1, 2, flags=ACK))
        clock.run()
        assert len(seen) == 1


class TestTableRendering:
    def test_render_table_alignment(self):
        text = render_table(["A", "Blah"], [["x", "y"], ["long", "z"]])
        lines = text.splitlines()
        assert len({len(line) for line in lines}) == 1  # uniform width

    def test_render_table_title(self):
        text = render_table(["H"], [["v"]], title="My Title")
        assert text.splitlines()[0] == "My Title"

    def test_pct_format(self):
        assert pct(12.345) == "12.3%"

    def test_format_rate_line(self):
        triple = RateTriple.from_outcomes([Outcome.SUCCESS, Outcome.FAILURE2])
        line = format_rate_line("test", triple)
        assert "success= 50.0%" in line
        assert "(n=2)" in line

    def test_format_table4_min_max_avg(self):
        per_vantage = PerVantageRates()
        per_vantage.rates["a"] = RateTriple(success=0.9, failure1=0.1, trials=10)
        per_vantage.rates["b"] = RateTriple(success=0.7, failure2=0.3, trials=10)
        text = format_table4([("Strategy X", per_vantage)])
        assert "70.0%" in text and "90.0%" in text and "80.0%" in text

    def test_format_table6(self):
        text = format_table6([("Dyn 1", "216.146.35.35", 0.99, 0.93)])
        assert "99.0%" in text and "93.0%" in text

    def test_per_vantage_rates_empty(self):
        assert PerVantageRates().success_min_max_avg() == (0.0, 0.0, 0.0)
