"""Middlebox tests: each Table 2 behaviour plus the stateful firewall."""

import random

import pytest

from repro.netstack.fragment import fragment_packet
from repro.netstack.options import MD5SignatureOption
from repro.netstack.packet import ACK, FIN, RST, SYN, IPPacket, TCPSegment, seq_add, tcp_packet
from repro.netsim.path import Direction, Verdict
from repro.middlebox import (
    FieldSanitizerBox,
    FragmentHandlingBox,
    FragmentMode,
    PROFILE_ALIYUN,
    PROFILE_QCLOUD,
    PROFILE_TRANSPARENT,
    PROFILE_UNICOM_SJZ,
    PROFILE_UNICOM_TJ,
    PROVIDER_PROFILES,
    StatefulFirewallBox,
)

A, B = "10.0.0.1", "10.0.0.9"
C2S = Direction.CLIENT_TO_SERVER


def _data_packet(payload=b"hello", checksum=None, flags=ACK, seq=1):
    return tcp_packet(
        A, B, 1000, 80, flags=flags, seq=seq, payload=payload,
        checksum_override=checksum,
    )


class TestFragmentHandlingBox:
    def _fragments(self):
        return fragment_packet(_data_packet(payload=b"A" * 64), fragment_size=24)

    def test_pass_mode_forwards_fragments(self):
        box = FragmentHandlingBox("b", 2, mode=FragmentMode.PASS)
        for fragment in self._fragments():
            assert box.process(fragment, C2S, 0.0).verdict is Verdict.FORWARD

    def test_discard_mode(self):
        box = FragmentHandlingBox("b", 2, mode=FragmentMode.DISCARD)
        for fragment in self._fragments():
            assert box.process(fragment, C2S, 0.0).verdict is Verdict.DROP
        assert box.fragments_discarded == len(self._fragments())

    def test_reassemble_mode_emits_single_whole_packet(self):
        box = FragmentHandlingBox("b", 2, mode=FragmentMode.REASSEMBLE)
        fragments = self._fragments()
        results = [box.process(fragment, C2S, 0.0) for fragment in fragments]
        assert [r.verdict for r in results[:-1]] == [Verdict.DROP] * (len(fragments) - 1)
        final = results[-1]
        assert final.verdict is Verdict.REPLACE
        assert len(final.packets) == 1
        assert final.packets[0].tcp.payload == b"A" * 64

    def test_whole_packets_pass_in_any_mode(self):
        box = FragmentHandlingBox("b", 2, mode=FragmentMode.DISCARD)
        assert box.process(_data_packet(), C2S, 0.0).verdict is Verdict.FORWARD

    def test_reset_state_clears_partial_buffers(self):
        box = FragmentHandlingBox("b", 2, mode=FragmentMode.REASSEMBLE)
        box.process(self._fragments()[0], C2S, 0.0)
        box.reset_state()
        # Feeding only the last fragment cannot complete now.
        assert box.process(self._fragments()[-1], C2S, 0.0).verdict is Verdict.DROP


class TestFieldSanitizerBox:
    def test_bad_checksum_dropped_when_configured(self):
        box = FieldSanitizerBox("b", 2, drop_bad_checksum=1.0)
        packet = _data_packet(checksum=0xDEAD)
        assert box.process(packet, C2S, 0.0).verdict is Verdict.DROP
        assert box.dropped["bad-checksum"] == 1

    def test_good_checksum_passes(self):
        box = FieldSanitizerBox("b", 2, drop_bad_checksum=1.0)
        assert box.process(_data_packet(), C2S, 0.0).verdict is Verdict.FORWARD

    def test_no_flag_dropped(self):
        box = FieldSanitizerBox("b", 2, drop_no_flag=1.0)
        assert box.process(_data_packet(flags=0), C2S, 0.0).verdict is Verdict.DROP

    def test_fin_dropped(self):
        box = FieldSanitizerBox("b", 2, drop_fin=1.0)
        assert box.process(_data_packet(flags=FIN | ACK), C2S, 0.0).verdict is Verdict.DROP

    def test_rst_dropped(self):
        box = FieldSanitizerBox("b", 2, drop_rst=1.0)
        assert box.process(_data_packet(flags=RST), C2S, 0.0).verdict is Verdict.DROP

    def test_sometimes_dropped_is_probabilistic(self):
        box = FieldSanitizerBox("b", 2, drop_rst=0.5, rng=random.Random(7))
        verdicts = [
            box.process(_data_packet(flags=RST), C2S, 0.0).verdict
            for _ in range(200)
        ]
        dropped = verdicts.count(Verdict.DROP)
        assert 60 <= dropped <= 140

    def test_md5_optioned_packets_never_sanitized(self):
        """§5.3: middleboxes do not act on MD5-optioned packets."""
        box = FieldSanitizerBox("b", 2, drop_rst=1.0, drop_fin=1.0, drop_no_flag=1.0)
        rst = _data_packet(flags=RST)
        rst.tcp.options.append(MD5SignatureOption())
        assert box.process(rst, C2S, 0.0).verdict is Verdict.FORWARD

    def test_udp_ignored(self):
        from repro.netstack.packet import udp_packet

        box = FieldSanitizerBox("b", 2, drop_rst=1.0)
        packet = udp_packet(A, B, 5, 53, b"q")
        assert box.process(packet, C2S, 0.0).verdict is Verdict.FORWARD


class TestProviderProfiles:
    def test_table2_aliyun(self):
        profile = PROFILE_ALIYUN
        assert profile.fragment_mode is FragmentMode.DISCARD
        assert profile.drop_fin == 0.5
        assert profile.drop_rst == 0.0

    def test_table2_qcloud(self):
        profile = PROFILE_QCLOUD
        assert profile.fragment_mode is FragmentMode.REASSEMBLE
        assert profile.drop_rst == 0.5

    def test_table2_unicom_sjz(self):
        profile = PROFILE_UNICOM_SJZ
        assert profile.fragment_mode is FragmentMode.REASSEMBLE
        assert profile.drop_fin == 1.0
        assert profile.drop_bad_checksum == 0.0

    def test_table2_unicom_tj(self):
        profile = PROFILE_UNICOM_TJ
        assert profile.drop_bad_checksum == 1.0
        assert profile.drop_no_flag == 1.0
        assert profile.drop_fin == 1.0

    def test_transparent_builds_no_boxes(self):
        assert PROFILE_TRANSPARENT.build_boxes(hop=2) == []

    def test_registry_complete(self):
        assert set(PROVIDER_PROFILES) == {
            "aliyun", "qcloud", "unicom-sjz", "unicom-tj", "transparent"
        }

    def test_build_boxes_positions(self):
        boxes = PROFILE_UNICOM_TJ.build_boxes(hop=3)
        assert all(box.hop == 3 for box in boxes)
        assert len(boxes) == 2  # fragment handler + sanitizer


class TestStatefulFirewall:
    def _handshake(self, box):
        syn = tcp_packet(A, B, 1000, 80, flags=SYN, seq=100)
        box.process(syn, C2S, 0.0)
        synack = tcp_packet(B, A, 80, 1000, flags=SYN | ACK, seq=500, ack=101)
        box.process(synack, Direction.SERVER_TO_CLIENT, 0.0)
        ack = tcp_packet(A, B, 1000, 80, flags=ACK, seq=101, ack=501)
        box.process(ack, C2S, 0.0)

    def test_forged_rst_poisons_connection(self):
        """The §3.4 NAT failure: later real packets are blackholed."""
        box = StatefulFirewallBox("fw", 3)
        self._handshake(box)
        rst = tcp_packet(A, B, 1000, 80, flags=RST, seq=101)
        assert box.process(rst, C2S, 0.0).verdict is Verdict.FORWARD
        data = tcp_packet(A, B, 1000, 80, flags=ACK, seq=101, payload=b"GET /")
        assert box.process(data, C2S, 0.0).verdict is Verdict.DROP
        assert box.packets_blocked == 1

    def test_resets_still_pass_after_teardown(self):
        box = StatefulFirewallBox("fw", 3)
        self._handshake(box)
        box.process(tcp_packet(A, B, 1000, 80, flags=RST, seq=101), C2S, 0.0)
        late_rst = tcp_packet(A, B, 1000, 80, flags=RST, seq=102)
        assert box.process(late_rst, C2S, 0.0).verdict is Verdict.FORWARD

    def test_unknown_connection_passes(self):
        box = StatefulFirewallBox("fw", 3)
        data = tcp_packet(A, B, 2000, 80, flags=ACK, seq=5, payload=b"x")
        assert box.process(data, C2S, 0.0).verdict is Verdict.FORWARD

    def test_sequence_checking_blocks_out_of_window_data(self):
        box = StatefulFirewallBox("fw", 3, check_sequences=True)
        self._handshake(box)
        desync = tcp_packet(
            A, B, 1000, 80, flags=ACK, seq=seq_add(101, 0x40000000), payload=b"j"
        )
        assert box.process(desync, C2S, 0.0).verdict is Verdict.DROP

    def test_sequence_checking_allows_both_directions(self):
        box = StatefulFirewallBox("fw", 3, check_sequences=True)
        self._handshake(box)
        request = tcp_packet(A, B, 1000, 80, flags=ACK, seq=101, payload=b"GET /")
        assert box.process(request, C2S, 0.0).verdict is Verdict.FORWARD
        response = tcp_packet(
            B, A, 80, 1000, flags=ACK, seq=501, ack=106, payload=b"HTTP/1.1 200"
        )
        assert box.process(
            response, Direction.SERVER_TO_CLIENT, 0.0
        ).verdict is Verdict.FORWARD

    def test_probabilistic_teardown(self):
        survived = 0
        for seed in range(200):
            box = StatefulFirewallBox(
                "fw", 3, teardown_probability=0.5, rng=random.Random(seed)
            )
            self._handshake(box)
            box.process(tcp_packet(A, B, 1000, 80, flags=RST, seq=101), C2S, 0.0)
            if box.teardowns == 0:
                survived += 1
        assert 70 <= survived <= 130

    def test_teardown_on_fin(self):
        box = StatefulFirewallBox("fw", 3)
        self._handshake(box)
        fin = tcp_packet(A, B, 1000, 80, flags=FIN | ACK, seq=101, ack=501)
        box.process(fin, C2S, 0.0)
        assert box.teardowns == 1

    def test_reset_state_clears_entries(self):
        box = StatefulFirewallBox("fw", 3)
        self._handshake(box)
        box.process(tcp_packet(A, B, 1000, 80, flags=RST, seq=101), C2S, 0.0)
        box.reset_state()
        data = tcp_packet(A, B, 1000, 80, flags=ACK, seq=101, payload=b"x")
        assert box.process(data, C2S, 0.0).verdict is Verdict.FORWARD
