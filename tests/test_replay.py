"""Tier-1 pins for the deterministic-replay execution tier.

The replay PR's correctness contract: standing a recorded (ledger
fingerprint → outcome artifact) program in for a full simulation must be
observably identical to simulating — byte-identical trial records and
identical trial-semantic telemetry, whether the candidate trial hits,
misses on its first draw, or forks mid-run.  These tests pin that
contract and the divergence-edge accounting (miss vs fork) directly.
"""

import dataclasses
import random

import pytest

from repro.experiments import (
    CHINA_VANTAGE_POINTS,
    DEFAULT_CALIBRATION,
    outside_china_catalog,
)
from repro.experiments import replay, scenarios
from repro.experiments.runner import (
    _record_http_trial,
    _run_http_batch_records,
    _run_http_batch_sim,
    _simulate_http_trial,
    run_http_trial,
)
from repro.rngledger import (
    RngLedger,
    StreamSet,
    TrialRandom,
    as_trial_random,
    begin_ledger,
    end_ledger,
    ledger_root,
)
from repro.netstack.packet import clear_packet_pool
from repro.telemetry.metrics import get_registry

VANTAGE = CHINA_VANTAGE_POINTS[0]
SITES = outside_china_catalog(count=2)


@pytest.fixture(autouse=True)
def _fresh_pools(monkeypatch):
    monkeypatch.setenv("REPRO_RESULT_CACHE", "0")
    # These tests pin the tier itself, so they must see it enabled even
    # under the CI knob-off axis (REPRO_REPLAY=0 suite run); the bypass
    # test re-disables it per-test.
    monkeypatch.setenv("REPRO_REPLAY", "1")
    scenarios.clear_scenario_pool()
    clear_packet_pool()
    yield
    scenarios.clear_scenario_pool()
    clear_packet_pool()


def _astuple(record):
    return dataclasses.astuple(record)


def _semantic(delta):
    """Trial-owned counters/histograms of a registry delta (engine
    accounting — pool, netsim, replay itself — legitimately differs
    between the simulated and replayed execution strategies)."""
    counters = {
        name: value
        for name, value in delta["counters"].items()
        if not name.startswith(replay.ENGINE_PREFIXES)
    }
    return counters, delta["histograms"]


def _counters():
    registry = get_registry()
    return {
        name: registry.counter_value(f"replay.{name}")
        for name in ("hits", "misses", "forks", "programs", "store_conflicts")
    }


# ---------------------------------------------------------------------------
# The instrumented RNG: recording must not change the stream.
# ---------------------------------------------------------------------------
class TestTrialRandom:
    def test_draw_parity_with_plain_random(self):
        for seed in range(5):
            plain = random.Random(seed)
            trial = TrialRandom(seed)
            for _ in range(50):
                assert trial.random() == plain.random()
                assert trial.randrange(1000) == plain.randrange(1000)
                assert trial.randint(1, 6) == plain.randint(1, 6)
                assert trial.uniform(0.0, 3.5) == plain.uniform(0.0, 3.5)
                assert trial.getrandbits(32) == plain.getrandbits(32)
                assert trial.choice([1, 2, 3]) == plain.choice([1, 2, 3])

    def test_parity_holds_while_recording(self):
        plain = random.Random(7)
        ledger = begin_ledger(7)
        try:
            recorded = ledger_root(7)
            for _ in range(50):
                assert recorded.random() == plain.random()
                assert recorded.randrange(1 << 32) == plain.randrange(1 << 32)
        finally:
            end_ledger()
        assert len(ledger.entries) > 50  # root entry + every draw

    def test_spawn_matches_historical_child_seeding(self):
        # The pre-ledger idiom was ``random.Random(rng.randrange(2**31))``.
        plain = random.Random(11)
        trial = TrialRandom(11)
        child_plain = random.Random(plain.randrange(2**31))
        child_trial = trial.spawn()
        for _ in range(20):
            assert child_trial.random() == child_plain.random()
        # And the parent streams stay aligned afterwards.
        assert trial.random() == plain.random()

    def test_coin_branch_pick_match_inline_idioms(self):
        weights = (0.2, 0.5, 0.3)
        thresholds = (0.04, 0.19)
        for seed in range(20):
            plain = random.Random(seed)
            trial = TrialRandom(seed)
            assert trial.coin(0.37) == (plain.random() < 0.37)
            roll = plain.random() * sum(weights)
            index = len(weights) - 1
            for i, weight in enumerate(weights):
                roll -= weight
                if roll <= 0:
                    index = i
                    break
            assert trial.branch(weights) == index
            roll = plain.random()
            expected = 0 if roll < thresholds[0] else 1 if roll < thresholds[1] else 2
            assert trial.pick(thresholds) == expected

    def test_as_trial_random_preserves_stream(self):
        plain = random.Random(3)
        plain.random()  # advance: coercion must keep mid-stream state
        coerced = as_trial_random(random.Random(3))
        coerced.random()
        for _ in range(10):
            assert coerced.random() == plain.random()
        assert as_trial_random(None) is None

    def test_ledger_self_verification(self):
        ledger = begin_ledger(42)
        try:
            rng = ledger_root(42)
            rng.coin(0.5)
            child = rng.spawn()
            child.branch((1.0, 2.0))
            ledger.mark("run")
            rng.randrange(100)
            child.pick((0.5,))
        finally:
            end_ledger()
        streams = StreamSet(42)
        for spec, bucket in ledger.entries:
            assert streams.advance(spec) == bucket
        # A different seed must diverge on at least one content bucket.
        other = StreamSet(43)
        mismatches = sum(
            1 for spec, bucket in ledger.entries if other.advance(spec) != bucket
        )
        assert mismatches > 0


# ---------------------------------------------------------------------------
# Replay-on vs replay-off byte-identity.
# ---------------------------------------------------------------------------
def _tasks(seeds, calibration=DEFAULT_CALIBRATION, strategy="tcb-teardown-rst/ttl"):
    return [
        (VANTAGE, site, strategy, calibration, seed, True)
        for site in SITES
        for seed in seeds
    ]


class TestReplayParity:
    def test_serial_replay_matches_simulation(self):
        registry = get_registry()
        tasks = _tasks(range(4))
        reference = []
        for vantage, site, strategy, calibration, seed, keyword in tasks:
            record, _ = _simulate_http_trial(
                vantage, site, strategy, calibration, seed=seed, keyword=keyword
            )
            reference.append(record)

        replay.clear()
        before = registry.snapshot()
        first = [run_http_trial(*task) for task in tasks]
        first_delta = registry.diff(before)
        assert [_astuple(r) for r in first] == [_astuple(r) for r in reference]
        assert replay.program_count() > 0

        # Second pass over the same seeds: pure replay, same records, same
        # trial-semantic telemetry.
        before = registry.snapshot()
        second = [run_http_trial(*task) for task in tasks]
        second_delta = registry.diff(before)
        assert [_astuple(r) for r in second] == [_astuple(r) for r in reference]
        assert _semantic(second_delta) == _semantic(first_delta)
        assert registry.counter_value("replay.hits") >= len(tasks)

    def test_batched_replay_matches_batch_sim(self):
        registry = get_registry()
        tasks = _tasks(range(3))
        reference = _run_http_batch_sim(tasks)
        reference_delta = None

        replay.clear()
        before = registry.snapshot()
        recorded = _run_http_batch_records(tasks)
        recorded_delta = registry.diff(before)
        before = registry.snapshot()
        replayed = _run_http_batch_records(tasks)
        replayed_delta = registry.diff(before)

        for produced in (recorded, replayed):
            assert [_astuple(r) for r in produced] == [
                _astuple(r) for r in reference
            ]
        assert _semantic(replayed_delta) == _semantic(recorded_delta)
        assert registry.counter_value("replay.hits") >= len(tasks)

    def test_replay_off_knob_bypasses_tier(self, monkeypatch):
        monkeypatch.setenv("REPRO_REPLAY", "0")
        registry = get_registry()
        replay.clear()
        before = registry.counter_value("replay.misses")
        records = _run_http_batch_records(_tasks(range(2)))
        assert len(records) == 4
        assert replay.program_count() == 0
        assert registry.counter_value("replay.misses") == before

    def test_program_cap_limits_recording(self, monkeypatch):
        monkeypatch.setenv("REPRO_REPLAY_PROGRAMS", "1")
        replay.clear()
        tasks = _tasks(range(5))
        produced = _run_http_batch_records(tasks)
        reference = _run_http_batch_sim(tasks)
        assert [_astuple(r) for r in produced] == [_astuple(r) for r in reference]
        # One program per cell (site), never more, however many seeds miss.
        for site in SITES:
            key = replay.cell_key(
                VANTAGE, site, "tcb-teardown-rst/ttl", DEFAULT_CALIBRATION,
                True, None,
            )
            assert replay.program_count(key) == 1


# ---------------------------------------------------------------------------
# Divergence edges: first-draw misses, mid-run forks, mixed windows.
# ---------------------------------------------------------------------------
#: Calibration whose only entropic setup draws are the two NB3 resync
#: coins (drawn once per installation while the devices are constructed):
#: every other pre-run draw buckets identically for every seed — coins
#: with p=0 always bucket False, the composition pick always lands on the
#: all-evolved generation.  A candidate seed therefore either misses
#: exactly on an NB3 coin, or matches the whole setup prefix and can only
#: diverge inside the run phase (a fork).
_RUN_ONLY_DIVERGENCE = dataclasses.replace(
    DEFAULT_CALIBRATION,
    route_drift_probability=0.0,
    stateful_firewall_fraction=0.0,
    burst_loss_probability=0.0,
    base_loss_rate=0.0,
    old_model_only_fraction=0.0,
    both_models_fraction=0.0,
    evolved_tcp_ooo_lastwins_fraction=0.0,
    evolved_ignores_noflag_fraction=0.0,
    evolved_validates_ack_fraction=0.0,
    evolved_fin_teardown_fraction=0.0,
    gfw_miss_probability=0.0,
    # The NB3 coins are the remaining maximum-entropy run-phase draws: the
    # teardown RST reaching the GFW mid-handshake flips them per seed.
    resync_on_rst_probability=0.5,
    resync_on_rst_handshake_probability=0.5,
)

#: Lossy-cell calibration: the burst-loss coin — the first content draw of
#: ``build_scenario`` for an inside-China vantage — is an even coin, so
#: roughly half of all candidate seeds diverge from a recorded program on
#: their very first draw.
_LOSSY = dataclasses.replace(
    DEFAULT_CALIBRATION,
    burst_loss_probability=0.5,
    burst_loss_rate=0.35,
)


def _classify_candidates(calibration, strategy, seeds):
    """Record seed 0's program, then classify each candidate lookup as
    hit/miss/fork by watching the replay counters."""
    replay.clear()
    site = SITES[0]
    key = replay.cell_key(VANTAGE, site, strategy, calibration, True, None)
    _record_http_trial((VANTAGE, site, strategy, calibration, 0, True), key, None)
    assert replay.program_count(key) == 1
    verdicts = {}
    for seed in seeds:
        before = _counters()
        hit = replay.lookup(key, seed) is not None
        after = _counters()
        if hit:
            verdicts[seed] = "hit"
        elif after["forks"] > before["forks"]:
            verdicts[seed] = "fork"
        else:
            assert after["misses"] > before["misses"]
            verdicts[seed] = "miss"
    return verdicts


class TestDivergenceEdges:
    def test_lossy_cell_diverges_on_first_draw_as_miss(self):
        verdicts = _classify_candidates(_LOSSY, "none", range(1, 40))
        # An even first-content-draw coin (burst loss): a healthy share
        # of candidate seeds must diverge before the run mark — misses,
        # not forks.  (Seeds matching the burst coin may still fork later
        # on a per-launch loss coin; that path is pinned separately.)
        assert list(verdicts.values()).count("miss") > 5

        # A missed seed still produces the byte-identical record through
        # the replay-tier entry point.
        missed = next(s for s, v in verdicts.items() if v == "miss")
        task = (VANTAGE, SITES[0], "none", _LOSSY, missed, True)
        produced = _run_http_batch_records([task])
        reference, _ = _simulate_http_trial(
            VANTAGE, SITES[0], "none", _LOSSY, seed=missed, keyword=True
        )
        assert _astuple(produced[0]) == _astuple(reference)

    def test_nb3_coin_divergence_splits_miss_and_fork(self):
        verdicts = _classify_candidates(
            _RUN_ONLY_DIVERGENCE, "tcb-teardown-rst/ttl", range(1, 40)
        )
        # By construction the only entropic setup draws are the two NB3
        # resync coins, so every miss IS an NB3-coin divergence; seeds
        # that match both coins carry the whole setup prefix and can only
        # diverge mid-run — the handshake-teardown exchange — as forks.
        assert list(verdicts.values()).count("miss") > 5
        assert list(verdicts.values()).count("fork") > 5

        for verdict in ("miss", "fork"):
            seed = next(s for s, v in verdicts.items() if v == verdict)
            task = (
                VANTAGE, SITES[0], "tcb-teardown-rst/ttl",
                _RUN_ONLY_DIVERGENCE, seed, True,
            )
            produced = _run_http_batch_records([task])
            reference, _ = _simulate_http_trial(
                VANTAGE, SITES[0], "tcb-teardown-rst/ttl",
                _RUN_ONLY_DIVERGENCE, seed=seed, keyword=True,
            )
            assert _astuple(produced[0]) == _astuple(reference)

    def test_replayed_then_forked_trial_in_one_window(self):
        registry = get_registry()
        verdicts = _classify_candidates(
            _RUN_ONLY_DIVERGENCE, "tcb-teardown-rst/ttl", range(1, 40)
        )
        forked = next(s for s, v in verdicts.items() if v == "fork")
        window = [
            (VANTAGE, SITES[0], "tcb-teardown-rst/ttl",
             _RUN_ONLY_DIVERGENCE, 0, True),       # recorded: replays
            (VANTAGE, SITES[0], "tcb-teardown-rst/ttl",
             _RUN_ONLY_DIVERGENCE, forked, True),  # diverges: forks
        ]
        hits0 = registry.counter_value("replay.hits")
        forks0 = registry.counter_value("replay.forks")
        produced = _run_http_batch_records(window)
        assert registry.counter_value("replay.hits") == hits0 + 1
        assert registry.counter_value("replay.forks") == forks0 + 1

        reference = []
        for vantage, site, strategy, calibration, seed, keyword in window:
            record, _ = _simulate_http_trial(
                vantage, site, strategy, calibration, seed=seed, keyword=keyword
            )
            reference.append(record)
        assert [_astuple(r) for r in produced] == [_astuple(r) for r in reference]


# ---------------------------------------------------------------------------
# Counters and stats surfacing.
# ---------------------------------------------------------------------------
class TestCounters:
    def test_registry_exposes_replay_counters(self):
        snapshot = get_registry().snapshot()
        for name in (
            "replay.hits", "replay.misses", "replay.forks",
            "replay.programs", "replay.bytes_cached", "replay.store_conflicts",
        ):
            assert name in snapshot["counters"]

    def test_stats_snapshot_tracks_activity(self):
        replay.clear()
        tasks = _tasks(range(2))
        _run_http_batch_records(tasks)
        _run_http_batch_records(tasks)
        stats = replay.stats()
        assert stats["programs"] == replay.program_count() > 0
        assert stats["cells"] == len(SITES)
        assert stats["hits"] >= len(tasks)
        assert stats["bytes_cached"] > 0
