"""Ignore-path analysis tests: Table 3 regeneration, stack and middlebox
cross-validation (§5.3)."""

import pytest

from repro.analysis import (
    STANDARD_PROBES,
    cross_validate_middleboxes,
    cross_validate_stacks,
    derive_table5,
    generate_table3,
)
from repro.analysis.ignore_paths import (
    EXTENDED_PROBES,
    IgnoreVerdict,
    ignored_probes,
    probe_server,
    run_ignore_path_analysis,
)
from repro.gfw.models import old_config
from repro.tcp.profiles import (
    LINUX_2_4_37,
    LINUX_2_6_34,
    LINUX_3_14,
    LINUX_4_4,
)
from repro.tcp.tcb import TCPState


class TestServerSideEnumeration:
    def test_all_standard_probes_ignored_by_linux_44(self):
        results = run_ignore_path_analysis(LINUX_4_4)
        applicable = [
            r for r in results if r.verdict is not IgnoreVerdict.NOT_APPLICABLE
        ]
        assert applicable
        assert all(r.verdict is IgnoreVerdict.IGNORED for r in applicable)

    def test_each_probe_logs_its_own_drop_reason(self):
        """§5.3: each ignore path has a unique cause — probes must not
        trip each other's branches.  The one legitimate collision is
        no-flag vs FIN-only: both fail Linux's ACK-flag requirement."""
        reasons = {}
        for probe in STANDARD_PROBES:
            result = probe_server(probe, TCPState.ESTABLISHED, LINUX_4_4)
            if result.verdict is IgnoreVerdict.IGNORED and result.drop_reasons:
                reasons[probe.name] = result.drop_reasons[0]
        assert reasons["no-flag"] == reasons["fin-only"] == "data-without-ack-flag"
        others = {
            name: reason for name, reason in reasons.items() if name != "fin-only"
        }
        assert len(set(others.values())) == len(others)

    def test_ignored_probes_summary(self):
        summary = ignored_probes(LINUX_4_4)
        assert TCPState.ESTABLISHED in summary["unsolicited-md5"]
        assert TCPState.SYN_RECV in summary["rstack-bad-ack"]


class TestTable3:
    def test_all_nine_rows_regenerate(self):
        rows = generate_table3()
        assert len(rows) == 9
        conditions = [row.condition for row in rows]
        assert "IP total length > actual length" in conditions
        assert "TCP Header Length < 20" in conditions
        assert "TCP checksum incorrect" in conditions
        assert "Has unsolicited MD5 Optional Header" in conditions
        assert "TCP packet with no flag" in conditions
        assert "TCP packet with only FIN flag" in conditions
        assert "Timestamps too old" in conditions

    def test_universal_rows_marked_any_state(self):
        rows = {row.condition: row for row in generate_table3()}
        assert rows["TCP checksum incorrect"].tcp_state == "Any"
        assert rows["IP total length > actual length"].tcp_state == "Any"

    def test_rstack_bad_ack_row_is_syn_recv_only(self):
        rows = {(row.condition, row.flags): row for row in generate_table3()}
        row = rows[("Wrong acknowledgement number", "RST+ACK")]
        assert row.tcp_state == "SYN_RECV"

    def test_against_old_gfw_model(self):
        """Candidates remain valid against the old model too (it is even
        more permissive about control packets)."""
        rows = generate_table3(gfw_config=old_config())
        assert len(rows) >= 8


class TestCrossValidation:
    @pytest.fixture(scope="class")
    def divergences(self):
        return cross_validate_stacks()

    def _has(self, divergences, profile, probe):
        return any(
            d.profile == profile and d.probe == probe for d in divergences
        )

    def test_2634_accepts_no_flag_data(self, divergences):
        assert self._has(divergences, "linux-2.6.34", "no-flag")

    def test_2437_accepts_no_flag_data(self, divergences):
        assert self._has(divergences, "linux-2.4.37", "no-flag")

    def test_2437_accepts_unsolicited_md5(self, divergences):
        assert self._has(divergences, "linux-2.4.37", "unsolicited-md5")

    def test_2634_rejects_unsolicited_md5(self, divergences):
        assert not self._has(divergences, "linux-2.6.34", "unsolicited-md5")

    def test_old_kernels_diverge_on_syn_in_established(self, divergences):
        assert self._has(divergences, "linux-2.6.34", "syn-in-established")

    def test_314_does_not_diverge_on_checksum(self, divergences):
        assert not self._has(divergences, "linux-3.14", "bad-checksum")

    def test_40_fully_agrees_with_44(self, divergences):
        assert not any(d.profile == "linux-4.0" for d in divergences)

    def test_314_syn_handling_differs_observably(self):
        """3.14 ignores silently; 4.4 sends a challenge ACK — both are
        'ignore' verdicts but distinguishable by the emitted ACK."""
        from repro.analysis.ignore_paths import (
            EXTENDED_PROBES,
            ServerHarness,
        )

        probe = [p for p in EXTENDED_PROBES if p.name == "syn-in-established"][0]
        for profile, challenges in ((LINUX_4_4, 1), (LINUX_3_14, 0)):
            harness = ServerHarness(profile=profile)
            connection = harness.drive_to(TCPState.ESTABLISHED)
            harness.fire(probe.build(harness))
            assert connection.challenge_acks_sent == challenges


class TestMiddleboxCrossValidation:
    @pytest.fixture(scope="class")
    def survival(self):
        return cross_validate_middleboxes()

    def test_md5_survives_every_provider(self, survival):
        assert all(survival["unsolicited-md5"].values())

    def test_bad_checksum_blocked_at_tianjin(self, survival):
        assert survival["bad-checksum"]["unicom-tj"] is False
        assert survival["bad-checksum"]["aliyun"] is True

    def test_no_flag_blocked_at_tianjin(self, survival):
        assert survival["no-flag"]["unicom-tj"] is False

    def test_fin_unreliable_at_aliyun(self, survival):
        assert survival["fin-only"]["aliyun"] is False

    def test_bad_ack_survives_everywhere(self, survival):
        assert all(survival["ack-bad-ack"].values())

    def test_old_timestamp_survives_everywhere(self, survival):
        assert all(survival["old-timestamp"].values())


class TestTable5:
    def test_preferred_construction_matches_paper(self):
        preferences = derive_table5()
        assert preferences["SYN"] == ["ttl"]
        assert preferences["RST"] == ["ttl", "md5"]
        assert preferences["Data"] == ["ttl", "md5", "bad-ack", "old-timestamp"]
