"""Property-based and fuzz tests on core invariants.

These are the "no crash, no corruption" guarantees: random packet
sequences must never break the endpoint stack or the GFW device, wire
round trips must be lossless, and the reassembly/cache structures must
agree with simple reference models.
"""

import random

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.netstack.options import (
    MD5SignatureOption,
    MSSOption,
    TimestampOption,
)
from repro.netstack.packet import (
    ACK,
    FIN,
    IPPacket,
    RST,
    SYN,
    TCPSegment,
)
from repro.netstack.wire import parse_ip, serialize_ip
from repro.gfw.blacklist import Blacklist
from repro.tcp.tcb import TCPState

from helpers import CLIENT_IP, SERVER_IP, mini_topology

# ---------------------------------------------------------------------------
# Strategies for generating arbitrary-but-valid packet objects
# ---------------------------------------------------------------------------
_flags = st.sampled_from([0, SYN, ACK, RST, FIN, SYN | ACK, RST | ACK, FIN | ACK])
_options = st.lists(
    st.sampled_from(
        [MSSOption(), TimestampOption(tsval=5, tsecr=2), MD5SignatureOption()]
    ),
    max_size=2,
)


@st.composite
def tcp_segments(draw):
    return TCPSegment(
        src_port=draw(st.integers(1, 65535)),
        dst_port=draw(st.integers(1, 65535)),
        seq=draw(st.integers(0, 2**32 - 1)),
        ack=draw(st.integers(0, 2**32 - 1)),
        flags=draw(_flags),
        window=draw(st.integers(0, 65535)),
        payload=draw(st.binary(max_size=48)),
        options=draw(_options),
    )


@given(tcp_segments())
@settings(max_examples=60, deadline=None)
def test_wire_roundtrip_arbitrary_segments(segment):
    """Any generated segment survives serialize→parse intact."""
    packet = IPPacket(src="10.0.0.1", dst="10.0.0.2", payload=segment, ttl=33)
    parsed = parse_ip(serialize_ip(packet))
    reparsed = parsed.tcp
    assert reparsed.src_port == segment.src_port
    assert reparsed.dst_port == segment.dst_port
    assert reparsed.seq == segment.seq
    assert reparsed.ack == segment.ack
    assert reparsed.flags == segment.flags
    assert reparsed.payload == segment.payload
    assert len(reparsed.options) == len(segment.options)


@given(st.lists(tcp_segments(), min_size=1, max_size=15), st.integers(0, 2**31))
@settings(max_examples=30, suppress_health_check=[HealthCheck.too_slow], deadline=None)
def test_server_stack_survives_arbitrary_segments(segments, seed):
    """Fuzz: any raw segment sequence leaves the server stack in a valid
    state — no exceptions, connection table coherent, and an established
    reference connection still classifiable."""
    world = mini_topology(with_gfw=False, seed=seed % 1000)
    connection = world.client_tcp.connect(SERVER_IP, 80)
    world.run(1.0)
    for segment in segments:
        fuzzed = segment.copy()
        fuzzed.dst_port = 80
        packet = IPPacket(src=CLIENT_IP, dst=SERVER_IP, payload=fuzzed)
        world.client.send_raw(packet)
    world.run(3.0)
    for conn in world.server_tcp.connections.values():
        assert isinstance(conn.tcb.state, TCPState)
        assert 0 <= conn.tcb.rcv_nxt < 2**32
        assert 0 <= conn.tcb.snd_nxt < 2**32


@given(st.lists(tcp_segments(), min_size=1, max_size=15), st.integers(0, 2**31))
@settings(max_examples=30, suppress_health_check=[HealthCheck.too_slow], deadline=None)
def test_gfw_device_survives_arbitrary_segments(segments, seed):
    """Fuzz: the censor's tracker never crashes on garbage, and its flow
    table stays internally consistent."""
    from repro.analysis.probe import GFWHarness

    harness = GFWHarness(seed=seed % 1000)
    harness.establish()
    for segment in segments:
        fuzzed = segment.copy()
        fuzzed.src_port = 45000
        fuzzed.dst_port = 80
        harness.send_from_client(fuzzed)
    for flow in harness.device.flows.values():
        assert 0 <= flow.client_next_seq < 2**32
        assert flow.believed_client != flow.believed_server


@given(
    st.lists(
        st.tuples(
            st.sampled_from(["add", "check", "tick"]),
            st.sampled_from(["1.1.1.1", "2.2.2.2", "3.3.3.3"]),
        ),
        max_size=40,
    )
)
@settings(max_examples=50, deadline=None)
def test_blacklist_agrees_with_reference_model(operations):
    """The expiring blacklist matches a dict-of-deadlines model."""
    blacklist = Blacklist(duration=10.0)
    model = {}
    now = 0.0
    for op, ip in operations:
        if op == "add":
            blacklist.add(ip, SERVER_IP, now)
            model[ip] = now + 10.0
        elif op == "check":
            expected = ip in model and now < model[ip]
            assert blacklist.contains(ip, SERVER_IP, now) == expected
        else:
            now += 4.0
    for ip, deadline in model.items():
        assert blacklist.contains(ip, SERVER_IP, now) == (now < deadline)


@given(st.integers(0, 2**32 - 1), st.binary(min_size=1, max_size=600))
@settings(max_examples=40, deadline=None)
def test_http_transfer_integrity_any_offsets(isn_offset, payload):
    """Whatever the payload bytes, the server receives exactly what the
    client sent (checksums, segmentation, reassembly all agree)."""
    world = mini_topology(with_gfw=False, serve_http=False, seed=3)
    received = []
    world.server_tcp.listen(
        80, lambda conn: setattr(conn, "on_data",
                                 lambda c, data: received.append(data))
    )
    connection = world.client_tcp.connect(SERVER_IP, 80)
    connection.on_established = lambda c: c.send(payload, segment_size=128)
    world.run(5.0)
    assert b"".join(received) == payload


@given(st.lists(st.floats(0.001, 5.0), min_size=1, max_size=30))
@settings(max_examples=50, deadline=None)
def test_simclock_monotonic_under_arbitrary_scheduling(delays):
    """Time observed by callbacks never decreases."""
    from repro.netsim.simclock import SimClock

    clock = SimClock()
    observed = []
    for delay in delays:
        clock.schedule(delay, lambda: observed.append(clock.now))
    clock.run()
    assert observed == sorted(observed)


@given(st.data())
@settings(max_examples=25, deadline=None)
def test_fragmentation_transparent_to_endpoints(data):
    """Property: fragmenting a data packet at any legal size delivers
    the same bytes to the far endpoint."""
    payload = data.draw(st.binary(min_size=64, max_size=256))
    frag_size = data.draw(st.sampled_from([16, 24, 40, 64]))
    from repro.netstack.fragment import fragment_packet
    from repro.netstack.packet import tcp_packet

    world = mini_topology(with_gfw=False, serve_http=False, seed=5)
    seen = []
    world.server.register_handler(
        lambda p, now: (seen.append(p), False)[1], prepend=True
    )
    packet = tcp_packet(
        CLIENT_IP, SERVER_IP, 1234, 9, flags=ACK, seq=77, payload=payload
    )
    for fragment in fragment_packet(packet, frag_size):
        world.client.send_raw(fragment)
    world.run(2.0)
    whole = [p for p in seen if p.is_tcp]
    assert len(whole) == 1
    assert whole[0].tcp.payload == payload
