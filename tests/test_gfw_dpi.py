"""DPI engine tests: keyword matching, protocol dispatch, latching."""

import pytest

from repro.gfw.dpi import StreamInspector
from repro.gfw.rules import DEFAULT_KEYWORDS, Detection, RuleSet
from repro.apps.dns import encode_query
from repro.apps.tor import TOR_HANDSHAKE_PREAMBLE
from repro.apps.vpn import OPENVPN_TCP_PREAMBLE


def _inspector(**rule_kw):
    return StreamInspector(RuleSet(**rule_kw))


class TestKeywordMatching:
    def test_keyword_in_request_line(self):
        detection = _inspector().feed(b"GET /?q=ultrasurf HTTP/1.1\r\nHost: x\r\n\r\n")
        assert detection is not None
        assert detection.kind == "http-keyword"
        assert detection.detail == "ultrasurf"

    def test_keyword_case_insensitive(self):
        detection = _inspector().feed(b"GET /UltraSurf HTTP/1.1\r\n\r\n")
        assert detection is not None

    def test_benign_request_clean(self):
        assert _inspector().feed(b"GET /news HTTP/1.1\r\nHost: x\r\n\r\n") is None

    def test_keyword_split_across_feeds(self):
        inspector = _inspector()
        assert inspector.feed(b"GET /?q=ultra") is None
        detection = inspector.feed(b"surf HTTP/1.1\r\n\r\n")
        assert detection is not None

    def test_detection_latches(self):
        inspector = _inspector()
        first = inspector.feed(b"GET /ultrasurf HTTP/1.1\r\n\r\n")
        second = inspector.feed(b"more bytes")
        assert first is second

    def test_keyword_in_header_detected(self):
        detection = _inspector().feed(
            b"GET / HTTP/1.1\r\nHost: www.ultrasurf.example\r\n\r\n"
        )
        assert detection is not None

    def test_non_http_stream_with_keyword_not_matched(self):
        """The rule engine keys keyword matching to HTTP requests."""
        assert _inspector().feed(b"\x00\x01ultrasurf binary protocol") is None

    def test_custom_keywords(self):
        inspector = _inspector(keywords=[b"forbidden-word"])
        assert inspector.feed(b"GET /?q=ultrasurf HTTP/1.1\r\n\r\n") is None
        assert inspector.feed(b"GET /forbidden-word HTTP/1.1\r\n\r\n") is not None

    def test_inspection_window_bounds_memory(self):
        inspector = _inspector()
        inspector.feed(b"GET /" + b"a" * 100_000)
        assert len(inspector._buffer) <= 8192


class TestHTTPResponses:
    def test_responses_not_censored_by_default(self):
        """Park et al.: response filtering discontinued (§2.1)."""
        body = b"HTTP/1.1 301 Moved\r\nLocation: /ultrasurf\r\n\r\n"
        assert _inspector().feed(body) is None

    def test_response_censorship_can_be_enabled(self):
        """§3.3: GFW devices on *some* paths detect response keywords."""
        inspector = _inspector(censor_http_responses=True)
        body = b"HTTP/1.1 301 Moved\r\nLocation: /ultrasurf\r\n\r\n"
        detection = inspector.feed(body)
        assert detection is not None
        assert detection.kind == "http-response-keyword"


class TestDNSOverTCP:
    def _tcp_dns(self, qname):
        query = encode_query(qid=7, qname=qname)
        return len(query).to_bytes(2, "big") + query

    def test_poisoned_domain_detected(self):
        detection = _inspector().feed(self._tcp_dns("www.dropbox.com"))
        assert detection is not None
        assert detection.kind == "dns-domain"
        assert detection.detail == "www.dropbox.com"

    def test_subdomain_of_poisoned_domain_detected(self):
        detection = _inspector().feed(self._tcp_dns("cdn.www.dropbox.com"))
        assert detection is not None

    def test_clean_domain_passes(self):
        assert _inspector().feed(self._tcp_dns("example.org")) is None

    def test_partial_message_waits_for_more_bytes(self):
        inspector = _inspector()
        framed = self._tcp_dns("www.dropbox.com")
        assert inspector.feed(framed[:5]) is None
        assert inspector.feed(framed[5:]) is not None


class TestFingerprints:
    def test_tor_preamble_detected(self):
        detection = _inspector().feed(TOR_HANDSHAKE_PREAMBLE + b"...")
        assert detection is not None
        assert detection.kind == "tor"

    def test_tor_detection_disabled_on_unfiltered_paths(self):
        inspector = _inspector(detect_tor=False)
        assert inspector.feed(TOR_HANDSHAKE_PREAMBLE) is None

    def test_vpn_preamble_detected(self):
        detection = _inspector().feed(OPENVPN_TCP_PREAMBLE)
        assert detection is not None
        assert detection.kind == "vpn"

    def test_vpn_detection_can_be_disabled(self):
        inspector = _inspector(detect_vpn=False)
        assert inspector.feed(OPENVPN_TCP_PREAMBLE) is None


class TestRuleSet:
    def test_default_keywords_include_ultrasurf(self):
        assert b"ultrasurf" in DEFAULT_KEYWORDS

    def test_domain_matching_normalizes(self):
        rules = RuleSet()
        assert rules.domain_is_poisoned("WWW.DROPBOX.COM.")
        assert not rules.domain_is_poisoned("dropbox.com.evil.example")

    def test_detection_str(self):
        assert str(Detection("tor", "x")) == "tor:x"

    def test_empty_feed_returns_none(self):
        assert _inspector().feed(b"") is None
