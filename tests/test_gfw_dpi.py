"""DPI engine tests: keyword matching, protocol dispatch, latching."""

import pytest

from repro.gfw.dpi import StreamInspector
from repro.gfw.rules import DEFAULT_KEYWORDS, Detection, RuleSet
from repro.apps.dns import encode_query
from repro.apps.tor import TOR_HANDSHAKE_PREAMBLE
from repro.apps.vpn import OPENVPN_TCP_PREAMBLE


def _inspector(**rule_kw):
    return StreamInspector(RuleSet(**rule_kw))


class TestKeywordMatching:
    def test_keyword_in_request_line(self):
        detection = _inspector().feed(b"GET /?q=ultrasurf HTTP/1.1\r\nHost: x\r\n\r\n")
        assert detection is not None
        assert detection.kind == "http-keyword"
        assert detection.detail == "ultrasurf"

    def test_keyword_case_insensitive(self):
        detection = _inspector().feed(b"GET /UltraSurf HTTP/1.1\r\n\r\n")
        assert detection is not None

    def test_benign_request_clean(self):
        assert _inspector().feed(b"GET /news HTTP/1.1\r\nHost: x\r\n\r\n") is None

    def test_keyword_split_across_feeds(self):
        inspector = _inspector()
        assert inspector.feed(b"GET /?q=ultra") is None
        detection = inspector.feed(b"surf HTTP/1.1\r\n\r\n")
        assert detection is not None

    def test_detection_latches(self):
        inspector = _inspector()
        first = inspector.feed(b"GET /ultrasurf HTTP/1.1\r\n\r\n")
        second = inspector.feed(b"more bytes")
        assert first is second

    def test_keyword_in_header_detected(self):
        detection = _inspector().feed(
            b"GET / HTTP/1.1\r\nHost: www.ultrasurf.example\r\n\r\n"
        )
        assert detection is not None

    def test_non_http_stream_with_keyword_not_matched(self):
        """The rule engine keys keyword matching to HTTP requests."""
        assert _inspector().feed(b"\x00\x01ultrasurf binary protocol") is None

    def test_custom_keywords(self):
        inspector = _inspector(keywords=[b"forbidden-word"])
        assert inspector.feed(b"GET /?q=ultrasurf HTTP/1.1\r\n\r\n") is None
        assert inspector.feed(b"GET /forbidden-word HTTP/1.1\r\n\r\n") is not None

    def test_inspection_window_bounds_memory(self):
        inspector = _inspector()
        inspector.feed(b"GET /" + b"a" * 100_000)
        assert len(inspector._buffer) <= 8192


class TestHTTPResponses:
    def test_responses_not_censored_by_default(self):
        """Park et al.: response filtering discontinued (§2.1)."""
        body = b"HTTP/1.1 301 Moved\r\nLocation: /ultrasurf\r\n\r\n"
        assert _inspector().feed(body) is None

    def test_response_censorship_can_be_enabled(self):
        """§3.3: GFW devices on *some* paths detect response keywords."""
        inspector = _inspector(censor_http_responses=True)
        body = b"HTTP/1.1 301 Moved\r\nLocation: /ultrasurf\r\n\r\n"
        detection = inspector.feed(body)
        assert detection is not None
        assert detection.kind == "http-response-keyword"


class TestDNSOverTCP:
    def _tcp_dns(self, qname):
        query = encode_query(qid=7, qname=qname)
        return len(query).to_bytes(2, "big") + query

    def test_poisoned_domain_detected(self):
        detection = _inspector().feed(self._tcp_dns("www.dropbox.com"))
        assert detection is not None
        assert detection.kind == "dns-domain"
        assert detection.detail == "www.dropbox.com"

    def test_subdomain_of_poisoned_domain_detected(self):
        detection = _inspector().feed(self._tcp_dns("cdn.www.dropbox.com"))
        assert detection is not None

    def test_clean_domain_passes(self):
        assert _inspector().feed(self._tcp_dns("example.org")) is None

    def test_partial_message_waits_for_more_bytes(self):
        inspector = _inspector()
        framed = self._tcp_dns("www.dropbox.com")
        assert inspector.feed(framed[:5]) is None
        assert inspector.feed(framed[5:]) is not None


class TestFingerprints:
    def test_tor_preamble_detected(self):
        detection = _inspector().feed(TOR_HANDSHAKE_PREAMBLE + b"...")
        assert detection is not None
        assert detection.kind == "tor"

    def test_tor_detection_disabled_on_unfiltered_paths(self):
        inspector = _inspector(detect_tor=False)
        assert inspector.feed(TOR_HANDSHAKE_PREAMBLE) is None

    def test_vpn_preamble_detected(self):
        detection = _inspector().feed(OPENVPN_TCP_PREAMBLE)
        assert detection is not None
        assert detection.kind == "vpn"

    def test_vpn_detection_can_be_disabled(self):
        inspector = _inspector(detect_vpn=False)
        assert inspector.feed(OPENVPN_TCP_PREAMBLE) is None


class TestRuleSet:
    def test_default_keywords_include_ultrasurf(self):
        assert b"ultrasurf" in DEFAULT_KEYWORDS

    def test_domain_matching_normalizes(self):
        rules = RuleSet()
        assert rules.domain_is_poisoned("WWW.DROPBOX.COM.")
        assert not rules.domain_is_poisoned("dropbox.com.evil.example")

    def test_detection_str(self):
        assert str(Detection("tor", "x")) == "tor:x"

    def test_empty_feed_returns_none(self):
        assert _inspector().feed(b"") is None


# ---------------------------------------------------------------------------
# Streaming engine vs. the retired rescan engine (the parity oracle)
# ---------------------------------------------------------------------------
class TestStreamingParity:
    """Property-style checks: for any stream that fits the inspect
    window, the streaming engine and the full-rescan engine must agree
    byte-for-byte on the Detection (kind and detail) under arbitrary
    segmentation."""

    PREFIXES = [
        b"",
        b"GET /q=",
        b"POST /submit?d=",
        b"HTTP/1.1 200 OK\r\nbody: ",
        b"HEAD",          # incomplete method prefix
        b"XYZZY ",        # non-HTTP
        b"\x00\x10",      # plausible DNS frame length
        b"\x00\x00",      # zero-length DNS frame (never parses)
    ]
    ALPHABET = b"abcdefg /:.-ulersatrfnFALUNXW\r\n"

    @staticmethod
    def _segment(rng, stream):
        chunks = []
        index = 0
        while index < len(stream):
            step = rng.randint(1, 97)
            chunks.append(stream[index : index + step])
            index += step
        return chunks

    @staticmethod
    def _run_both(rules, chunks):
        from repro.gfw.dpi import RescanInspector

        streaming, rescan = StreamInspector(rules), RescanInspector(rules)
        for chunk in chunks:
            streaming.feed(chunk)
            rescan.feed(chunk)
        return streaming.detection, rescan.detection

    def test_randomized_segmentations_match_rescan(self):
        import random

        rng = random.Random(20170901)
        rules = RuleSet()
        for trial in range(400):
            body = bytes(rng.choices(self.ALPHABET, k=rng.randint(0, 2500)))
            stream = rng.choice(self.PREFIXES) + body
            got, expected = self._run_both(rules, self._segment(rng, stream))
            assert (got is None) == (expected is None), (trial, got, expected)
            if got is not None:
                assert (got.kind, got.detail) == (expected.kind, expected.detail)

    def test_planted_keywords_every_boundary_split(self):
        """A keyword split at *every* possible segment boundary — the
        exhaustive version of the boundary-straddle property."""
        rules = RuleSet()
        stream = b"GET /?q=ultrasurf HTTP/1.1\r\n\r\n"
        for cut in range(1, len(stream)):
            got, expected = self._run_both(
                rules, [stream[:cut], stream[cut:]]
            )
            assert got is not None and expected is not None, cut
            assert (got.kind, got.detail) == (expected.kind, expected.detail)

    def test_response_censorship_parity(self):
        import random

        rng = random.Random(42)
        rules = RuleSet(censor_http_responses=True)
        stream = b"HTTP/1.1 200 OK\r\n\r\n<html>falun content</html>"
        for _ in range(50):
            got, expected = self._run_both(rules, self._segment(rng, stream))
            assert got is not None and expected is not None
            assert (got.kind, got.detail) == (expected.kind, expected.detail)
            assert got.kind == "http-response-keyword"

    def test_dns_over_tcp_parity(self):
        import random

        rng = random.Random(9)
        rules = RuleSet()
        message = encode_query(0x1234, "www.dropbox.com")
        stream = len(message).to_bytes(2, "big") + message
        for _ in range(50):
            got, expected = self._run_both(rules, self._segment(rng, stream))
            assert got is not None and expected is not None
            assert (got.kind, got.detail) == (expected.kind, expected.detail)
            assert got.kind == "dns-domain"

    def test_reassembled_overlap_stream_parity(self):
        """Feed both engines the ReceiveBuffer's delivered output for
        randomly overlapping, out-of-order segment arrivals — the exact
        byte source the device uses."""
        import random

        from repro.netstack.fragment import OverlapPolicy
        from repro.tcp.reassembly import ReceiveBuffer

        rng = random.Random(77)
        rules = RuleSet()
        stream = b"GET /?q=ultrasurf HTTP/1.1\r\nHost: parity.example\r\n\r\n"
        for policy in (OverlapPolicy.FIRST_WINS, OverlapPolicy.LAST_WINS):
            for _ in range(60):
                pieces = []
                index = 0
                while index < len(stream):
                    step = rng.randint(1, 11)
                    overlap = rng.randint(0, min(3, index))
                    pieces.append(
                        (index - overlap, stream[index - overlap : index + step])
                    )
                    index += step
                rng.shuffle(pieces)
                buffer = ReceiveBuffer(0, policy=policy)
                delivered_chunks = []
                for seq, payload in pieces:
                    delivered = buffer.add(seq, payload)
                    if delivered:
                        delivered_chunks.append(delivered)
                got, expected = self._run_both(rules, delivered_chunks)
                assert (got is None) == (expected is None)
                if got is not None:
                    assert (got.kind, got.detail) == (expected.kind, expected.detail)


class TestInspectWindowTrim:
    def test_keyword_straddling_trim_point_detected(self):
        """Satellite regression: a keyword split exactly at the
        8192-byte trim point must still be caught.  The retired rescan
        engine drops it (its buffer trim also destroys the stream
        prefix that classified the flow as HTTP); the streaming
        engine's cursors survive the trim by construction."""
        from repro.gfw.dpi import RescanInspector, _INSPECT_WINDOW

        rules = RuleSet()
        head = b"GET /?q="
        filler = b"a" * (_INSPECT_WINDOW - len(head) - len(b"ultra"))
        stream = head + filler + b"ultrasurf HTTP/1.1\r\n\r\n"
        # Split exactly at the window boundary: "ultra" ends byte 8192.
        first, second = stream[:_INSPECT_WINDOW], stream[_INSPECT_WINDOW:]
        assert first.endswith(b"ultra") and second.startswith(b"surf")

        streaming = StreamInspector(rules)
        assert streaming.feed(first) is None
        detection = streaming.feed(second)
        assert detection is not None and detection.detail == "ultrasurf"

        rescan = RescanInspector(rules)
        rescan.feed(first)
        assert rescan.feed(second) is None  # the documented defect

    def test_keyword_beyond_window_detected_by_streaming(self):
        """Streams longer than the window are still fully inspected by
        the streaming engine (the rescan engine went blind once its
        buffer trim chopped off the HTTP request line)."""
        inspector = _inspector()
        inspector.feed(b"GET /?q=" + b"b" * 20000)
        detection = inspector.feed(b"...ultrasurf...")
        assert detection is not None and detection.detail == "ultrasurf"

    def test_streaming_state_stays_bounded(self):
        inspector = _inspector()
        for _ in range(64):
            inspector.feed(b"c" * 1460)
        assert inspector.state_bytes < 512


# ---------------------------------------------------------------------------
# The compiled automaton
# ---------------------------------------------------------------------------
class TestKeywordAutomaton:
    def test_compile_is_memoized_per_keyword_tuple(self):
        from repro.gfw.automaton import compile_keywords

        first = compile_keywords(DEFAULT_KEYWORDS)
        second = compile_keywords(tuple(DEFAULT_KEYWORDS))
        assert first is second
        assert compile_keywords((b"other",)) is not first

    def test_inspectors_share_one_automaton(self):
        a, b = _inspector(), _inspector()
        assert a.automaton is b.automaton

    def test_pickle_roundtrip_preserves_matching(self):
        import pickle

        from repro.gfw.automaton import compile_keywords

        automaton = compile_keywords(DEFAULT_KEYWORDS)
        clone = pickle.loads(pickle.dumps(automaton))
        assert clone == automaton
        found = set(clone.matches_empty)
        state = clone.advance(0, b"say ultrasurf now", found)
        assert any(
            DEFAULT_KEYWORDS[i] == b"ultrasurf" for i in found
        )
        assert isinstance(state, int)

    def test_small_and_large_segment_paths_agree(self):
        """The per-byte path and the vectorized window path must find
        the same keywords across a size-regime flip-flop."""
        from repro.gfw.automaton import SMALL_SEGMENT

        chunks = [
            b"x" * (SMALL_SEGMENT + 40) + b"fal",      # large: carries tail
            b"un",                                     # small: folds tail back
            b"y" * (SMALL_SEGMENT + 9) + b"freedom_",  # large again
            b"tunnel",                                 # small finish
        ]
        inspector = StreamInspector(
            RuleSet(keywords=(b"falun", b"freedom_tunnel"))
        )
        inspector.feed(b"GET /?q=")  # classify as HTTP so reporting is live
        for chunk in chunks[:-1]:
            inspector.feed(chunk)
        detection = inspector.feed(chunks[-1])
        assert detection is not None
        assert detection.detail == "falun"  # list-order priority

    def test_state_accounting_nonzero(self):
        from repro.gfw.automaton import compile_keywords

        automaton = compile_keywords(DEFAULT_KEYWORDS)
        assert automaton.state_count() > 1
        assert automaton.state_bytes() > 256 * 8
