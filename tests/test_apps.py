"""Application-protocol tests: HTTP, DNS codec + clients, Tor, VPN, UDP."""

import pytest
from hypothesis import given, strategies as st

from repro.apps.dns import (
    DNSTcpResolver,
    DNSUdpClient,
    DNSUdpResolver,
    encode_query,
    encode_response,
    extract_query_name,
    parse_message,
)
from repro.apps.http import (
    HTTPClient,
    HTTPServer,
    build_request,
    build_response,
    parse_request,
    parse_response,
)
from repro.apps.tor import TOR_HANDSHAKE_PREAMBLE, TorBridge, TorClient
from repro.apps.udp import UDPHost
from repro.apps.vpn import OpenVPNClient, OpenVPNServer

from helpers import CLIENT_IP, SERVER_IP, mini_topology


class TestHTTPCodec:
    def test_build_request_structure(self):
        raw = build_request("example.com", "/page", {"X-Probe": "1"})
        assert raw.startswith(b"GET /page HTTP/1.1\r\n")
        assert b"Host: example.com\r\n" in raw
        assert b"X-Probe: 1\r\n" in raw
        assert raw.endswith(b"\r\n\r\n")

    def test_parse_request_roundtrip(self):
        raw = build_request("example.com", "/page")
        method, path, headers = parse_request(raw)
        assert method == "GET"
        assert path == "/page"
        assert headers["host"] == "example.com"

    def test_parse_request_incomplete(self):
        assert parse_request(b"GET / HTTP/1.1\r\nHost: x") is None

    def test_parse_request_garbage(self):
        assert parse_request(b"garbage\r\n\r\n") is None

    def test_response_roundtrip_with_content_length(self):
        raw = build_response(b"hello world")
        status, body = parse_response(raw)
        assert status == "HTTP/1.1 200 OK"
        assert body == b"hello world"

    def test_parse_response_waits_for_full_body(self):
        raw = build_response(b"hello world")
        assert parse_response(raw[:-4]) is None


class TestHTTPOverStack:
    def test_full_exchange(self):
        world = mini_topology(with_gfw=False)
        client = HTTPClient(world.client_tcp)
        _, exchange = client.get(SERVER_IP, host="example.com", path="/x")
        world.run(3.0)
        assert exchange.connected
        assert exchange.got_response
        assert b"It works!" in exchange.response_body

    def test_requests_served_counter(self):
        world = mini_topology(with_gfw=False, serve_http=False)
        server = HTTPServer(world.server_tcp, body=b"custom")
        client = HTTPClient(world.client_tcp)
        _, exchange = client.get(SERVER_IP, host="h")
        world.run(3.0)
        assert server.requests_served == 1
        assert exchange.response_body == b"custom"

    def test_on_done_callback(self):
        world = mini_topology(with_gfw=False)
        done = []
        client = HTTPClient(world.client_tcp)
        client.get(SERVER_IP, host="h", on_done=done.append)
        world.run(3.0)
        assert len(done) == 1


class TestDNSCodec:
    def test_query_roundtrip(self):
        raw = encode_query(qid=0x1234, qname="www.example.com")
        message = parse_message(raw)
        assert message.qid == 0x1234
        assert message.qname == "www.example.com"
        assert not message.is_response

    def test_response_roundtrip(self):
        raw = encode_response(qid=9, qname="a.b.c", address="1.2.3.4")
        message = parse_message(raw)
        assert message.is_response
        assert message.answers == ["1.2.3.4"]

    def test_extract_query_name(self):
        raw = encode_query(qid=1, qname="censored.example")
        assert extract_query_name(raw) == "censored.example"

    def test_malformed_rejected(self):
        with pytest.raises(ValueError):
            parse_message(b"\x00\x01")
        with pytest.raises(ValueError):
            parse_message(b"\x00" * 12)  # qdcount == 0

    def test_bad_label_rejected(self):
        with pytest.raises(ValueError):
            encode_query(qid=1, qname="a..b")

    @given(
        st.lists(
            st.text(alphabet="abcdefghijklmnopqrstuvwxyz0123456789-",
                    min_size=1, max_size=20),
            min_size=1, max_size=4,
        ),
        st.integers(0, 0xFFFF),
    )
    def test_property_qname_roundtrip(self, labels, qid):
        qname = ".".join(labels)
        assert extract_query_name(encode_query(qid, qname)) == qname


class TestDNSApplications:
    def _dns_world(self):
        world = mini_topology(with_gfw=False, serve_http=False)
        client_udp = UDPHost(world.client)
        server_udp = UDPHost(world.server)
        zone = {"www.example.com": "93.184.216.34"}
        DNSUdpResolver(server_udp, zone)
        DNSTcpResolver(world.server_tcp, zone)
        return world, client_udp

    def test_udp_resolution(self):
        world, client_udp = self._dns_world()
        client = DNSUdpClient(client_udp, SERVER_IP, world.clock)
        answers = []
        client.resolve("www.example.com", lambda m: answers.extend(m.answers))
        world.run(2.0)
        assert answers == ["93.184.216.34"]

    def test_udp_unknown_name_unanswered(self):
        world, client_udp = self._dns_world()
        client = DNSUdpClient(client_udp, SERVER_IP, world.clock)
        answers = []
        client.resolve("nxdomain.example", lambda m: answers.append(m))
        world.run(2.0)
        assert answers == []

    def test_tcp_resolution_with_framing(self):
        world, _ = self._dns_world()
        connection = world.client_tcp.connect(SERVER_IP, 53)
        responses = []
        buffer = bytearray()

        def on_data(conn, data):
            buffer.extend(data)
            if len(buffer) >= 2:
                length = int.from_bytes(buffer[:2], "big")
                if len(buffer) >= 2 + length:
                    responses.append(parse_message(bytes(buffer[2 : 2 + length])))

        query = encode_query(qid=3, qname="www.example.com")
        connection.on_established = lambda c: c.send(
            len(query).to_bytes(2, "big") + query
        )
        connection.on_data = on_data
        world.run(3.0)
        assert responses and responses[0].answers == ["93.184.216.34"]


class TestUDPHost:
    def test_bind_and_deliver(self):
        world = mini_topology(with_gfw=False, serve_http=False)
        client_udp = UDPHost(world.client)
        server_udp = UDPHost(world.server)
        got = []
        server_udp.bind(9999, lambda src, sport, data, now: got.append(data))
        client_udp.sendto(b"ping", SERVER_IP, 9999, src_port=5555)
        world.run(1.0)
        assert got == [b"ping"]

    def test_unbound_port_silently_drops(self):
        world = mini_topology(with_gfw=False, serve_http=False)
        client_udp = UDPHost(world.client)
        UDPHost(world.server)
        client_udp.sendto(b"ping", SERVER_IP, 12345, src_port=5555)
        world.run(1.0)  # nothing raises, nothing delivered

    def test_duplicate_bind_rejected(self):
        world = mini_topology(with_gfw=False, serve_http=False)
        server_udp = UDPHost(world.server)
        server_udp.bind(53, lambda *a: None)
        with pytest.raises(ValueError):
            server_udp.bind(53, lambda *a: None)

    def test_ephemeral_bind(self):
        world = mini_topology(with_gfw=False, serve_http=False)
        client_udp = UDPHost(world.client)
        port = client_udp.bind(0, lambda *a: None)
        assert port >= 40000


class TestTor:
    def _tor_world(self):
        world = mini_topology(with_gfw=False, serve_http=False)
        bridge = TorBridge(world.server_tcp)
        client = TorClient(world.client_tcp)
        return world, bridge, client

    def test_circuit_establishment_and_cells(self):
        world, bridge, client = self._tor_world()
        circuit = client.open_circuit(SERVER_IP, cells_to_send=3)
        world.run(3.0)
        assert circuit.established
        assert circuit.cells_relayed == 3
        assert bridge.handshakes_completed == 1

    def test_non_tor_client_rejected(self):
        world, bridge, _ = self._tor_world()
        connection = world.client_tcp.connect(SERVER_IP, 443)
        connection.on_established = lambda c: c.send(b"X" * 64)
        world.run(3.0)
        assert bridge.handshakes_completed == 0

    def test_probe_oracle(self):
        world, bridge, _ = self._tor_world()
        assert bridge.answers_probe(SERVER_IP, 443)
        assert not bridge.answers_probe(SERVER_IP, 80)
        assert not bridge.answers_probe("8.8.8.8", 443)

    def test_preamble_is_fingerprintable(self):
        assert len(TOR_HANDSHAKE_PREAMBLE) >= 16


class TestVPN:
    def test_session_and_frames(self):
        world = mini_topology(with_gfw=False, serve_http=False)
        server = OpenVPNServer(world.server_tcp)
        client = OpenVPNClient(world.client_tcp)
        session = client.open_session(SERVER_IP, frames_to_send=2)
        world.run(3.0)
        assert session.established
        assert session.payload_frames == 2
        assert server.sessions_established == 1
