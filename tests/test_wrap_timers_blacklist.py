"""Last-mile corners: sequence wraparound under load, retransmission
backoff, blacklist bidirectionality, and the DNS forwarder under loss."""

import random

import pytest

from repro.core.intang import INTANG
from repro.netstack.packet import ACK, IPPacket, TCPSegment, seq_add
from repro.tcp.stack import INITIAL_RTO, CloseReason
from repro.tcp.tcb import TCPState

from helpers import CLIENT_IP, SERVER_IP, detections, fetch, mini_topology


class TestSequenceWraparound:
    def _world_with_wrapping_isn(self, isn):
        """Force the client's next connection to start near the wrap."""
        world = mini_topology(with_gfw=False, serve_http=False)

        class FixedISN(random.Random):
            def __init__(self, value):
                super().__init__(0)
                self._value = value

            def randrange(self, *args, **kw):
                return self._value

        world.client_tcp.rng = FixedISN(isn)
        return world

    def test_transfer_across_seq_wrap(self):
        """A payload spanning 2^32 - 1 -> 0 arrives intact."""
        world = self._world_with_wrapping_isn(0xFFFFFF00)
        received = []
        world.server_tcp.listen(
            80, lambda conn: setattr(conn, "on_data",
                                     lambda c, d: received.append(d))
        )
        payload = bytes(i % 251 for i in range(2048))
        connection = world.client_tcp.connect(SERVER_IP, 80)
        connection.on_established = lambda c: c.send(payload, segment_size=256)
        world.run(5.0)
        assert b"".join(received) == payload
        assert connection.tcb.snd_nxt < 0xFFFFFF00  # wrapped

    def test_gfw_tracks_across_seq_wrap(self):
        """The censor's shadow buffer also survives the wrap."""
        world = mini_topology(seed=17)
        world.client_tcp.rng = type(
            "R", (random.Random,),
            {"randrange": lambda self, *a, **k: 0xFFFFFFF0},
        )(0)
        exchange = fetch(world)
        assert detections(world) == 1
        assert not exchange.got_response


class TestRetransmissionBackoff:
    def test_rto_doubles_per_retry(self):
        """Retransmissions arrive at exponentially spaced times."""
        world = mini_topology(with_gfw=False, serve_http=False, loss_rate=0.0)
        # No listener on 4455: SYN+retries go unanswered... a closed port
        # refuses instead.  Use a black-hole: drop everything server-side.
        world.path.loss_rate = 1.0
        times = []
        original_send = world.client.send

        def spy(packet):
            if packet.is_tcp and packet.tcp.is_pure_syn:
                times.append(world.clock.now)
            original_send(packet)

        world.client.send = spy
        connection = world.client_tcp.connect(SERVER_IP, 80)
        world.run(30.0)
        assert connection.close_reason is CloseReason.TIMEOUT
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert len(gaps) >= 3
        assert gaps[0] == pytest.approx(INITIAL_RTO, rel=0.01)
        for earlier, later in zip(gaps, gaps[1:]):
            assert later >= earlier * 1.5  # doubling (capped late)

    def test_ack_cancels_retransmission(self):
        world = mini_topology(with_gfw=False)
        connection = world.client_tcp.connect(SERVER_IP, 80)
        world.run(1.0)
        sent = []
        original_send = world.client.send
        world.client.send = lambda p: (sent.append(p), original_send(p))[1]
        connection.send(b"once")
        world.run(5.0)
        data_packets = [
            p for p in sent if p.is_tcp and p.tcp.payload == b"once"
        ]
        assert len(data_packets) == 1  # acked before any RTO fired


class TestBlacklistBidirectionality:
    def test_both_directions_disrupted(self):
        """§2.1: resets go to *both* the client and the server; during
        the window the server's packets to the client are also hit."""
        world = mini_topology(seed=19)
        fetch(world)
        assert detections(world) == 1
        server_rsts = []

        def sniff(packet, now):
            origin = str(packet.meta.get("origin", ""))
            if origin.startswith("gfw") and packet.is_tcp and packet.tcp.is_rst:
                server_rsts.append(packet)
            return False

        world.server.register_handler(sniff, prepend=True)
        # Server-originated traffic during the blacklist window:
        stray = IPPacket(
            src=SERVER_IP, dst=CLIENT_IP,
            payload=TCPSegment(src_port=80, dst_port=9999, seq=1,
                               ack=2, flags=ACK, payload=b"beacon"),
        )
        world.server.send_raw(stray)
        world.run(2.0)
        assert server_rsts  # forged resets reached the server side too

    def test_distinct_pairs_unaffected(self):
        """The blacklist keys on the host *pair*: another server on a
        different path is reachable throughout."""
        world = mini_topology(seed=20)
        fetch(world)
        assert world.gfw.blacklist.contains(CLIENT_IP, SERVER_IP, world.clock.now)
        assert not world.gfw.blacklist.contains(
            CLIENT_IP, "203.0.113.77", world.clock.now
        )


class TestForwarderUnderLoss:
    def test_dns_over_tcp_retransmits_through_loss(self):
        from repro.apps.dns import DNSTcpResolver, DNSUdpClient, DNSUdpResolver
        from repro.apps.udp import UDPHost

        world = mini_topology(with_gfw=False, serve_http=False,
                              loss_rate=0.25, seed=23)
        client_udp = UDPHost(world.client)
        server_udp = UDPHost(world.server)
        zone = {"www.dropbox.com": "104.16.100.29"}
        DNSUdpResolver(server_udp, zone)
        DNSTcpResolver(world.server_tcp, zone)
        INTANG(
            host=world.client, tcp_host=world.client_tcp, clock=world.clock,
            network=world.network, fixed_strategy="none",
            dns_resolver_ip=SERVER_IP, rng=random.Random(1),
        )
        client = DNSUdpClient(client_udp, SERVER_IP, world.clock)
        answers = []
        client.resolve("www.dropbox.com", lambda m: answers.extend(m.answers))
        world.run(20.0)
        assert answers == ["104.16.100.29"]


class TestINTANGWorkloadMatrix:
    """One INTANG-protected pass of every workload under the *default*
    (noisy) calibration — the everything-wired smoke test."""

    def test_http_dns_tor_vpn_all_protected(self):
        from repro.experiments import (
            DEFAULT_CALIBRATION,
            DYN_RESOLVERS,
            outside_china_catalog,
            run_dns_trial,
            run_http_trial,
            run_tor_trial,
            run_vpn_trial,
            vantage_by_name,
        )
        from repro.experiments.runner import Outcome

        vantage = vantage_by_name("qcloud-guangzhou")
        catalog = outside_china_catalog()
        http_ok = sum(
            run_http_trial(vantage, catalog[i], "improved-tcb-teardown",
                           DEFAULT_CALIBRATION, seed=900 + i).outcome
            is Outcome.SUCCESS
            for i in range(6)
        )
        assert http_ok >= 4
        dns = run_dns_trial(vantage, DYN_RESOLVERS[0],
                            calibration=DEFAULT_CALIBRATION, seed=3)
        tor = run_tor_trial(vantage, catalog[0], "improved-tcb-teardown",
                            calibration=DEFAULT_CALIBRATION, seed=3)
        vpn = run_vpn_trial(vantage, catalog[1], "improved-tcb-teardown",
                            calibration=DEFAULT_CALIBRATION, seed=3)
        assert dns.success
        assert tor.reconnect_ok and not tor.ip_blocked
        assert vpn.frames_ok and not vpn.reset


class TestBlacklistTTLDrift:
    """Drifting blacklist windows (spatiotemporal heterogeneity): the
    90 s window is per-route now, so expiry must be exact at any scaled
    duration — and a re-match after expiry is a fresh blacklisting."""

    def test_non_wrap_ttl_drift_boundaries(self):
        """A drift-scaled window (0.05 x 90 s) expires at exactly
        now + duration, with monotonic non-wrapping timestamps."""
        from repro.gfw.blacklist import Blacklist

        blacklist = Blacklist(duration=4.5)
        blacklist.add(CLIENT_IP, SERVER_IP, now=1000.0)
        assert blacklist.remaining(CLIENT_IP, SERVER_IP, 1000.0) == 4.5
        assert blacklist.contains(CLIENT_IP, SERVER_IP, 1004.4)
        assert blacklist.remaining(CLIENT_IP, SERVER_IP, 1004.4) == \
            pytest.approx(0.1)
        # The boundary itself is out: now >= expiry expires.
        assert not blacklist.contains(CLIENT_IP, SERVER_IP, 1004.5)
        assert blacklist.total_expirations == 1
        assert blacklist.remaining(CLIENT_IP, SERVER_IP, 1004.5) == 0.0
        # Re-add restarts the full drifted window from the new now.
        blacklist.add(CLIENT_IP, SERVER_IP, now=1004.5)
        assert blacklist.contains(CLIENT_IP, SERVER_IP, 1008.9)
        assert blacklist.total_blacklistings == 2
        # sweep() materializes expiries nothing re-reads.
        assert blacklist.sweep(2000.0) == 1
        assert blacklist.total_expirations == 2
        assert len(blacklist) == 0

    def test_readd_after_expiry_publishes_blacklist_add_once_per_match(self):
        """Regression: each DPI re-match after TTL expiry publishes
        exactly one ``blacklist_add`` on the EventBus — no duplicate
        event for the volley, no missing event for the re-add."""
        from repro.telemetry.events import capturing

        with capturing(clear=True) as bus:
            world = mini_topology(seed=31)
            world.gfw.blacklist.duration = 1.0  # expire between fetches
            fetch(world)
            assert detections(world) == 1
            # The window has lapsed by the time the second, fresh
            # connection re-matches the keyword.
            fetch(world)
            assert detections(world) == 2
            assert not world.gfw.blacklist.contains(
                CLIENT_IP, SERVER_IP, world.clock.now
            )
            adds = bus.events(component="gfw", kind="blacklist_add")
        assert len(adds) == 2
        assert all(
            {event.fields["client"], event.fields["server"]}
            == {CLIENT_IP, SERVER_IP}
            for event in adds
        )
        assert adds[0].time < adds[1].time
