"""Pytest configuration: make the tests' helper module importable."""

import os
import sys

import pytest

sys.path.insert(0, os.path.dirname(__file__))


@pytest.fixture(autouse=True)
def _fresh_result_cache():
    """Isolate tests from the process-wide historical-result cache.

    Trials are pure functions of their cache key, so replays are
    normally safe — but tests that monkeypatch simulator internals
    would otherwise see results recorded under unpatched code.
    """
    from repro.experiments import result_cache

    result_cache.clear()
    yield
    result_cache.clear()


@pytest.fixture(autouse=True)
def _fresh_replay_store():
    """Isolate tests from the process-wide replay program store.

    Same reasoning as the result cache above: a test that monkeypatches
    simulator internals must not replay a program recorded under
    unpatched code (and vice versa).
    """
    from repro.experiments import replay

    replay.clear()
    yield
    replay.clear()


@pytest.fixture(autouse=True)
def _quiet_event_bus():
    """Leave the telemetry bus the way each test found it: disabled
    (unless the environment says otherwise) and empty."""
    from repro.telemetry import events

    events.reset_bus()
    yield
    events.reset_bus()
