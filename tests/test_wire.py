"""Serialization/parsing tests, including the corrupted-field round trips
that insertion packets depend on."""

import pytest
from hypothesis import given, strategies as st

from repro.netstack.options import (
    MD5SignatureOption,
    MSSOption,
    SACKPermittedOption,
    TimestampOption,
    WindowScaleOption,
    parse_options,
    serialize_options,
)
from repro.netstack.packet import ACK, IPPacket, SYN, TCPSegment, UDPDatagram
from repro.netstack.wire import (
    parse_ip,
    parse_tcp,
    parse_udp,
    roundtrip,
    serialize_ip,
    serialize_tcp,
    serialize_udp,
    tcp_checksum_valid,
    wire_lengths,
)

SRC, DST = "10.0.0.1", "10.0.0.2"


def _segment(**kw):
    defaults = dict(src_port=1234, dst_port=80, seq=111, ack=222, flags=ACK)
    defaults.update(kw)
    return TCPSegment(**defaults)


class TestTCPWire:
    def test_roundtrip_preserves_fields(self):
        segment = _segment(payload=b"hello", window=4096, urgent=7)
        parsed = parse_tcp(serialize_tcp(segment, SRC, DST))
        assert parsed.src_port == 1234
        assert parsed.dst_port == 80
        assert parsed.seq == 111
        assert parsed.ack == 222
        assert parsed.flags == ACK
        assert parsed.window == 4096
        assert parsed.urgent == 7
        assert parsed.payload == b"hello"

    def test_correct_checksum_validates(self):
        segment = _segment(payload=b"data")
        parsed = parse_tcp(serialize_tcp(segment, SRC, DST))
        assert tcp_checksum_valid(parsed, SRC, DST)

    def test_checksum_depends_on_addresses(self):
        """The pseudo header ties the checksum to the IP addresses."""
        segment = _segment(payload=b"data")
        parsed = parse_tcp(serialize_tcp(segment, SRC, DST))
        assert not tcp_checksum_valid(parsed, SRC, "10.0.0.3")

    def test_override_emits_verbatim_and_fails_validation(self):
        segment = _segment(checksum_override=0xBEEF)
        wire = serialize_tcp(segment, SRC, DST)
        assert wire[16:18] == b"\xbe\xef"
        parsed = parse_tcp(wire)
        assert not tcp_checksum_valid(parsed, SRC, DST)

    def test_fresh_segment_is_considered_valid(self):
        assert tcp_checksum_valid(_segment(), SRC, DST)

    def test_short_header_roundtrip(self):
        segment = _segment(data_offset_override=4)
        parsed = parse_tcp(serialize_tcp(segment, SRC, DST))
        assert parsed.data_offset_override == 4

    def test_truncated_header_rejected(self):
        with pytest.raises(ValueError):
            parse_tcp(b"\x00" * 10)

    def test_options_roundtrip_through_wire(self):
        segment = _segment(
            flags=SYN,
            options=[MSSOption(mss=1400), TimestampOption(tsval=5, tsecr=9)],
        )
        parsed = parse_tcp(serialize_tcp(segment, SRC, DST))
        kinds = [option.kind for option in parsed.options]
        assert 2 in kinds and 8 in kinds
        timestamp = parsed.find_option(8)
        assert timestamp.tsval == 5 and timestamp.tsecr == 9

    def test_md5_option_roundtrip(self):
        segment = _segment(options=[MD5SignatureOption(digest=b"\x42" * 16)])
        parsed = parse_tcp(serialize_tcp(segment, SRC, DST))
        md5 = parsed.find_option(19)
        assert md5 is not None
        assert md5.digest == b"\x42" * 16

    @given(st.binary(max_size=64), st.integers(0, 2**32 - 1), st.integers(0, 2**32 - 1))
    def test_roundtrip_property(self, payload, seq, ack):
        segment = _segment(seq=seq, ack=ack, payload=payload)
        parsed = parse_tcp(serialize_tcp(segment, SRC, DST))
        assert parsed.seq == seq
        assert parsed.ack == ack
        assert parsed.payload == payload
        assert tcp_checksum_valid(parsed, SRC, DST)


class TestOptionsBlob:
    def test_padding_to_word_boundary(self):
        blob = serialize_options([WindowScaleOption(shift=2)])
        assert len(blob) % 4 == 0

    def test_malformed_trailing_bytes_discarded(self):
        blob = serialize_options([MSSOption()]) + b"\x08\x0a"  # truncated ts
        options = parse_options(blob)
        assert [option.kind for option in options] == [2]

    def test_unknown_option_preserved(self):
        blob = b"\xfd\x03\x99"  # kind 253, len 3, one data byte
        options = parse_options(blob)
        assert options[0].kind == 253
        assert options[0].data == b"\x99"

    def test_sack_permitted(self):
        blob = serialize_options([SACKPermittedOption()])
        assert parse_options(blob)[0].kind == 4

    def test_md5_requires_16_byte_digest(self):
        with pytest.raises(ValueError):
            MD5SignatureOption(digest=b"short")


class TestUDPWire:
    def test_roundtrip(self):
        datagram = UDPDatagram(src_port=5353, dst_port=53, payload=b"q")
        parsed = parse_udp(serialize_udp(datagram, SRC, DST))
        assert parsed.src_port == 5353
        assert parsed.dst_port == 53
        assert parsed.payload == b"q"

    def test_truncated_rejected(self):
        with pytest.raises(ValueError):
            parse_udp(b"\x00" * 4)


class TestIPWire:
    def test_whole_packet_roundtrip(self):
        packet = IPPacket(src=SRC, dst=DST, payload=_segment(payload=b"xyz"), ttl=33)
        parsed = roundtrip(packet)
        assert parsed.src == SRC
        assert parsed.dst == DST
        assert parsed.ttl == 33
        assert parsed.tcp.payload == b"xyz"

    def test_udp_packet_roundtrip(self):
        packet = IPPacket(
            src=SRC, dst=DST, payload=UDPDatagram(9, 53, b"abc")
        )
        parsed = roundtrip(packet)
        assert parsed.is_udp
        assert parsed.udp.payload == b"abc"

    def test_total_length_override_detected(self):
        packet = IPPacket(src=SRC, dst=DST, payload=_segment())
        packet.total_length_override = 999
        emitted, actual = wire_lengths(packet)
        assert emitted == 999
        assert actual < 999

    def test_fragment_keeps_raw_payload(self):
        packet = IPPacket(
            src=SRC, dst=DST, payload=_segment(payload=b"A" * 32)
        )
        wire = serialize_ip(packet)
        # Hand-craft a fragment header: MF set, offset 0.
        fragment = IPPacket(
            src=SRC, dst=DST, payload=wire[20:44], more_fragments=True
        )
        parsed = parse_ip(serialize_ip(fragment))
        assert parsed.is_fragment
        assert isinstance(parsed.payload, bytes)

    def test_truncated_ip_rejected(self):
        with pytest.raises(ValueError):
            parse_ip(b"\x45\x00")
