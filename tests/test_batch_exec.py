"""Tier-1 pins for batch-stepped execution.

The batch PR's correctness contract: multiplexing many trials through
one shared :class:`BatchSim` heap — and recycling packet/scenario
objects between them — must be observably identical to running the same
trials one at a time.  These tests pin that contract byte-for-byte
(records, cell rates, trial-semantic telemetry) and property-test the
heap's per-trial ordering invariant directly.
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments import (
    CHINA_VANTAGE_POINTS,
    DEFAULT_CALIBRATION,
    map_trials,
    outside_china_catalog,
    run_strategy_cell,
)
from repro.experiments import scenarios
from repro.experiments.parallel import run_sharded
from repro.experiments.runner import (
    _run_http_batch_records,
    _simulate_http_trial,
)
from repro.netsim.batch import TRIAL_SHIFT, BatchSim
from repro.netsim.simclock import SimClock
from repro.netstack import packet as packet_mod
from repro.netstack.packet import (
    ACK,
    IPPacket,
    TCPSegment,
    clear_packet_pool,
    packet_pool_stats,
    recycle_packet,
)
from repro.telemetry.metrics import get_registry

VANTAGES = CHINA_VANTAGE_POINTS[:2]
SITES = outside_china_catalog(count=2)
STRATEGIES = ["none", "tcb-teardown-rst/ttl"]


def _square(task):
    """Module-level for picklability across pool workers."""
    return task * task


def _trial_tasks(seeds=3):
    return [
        (vantage, site, strategy, DEFAULT_CALIBRATION, seed, True)
        for strategy in STRATEGIES
        for vantage in VANTAGES
        for site in SITES
        for seed in range(seeds)
    ]


def _serial_records(tasks):
    records = []
    for vantage, site, strategy, calibration, seed, keyword in tasks:
        record, _scenario = _simulate_http_trial(
            vantage, site, strategy, calibration, seed=seed, keyword=keyword
        )
        records.append(record)
    return records


def _batched_records(tasks, window):
    records = []
    for begin in range(0, len(tasks), window):
        records.extend(_run_http_batch_records(tasks[begin : begin + window]))
    return records


def _trial_semantic(delta):
    """Strip execution-strategy counters from a telemetry delta.

    ``scenario.built/reused/evicted``, ``pool.*``, ``netsim.*``,
    ``result_cache.*`` and ``replay.*`` legitimately differ between
    serial, batched and replayed runs (they describe what the execution
    engine did, not what the simulated trial did); everything else —
    GFW, DPI, TCP, trial outcome metrics — must not.
    """
    from repro.experiments.replay import ENGINE_PREFIXES

    counters = {
        name: value
        for name, value in delta["counters"].items()
        if not name.startswith(ENGINE_PREFIXES)
    }
    return counters, delta["histograms"]


class TestBatchParity:
    """Batched execution is byte-identical to serial execution."""

    @pytest.fixture(autouse=True)
    def _fresh_pools(self):
        scenarios.clear_scenario_pool()
        clear_packet_pool()
        yield
        scenarios.clear_scenario_pool()
        clear_packet_pool()

    def test_batched_records_identical_to_serial(self):
        tasks = _trial_tasks()
        serial = _serial_records(tasks)
        for window in (5, 16):  # uneven tail and the default window
            batched = _batched_records(tasks, window)
            assert [dataclasses.astuple(r) for r in batched] == [
                dataclasses.astuple(r) for r in serial
            ], f"record drift at window={window}"

    def test_batched_after_batched_stays_identical(self):
        # Pooled scenarios and recycled packet shells from a first batch
        # must not leak state into a second run of the same tasks.
        tasks = _trial_tasks(seeds=2)
        first = _batched_records(tasks, 16)
        second = _batched_records(tasks, 16)
        assert [dataclasses.astuple(r) for r in first] == [
            dataclasses.astuple(r) for r in second
        ]

    def test_trial_semantic_telemetry_identical(self):
        tasks = _trial_tasks(seeds=2)
        registry = get_registry()

        before = registry.snapshot()
        _serial_records(tasks)
        serial_delta = registry.diff(before)

        scenarios.clear_scenario_pool()
        before = registry.snapshot()
        _batched_records(tasks, 16)
        batched_delta = registry.diff(before)

        assert _trial_semantic(serial_delta) == _trial_semantic(batched_delta)

    def test_cell_rates_identical_across_execution_modes(self, monkeypatch):
        monkeypatch.setenv("REPRO_RESULT_CACHE", "0")

        def cell(**kwargs):
            triple = run_strategy_cell(
                "tcb-teardown-rst/ttl", VANTAGES, SITES, repeats=2, **kwargs
            )
            return (triple.success, triple.failure1, triple.failure2, triple.trials)

        monkeypatch.setenv("REPRO_BATCH_TRIALS", "1")
        serial = cell(workers=1)
        monkeypatch.delenv("REPRO_BATCH_TRIALS")
        assert cell(workers=1) == serial
        assert cell(workers=2) == serial
        assert cell(workers=2, shards=2) == serial


class TestBatchSimOrdering:
    """The shared heap's trial-id tagging and horizon invariants."""

    def test_adopt_requires_fresh_clock(self):
        batch = BatchSim()
        dirty = SimClock()
        dirty.schedule(1.0, lambda: None)
        with pytest.raises(RuntimeError):
            batch.adopt(dirty)
        clean = SimClock()
        assert batch.adopt(clean) == 0
        with pytest.raises(RuntimeError):
            batch.adopt(clean)
        batch.release()

    def test_seq_ranges_are_disjoint_per_trial(self):
        batch = BatchSim()
        clocks = [SimClock() for _ in range(3)]
        for tid, clock in enumerate(clocks):
            assert batch.adopt(clock) == tid
            assert clock._seq == tid << TRIAL_SHIFT
        batch.release()

    def test_per_trial_horizons(self):
        batch = BatchSim()
        fired = []
        clocks = [SimClock(), SimClock()]
        for tid, clock in enumerate(clocks):
            batch.adopt(clock)
            clock.schedule(1.0, fired.append, (tid, 1.0))
            clock.schedule(5.0, fired.append, (tid, 5.0))
        batch.run([2.0, 10.0])
        batch.release()
        # Trial 0's t=5 event is past its own horizon: dropped, exactly
        # as the serial loop would have left it queued and never fired.
        assert fired == [(0, 1.0), (1, 1.0), (1, 5.0)]
        assert clocks[0].now == 2.0 and clocks[1].now == 10.0

    @given(
        st.lists(
            st.lists(st.integers(min_value=0, max_value=400), min_size=1, max_size=12),
            min_size=1,
            max_size=5,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_interleaved_trials_never_reorder_within_a_trial(self, trial_times):
        """Property: per-trial firing order == serial firing order.

        Events from different trials interleave freely in the shared
        heap (including exact time ties across trials), but within one
        trial the order must be nondecreasing time with scheduling-order
        tie-breaks — byte-identical to a private clock.
        """
        batch = BatchSim()
        fired = {tid: [] for tid in range(len(trial_times))}
        for tid, times in enumerate(trial_times):
            clock = SimClock()
            batch.adopt(clock)
            for index, tenths in enumerate(times):
                clock.schedule(tenths / 10.0, fired[tid].append, index)
        executed = batch.run(until=100.0)
        batch.release()
        assert executed == sum(len(times) for times in trial_times)
        for tid, times in enumerate(trial_times):
            expected = [
                index
                for index, _ in sorted(enumerate(times), key=lambda p: (p[1], p[0]))
            ]
            assert fired[tid] == expected


class TestMapTrialsEdgeCases:
    """Chunk-size arithmetic at the degenerate ends of the task range."""

    def test_zero_tasks(self):
        assert map_trials(_square, [], workers=4) == []

    def test_single_task(self):
        assert map_trials(_square, [7], workers=4) == [49]

    def test_fewer_tasks_than_workers(self):
        # workers clamp to the task count; order is still preserved.
        assert map_trials(_square, [0, 1, 2], workers=4) == [0, 1, 4]

    def test_run_sharded_matches_serial_map(self):
        tasks = list(range(11))
        expected = [task * task for task in tasks]
        assert run_sharded(_square, tasks, shards=3, workers=2) == expected
        assert run_sharded(_square, tasks, shards=1, workers=2) == expected

    def test_run_sharded_more_shards_than_tasks(self):
        assert run_sharded(_square, [2, 3], shards=5, workers=2) == [4, 9]


class TestScenarioPoolBounds:
    """The LRU-bounded scenario pool and its eviction counter."""

    @pytest.fixture(autouse=True)
    def _fresh_pool(self):
        scenarios.clear_scenario_pool()
        yield
        scenarios.clear_scenario_pool()

    def test_lru_eviction_bounds_pool_and_counts(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCENARIO_POOL_MAX", "2")
        sites = outside_china_catalog(count=3)
        evicted = get_registry().counter("scenario.evicted")
        before = evicted.value
        leased = [
            scenarios.acquire_scenario(
                CHINA_VANTAGE_POINTS[0], website=site, seed=0, lease=True
            )
            for site in sites
        ]
        first_key = leased[0]._pool_key
        for scenario in leased:
            scenarios.release_scenario(scenario)
        assert scenarios.scenario_pool_size() == 2
        assert evicted.value - before == 1
        # Least-recently-released key is the one evicted.
        assert first_key not in scenarios._SCENARIO_POOL

    def test_pool_max_zero_keeps_nothing(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCENARIO_POOL_MAX", "0")
        scenario = scenarios.acquire_scenario(
            CHINA_VANTAGE_POINTS[0], website=SITES[0], seed=0, lease=True
        )
        scenarios.release_scenario(scenario)
        assert scenarios.scenario_pool_size() == 0

    def test_release_without_pool_key_is_dropped(self):
        scenario = scenarios.build_scenario(
            CHINA_VANTAGE_POINTS[0], website=SITES[0], seed=0
        )
        scenarios.release_scenario(scenario)
        assert scenarios.scenario_pool_size() == 0


class TestPacketPool:
    """Free-list recycling of packet/segment shells."""

    @pytest.fixture(autouse=True)
    def _fresh_pool(self):
        clear_packet_pool()
        yield
        clear_packet_pool()

    def _packet(self):
        segment = TCPSegment(
            src_port=40000, dst_port=80, seq=9, ack=4, flags=ACK,
            payload=b"GET / HTTP/1.1", options=[(8, b"\x00" * 10)],
        )
        return IPPacket(src="10.0.0.1", dst="1.2.3.4", payload=segment, ttl=64)

    def test_recycle_then_copy_reuses_shells(self):
        packet = self._packet()
        segment = packet.payload
        recycle_packet(packet)
        stats = packet_pool_stats()
        assert stats["recycled"] == 2
        assert stats["free_segments"] == 1 and stats["free_packets"] == 1
        # Recycled shells pin no trial state.
        assert segment.payload == b"" and segment.options == []
        assert packet.payload == b"" and packet.meta is None

        source = self._packet()
        copy = source.payload.copy()
        assert copy is segment  # the pooled shell, reissued
        assert copy.payload == source.payload.payload
        assert copy.seq == source.payload.seq
        assert packet_pool_stats()["reused"] == 1
        assert packet_pool_stats()["free_segments"] == 0

    def test_knob_off_disables_recycling(self, monkeypatch):
        monkeypatch.setenv("REPRO_PACKET_POOL", "0")
        recycle_packet(self._packet())
        stats = packet_pool_stats()
        assert stats["recycled"] == 0
        assert stats["free_segments"] == 0 and stats["free_packets"] == 0

    def test_cap_bounds_free_lists(self, monkeypatch):
        monkeypatch.setattr(packet_mod, "_POOL_CAP", 1)
        recycle_packet(self._packet())
        recycle_packet(self._packet())
        stats = packet_pool_stats()
        assert stats["free_segments"] == 1 and stats["free_packets"] == 1

    def test_copy_without_pool_is_unaffected(self):
        source = self._packet()
        copy = source.payload.copy()
        assert copy is not source.payload
        assert copy.payload == source.payload.payload
        assert packet_pool_stats()["reused"] == 0
