"""Tier-1 pins for the fleet engine's determinism contract.

A fleet run is a pure function of its :class:`FleetSpec`: the same spec
and seed must produce byte-identical merged results and trial-semantic
telemetry whether the client groups run serially, across process
shards, or as direct shared-device batch invocations — and the
heavy-tailed site sampler must assign every flow its site independently
of evaluation order (the property sharding relies on).
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments import scenarios
from repro.experiments.fleet import (
    DEFAULT_FLEET_STRATEGIES,
    FleetResult,
    FleetSpec,
    flow_spec,
    run_fleet,
    run_fleet_group,
    site_index,
)
from repro.netstack.packet import clear_packet_pool
from repro.telemetry import get_registry

#: Small but load-bearing: capacity 24 is below each group's ~40
#: accumulated TCBs, so the shared tables evict, and three groups
#: exercise the group round robin.
SPEC = FleetSpec(
    flows=120, groups=3, window=16, max_flows=24, sites=12, seed=99
)


def _fleet_semantic(delta):
    """Strip execution-strategy counters from a telemetry delta.

    ``scenario.*`` and ``pool.*`` legitimately differ between serial
    and sharded runs (worker pools start with cold scenario caches);
    everything else — fleet outcome counters, eviction attribution,
    GFW/DPI/TCP accounting — must not.
    """
    counters = {
        name: value
        for name, value in delta["counters"].items()
        if not name.startswith(("scenario.", "pool."))
    }
    return counters, delta["histograms"]


class TestFleetParity:
    """Serial, sharded, and direct group runs are byte-identical."""

    @pytest.fixture(autouse=True)
    def _fresh_pools(self):
        scenarios.clear_scenario_pool()
        clear_packet_pool()
        yield
        scenarios.clear_scenario_pool()
        clear_packet_pool()

    def test_serial_vs_sharded_results_identical(self):
        serial = run_fleet(SPEC, shards=1)
        scenarios.clear_scenario_pool()
        sharded = run_fleet(SPEC, shards=2, workers=2)
        assert dataclasses.asdict(serial) == dataclasses.asdict(sharded)

    def test_serial_vs_direct_group_runs_identical(self):
        # The shared-device batch path invoked directly, group by group,
        # is the same computation run_fleet orchestrates.
        serial = run_fleet(SPEC, shards=1)
        scenarios.clear_scenario_pool()
        direct = FleetResult.merge(
            SPEC, [run_fleet_group(SPEC, g) for g in range(SPEC.groups)]
        )
        assert dataclasses.asdict(serial) == dataclasses.asdict(direct)

    def test_merge_is_order_independent(self):
        groups = [run_fleet_group(SPEC, g) for g in range(SPEC.groups)]
        forward = FleetResult.merge(SPEC, groups)
        reversed_ = FleetResult.merge(SPEC, list(reversed(groups)))
        assert dataclasses.asdict(forward) == dataclasses.asdict(reversed_)

    def test_trial_semantic_telemetry_identical(self):
        registry = get_registry()

        before = registry.snapshot()
        run_fleet(SPEC, shards=1)
        serial_delta = registry.diff(before)

        scenarios.clear_scenario_pool()
        before = registry.snapshot()
        run_fleet(SPEC, shards=2, workers=2)
        sharded_delta = registry.diff(before)

        scenarios.clear_scenario_pool()
        before = registry.snapshot()
        for group in range(SPEC.groups):
            run_fleet_group(SPEC, group)
        direct_delta = registry.diff(before)

        assert _fleet_semantic(serial_delta) == _fleet_semantic(sharded_delta)
        assert _fleet_semantic(serial_delta) == _fleet_semantic(direct_delta)

    def test_same_spec_twice_identical(self):
        # Warm scenario pools and recycled packet shells from the first
        # run must not leak into the second.
        first = run_fleet(SPEC, shards=1)
        second = run_fleet(SPEC, shards=1)
        assert dataclasses.asdict(first) == dataclasses.asdict(second)

    def test_shared_state_is_actually_exercised(self):
        # Guard against the fleet silently degenerating into isolated
        # trials: with capacity 24 under each group's ~40 accumulated
        # TCBs, the shared table must churn and the shared blacklist
        # must catch benign collateral.
        result = run_fleet(SPEC, shards=1)
        assert result.flows == SPEC.flows
        assert result.flow_events > 0
        assert result.flows_evicted > 0
        assert result.flows_evicted == (
            result.flows_evicted_active + result.flows_evicted_after_fin
        )
        assert result.blacklist_false_positives > 0
        assert result.peak_flows_tracked <= SPEC.max_flows


class TestFlowGenerator:
    """The workload layer is a pure function of (spec, index)."""

    def test_flow_spec_is_deterministic_and_complete(self):
        flows = [flow_spec(SPEC, i) for i in range(SPEC.flows)]
        again = [flow_spec(SPEC, i) for i in range(SPEC.flows)]
        assert flows == again
        labels = {f.label for f in flows}
        assert "benign" in labels
        assert any(label in DEFAULT_FLEET_STRATEGIES for label in labels)
        # Benign flows never carry a strategy.
        assert all(f.strategy_id is None for f in flows if not f.sensitive)

    def test_group_partition_covers_every_flow_once(self):
        seen = []
        for group in range(SPEC.groups):
            seen.extend(SPEC.group_indices(group))
        assert sorted(seen) == list(range(SPEC.flows))

    def test_popularity_is_heavy_tailed(self):
        spec = FleetSpec(flows=4000, sites=16, seed=7)
        counts = [0] * spec.sites
        for index in range(spec.flows):
            counts[site_index(spec, index)] += 1
        # Rank 0 dominates and the head outweighs the tail.
        assert counts[0] == max(counts)
        assert sum(counts[:4]) > sum(counts[4:])

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        groups=st.integers(min_value=1, max_value=7),
        order=st.randoms(use_true_random=False),
    )
    def test_site_sampler_permutation_stable(self, seed, groups, order):
        """Sharding-safety property: every flow's site assignment is
        independent of which partition computes it and in what order
        (no hidden shared RNG stream)."""
        spec = FleetSpec(flows=60, sites=9, seed=seed, groups=groups)
        baseline = {i: site_index(spec, i) for i in range(spec.flows)}
        indices = list(range(spec.flows))
        order.shuffle(indices)
        assert {i: site_index(spec, i) for i in indices} == baseline
        # Partitioning by group and evaluating group-by-group sees the
        # same assignment too.
        partitioned = {}
        for group in range(spec.groups):
            for index in spec.group_indices(group):
                partitioned[index] = site_index(spec, index)
        assert partitioned == baseline
        assert all(0 <= site < spec.sites for site in baseline.values())
