"""GFW device state-machine tests: every behaviour of §2.1 and §4."""

import random

import pytest

from repro.netstack.packet import ACK, FIN, IPPacket, RST, SYN, TCPSegment, seq_add
from repro.gfw import GFWDevice, GFWFlowState, evolved_config, old_config
from repro.gfw.flow import expected_reset_seqs
from repro.analysis.probe import GFWHarness

from helpers import CLIENT_IP, SERVER_IP, detections, fetch, mini_topology


def _harness(config=None, **kw):
    return GFWHarness(config=config, **kw)


class TestTCBCreation:
    def test_tcb_created_on_syn(self):
        from repro.analysis.ignore_paths import CLIENT_IP as HARNESS_CLIENT_IP

        harness = _harness()
        harness.send_from_client(harness._client_segment(SYN, seq=harness.client_isn))
        flow = harness.flow()
        assert flow is not None
        assert flow.believed_client[0] == HARNESS_CLIENT_IP
        assert flow.client_next_seq == seq_add(harness.client_isn, 1)

    def test_nb1_tcb_created_on_bare_synack(self):
        """NB1: a SYN/ACK alone creates a TCB (anti-SYN-loss feature)."""
        harness = _harness()
        synack = TCPSegment(
            src_port=80, dst_port=45000, seq=harness.server_isn,
            ack=seq_add(harness.client_isn, 1), flags=SYN | ACK,
        )
        harness.send_from_server(synack)
        flow = harness.flow()
        assert flow is not None
        # believed client is the SYN/ACK's destination
        assert flow.believed_client[1] == 45000
        assert flow.client_next_seq == seq_add(harness.client_isn, 1)

    def test_old_model_ignores_bare_synack(self):
        harness = _harness(config=old_config())
        synack = TCPSegment(
            src_port=80, dst_port=45000, seq=1, ack=2, flags=SYN | ACK
        )
        harness.send_from_server(synack)
        assert harness.flow() is None

    def test_data_without_tcb_invisible(self):
        """No TCB, no inspection — why teardown evasion works at all."""
        harness = _harness()
        data = harness._client_segment(ACK, seq=500, ack=1, payload=b"GET /?q=ultrasurf HTTP/1.1\r\n\r\n")
        harness.send_from_client(data)
        assert harness.flow() is None
        assert not harness.device.detections


class TestKeywordDetection:
    def test_keyword_detected_and_punished(self):
        world = mini_topology()
        exchange = fetch(world)
        assert detections(world) == 1
        assert not exchange.got_response
        assert world.gfw_resets_at_client

    def test_benign_request_untouched(self):
        world = mini_topology()
        exchange = fetch(world, path="/index.html")
        assert detections(world) == 0
        assert exchange.got_response

    def test_keyword_split_across_segments_still_detected(self):
        """§4 hypothesis (2) ruled out: the GFW reassembles first."""
        from repro.apps.http import HTTPClient

        world = mini_topology()
        client = HTTPClient(world.client_tcp)
        _, exchange = client.get(
            SERVER_IP, host="example.com", path="/?q=ultrasurf",
            segment_size=12,
        )
        world.run(8.0)
        assert detections(world) == 1

    def test_keyword_in_host_header_detected(self):
        from repro.apps.http import HTTPClient

        world = mini_topology()
        client = HTTPClient(world.client_tcp)
        _, exchange = client.get(SERVER_IP, host="ultrasurf.example.com", path="/")
        world.run(8.0)
        assert detections(world) == 1

    def test_out_of_window_keyword_ignored(self):
        harness = _harness()
        harness.establish()
        data = harness._client_segment(
            ACK,
            seq=seq_add(harness.client_snd_nxt(), 0x40000000),
            ack=harness.client_rcv_nxt(),
            payload=b"GET /?q=ultrasurf HTTP/1.1\r\nHost: x\r\n\r\n",
        )
        harness.send_from_client(data)
        assert not harness.device.detections

    def test_miss_probability_suppresses_punishment(self):
        config = evolved_config()
        config.miss_probability = 1.0
        world = mini_topology(gfw_config=config)
        world.gfw.cluster.miss_probability = 1.0
        exchange = fetch(world)
        assert exchange.got_response
        assert world.gfw.missed_detections
        assert not world.gfw.detections


class TestResyncState:
    def test_nb2a_multiple_syns_enter_resync(self):
        harness = _harness()
        harness.establish()
        late_syn = harness._client_segment(SYN, seq=12345)
        harness.send_from_client(late_syn)
        assert harness.flow().state is GFWFlowState.RESYNC

    def test_resync_adopts_next_client_data_seq(self):
        harness = _harness()
        harness.establish()
        harness.send_from_client(harness._client_segment(SYN, seq=12345))
        junk = harness._client_segment(
            ACK, seq=0x70000000, ack=harness.client_rcv_nxt(), payload=b"j"
        )
        harness.send_from_client(junk)
        flow = harness.flow()
        assert flow.state is GFWFlowState.ESTABLISHED
        assert flow.client_next_seq == seq_add(0x70000000, 1)

    def test_nb2b_multiple_synacks_enter_resync(self):
        harness = _harness()
        harness.establish()
        synack = TCPSegment(
            src_port=80, dst_port=45000, seq=harness.server_isn,
            ack=seq_add(harness.client_isn, 1), flags=SYN | ACK,
        )
        harness.send_from_server(synack)
        assert harness.flow().state is GFWFlowState.RESYNC

    def test_nb2c_mismatched_synack_ack_enters_resync(self):
        harness = _harness()
        harness.send_from_client(harness._client_segment(SYN, seq=harness.client_isn))
        bad_synack = TCPSegment(
            src_port=80, dst_port=45000, seq=harness.server_isn,
            ack=seq_add(harness.client_isn, 999), flags=SYN | ACK,
        )
        harness.send_from_server(bad_synack)
        assert harness.flow().state is GFWFlowState.RESYNC

    def test_resync_resolved_by_server_synack(self):
        """Why the Fig. 3 strategy needs its *second* SYN insertion: the
        legitimate SYN/ACK re-synchronizes the device."""
        harness = _harness()
        fake = harness._client_segment(SYN, seq=seq_add(harness.client_isn, 0x100000))
        harness.send_from_client(fake)
        harness.send_from_client(harness._client_segment(SYN, seq=harness.client_isn))
        assert harness.flow().state is GFWFlowState.RESYNC
        synack = TCPSegment(
            src_port=80, dst_port=45000, seq=harness.server_isn,
            ack=seq_add(harness.client_isn, 1), flags=SYN | ACK,
        )
        harness.send_from_server(synack)
        flow = harness.flow()
        assert flow.state is GFWFlowState.ESTABLISHED
        assert flow.client_next_seq == seq_add(harness.client_isn, 1)

    def test_pure_ack_does_not_resynchronize(self):
        harness = _harness()
        harness.establish()
        harness.send_from_client(harness._client_segment(SYN, seq=12345))
        ack = harness._client_segment(
            ACK, seq=0x70000000, ack=harness.client_rcv_nxt()
        )
        harness.send_from_client(ack)
        assert harness.flow().state is GFWFlowState.RESYNC

    def test_old_model_has_no_resync(self):
        harness = _harness(config=old_config())
        harness.establish()
        harness.send_from_client(harness._client_segment(SYN, seq=12345))
        flow = harness.flow()
        assert flow.state is GFWFlowState.ESTABLISHED
        assert flow.client_next_seq == seq_add(harness.client_isn, 1)


class TestTeardown:
    def _rst(self, harness):
        return harness._client_segment(
            RST, seq=harness.client_snd_nxt(), ack=0
        )

    def test_rst_tears_down_when_coin_says_teardown(self):
        config = evolved_config(resync_on_rst_probability=0.0)
        config.resync_on_rst_handshake_probability = 0.0
        harness = _harness(config=config)
        harness.establish()
        harness.send_from_client(self._rst(harness))
        assert harness.flow() is None

    def test_nb3_rst_resyncs_when_coin_says_resync(self):
        config = evolved_config(resync_on_rst_probability=1.0)
        config.resync_on_rst_handshake_probability = 1.0
        harness = _harness(config=config)
        harness.establish()
        harness.send_from_client(self._rst(harness))
        flow = harness.flow()
        assert flow is not None
        assert flow.state is GFWFlowState.RESYNC

    def test_bad_checksum_rst_still_accepted_by_gfw(self):
        """The GFW does not validate checksums (Table 3 row 3)."""
        config = evolved_config(resync_on_rst_probability=0.0)
        config.resync_on_rst_handshake_probability = 0.0
        harness = _harness(config=config)
        harness.establish()
        rst = self._rst(harness)
        rst.checksum_override = 0xBAD1
        harness.send_from_client(rst)
        assert harness.flow() is None

    def test_fin_does_not_tear_down_evolved(self):
        harness = _harness()
        harness.establish()
        fin = harness._client_segment(FIN, seq=harness.client_snd_nxt())
        harness.send_from_client(fin)
        assert harness.flow() is not None

    def test_fin_tears_down_old_model(self):
        harness = _harness(config=old_config())
        harness.establish()
        fin = harness._client_segment(FIN, seq=harness.client_snd_nxt())
        harness.send_from_client(fin)
        assert harness.flow() is None

    def test_old_model_rst_always_tears_down(self):
        harness = _harness(config=old_config())
        harness.establish()
        harness.send_from_client(self._rst(harness))
        assert harness.flow() is None


class TestResetSignatures:
    def test_type2_injects_three_rstacks_with_future_seqs(self):
        world = mini_topology(gfw_config=evolved_config(reset_type=2))
        fetch(world)
        resets = world.gfw_resets_at_client
        assert len(resets) >= 3
        seqs = sorted(
            ((p.tcp.seq - resets[0].tcp.seq) & 0xFFFFFFFF) for p in resets[:3]
        )
        assert seqs == [0, 1460, 4380]
        assert all(p.tcp.flags & ACK for p in resets[:3])

    def test_type1_injects_single_plain_rst(self):
        world = mini_topology(gfw_config=evolved_config(reset_type=1))
        fetch(world)
        first_volley = [
            p for p in world.gfw_resets_at_client
            if p.meta.get("origin") == "gfw-type1"
        ]
        assert first_volley
        assert all(p.tcp.flags == RST for p in first_volley[:1])

    def test_expected_reset_seqs_helper(self):
        harness = _harness()
        harness.establish()
        flow = harness.flow()
        x, x1, x2 = expected_reset_seqs(flow)
        assert (x1 - x) & 0xFFFFFFFF == 1460
        assert (x2 - x) & 0xFFFFFFFF == 4380


class TestBlacklist:
    def _detect(self, world):
        exchange = fetch(world)
        assert detections(world) == 1
        return exchange

    def test_pair_blacklisted_for_90s(self):
        world = mini_topology()
        self._detect(world)
        assert world.gfw.blacklist.contains(CLIENT_IP, SERVER_IP, world.clock.now)
        remaining = world.gfw.blacklist.remaining(
            CLIENT_IP, SERVER_IP, world.clock.now
        )
        assert 0 < remaining <= 90.0

    def test_syn_during_blacklist_gets_forged_synack(self):
        world = mini_topology()
        self._detect(world)
        connection = world.client_tcp.connect(SERVER_IP, 80)
        world.run(3.0)
        assert world.gfw.forged_synacks_injected > 0
        assert connection.state is not None  # handshake obstructed

    def test_blacklist_expires_after_90s(self):
        world = mini_topology()
        self._detect(world)
        world.run(95.0)
        exchange = fetch(world, path="/benign")
        assert exchange.got_response

    def test_type1_device_enforces_no_blacklist(self):
        world = mini_topology(gfw_config=evolved_config(reset_type=1))
        self._detect(world)
        assert len(world.gfw.blacklist) == 0


class TestTCBReversalMechanics:
    def test_synack_from_client_reverses_monitoring(self):
        harness = _harness()
        fake_synack = harness._client_segment(
            SYN | ACK, seq=999, ack=111
        )
        harness.send_from_client(fake_synack)
        from repro.analysis.ignore_paths import SERVER_IP as HARNESS_SERVER_IP

        flow = harness.flow()
        # The device believes the *destination* of the SYN/ACK (the real
        # server) is the client.
        assert flow.believed_client[0] == HARNESS_SERVER_IP
        # The subsequent real handshake is ignored: no resync.
        harness.establish()
        assert flow.state is GFWFlowState.ESTABLISHED
        # Real client request data is not inspected.
        request = harness._client_segment(
            ACK, seq=harness.client_snd_nxt(), ack=harness.client_rcv_nxt(),
            payload=b"GET /?q=ultrasurf HTTP/1.1\r\nHost: x\r\n\r\n",
        )
        harness.send_from_client(request)
        assert not harness.device.detections


class TestNoFlagAndAckQuirks:
    def test_device_configured_to_ignore_no_flag_data(self):
        config = evolved_config()
        config.accepts_no_flag_data = False
        harness = _harness(config=config)
        harness.establish()
        junk = harness._client_segment(
            0, seq=harness.client_snd_nxt(), payload=b"junkjunk"
        )
        junk.ack = 0
        harness.send_from_client(junk)
        assert harness.flow().client_next_seq == harness.client_snd_nxt()

    def test_device_accepts_no_flag_by_default(self):
        harness = _harness()
        harness.establish()
        junk = harness._client_segment(
            0, seq=harness.client_snd_nxt(), payload=b"junkjunk"
        )
        harness.send_from_client(junk)
        assert harness.flow().client_next_seq == seq_add(harness.client_snd_nxt(), 8)

    def test_ack_validating_device_ignores_wild_acks(self):
        config = evolved_config()
        config.validates_ack_number = True
        harness = _harness(config=config)
        harness.establish()
        junk = harness._client_segment(
            ACK, seq=harness.client_snd_nxt(),
            ack=seq_add(harness.client_rcv_nxt(), 0x30000000),
            payload=b"junkjunk",
        )
        harness.send_from_client(junk)
        assert harness.flow().client_next_seq == harness.client_snd_nxt()


class TestResetState:
    def test_reset_state_clears_flows_and_blacklist(self):
        world = mini_topology()
        fetch(world)
        assert world.gfw.tracked_flow_count() >= 0
        world.gfw.reset_state()
        assert world.gfw.tracked_flow_count() == 0
        assert len(world.gfw.blacklist) == 0
