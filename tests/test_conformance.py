"""The differential conformance harness (strategy × variant × profile ×
fault) and its paper-derived oracles.

Fast tests pin the machinery: variant factories, verdict reduction,
oracle coverage/matching, per-cell determinism, worker-count parity,
and one committed golden ladder.  The full 792-cell matrix against the
oracle table and the blessed snapshot is marked ``slow`` and runs as its
own CI job (``repro conformance run`` is the same check as a command).
"""

import json

import pytest

from repro.conformance import (
    CONFORMANCE_PROFILES,
    CONFORMANCE_VARIANTS,
    ConformanceCell,
    FAULT_GRID,
    check_verdicts,
    classify_counts,
    compare_golden,
    default_cells,
    golden_cells,
    golden_dir,
    run_cell,
    run_matrix,
)
from repro.conformance.golden import capture_ladder, ladder_filename
from repro.conformance.matrix import CellResult, fault_by_name, profile_vantage
from repro.conformance.oracles import (
    KNOWN_DIVERGENCE,
    ORACLE_RULES,
    find_rule,
)
from repro.gfw.models import MODEL_VARIANTS, model_variant_configs
from repro.strategies.registry import STRATEGY_REGISTRY


# ---------------------------------------------------------------------------
# model variants
# ---------------------------------------------------------------------------
def test_model_variants_cover_generations_and_ablations():
    assert "old" in MODEL_VARIANTS
    assert "evolved" in MODEL_VARIANTS
    # One ablation per new behaviour NB1-NB3 (§4).
    for ablation in ("evolved-nb1-off", "evolved-nb2-off", "evolved-nb3-off"):
        assert ablation in MODEL_VARIANTS
    assert len(MODEL_VARIANTS) >= 3


def test_model_variant_configs_are_fresh_and_validated():
    first = model_variant_configs("evolved")
    second = model_variant_configs("evolved")
    assert first[0] is not second[0]  # mutating one run can't leak
    assert first[0].creates_tcb_on_synack
    assert not model_variant_configs("evolved-nb1-off")[0].creates_tcb_on_synack
    assert not model_variant_configs("evolved-nb2-off")[0].supports_resync
    assert model_variant_configs("evolved-nb3-off")[0].resync_on_rst_probability == 0.0
    assert len(model_variant_configs("mixed")) == 2
    with pytest.raises(KeyError):
        model_variant_configs("gfw-9000")


# ---------------------------------------------------------------------------
# verdict reduction
# ---------------------------------------------------------------------------
def test_classify_counts_majorities_and_ties():
    assert classify_counts(6, 0, 0) == "evades"
    assert classify_counts(3, 1, 2) == "evades"  # half success still evades
    assert classify_counts(0, 0, 6) == "blocked"
    assert classify_counts(0, 6, 0) == "broken"
    assert classify_counts(2, 2, 2) == "mixed"
    assert classify_counts(0, 3, 3) == "mixed"  # no strict majority
    assert classify_counts(0, 0, 0) == "mixed"
    assert classify_counts(0, 2, 4) == "blocked"
    assert classify_counts(0, 4, 2) == "broken"


# ---------------------------------------------------------------------------
# matrix enumeration (the acceptance-criteria shape)
# ---------------------------------------------------------------------------
def test_default_matrix_covers_required_axes():
    cells = default_cells()
    strategies = {cell.strategy_id for cell in cells}
    variants = {cell.gfw_variant for cell in cells}
    profiles = {cell.profile for cell in cells}
    faults = {cell.fault.name for cell in cells}
    assert strategies == set(STRATEGY_REGISTRY)  # every registered strategy
    # Every registered model variant plus the heterogeneous pseudo-variant;
    # MODEL_VARIANTS itself must stay free of it (fleet defaults and
    # population draws never pick heterogeneous implicitly).
    assert variants == set(CONFORMANCE_VARIANTS)
    assert variants == set(MODEL_VARIANTS) | {"heterogeneous"}
    assert "heterogeneous" not in MODEL_VARIANTS
    assert len(variants) >= 3
    assert profiles == set(CONFORMANCE_PROFILES)
    assert len(faults) >= 2
    assert len(cells) == (
        len(strategies) * len(variants) * len(profiles) * len(faults)
    )


def test_default_cells_validates_axis_names():
    with pytest.raises(KeyError):
        default_cells(strategies=["no-such-strategy"])
    with pytest.raises(KeyError):
        default_cells(variants=["no-such-variant"])
    with pytest.raises(KeyError):
        default_cells(profiles=["no-such-profile"])
    with pytest.raises(KeyError):
        default_cells(faults=["no-such-fault"])
    subset = default_cells(strategies=["none"], variants=["old"],
                           profiles=["neutral"], faults=["clean"])
    assert len(subset) == 1
    assert subset[0].cell_id == "none|old|neutral|clean"


def test_profile_vantages_carry_expected_middleboxes():
    assert profile_vantage("neutral").provider_profile == "transparent"
    assert profile_vantage("aliyun").provider_profile == "aliyun"
    assert profile_vantage("unicom-tj").provider_profile == "unicom-tj"


# ---------------------------------------------------------------------------
# oracle table
# ---------------------------------------------------------------------------
def test_oracle_rules_blanket_the_default_matrix():
    uncovered = [c.cell_id for c in default_cells() if find_rule(c) is None]
    assert uncovered == []


def test_oracle_rules_all_cite_provenance():
    for rule in ORACLE_RULES:
        assert rule.provenance.strip()
        assert rule.allowed
        for verdict in rule.allowed:
            assert verdict in ("evades", "blocked", "broken", "mixed")


def test_known_divergences_match_their_enforcing_rules():
    """Every divergence entry must agree with the rule that enforces it:
    the divergence's repro verdict is allowed, the paper's isn't."""
    assert KNOWN_DIVERGENCE  # the list is part of the deliverable
    for entry in KNOWN_DIVERGENCE:
        probe = ConformanceCell(
            entry.strategy.replace("*", "ttl"),
            "old" if entry.variant == "*" else entry.variant,
            "neutral" if entry.profile == "*" else entry.profile,
            fault_by_name("clean" if entry.fault == "*" else entry.fault),
        )
        rule = find_rule(probe)
        assert rule is not None, f"no rule enforces {entry}"
        assert entry.repro_verdict in rule.allowed
        assert entry.paper_expected not in rule.allowed
        assert entry.reason.strip()


def test_check_verdicts_flags_drift_and_uncovered():
    ok = CellResult(
        cell=ConformanceCell("none", "old", "neutral", fault_by_name("clean")),
        failure2=6,
    )
    drifted = CellResult(
        cell=ConformanceCell("none", "evolved", "neutral",
                             fault_by_name("clean")),
        success=6,  # "none" evading would be a serious regression
    )
    unknown = CellResult(
        cell=ConformanceCell("none", "old", "neutral", fault_by_name("clean")),
        failure2=6,
    )
    object.__setattr__(unknown.cell, "strategy_id", "mystery-strategy")
    results = {
        ok.cell.cell_id: ok,
        drifted.cell.cell_id: drifted,
        unknown.cell.cell_id: unknown,
    }
    drifts, uncovered = check_verdicts(results)
    assert [d.cell_id for d in drifts] == ["none|evolved|neutral|clean"]
    assert drifts[0].observed == "evades"
    assert "blocked" in drifts[0].allowed
    assert drifts[0].provenance
    assert uncovered == ["mystery-strategy|old|neutral|clean"]


# ---------------------------------------------------------------------------
# cell execution: determinism and worker parity
# ---------------------------------------------------------------------------
def test_run_cell_is_seed_deterministic():
    cell = ConformanceCell("tcb-teardown-rst/ttl", "evolved", "neutral",
                           fault_by_name("clean"))
    first = run_cell(cell, repeats=4, seed=11)
    second = run_cell(cell, repeats=4, seed=11)
    assert first.as_payload() == second.as_payload()
    assert first.trials == 4


def test_forced_variant_is_differential():
    """The same strategy must meet genuinely different censors: RST
    teardown beats the old model and loses to the evolved one (NB3)."""
    old = run_cell(
        ConformanceCell("tcb-teardown-rst/ttl", "old", "neutral",
                        fault_by_name("clean")),
        repeats=3,
    )
    evolved = run_cell(
        ConformanceCell("tcb-teardown-rst/ttl", "evolved", "neutral",
                        fault_by_name("clean")),
        repeats=3,
    )
    assert old.verdict == "evades"
    assert evolved.verdict == "blocked"


def test_matrix_verdicts_identical_serial_vs_two_workers(monkeypatch):
    """Satellite pin: same seed => identical verdict map for any worker
    count and with scenario reuse on, on a lossy/jittery cell set."""
    monkeypatch.setenv("REPRO_SCENARIO_REUSE", "1")
    from repro.experiments import scenarios

    scenarios.clear_scenario_pool()
    cells = default_cells(
        strategies=["tcb-teardown-rst/ttl", "resync-desync"],
        variants=["evolved", "evolved-nb3-off"],
        profiles=["neutral"],
        faults=["lossy"],
    )
    serial = run_matrix(cells, repeats=4, seed=5, workers=0)
    scenarios.clear_scenario_pool()
    fanned = run_matrix(cells, repeats=4, seed=5, workers=2)
    scenarios.clear_scenario_pool()
    assert {k: v.as_payload() for k, v in serial.items()} == \
        {k: v.as_payload() for k, v in fanned.items()}


# ---------------------------------------------------------------------------
# golden artifacts
# ---------------------------------------------------------------------------
def test_one_committed_golden_ladder_matches():
    """A fast single-cell pin of the full ladder check: the canonical
    tcb-reversal trace against the evolved censor."""
    cell = next(
        c for c in golden_cells() if c.strategy_id == "tcb-reversal"
    )
    blessed = (golden_dir() / ladder_filename(cell)).read_text()
    assert blessed == capture_ladder(cell)


def test_golden_snapshot_exists_and_is_well_formed():
    snapshot = json.loads((golden_dir() / "verdicts.json").read_text())
    cells = snapshot["cells"]
    assert len(cells) == len(default_cells())
    for cell_id, row in cells.items():
        assert row["verdict"] in ("evades", "blocked", "broken", "mixed")
        assert row["success"] + row["failure1"] + row["failure2"] == \
            snapshot["repeats"]
        assert len(cell_id.split("|")) == 4


@pytest.mark.slow
def test_full_matrix_conforms_to_oracles_and_goldens():
    """The tentpole check, as a test: every registered strategy against
    every GFW model variant, every conformance profile, and the whole
    fault grid — no verdict drift from the paper-derived oracles, no
    un-blessed divergence from the golden snapshot or ladders."""
    results = run_matrix()
    drifts, uncovered = check_verdicts(results)
    assert uncovered == []
    assert [d.format() for d in drifts] == []
    diff = compare_golden(results)
    assert diff.clean, diff.format()
