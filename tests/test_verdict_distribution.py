"""Distribution-valued verdicts: Wilson bounds, merge algebra, and the
point-estimate view staying consistent with ``classify_counts``.

The statistical tier exists because a heterogeneous censor makes single
trials unrepresentative: a conformance cell is now an outcome *count*
vector with an evasion-rate interval, and shards must be mergeable
without changing anything.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.inconsistency import (
    DEFAULT_Z,
    VerdictDistribution,
    wilson_interval,
)
from repro.conformance.matrix import classify_counts


# ---------------------------------------------------------------------------
# wilson_interval edges
# ---------------------------------------------------------------------------
class TestWilsonInterval:
    def test_n_zero_is_vacuous(self):
        assert wilson_interval(0, 0) == (0.0, 1.0)
        assert wilson_interval(0, -3) == (0.0, 1.0)

    def test_n_one_edges(self):
        low0, high0 = wilson_interval(0, 1)
        low1, high1 = wilson_interval(1, 1)
        # One Bernoulli observation pins almost nothing: both intervals
        # stay wide, and they mirror each other around 1/2.
        assert low0 == pytest.approx(0.0) and high1 == pytest.approx(1.0)
        assert high0 > 0.5 and low1 < 0.5
        assert low1 == pytest.approx(1.0 - high0)

    def test_degenerate_counts_have_nonzero_width(self):
        # All-evade and all-block never collapse to a point — the whole
        # reason to carry bounds instead of a rate.
        low, high = wilson_interval(6, 6)
        assert high == pytest.approx(1.0) and 0.0 < low < 1.0
        low, high = wilson_interval(0, 6)
        assert low == pytest.approx(0.0) and 0.0 < high < 1.0

    def test_interval_contains_point_estimate_and_tightens(self):
        for successes, trials in ((3, 7), (5, 11), (40, 100)):
            low, high = wilson_interval(successes, trials)
            assert low <= successes / trials <= high
        narrow = wilson_interval(50, 100)
        wide = wilson_interval(5, 10)
        assert narrow[1] - narrow[0] < wide[1] - wide[0]

    def test_z_controls_width(self):
        tight = wilson_interval(4, 8, z=1.0)
        loose = wilson_interval(4, 8, z=2.58)
        assert tight[0] > loose[0] and tight[1] < loose[1]
        assert DEFAULT_Z == pytest.approx(1.96)

    @settings(max_examples=100, deadline=None)
    @given(
        successes=st.integers(min_value=0, max_value=200),
        extra=st.integers(min_value=0, max_value=200),
    )
    def test_bounds_always_ordered_and_clamped(self, successes, extra):
        low, high = wilson_interval(successes, successes + extra)
        assert 0.0 <= low <= high <= 1.0
        assert not math.isnan(low) and not math.isnan(high)


# ---------------------------------------------------------------------------
# VerdictDistribution
# ---------------------------------------------------------------------------
COUNTS = st.tuples(
    st.integers(min_value=0, max_value=50),
    st.integers(min_value=0, max_value=50),
    st.integers(min_value=0, max_value=50),
)


def dist(counts):
    return VerdictDistribution(*counts)


class TestVerdictDistribution:
    def test_counts_and_trials(self):
        d = VerdictDistribution(success=3, failure1=1, failure2=2)
        assert d.trials == 6
        assert d.verdict == classify_counts(3, 1, 2) == "evades"

    @settings(max_examples=100, deadline=None)
    @given(counts=COUNTS)
    def test_verdict_matches_classify_counts(self, counts):
        assert dist(counts).verdict == classify_counts(*counts)

    @settings(max_examples=100, deadline=None)
    @given(a=COUNTS, b=COUNTS, c=COUNTS)
    def test_merge_associative_and_commutative(self, a, b, c):
        left = (dist(a) + dist(b)) + dist(c)
        right = dist(a) + (dist(b) + dist(c))
        assert left == right
        assert dist(a) + dist(b) == dist(b) + dist(a)
        assert left.trials == sum(a) + sum(b) + sum(c)

    def test_merge_of_shards_equals_pooled(self):
        # Two shards of one cell must reduce exactly like the serial run.
        shard1 = VerdictDistribution(success=2, failure2=1)
        shard2 = VerdictDistribution(success=1, failure1=1, failure2=1)
        pooled = VerdictDistribution(success=3, failure1=1, failure2=2)
        assert shard1.merge(shard2) == pooled
        assert shard1.merge(shard2).wilson() == pooled.wilson()

    def test_empty_distribution(self):
        empty = VerdictDistribution()
        assert empty.trials == 0
        assert empty.verdict == "mixed"  # classify_counts(0,0,0)
        assert empty.wilson() == (0.0, 1.0)
        assert empty + empty == empty

    def test_wilson_uses_success_rate(self):
        d = VerdictDistribution(success=4, failure1=1, failure2=1)
        assert d.wilson() == wilson_interval(4, 6)
        assert d.wilson(z=1.0) == wilson_interval(4, 6, z=1.0)

    def test_payload_shape(self):
        payload = VerdictDistribution(success=5, failure2=1).as_payload()
        assert payload["verdict"] == "evades"
        assert payload["trials"] == 6
        assert payload["success"] == 5
        assert 0.0 <= payload["wilson_low"] <= payload["wilson_high"] <= 1.0


# ---------------------------------------------------------------------------
# integration with the experiment reducers
# ---------------------------------------------------------------------------
class TestDistributionIntegration:
    def test_rate_triple_distribution_round_trip(self):
        from repro.experiments.runner import Outcome, RateTriple

        outcomes = [Outcome.SUCCESS] * 3 + [Outcome.FAILURE2] * 2
        triple = RateTriple.from_outcomes(outcomes)
        d = triple.distribution
        assert (d.success, d.failure1, d.failure2) == (3, 0, 2)
        assert triple.wilson() == wilson_interval(3, 5)

    def test_conformance_cell_result_distribution(self):
        from repro.conformance.matrix import (
            ConformanceCell,
            CellResult,
            fault_by_name,
        )

        result = CellResult(
            cell=ConformanceCell(
                "none", "old", "neutral", fault_by_name("clean")
            ),
            success=1,
            failure2=5,
        )
        d = result.distribution
        assert d == VerdictDistribution(success=1, failure2=5)
        assert d.verdict == result.verdict == "blocked"
        payload = result.as_payload()
        assert payload["wilson_low"] == pytest.approx(
            round(wilson_interval(1, 6)[0], 6)
        )
        assert payload["wilson_high"] == pytest.approx(
            round(wilson_interval(1, 6)[1], 6)
        )
