"""Failure diagnosis and delay-jitter reordering tests."""

import random

import pytest

from repro.experiments import (
    CHINA_VANTAGE_POINTS,
    CLEAN_ROOM,
    DEFAULT_CALIBRATION,
    Outcome,
    outside_china_catalog,
    run_http_trial,
    vantage_by_name,
)
from repro.netsim import Host, Network, Path, SimClock
from repro.netstack.packet import ACK, tcp_packet

from helpers import SERVER_IP, fetch, mini_topology


class TestDiagnosis:
    def test_success_has_no_diagnosis(self):
        record = run_http_trial(
            CHINA_VANTAGE_POINTS[1], outside_china_catalog()[0],
            "tcb-teardown+tcb-reversal", CLEAN_ROOM, seed=1,
        )
        assert record.outcome is Outcome.SUCCESS
        assert record.diagnosis is None

    def test_detection_diagnosed_with_reset_type(self):
        record = run_http_trial(
            CHINA_VANTAGE_POINTS[1], outside_china_catalog()[0],
            "none", CLEAN_ROOM, seed=1,
        )
        assert record.outcome is Outcome.FAILURE2
        assert record.diagnosis.startswith("keyword-detected")
        assert "type" in record.diagnosis

    def test_firewall_blackhole_diagnosed(self):
        """Force a firewall and a strategy whose RSTs poison it."""
        from repro.experiments.scenarios import build_scenario
        from repro.core.intang import INTANG
        from repro.apps.http import HTTPClient
        from repro.experiments.runner import (
            SENSITIVE_PATH,
            classify,
            diagnose_failure,
        )

        scenario = build_scenario(
            vantage=vantage_by_name("aliyun-shanghai"),
            website=outside_china_catalog()[0],
            calibration=CLEAN_ROOM, seed=2,
            force_firewall=True,
        )
        INTANG(
            host=scenario.client, tcp_host=scenario.client_tcp,
            clock=scenario.clock, network=scenario.network,
            fixed_strategy="improved-tcb-teardown",
            rng=random.Random(1),
        )
        _, exchange = HTTPClient(scenario.client_tcp).get(
            scenario.website.ip, host="x", path=SENSITIVE_PATH
        )
        scenario.run()
        outcome = classify(exchange.got_response, scenario.gfw_resets_received())
        assert outcome is Outcome.FAILURE1
        assert diagnose_failure(scenario, outcome) == "client-side-firewall-blackhole"

    def test_failure_causes_aggregate_sensibly(self):
        """Over the default environment, every failed trial gets some
        attribution and the population is dominated by known causes."""
        causes = {}
        sites = outside_china_catalog()[:10]
        for v_index, vantage in enumerate(CHINA_VANTAGE_POINTS):
            for w_index, website in enumerate(sites):
                record = run_http_trial(
                    vantage, website, "improved-tcb-teardown",
                    DEFAULT_CALIBRATION, seed=v_index * 100 + w_index,
                )
                if record.outcome is not Outcome.SUCCESS:
                    causes[record.diagnosis] = causes.get(record.diagnosis, 0) + 1
        assert all(cause is not None for cause in causes)


class TestJitter:
    def test_invalid_jitter_rejected(self):
        with pytest.raises(ValueError):
            Path("1.1.1.1", "2.2.2.2", jitter=1.5)

    def test_jitter_reorders_packets(self):
        clock = SimClock()
        network = Network(clock=clock, rng=random.Random(3))
        received = []

        class Sink(Host):
            def __init__(self, ip):
                super().__init__(ip)
                self.register_handler(
                    lambda p, now: (received.append(p.tcp.seq), True)[1]
                )

        a = network.add_host(Host("10.0.0.1"))
        b = network.add_host(Sink("10.0.0.9"))
        network.add_path(Path("10.0.0.1", "10.0.0.9", hop_count=10, jitter=0.9))
        for seq in range(40):
            a.send(tcp_packet("10.0.0.1", "10.0.0.9", 1, 2, flags=ACK,
                              seq=seq, payload=b"x"))
        clock.run()
        assert len(received) == 40
        assert received != sorted(received)  # at least one reorder

    def test_tcp_transfer_survives_heavy_jitter(self):
        """Endpoint reassembly absorbs in-flight reordering."""
        world = mini_topology(with_gfw=False, serve_http=False, seed=6)
        world.path.jitter = 0.8
        received = []
        world.server_tcp.listen(
            80, lambda conn: setattr(conn, "on_data",
                                     lambda c, d: received.append(d))
        )
        payload = bytes(range(256)) * 8
        connection = world.client_tcp.connect(SERVER_IP, 80)
        connection.on_established = lambda c: c.send(payload, segment_size=64)
        world.run(10.0)
        assert b"".join(received) == payload

    def test_zero_jitter_is_fifo(self):
        clock = SimClock()
        network = Network(clock=clock, rng=random.Random(3))
        received = []

        class Sink(Host):
            def __init__(self, ip):
                super().__init__(ip)
                self.register_handler(
                    lambda p, now: (received.append(p.tcp.seq), True)[1]
                )

        a = network.add_host(Host("10.0.0.1"))
        network.add_host(Sink("10.0.0.9"))
        network.add_path(Path("10.0.0.1", "10.0.0.9", hop_count=10))
        for seq in range(20):
            a.send(tcp_packet("10.0.0.1", "10.0.0.9", 1, 2, flags=ACK,
                              seq=seq, payload=b"x"))
        clock.run()
        assert received == sorted(received)
