"""TCP state-machine tests: handshake, data, close, resets, and every
ignore path of §5.3 as seen from a Linux-4.4-like server."""

import pytest

from repro.netstack.options import MD5SignatureOption, TimestampOption
from repro.netstack.packet import ACK, FIN, IPPacket, RST, SYN, seq_add
from repro.tcp.stack import CloseReason, DropReason
from repro.tcp.tcb import TCPState

from helpers import CLIENT_IP, SERVER_IP, fetch, mini_topology


def _connect(world):
    connection = world.client_tcp.connect(SERVER_IP, 80)
    world.run(1.0)
    return connection


def _server_conn(world, client_conn):
    key = (80, CLIENT_IP, client_conn.tcb.local_port)
    return world.server_tcp.connections[key]


class TestHandshake:
    def test_three_way_handshake(self):
        world = mini_topology(with_gfw=False)
        connection = _connect(world)
        assert connection.state is TCPState.ESTABLISHED
        assert _server_conn(world, connection).state is TCPState.ESTABLISHED

    def test_isn_randomized(self):
        world = mini_topology(with_gfw=False)
        a = world.client_tcp.connect(SERVER_IP, 80)
        b = world.client_tcp.connect(SERVER_IP, 80)
        assert a.tcb.iss != b.tcb.iss

    def test_ephemeral_ports_distinct(self):
        world = mini_topology(with_gfw=False)
        a = world.client_tcp.connect(SERVER_IP, 80)
        b = world.client_tcp.connect(SERVER_IP, 80)
        assert a.tcb.local_port != b.tcb.local_port

    def test_syn_to_closed_port_refused(self):
        world = mini_topology(with_gfw=False)
        connection = world.client_tcp.connect(SERVER_IP, 4444)
        world.run(1.0)
        assert connection.state is TCPState.CLOSED
        assert connection.close_reason is CloseReason.REFUSED

    def test_timestamps_negotiated(self):
        world = mini_topology(with_gfw=False)
        connection = _connect(world)
        assert connection.tcb.timestamps_enabled
        assert _server_conn(world, connection).tcb.timestamps_enabled

    def test_syn_retransmission_on_loss(self):
        world = mini_topology(with_gfw=False, loss_rate=0.35, seed=9)
        connection = world.client_tcp.connect(SERVER_IP, 80)
        world.run(6.0)
        assert connection.state is TCPState.ESTABLISHED

    def test_duplicate_syn_in_syn_recv_gets_synack_again(self):
        """A retransmitted SYN (lost SYN/ACK) re-elicits the SYN/ACK."""
        from dataclasses import replace

        from repro.netstack.packet import TCPSegment

        world = mini_topology(with_gfw=False)
        # The raw-crafted handshake below has no client connection, so
        # keep the client stack from RST-ing the "stray" SYN/ACKs.
        world.client_tcp.profile = replace(
            world.client_tcp.profile, rst_on_stray_packets=False
        )
        synacks = []
        world.client.register_handler(
            lambda p, now: (
                synacks.append(p) if p.is_tcp and p.tcp.is_synack else None,
                False,
            )[1],
            prepend=True,
        )
        syn = TCPSegment(src_port=7777, dst_port=80, seq=1000, flags=SYN)
        world.client.send_raw(IPPacket(src=CLIENT_IP, dst=SERVER_IP, payload=syn))
        world.run(0.3)
        world.client.send_raw(
            IPPacket(src=CLIENT_IP, dst=SERVER_IP, payload=syn.copy())
        )
        world.run(0.3)
        assert len(synacks) == 2
        assert synacks[0].tcp.seq == synacks[1].tcp.seq  # same server ISN


class TestDataTransfer:
    def test_request_response(self):
        world = mini_topology(with_gfw=False)
        exchange = fetch(world, path="/hello")
        assert exchange.got_response
        assert exchange.response_status.startswith("HTTP/1.1 200")

    def test_segmentation(self):
        world = mini_topology(with_gfw=False)
        connection = _connect(world)
        connection.send(b"A" * 4000, segment_size=1000)
        world.run(2.0)
        server = _server_conn(world, connection)
        assert bytes(server.application_data) == b"A" * 4000

    def test_out_of_order_delivery_reassembled(self):
        world = mini_topology(with_gfw=False)
        connection = _connect(world)
        server = _server_conn(world, connection)
        base = connection.tcb.snd_nxt
        tail = connection.make_packet(flags=ACK, seq=seq_add(base, 4), payload=b"WORLD")
        head = connection.make_packet(flags=ACK, seq=base, payload=b"HELO")
        world.client.send_raw(tail)
        world.client.send_raw(head)
        world.run(1.0)
        assert bytes(server.application_data) == b"HELOWORLD"

    def test_data_retransmission_on_loss(self):
        world = mini_topology(with_gfw=False, loss_rate=0.3, seed=21)
        exchange = fetch(world, path="/retry", duration=15.0)
        assert exchange.got_response

    def test_retransmission_timeout_closes_connection(self):
        world = mini_topology(with_gfw=False, loss_rate=1.0)
        connection = world.client_tcp.connect(SERVER_IP, 80)
        world.run(30.0)
        assert connection.state is TCPState.CLOSED
        assert connection.close_reason is CloseReason.TIMEOUT


class TestClose:
    def test_graceful_close_both_sides(self):
        world = mini_topology(with_gfw=False, serve_http=False)
        accepted = []
        world.server_tcp.listen(80, accepted.append)
        connection = _connect(world)
        connection.close()
        world.run(1.0)
        server = accepted[0]
        assert server.state is TCPState.CLOSE_WAIT
        server.close()
        world.run(3.0)
        assert server.state is TCPState.CLOSED
        assert connection.state in (TCPState.TIME_WAIT, TCPState.CLOSED)

    def test_abort_sends_rst(self):
        world = mini_topology(with_gfw=False)
        connection = _connect(world)
        server = _server_conn(world, connection)
        connection.abort()
        world.run(1.0)
        assert server.state is TCPState.CLOSED
        assert server.close_reason is CloseReason.RESET

    def test_purge_closed(self):
        world = mini_topology(with_gfw=False)
        connection = _connect(world)
        connection.abort()
        world.run(1.0)
        assert world.client_tcp.purge_closed() >= 1


class TestIgnorePaths:
    """Each §5.3 server ignore path, asserted individually."""

    def _established(self):
        world = mini_topology(with_gfw=False)
        connection = _connect(world)
        return world, connection, _server_conn(world, connection)

    def _last_drop(self, server):
        assert server.drop_log, "expected a logged silent drop"
        return server.drop_log[-1][0]

    def test_bad_checksum_dropped(self):
        world, connection, server = self._established()
        packet = connection.make_packet(flags=ACK, payload=b"zz")
        packet.tcp.checksum_override = 0x1111
        world.client.send_raw(packet)
        world.run(0.5)
        assert not server.application_data
        assert self._last_drop(server) is DropReason.BAD_CHECKSUM

    def test_unsolicited_md5_dropped(self):
        world, connection, server = self._established()
        packet = connection.make_packet(flags=ACK, payload=b"zz")
        packet.tcp.options.append(MD5SignatureOption())
        world.client.send_raw(packet)
        world.run(0.5)
        assert self._last_drop(server) is DropReason.UNSOLICITED_MD5

    def test_no_flag_data_dropped(self):
        world, connection, server = self._established()
        packet = connection.make_packet(flags=0, payload=b"zz")
        world.client.send_raw(packet)
        world.run(0.5)
        assert self._last_drop(server) is DropReason.NO_ACK_FLAG

    def test_bad_ack_number_dropped(self):
        world, connection, server = self._established()
        packet = connection.make_packet(
            flags=ACK, payload=b"zz", ack=seq_add(connection.tcb.rcv_nxt, 0x2000000)
        )
        world.client.send_raw(packet)
        world.run(0.5)
        assert self._last_drop(server) is DropReason.BAD_ACK_NUMBER

    def test_old_timestamp_dropped_with_dup_ack(self):
        world, connection, server = self._established()
        stale = TimestampOption(tsval=1, tsecr=0)
        packet = connection.make_packet(flags=ACK, payload=b"zz")
        packet.tcp.options.append(stale)
        world.client.send_raw(packet)
        world.run(0.5)
        assert self._last_drop(server) is DropReason.PAWS_OLD_TIMESTAMP

    def test_short_header_dropped(self):
        world, connection, server = self._established()
        packet = connection.make_packet(flags=ACK, payload=b"zz")
        packet.tcp.data_offset_override = 3
        world.client.send_raw(packet)
        world.run(0.5)
        assert self._last_drop(server) is DropReason.BAD_TCP_HEADER_LEN

    def test_oversize_ip_length_dropped(self):
        world, connection, server = self._established()
        packet = connection.make_packet(flags=ACK, payload=b"zz")
        packet.total_length_override = 4000
        world.client.send_raw(packet)
        world.run(0.5)
        assert self._last_drop(server) is DropReason.IP_LENGTH_MISMATCH

    def test_out_of_window_data_acked_not_consumed(self):
        world, connection, server = self._established()
        packet = connection.make_packet(
            flags=ACK, seq=seq_add(connection.tcb.snd_nxt, 0x40000000),
            payload=b"desync",
        )
        world.client.send_raw(packet)
        world.run(0.5)
        assert not server.application_data
        assert self._last_drop(server) is DropReason.OUT_OF_WINDOW


class TestRSTHandling:
    def test_exact_seq_rst_resets(self):
        world = mini_topology(with_gfw=False)
        connection = _connect(world)
        server = _server_conn(world, connection)
        rst = connection.make_packet(flags=RST, seq=connection.tcb.snd_nxt, ack=0)
        world.client.send_raw(rst)
        world.run(0.5)
        assert server.state is TCPState.CLOSED
        assert server.close_reason is CloseReason.RESET

    def test_in_window_inexact_rst_challenged(self):
        """RFC 5961 §3: a challenge ACK, not a teardown."""
        world = mini_topology(with_gfw=False)
        connection = _connect(world)
        server = _server_conn(world, connection)
        rst = connection.make_packet(
            flags=RST, seq=seq_add(connection.tcb.snd_nxt, 100), ack=0
        )
        world.client.send_raw(rst)
        world.run(0.5)
        assert server.state is TCPState.ESTABLISHED
        assert server.challenge_acks_sent == 1

    def test_out_of_window_rst_ignored(self):
        world = mini_topology(with_gfw=False)
        connection = _connect(world)
        server = _server_conn(world, connection)
        rst = connection.make_packet(
            flags=RST, seq=seq_add(connection.tcb.snd_nxt, 0x40000000), ack=0
        )
        world.client.send_raw(rst)
        world.run(0.5)
        assert server.state is TCPState.ESTABLISHED
        assert server.challenge_acks_sent == 0

    def test_syn_in_established_challenge_acked(self):
        world = mini_topology(with_gfw=False)
        connection = _connect(world)
        server = _server_conn(world, connection)
        syn = connection.make_packet(flags=SYN, seq=connection.tcb.snd_nxt, ack=0)
        world.client.send_raw(syn)
        world.run(0.5)
        assert server.state is TCPState.ESTABLISHED
        assert server.challenge_acks_sent == 1


class TestStrayPackets:
    def test_stray_synack_elicits_rst(self):
        """The server reaction TCB Reversal must avoid via low TTL."""
        world = mini_topology(with_gfw=False)
        rsts = []
        world.client.register_handler(
            lambda p, now: (
                rsts.append(p) if p.is_tcp and p.tcp.is_rst else None, False
            )[1],
            prepend=True,
        )
        stray = IPPacket(
            src=CLIENT_IP, dst=SERVER_IP,
            payload=__import__("repro.netstack.packet", fromlist=["TCPSegment"]).TCPSegment(
                src_port=5555, dst_port=80, seq=1, ack=2, flags=SYN | ACK
            ),
        )
        world.client.send_raw(stray)
        world.run(0.5)
        assert len(rsts) == 1
        assert world.server_tcp.stray_rsts_sent == 1

    def test_stray_rst_not_answered(self):
        world = mini_topology(with_gfw=False)
        from repro.netstack.packet import TCPSegment

        stray = IPPacket(
            src=CLIENT_IP, dst=SERVER_IP,
            payload=TCPSegment(src_port=5555, dst_port=80, seq=1, flags=RST),
        )
        world.client.send_raw(stray)
        world.run(0.5)
        assert world.server_tcp.stray_rsts_sent == 0


class TestFINWithoutAck:
    def test_fin_only_ignored_by_modern_server(self):
        world = mini_topology(with_gfw=False)
        connection = _connect(world)
        server = _server_conn(world, connection)
        fin = connection.make_packet(flags=FIN, seq=connection.tcb.snd_nxt, ack=0)
        world.client.send_raw(fin)
        world.run(0.5)
        assert server.state is TCPState.ESTABLISHED
