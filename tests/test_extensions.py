"""Tests for the extension features: the West Chamber baseline, the GFW
responsiveness probe, INTANG state persistence, and the CLI."""

import random

import pytest

from repro.core.intang import INTANG
from repro.core.responsiveness import ResponsivenessProbe
from repro.gfw import evolved_config, old_config

from helpers import SERVER_IP, detections, fetch, mini_topology


class TestWestChamberBaseline:
    def _run(self, model, seed=3):
        config = evolved_config() if model == "evolved" else old_config()
        world = mini_topology(gfw_config=config, seed=seed)
        INTANG(
            host=world.client, tcp_host=world.client_tcp, clock=world.clock,
            network=world.network, fixed_strategy="west-chamber",
            rng=random.Random(seed),
        )
        exchange = fetch(world)
        return world, exchange

    def test_worked_against_the_2010_era_gfw(self):
        world, exchange = self._run("old")
        assert detections(world) == 0
        assert exchange.got_response

    def test_now_ineffective_as_the_paper_found(self):
        """§1: "none of the strategies were found to be effective"."""
        caught = 0
        for seed in range(4):
            config = evolved_config()
            # Across installations the NB3 coin varies; West Chamber dies
            # either way once the FIN is ignored and the RST resyncs.
            config.resync_on_rst_probability = 1.0
            config.resync_on_rst_handshake_probability = 1.0
            world = mini_topology(gfw_config=config, seed=seed)
            INTANG(
                host=world.client, tcp_host=world.client_tcp,
                clock=world.clock, network=world.network,
                fixed_strategy="west-chamber", rng=random.Random(seed),
            )
            fetch(world)
            if detections(world):
                caught += 1
        assert caught == 4

    def test_benign_traffic_unharmed(self):
        world = mini_topology(seed=3)
        INTANG(
            host=world.client, tcp_host=world.client_tcp, clock=world.clock,
            network=world.network, fixed_strategy="west-chamber",
            rng=random.Random(1),
        )
        exchange = fetch(world, path="/benign")
        assert exchange.got_response

    def test_registered(self):
        from repro.strategies.registry import STRATEGY_REGISTRY

        assert "west-chamber" in STRATEGY_REGISTRY


class TestResponsivenessProbe:
    def _probe(self, config=None, with_gfw=True, seed=40):
        world = mini_topology(gfw_config=config, with_gfw=with_gfw, seed=seed)
        probe = ResponsivenessProbe(
            world.client, world.client_tcp, world.clock,
            rng=random.Random(1),
        )
        return world, probe.probe(SERVER_IP)

    def test_uncensored_path(self):
        _, report = self._probe(with_gfw=False)
        assert not report.censored
        assert "uncensored" in report.summary()

    def test_censored_path_classified(self):
        _, report = self._probe(config=evolved_config())
        assert report.censored
        assert report.reset_types == ["type2"]
        assert report.blacklist_active

    def test_type1_signature_and_no_blacklist(self):
        _, report = self._probe(config=evolved_config(reset_type=1))
        assert report.reset_types == ["type1"]
        assert not report.blacklist_active

    def test_model_discrimination(self):
        _, evolved_report = self._probe(config=evolved_config())
        assert evolved_report.evolved_model is True
        _, old_report = self._probe(config=old_config(reset_type=2))
        assert old_report.evolved_model is False

    def test_summary_mentions_model(self):
        _, report = self._probe(config=evolved_config())
        assert "evolved model" in report.summary()


class TestStatePersistence:
    def test_measurement_history_survives_restart(self):
        world = mini_topology(seed=41)
        first = INTANG(
            host=world.client, tcp_host=world.client_tcp, clock=world.clock,
            network=world.network, rng=random.Random(1),
        )
        exchange = fetch(world)
        first.report_result(SERVER_IP, exchange.got_response)
        pinned_before = first.selector.record_for(SERVER_IP).pinned
        blob = first.save_state()
        first.detach()

        world2 = mini_topology(seed=42)
        second = INTANG(
            host=world2.client, tcp_host=world2.client_tcp,
            clock=world2.clock, network=world2.network,
            rng=random.Random(2),
        )
        second.load_state(blob)
        assert second.selector.record_for(SERVER_IP).pinned == pinned_before
        assert second.selector.choose(SERVER_IP) == pinned_before


class TestCLI:
    def test_list(self, capsys):
        from repro.cli import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "tcb-teardown+tcb-reversal" in out
        assert "west-chamber" in out

    def test_table3(self, capsys):
        from repro.cli import main

        assert main(["table3"]) == 0
        out = capsys.readouterr().out
        assert "Has unsolicited MD5 Optional Header" in out

    def test_table5(self, capsys):
        from repro.cli import main

        assert main(["table5"]) == 0
        assert "Packet type" in capsys.readouterr().out

    def test_trial_success_exit_code(self, capsys):
        from repro.cli import main

        assert main(["trial", "--strategy", "tcb-teardown+tcb-reversal"]) == 0
        assert main(["trial", "--strategy", "none"]) == 1

    def test_probe_command(self, capsys):
        from repro.cli import main

        assert main(["probe", "--model", "old"]) == 0
        assert "old model" in capsys.readouterr().out

    def test_probe_clean(self, capsys):
        from repro.cli import main

        assert main(["probe", "--clean"]) == 0
        assert "uncensored" in capsys.readouterr().out

    def test_ladder(self, capsys):
        from repro.cli import main

        assert main(["ladder", "--figure", "4"]) == 0
        out = capsys.readouterr().out
        assert "evaded" in out
        assert "[SA]" in out

    def test_unknown_command_rejected(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["frobnicate"])
