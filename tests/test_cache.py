"""Cache layer tests: the Redis-substitute store and the LRU."""

import pytest
from hypothesis import given, strategies as st

from repro.core.cache import KeyValueStore, LRUCache


class FakeTime:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


@pytest.fixture
def time():
    return FakeTime()


@pytest.fixture
def store(time):
    return KeyValueStore(time_source=time)


class TestKeyValueStore:
    def test_set_get(self, store):
        store.set("k", {"a": 1})
        assert store.get("k") == {"a": 1}

    def test_get_default(self, store):
        assert store.get("missing", 42) == 42

    def test_delete(self, store):
        store.set("k", 1)
        assert store.delete("k")
        assert not store.delete("k")
        assert not store.exists("k")

    def test_ttl_expiry(self, store, time):
        store.set("k", 1, ttl=10.0)
        time.advance(9.9)
        assert store.exists("k")
        time.advance(0.2)
        assert not store.exists("k")
        assert store.get("k") is None

    def test_ttl_reported(self, store, time):
        store.set("k", 1, ttl=10.0)
        time.advance(4.0)
        assert store.ttl("k") == pytest.approx(6.0)
        assert store.ttl("persistent") is None

    def test_set_without_ttl_clears_old_ttl(self, store, time):
        store.set("k", 1, ttl=5.0)
        store.set("k", 2)
        time.advance(100.0)
        assert store.get("k") == 2

    def test_expire_extends(self, store, time):
        store.set("k", 1, ttl=5.0)
        assert store.expire("k", 50.0)
        time.advance(20.0)
        assert store.exists("k")

    def test_expire_on_missing_key(self, store):
        assert not store.expire("nope", 5.0)

    def test_expiry_callback(self, store, time):
        expired = []
        store.on_expire(expired.append)
        store.set("k", 1, ttl=1.0)
        time.advance(2.0)
        store.sweep()
        assert expired == ["k"]

    def test_keys_and_len_sweep_expired(self, store, time):
        store.set("a", 1, ttl=1.0)
        store.set("b", 2)
        time.advance(5.0)
        assert store.keys() == ["b"]
        assert len(store) == 1

    def test_dump_load_roundtrip(self, store, time):
        store.set("a", {"x": [1, 2]})
        store.set("b", "text", ttl=100.0)
        blob = store.dump()
        other = KeyValueStore(time_source=time)
        other.load(blob)
        assert other.get("a") == {"x": [1, 2]}
        assert other.get("b") == "text"

    def test_dump_skips_unserializable(self, store):
        store.set("bad", object())
        blob = store.dump()
        fresh = KeyValueStore(time_source=lambda: 0.0)
        fresh.load(blob)
        assert fresh.get("bad") is None


class TestLRUCache:
    def test_put_get(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.hits == 1

    def test_miss_counts(self):
        cache = LRUCache(capacity=2)
        assert cache.get("nope") is None
        assert cache.misses == 1

    def test_eviction_order(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)  # evicts a
        assert "a" not in cache
        assert cache.get("b") == 2
        assert cache.get("c") == 3
        assert cache.evictions == 1

    def test_get_refreshes_recency(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")
        cache.put("c", 3)  # evicts b (a was refreshed)
        assert "a" in cache
        assert "b" not in cache

    def test_update_existing_refreshes(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)
        cache.put("c", 3)  # evicts b
        assert cache.get("a") == 10
        assert "b" not in cache

    def test_capacity_one(self):
        cache = LRUCache(capacity=1)
        cache.put("a", 1)
        cache.put("b", 2)
        assert "a" not in cache
        assert cache.get("b") == 2

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            LRUCache(capacity=0)

    @given(
        st.lists(
            st.tuples(st.sampled_from("abcdefgh"), st.integers()),
            min_size=1, max_size=100,
        )
    )
    def test_property_never_exceeds_capacity(self, operations):
        cache = LRUCache(capacity=3)
        for key, value in operations:
            cache.put(key, value)
        assert len(cache) <= 3

    @given(
        st.lists(
            st.tuples(st.sampled_from("abcde"), st.integers()),
            min_size=1, max_size=60,
        )
    )
    def test_property_matches_reference_model(self, operations):
        """The linked-list LRU agrees with a simple ordered-dict model."""
        from collections import OrderedDict

        cache = LRUCache(capacity=3)
        model = OrderedDict()
        for key, value in operations:
            cache.put(key, value)
            if key in model:
                model.move_to_end(key)
            model[key] = value
            if len(model) > 3:
                model.popitem(last=False)
        for key, value in model.items():
            assert key in cache
