"""The strategy × GFW-model matrix (clean room) plus per-strategy
mechanics: the core qualitative claims of the paper, as assertions.

| strategy                    | old GFW | evolved GFW |
|-----------------------------|---------|-------------|
| none                        | caught  | caught      |
| tcb-creation-syn            | evades  | caught (§4) |
| ooo-ip-fragments            | evades  | evades (sans middleboxes) |
| ooo-tcp-segments            | evades  | caught (first-wins) |
| inorder-overlap             | evades  | evades      |
| tcb-teardown-rst            | evades  | evades/caught per NB3 coin |
| tcb-teardown-fin            | evades  | caught (§4) |
| resync-desync               | caught  | evades (§5.2) |
| tcb-reversal                | caught  | evades (§5.2) |
| improved + combined (Fig 3/4) | evades | evades     |
"""

import random

import pytest

from repro.core.intang import INTANG
from repro.gfw import evolved_config, old_config
from repro.strategies.registry import STRATEGY_REGISTRY

from helpers import SERVER_IP, detections, fetch, mini_topology


def run_strategy(strategy_id, model="evolved", seed=1, config_tweaks=None, **world_kw):
    config = evolved_config() if model == "evolved" else old_config()
    for name, value in (config_tweaks or {}).items():
        setattr(config, name, value)
    world = mini_topology(gfw_config=config, seed=seed, **world_kw)
    intang = INTANG(
        host=world.client, tcp_host=world.client_tcp, clock=world.clock,
        network=world.network, fixed_strategy=strategy_id,
        rng=random.Random(seed + 7),
    )
    exchange = fetch(world)
    return world, exchange, intang


def assert_evades(strategy_id, model, **kw):
    world, exchange, _ = run_strategy(strategy_id, model, **kw)
    assert detections(world) == 0, f"{strategy_id} was detected by {model} GFW"
    assert exchange.got_response, f"{strategy_id} broke the connection on {model}"


def assert_caught(strategy_id, model, **kw):
    world, exchange, _ = run_strategy(strategy_id, model, **kw)
    assert detections(world) >= 1, f"{strategy_id} unexpectedly evaded {model} GFW"


class TestBaseline:
    def test_no_strategy_caught_by_both_models(self):
        assert_caught("none", "evolved")
        assert_caught("none", "old")


class TestTCBCreation:
    def test_evades_old_model(self):
        assert_evades("tcb-creation-syn/ttl", "old")
        assert_evades("tcb-creation-syn/bad-checksum", "old")

    def test_caught_by_evolved_model(self):
        """§4 prior-assumption 2 failure: resync defeats fake-SYN TCBs."""
        assert_caught("tcb-creation-syn/ttl", "evolved")
        assert_caught("tcb-creation-syn/bad-checksum", "evolved")

    def test_fake_syn_does_not_reach_server(self):
        world, exchange, intang = run_strategy("tcb-creation-syn/ttl", "old")
        # Exactly one server connection: the real one.
        assert len(world.server_tcp.connections) == 1


class TestDataReassembly:
    def test_ooo_ip_fragments_evade_both_without_middleboxes(self):
        assert_evades("ooo-ip-fragments", "old")
        assert_evades("ooo-ip-fragments", "evolved")

    def test_ooo_tcp_segments_evade_old_only(self):
        assert_evades("ooo-tcp-segments", "old")
        assert_caught("ooo-tcp-segments", "evolved")

    def test_ooo_tcp_segments_evade_lastwins_evolved_devices(self):
        """The ~31% of Table 1: devices that kept the old preference."""
        from repro.netstack.fragment import OverlapPolicy

        assert_evades(
            "ooo-tcp-segments", "evolved",
            config_tweaks={"tcp_ooo_policy": OverlapPolicy.LAST_WINS},
        )

    @pytest.mark.parametrize(
        "strategy",
        [
            "inorder-overlap/ttl",
            "inorder-overlap/bad-ack",
            "inorder-overlap/bad-checksum",
            "inorder-overlap/no-flag",
        ],
    )
    def test_inorder_overlap_evades_both(self, strategy):
        assert_evades(strategy, "old")
        assert_evades(strategy, "evolved")

    def test_inorder_fails_against_noflag_ignoring_device(self):
        assert_caught(
            "inorder-overlap/no-flag", "evolved",
            config_tweaks={"accepts_no_flag_data": False},
        )

    def test_server_still_gets_real_request(self):
        world, exchange, _ = run_strategy("inorder-overlap/bad-ack", "evolved")
        assert exchange.got_response
        assert b"ultrasurf" in exchange.request


class TestTCBTeardown:
    @pytest.mark.parametrize(
        "strategy",
        ["tcb-teardown-rst/ttl", "tcb-teardown-rst/bad-checksum",
         "tcb-teardown-rstack/ttl", "tcb-teardown-rstack/bad-checksum"],
    )
    def test_rst_teardown_evades_old(self, strategy):
        assert_evades(strategy, "old")

    def test_rst_teardown_evades_evolved_when_coin_is_teardown(self):
        assert_evades(
            "tcb-teardown-rst/ttl", "evolved",
            config_tweaks={
                "resync_on_rst_probability": 0.0,
                "resync_on_rst_handshake_probability": 0.0,
            },
        )

    def test_rst_teardown_caught_when_coin_is_resync(self):
        """NB3: the device resynchronizes on the request instead."""
        assert_caught(
            "tcb-teardown-rst/ttl", "evolved",
            config_tweaks={
                "resync_on_rst_probability": 1.0,
                "resync_on_rst_handshake_probability": 1.0,
            },
        )

    def test_fin_teardown_evades_old_but_not_evolved(self):
        assert_evades("tcb-teardown-fin/ttl", "old")
        assert_caught("tcb-teardown-fin/ttl", "evolved")


class TestNewStrategies:
    def test_resync_desync_evades_evolved(self):
        assert_evades("resync-desync", "evolved")

    def test_resync_desync_fails_on_old(self):
        """No resync state to exploit — hence the Fig. 3 combination."""
        assert_caught("resync-desync", "old")

    def test_tcb_reversal_evades_evolved(self):
        assert_evades("tcb-reversal", "evolved")

    def test_tcb_reversal_fails_on_old(self):
        assert_caught("tcb-reversal", "old")

    def test_resync_desync_robust_to_nb3(self):
        assert_evades(
            "resync-desync", "evolved",
            config_tweaks={"resync_on_rst_probability": 1.0},
        )


class TestImprovedAndCombined:
    ALL_MODELS = ["old", "evolved"]

    @pytest.mark.parametrize("model", ALL_MODELS)
    @pytest.mark.parametrize(
        "strategy",
        [
            "improved-tcb-teardown",
            "improved-inorder-overlap",
            "tcb-creation+resync-desync",
            "tcb-teardown+tcb-reversal",
        ],
    )
    def test_table4_strategies_evade_both_models(self, strategy, model):
        assert_evades(strategy, model)

    @pytest.mark.parametrize(
        "strategy",
        ["improved-tcb-teardown", "tcb-creation+resync-desync",
         "tcb-teardown+tcb-reversal"],
    )
    def test_table4_strategies_survive_nb3_resync(self, strategy):
        assert_evades(
            strategy, "evolved",
            config_tweaks={
                "resync_on_rst_probability": 1.0,
                "resync_on_rst_handshake_probability": 1.0,
            },
        )

    def test_combined_strategies_beat_coexisting_models(self):
        """§7.1's point: one path, devices of both generations, one
        strategy must defeat all of them."""
        for strategy in ("tcb-creation+resync-desync", "tcb-teardown+tcb-reversal"):
            config_old = old_config()
            config_old.miss_probability = 0.0
            world = mini_topology(seed=5)  # evolved device at hop 8
            from repro.gfw import GFWDevice

            second = GFWDevice(
                "gfw-old", hop=8, config=config_old, clock=world.clock,
                rng=random.Random(99), cluster=world.gfw.cluster,
            )
            world.path.add_element(second)
            intang = INTANG(
                host=world.client, tcp_host=world.client_tcp,
                clock=world.clock, network=world.network,
                fixed_strategy=strategy, rng=random.Random(3),
            )
            exchange = fetch(world)
            assert len(world.gfw.detections) == 0
            assert len(second.detections) == 0
            assert exchange.got_response


class TestBenignTrafficUnharmed:
    """w/o-keyword column of Table 1: strategies must not break normal
    browsing on clean paths."""

    @pytest.mark.parametrize(
        "strategy",
        ["tcb-creation-syn/ttl", "inorder-overlap/ttl", "tcb-teardown-rst/ttl",
         "resync-desync", "tcb-reversal", "improved-tcb-teardown",
         "improved-inorder-overlap", "tcb-creation+resync-desync",
         "tcb-teardown+tcb-reversal", "ooo-tcp-segments", "ooo-ip-fragments"],
    )
    def test_benign_fetch_succeeds(self, strategy):
        world, _, _ = run_strategy(strategy, "evolved", seed=4)
        world2 = mini_topology(seed=4)
        intang = INTANG(
            host=world2.client, tcp_host=world2.client_tcp, clock=world2.clock,
            network=world2.network, fixed_strategy=strategy,
            rng=random.Random(11),
        )
        exchange = fetch(world2, path="/benign.html")
        assert exchange.got_response
        assert detections(world2) == 0


class TestRegistry:
    def test_all_registered_strategies_instantiate(self):
        world = mini_topology(with_gfw=False)
        for strategy_id in STRATEGY_REGISTRY:
            intang = INTANG(
                host=world.client, tcp_host=world.client_tcp,
                clock=world.clock, network=world.network,
                fixed_strategy=strategy_id,
            )
            intang.detach()

    def test_unknown_strategy_raises(self):
        from repro.strategies.registry import make_strategy_factory

        with pytest.raises(KeyError):
            make_strategy_factory("no-such-strategy")

    def test_table_listings_reference_registry(self):
        from repro.strategies.registry import TABLE1_ROWS, TABLE4_STRATEGIES

        for _, strategy_id, _ in TABLE1_ROWS:
            assert strategy_id in STRATEGY_REGISTRY
        for _, strategy_id in TABLE4_STRATEGIES:
            assert strategy_id in STRATEGY_REGISTRY
