"""ReceiveBuffer tests: in-order first-wins semantics, out-of-order
overlap policies, windows, and wraparound."""

import pytest
from hypothesis import given, strategies as st

from repro.netstack.fragment import OverlapPolicy
from repro.tcp.reassembly import ReceiveBuffer


class TestInOrder:
    def test_simple_delivery(self):
        buffer = ReceiveBuffer(rcv_nxt=1000)
        assert buffer.add(1000, b"hello") == b"hello"
        assert buffer.rcv_nxt == 1005

    def test_consecutive_segments(self):
        buffer = ReceiveBuffer(rcv_nxt=0)
        assert buffer.add(0, b"ab") == b"ab"
        assert buffer.add(2, b"cd") == b"cd"
        assert buffer.delivered_bytes == 4

    def test_duplicate_ignored(self):
        buffer = ReceiveBuffer(rcv_nxt=0)
        buffer.add(0, b"abcd")
        assert buffer.add(0, b"XXXX") == b""
        assert buffer.rcv_nxt == 4

    def test_retransmission_with_overlap_trimmed(self):
        """First-wins at the consumed boundary: the in-order overlap
        evasion strategy's foundation."""
        buffer = ReceiveBuffer(rcv_nxt=0)
        buffer.add(0, b"abcd")
        delivered = buffer.add(2, b"CDEF")
        assert delivered == b"EF"

    def test_partially_old_data(self):
        buffer = ReceiveBuffer(rcv_nxt=10)
        assert buffer.add(8, b"xxYZ") == b"YZ"

    def test_empty_data_is_noop(self):
        buffer = ReceiveBuffer(rcv_nxt=0)
        assert buffer.add(0, b"") == b""


class TestOutOfOrder:
    def test_gap_then_fill(self):
        buffer = ReceiveBuffer(rcv_nxt=0)
        assert buffer.add(4, b"efgh") == b""
        assert buffer.has_gap()
        assert buffer.add(0, b"abcd") == b"abcdefgh"
        assert not buffer.has_gap()

    def test_pending_bytes_count(self):
        buffer = ReceiveBuffer(rcv_nxt=0)
        buffer.add(10, b"abc")
        assert buffer.pending_bytes() == 3

    def test_first_wins_ooo_overlap(self):
        """Endpoint stacks keep the first queued version (real data)."""
        buffer = ReceiveBuffer(rcv_nxt=0, policy=OverlapPolicy.FIRST_WINS)
        buffer.add(4, b"REAL")
        buffer.add(4, b"junk")
        assert buffer.add(0, b"head") == b"headREAL"

    def test_last_wins_ooo_overlap(self):
        """The old GFW keeps the latter version (junk) — §3.2."""
        buffer = ReceiveBuffer(rcv_nxt=0, policy=OverlapPolicy.LAST_WINS)
        buffer.add(4, b"REAL")
        buffer.add(4, b"junk")
        assert buffer.add(0, b"head") == b"headjunk"

    def test_partial_ooo_overlap_byte_level(self):
        buffer = ReceiveBuffer(rcv_nxt=0, policy=OverlapPolicy.FIRST_WINS)
        buffer.add(2, b"ccdd")
        buffer.add(4, b"XXee")
        assert buffer.add(0, b"ab") == b"abccddee"


class TestWindow:
    def test_data_beyond_window_dropped(self):
        buffer = ReceiveBuffer(rcv_nxt=0, window=100)
        assert buffer.add(150, b"far") == b""
        assert buffer.pending_bytes() == 0

    def test_data_straddling_window_edge_trimmed(self):
        buffer = ReceiveBuffer(rcv_nxt=0, window=6)
        buffer.add(4, b"abcd")  # only offsets 4,5 fit
        assert buffer.pending_bytes() == 2

    def test_sequence_wraparound(self):
        start = 0xFFFFFFFE
        buffer = ReceiveBuffer(rcv_nxt=start)
        assert buffer.add(start, b"abcd") == b"abcd"
        assert buffer.rcv_nxt == 2

    def test_old_data_across_wrap_ignored(self):
        buffer = ReceiveBuffer(rcv_nxt=4)
        assert buffer.add(0xFFFFFFF0, b"old") == b""


class TestAdvance:
    def test_advance_jumps_rcv_nxt_and_keeps_pending(self):
        buffer = ReceiveBuffer(rcv_nxt=0)
        buffer.add(5, b"zz")
        buffer.advance(5)
        assert buffer.rcv_nxt == 5
        # The queued bytes now sit exactly at rcv_nxt; the next touch
        # drains them (first-wins keeps the originally queued values).
        assert buffer.add(5, b"XX") == b"zz"
        assert buffer.rcv_nxt == 7

    def test_advance_discards_bytes_before_new_anchor(self):
        buffer = ReceiveBuffer(rcv_nxt=0)
        buffer.add(3, b"abc")  # offsets 3,4,5
        buffer.advance(5)
        assert buffer.pending_bytes() == 1  # only offset 5 survives

    def test_advance_backwards_rejected(self):
        buffer = ReceiveBuffer(rcv_nxt=10)
        with pytest.raises(ValueError):
            buffer.advance(5)


@given(
    st.lists(
        st.tuples(st.integers(0, 40), st.binary(min_size=1, max_size=12)),
        min_size=1,
        max_size=12,
    )
)
def test_property_stream_prefix_consistency(chunks):
    """Property: whatever the arrival order/overlap, delivered bytes form
    a contiguous stream and rcv_nxt advances by exactly that length."""
    buffer = ReceiveBuffer(rcv_nxt=100)
    total = bytearray()
    for offset, data in chunks:
        total.extend(buffer.add(100 + offset, data))
    assert buffer.rcv_nxt == (100 + len(total)) & 0xFFFFFFFF


@given(st.data())
def test_property_first_vs_last_wins_same_coverage(data):
    """Property: the two policies deliver identical *byte positions*
    (coverage), differing only in the values kept on conflicts."""
    chunks = data.draw(
        st.lists(
            st.tuples(st.integers(0, 30), st.binary(min_size=1, max_size=8)),
            min_size=1,
            max_size=10,
        )
    )
    first = ReceiveBuffer(rcv_nxt=0, policy=OverlapPolicy.FIRST_WINS)
    last = ReceiveBuffer(rcv_nxt=0, policy=OverlapPolicy.LAST_WINS)
    first_total = sum(len(first.add(o, d)) for o, d in chunks)
    last_total = sum(len(last.add(o, d)) for o, d in chunks)
    assert first_total == last_total
    assert first.rcv_nxt == last.rcv_nxt
