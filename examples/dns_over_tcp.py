#!/usr/bin/env python3
"""DNS censorship and INTANG's forwarder (§2.1, §6, §7.2).

Three resolutions of a censored domain (www.dropbox.com):

1. plain UDP — the GFW's poisoner injects a forged answer that beats the
   real one to the client;
2. DNS-over-TCP without evasion — the GFW detects the query name in the
   TCP stream and resets the connection;
3. through INTANG — the UDP query is transparently converted to TCP,
   carried over an evaded connection, and the honest answer comes back.

Run:  python examples/dns_over_tcp.py
"""

import random

from repro.apps.dns import DNSTcpResolver, DNSUdpClient, DNSUdpResolver
from repro.apps.udp import UDPHost
from repro.core.intang import INTANG
from repro.gfw.dns_poisoner import DNSPoisoner, POISONED_ANSWER_IP

import sys
import os
sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "tests"))
from helpers import SERVER_IP, mini_topology  # noqa: E402

CENSORED = "www.dropbox.com"
REAL_ANSWER = "104.16.100.29"


def build_dns_world(seed: int):
    world = mini_topology(with_gfw=True, serve_http=False, seed=seed)
    world.gfw.dns_poisoner = DNSPoisoner()
    client_udp = UDPHost(world.client)
    server_udp = UDPHost(world.server)
    zone = {CENSORED: REAL_ANSWER}
    DNSUdpResolver(server_udp, zone)
    DNSTcpResolver(world.server_tcp, zone)
    return world, client_udp


def resolve(world, client_udp, label):
    client = DNSUdpClient(client_udp, SERVER_IP, world.clock)
    answers = []
    client.resolve(CENSORED, lambda message: answers.extend(message.answers))
    world.run(8.0)
    answer = answers[0] if answers else None
    if answer == REAL_ANSWER:
        verdict = f"honest answer {answer}"
    elif answer == POISONED_ANSWER_IP:
        verdict = f"POISONED -> {answer}"
    else:
        verdict = "no answer (connection reset)"
    print(f"  {label:<44} {verdict}")
    return answer


def main() -> None:
    print(f"Resolving {CENSORED} (real address {REAL_ANSWER}):\n")

    world, client_udp = build_dns_world(seed=1)
    resolve(world, client_udp, "1. plain UDP query")
    print(f"     poisonings injected by the GFW: "
          f"{len(world.gfw.dns_poisoner.poisonings)}")

    world, client_udp = build_dns_world(seed=2)
    INTANG(
        host=world.client, tcp_host=world.client_tcp, clock=world.clock,
        network=world.network, fixed_strategy="none",
        dns_resolver_ip=SERVER_IP, rng=random.Random(1),
    )
    resolve(world, client_udp, "2. DNS over TCP, no evasion")
    print(f"     GFW detections: {[str(d) for _, d in world.gfw.detections]}")

    world, client_udp = build_dns_world(seed=3)
    intang = INTANG(
        host=world.client, tcp_host=world.client_tcp, clock=world.clock,
        network=world.network, fixed_strategy="improved-tcb-teardown",
        dns_resolver_ip=SERVER_IP, rng=random.Random(1),
    )
    answer = resolve(world, client_udp, "3. INTANG: UDP->TCP + improved teardown")
    print(f"     queries forwarded over TCP: "
          f"{intang.dns_forwarder.queries_forwarded}")
    assert answer == REAL_ANSWER


if __name__ == "__main__":
    main()
