#!/usr/bin/env python3
"""The strategy × GFW-generation matrix, live.

Runs every registered evasion strategy against clean-room instances of
both GFW models (the Khattak-era "old" model and the §4 "evolved" one)
and prints who wins — the qualitative heart of the paper in one table:
old strategies die against the evolved model, the new §5 strategies die
against the old model, and only the §7.1 combinations beat both.

Run:  python examples/strategy_matrix.py
"""

import random

from repro.apps.http import HTTPClient
from repro.core.intang import INTANG
from repro.gfw import evolved_config, old_config
from repro.experiments.tables import render_table

import sys
import os
sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "tests"))
from helpers import SERVER_IP, fetch, mini_topology  # noqa: E402

MATRIX_STRATEGIES = [
    "none",
    "west-chamber",
    "tcb-creation-syn/ttl",
    "ooo-ip-fragments",
    "ooo-tcp-segments",
    "inorder-overlap/ttl",
    "tcb-teardown-rst/ttl",
    "tcb-teardown-fin/ttl",
    "resync-desync",
    "tcb-reversal",
    "improved-tcb-teardown",
    "improved-inorder-overlap",
    "tcb-creation+resync-desync",
    "tcb-teardown+tcb-reversal",
]


def outcome(strategy_id: str, model: str, seed: int = 1) -> str:
    config = evolved_config() if model == "evolved" else old_config()
    world = mini_topology(gfw_config=config, seed=seed)
    INTANG(
        host=world.client, tcp_host=world.client_tcp, clock=world.clock,
        network=world.network, fixed_strategy=strategy_id,
        rng=random.Random(seed + 7),
    )
    exchange = fetch(world)
    if world.gfw.detections:
        return "caught"
    if exchange.got_response:
        return "EVADES"
    return "broken"


def main() -> None:
    rows = []
    for strategy_id in MATRIX_STRATEGIES:
        rows.append(
            [strategy_id, outcome(strategy_id, "old"), outcome(strategy_id, "evolved")]
        )
    print(
        render_table(
            ["Strategy", "old GFW model", "evolved GFW model"],
            rows,
            title="Strategy x GFW-generation matrix (clean-room paths)",
        )
    )
    print(
        "\nReading guide: §3's strategies beat only the old model; §5's "
        "new strategies beat only the evolved one;\nthe §7.1 combinations "
        "(Fig. 3/Fig. 4) and improved variants beat both — which is why "
        "INTANG ships them."
    )


if __name__ == "__main__":
    main()
