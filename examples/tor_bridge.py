#!/usr/bin/env python3
"""Tor active probing and INTANG's cover (§7.3).

From a vantage point whose paths carry Tor-fingerprinting GFW devices,
a bridge connection works briefly — then the passive fingerprint match
triggers an active probe, the probe confirms the bridge, and the
*entire bridge IP* is blocked (not just the Tor port, as earlier work
reported).  From Northern-China vantage points the same connection runs
indefinitely, and with INTANG the fingerprint never reaches the DPI
engine anywhere.

Run:  python examples/tor_bridge.py
"""

from repro.experiments import CLEAN_ROOM, outside_china_catalog, run_tor_trial
from repro.experiments.vantage import CHINA_VANTAGE_POINTS, tor_unfiltered_points

BRIDGE = outside_china_catalog()[0]


def show(result, label):
    print(f"  {label}")
    print(f"    first circuit:  {'up' if result.first_circuit_ok else 'down'}")
    print(f"    active probe:   {'launched' if result.probe_launched else 'none'}")
    print(f"    bridge IP:      {'BLOCKED (all ports)' if result.ip_blocked else 'reachable'}")
    print(f"    reconnect:      {'up' if result.reconnect_ok else 'down'}")


def main() -> None:
    filtered = next(v for v in CHINA_VANTAGE_POINTS if v.tor_filtered)
    northern = tor_unfiltered_points()[0]

    print(f"Hidden bridge at {BRIDGE.ip}:443\n")

    print(f"=== {filtered.name} (Tor-filtering path), bare Tor ===")
    show(run_tor_trial(filtered, BRIDGE, None, CLEAN_ROOM, seed=2),
         "passive fingerprint -> probe -> whole-IP block:")

    print(f"\n=== {northern.name} (Northern China), bare Tor ===")
    show(run_tor_trial(northern, BRIDGE, None, CLEAN_ROOM, seed=2),
         "no Tor-filtering devices on this path (§7.3):")

    print(f"\n=== {filtered.name}, Tor through INTANG ===")
    show(run_tor_trial(filtered, BRIDGE, "improved-tcb-teardown",
                       CLEAN_ROOM, seed=2),
         "the handshake never reaches the DPI engine:")


if __name__ == "__main__":
    main()
