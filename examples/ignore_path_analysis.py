#!/usr/bin/env python3
"""Run the §5.3 ignore-path analysis end to end.

Enumerates the server-side silent-drop paths of the modelled Linux 4.4
stack, probes which candidates the GFW still accepts (→ Table 3),
cross-validates against the older kernels (→ the §5.3 findings), checks
which vehicles survive each provider's middleboxes, and reduces it all
to Table 5's preferred-construction matrix.

Run:  python examples/ignore_path_analysis.py
"""

from repro.analysis import (
    cross_validate_middleboxes,
    cross_validate_stacks,
    derive_table5,
    generate_table3,
)
from repro.experiments.tables import format_table3, format_table5, render_table


def main() -> None:
    rows = generate_table3()
    print(format_table3([row.as_tuple() for row in rows]))

    print("\nCross-validation with other TCP stacks (§5.3):")
    divergences = cross_validate_stacks()
    table = [
        [d.profile, d.probe, d.state, f"{d.reference_verdict} -> {d.this_verdict}"]
        for d in divergences
    ]
    print(render_table(["Stack", "Probe", "State", "Divergence vs 4.4"], table))

    print("\nMiddlebox survival of each candidate (reliably traverses?):")
    survival = cross_validate_middleboxes()
    providers = ["aliyun", "qcloud", "unicom-sjz", "unicom-tj"]
    table = [
        [name] + [("yes" if survival[name][p] else "NO") for p in providers]
        for name in survival
    ]
    print(render_table(["Candidate"] + providers, table))

    print()
    print(format_table5(derive_table5()))
    print(
        "\nTakeaway (§5.3): only the MD5-option vehicle is universally "
        "middlebox-safe; TTL is\ngenerally applicable but needs accurate "
        "hop counts; bad-ACK and old-timestamp work\nfor data packets only."
    )


if __name__ == "__main__":
    main()
