#!/usr/bin/env python3
"""Quickstart: watch the GFW reset a sensitive request, then evade it.

Builds the paper's Fig. 1 threat model — client, multi-hop path, an
evolved-model GFW device on a tap, server — sends an HTTP request whose
URL contains the probe keyword ``ultrasurf``, and shows:

1. without INTANG the connection is reset (Failure 2);
2. the host pair is blacklisted for 90 seconds (even a benign request
   fails);
3. with INTANG running the Fig. 4 combined strategy, the same sensitive
   request sails through.

Run:  python examples/quickstart.py
"""

import random

from repro.apps.http import HTTPClient, HTTPServer
from repro.core.intang import INTANG
from repro.gfw import GFWDevice, evolved_config
from repro.netsim import Host, Network, Path, SimClock
from repro.tcp import TCPHost

CLIENT_IP = "10.0.0.1"
SERVER_IP = "93.184.216.34"
SENSITIVE_PATH = "/?search=ultrasurf"


def build_world(seed: int = 1):
    """Client ── middleboxes ── GFW tap ── server, 14 hops end to end."""
    clock = SimClock()
    network = Network(clock=clock, rng=random.Random(seed))
    client = network.add_host(Host(CLIENT_IP, "client"))
    server = network.add_host(Host(SERVER_IP, "server"))
    path = Path(CLIENT_IP, SERVER_IP, hop_count=14)
    network.add_path(path)

    config = evolved_config()
    config.miss_probability = 0.0  # deterministic demo
    gfw = GFWDevice("gfw", hop=8, config=config, clock=clock,
                    rng=random.Random(seed + 1))
    gfw.cluster.miss_probability = 0.0
    path.add_element(gfw)

    client_tcp = TCPHost(client, clock, rng=random.Random(seed + 2))
    server_tcp = TCPHost(server, clock, rng=random.Random(seed + 3))
    HTTPServer(server_tcp)
    return clock, network, client, client_tcp, server_tcp, gfw


def attempt(clock, client_tcp, path, label):
    http = HTTPClient(client_tcp)
    _connection, exchange = http.get(SERVER_IP, host="example.com", path=path)
    clock.run_for(8.0)
    verdict = "SUCCESS" if exchange.got_response else "BLOCKED"
    rsts = len(exchange.rsts_received)
    print(f"  {label:<46} -> {verdict}   (resets seen: {rsts})")
    return exchange


def main() -> None:
    print("=== 1. Bare client: the GFW detects and resets ===")
    clock, network, client, client_tcp, server_tcp, gfw = build_world()
    attempt(clock, client_tcp, SENSITIVE_PATH, "GET /?search=ultrasurf (no evasion)")
    print(f"  GFW detections: {[str(d) for _, d in gfw.detections]}")
    print(f"  forged resets injected: {gfw.resets_injected}")

    print("\n=== 2. The 90-second blacklist: even benign requests fail ===")
    client_tcp.purge_closed()
    attempt(clock, client_tcp, "/benign.html", "GET /benign.html (pair blacklisted)")
    remaining = gfw.blacklist.remaining(CLIENT_IP, SERVER_IP, clock.now)
    print(f"  blacklist remaining: {remaining:.1f}s")

    print("\n=== 3. Same request through INTANG (Fig. 4 strategy) ===")
    clock, network, client, client_tcp, server_tcp, gfw = build_world(seed=2)
    INTANG(
        host=client, tcp_host=client_tcp, clock=clock, network=network,
        fixed_strategy="tcb-teardown+tcb-reversal", rng=random.Random(9),
    )
    exchange = attempt(clock, client_tcp, SENSITIVE_PATH,
                       "GET /?search=ultrasurf (TCB Teardown + TCB Reversal)")
    print(f"  GFW detections: {len(gfw.detections)} (it saw the whole exchange!)")
    assert exchange.got_response, "evasion should have worked"
    print("\nThe censor's TCP state is not the server's. QED.")


if __name__ == "__main__":
    main()
