#!/usr/bin/env python3
"""Figs. 3 and 4 as live packet ladders.

Reproduces the paper's combined-strategy sequence diagrams by tracing a
real run of each: every send, middlebox/tap observation, TTL death, and
delivery is shown with timestamps, so you can watch the insertion
packets reach the GFW's hop and die before the server.

Run:  python examples/packet_ladders.py
"""

import random

from repro.core.intang import INTANG

import sys
import os
sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "tests"))
from helpers import fetch, mini_topology  # noqa: E402


def ladder(strategy_id: str, title: str) -> None:
    world = mini_topology(seed=8, trace=True)
    INTANG(
        host=world.client, tcp_host=world.client_tcp, clock=world.clock,
        network=world.network, fixed_strategy=strategy_id,
        rng=random.Random(4),
    )
    exchange = fetch(world)
    print(f"=== {title} ===")
    print(f"strategy: {strategy_id}")
    print(f"result:   {'evaded - response received' if exchange.got_response else 'failed'}"
          f", GFW detections: {len(world.gfw.detections)}\n")
    interesting = [
        event for event in world.trace.events
        if event.action in ("send", "observe", "deliver", "drop")
        and ("gfw" in event.location or event.action != "observe")
    ]
    for event in interesting[:60]:
        print(event.format())
    print()


def main() -> None:
    ladder(
        "tcb-creation+resync-desync",
        "Fig. 3 — TCB Creation + Resync/Desync",
    )
    ladder(
        "tcb-teardown+tcb-reversal",
        "Fig. 4 — TCB Teardown + TCB Reversal",
    )


if __name__ == "__main__":
    main()
