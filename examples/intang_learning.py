#!/usr/bin/env python3
"""INTANG's measurement-driven learning loop (§6, Table 4's last row).

Visits a mix of servers repeatedly — including one running a pre-RFC2385
kernel that defeats the MD5-based strategies — and shows the selector
exploring, rotating away from failures, and pinning the per-server
optimum.  This is the mechanism behind the "INTANG Performance" row
beating every fixed strategy.

Run:  python examples/intang_learning.py
"""

from repro.experiments import CLEAN_ROOM, outside_china_catalog
from repro.experiments.runner import make_persistent_selector, run_http_trial
from repro.experiments.vantage import vantage_by_name


def main() -> None:
    vantage = vantage_by_name("qcloud-guangzhou")
    catalog = outside_china_catalog()
    modern = next(s for s in catalog if s.server_profile == "linux-4.4")
    legacy = next(s for s in catalog if s.server_profile == "linux-2.4.37")
    selector = make_persistent_selector()

    print(f"Visiting two servers five times each from {vantage.name}:")
    print(f"  {modern.name}: {modern.server_profile}")
    print(f"  {legacy.name}: {legacy.server_profile} "
          f"(pre-RFC2385: MD5-optioned forgeries reset it!)\n")

    for visit in range(5):
        for website in (modern, legacy):
            record = run_http_trial(
                vantage, website, None, CLEAN_ROOM,
                seed=1000 + visit, selector=selector,
            )
            print(f"  visit {visit + 1}  {website.server_profile:13s} "
                  f"{record.strategy_id:28s} -> {record.outcome.value}"
                  + (f"  [{record.diagnosis}]" if record.diagnosis else ""))
        print()

    for website in (modern, legacy):
        record = selector.record_for(website.ip)
        print(f"converged strategy for {website.server_profile}: {record.pinned}")


if __name__ == "__main__":
    main()
