#!/usr/bin/env python3
"""Parallel sweep quickstart: one Table-1 row, serial vs. fanned out.

Runs the improved TCB teardown strategy across the in-China vantage
points and a site catalog twice — once inline (``workers=1``) and once
over a process pool — times both, and checks the rates are identical.
Trial seeds are fixed before fan-out, so the worker count can only
change the wall-clock, never the table.

Run:  python examples/parallel_sweep.py
      REPRO_SWEEP_SITES=77 python examples/parallel_sweep.py   # bigger
"""

import os
import time

from repro.experiments import (
    CHINA_VANTAGE_POINTS,
    DEFAULT_CALIBRATION,
    configured_workers,
    outside_china_catalog,
    run_strategy_cell,
)

STRATEGY = "improved-tcb-teardown"


def timed_cell(workers: int):
    start = time.perf_counter()
    triple = run_strategy_cell(
        STRATEGY,
        CHINA_VANTAGE_POINTS,
        outside_china_catalog(count=int(os.environ.get("REPRO_SWEEP_SITES", 20))),
        DEFAULT_CALIBRATION,
        repeats=2,
        seed=2017,
        workers=workers,
    )
    return triple, time.perf_counter() - start


def main() -> None:
    pool_size = configured_workers(None) if configured_workers(None) > 1 else (
        os.cpu_count() or 1
    )
    print(f"strategy: {STRATEGY}")

    serial, serial_time = timed_cell(workers=1)
    s, f1, f2 = serial.as_percentages()
    print(f"serial   (workers=1): {serial_time:6.2f}s   "
          f"success={s:.1f}% F1={f1:.1f}% F2={f2:.1f}%")

    fanned, fanned_time = timed_cell(workers=pool_size)
    s, f1, f2 = fanned.as_percentages()
    print(f"parallel (workers={pool_size}): {fanned_time:6.2f}s   "
          f"success={s:.1f}% F1={f1:.1f}% F2={f2:.1f}%")

    assert fanned == serial, "worker count changed the results!"
    print(f"identical rates; speedup {serial_time / fanned_time:.2f}x "
          f"on {os.cpu_count()} core(s)")


if __name__ == "__main__":
    main()
