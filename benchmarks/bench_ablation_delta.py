"""Ablation — the TTL margin δ (§7.1 picks δ = 2).

Sweeps δ for the TTL-dependent TCB Creation + Resync/Desync strategy,
inside and outside China.  Expected shape: tiny δ risks hitting the
server under route drift (Failure 1); large δ undershoots the GFW
(Failure 2); δ = 2 is near the sweet spot inside China, while outside
China (GFW within a few hops of the server) no δ is comfortable — the
paper's stated reason the TTL vehicle struggles there."""

from conftest import bench_sites, report

from repro.experiments import (
    CHINA_VANTAGE_POINTS,
    DEFAULT_CALIBRATION,
    OUTSIDE_VANTAGE_POINTS,
    Outcome,
    inside_china_catalog,
    outside_china_catalog,
)
from repro.experiments.runner import RateTriple, run_http_outcomes
from repro.experiments.tables import render_table

STRATEGY = "tcb-creation+resync-desync"


def _sweep(vantages, sites, deltas, seed=13):
    rows = []
    for delta in deltas:
        calibration = DEFAULT_CALIBRATION.variant(hop_delta=delta)
        tasks = [
            (vantage, website, STRATEGY, calibration,
             seed + v_index * 1009 + w_index * 17 + delta * 131, True)
            for v_index, vantage in enumerate(vantages)
            for w_index, website in enumerate(sites)
        ]
        triple = RateTriple.from_outcomes(run_http_outcomes(tasks))
        s, f1, f2 = triple.as_percentages()
        rows.append([f"delta={delta}", f"{s:.1f}%", f"{f1:.1f}%", f"{f2:.1f}%"])
    return rows


def delta_sweep(sites_count: int) -> str:
    sites = outside_china_catalog(count=sites_count)
    cn_sites = inside_china_catalog(count=max(8, sites_count // 2))
    inside = _sweep(CHINA_VANTAGE_POINTS[:6], sites, deltas=(0, 1, 2, 4, 6))
    outside = _sweep(OUTSIDE_VANTAGE_POINTS, cn_sites, deltas=(0, 1, 2, 4, 6))
    text = render_table(
        ["delta", "Success", "Failure 1", "Failure 2"], inside,
        title=f"delta sweep, inside China ({STRATEGY})",
    )
    text += "\n\n" + render_table(
        ["delta", "Success", "Failure 1", "Failure 2"], outside,
        title="delta sweep, outside China (GFW near the server)",
    )
    return text


def test_ablation_delta(benchmark):
    text = benchmark.pedantic(
        delta_sweep, args=(bench_sites(10, 30),), rounds=1, iterations=1
    )
    report("ablation_delta", text)
    assert "delta=2" in text
