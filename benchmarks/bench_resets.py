"""§2.1 — forged-reset signatures and the blocking regime (ablation).

Direct probes of the reset injectors: type-1's single random-TTL/window
RST vs type-2's three RST/ACKs at X, X+1460, X+4380 with cyclic
TTL/window, plus the 90-second blacklist with forged SYN/ACKs that only
type-2 devices enforce."""

import random
import statistics

from conftest import report

from repro.gfw import evolved_config
from repro.gfw.resets import ResetInjector

import sys, os
sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "tests"))
from helpers import CLIENT_IP, SERVER_IP, fetch, mini_topology  # noqa: E402


def reset_signatures() -> str:
    lines = ["Reset signatures (§2.1):"]
    for reset_type in (1, 2):
        injector = ResetInjector(reset_type, random.Random(1), "probe")
        ttls, windows, seq_offsets, flags = [], [], set(), set()
        for _ in range(40):
            packets = injector.forged_resets(
                spoof_src=(SERVER_IP, 80), toward=(CLIENT_IP, 4000),
                seq_base=1000,
            )
            for packet in packets:
                ttls.append(packet.ttl)
                windows.append(packet.tcp.window)
                seq_offsets.add((packet.tcp.seq - 1000) & 0xFFFFFFFF)
                flags.add(packet.tcp.flags)
        monotone_runs = sum(
            1 for a, b in zip(ttls, ttls[1:]) if b == a + 1
        )
        lines.append(
            f"  type-{reset_type}: {len(packets)} reset(s)/volley, "
            f"seq offsets {sorted(seq_offsets)}, "
            f"ttl spread {max(ttls) - min(ttls)}, "
            f"ttl {'cyclic' if monotone_runs > len(ttls) * 0.8 else 'random'}, "
            f"window stdev {statistics.pstdev(windows):.0f}"
        )

    # Blocking regime: type-2 forges SYN/ACKs during the 90 s window.
    world = mini_topology(gfw_config=evolved_config(reset_type=2), seed=5)
    fetch(world)
    world.client_tcp.purge_closed()
    world.client_tcp.connect(SERVER_IP, 80)
    world.run(2.0)
    lines.append(
        f"  type-2 blacklist: forged SYN/ACKs for SYNs during 90 s window: "
        f"{world.gfw.forged_synacks_injected}"
    )
    world1 = mini_topology(gfw_config=evolved_config(reset_type=1), seed=5)
    fetch(world1)
    lines.append(
        f"  type-1 device: blacklist entries after detection: "
        f"{len(world1.gfw.blacklist)} (type-1 has no blocking period)"
    )
    return "\n".join(lines)


def test_reset_signatures(benchmark):
    text = benchmark.pedantic(reset_signatures, rounds=1, iterations=1)
    report("resets", text)
    assert "[0, 1460, 4380]" in text
    assert "ttl cyclic" in text
    assert "ttl random" in text
    assert "(type-1 has no blocking period)" in text
