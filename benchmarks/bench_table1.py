"""Table 1 — existing evasion strategies against today's GFW.

Regenerates all fifteen strategy/discrepancy rows, with and without the
sensitive keyword, across the 11 in-China vantage points and the
synthetic website catalog.  Paper values are printed beside ours; the
shape to check (§3.4): TCB creation ~89 % Failure 2, out-of-order IP
fragments dominated by Failure 1 (Aliyun discards) and Failure 2
(middlebox reassembly), in-order prefill > 80 % success, RST teardown
~70 % success with ~25 % Failure 2 (NB3), FIN teardown dead.
"""

import time

from conftest import bench_repeats, bench_sites, record_metric, report

from repro.experiments import (
    CHINA_VANTAGE_POINTS,
    DEFAULT_CALIBRATION,
    outside_china_catalog,
    run_strategy_cell,
)
from repro.experiments.tables import format_table1
from repro.strategies.registry import TABLE1_ROWS

#: (success, failure1, failure2) percentages from the paper's Table 1.
PAPER_TABLE1 = {
    "none": (2.8, 0.4, 96.8),
    "tcb-creation-syn/ttl": (6.9, 4.2, 88.9),
    "tcb-creation-syn/bad-checksum": (6.2, 5.1, 88.7),
    "ooo-ip-fragments": (1.6, 54.8, 43.6),
    "ooo-tcp-segments": (30.8, 6.5, 62.6),
    "inorder-overlap/ttl": (90.6, 5.7, 3.7),
    "inorder-overlap/bad-ack": (83.1, 7.5, 9.5),
    "inorder-overlap/bad-checksum": (87.2, 1.9, 10.8),
    "inorder-overlap/no-flag": (48.3, 3.3, 48.4),
    "tcb-teardown-rst/ttl": (73.2, 3.2, 23.6),
    "tcb-teardown-rst/bad-checksum": (63.1, 7.6, 29.3),
    "tcb-teardown-rstack/ttl": (73.1, 3.2, 23.7),
    "tcb-teardown-rstack/bad-checksum": (68.9, 1.9, 29.2),
    "tcb-teardown-fin/ttl": (11.1, 1.0, 87.9),
    "tcb-teardown-fin/bad-checksum": (8.4, 0.8, 90.7),
}


def regenerate_table1(sites_count: int, repeats: int) -> str:
    sites = outside_china_catalog(count=sites_count)
    results = []
    comparison_lines = []
    for label, strategy_id, discrepancy in TABLE1_ROWS:
        with_kw = run_strategy_cell(
            strategy_id, CHINA_VANTAGE_POINTS, sites, DEFAULT_CALIBRATION,
            repeats=repeats, seed=7, keyword=True,
        )
        without_kw = run_strategy_cell(
            strategy_id, CHINA_VANTAGE_POINTS, sites, DEFAULT_CALIBRATION,
            repeats=repeats, seed=8, keyword=False,
        )
        results.append((label, discrepancy, with_kw, without_kw))
        ours = with_kw.as_percentages()
        paper = PAPER_TABLE1[strategy_id]
        comparison_lines.append(
            f"  {label + ' [' + discrepancy + ']':<46} "
            f"ours {ours[0]:5.1f}/{ours[1]:5.1f}/{ours[2]:5.1f}   "
            f"paper {paper[0]:5.1f}/{paper[1]:5.1f}/{paper[2]:5.1f}"
        )
    text = format_table1(results)
    text += "\n\nOurs vs paper (Success/Failure1/Failure2, with keyword):\n"
    text += "\n".join(comparison_lines)
    return text


def _timed_slice(seed: int) -> float:
    """One strategy cell's trials/s (fresh seed, so no cache replay)."""
    sites = outside_china_catalog(count=6)
    start = time.perf_counter()
    table = run_strategy_cell(
        "tcb-teardown-rst/ttl", CHINA_VANTAGE_POINTS, sites,
        DEFAULT_CALIBRATION, repeats=3, seed=seed, keyword=True,
    )
    elapsed = time.perf_counter() - start
    return table.trials / elapsed if elapsed > 0 else 0.0


def measure_trace_overhead() -> None:
    """Record the span tracer's knob-on cost beside the knob-off rate.

    Runs the same cell on fresh seeds (no cache replay) in alternating
    off/on pairs and keeps the best rate of each mode — single ~0.2 s
    slices are noise-dominated on a loaded runner — so BENCH_perf.json
    carries the measured overhead of the observability layer, not a
    guess."""
    from repro.telemetry import enable_tracer, get_tracer

    _timed_slice(seed=9000)  # warmup: site catalog + scenario pool
    rate_off = 0.0
    rate_on = 0.0
    seed = 9001
    try:
        for _ in range(3):
            enable_tracer(False)
            rate_off = max(rate_off, _timed_slice(seed=seed))
            seed += 1
            enable_tracer(True)
            rate_on = max(rate_on, _timed_slice(seed=seed))
            seed += 1
            get_tracer().clear()
    finally:
        enable_tracer(False)
    record_metric("trials_per_second_trace_on", round(rate_on, 2))
    if rate_off > 0:
        record_metric(
            "trace_overhead_percent",
            round(100.0 * (rate_off - rate_on) / rate_off, 2),
        )


def test_table1(benchmark):
    sites_count = bench_sites()
    repeats = bench_repeats()
    text = benchmark.pedantic(
        regenerate_table1, args=(sites_count, repeats), rounds=1, iterations=1
    )
    report("table1", text)
    measure_trace_overhead()
    assert "TCB teardown with FIN" in text
