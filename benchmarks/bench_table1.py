"""Table 1 — existing evasion strategies against today's GFW.

Regenerates all fifteen strategy/discrepancy rows, with and without the
sensitive keyword, across the 11 in-China vantage points and the
synthetic website catalog.  Paper values are printed beside ours; the
shape to check (§3.4): TCB creation ~89 % Failure 2, out-of-order IP
fragments dominated by Failure 1 (Aliyun discards) and Failure 2
(middlebox reassembly), in-order prefill > 80 % success, RST teardown
~70 % success with ~25 % Failure 2 (NB3), FIN teardown dead.
"""

import time

from conftest import bench_repeats, bench_sites, record_metric, report

from repro.experiments import (
    CHINA_VANTAGE_POINTS,
    DEFAULT_CALIBRATION,
    outside_china_catalog,
    run_strategy_cell,
)
from repro.experiments.tables import format_table1
from repro.strategies.registry import TABLE1_ROWS

#: (success, failure1, failure2) percentages from the paper's Table 1.
PAPER_TABLE1 = {
    "none": (2.8, 0.4, 96.8),
    "tcb-creation-syn/ttl": (6.9, 4.2, 88.9),
    "tcb-creation-syn/bad-checksum": (6.2, 5.1, 88.7),
    "ooo-ip-fragments": (1.6, 54.8, 43.6),
    "ooo-tcp-segments": (30.8, 6.5, 62.6),
    "inorder-overlap/ttl": (90.6, 5.7, 3.7),
    "inorder-overlap/bad-ack": (83.1, 7.5, 9.5),
    "inorder-overlap/bad-checksum": (87.2, 1.9, 10.8),
    "inorder-overlap/no-flag": (48.3, 3.3, 48.4),
    "tcb-teardown-rst/ttl": (73.2, 3.2, 23.6),
    "tcb-teardown-rst/bad-checksum": (63.1, 7.6, 29.3),
    "tcb-teardown-rstack/ttl": (73.1, 3.2, 23.7),
    "tcb-teardown-rstack/bad-checksum": (68.9, 1.9, 29.2),
    "tcb-teardown-fin/ttl": (11.1, 1.0, 87.9),
    "tcb-teardown-fin/bad-checksum": (8.4, 0.8, 90.7),
}


def regenerate_table1(sites_count: int, repeats: int) -> str:
    sites = outside_china_catalog(count=sites_count)
    results = []
    comparison_lines = []
    for label, strategy_id, discrepancy in TABLE1_ROWS:
        with_kw = run_strategy_cell(
            strategy_id, CHINA_VANTAGE_POINTS, sites, DEFAULT_CALIBRATION,
            repeats=repeats, seed=7, keyword=True,
        )
        without_kw = run_strategy_cell(
            strategy_id, CHINA_VANTAGE_POINTS, sites, DEFAULT_CALIBRATION,
            repeats=repeats, seed=8, keyword=False,
        )
        results.append((label, discrepancy, with_kw, without_kw))
        ours = with_kw.as_percentages()
        paper = PAPER_TABLE1[strategy_id]
        comparison_lines.append(
            f"  {label + ' [' + discrepancy + ']':<46} "
            f"ours {ours[0]:5.1f}/{ours[1]:5.1f}/{ours[2]:5.1f}   "
            f"paper {paper[0]:5.1f}/{paper[1]:5.1f}/{paper[2]:5.1f}"
        )
    text = format_table1(results)
    text += "\n\nOurs vs paper (Success/Failure1/Failure2, with keyword):\n"
    text += "\n".join(comparison_lines)
    return text


def _timed_slice(seed: int) -> float:
    """One strategy cell's trials/s (fresh seed, so no cache replay)."""
    sites = outside_china_catalog(count=6)
    start = time.perf_counter()
    table = run_strategy_cell(
        "tcb-teardown-rst/ttl", CHINA_VANTAGE_POINTS, sites,
        DEFAULT_CALIBRATION, repeats=3, seed=seed, keyword=True,
    )
    elapsed = time.perf_counter() - start
    return table.trials / elapsed if elapsed > 0 else 0.0


def measure_trace_overhead() -> None:
    """Record the span tracer's knob-on cost beside the knob-off rate.

    Runs the same cell on fresh seeds (no cache replay) in alternating
    off/on pairs and keeps the best rate of each mode — single ~0.2 s
    slices are noise-dominated on a loaded runner — so BENCH_perf.json
    carries the measured overhead of the observability layer, not a
    guess."""
    from repro.telemetry import enable_tracer, get_tracer

    _timed_slice(seed=9000)  # warmup: site catalog + scenario pool
    rate_off = 0.0
    rate_on = 0.0
    seed = 9001
    try:
        for _ in range(3):
            enable_tracer(False)
            rate_off = max(rate_off, _timed_slice(seed=seed))
            seed += 1
            enable_tracer(True)
            rate_on = max(rate_on, _timed_slice(seed=seed))
            seed += 1
            get_tracer().clear()
    finally:
        enable_tracer(False)
    record_metric("trials_per_second_trace_on", round(rate_on, 2))
    if rate_off > 0:
        record_metric(
            "trace_overhead_percent",
            round(100.0 * (rate_off - rate_on) / rate_off, 2),
        )


def measure_replay_tier() -> None:
    """Record the deterministic-replay tier's rates beside the baseline.

    Three figures, measured on the same cell with the historical-result
    cache disabled (so the replay tier, not the outcome cache, is what
    answers):

    - ``trials_per_second_replay_warm`` — re-running seeds whose ledger
      programs were recorded by a warm pass: every trial replays, the
      sweep's steady state for repeated cells;
    - ``trials_per_second_replay_fresh`` — fresh seeds against the warm
      store: the honest mixed hit/fork/miss rate;
    - ``trials_per_second_replay_off`` — ``REPRO_REPLAY=0``, the full
      simulator on the same fresh-seed workload.

    Best-of-3 per mode, like :func:`measure_trace_overhead` — single
    ~0.1 s slices are noise-dominated on a loaded runner.
    """
    import os

    from repro.experiments import replay
    from repro.telemetry.metrics import get_registry

    if not replay.enabled():
        return  # REPRO_REPLAY=0 runs have nothing honest to record here
    saved = {
        name: os.environ.get(name)
        for name in ("REPRO_RESULT_CACHE", "REPRO_REPLAY")
    }
    registry = get_registry()
    try:
        os.environ["REPRO_RESULT_CACHE"] = "0"
        replay.clear()
        _timed_slice(seed=9100)  # warm pass: records this cell's programs
        rate_warm = 0.0
        warm_hits = 0
        for _ in range(3):
            hits_before = registry.counter_value("replay.hits")
            rate_warm = max(rate_warm, _timed_slice(seed=9100))
            warm_hits = registry.counter_value("replay.hits") - hits_before
        rate_fresh = 0.0
        seed = 9200
        for _ in range(3):
            rate_fresh = max(rate_fresh, _timed_slice(seed=seed))
            seed += 1
        os.environ["REPRO_REPLAY"] = "0"
        rate_off = 0.0
        for _ in range(3):
            rate_off = max(rate_off, _timed_slice(seed=seed))
            seed += 1
    finally:
        for name, value in saved.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value
    record_metric("trials_per_second_replay_warm", round(rate_warm, 2))
    record_metric("trials_per_second_replay_fresh", round(rate_fresh, 2))
    record_metric("trials_per_second_replay_off", round(rate_off, 2))
    record_metric("replay_warm_window_hits", warm_hits)
    snapshot = replay.stats()
    record_metric("replay_programs", snapshot["programs"])
    record_metric("replay_forks", snapshot["forks"])


def test_table1(benchmark):
    sites_count = bench_sites()
    repeats = bench_repeats()
    text = benchmark.pedantic(
        regenerate_table1, args=(sites_count, repeats), rounds=1, iterations=1
    )
    report("table1", text)
    measure_trace_overhead()
    measure_replay_tier()
    assert "TCB teardown with FIN" in text
