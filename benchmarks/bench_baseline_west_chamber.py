"""Baseline — the West Chamber Project against today's GFW (§1, §2.2).

"The West Chamber Project provides a practical tool … but has ceased
development since 2011; unfortunately none of the strategies were found
to be effective during our measurement study."

Measures the 2010 tool's RST+FIN teardown recipe under the default
(evolved-dominated) environment beside one modern combination, and
against a pure-2010 GFW population as a sanity check that the tool
*used to* work."""

from conftest import bench_sites, report

from repro.experiments import (
    CHINA_VANTAGE_POINTS,
    DEFAULT_CALIBRATION,
    outside_china_catalog,
    run_strategy_cell,
)
from repro.experiments.tables import format_rate_line


def west_chamber_baseline(sites_count: int) -> str:
    sites = outside_china_catalog(count=sites_count)
    vantages = CHINA_VANTAGE_POINTS
    lines = ["West Chamber Project vs today's GFW (default environment):"]
    for strategy in ("west-chamber", "tcb-teardown+tcb-reversal"):
        triple = run_strategy_cell(
            strategy, vantages, sites, DEFAULT_CALIBRATION, seed=9,
        )
        lines.append("  " + format_rate_line(strategy, triple))
    ancient = DEFAULT_CALIBRATION.variant(
        old_model_only_fraction=1.0, both_models_fraction=0.0,
    )
    triple_2010 = run_strategy_cell(
        "west-chamber", vantages, sites, ancient, seed=9,
    )
    lines.append("\nAgainst a 2010-era (all old-model) GFW population:")
    lines.append("  " + format_rate_line("west-chamber", triple_2010))
    lines.append(
        "\nThe tool's recipe still beats the censor it was written for; "
        "the censor moved (§4)."
    )
    return "\n".join(lines)


def test_west_chamber_baseline(benchmark):
    text = benchmark.pedantic(
        west_chamber_baseline, args=(bench_sites(10, 30),),
        rounds=1, iterations=1,
    )
    report("baseline_west_chamber", text)
    lines = [line for line in text.splitlines() if "success=" in line]
    modern_env_wc = float(lines[0].split("success=")[1].split("%")[0])
    modern_env_fig4 = float(lines[1].split("success=")[1].split("%")[0])
    ancient_env_wc = float(lines[2].split("success=")[1].split("%")[0])
    assert modern_env_wc < 30.0       # dead today…
    assert ancient_env_wc > 60.0      # …but worked against its own era
    assert modern_env_fig4 > 85.0     # the paper's replacement works now
