"""Fig. 4 — the TCB Teardown + TCB Reversal packet sequence.

Traces one run of the combined strategy and checks the ladder against
the figure: fake SYN/ACK (TTL-limited, reverses the evolved GFW's TCB)
→ real 3-way handshake → RST insertion (kills the old model's TCB) →
HTTP request."""

import random

from conftest import report

from repro.core.intang import INTANG

import sys, os
sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "tests"))
from helpers import SERVER_IP, fetch, mini_topology  # noqa: E402


def fig4_trace() -> str:
    world = mini_topology(seed=9, trace=True)
    INTANG(
        host=world.client, tcp_host=world.client_tcp, clock=world.clock,
        network=world.network, fixed_strategy="tcb-teardown+tcb-reversal",
        rng=random.Random(4),
    )
    exchange = fetch(world)
    sends = [e.summary for e in world.trace.filter(action="send", location="client")]
    order = []
    for summary in sends:
        if "[SA]" in summary:
            order.append("fake SYN/ACK (insertion)")
        elif "[S]" in summary:
            order.append("real SYN")
        elif "[R]" in summary or "[RA]" in summary:
            order.append("RST insertion")
        elif "len=0" in summary:
            order.append("ACK")
        else:
            order.append("HTTP request data")
    flow = world.gfw.flows and next(iter(world.gfw.flows.values()))
    lines = ["Fig. 4 ladder (client sends, in order):"]
    lines.extend(f"  {item}" for item in order[:10])
    lines.append(f"result: response={exchange.got_response} "
                 f"detections={len(world.gfw.detections)}")
    if flow:
        lines.append(
            f"GFW flow believes the client is {flow.believed_client[0]} "
            f"(the real server: {flow.believed_client[0] == SERVER_IP})"
        )
    return "\n".join(lines)


def test_fig4(benchmark):
    text = benchmark.pedantic(fig4_trace, rounds=3, iterations=1)
    report("fig4", text)
    assert "detections=0" in text
    assert text.index("fake SYN/ACK") < text.index("real SYN")
    assert "the real server: True" in text
