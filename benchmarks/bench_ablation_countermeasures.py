"""Ablation — §8's GFW countermeasures, enacted.

"It is possible that GFW may undergo additional improvements to defeat
our evasion strategies … the censor may perform additional checks on
the RST packets (e.g., checksum and MD5 option fields) as a defense.
But that may open up a new evasion attack on the GFW (e.g., when the
server does not check MD5 option fields)."

The GFWConfig already models the validations the real GFW skips; this
bench turns them on one by one and measures which strategies break and
what survives — the arms race, one hardening step at a time."""

import random

from conftest import report

from repro.core.intang import INTANG
from repro.experiments.parallel import map_trials, note_trials
from repro.gfw import evolved_config
from repro.experiments.tables import render_table

import sys, os
sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "tests"))
from helpers import fetch, mini_topology  # noqa: E402

HARDENINGS = (
    ("baseline (no validation)", {}),
    ("+ checksum validation", {"validates_checksum": True}),
    ("+ MD5-option rejection", {"validates_checksum": True,
                                 "drops_unsolicited_md5": True}),
    ("+ ACK-number validation", {"validates_checksum": True,
                                  "drops_unsolicited_md5": True,
                                  "validates_ack_number": True}),
)
STRATEGIES = (
    "inorder-overlap/bad-checksum",
    "improved-tcb-teardown",
    "inorder-overlap/bad-ack",
    "tcb-creation+resync-desync",
)
TRIALS = 12


def _countermeasure_trial(task):
    """Process-pool work unit: one hardened-GFW fetch, True when evaded."""
    tweaks, strategy, seed = task
    note_trials()
    config = evolved_config()
    for name, value in tweaks.items():
        setattr(config, name, value)
    world = mini_topology(gfw_config=config, seed=seed)
    INTANG(
        host=world.client, tcp_host=world.client_tcp,
        clock=world.clock, network=world.network,
        fixed_strategy=strategy, rng=random.Random(seed + 3),
    )
    exchange = fetch(world)
    return exchange.got_response and not world.gfw.detections


def countermeasure_sweep() -> str:
    rows = []
    for label, tweaks in HARDENINGS:
        cells = [label]
        for strategy in STRATEGIES:
            tasks = [(dict(tweaks), strategy, seed) for seed in range(TRIALS)]
            evaded = sum(map_trials(_countermeasure_trial, tasks))
            cells.append(f"{evaded * 100 // TRIALS}%")
        rows.append(cells)
    text = render_table(
        ["GFW hardening"] + list(STRATEGIES), rows,
        title="§8 countermeasures: evasion success as the GFW hardens",
    )
    text += (
        "\n\nThe TTL-based combination (tcb-creation+resync-desync) is "
        "untouched by header\nvalidation — §8's point that each defence "
        "closes one vehicle while others remain,\nand new checks (e.g. "
        "validating MD5 fields the server ignores) cut both ways."
    )
    return text


def test_ablation_countermeasures(benchmark):
    text = benchmark.pedantic(countermeasure_sweep, rounds=1, iterations=1)
    report("ablation_countermeasures", text)
    lines = [line for line in text.splitlines() if "%" in line and "|" in line]

    def cell(line_index, column):
        return int(lines[line_index].split("|")[column].strip().rstrip("%"))

    assert cell(0, 1) == 100          # bad-checksum prefill works on baseline
    assert cell(1, 1) == 0            # checksum validation kills it
    assert cell(1, 2) == 100          # …but MD5 teardown is unaffected
    assert cell(2, 2) == 0            # MD5 rejection kills that in turn
    assert cell(3, 4) > 80            # the TTL combination outlives all three
