"""Shared sizing and reporting helpers for the benchmark harness.

Every bench regenerates one of the paper's tables or figures.  Sizes are
environment-tunable so the default run finishes in minutes while a
paper-scale run stays one flag away:

- ``REPRO_BENCH_SITES``   — websites per cell (default 15; paper: 77);
- ``REPRO_BENCH_REPEATS`` — repeats per vantage×site (default 1; paper: 50);
- ``REPRO_BENCH_DNS``     — DNS queries per vantage (default 25; paper: 100);
- ``REPRO_FULL=1``        — paper-scale dataset sizes.

Each bench prints its table (visible with ``-s``) and writes it under
``benchmarks/results/`` so EXPERIMENTS.md can cite a recorded artifact.

The session also records per-bench wall-clock time and trial throughput
(sampled from the parallel engine's trial counter) into
``benchmarks/results/BENCH_perf.json`` — the artifact the speedup
acceptance numbers are read from.
"""

import json
import os
import platform
import sys
import time

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "tests"))
sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))


def full_scale() -> bool:
    return os.environ.get("REPRO_FULL", "") == "1"


def bench_sites(default: int = 15, paper: int = 77) -> int:
    if full_scale():
        return paper
    return int(os.environ.get("REPRO_BENCH_SITES", default))


def bench_repeats(default: int = 1, paper: int = 50) -> int:
    if full_scale():
        return paper
    return int(os.environ.get("REPRO_BENCH_REPEATS", default))


def bench_dns_queries(default: int = 25, paper: int = 100) -> int:
    if full_scale():
        return paper
    return int(os.environ.get("REPRO_BENCH_DNS", default))


def report(name: str, text: str) -> str:
    """Print a bench's table and persist it under benchmarks/results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as handle:
        handle.write(text + "\n")
    print()
    print(text)
    return path


# -- per-bench perf recording -----------------------------------------------

_PERF_RECORDS = []
_CURRENT_METRICS = {}
_CURRENT_RATE = {}


def record_metric(name, value):
    """Attach a named metric (e.g. a MB/s figure) to the bench that is
    currently running; it lands in that bench's BENCH_perf.json entry."""
    _CURRENT_METRICS[name] = value


def record_rate(value, unit):
    """Declare the bench's primary throughput in its own unit.

    Benches that do not run trials (bench_dpi streams bytes, bench_fleet
    counts flow events) record ``rate`` + ``unit`` (e.g.
    ``bytes_per_second``) instead of the trial fields; ``repro perf
    compare`` gates these entries as ``<bench>::<unit>``."""
    _CURRENT_RATE["rate"] = round(float(value), 2)
    _CURRENT_RATE["unit"] = str(unit)


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    from repro.experiments.parallel import (
        execution_stats,
        reset_execution_stats,
        trials_completed,
    )

    _CURRENT_METRICS.clear()
    _CURRENT_RATE.clear()
    reset_execution_stats()
    trials_before = trials_completed()
    start = time.perf_counter()
    yield
    elapsed = time.perf_counter() - start
    trials = trials_completed() - trials_before
    execution = execution_stats()
    record = {
        "bench": item.nodeid,
        "wall_seconds": round(elapsed, 4),
        # Effective counts, not requested ones: maps clamp workers to the
        # task count and sharded runs can collapse to the serial path, so
        # the recorded rate is only honest next to what actually ran.
        "workers": execution["workers"] or 1,
    }
    if execution["shards"]:
        record["shards"] = execution["shards"]
    if trials:
        # Benches that run no trials used to land here with ``trials: 0``
        # and a meaningless rate; the trial fields are now only recorded
        # when they mean something.
        record["trials"] = trials
        record["trials_per_second"] = (
            round(trials / elapsed, 2) if elapsed > 0 else None
        )
    if _CURRENT_RATE:
        record.update(_CURRENT_RATE)
    if _CURRENT_METRICS:
        record["metrics"] = dict(_CURRENT_METRICS)
    _PERF_RECORDS.append(record)


def _existing_benches(path):
    """Previously recorded entries, keyed by bench nodeid.

    Sessions merge instead of overwrite, so running one bench file (the
    CI perf-smoke runs only bench_dpi) does not wipe the table sweeps'
    recorded trajectory."""
    try:
        with open(path) as handle:
            return {
                record["bench"]: record
                for record in json.load(handle).get("benches", [])
                if isinstance(record, dict) and "bench" in record
            }
    except (OSError, ValueError):
        return {}


def _next_run_ordinal(benches):
    """The session's monotonic run number: one past the highest recorded.

    Wall-clock timestamps cannot order perf records — CI runners have
    skewed clocks and reruns land in the same second — so each record
    carries this ordinal instead, and ``repro obs report`` sorts the
    trajectory by it."""
    return max(
        (record.get("run", 0) for record in benches.values()), default=0
    ) + 1


#: History lines kept in BENCH_history.jsonl (oldest dropped first).
_HISTORY_KEEP = 40


def _append_history(path, payload):
    """Append this session's merged perf document as one JSONL line."""
    lines = []
    try:
        with open(path) as handle:
            lines = [line for line in handle if line.strip()]
    except OSError:
        pass
    lines.append(json.dumps(payload, sort_keys=True) + "\n")
    with open(path, "w") as handle:
        handle.writelines(lines[-_HISTORY_KEEP:])


def pytest_sessionfinish(session, exitstatus):
    if not _PERF_RECORDS:
        return
    try:
        from repro.experiments.parallel import configured_workers
        workers = configured_workers()
    except Exception:
        workers = None
    path = os.path.join(RESULTS_DIR, "BENCH_perf.json")
    benches = _existing_benches(path)
    run_ordinal = _next_run_ordinal(benches)
    for record in _PERF_RECORDS:
        record["run"] = run_ordinal
        benches[record["bench"]] = record
    payload = {
        "run": run_ordinal,
        "meta": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
            "workers": workers,
            "batch_trials": os.environ.get("REPRO_BATCH_TRIALS"),
            "replay": os.environ.get("REPRO_REPLAY", "1") not in ("0", "false", ""),
            "repro_full": full_scale(),
            "run": run_ordinal,
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        },
        "benches": sorted(benches.values(), key=lambda record: record["bench"]),
    }
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    _append_history(os.path.join(RESULTS_DIR, "BENCH_history.jsonl"), payload)
    _dump_telemetry_snapshot()


def _dump_telemetry_snapshot():
    """The session's merged metrics registry, next to the perf record.

    Worker deltas were already folded in by ``map_trials``, so this is
    the same accounting a serial run would produce; CI uploads it as a
    workflow artifact."""
    try:
        from repro.telemetry import get_registry
        snapshot = get_registry().snapshot()
    except Exception:
        return
    path = os.path.join(RESULTS_DIR, "telemetry_snapshot.json")
    with open(path, "w") as handle:
        json.dump(snapshot, handle, indent=2, sort_keys=True)
        handle.write("\n")
