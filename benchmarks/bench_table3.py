"""Table 3 — candidate insertion packets from the ignore-path analysis.

Runs both halves of §5.3 (server ignores × GFW accepts) live and prints
the confirmed discrepancy rows, plus the §5.3 kernel cross-validation."""

from conftest import report

from repro.analysis import cross_validate_stacks, generate_table3
from repro.experiments.tables import format_table3, render_table


def regenerate_table3() -> str:
    rows = generate_table3()
    text = format_table3([row.as_tuple() for row in rows])
    divergences = cross_validate_stacks()
    table = [
        [d.profile, d.probe, d.state, f"{d.reference_verdict} -> {d.this_verdict}"]
        for d in divergences
    ]
    text += "\n\n" + render_table(
        ["Stack", "Probe", "State", "Divergence vs linux-4.4"],
        table,
        title="Cross-validation with other TCP stacks (§5.3)",
    )
    return text


def test_table3(benchmark):
    text = benchmark.pedantic(regenerate_table3, rounds=1, iterations=1)
    report("table3", text)
    # All nine paper rows present:
    for condition in (
        "IP total length > actual length",
        "TCP Header Length < 20",
        "TCP checksum incorrect",
        "Has unsolicited MD5 Optional Header",
        "TCP packet with no flag",
        "TCP packet with only FIN flag",
        "Timestamps too old",
    ):
        assert condition in text
    # The three §5.3 cross-validation findings:
    assert "linux-2.4.37" in text and "unsolicited-md5" in text
    assert "no-flag" in text
    assert "syn-in-established" in text
