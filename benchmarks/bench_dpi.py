"""DPI engine throughput: streaming matcher vs. the retired rescan path.

The streaming engine's design target is the pathological segmentations
the paper's experiments generate on purpose — 1-byte segments (the §4
inference probes), MSS-sized segments (536 and 1460).  The retired
engine re-ran substring search over its whole buffered stream on every
in-order segment, so its cost per flow was quadratic in stream length;
the streaming engine is linear.

Two regression gates ride on this bench:

- streaming throughput must stay within 30 % of the committed floors
  (the CI perf-smoke step fails otherwise);
- the 1-byte-segment speedup over the rescan engine must hold at >= 5x
  (the acceptance criterion of the streaming redesign).
"""

import time

from conftest import record_metric, record_rate, report

from repro.gfw.dpi import RescanInspector, StreamInspector
from repro.gfw.rules import RuleSet

SEGMENT_SIZES = (1, 536, 1460)

#: Committed streaming-throughput floors (MB/s), measured on the CI
#: container class and derated; the gate fails only below floor * 0.7.
STREAMING_FLOOR_MBPS = {1: 0.5, 536: 40.0, 1460: 60.0}

#: Stream sizes per segment size: the rescan engine is O(bytes^2) on
#: 1-byte segments, so that corpus must stay small to finish at all —
#: itself the point being measured.
STREAM_BYTES = {1: 48 * 1024, 536: 3 * 1024 * 1024, 1460: 3 * 1024 * 1024}


def _benign_stream(total: int) -> bytes:
    """An HTTP request stream with keyword-free filler (worst case for
    the matcher: it can never latch and stop early)."""
    head = b"GET /index.html HTTP/1.1\r\nHost: bench.example.org\r\n"
    filler = b"x-filler: abcdefgh-0123456789\r\n"
    body = filler * (max(0, total - len(head)) // len(filler) + 1)
    return (head + body)[:total]


def _throughput_mbps(inspector_class, stream: bytes, segment_size: int) -> float:
    inspector = inspector_class(RuleSet())
    start = time.perf_counter()
    for index in range(0, len(stream), segment_size):
        inspector.feed(stream[index : index + segment_size])
    elapsed = time.perf_counter() - start
    assert inspector.detection is None  # benign corpus stays benign
    return len(stream) / elapsed / 1e6


def test_dpi_streaming_vs_rescan():
    lines = [
        "DPI throughput (MB/s): streaming engine vs retired rescan engine",
        f"  {'segment':>9}  {'streaming':>10}  {'rescan':>10}  {'speedup':>8}",
    ]
    speedups = {}
    streamed_bytes = 0
    streamed_seconds = 0.0
    for segment_size in SEGMENT_SIZES:
        stream = _benign_stream(STREAM_BYTES[segment_size])
        streaming = _throughput_mbps(StreamInspector, stream, segment_size)
        rescan = _throughput_mbps(RescanInspector, stream, segment_size)
        speedups[segment_size] = streaming / rescan
        streamed_bytes += len(stream)
        streamed_seconds += len(stream) / (streaming * 1e6)
        lines.append(
            f"  {segment_size:>7} B  {streaming:>10.2f}  {rescan:>10.2f}"
            f"  {streaming / rescan:>7.1f}x"
        )
        record_metric(f"streaming_mbps_seg{segment_size}", round(streaming, 2))
        record_metric(f"rescan_mbps_seg{segment_size}", round(rescan, 2))
        record_metric(f"speedup_seg{segment_size}", round(streaming / rescan, 2))
        floor = STREAMING_FLOOR_MBPS[segment_size]
        assert streaming >= floor * 0.7, (
            f"streaming DPI regressed at {segment_size}-byte segments: "
            f"{streaming:.2f} MB/s < 70% of the {floor} MB/s floor"
        )
    lines.append(
        "  (rescan at 1460 B only looks competitive because its buffer"
        " trims to the 8 KiB window — it stops inspecting most of the"
        " stream, and drops detections past the trim.)"
    )
    report("dpi_throughput", "\n".join(lines))
    # This bench runs no trials; its BENCH_perf.json entry is the
    # aggregate streaming-engine byte rate across all segment sizes.
    record_rate(streamed_bytes / streamed_seconds, "bytes_per_second")
    # The headline acceptance criterion: >= 5x on 1-byte segments.
    assert speedups[1] >= 5.0, f"1-byte-segment speedup {speedups[1]:.1f}x < 5x"


def test_dpi_detection_latency_unchanged():
    """The streaming engine must detect at the same feed as the rescan
    engine (same packet triggers the resets) — spot-checked here so a
    throughput tweak cannot quietly delay enforcement."""
    rules = RuleSet()
    stream = b"GET /?q=ultrasurf HTTP/1.1\r\nHost: x\r\n\r\n"
    for segment_size in (1, 7, 16):
        streaming, rescan = StreamInspector(rules), RescanInspector(rules)
        first_hit = {}
        for engine_name, engine in (("streaming", streaming), ("rescan", rescan)):
            for feed_index, start in enumerate(range(0, len(stream), segment_size)):
                if engine.feed(stream[start : start + segment_size]) is not None:
                    first_hit[engine_name] = feed_index
                    break
        assert first_hit["streaming"] == first_hit["rescan"], segment_size
