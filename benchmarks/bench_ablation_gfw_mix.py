"""Ablation — GFW generation mixture (§7.1's case for combining).

Sweeps the old-model/evolved-model composition of paths and measures a
generation-specific strategy against the Fig. 4 combination.  Expected
shape: TCB Reversal alone collapses as old-model devices appear;
TCB creation alone collapses as evolved devices appear; the combination
is flat near 100 % across the whole mixture — the §7.1 argument in one
table."""

import zlib

from conftest import bench_sites, report

from repro.experiments import (
    CHINA_VANTAGE_POINTS,
    DEFAULT_CALIBRATION,
    outside_china_catalog,
)
from repro.experiments.runner import RateTriple, run_http_outcomes
from repro.experiments.tables import render_table

SWEEPS = (
    ("all evolved", dict(old_model_only_fraction=0.0, both_models_fraction=0.0)),
    ("70/30 evolved/both", dict(old_model_only_fraction=0.0, both_models_fraction=0.3)),
    ("mixed (default-ish)", dict(old_model_only_fraction=0.1, both_models_fraction=0.3)),
    ("mostly old", dict(old_model_only_fraction=0.7, both_models_fraction=0.3)),
    ("all old", dict(old_model_only_fraction=1.0, both_models_fraction=0.0)),
)
STRATEGIES = ("tcb-reversal", "tcb-creation-syn/ttl", "tcb-teardown+tcb-reversal")


def mixture_sweep(sites_count: int) -> str:
    sites = outside_china_catalog(count=sites_count)
    vantages = CHINA_VANTAGE_POINTS[:5]
    rows = []
    for label, tweaks in SWEEPS:
        calibration = DEFAULT_CALIBRATION.variant(
            gfw_miss_probability=0.0, **tweaks
        )
        cells = [label]
        for strategy in STRATEGIES:
            # Stable cell seed (hash() is salted per interpreter run).
            tasks = [
                (vantage, website, strategy, calibration,
                 zlib.crc32(f"{label}|{strategy}|{v_index}|{w_index}".encode())
                 & 0xFFFF,
                 True)
                for v_index, vantage in enumerate(vantages)
                for w_index, website in enumerate(sites)
            ]
            triple = RateTriple.from_outcomes(run_http_outcomes(tasks))
            cells.append(f"{triple.success * 100:.0f}%")
        rows.append(cells)
    return render_table(
        ["GFW population"] + list(STRATEGIES), rows,
        title="Success rate vs GFW generation mixture",
    )


def test_ablation_gfw_mix(benchmark):
    text = benchmark.pedantic(
        mixture_sweep, args=(bench_sites(8, 25),), rounds=1, iterations=1
    )
    report("ablation_gfw_mix", text)
    lines = [line for line in text.splitlines() if "%" in line]

    def cell(line_index, column):
        return int(lines[line_index].split("|")[column].strip().rstrip("%"))

    # Reversal collapses on all-old paths; the combination holds.
    assert cell(0, 1) > 80       # all evolved: reversal works
    assert cell(-1, 1) < 30      # all old: reversal dies
    assert cell(0, 3) > 80       # combination: works on all-evolved…
    assert cell(-1, 3) > 80      # …and on all-old
