"""Simulator-core throughput: raw packet traversal and trial rates.

Two views of the heap-scheduled engine:

1. packets/second through a 6-hop path, bare and with the full element
   chain (middlebox + stateful firewall + two GFW-placed taps) — the
   per-event cost of the discrete-event core with nothing else attached;
2. trials/second over a Table-1-shaped slice (strategy x vantage x site
   x seed), with scenario reuse off and on — the end-to-end number the
   PR's speedup acceptance is read from, recorded into BENCH_perf.json.

The CI perf-smoke step runs this file and fails if the reuse-on trial
rate falls more than 30 % below the committed floor.
"""

import os
import time

from conftest import record_metric, report

from repro.netsim.network import Network, Path
from repro.netsim.node import Host
from repro.netsim.path import Direction, InlineBox, Tap
from repro.netsim.simclock import SimClock
from repro.netstack.packet import ACK, IPPacket, TCPSegment

#: Committed trials/second floor for the reuse-on Table-1 slice on the
#: CI container class; the smoke gate fails only below floor * 0.7.
#: Raised from 600 after the batch-stepped execution PR (inline
#: fast-forward, packet pool, memoized automaton lookup) landed the
#: serial reuse-on slice above 900 trials/s on the reference container.
TRIALS_PER_SECOND_FLOOR = 800.0

PACKETS = 20_000
TRIAL_SEEDS = 8


def _packet(src: str, dst: str) -> IPPacket:
    segment = TCPSegment(
        src_port=40000, dst_port=80, seq=1, ack=1, flags=ACK,
        payload=b"x" * 64,
    )
    return IPPacket(src=src, dst=dst, payload=segment, ttl=64)


def _six_hop_world(with_elements: bool):
    clock = SimClock()
    network = Network(clock=clock)
    client = network.add_host(Host("10.0.0.1", "client"))
    network.add_host(Host("10.0.0.2", "server"))
    path = Path(
        client_ip="10.0.0.1", server_ip="10.0.0.2",
        hop_count=6, base_delay=0.006,
    )
    network.add_path(path)
    if with_elements:
        path.add_element(InlineBox("box", 2))
        path.add_element(InlineBox("firewall", 3))
        path.add_element(Tap("tap-a", 4))
        path.add_element(Tap("tap-b", 4))
    return clock, network, client


def _packets_per_second(with_elements: bool) -> float:
    clock, network, client = _six_hop_world(with_elements)
    start = time.perf_counter()
    for index in range(PACKETS):
        client.send(_packet("10.0.0.1", "10.0.0.2"))
        if index % 64 == 63:  # drain in batches, as real traffic does
            clock.run()
    clock.run()
    elapsed = time.perf_counter() - start
    return PACKETS / elapsed


def test_packet_traversal_throughput():
    bare = _packets_per_second(with_elements=False)
    loaded = _packets_per_second(with_elements=True)
    record_metric("packets_per_second_bare", round(bare, 1))
    record_metric("packets_per_second_elements", round(loaded, 1))
    lines = [
        "Simulator core: packets/second through a 6-hop path",
        f"  bare path                     {bare:>12.0f}",
        f"  + middlebox/firewall/2 taps   {loaded:>12.0f}",
    ]
    report("netsim_throughput", "\n".join(lines))
    assert bare > 0 and loaded > 0


def _table1_slice(reuse: bool) -> float:
    """Trials/second over a Table-1-shaped slice, serially."""
    from repro.experiments import scenarios
    from repro.experiments.runner import _simulate_http_trial
    from repro.experiments.vantage import CHINA_VANTAGE_POINTS
    from repro.experiments.websites import outside_china_catalog

    os.environ["REPRO_SCENARIO_REUSE"] = "1" if reuse else "0"
    scenarios.clear_scenario_pool()
    vantages = CHINA_VANTAGE_POINTS[:4]
    sites = outside_china_catalog(count=4)
    strategies = ["none", "tcb-teardown-rst/ttl", "inorder-overlap/ttl"]
    trials = 0
    start = time.perf_counter()
    for strategy in strategies:
        for vantage in vantages:
            for site in sites:
                for seed in range(TRIAL_SEEDS):
                    _simulate_http_trial(vantage, site, strategy, seed=seed)
                    trials += 1
    elapsed = time.perf_counter() - start
    scenarios.clear_scenario_pool()
    os.environ.pop("REPRO_SCENARIO_REUSE", None)
    return trials / elapsed


def _table1_slice_batched() -> float:
    """Trials/second over the same slice through the shared event heap."""
    from repro.experiments import scenarios
    from repro.experiments.runner import _run_http_batch_records, batch_window
    from repro.experiments.vantage import CHINA_VANTAGE_POINTS
    from repro.experiments.websites import outside_china_catalog

    os.environ["REPRO_SCENARIO_REUSE"] = "1"
    scenarios.clear_scenario_pool()
    from repro.experiments.calibration import DEFAULT_CALIBRATION

    vantages = CHINA_VANTAGE_POINTS[:4]
    sites = outside_china_catalog(count=4)
    strategies = ["none", "tcb-teardown-rst/ttl", "inorder-overlap/ttl"]
    tasks = [
        (vantage, site, strategy, DEFAULT_CALIBRATION, seed, True)
        for strategy in strategies
        for vantage in vantages
        for site in sites
        for seed in range(TRIAL_SEEDS)
    ]
    window = batch_window()
    start = time.perf_counter()
    for begin in range(0, len(tasks), window):
        _run_http_batch_records(tasks[begin : begin + window])
    elapsed = time.perf_counter() - start
    scenarios.clear_scenario_pool()
    os.environ.pop("REPRO_SCENARIO_REUSE", None)
    return len(tasks) / elapsed


def test_table1_slice_trial_rate():
    cold = _table1_slice(reuse=False)
    warm = _table1_slice(reuse=True)
    batched = _table1_slice_batched()
    record_metric("trials_per_second_reuse_off", round(cold, 1))
    record_metric("trials_per_second_reuse_on", round(warm, 1))
    record_metric("trials_per_second_batched", round(batched, 1))
    lines = [
        "Simulator core: Table-1 slice trials/second (serial)",
        f"  scenario reuse off   {cold:>10.1f}",
        f"  scenario reuse on    {warm:>10.1f}",
        f"  batch-stepped heap   {batched:>10.1f}",
    ]
    report("netsim_trial_rate", "\n".join(lines))
    floor = TRIALS_PER_SECOND_FLOOR
    assert warm >= floor * 0.7, (
        f"trial rate regressed: {warm:.1f} trials/s < 70% of the "
        f"{floor:.0f} trials/s floor"
    )
    assert batched >= floor * 0.7, (
        f"batched trial rate regressed: {batched:.1f} trials/s < 70% of "
        f"the {floor:.0f} trials/s floor"
    )
