"""§7.3 — Tor: active probing, regional filtering, and INTANG's cover.

Reproduces the section's three findings across all 11 vantage points:

1. from 4 vantage points in 3 northern cities, bare Tor runs unfiltered;
2. everywhere else, the handshake fingerprint triggers an active probe
   and the *whole bridge IP* is blocked;
3. with INTANG (improved TCB teardown) the success rate is 100 %."""

from conftest import report

from repro.experiments import CLEAN_ROOM, outside_china_catalog, run_tor_cell
from repro.experiments.tables import render_table
from repro.experiments.vantage import CHINA_VANTAGE_POINTS

BRIDGE = outside_china_catalog()[0]


def tor_campaign() -> str:
    rows = []
    intang_successes = 0
    bare_blocked = 0
    unfiltered = 0
    bare_results = run_tor_cell(CHINA_VANTAGE_POINTS, BRIDGE, None, CLEAN_ROOM, seed=2)
    helped_results = run_tor_cell(
        CHINA_VANTAGE_POINTS, BRIDGE, "improved-tcb-teardown", CLEAN_ROOM, seed=2
    )
    for vantage, bare, helped in zip(
        CHINA_VANTAGE_POINTS, bare_results, helped_results
    ):
        if helped.reconnect_ok and not helped.ip_blocked:
            intang_successes += 1
        if bare.ip_blocked:
            bare_blocked += 1
        elif bare.reconnect_ok:
            unfiltered += 1
        rows.append([
            vantage.name,
            vantage.city,
            "no" if not vantage.tor_filtered else "yes",
            "BLOCKED(IP)" if bare.ip_blocked else (
                "survives" if bare.reconnect_ok else "down"),
            "survives" if helped.reconnect_ok else "down",
        ])
    text = render_table(
        ["Vantage", "City", "Tor-filtered path", "Bare Tor", "Tor + INTANG"],
        rows,
        title="§7.3 Tor bridge reachability",
    )
    text += (
        f"\n\nbare Tor: {unfiltered} unfiltered vantage points (paper: 4, "
        f"northern China), {bare_blocked} whole-IP blocks"
        f"\nINTANG success: {intang_successes}/11 (paper: 100%)"
    )
    return text


def test_tor(benchmark):
    text = benchmark.pedantic(tor_campaign, rounds=1, iterations=1)
    report("tor", text)
    assert "INTANG success: 11/11" in text
    assert "4 unfiltered vantage points" in text
