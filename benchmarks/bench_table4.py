"""Table 4 — new/improved strategies plus the INTANG row, both directions.

Shape to check: all four strategies ≈ 90 %+ success inside China with
~1 % Failure 2; outside China a few points lower with TCB Creation +
Resync/Desync worst on Failure 1 (TTL-only SYN insertions near a
co-located GFW/server, §7.1); the adaptive INTANG row beats every fixed
strategy."""

from conftest import bench_repeats, bench_sites, report

from repro.experiments import (
    CHINA_VANTAGE_POINTS,
    DEFAULT_CALIBRATION,
    OUTSIDE_VANTAGE_POINTS,
    inside_china_catalog,
    outside_china_catalog,
    run_table4_row,
)
from repro.experiments.tables import format_table4
from repro.strategies.registry import TABLE4_STRATEGIES

PAPER_INSIDE = {
    "improved-tcb-teardown": (95.8, 3.1, 1.1),
    "improved-inorder-overlap": (94.5, 4.4, 1.1),
    "tcb-creation+resync-desync": (95.6, 3.3, 1.1),
    "tcb-teardown+tcb-reversal": (96.2, 2.6, 1.1),
}
PAPER_OUTSIDE = {
    "improved-tcb-teardown": (89.8, 6.8, 3.5),
    "improved-inorder-overlap": (92.7, 3.6, 3.7),
    "tcb-creation+resync-desync": (84.6, 12.9, 2.6),
    "tcb-teardown+tcb-reversal": (89.5, 7.1, 3.3),
}


def regenerate_table4(sites_count: int, repeats: int) -> str:
    sites = outside_china_catalog(count=sites_count)
    cn_sites = inside_china_catalog(count=max(10, sites_count * 33 // 77))
    inside_rows = []
    for label, strategy_id in TABLE4_STRATEGIES:
        row = run_table4_row(
            strategy_id, CHINA_VANTAGE_POINTS, sites, DEFAULT_CALIBRATION,
            repeats=repeats, seed=3,
        )
        inside_rows.append((label, row))
    adaptive = run_table4_row(
        None, CHINA_VANTAGE_POINTS, sites, DEFAULT_CALIBRATION,
        repeats=max(4, repeats), seed=3, adaptive=True,
    )
    inside_rows.append(("INTANG Performance", adaptive))
    outside_rows = []
    for label, strategy_id in TABLE4_STRATEGIES:
        row = run_table4_row(
            strategy_id, OUTSIDE_VANTAGE_POINTS, cn_sites, DEFAULT_CALIBRATION,
            repeats=max(3, repeats), seed=3,
        )
        outside_rows.append((label, row))

    text = format_table4(inside_rows, title="Table 4 (inside China)")
    text += "\n\n" + format_table4(outside_rows, title="Table 4 (outside China)")
    text += "\n\nPaper averages (S/F1/F2) inside: " + ", ".join(
        f"{sid}={v}" for sid, v in PAPER_INSIDE.items()
    )
    text += "\nPaper averages (S/F1/F2) outside: " + ", ".join(
        f"{sid}={v}" for sid, v in PAPER_OUTSIDE.items()
    )
    text += "\nPaper INTANG row: 93.7/100.0/98.3 success."
    return text


def test_table4(benchmark):
    text = benchmark.pedantic(
        regenerate_table4, args=(bench_sites(), bench_repeats()),
        rounds=1, iterations=1,
    )
    report("table4", text)
    assert "INTANG Performance" in text
