"""Fig. 2 — INTANG's architecture, exercised component by component.

One run drives every box in the figure: the netfilter-queue-equivalent
interception loop (main thread), strategy callbacks, the Redis-substitute
store + LRU caches (caching thread), and the DNS forwarder (DNS thread).
The benchmark times a full INTANG-protected HTTP exchange plus a DNS
resolution — the tool's steady-state unit of work."""

import random

from conftest import report

from repro.apps.dns import DNSTcpResolver, DNSUdpClient, DNSUdpResolver
from repro.apps.udp import UDPHost
from repro.core.intang import INTANG
from repro.apps.http import HTTPClient

import sys, os
sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "tests"))
from helpers import SERVER_IP, mini_topology  # noqa: E402


def intang_architecture_demo() -> str:
    world = mini_topology(seed=6)
    client_udp = UDPHost(world.client)
    server_udp = UDPHost(world.server)
    zone = {"www.dropbox.com": "104.16.100.29"}
    DNSUdpResolver(server_udp, zone)
    DNSTcpResolver(world.server_tcp, zone)
    from repro.gfw.dns_poisoner import DNSPoisoner

    world.gfw.dns_poisoner = DNSPoisoner()

    intang = INTANG(
        host=world.client, tcp_host=world.client_tcp, clock=world.clock,
        network=world.network, rng=random.Random(2),
        dns_resolver_ip=SERVER_IP,
    )
    # Main thread: HTTP through the strategy chosen by the selector.
    http = HTTPClient(world.client_tcp)
    _, exchange = http.get(SERVER_IP, host="x", path="/?q=ultrasurf")
    world.run(8.0)
    intang.report_result(SERVER_IP, exchange.got_response)
    # DNS thread: a censored resolution through the forwarder.
    dns_client = DNSUdpClient(client_udp, SERVER_IP, world.clock)
    answers = []
    dns_client.resolve("www.dropbox.com", lambda m: answers.extend(m.answers))
    world.run(8.0)

    record = intang.selector.record_for(SERVER_IP)
    lines = ["Fig. 2 components, one pass each:"]
    lines.append(f"  interception: {len(intang.framework.contexts)} connection "
                 f"context(s), {intang.insertions_sent()} insertion packets")
    lines.append(f"  strategy used: {intang.last_strategy_for(SERVER_IP)}")
    lines.append(f"  result cache (Redis substitute): {len(intang.store)} record(s), "
                 f"pinned={record.pinned}")
    lines.append(f"  LRU front cache: hits={intang.selector.front_cache.hits} "
                 f"misses={intang.selector.front_cache.misses}")
    lines.append(f"  DNS forwarder: forwarded={intang.dns_forwarder.queries_forwarded} "
                 f"returned={intang.dns_forwarder.responses_returned}")
    lines.append(f"  HTTP evaded: {exchange.got_response}; DNS answer: {answers}")
    return "\n".join(lines)


def test_fig2(benchmark):
    text = benchmark.pedantic(intang_architecture_demo, rounds=3, iterations=1)
    report("fig2", text)
    assert "forwarded=1" in text
    assert "HTTP evaded: True" in text
