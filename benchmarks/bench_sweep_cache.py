"""Table-1-sized sweep wall-clock: cold result cache vs. warm replay.

INTANG avoids re-measuring servers by caching historical results in
Redis (§6); the harness applies the same idea to whole sweeps via
``repro.experiments.result_cache``.  This bench runs every Table 1
strategy row across all 11 vantage points twice at ``workers=1`` — once
against a cleared cache, once warm — and gates on the acceptance
criterion that the warm pass costs at most half the cold pass.
"""

import time

from conftest import bench_repeats, bench_sites, record_metric, report

from repro.experiments import result_cache
from repro.experiments.calibration import DEFAULT_CALIBRATION
from repro.experiments.runner import run_strategy_cell
from repro.experiments.vantage import CHINA_VANTAGE_POINTS
from repro.experiments.websites import outside_china_catalog
from repro.strategies.registry import TABLE1_ROWS


def _sweep(sites, repeats):
    return {
        strategy_id: run_strategy_cell(
            strategy_id, CHINA_VANTAGE_POINTS, sites, DEFAULT_CALIBRATION,
            repeats=repeats, seed=7, keyword=True, workers=1,
        )
        for _label, strategy_id, _discrepancy in TABLE1_ROWS
    }


def test_table1_sweep_cold_vs_warm_cache():
    sites = outside_china_catalog(count=bench_sites())
    repeats = bench_repeats()
    trials = len(TABLE1_ROWS) * len(CHINA_VANTAGE_POINTS) * len(sites) * repeats

    result_cache.clear()
    start = time.perf_counter()
    cold = _sweep(sites, repeats)
    cold_seconds = time.perf_counter() - start

    start = time.perf_counter()
    warm = _sweep(sites, repeats)
    warm_seconds = time.perf_counter() - start

    assert warm == cold, "cached replay changed a Table 1 cell"
    stats = result_cache.stats()
    text = "\n".join(
        [
            "Table-1-sized sweep, REPRO_WORKERS=1"
            f" ({trials} trials: {len(TABLE1_ROWS)} strategies x"
            f" {len(CHINA_VANTAGE_POINTS)} vantages x {len(sites)} sites"
            f" x {repeats} repeats)",
            f"  cold cache: {cold_seconds:8.2f} s"
            f"  ({trials / cold_seconds:8.0f} trials/s)",
            f"  warm cache: {warm_seconds:8.2f} s"
            f"  ({trials / warm_seconds:8.0f} trials/s)",
            f"  warm/cold:  {warm_seconds / cold_seconds:8.3f}",
            f"  cache: {stats['entries']} entries,"
            f" {stats['hits']} hits, {stats['misses']} misses",
        ]
    )
    report("sweep_cache", text)
    record_metric("sweep_trials", trials)
    record_metric("cold_seconds", round(cold_seconds, 3))
    record_metric("warm_seconds", round(warm_seconds, 3))
    record_metric("warm_over_cold", round(warm_seconds / cold_seconds, 4))
    record_metric("cold_trials_per_second", round(trials / cold_seconds, 1))
    record_metric("warm_trials_per_second", round(trials / warm_seconds, 1))
    # Acceptance criterion: warm replay in <= 50% of the cold wall-clock.
    assert warm_seconds <= 0.5 * cold_seconds, (
        f"warm sweep took {warm_seconds:.2f}s vs cold {cold_seconds:.2f}s"
    )
    result_cache.clear()
