"""Fleet engine throughput and strategy effectiveness under censor load.

Two legs, both against **one shared GFW installation** (the fleet
engine's whole point — the paper probed the censor one flow at a time):

1. throughput: a benign-dominated population whose TCBs all survive
   (the evolved model never tears down on FIN), so the shared flow
   table genuinely holds every fleet flow concurrently while the batch
   heap drains waves of them — flow-events/s and flows/s recorded into
   BENCH_perf.json via the generic ``rate``/``unit`` fields;
2. effectiveness-vs-load: the Table-1 strategy pool swept across fleet
   sizes below and above the shared table's ``max_flows`` capacity, the
   measurement the paper could never take on the live GFW.  Blacklist
   contention (another client blacklists your host pair first) and LRU
   eviction (the censor forgets mid-stream flows) both move the rates.

Sizes are environment-tunable:

- ``REPRO_FLEET_FLOWS`` — throughput-leg fleet size (default 10000;
  CI smoke uses 2000);
- ``REPRO_FLEET_CURVE`` — comma-separated effectiveness sweep sizes
  (default ``256,1024,4096`` around the scaled 512-flow capacity).
"""

import os
import time

from conftest import record_metric, record_rate, report

from repro.experiments.fleet import FleetSpec, run_fleet

#: Committed flow-events/second floor for the 10k-concurrent-flow
#: throughput leg on the CI container class (measured ~60k on the
#: reference container); the smoke gate fails only below floor * 0.7.
FLOW_EVENTS_PER_SECOND_FLOOR = 50_000.0

#: Shared-table capacity for the effectiveness sweep.  This is the
#: ``GFWConfig.max_flows`` knob, scaled down from the default 4096 so
#: the sweep spans the capacity in CI time; the fleet sizes below and
#: above it are what matter, not its absolute value.
CURVE_MAX_FLOWS = 512


def fleet_flows(default: int = 10_000) -> int:
    return int(os.environ.get("REPRO_FLEET_FLOWS", default))


def curve_sizes(default: str = "256,1024,4096"):
    raw = os.environ.get("REPRO_FLEET_CURVE", default)
    return [int(part) for part in raw.split(",") if part.strip()]


def test_fleet_throughput():
    """>= 50k flow-events/s single-core with 10k concurrently tracked flows."""
    flows = fleet_flows()
    spec = FleetSpec(
        flows=flows,
        groups=1,                 # one shared censor, one core
        window=256,               # concurrent flows per batch heap
        sensitive_fraction=0.0,   # no blacklistings -> every TCB persists
        max_flows=max(16_384, flows + 1),  # capacity above the fleet
    )
    # Warm the scenario pool and code paths, then measure.
    run_fleet(FleetSpec(flows=min(flows, 1000), groups=1, window=256,
                        sensitive_fraction=0.0, max_flows=16_384))
    start = time.perf_counter()
    result = run_fleet(spec)
    elapsed = time.perf_counter() - start
    events_per_second = result.flow_events / elapsed
    flows_per_second = result.flows / elapsed

    # The shared censor must genuinely be tracking the whole fleet
    # concurrently — nothing tears these TCBs down and nothing evicts.
    assert result.peak_flows_tracked == flows
    assert result.flows_evicted == 0

    record_rate(events_per_second, "flow_events_per_second")
    record_metric("fleet_flows", flows)
    record_metric("fleet_flows_per_second", round(flows_per_second, 1))
    record_metric("fleet_concurrent_tracked_flows", result.peak_flows_tracked)
    record_metric("fleet_flow_events", result.flow_events)

    lines = [
        "Fleet throughput (one shared GFW, benign population)",
        f"  {flows} flows, {result.flow_events} flow events in {elapsed:.2f}s",
        f"  {events_per_second:,.0f} flow-events/s, {flows_per_second:,.0f} flows/s",
        f"  censor concurrently tracked {result.peak_flows_tracked} flows",
    ]
    report("fleet_throughput", "\n".join(lines))

    floor = FLOW_EVENTS_PER_SECOND_FLOOR
    assert events_per_second >= floor * 0.7, (
        f"fleet throughput regressed: {events_per_second:,.0f} "
        f"flow-events/s < 70% of the {floor:,.0f} floor"
    )


def test_fleet_effectiveness_vs_load():
    """Table-1 strategy success as the fleet sweeps past ``max_flows``.

    The whole Table-1 pool rides along (no silent strategy caps); the
    window is sized at the table capacity so flows genuinely race for
    slots once the fleet outgrows the table.
    """
    sizes = curve_sizes()
    lines = [
        "Strategy effectiveness vs. GFW load (shared flow table, "
        f"capacity {CURVE_MAX_FLOWS})",
        "  extension measurement: eviction/blacklist coupling is not a "
        "paper result",
    ]
    labels = None
    for size in sizes:
        spec = FleetSpec(
            flows=size,
            groups=1,
            window=CURVE_MAX_FLOWS,
            max_flows=CURVE_MAX_FLOWS,
        )
        start = time.perf_counter()
        result = run_fleet(spec)
        elapsed = time.perf_counter() - start
        rates = result.strategy_rates()
        if labels is None:
            labels = sorted(rates)
        record_metric(f"curve_success_at_{size}", {
            label: round(rate, 4) for label, rate in sorted(rates.items())
        })
        record_metric(f"curve_load_at_{size}", {
            "flows_evicted_active": result.flows_evicted_active,
            "flows_evicted_after_fin": result.flows_evicted_after_fin,
            "eviction_false_negatives": result.eviction_false_negatives,
            "blacklist_false_positives": result.blacklist_false_positives,
            "evictions_in_resync": result.evictions_in_resync,
            "blacklistings": result.blacklistings,
            "flows_per_second": round(result.flows / elapsed, 1),
        })
        lines.append(
            f"  {size:>6} flows: "
            f"evict(active/fin)={result.flows_evicted_active}/"
            f"{result.flows_evicted_after_fin} "
            f"evictFN={result.eviction_false_negatives} "
            f"blacklistFP={result.blacklist_false_positives} "
            f"benign={result.success_rate('benign'):.0%}"
        )
        for label in labels:
            if label in rates:
                lines.append(f"      {label:<36} {rates[label]:7.1%}")
        if size > CURVE_MAX_FLOWS:
            # Past capacity the shared table must be churning.
            assert result.flows_evicted > 0
        if size <= CURVE_MAX_FLOWS // 2 + 1:
            # Comfortably under capacity nothing is forgotten.
            assert result.flows_evicted_active == 0
    report("fleet_effectiveness", "\n".join(lines))
