"""Table 5 — preferred construction of insertion packets.

Derived live from the analysis pipeline: server ignore paths × GFW
acceptance × middlebox survival × control-packet safety."""

from conftest import report

from repro.analysis import derive_table5
from repro.experiments.tables import format_table5
from repro.strategies.insertion import Discrepancy, PREFERRED_DISCREPANCIES


def regenerate_table5() -> str:
    derived = derive_table5()
    text = format_table5(derived)
    static = {
        "SYN": [d.value for d in PREFERRED_DISCREPANCIES["SYN"]],
        "RST": [d.value for d in PREFERRED_DISCREPANCIES["RST"]],
        "Data": [
            "ttl" if d is Discrepancy.LOW_TTL else d.value
            for d in PREFERRED_DISCREPANCIES["DATA"]
        ],
    }
    text += "\n\nStatic preference map used by the strategies: " + repr(static)
    text += "\nDerived and static maps agree: " + str(derived == static)
    return text


def test_table5(benchmark):
    text = benchmark.pedantic(regenerate_table5, rounds=1, iterations=1)
    report("table5", text)
    assert "Derived and static maps agree: True" in text
