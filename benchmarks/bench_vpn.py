"""§7.3 — OpenVPN-over-TCP: DPI reset vs INTANG.

Reproduces the November-2016 observation: the bare openvpn handshake is
reset by DPI during establishment, while the INTANG-protected session
(improved TCB teardown) survives and tunnels frames.  The configurable
``detect_vpn`` rule reproduces the later behaviour change the authors
could no longer explain (bare VPN suddenly working)."""

from conftest import report

from repro.experiments import CLEAN_ROOM, outside_china_catalog, run_vpn_cell
from repro.experiments.scenarios import build_scenario
from repro.experiments.tables import render_table
from repro.experiments.vantage import CHINA_VANTAGE_POINTS
from repro.apps.vpn import OpenVPNClient

VPN_SITE = outside_china_catalog()[1]


def vpn_campaign() -> str:
    rows = []
    vantages = CHINA_VANTAGE_POINTS[:6]
    bare_results = run_vpn_cell(vantages, VPN_SITE, None, CLEAN_ROOM, seed=2)
    helped_results = run_vpn_cell(
        vantages, VPN_SITE, "improved-tcb-teardown", CLEAN_ROOM, seed=2
    )
    for vantage, bare, helped in zip(vantages, bare_results, helped_results):
        rows.append([
            vantage.name,
            "RESET during handshake" if bare.reset else "up",
            "tunnel up" if helped.frames_ok and not helped.reset else "down",
        ])
    text = render_table(
        ["Vantage", "Bare openvpn-over-TCP", "openvpn + INTANG"],
        rows,
        title="§7.3 VPN (November-2016 GFW behaviour)",
    )
    # The later (unexplained) behaviour change: DPI off.
    scenario = build_scenario(
        vantage=CHINA_VANTAGE_POINTS[0], website=VPN_SITE,
        calibration=CLEAN_ROOM, seed=3, workload="vpn",
    )
    for device in scenario.gfw_devices:
        device.config.rules.detect_vpn = False
    session = OpenVPNClient(scenario.client_tcp).open_session(VPN_SITE.ip)
    scenario.run(8.0)
    alive = session.established and session.payload_frames > 0 and not session.reset
    text += (
        "\n\nWith VPN fingerprinting later disabled (the paper's 2017 "
        f"re-measurement): bare session {'survives' if alive else 'down'}"
    )
    return text


def test_vpn(benchmark):
    text = benchmark.pedantic(vpn_campaign, rounds=1, iterations=1)
    report("vpn", text)
    assert "RESET during handshake" in text
    assert "tunnel up" in text
    assert "bare session survives" in text
