"""Ablation — insertion-packet redundancy vs loss (§3.4).

"We cope with such dynamics by repeating the sending of the insertion
packets thrice."  Sweeps the copy count for the improved TCB teardown
under elevated loss: a single copy loses the teardown RST to the network
often enough to matter; three copies all but eliminate that failure."""

import random

from conftest import report

from repro.core.framework import InterceptionFramework
from repro.experiments.parallel import map_trials, note_trials
from repro.strategies.improved import ImprovedTCBTeardown
from repro.strategies.insertion import Discrepancy
from repro.experiments.tables import render_table

import sys, os
sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "tests"))
from helpers import fetch, mini_topology  # noqa: E402

LOSS_RATE = 0.30
TRIALS = 40


def _redundancy_trial(task):
    """Process-pool work unit: one lossy-path fetch, True when evaded."""
    copies, seed = task
    note_trials()
    world = mini_topology(seed=seed, loss_rate=LOSS_RATE)

    def factory(ctx):
        return ImprovedTCBTeardown(
            ctx, discrepancies=(Discrepancy.MD5_OPTION,), copies=copies
        )

    InterceptionFramework(
        host=world.client, clock=world.clock,
        rng=random.Random(seed), strategy_factory=factory,
    )
    exchange = fetch(world, duration=18.0)
    return exchange.got_response and not world.gfw_resets_at_client


def redundancy_sweep() -> str:
    rows = []
    for copies in (1, 2, 3, 5):
        tasks = [(copies, seed) for seed in range(TRIALS)]
        evaded = sum(map_trials(_redundancy_trial, tasks))
        rows.append([str(copies), f"{evaded / TRIALS * 100:.0f}%"])
    text = render_table(
        ["insertion copies", "evasion success"],
        rows,
        title=f"Redundancy sweep at {LOSS_RATE:.0%} per-traversal loss "
              f"({TRIALS} trials each)",
    )
    text += "\n\nPaper practice: thrice, 20 ms apart (§3.4)."
    return text


def test_ablation_redundancy(benchmark):
    text = benchmark.pedantic(redundancy_sweep, rounds=1, iterations=1)
    report("ablation_redundancy", text)
    lines = [line for line in text.splitlines() if "%" in line and "|" in line]
    single = int(lines[0].split("|")[1].strip().rstrip("%"))
    triple = int(lines[2].split("|")[1].strip().rstrip("%"))
    assert triple >= single
