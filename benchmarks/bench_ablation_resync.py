"""Ablation — NB3: resync-on-RST probability (§4).

Sweeps the probability that an evolved device answers a teardown RST by
entering the resynchronization state instead of deleting its TCB, and
measures plain RST teardown against the desync-hardened improved
variant.  Expected shape: plain teardown degrades linearly toward 0 %
as the coin biases to resync (the paper's observed ~80 % / ~20 % split
puts it near 80 % success); the improved variant stays flat because the
desynchronization packet poisons the re-anchoring (§7.1)."""

from conftest import report

from repro.experiments import (
    CHINA_VANTAGE_POINTS,
    DEFAULT_CALIBRATION,
    outside_china_catalog,
)
from repro.experiments.runner import RateTriple, run_http_outcomes
from repro.experiments.tables import render_table

PROBABILITIES = (0.0, 0.2, 0.5, 0.8, 1.0)
STRATEGIES = ("tcb-teardown-rst/ttl", "improved-tcb-teardown")


def resync_sweep(sites_count: int = 10) -> str:
    sites = outside_china_catalog(count=sites_count)
    vantages = CHINA_VANTAGE_POINTS[:5]
    rows = []
    for probability in PROBABILITIES:
        calibration = DEFAULT_CALIBRATION.variant(
            resync_on_rst_probability=probability,
            gfw_miss_probability=0.0,
            old_model_only_fraction=0.0,
            both_models_fraction=0.0,
        )
        cells = [f"P(resync)={probability:.1f}"]
        for strategy in STRATEGIES:
            tasks = [
                (vantage, website, strategy, calibration,
                 (v_index * 7919 + w_index * 31
                  + int(probability * 10) * 3) & 0xFFFF,
                 True)
                for v_index, vantage in enumerate(vantages)
                for w_index, website in enumerate(sites)
            ]
            triple = RateTriple.from_outcomes(run_http_outcomes(tasks))
            cells.append(f"{triple.success * 100:.0f}%")
        rows.append(cells)
    text = render_table(
        ["NB3 coin"] + list(STRATEGIES), rows,
        title="RST teardown vs the resynchronization state",
    )
    text += (
        "\n\n§4 measured ~80% teardown success, i.e. P(resync) ≈ 0.2; the "
        "desync packet\nmakes the improved strategy insensitive to the coin."
    )
    return text


def test_ablation_resync(benchmark):
    text = benchmark.pedantic(resync_sweep, rounds=1, iterations=1)
    report("ablation_resync", text)
    lines = [line for line in text.splitlines() if line.startswith("P(resync)")]

    def cell(line, column):
        return int(line.split("|")[column].strip().rstrip("%"))

    plain_at_0 = cell(lines[0], 1)
    plain_at_1 = cell(lines[-1], 1)
    improved_at_1 = cell(lines[-1], 2)
    assert plain_at_0 > 85
    assert plain_at_1 < 30
    assert improved_at_1 > 85
