"""Fig. 1 — the threat model as a live topology.

Builds client ─ client-side middleboxes ─ GFW ─ server-side path ─ server
and demonstrates each capability the figure assigns: the on-path GFW
reads and injects but cannot drop; in-path middleboxes drop; the client
initiates the connection.  The benchmark times topology construction +
one full censored exchange (the simulator's unit of work)."""

from conftest import report

from repro.experiments import CLEAN_ROOM, build_scenario, vantage_by_name
from repro.experiments.websites import outside_china_catalog
from repro.apps.http import HTTPClient
from repro.experiments.runner import SENSITIVE_PATH


def threat_model_demo() -> str:
    scenario = build_scenario(
        vantage=vantage_by_name("unicom-tianjin"),
        website=outside_china_catalog()[0],
        calibration=CLEAN_ROOM,
        seed=4,
        trace=True,
    )
    client = HTTPClient(scenario.client_tcp)
    _, exchange = client.get(
        scenario.website.ip, host=scenario.website.name, path=SENSITIVE_PATH
    )
    scenario.run()
    lines = ["Fig. 1 threat model, instantiated:"]
    lines.append(
        f"  path: {scenario.path.hop_count} hops, GFW tap at hop "
        f"{scenario.gfw_devices[0].hop}"
    )
    elements = ", ".join(
        f"{element.name}@{element.hop}" for element in scenario.path.elements
    )
    lines.append(f"  elements: {elements}")
    observed = len(scenario.trace.filter(action="observe"))
    injected = sum(device.resets_injected for device in scenario.gfw_devices)
    dropped = len(scenario.trace.filter(action="drop"))
    lines.append(f"  GFW observed {observed} packets (read capability)")
    lines.append(f"  GFW injected {injected} forged packets (inject capability)")
    lines.append(f"  packets dropped anywhere: {dropped} (none by the GFW — on-path!)")
    lines.append(
        f"  outcome: {'reset' if not exchange.got_response else 'delivered'}"
        f" — detections: {scenario.gfw_detections()}"
    )
    gfw_drops = [
        event for event in scenario.trace.filter(action="drop")
        if "gfw" in event.location
    ]
    lines.append(f"  drops attributed to the GFW element: {len(gfw_drops)}")
    return "\n".join(lines)


def test_fig1(benchmark):
    text = benchmark.pedantic(threat_model_demo, rounds=3, iterations=1)
    report("fig1", text)
    assert "inject capability" in text
    assert "drops attributed to the GFW element: 0" in text
