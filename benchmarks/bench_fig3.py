"""Fig. 3 — the TCB Creation + Resync/Desync packet sequence.

Traces one run of the combined strategy and checks the ladder against
the figure: fake SYN (TTL-limited) → real 3-way handshake → second fake
SYN → desynchronization packet → HTTP request; the GFW ends the exchange
desynchronized and the server answers."""

import random

from conftest import report

from repro.core.intang import INTANG
from repro.gfw.flow import GFWFlowState

import sys, os
sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "tests"))
from helpers import fetch, mini_topology  # noqa: E402


def fig3_trace() -> str:
    world = mini_topology(seed=8, trace=True)
    INTANG(
        host=world.client, tcp_host=world.client_tcp, clock=world.clock,
        network=world.network, fixed_strategy="tcb-creation+resync-desync",
        rng=random.Random(4),
    )
    exchange = fetch(world)
    sends = [e.summary for e in world.trace.filter(action="send", location="client")]
    kinds = []
    for summary in sends:
        if "[S]" in summary:
            kinds.append("SYN(low-ttl)" if "ttl=1" in summary.split(" ")[2] else "SYN")
        elif "[SA]" in summary:
            kinds.append("SYNACK")
        elif "len=1" in summary:
            kinds.append("DESYNC")
        elif "len=0" in summary and "[A]" in summary:
            kinds.append("ACK")
        elif "[A]" in summary or "[PA]" in summary:
            kinds.append("DATA")
    flow = world.gfw.flows and next(iter(world.gfw.flows.values()))
    lines = ["Fig. 3 ladder (client sends, in order):"]
    lines.extend(f"  {kind}" for kind in kinds[:12])
    lines.append(f"result: response={exchange.got_response} "
                 f"detections={len(world.gfw.detections)}")
    if flow:
        lines.append(
            f"GFW flow state: {flow.state.value}, anchored client seq "
            f"{flow.client_next_seq} (desynchronized from the real stream)"
        )
    return "\n".join(lines)


def test_fig3(benchmark):
    text = benchmark.pedantic(fig3_trace, rounds=3, iterations=1)
    report("fig3", text)
    assert "detections=0" in text
    assert "response=True" in text
