"""Table 2 — client-side middlebox behaviours per provider.

Probes all 11 vantage points against a controlled server with the five
packet types of §3.4 and classifies each as Pass / Sometimes dropped /
Dropped (fragments: Discarded / Reassembled)."""

from conftest import report

from repro.experiments.middlebox_probe import probe_all
from repro.experiments.tables import format_table2
from repro.experiments.vantage import CHINA_VANTAGE_POINTS


def regenerate_table2() -> str:
    reports = probe_all(CHINA_VANTAGE_POINTS)
    text = format_table2(reports)
    text += (
        "\n\nPaper (per provider): Aliyun: frags Discarded, FIN sometimes;"
        "\nQCloud: frags Reassembled, RST sometimes; Unicom SJZ: frags"
        " Reassembled, FIN dropped;\nUnicom TJ: frags Reassembled, bad"
        " checksum/no-flag/FIN dropped."
    )
    return text


def test_table2(benchmark):
    text = benchmark.pedantic(regenerate_table2, rounds=1, iterations=1)
    report("table2", text)
    assert "Discarded" in text and "Reassembled" in text


def test_table2_aliyun_row_matches(benchmark):
    """Per-row assertion bench: the six Aliyun vantage points agree."""
    from repro.experiments.middlebox_probe import probe_vantage
    from repro.experiments.vantage import vantage_by_name

    def run():
        return probe_vantage(vantage_by_name("aliyun-shanghai"))

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.results["ip-fragments"] == "Discarded"
    assert result.results["rst"] == "Pass"
