"""Table 6 — TCP DNS censorship evasion via the Dyn resolvers.

Each vantage point repeatedly resolves a censored domain through
INTANG's UDP→TCP forwarder with the improved TCB teardown strategy.
Shape to check: ~99 % success everywhere except Tianjin (whose resolver
paths cross state-adopting equipment, §7.2), dragging the all-vantage
average to ~93 %; OpenDNS resolvers work even without INTANG."""

import zlib

from conftest import bench_dns_queries, report

from repro.experiments import (
    CHINA_VANTAGE_POINTS,
    DEFAULT_CALIBRATION,
    DYN_RESOLVERS,
    OPENDNS_RESOLVERS,
    run_dns_cell,
    run_dns_trial,
)
from repro.experiments.tables import format_table6

PAPER = {"Dyn 1": (0.986, 0.927), "Dyn 2": (0.996, 0.931)}


def regenerate_table6(queries: int) -> str:
    rows = []
    for resolver in DYN_RESOLVERS:
        # Stable per-resolver salt (hash() varies across interpreter runs).
        salt = zlib.crc32(resolver.ip.encode("utf-8")) % 977
        per_vantage = {}
        for vantage in CHINA_VANTAGE_POINTS:
            per_vantage[vantage.name] = run_dns_cell(
                vantage, resolver, queries,
                calibration=DEFAULT_CALIBRATION, seed=salt,
            )
        except_tj = [
            rate for name, rate in per_vantage.items()
            if name != "unicom-tianjin"
        ]
        rows.append(
            (
                resolver.name,
                resolver.ip,
                sum(except_tj) / len(except_tj),
                sum(per_vantage.values()) / len(per_vantage),
            )
        )
    text = format_table6(rows)
    opendns = run_dns_trial(
        CHINA_VANTAGE_POINTS[0], OPENDNS_RESOLVERS[0],
        calibration=DEFAULT_CALIBRATION, seed=1, use_intang=False,
    )
    text += (
        f"\n\nOpenDNS {OPENDNS_RESOLVERS[0].ip} without INTANG: "
        f"{'uncensored (success)' if opendns.success else 'censored'}"
        " — reproducing §7.2's accidental discovery."
    )
    text += "\nPaper: Dyn1 98.6%/92.7%, Dyn2 99.6%/93.1% (except-TJ / all)."
    return text


def test_table6(benchmark):
    text = benchmark.pedantic(
        regenerate_table6, args=(bench_dns_queries(),), rounds=1, iterations=1
    )
    report("table6", text)
    assert "uncensored (success)" in text
