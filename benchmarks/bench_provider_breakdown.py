"""Supplement — Table 1 rates broken down by provider (§3.4's analysis).

The paper attributes specific failure columns to specific provider
equipment ("the vantage point in Tianjin China Unicom has client-side
middleboxes that drop packets with wrong TCP checksums…").  This bench
makes those attributions visible as per-provider rate columns for the
most middlebox-sensitive strategies."""

from conftest import bench_sites, report

from repro.experiments import (
    CHINA_VANTAGE_POINTS,
    DEFAULT_CALIBRATION,
    outside_china_catalog,
    run_cell_by_provider,
)
from repro.experiments.tables import render_table

STRATEGIES = (
    ("inorder-overlap/bad-checksum", "dies only behind Tianjin's sanitizer"),
    ("inorder-overlap/no-flag", "Tianjin + no-flag-ignoring GFW instances"),
    ("ooo-ip-fragments", "F1 at Aliyun (discard), F2 elsewhere (reassembly)"),
    ("tcb-teardown-fin/ttl", "FIN eaten by Aliyun/Unicom + ignored by evolved GFW"),
    ("improved-tcb-teardown", "MD5 vehicle: provider-independent"),
)
PROVIDERS = ("aliyun", "qcloud", "unicom-sjz", "unicom-tj")


def provider_breakdown(sites_count: int) -> str:
    sites = outside_china_catalog(count=sites_count)
    rows = []
    for strategy_id, note in STRATEGIES:
        rates = run_cell_by_provider(
            strategy_id, CHINA_VANTAGE_POINTS, sites, DEFAULT_CALIBRATION,
            seed=5,
        )
        cells = [strategy_id]
        for provider in PROVIDERS:
            triple = rates[provider]
            s, f1, f2 = triple.as_percentages()
            cells.append(f"{s:.0f}/{f1:.0f}/{f2:.0f}")
        rows.append(cells)
    text = render_table(
        ["Strategy (S/F1/F2 %)"] + list(PROVIDERS), rows,
        title="Per-provider breakdown of middlebox-sensitive strategies",
    )
    text += "\n"
    for strategy_id, note in STRATEGIES:
        text += f"\n  {strategy_id}: {note}"
    return text


def test_provider_breakdown(benchmark):
    text = benchmark.pedantic(
        provider_breakdown, args=(bench_sites(12, 40),), rounds=1, iterations=1
    )
    report("provider_breakdown", text)
    lines = [line for line in text.splitlines() if line.startswith("inorder-overlap/bad-checksum")]
    cells = [cell.strip() for cell in lines[0].split("|")]
    aliyun_success = float(cells[1].split("/")[0])
    tianjin_success = float(cells[4].split("/")[0])
    assert aliyun_success > 80
    assert tianjin_success < 30  # the Tianjin sanitizer signature
