"""Data-reassembly evasion strategies (§3.2, Table 1 rows 4-9).

Two out-of-order variants exploit *overlap preference* divergence:

- IP fragments: the GFW keeps the **first** of two same-offset fragments,
  so garbage is sent first and the real bytes second;
- TCP segments: the old GFW keeps the **latter** of two same-sequence
  out-of-order segments, so the real bytes go first and garbage second
  (endpoint stacks keep the first, i.e. the real data).

The in-order variant ("prefill") instead poisons the GFW's buffer with a
junk segment the server never accepts: once the GFW has consumed bytes
at a sequence position it ignores later data there (first-wins in-order
semantics shared by every implementation), so the real request is
invisible to it.
"""

from __future__ import annotations

from typing import List, Optional

from repro.netstack.fragment import make_fragment
from repro.netstack.packet import IPPacket, seq_add
from repro.netstack.wire import transport_bytes
from repro.core.strategy_base import ConnectionContext, EvasionStrategy
from repro.strategies.insertion import (
    Discrepancy,
    apply_discrepancy,
    junk_payload,
)


class OutOfOrderIPFragments(EvasionStrategy):
    """Garbage-then-real overlapping IP fragments (§3.2 case 1).

    The request packet is withheld and re-emitted as three fragments:

    1. a garbage fragment covering bytes ``[X, end)``  (GFW records it),
    2. the real fragment covering ``[X, end)``          (GFW discards it),
    3. the real fragment covering ``[0, X)``            (fills the gap).

    Endpoints that reassemble last-wins recover the real request; the
    GFW's first-wins reassembly keeps the garbage.  In practice (Table
    2) client-side middleboxes discard or pre-reassemble fragments, which
    is why the paper measured this strategy at a 1.6 % success rate.
    """

    strategy_id = "ooo-ip-fragments"
    description = "Out-of-order overlapping IP fragments."

    def __init__(self, ctx: ConnectionContext, min_payload: int = 32) -> None:
        super().__init__(ctx)
        self.min_payload = min_payload
        self.packets_fragmented = 0

    def on_outgoing(self, packet: IPPacket) -> List[IPPacket]:
        segment = packet.tcp
        if len(segment.payload) < self.min_payload:
            return [packet]
        # Every payload-bearing copy is fragmented — retransmissions
        # included, since an unfragmented retransmission would hand the
        # whole request to the censor in one piece.
        self.packets_fragmented += 1
        wire = transport_bytes(packet)
        header_len = len(wire) - len(segment.payload)
        # Split point: the first 8-byte boundary past the transport
        # header, so the garbage fragment covers (nearly) the entire
        # payload — a sensitive keyword anywhere in the request is hidden.
        split = (header_len + 7) // 8 * 8
        if split >= len(wire):
            return [packet]
        ident = self.ctx.rng.randrange(1, 0xFFFF)
        real_head = wire[:split]
        real_tail = wire[split:]
        garbage_tail = junk_payload(self.ctx, len(real_tail))
        frag_garbage = make_fragment(
            packet, garbage_tail, byte_offset=split, more_fragments=False,
            identification=ident,
        )
        frag_real_tail = make_fragment(
            packet, real_tail, byte_offset=split, more_fragments=False,
            identification=ident,
        )
        frag_real_head = make_fragment(
            packet, real_head, byte_offset=0, more_fragments=True,
            identification=ident,
        )
        for fragment in (frag_garbage, frag_real_tail, frag_real_head):
            fragment.meta["origin"] = "intang-fragment"
        return [frag_garbage, frag_real_tail, frag_real_head]


class OutOfOrderTCPSegments(EvasionStrategy):
    """Real-then-garbage overlapping out-of-order TCP segments (§3.2).

    The request is split at ``X``; the tail is sent twice out-of-order —
    real first, garbage second — then the head arrives in order:

    - endpoint stacks queue the *first* version of the tail (real),
    - the old GFW prefers the *latter* (garbage), reassembling a junk
      request.

    The evolved GFW switched to first-wins for queued segments, which is
    why Table 1 shows this strategy succeeding only ~31 % of the time.
    """

    strategy_id = "ooo-tcp-segments"
    description = "Out-of-order overlapping TCP segments."

    def __init__(self, ctx: ConnectionContext, min_payload: int = 32) -> None:
        super().__init__(ctx)
        self.min_payload = min_payload
        self._fired = False

    def on_outgoing(self, packet: IPPacket) -> List[IPPacket]:
        segment = packet.tcp
        if self._fired or len(segment.payload) < self.min_payload:
            return [packet]
        self._fired = True
        # Keep the head gap tiny (the HTTP method verb) so the garbage
        # tail covers the keyword wherever it sits in the request; the
        # gap is what keeps the duplicated tail *out of order*.
        split = min(4, len(segment.payload) // 2)
        head = segment.payload[:split]
        tail = segment.payload[split:]
        tail_seq = seq_add(segment.seq, split)
        real_tail = packet.copy()
        real_tail.tcp.seq = tail_seq
        real_tail.tcp.payload = tail
        garbage_tail = packet.copy()
        garbage_tail.tcp.seq = tail_seq
        garbage_tail.tcp.payload = junk_payload(self.ctx, len(tail))
        garbage_tail.meta["origin"] = "intang-insertion"
        head_packet = packet.copy()
        head_packet.tcp.payload = head
        return [real_tail, garbage_tail, head_packet]


class InOrderDataOverlap(EvasionStrategy):
    """Prefill the GFW's buffer with in-order junk (§3.2 case 2).

    Before the real request is released, an insertion packet with the
    *same sequence range* but junk payload is sent, carrying a
    discrepancy (low TTL, bad checksum, bad ACK, no flags, MD5, old
    timestamp) so the server drops it while the GFW consumes it.  Both
    the GFW and the server keep the first in-order data at a given
    sequence position, so the GFW permanently records junk.
    """

    strategy_id = "inorder-overlap"
    description = "In-order junk-data prefill of the GFW buffer."

    def __init__(
        self,
        ctx: ConnectionContext,
        discrepancy: Discrepancy = Discrepancy.LOW_TTL,
        copies: int = 2,
        min_payload: int = 1,
    ) -> None:
        super().__init__(ctx)
        self.discrepancy = discrepancy
        self.copies = copies
        self.min_payload = min_payload
        self._fired = False

    def on_outgoing(self, packet: IPPacket) -> List[IPPacket]:
        segment = packet.tcp
        if self._fired or len(segment.payload) < self.min_payload:
            return [packet]
        self._fired = True
        junk = self.ctx.make_packet(
            flags=segment.flags,
            seq=segment.seq,
            ack=segment.ack,
            payload=junk_payload(self.ctx, len(segment.payload)),
        )
        junk = apply_discrepancy(junk, self.discrepancy, self.ctx)
        self.ctx.send_insertion(junk, copies=self.copies)
        return [packet]


def first_data_packet(packet: IPPacket, min_payload: int = 1) -> Optional[IPPacket]:
    """Helper used by tests: the packet if it carries enough payload."""
    if packet.is_tcp and len(packet.tcp.payload) >= min_payload:
        return packet
    return None
