"""Evasion strategies: everything in Tables 1, 4, and 5 and Figs. 3-4.

Three generations of strategies are implemented:

1. the *existing* strategies measured in §3 (TCB creation with SYN, the
   data-reassembly family, TCB teardown with RST/RST-ACK/FIN), each
   parameterized by the insertion-packet discrepancy it rides on;
2. the *new* strategies of §5 (the desynchronization building block,
   Resync+Desync, TCB Reversal);
3. the *improved and combined* strategies of §7.1 that defeat old and
   evolved GFW models simultaneously (Fig. 3: TCB Creation +
   Resync/Desync; Fig. 4: TCB Teardown + TCB Reversal; plus the improved
   teardown and improved in-order overlap).

The :mod:`repro.strategies.registry` maps strategy identifiers (the row
labels of the paper's tables) to factories usable with INTANG.
"""

from repro.strategies.insertion import (
    Discrepancy,
    PREFERRED_DISCREPANCIES,
    apply_discrepancy,
    craft_insertion,
)
from repro.strategies.tcb_creation import TCBCreationWithSYN
from repro.strategies.data_reassembly import (
    InOrderDataOverlap,
    OutOfOrderIPFragments,
    OutOfOrderTCPSegments,
)
from repro.strategies.tcb_teardown import TCBTeardown
from repro.strategies.desync import send_desync_packet
from repro.strategies.resync_desync import ResyncDesync, TCBCreationResyncDesync
from repro.strategies.tcb_reversal import TCBReversal, TeardownReversal
from repro.strategies.improved import ImprovedInOrderOverlap, ImprovedTCBTeardown
from repro.strategies.registry import (
    STRATEGY_REGISTRY,
    TABLE1_ROWS,
    TABLE4_STRATEGIES,
    make_strategy_factory,
)

__all__ = [
    "Discrepancy",
    "PREFERRED_DISCREPANCIES",
    "apply_discrepancy",
    "craft_insertion",
    "TCBCreationWithSYN",
    "InOrderDataOverlap",
    "OutOfOrderIPFragments",
    "OutOfOrderTCPSegments",
    "TCBTeardown",
    "send_desync_packet",
    "ResyncDesync",
    "TCBCreationResyncDesync",
    "TCBReversal",
    "TeardownReversal",
    "ImprovedInOrderOverlap",
    "ImprovedTCBTeardown",
    "STRATEGY_REGISTRY",
    "TABLE1_ROWS",
    "TABLE4_STRATEGIES",
    "make_strategy_factory",
]
