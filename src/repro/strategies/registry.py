"""Strategy registry: table-row identifiers → strategy factories.

``TABLE1_ROWS`` lists the fifteen strategy/discrepancy combinations of
Table 1 in row order; ``TABLE4_STRATEGIES`` the four evaluated in Table
4.  :func:`make_strategy_factory` adapts a registry entry to the factory
signature :class:`~repro.core.framework.InterceptionFramework` expects.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.netstack.packet import ACK, FIN, RST
from repro.core.strategy_base import ConnectionContext, EvasionStrategy, NoStrategy
from repro.strategies.data_reassembly import (
    InOrderDataOverlap,
    OutOfOrderIPFragments,
    OutOfOrderTCPSegments,
)
from repro.strategies.improved import ImprovedInOrderOverlap, ImprovedTCBTeardown
from repro.strategies.insertion import Discrepancy
from repro.strategies.resync_desync import ResyncDesync, TCBCreationResyncDesync
from repro.strategies.tcb_creation import TCBCreationWithSYN
from repro.strategies.tcb_reversal import TCBReversal, TeardownReversal
from repro.strategies.tcb_teardown import TCBTeardown
from repro.strategies.west_chamber import WestChamber

StrategyFactory = Callable[[ConnectionContext], EvasionStrategy]


def _teardown(flags: int, discrepancy: Discrepancy) -> StrategyFactory:
    return lambda ctx: TCBTeardown(ctx, teardown_flags=flags, discrepancy=discrepancy)


def _inorder(discrepancy: Discrepancy) -> StrategyFactory:
    return lambda ctx: InOrderDataOverlap(ctx, discrepancy=discrepancy)


#: Every selectable strategy, keyed by a stable identifier.
STRATEGY_REGISTRY: Dict[str, StrategyFactory] = {
    "none": NoStrategy,
    # -- §3 existing strategies (Table 1) ---------------------------------
    "tcb-creation-syn/ttl": lambda ctx: TCBCreationWithSYN(
        ctx, discrepancy=Discrepancy.LOW_TTL
    ),
    "tcb-creation-syn/bad-checksum": lambda ctx: TCBCreationWithSYN(
        ctx, discrepancy=Discrepancy.BAD_CHECKSUM
    ),
    "ooo-ip-fragments": OutOfOrderIPFragments,
    "ooo-tcp-segments": OutOfOrderTCPSegments,
    "inorder-overlap/ttl": _inorder(Discrepancy.LOW_TTL),
    "inorder-overlap/bad-ack": _inorder(Discrepancy.BAD_ACK),
    "inorder-overlap/bad-checksum": _inorder(Discrepancy.BAD_CHECKSUM),
    "inorder-overlap/no-flag": _inorder(Discrepancy.NO_FLAG),
    "tcb-teardown-rst/ttl": _teardown(RST, Discrepancy.LOW_TTL),
    "tcb-teardown-rst/bad-checksum": _teardown(RST, Discrepancy.BAD_CHECKSUM),
    "tcb-teardown-rstack/ttl": _teardown(RST | ACK, Discrepancy.LOW_TTL),
    "tcb-teardown-rstack/bad-checksum": _teardown(RST | ACK, Discrepancy.BAD_CHECKSUM),
    "tcb-teardown-fin/ttl": _teardown(FIN, Discrepancy.LOW_TTL),
    "tcb-teardown-fin/bad-checksum": _teardown(FIN, Discrepancy.BAD_CHECKSUM),
    # -- historical baseline (§2.2/§9) -------------------------------------
    "west-chamber": WestChamber,
    # -- §5 new strategies --------------------------------------------------
    "resync-desync": ResyncDesync,
    "tcb-reversal": TCBReversal,
    # -- §7.1 improved / combined strategies (Table 4) -----------------------
    "improved-tcb-teardown": ImprovedTCBTeardown,
    "improved-inorder-overlap": ImprovedInOrderOverlap,
    "tcb-creation+resync-desync": TCBCreationResyncDesync,
    "tcb-teardown+tcb-reversal": TeardownReversal,
}

#: (row label, strategy id, discrepancy label) in Table 1 order.
TABLE1_ROWS: List[Tuple[str, str, str]] = [
    ("No Strategy", "none", "N/A"),
    ("TCB creation with SYN", "tcb-creation-syn/ttl", "TTL"),
    ("TCB creation with SYN", "tcb-creation-syn/bad-checksum", "Bad checksum"),
    ("Reassembly out-of-order data", "ooo-ip-fragments", "IP fragments"),
    ("Reassembly out-of-order data", "ooo-tcp-segments", "TCP segments"),
    ("Reassembly in-order data", "inorder-overlap/ttl", "TTL"),
    ("Reassembly in-order data", "inorder-overlap/bad-ack", "Bad ACK number"),
    ("Reassembly in-order data", "inorder-overlap/bad-checksum", "Bad checksum"),
    ("Reassembly in-order data", "inorder-overlap/no-flag", "No TCP flag"),
    ("TCB teardown with RST", "tcb-teardown-rst/ttl", "TTL"),
    ("TCB teardown with RST", "tcb-teardown-rst/bad-checksum", "Bad checksum"),
    ("TCB teardown with RST/ACK", "tcb-teardown-rstack/ttl", "TTL"),
    ("TCB teardown with RST/ACK", "tcb-teardown-rstack/bad-checksum", "Bad checksum"),
    ("TCB teardown with FIN", "tcb-teardown-fin/ttl", "TTL"),
    ("TCB teardown with FIN", "tcb-teardown-fin/bad-checksum", "Bad checksum"),
]

#: (row label, strategy id) in Table 4 order.
TABLE4_STRATEGIES: List[Tuple[str, str]] = [
    ("Improved TCB Teardown", "improved-tcb-teardown"),
    ("Improved In-order Data Overlapping", "improved-inorder-overlap"),
    ("TCB Creation + Resync/Desync", "tcb-creation+resync-desync"),
    ("TCB Teardown + TCB Reversal", "tcb-teardown+tcb-reversal"),
]

#: The order INTANG tries strategies for an unknown server (best
#: measured performers first, per Table 4's averages).
DEFAULT_PRIORITY: List[str] = [
    "improved-inorder-overlap",
    "improved-tcb-teardown",
    "tcb-teardown+tcb-reversal",
    "tcb-creation+resync-desync",
]


def make_strategy_factory(strategy_id: str) -> StrategyFactory:
    """Look up a registry entry (raises KeyError on unknown ids)."""
    try:
        return STRATEGY_REGISTRY[strategy_id]
    except KeyError:
        raise KeyError(
            f"unknown strategy {strategy_id!r}; known: {sorted(STRATEGY_REGISTRY)}"
        ) from None
