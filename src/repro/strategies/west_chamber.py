"""The West Chamber Project baseline (§1, §2.2, §9).

"The West Chamber Project is a censorship-circumvention tool that
implemented Ptacek et al.'s theory.  However, it just uses two kinds of
crafted packets to teardown the TCB on the GFW from both directions,
and has now become ineffective."

The 2010 tool's recipe, immediately after the 3-way handshake: two
kinds of crafted FIN teardown packets (FIN and FIN/ACK) that pretend
the connection is closing, each crafted so the real endpoints ignore
them (low TTL here).  FIN-based teardown was the tool's signature move:
against the GFW model of its era it sufficed (prior-assumption 3 says
any of RST/RST-ACK/FIN tears the TCB down) while being the gentlest
packet to forge — a stray FIN cannot reset anything if it leaks.

That very choice is why the tool died: the evolved model simply ignores
FINs (§4, prior-assumption-3 failure), and Table 2 shows several
provider middleboxes eat FIN packets outright.  The paper found none of
its strategies effective (§1); the measurement harness reproduces that
verdict — and shows the recipe still beating a 2010-era censor.
"""

from __future__ import annotations

from typing import List

from repro.netstack.packet import ACK, FIN, IPPacket
from repro.core.strategy_base import ConnectionContext, EvasionStrategy
from repro.strategies.insertion import Discrepancy, apply_discrepancy


class WestChamber(EvasionStrategy):
    """FIN-flavoured TCB teardown, as the 2010 tool did."""

    strategy_id = "west-chamber"
    description = "West Chamber Project: FIN/FIN-ACK TCB teardown (2010 baseline)."

    def __init__(self, ctx: ConnectionContext, copies: int = 2) -> None:
        super().__init__(ctx)
        self.copies = copies
        self._fired = False

    def on_outgoing(self, packet: IPPacket) -> List[IPPacket]:
        segment = packet.tcp
        ready = (
            not self._fired
            and self.ctx.saw_synack
            and segment.has_ack
            and not segment.is_syn
            and not segment.is_rst
        )
        if not ready:
            return [packet]
        self._fired = True
        released = [packet]
        for flags in (FIN, FIN | ACK):
            teardown = self.ctx.make_packet(
                flags=flags, seq=self.ctx.snd_nxt, ack=self.ctx.rcv_nxt
            )
            teardown = apply_discrepancy(teardown, Discrepancy.LOW_TTL, self.ctx)
            self.ctx.queue_insertion(released, teardown, copies=self.copies)
        return released
