"""Resync + Desync (§5.2) and the Fig. 3 combination.

**Resync+Desync**: after the 3-way handshake the client sends a SYN
insertion packet — the device has now seen multiple client-side SYNs and
enters the resynchronization state (NB2a) — followed by the
out-of-window desynchronization packet, which the device adopts as its
new anchor.  The real request is out-of-window from its perspective.

The SYN insertion cannot be sent *before* the SYN/ACK arrives: the
device would simply be resynchronized by the SYN/ACK's ACK number (§5.2).
Its sequence number is kept outside the server's receive window (older
Linux would otherwise reset the connection) and it is TTL-limited as a
second line of defence.

**TCB Creation + Resync/Desync** (Fig. 3) adds a fake SYN *before* the
legitimate handshake: that false TCB defeats the old GFW model, while
the second fake SYN + desync packet defeats the evolved model.
"""

from __future__ import annotations

from typing import List

from repro.netstack.packet import IPPacket, SYN, seq_add
from repro.core.strategy_base import ConnectionContext, EvasionStrategy
from repro.strategies.insertion import Discrepancy, apply_discrepancy
from repro.strategies.desync import send_desync_packet
from repro.strategies.tcb_creation import FAKE_ISN_OFFSET


class ResyncDesync(EvasionStrategy):
    """Post-handshake fake SYN, then the desynchronization packet."""

    strategy_id = "resync-desync"
    description = "Force RESYNC with a late SYN, then desynchronize."

    def __init__(self, ctx: ConnectionContext, copies: int = 3) -> None:
        super().__init__(ctx)
        self.copies = copies
        self._fired = False

    def on_outgoing(self, packet: IPPacket) -> List[IPPacket]:
        segment = packet.tcp
        ready = (
            not self._fired
            and self.ctx.saw_synack
            and segment.has_ack
            and not segment.is_syn
            and not segment.is_rst
        )
        if not ready:
            return [packet]
        self._fired = True
        released = [packet]
        self._inject_resync_desync(released)
        return released

    def _inject_resync_desync(self, released: List[IPPacket]) -> None:
        fake_syn = self.ctx.make_packet(
            flags=SYN,
            seq=self.ctx.out_of_window_seq(0x30000000),
            ack=0,
        )
        fake_syn = apply_discrepancy(fake_syn, Discrepancy.LOW_TTL, self.ctx)
        self.ctx.queue_insertion(released, fake_syn, copies=self.copies)
        send_desync_packet(self.ctx, released, copies=2)


class TCBCreationResyncDesync(ResyncDesync):
    """Fig. 3: fake SYN before the handshake + Resync/Desync after it.

    "We will send two SYN insertion packets (both with wrong sequence
    numbers), one before the legitimate 3-way handshake and one after,
    and followed by a desynchronization packet and then the HTTP
    request."
    """

    strategy_id = "tcb-creation+resync-desync"
    description = "Fig. 3 combination: defeats old and evolved GFW models."

    def __init__(self, ctx: ConnectionContext, copies: int = 3) -> None:
        super().__init__(ctx, copies=copies)
        self._pre_syn_sent = False

    def on_outgoing(self, packet: IPPacket) -> List[IPPacket]:
        segment = packet.tcp
        if segment.is_pure_syn and not self._pre_syn_sent:
            self._pre_syn_sent = True
            fake_syn = self.ctx.make_packet(
                flags=SYN,
                seq=seq_add(segment.seq, FAKE_ISN_OFFSET),
                ack=0,
            )
            fake_syn = apply_discrepancy(fake_syn, Discrepancy.LOW_TTL, self.ctx)
            self.ctx.send_insertion(fake_syn, copies=self.copies)
            return [packet]
        return super().on_outgoing(packet)
