"""TCB teardown with forged RST / RST-ACK / FIN (§3.2, Table 1 rows 10-15).

After the real handshake completes, the client sends a teardown insertion
packet: the GFW (liberal about checksums, MD5 options, and sequence
details) deletes its TCB, while the server never sees — or ignores — the
forgery.  Subsequent data flows with no shadow TCB to match it.

Measured reality (§3.4/§4): FIN no longer tears the evolved GFW down at
all, and RST/RST-ACK sometimes push it into the resynchronization state
instead (NB3), which re-anchors on the real request — the ~24 % Failure
2 rate of Table 1.  The improved variant appends a desynchronization
packet to poison that re-anchoring (see
:class:`repro.strategies.improved.ImprovedTCBTeardown`).
"""

from __future__ import annotations

from typing import List

from repro.netstack.packet import ACK, FIN, IPPacket, RST
from repro.core.strategy_base import ConnectionContext, EvasionStrategy
from repro.strategies.insertion import Discrepancy, apply_discrepancy


class TCBTeardown(EvasionStrategy):
    """Insert a teardown control packet right after the handshake."""

    strategy_id = "tcb-teardown"
    description = "Forged RST/RST-ACK/FIN teardown of the GFW's TCB."

    def __init__(
        self,
        ctx: ConnectionContext,
        teardown_flags: int = RST,
        discrepancy: Discrepancy = Discrepancy.LOW_TTL,
        copies: int = 3,
    ) -> None:
        super().__init__(ctx)
        if teardown_flags not in (RST, RST | ACK, FIN, FIN | ACK):
            raise ValueError("teardown packet must be RST, RST/ACK, or FIN")
        self.teardown_flags = teardown_flags
        self.discrepancy = discrepancy
        self.copies = copies
        self._fired = False

    @property
    def flavor(self) -> str:
        if self.teardown_flags == RST:
            return "rst"
        if self.teardown_flags == (RST | ACK):
            return "rst-ack"
        return "fin"

    def on_outgoing(self, packet: IPPacket) -> List[IPPacket]:
        segment = packet.tcp
        ready = (
            not self._fired
            and self.ctx.saw_synack
            and segment.has_ack
            and not segment.is_syn
            and not segment.is_rst
        )
        if not ready:
            return [packet]
        self._fired = True
        teardown = self.ctx.make_packet(
            flags=self.teardown_flags,
            seq=self.ctx.snd_nxt,
            ack=self.ctx.rcv_nxt,
        )
        teardown = apply_discrepancy(teardown, self.discrepancy, self.ctx)
        # Release the handshake ACK first so the GFW sees the connection
        # complete, then the teardown, then (later) the request.
        released = [packet]
        self.ctx.queue_insertion(released, teardown, copies=self.copies)
        return released
