"""TCB creation with a fake SYN (§3.2, Table 1 rows 2-3).

"The client can send a SYN insertion packet with a fake/wrong sequence
number to create a false TCB on the GFW, and then build the real
connection.  The GFW will ignore the real connection because of its
'unexpected' sequence number."

Against the *old* GFW model this works: the false TCB anchors at the
fake ISN and the real request is out-of-window.  Against the *evolved*
model it fails (the paper measured ~89 % Failure 2): the second (real)
SYN pushes the device into the resynchronization state, and the real
SYN/ACK resynchronizes it to the true sequence numbers.
"""

from __future__ import annotations

from typing import List

from repro.netstack.packet import IPPacket, SYN, seq_add
from repro.core.strategy_base import ConnectionContext, EvasionStrategy
from repro.strategies.insertion import Discrepancy, apply_discrepancy

#: Offset of the fake ISN from the real one: far enough that the real
#: stream is out-of-window for a TCB anchored on the fake SYN, and that
#: the fake SYN is outside the server's expected window if it leaks
#: through (see §5.2's caution about older Linux).
FAKE_ISN_OFFSET = 0x20000000


class TCBCreationWithSYN(EvasionStrategy):
    """Send a wrong-ISN SYN insertion packet before the real SYN."""

    strategy_id = "tcb-creation-syn"
    description = "Fake-SYN TCB creation (Khattak-era strategy)."

    def __init__(
        self,
        ctx: ConnectionContext,
        discrepancy: Discrepancy = Discrepancy.LOW_TTL,
        copies: int = 3,
    ) -> None:
        super().__init__(ctx)
        if discrepancy not in (Discrepancy.LOW_TTL, Discrepancy.BAD_CHECKSUM):
            raise ValueError("SYN insertion packets support TTL/bad-checksum only")
        self.discrepancy = discrepancy
        self.copies = copies
        self._fired = False

    def on_outgoing(self, packet: IPPacket) -> List[IPPacket]:
        segment = packet.tcp
        if not segment.is_pure_syn or self._fired:
            return [packet]
        self._fired = True
        fake_isn = seq_add(segment.seq, FAKE_ISN_OFFSET)
        fake_syn = self.ctx.make_packet(flags=SYN, seq=fake_isn, ack=0)
        fake_syn = apply_discrepancy(fake_syn, self.discrepancy, self.ctx)
        self.ctx.send_insertion(fake_syn, copies=self.copies)
        return [packet]
