"""Insertion-packet crafting: the discrepancies of Tables 3 and 5.

An *insertion packet* is crafted so the GFW accepts and processes it
while the server ignores or never receives it (§3.2).  Each member of
:class:`Discrepancy` is one ignore-path the §5.3 analysis confirmed;
:data:`PREFERRED_DISCREPANCIES` encodes Table 5 — which discrepancies
are usable for which packet type:

| Packet type | TTL | MD5 | Bad ACK | Timestamp |
|-------------|-----|-----|---------|-----------|
| SYN         |  ✓  |     |         |           |
| RST         |  ✓  |  ✓  |         |           |
| Data        |  ✓  |  ✓  |    ✓    |     ✓     |

(A SYN can only ride on TTL because servers do not check MD5/ACK fields
before a connection exists in a way the GFW diverges on; RSTs with bad
ACK numbers or old timestamps would still reset an ESTABLISHED server —
§5.3 "effective control packets cannot be crafted with these".)
"""

from __future__ import annotations

import enum
from typing import Dict, Optional, Tuple

from repro.netstack.options import MD5SignatureOption, TimestampOption
from repro.netstack.packet import ACK, IPPacket, RST, seq_add
from repro.netstack.wire import serialize_tcp
from repro.core.strategy_base import ConnectionContext


class Discrepancy(enum.Enum):
    """One server-ignores / GFW-accepts divergence (Table 3)."""

    #: TTL large enough to pass the GFW's hop, too small to reach the server.
    LOW_TTL = "ttl"
    #: Deliberately wrong transport checksum (server validates, GFW not).
    BAD_CHECKSUM = "bad-checksum"
    #: ACK number outside the server's acceptable window (RFC 5961 §5).
    BAD_ACK = "bad-ack"
    #: No TCP flags at all (modern servers require ACK on data).
    NO_FLAG = "no-flag"
    #: Unsolicited RFC 2385 MD5 signature option.
    MD5_OPTION = "md5"
    #: Timestamp older than the peer's ts_recent (PAWS failure).
    OLD_TIMESTAMP = "old-timestamp"
    #: RST/ACK whose ACK number mismatches (ignored in SYN_RECV).
    RST_BAD_ACK = "rst-bad-ack"
    #: TCP header length below 20 bytes.
    SHORT_HEADER = "short-header"
    #: IP total length larger than the actual packet.
    OVERSIZE_IP_LENGTH = "oversize-ip-length"


#: Table 5: which discrepancies each insertion-packet type may use.
PREFERRED_DISCREPANCIES: Dict[str, Tuple[Discrepancy, ...]] = {
    "SYN": (Discrepancy.LOW_TTL,),
    "RST": (Discrepancy.LOW_TTL, Discrepancy.MD5_OPTION),
    "DATA": (
        Discrepancy.LOW_TTL,
        Discrepancy.MD5_OPTION,
        Discrepancy.BAD_ACK,
        Discrepancy.OLD_TIMESTAMP,
    ),
}

#: Discrepancies that client-side middleboxes are never seen to act on
#: (§5.3 cross-validation): safe choices for the improved strategies.
MIDDLEBOX_SAFE: Tuple[Discrepancy, ...] = (
    Discrepancy.MD5_OPTION,
    Discrepancy.BAD_ACK,
    Discrepancy.OLD_TIMESTAMP,
)


def packet_type_of(packet: IPPacket) -> str:
    segment = packet.tcp
    if segment.is_syn:
        return "SYN"
    if segment.is_rst:
        return "RST"
    return "DATA"


def apply_discrepancy(
    packet: IPPacket, discrepancy: Discrepancy, ctx: ConnectionContext
) -> IPPacket:
    """Return a copy of ``packet`` carrying the given discrepancy.

    The returned packet is what goes on the wire; the original is not
    modified.  Mutually exclusive discrepancies are not enforced here —
    callers apply exactly one per insertion packet so each failure mode
    stays attributable (§5.3: "each ignore path will lead to a unique
    reason").
    """
    crafted = packet.copy()
    segment = crafted.tcp
    if discrepancy is Discrepancy.LOW_TTL:
        crafted.ttl = ctx.insertion_ttl
    elif discrepancy is Discrepancy.BAD_CHECKSUM:
        correct = _correct_checksum(crafted)
        segment.checksum_override = (correct + 1) & 0xFFFF
    elif discrepancy is Discrepancy.BAD_ACK:
        segment.flags |= ACK
        segment.ack = seq_add(segment.ack or ctx.rcv_nxt, 0x38000000)
    elif discrepancy is Discrepancy.NO_FLAG:
        segment.flags = 0
        segment.ack = 0
    elif discrepancy is Discrepancy.MD5_OPTION:
        segment.options = list(segment.options) + [MD5SignatureOption()]
    elif discrepancy is Discrepancy.OLD_TIMESTAMP:
        old = ((ctx.last_tsval_sent or 1_000_000) - 5_000_000) & 0xFFFFFFFF
        segment.options = [
            option for option in segment.options if not isinstance(option, TimestampOption)
        ] + [TimestampOption(tsval=old, tsecr=0)]
    elif discrepancy is Discrepancy.RST_BAD_ACK:
        segment.flags = RST | ACK
        segment.ack = seq_add(segment.ack or ctx.rcv_nxt, 0x38000000)
    elif discrepancy is Discrepancy.SHORT_HEADER:
        segment.data_offset_override = 4
    elif discrepancy is Discrepancy.OVERSIZE_IP_LENGTH:
        crafted.total_length_override = 20 + _transport_len(crafted) + 64
    else:  # pragma: no cover - exhaustive enum
        raise ValueError(f"unknown discrepancy {discrepancy}")
    crafted.meta["discrepancy"] = discrepancy.value
    return crafted


def craft_insertion(
    ctx: ConnectionContext,
    flags: int,
    discrepancy: Discrepancy,
    seq: Optional[int] = None,
    ack: Optional[int] = None,
    payload: bytes = b"",
) -> IPPacket:
    """Build an insertion packet on the context's connection and apply
    one discrepancy, validating it against the Table 5 preference map."""
    base = ctx.make_packet(flags=flags, seq=seq, ack=ack, payload=payload)
    kind = packet_type_of(base)
    allowed = PREFERRED_DISCREPANCIES.get(kind, tuple(Discrepancy))
    if discrepancy not in allowed and discrepancy not in (
        Discrepancy.BAD_CHECKSUM,
        Discrepancy.NO_FLAG,
        Discrepancy.RST_BAD_ACK,
        Discrepancy.SHORT_HEADER,
        Discrepancy.OVERSIZE_IP_LENGTH,
    ):
        raise ValueError(
            f"discrepancy {discrepancy.value} is not usable on {kind} packets"
        )
    return apply_discrepancy(base, discrepancy, ctx)


def _correct_checksum(packet: IPPacket) -> int:
    pristine = packet.tcp.copy(checksum_override=None)
    wire = serialize_tcp(pristine, packet.src, packet.dst)
    return int.from_bytes(wire[16:18], "big")


def _transport_len(packet: IPPacket) -> int:
    return len(serialize_tcp(packet.tcp, packet.src, packet.dst))


def junk_payload(ctx: ConnectionContext, length: int) -> bytes:
    """Random printable garbage of ``length`` bytes (never matches rules)."""
    alphabet = b"abcdefghijklmnopqrstuvwxyz0123456789"
    return bytes(ctx.rng.choice(alphabet) for _ in range(length))
