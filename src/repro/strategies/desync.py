"""The desynchronization building block (§5.1).

"When we expect that the GFW is in the re-synchronization state (this
can be forced), we send an insertion data packet with a sequence number
that is out of window.  Once the GFW synchronizes with the sequence
number in this insertion packet, subsequent legitimate packets of the
connection will be perceived to have sequence numbers that are out of
window, and thus be ignored by the GFW. … Note that the insertion data
packet is ignored by the server since it contains an out-of-window
sequence number."

This is a *function*, not a strategy: the new strategies of §5.2 and the
improved strategies of §7.1 all call it after coercing the GFW into (or
suspecting it might be in) the RESYNC state.
"""

from __future__ import annotations

from typing import List, Optional

from repro.netstack.packet import ACK, IPPacket
from repro.core.strategy_base import ConnectionContext
from repro.strategies.insertion import junk_payload

#: Distance of the desync packet's sequence number from the live stream:
#: far outside any plausible receive window on either side.
DESYNC_SEQ_DISTANCE = 0x40000000


def make_desync_packet(ctx: ConnectionContext, payload_len: int = 1) -> IPPacket:
    """Build the out-of-window junk data packet.

    No field discrepancy is needed: the out-of-window sequence number
    alone makes every real server ignore it (with a duplicate ACK),
    while a GFW in RESYNC adopts it wholesale.  That also means no
    middlebox has a reason to drop it — the packet is perfectly
    well-formed.
    """
    packet = ctx.make_packet(
        flags=ACK,
        seq=ctx.out_of_window_seq(DESYNC_SEQ_DISTANCE),
        ack=ctx.rcv_nxt,
        payload=junk_payload(ctx, payload_len),
    )
    packet.meta["desync"] = True
    return packet


def send_desync_packet(
    ctx: ConnectionContext,
    released: Optional[List[IPPacket]] = None,
    copies: int = 2,
    payload_len: int = 1,
) -> IPPacket:
    """Emit the desync packet, either immediately or after ``released``."""
    packet = make_desync_packet(ctx, payload_len)
    if released is None:
        ctx.send_insertion(packet, copies=copies)
    else:
        ctx.queue_insertion(released, packet, copies=copies)
    return packet
