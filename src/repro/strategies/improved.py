"""The improved legacy strategies evaluated in Table 4 (§7.1).

**Improved TCB Teardown**: "We make the TCB Teardown with RST strategy
more robust by integrating within it the sending of a
'desynchronization packet' … right after the RST packet(s) and before
the legitimate HTTP request, to address the case wherein the GFW enters
the 'resynchronization state' due to the RST packets."  The RSTs
themselves ride the middlebox-safe insertion vehicles of Table 5 (MD5
option first, TTL as backup).

**Improved In-order Data Overlapping**: same prefill idea as the §3
strategy, but "using more carefully chosen insertion packets to reduce
potential interference from middleboxes, or because of hitting the
server" — i.e. the junk data packet uses the MD5 option and an old
timestamp rather than a bad checksum or missing flags, which Table 2
shows some client-side middleboxes sanitize.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.netstack.packet import IPPacket, RST
from repro.core.strategy_base import ConnectionContext, EvasionStrategy
from repro.strategies.desync import send_desync_packet
from repro.strategies.insertion import (
    Discrepancy,
    apply_discrepancy,
    junk_payload,
)


class ImprovedTCBTeardown(EvasionStrategy):
    """RST teardown on safe vehicles + desync packet (Table 4 row 1)."""

    strategy_id = "improved-tcb-teardown"
    description = "RST teardown (MD5/TTL) hardened with a desync packet."

    #: Table 5 lists TTL and MD5 for RSTs; the MD5 vehicle alone already
    #: reaches the GFW on every path and is never middlebox-dropped nor
    #: server-effective (except pre-RFC2385 kernels), so the improved
    #: strategy defaults to it and leaves TTL as an opt-in fallback.
    def __init__(
        self,
        ctx: ConnectionContext,
        discrepancies: Sequence[Discrepancy] = (Discrepancy.MD5_OPTION,),
        copies: int = 2,
    ) -> None:
        super().__init__(ctx)
        self.discrepancies = tuple(discrepancies)
        self.copies = copies
        self._fired = False

    def on_outgoing(self, packet: IPPacket) -> List[IPPacket]:
        segment = packet.tcp
        ready = (
            not self._fired
            and self.ctx.saw_synack
            and segment.has_ack
            and not segment.is_syn
            and not segment.is_rst
        )
        if not ready:
            return [packet]
        self._fired = True
        released = [packet]
        for discrepancy in self.discrepancies:
            teardown = self.ctx.make_packet(
                flags=RST, seq=self.ctx.snd_nxt, ack=0
            )
            teardown = apply_discrepancy(teardown, discrepancy, self.ctx)
            self.ctx.queue_insertion(released, teardown, copies=self.copies)
        # The RSTs may have left an evolved device in RESYNC (NB3):
        # poison the re-anchoring before the real request goes out.
        send_desync_packet(self.ctx, released, copies=2)
        return released


class ImprovedInOrderOverlap(EvasionStrategy):
    """In-order prefill on middlebox-safe vehicles (Table 4 row 2)."""

    strategy_id = "improved-inorder-overlap"
    description = "Junk prefill using MD5-option and old-timestamp packets."

    def __init__(
        self,
        ctx: ConnectionContext,
        discrepancies: Sequence[Discrepancy] = (
            Discrepancy.MD5_OPTION,
            Discrepancy.OLD_TIMESTAMP,
        ),
        copies: int = 2,
        min_payload: int = 1,
    ) -> None:
        super().__init__(ctx)
        self.discrepancies = tuple(discrepancies)
        self.copies = copies
        self.min_payload = min_payload
        self._fired = False

    def on_outgoing(self, packet: IPPacket) -> List[IPPacket]:
        segment = packet.tcp
        if self._fired or len(segment.payload) < self.min_payload:
            return [packet]
        self._fired = True
        for discrepancy in self.discrepancies:
            junk = self.ctx.make_packet(
                flags=segment.flags,
                seq=segment.seq,
                ack=segment.ack,
                payload=junk_payload(self.ctx, len(segment.payload)),
            )
            junk = apply_discrepancy(junk, discrepancy, self.ctx)
            self.ctx.send_insertion(junk, copies=self.copies)
        return [packet]
