"""TCB Reversal (§5.2) and the Fig. 4 combination.

**TCB Reversal**: before the real handshake the client sends a SYN/ACK
insertion packet.  An evolved GFW device — which creates TCBs from bare
SYN/ACKs assuming their *source* is the server (NB1) — builds a TCB
whose monitored direction points at the real server's responses.  Since
HTTP-response censorship is discontinued, the actual request sails by
uninspected.  The insertion SYN/ACK must be TTL-limited: if it reached
the server, the server's RST-to-stray-packet reply would tear the
reversed TCB straight back down.

**TCB Teardown + TCB Reversal** (Fig. 4): the reversal only fools the
evolved model, so a classic RST teardown after the handshake is added to
delete the *old* model's (correctly oriented) TCB.
"""

from __future__ import annotations

from typing import List

from repro.netstack.packet import ACK, IPPacket, RST, SYN
from repro.core.strategy_base import ConnectionContext, EvasionStrategy
from repro.strategies.insertion import Discrepancy, apply_discrepancy


class TCBReversal(EvasionStrategy):
    """Send a fake SYN/ACK before the real SYN to reverse the GFW's TCB."""

    strategy_id = "tcb-reversal"
    description = "Pre-handshake SYN/ACK insertion reverses the GFW's view."

    def __init__(self, ctx: ConnectionContext, copies: int = 3) -> None:
        super().__init__(ctx)
        self.copies = copies
        self._fired = False

    def on_outgoing(self, packet: IPPacket) -> List[IPPacket]:
        segment = packet.tcp
        if not segment.is_pure_syn or self._fired:
            return [packet]
        self._fired = True
        fake_synack = self.ctx.make_packet(
            flags=SYN | ACK,
            seq=self.ctx.rng.randrange(0, 2**32),
            ack=self.ctx.rng.randrange(0, 2**32),
        )
        fake_synack = apply_discrepancy(fake_synack, Discrepancy.LOW_TTL, self.ctx)
        self.ctx.send_insertion(fake_synack, copies=self.copies)
        return [packet]


class TeardownReversal(TCBReversal):
    """Fig. 4: TCB Reversal for the evolved model + RST teardown for the old.

    "We first send a fake SYN/ACK packet from the client to the server to
    create a false TCB on the evolved GFW device.  Next, we establish the
    legitimate 3-way handshake … Then we send a RST insertion packet to
    teardown the TCB on the old GFW model, followed by the HTTP request."
    """

    strategy_id = "tcb-teardown+tcb-reversal"
    description = "Fig. 4 combination: defeats old and evolved GFW models."

    def __init__(
        self,
        ctx: ConnectionContext,
        copies: int = 3,
        rst_discrepancies: tuple = (Discrepancy.MD5_OPTION,),
    ) -> None:
        super().__init__(ctx, copies=copies)
        self.rst_discrepancies = rst_discrepancies
        self._teardown_fired = False

    def on_outgoing(self, packet: IPPacket) -> List[IPPacket]:
        released = super().on_outgoing(packet)
        segment = packet.tcp
        ready = (
            not self._teardown_fired
            and self.ctx.saw_synack
            and segment.has_ack
            and not segment.is_syn
            and not segment.is_rst
        )
        if not ready:
            return released
        self._teardown_fired = True
        for discrepancy in self.rst_discrepancies:
            teardown = self.ctx.make_packet(
                flags=RST, seq=self.ctx.snd_nxt, ack=0
            )
            teardown = apply_discrepancy(teardown, discrepancy, self.ctx)
            self.ctx.queue_insertion(released, teardown, copies=1)
        return released
