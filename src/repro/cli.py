"""Command-line interface: regenerate any paper artifact from a shell.

::

    python -m repro list                    # what can be regenerated
    python -m repro table1 --sites 20       # Table 1 at chosen scale
    python -m repro table2 .. table6
    python -m repro matrix                  # strategy × GFW-generation
    python -m repro probe [--model old]     # GFW responsiveness probe
    python -m repro trial --strategy tcb-teardown+tcb-reversal
    python -m repro ladder --figure 3       # Fig. 3/4 packet ladders
    python -m repro perf profile --strategy tcb-teardown-rst/ttl \
        --out profile.pstats                # cProfile one cell
    python -m repro telemetry diagnose --strategy resync-desync
    python -m repro telemetry metrics --json # registry snapshot of a sweep
    python -m repro obs trace --shards 2    # Chrome/Perfetto span trace
    python -m repro obs export --latency    # OpenMetrics + p50/p90/p99
    python -m repro obs flight --out dumps/ # anomaly flight-recorder dumps
    python -m repro obs report --format md  # perf trajectory across runs
    python -m repro conformance run         # full differential matrix
    python -m repro conformance diff        # show drift vs tests/golden/
    python -m repro conformance bless       # accept new golden artifacts
    python -m repro inconsistency run       # Ensafi-style vantage x hour sweep

Everything prints to stdout; sizes are small by default so each command
finishes in seconds.
"""

from __future__ import annotations

import argparse
import random
import sys
from typing import List, Optional


def _cmd_list(args: argparse.Namespace) -> int:
    from repro.strategies.registry import STRATEGY_REGISTRY

    print("Artifacts: table1 table2 table3 table4 table5 table6 matrix "
          "probe trial ladder conformance")
    print("\nStrategies:")
    for strategy_id in sorted(STRATEGY_REGISTRY):
        print(f"  {strategy_id}")
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    from repro.experiments import (
        CHINA_VANTAGE_POINTS,
        DEFAULT_CALIBRATION,
        outside_china_catalog,
        run_strategy_cell,
    )
    from repro.experiments.tables import format_table1
    from repro.strategies.registry import TABLE1_ROWS

    sites = outside_china_catalog(count=args.sites)
    results = []
    for label, strategy_id, discrepancy in TABLE1_ROWS:
        with_kw = run_strategy_cell(
            strategy_id, CHINA_VANTAGE_POINTS, sites, DEFAULT_CALIBRATION,
            repeats=args.repeats, seed=args.seed, keyword=True,
            shards=args.shards,
        )
        without_kw = run_strategy_cell(
            strategy_id, CHINA_VANTAGE_POINTS, sites, DEFAULT_CALIBRATION,
            repeats=args.repeats, seed=args.seed + 1, keyword=False,
            shards=args.shards,
        )
        results.append((label, discrepancy, with_kw, without_kw))
        print(".", end="", flush=True, file=sys.stderr)
    print(file=sys.stderr)
    print(format_table1(results))
    return 0


def _cmd_table2(args: argparse.Namespace) -> int:
    from repro.experiments.middlebox_probe import probe_all
    from repro.experiments.tables import format_table2
    from repro.experiments.vantage import CHINA_VANTAGE_POINTS

    print(format_table2(probe_all(CHINA_VANTAGE_POINTS)))
    return 0


def _cmd_table3(args: argparse.Namespace) -> int:
    from repro.analysis import generate_table3
    from repro.experiments.tables import format_table3

    rows = generate_table3()
    print(format_table3([row.as_tuple() for row in rows]))
    return 0


def _cmd_table4(args: argparse.Namespace) -> int:
    from repro.experiments import (
        CHINA_VANTAGE_POINTS,
        DEFAULT_CALIBRATION,
        outside_china_catalog,
        run_table4_row,
    )
    from repro.experiments.tables import format_table4
    from repro.strategies.registry import TABLE4_STRATEGIES

    sites = outside_china_catalog(count=args.sites)
    rows = []
    for label, strategy_id in TABLE4_STRATEGIES:
        rows.append((
            label,
            run_table4_row(strategy_id, CHINA_VANTAGE_POINTS, sites,
                           DEFAULT_CALIBRATION, repeats=args.repeats,
                           seed=args.seed, shards=args.shards),
        ))
        print(".", end="", flush=True, file=sys.stderr)
    rows.append((
        "INTANG Performance",
        run_table4_row(None, CHINA_VANTAGE_POINTS, sites, DEFAULT_CALIBRATION,
                       repeats=max(4, args.repeats), seed=args.seed,
                       adaptive=True, shards=args.shards),
    ))
    print(file=sys.stderr)
    print(format_table4(rows, title="Table 4 (inside China)"))
    return 0


def _cmd_table5(args: argparse.Namespace) -> int:
    from repro.analysis import derive_table5
    from repro.experiments.tables import format_table5

    print(format_table5(derive_table5()))
    return 0


def _cmd_table6(args: argparse.Namespace) -> int:
    from repro.experiments import (
        CHINA_VANTAGE_POINTS,
        DEFAULT_CALIBRATION,
        DYN_RESOLVERS,
        run_dns_trial,
    )
    from repro.experiments.tables import format_table6

    rows = []
    for resolver in DYN_RESOLVERS:
        per_vantage = {}
        for vantage in CHINA_VANTAGE_POINTS:
            successes = sum(
                run_dns_trial(vantage, resolver,
                              calibration=DEFAULT_CALIBRATION, seed=s).success
                for s in range(args.queries)
            )
            per_vantage[vantage.name] = successes / args.queries
        except_tj = [r for n, r in per_vantage.items() if n != "unicom-tianjin"]
        rows.append((resolver.name, resolver.ip,
                     sum(except_tj) / len(except_tj),
                     sum(per_vantage.values()) / len(per_vantage)))
    print(format_table6(rows))
    return 0


def _cmd_matrix(args: argparse.Namespace) -> int:
    import os

    sys.path.insert(
        0, os.path.join(os.path.dirname(__file__), "..", "..", "tests")
    )
    from repro.core.intang import INTANG
    from repro.experiments.tables import render_table
    from repro.gfw import evolved_config, old_config
    from repro.strategies.registry import STRATEGY_REGISTRY

    try:
        from helpers import fetch, mini_topology
    except ImportError:
        print("matrix requires the repository checkout (tests/helpers.py)",
              file=sys.stderr)
        return 2

    rows = []
    for strategy_id in sorted(STRATEGY_REGISTRY):
        cells = [strategy_id]
        for model_config in (old_config, evolved_config):
            world = mini_topology(gfw_config=model_config(), seed=args.seed)
            INTANG(host=world.client, tcp_host=world.client_tcp,
                   clock=world.clock, network=world.network,
                   fixed_strategy=strategy_id,
                   rng=random.Random(args.seed + 7))
            exchange = fetch(world)
            if world.gfw.detections:
                cells.append("caught")
            elif exchange.got_response:
                cells.append("EVADES")
            else:
                cells.append("broken")
        rows.append(cells)
    print(render_table(["Strategy", "old GFW", "evolved GFW"], rows))
    return 0


def _cmd_probe(args: argparse.Namespace) -> int:
    import os

    sys.path.insert(
        0, os.path.join(os.path.dirname(__file__), "..", "..", "tests")
    )
    from repro.core.responsiveness import ResponsivenessProbe
    from repro.gfw import evolved_config, old_config

    try:
        from helpers import SERVER_IP, mini_topology
    except ImportError:
        print("probe requires the repository checkout (tests/helpers.py)",
              file=sys.stderr)
        return 2

    config = old_config(reset_type=2) if args.model == "old" else evolved_config()
    world = mini_topology(gfw_config=config, with_gfw=not args.clean,
                          seed=args.seed)
    probe = ResponsivenessProbe(world.client, world.client_tcp, world.clock,
                                rng=random.Random(args.seed))
    print(probe.probe(SERVER_IP).summary())
    return 0


def _cmd_trial(args: argparse.Namespace) -> int:
    from repro.experiments import (
        DEFAULT_CALIBRATION,
        outside_china_catalog,
        run_http_trial,
        vantage_by_name,
    )

    vantage = vantage_by_name(args.vantage)
    website = outside_china_catalog()[args.site]
    record = run_http_trial(vantage, website, args.strategy,
                            DEFAULT_CALIBRATION, seed=args.seed)
    print(f"vantage={record.vantage} target={record.target} "
          f"strategy={record.strategy_id}")
    print(f"outcome={record.outcome.value} detections={record.detections} "
          f"drift={record.drift}")
    return 0 if record.outcome.value == "success" else 1


def _cmd_ladder(args: argparse.Namespace) -> int:
    import os

    sys.path.insert(
        0, os.path.join(os.path.dirname(__file__), "..", "..", "tests")
    )
    from repro.core.intang import INTANG

    try:
        from helpers import fetch, mini_topology
    except ImportError:
        print("ladder requires the repository checkout (tests/helpers.py)",
              file=sys.stderr)
        return 2

    strategy = ("tcb-creation+resync-desync" if args.figure == 3
                else "tcb-teardown+tcb-reversal")
    world = mini_topology(seed=args.seed, trace=True)
    INTANG(host=world.client, tcp_host=world.client_tcp, clock=world.clock,
           network=world.network, fixed_strategy=strategy,
           rng=random.Random(args.seed))
    exchange = fetch(world)
    print(f"Fig. {args.figure}: {strategy} — "
          f"{'evaded' if exchange.got_response else 'failed'}\n")
    print(world.trace.format_ladder())
    return 0


def _cmd_perf(args: argparse.Namespace) -> int:
    if args.mode == "profile":
        return _perf_profile(args)
    if args.mode == "compare":
        return _perf_compare(args)
    raise AssertionError(f"unknown perf mode {args.mode!r}")


def _perf_rates(document: dict) -> "dict[str, float]":
    """Extract every throughput figure from a BENCH_perf.json document.

    Covers the per-bench ``trials_per_second`` field, the generic
    ``rate``/``unit`` pair recorded by non-trial benches (bench_dpi's
    bytes/s, bench_fleet's flow events/s — keyed ``<bench>::<unit>``),
    and any ``*_per_second*`` entries inside a bench's ``metrics`` block
    (the netsim packet rates, the reuse-on/off trial rates).  Zero rates
    are bookkeeping-only benches and are skipped.
    """
    rates: dict = {}
    for entry in document.get("benches", []):
        name = entry.get("bench", "?")
        tps = entry.get("trials_per_second") or 0.0
        if tps > 0:
            rates[name] = float(tps)
        rate = entry.get("rate") or 0.0
        if isinstance(rate, (int, float)) and rate > 0:
            rates[f"{name}::{entry.get('unit') or 'rate'}"] = float(rate)
        for metric, value in (entry.get("metrics") or {}).items():
            if "per_second" in metric and isinstance(value, (int, float)) and value > 0:
                rates[f"{name}::{metric}"] = float(value)
    return rates


def _perf_compare(args: argparse.Namespace) -> int:
    """Gate a candidate BENCH_perf.json against a committed baseline.

    Exits non-zero when any bench's throughput dropped by more than
    ``--threshold`` (fractional; default 0.30).  Benches present in only
    one document are reported but never fail the gate — the bench suite
    is allowed to grow and shrink across commits.
    """
    import json as json_module

    if len(args.files) != 2:
        print("usage: repro perf compare BASELINE.json CANDIDATE.json",
              file=sys.stderr)
        return 2
    with open(args.files[0], "r", encoding="utf-8") as handle:
        baseline = _perf_rates(json_module.load(handle))
    with open(args.files[1], "r", encoding="utf-8") as handle:
        candidate = _perf_rates(json_module.load(handle))
    threshold = args.threshold
    regressions = []
    for name in sorted(set(baseline) | set(candidate)):
        base = baseline.get(name)
        cand = candidate.get(name)
        if base is None or cand is None:
            which = "candidate" if base is None else "baseline"
            print(f"  only-in-{which}: {name}")
            continue
        change = (cand - base) / base
        regressed = cand < base * (1.0 - threshold)
        marker = "REGRESSION" if regressed else "ok"
        print(f"  {marker:>10}  {name}: {base:.1f} -> {cand:.1f} ({change:+.1%})")
        if regressed:
            regressions.append(name)
    if regressions:
        print(
            f"perf compare: {len(regressions)} bench(es) regressed more than "
            f"{threshold:.0%}: {', '.join(regressions)}",
            file=sys.stderr,
        )
        return 1
    print(f"perf compare: OK (threshold {threshold:.0%})", file=sys.stderr)
    return 0


def _perf_profile(args: argparse.Namespace) -> int:
    """cProfile one experiment cell and print the hottest functions.

    The cell selectors mirror ``telemetry diagnose`` so a slow trial can
    be profiled with the same flags that diagnosed it.  ``--exec`` picks
    the execution tier under the profiler: the plain per-trial simulator,
    the batch-stepped shared-heap path (honouring ``REPRO_BATCH_TRIALS``),
    or the replay tier against a pre-warmed cell (records outside the
    profiler, then profiles the ledger-verification hot path).
    """
    import cProfile
    import pstats

    from repro.experiments import (
        DEFAULT_CALIBRATION,
        outside_china_catalog,
        vantage_by_name,
    )
    from repro.experiments import replay
    from repro.experiments.runner import (
        _run_http_batch_records,
        _simulate_http_trial,
        batch_window,
    )

    vantage = vantage_by_name(args.vantage)
    website = outside_china_catalog()[args.site]
    tasks = [
        (
            vantage, website, args.strategy, DEFAULT_CALIBRATION,
            args.seed + repeat, not args.benign,
        )
        for repeat in range(args.repeats)
    ]
    window = batch_window() if args.exec_mode == "batch" else len(tasks)
    if args.exec_mode == "replay":
        if not replay.enabled():
            print("perf profile --exec replay needs REPRO_REPLAY on",
                  file=sys.stderr)
            return 1
        # Warm pass: record the cell's programs before the profiler runs,
        # so the profile shows the replay path, not the recording cost.
        replay.clear()
        for begin in range(0, len(tasks), window):
            _run_http_batch_records(tasks[begin : begin + window])
    profiler = cProfile.Profile()
    profiler.enable()
    if args.exec_mode == "serial":
        for _, _, _, _, seed, keyword in tasks:
            _simulate_http_trial(
                vantage, website, args.strategy, DEFAULT_CALIBRATION,
                seed=seed, keyword=keyword,
            )
    else:
        for begin in range(0, len(tasks), window):
            _run_http_batch_records(tasks[begin : begin + window])
    profiler.disable()
    stats = pstats.Stats(profiler)
    if args.out:
        stats.dump_stats(args.out)
        print(f"wrote {args.out}", file=sys.stderr)
    print(
        f"cell: vantage={vantage.name} site={website.name} "
        f"strategy={args.strategy or 'none'} "
        f"{'benign' if args.benign else 'keyword'} "
        f"seeds={args.seed}..{args.seed + args.repeats - 1} "
        f"exec={args.exec_mode}"
        + (f" window={window}" if args.exec_mode == "batch" else "")
    )
    if args.exec_mode == "replay":
        snapshot = replay.stats()
        print(
            f"replay: hits={snapshot['hits']} misses={snapshot['misses']} "
            f"forks={snapshot['forks']} programs={snapshot['programs']}"
        )
    stats.sort_stats("cumulative").print_stats(args.top)
    return 0


def _cmd_conformance(args: argparse.Namespace) -> int:
    if args.mode == "run":
        return _conformance_run(args)
    if args.mode == "diff":
        return _conformance_diff(args)
    return _conformance_bless(args)


def _conformance_cells(args: argparse.Namespace):
    from repro.conformance import default_cells

    split = lambda value: value.split(",") if value else None  # noqa: E731
    return default_cells(
        strategies=split(args.strategies),
        variants=split(args.variants),
        profiles=split(args.profiles),
        faults=split(args.faults),
    )


def _conformance_matrix(args: argparse.Namespace):
    from repro.conformance import run_matrix

    cells = _conformance_cells(args)
    print(f"conformance: running {len(cells)} cells "
          f"x {args.repeats} repeats (seed {args.seed})", file=sys.stderr)
    return run_matrix(
        cells, repeats=args.repeats, seed=args.seed, workers=args.workers,
        shards=getattr(args, "shards", None),
    )


def _conformance_golden_dir(args: argparse.Namespace):
    from pathlib import Path

    from repro.conformance import golden_dir

    return Path(args.golden_dir) if args.golden_dir else golden_dir()


def _conformance_diagnose_drift(drifts, results, limit: int, seed: int) -> None:
    """Explain drifted cells through the telemetry diagnosis layer."""
    from repro.conformance.matrix import (
        cell_calibration,
        conformance_site,
        profile_vantage,
    )
    from repro.telemetry import diagnose_trial, get_flight

    flight = get_flight()
    for drift in drifts[:limit]:
        cell = results[drift.cell_id].cell
        diagnosis = diagnose_trial(
            profile_vantage(cell.profile),
            conformance_site(),
            cell.strategy_id,
            cell_calibration(cell.fault),
            seed=(seed * 1_000_003) ^ cell.seed_salt(),
            gfw_variant=cell.gfw_variant,
        )
        if flight.enabled:
            # Drift is exactly the anomaly the flight recorder exists
            # for: keep the diagnosing re-run's event ring.
            flight.record(
                "oracle_drift",
                context={
                    "cell": drift.cell_id,
                    "observed": drift.observed,
                    "detail": drift.format(),
                },
                events=diagnosis.events,
            )
        print(f"\n== diagnosis: {drift.cell_id} " + "=" * 30)
        print(diagnosis.render())
    if len(drifts) > limit:
        print(f"\n({len(drifts) - limit} more drifted cells not diagnosed; "
              f"raise --max-diagnose)", file=sys.stderr)


def _conformance_report(results, args: argparse.Namespace) -> int:
    import json as json_module

    from repro.conformance import check_verdicts, compare_golden
    from repro.conformance.oracles import KNOWN_DIVERGENCE

    from repro.experiments import replay

    drifts, uncovered = check_verdicts(results)
    diff = compare_golden(results, _conformance_golden_dir(args),
                          seed=args.seed)

    if args.json:
        document = {cid: r.as_payload() for cid, r in sorted(results.items())}
        # Cell ids always carry "|" separators, so a bare key cannot
        # collide with one.
        document["replay"] = replay.stats()
        print(json_module.dumps(document, indent=2))
    else:
        counts: dict = {}
        for result in results.values():
            counts[result.verdict] = counts.get(result.verdict, 0) + 1
        summary = " ".join(f"{k}={v}" for k, v in sorted(counts.items()))
        print(f"conformance: {len(results)} cells  {summary}")
        noted = [
            entry for entry in KNOWN_DIVERGENCE
            if any(entry.matches(r.cell) for r in results.values())
        ]
        for entry in noted:
            print(
                f"known divergence: {entry.strategy}|{entry.variant}"
                f"|{entry.profile}|{entry.fault}: paper "
                f"{entry.paper_expected!r} -> repro {entry.repro_verdict!r} "
                f"({entry.reason})"
            )

    failed = False
    if uncovered:
        failed = True
        print(f"\noracle coverage FAILED: {len(uncovered)} cells matched "
              "no rule:")
        for cell_id in uncovered[:20]:
            print(f"  {cell_id}")
    if drifts:
        failed = True
        print(f"\nverdict drift vs oracle: {len(drifts)} cells:")
        for drift in drifts:
            print("  " + drift.format())
        _conformance_diagnose_drift(drifts, results, args.max_diagnose,
                                    args.seed)
    if not diff.clean:
        failed = True
        print("\n" + diff.format())
        print("\n(after reviewing, `repro conformance bless` accepts the "
              "new behaviour)", file=sys.stderr)
    if not failed:
        print("conformance: PASS (oracle + golden snapshot + ladders)")
    if not args.json:
        snapshot = replay.stats()
        print(
            f"replay tier: hits={snapshot['hits']} "
            f"misses={snapshot['misses']} forks={snapshot['forks']} "
            f"programs={snapshot['programs']} cells={snapshot['cells']}",
            file=sys.stderr,
        )
    return 1 if failed else 0


def _conformance_run(args: argparse.Namespace) -> int:
    return _conformance_report(_conformance_matrix(args), args)


def _conformance_diff(args: argparse.Namespace) -> int:
    from repro.conformance import compare_golden

    results = _conformance_matrix(args)
    diff = compare_golden(results, _conformance_golden_dir(args),
                          seed=args.seed)
    print(diff.format(max_ladder_lines=args.max_ladder_lines))
    return 0 if diff.clean else 1


def _conformance_bless(args: argparse.Namespace) -> int:
    from repro.conformance import bless

    results = _conformance_matrix(args)
    written = bless(results, _conformance_golden_dir(args),
                    seed=args.seed, repeats=args.repeats)
    for path in written:
        print(f"blessed {path}")
    return 0


def _cmd_telemetry(args: argparse.Namespace) -> int:
    if args.mode == "diagnose":
        return _telemetry_diagnose(args)
    return _telemetry_metrics(args)


def _telemetry_diagnose(args: argparse.Namespace) -> int:
    from repro.experiments import (
        DEFAULT_CALIBRATION,
        outside_china_catalog,
        vantage_by_name,
    )
    from repro.telemetry import diagnose_trial

    vantage = vantage_by_name(args.vantage)
    website = outside_china_catalog()[args.site]
    diagnosis = diagnose_trial(
        vantage, website, args.strategy, DEFAULT_CALIBRATION,
        seed=args.seed, keyword=not args.benign,
    )
    print(diagnosis.render())
    return 0


def _telemetry_metrics(args: argparse.Namespace) -> int:
    """Run a small baseline-able sweep and dump the merged registry."""
    import json

    from repro.experiments import (
        CHINA_VANTAGE_POINTS,
        DEFAULT_CALIBRATION,
        outside_china_catalog,
        run_strategy_cell,
    )
    from repro.telemetry import filter_snapshot, get_registry

    sites = outside_china_catalog(count=args.sites)
    run_strategy_cell(
        args.strategy or "none", CHINA_VANTAGE_POINTS, sites,
        DEFAULT_CALIBRATION,
        repeats=args.repeats, seed=args.seed, keyword=True,
    )
    registry = get_registry()
    # --prefix narrows every output format identically: the JSON and
    # the table views of one invocation always show the same names.
    snapshot = filter_snapshot(registry.snapshot(), args.prefix)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as sink:
            json.dump(snapshot, sink, indent=2, sort_keys=True)
        print(f"wrote {args.out}", file=sys.stderr)
    if args.json:
        print(json.dumps(snapshot, indent=2, sort_keys=True))
    else:
        print(registry.format_table(args.prefix or None))
    if args.check_baseline:
        rst = registry.counter_value("gfw.rst_sent")
        match = registry.counter_value("dpi.match")
        if rst <= 0 or match <= 0:
            print(
                f"telemetry baseline check FAILED: gfw.rst_sent={rst} "
                f"dpi.match={match} (both must be > 0 for a no-strategy "
                "keyword sweep)",
                file=sys.stderr,
            )
            return 1
        print(
            f"telemetry baseline check ok: gfw.rst_sent={rst} "
            f"dpi.match={match}",
            file=sys.stderr,
        )
    return 0


def _cmd_inconsistency(args: argparse.Namespace) -> int:
    """Ensafi-style inconsistency characterization (`inconsistency run`)."""
    import json as json_module

    from repro.analysis.inconsistency import (
        DEFAULT_STRATEGIES,
        run_inconsistency,
    )
    from repro.experiments.tables import (
        format_churn_timeline,
        format_diurnal_curve,
        format_disagreement_matrix,
    )
    from repro.gfw.heterogeneity import RouteEnsemble, use_ensemble

    hours = [float(h) for h in args.hours.split(",") if h]
    strategies = (
        args.strategies.split(",") if args.strategies else DEFAULT_STRATEGIES
    )
    ensemble = (
        RouteEnsemble(seed=args.ensemble_seed)
        if args.ensemble_seed is not None
        else None
    )
    print(
        f"inconsistency: {args.vantages} vantages x {len(hours)} hours x "
        f"{len(strategies)} strategies x {args.repeats} repeats "
        f"(seed {args.seed})",
        file=sys.stderr,
    )
    with use_ensemble(ensemble) if ensemble is not None else _nullcontext():
        report = run_inconsistency(
            vantages=args.vantages,
            hours=hours,
            strategies=strategies,
            repeats=args.repeats,
            seed=args.seed,
            workers=args.workers,
            shards=args.shards,
        )
    payload_json = report.to_json()
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(payload_json + "\n")
        print(f"inconsistency: report written to {args.out}", file=sys.stderr)
    if args.json:
        print(payload_json)
        return 0
    print(
        format_disagreement_matrix(
            report.disagreement_matrix(), report.vantage_names
        )
    )
    print()
    print(format_diurnal_curve(report.diurnal_curve()))
    print()
    print(format_churn_timeline(report.churn_timeline()))
    print()
    disagreeing = report.disagreeing_strategies()
    routes = json_module.dumps(
        {name: info["member_variant"] for name, info in report.routes.items()},
        sort_keys=True,
    )
    print(f"route members: {routes}")
    print(
        f"{len(disagreeing)}/{len(report.strategies)} strategies see "
        f"route disagreement: {', '.join(disagreeing) or '(none)'}"
    )
    return 0


def _nullcontext():
    import contextlib

    return contextlib.nullcontext()


def _cmd_fleet(args: argparse.Namespace) -> int:
    """Run a fleet workload: many client flows, one shared GFW.

    Prints flow-events/s plus per-strategy effectiveness; ``--curve``
    additionally sweeps fleet sizes past the flow-table capacity to
    show strategy effectiveness degrading (or improving — eviction
    thrash helps the client) under censor load.
    """
    import json as json_module
    import time as time_module

    from repro.experiments.fleet import (
        DEFAULT_FLEET_STRATEGIES,
        FleetSpec,
        effectiveness_curve,
        run_fleet,
    )

    strategies = DEFAULT_FLEET_STRATEGIES
    if args.strategies:
        strategies = tuple(
            item.strip() for item in args.strategies.split(",") if item.strip()
        )
    spec = FleetSpec(
        flows=args.flows,
        seed=args.seed,
        sites=args.sites,
        zipf_alpha=args.zipf_alpha,
        sensitive_fraction=args.sensitive,
        strategies=strategies,
        groups=args.groups,
        window=args.window,
        gfw_variant=args.variant,
        max_flows=args.max_flows,
    )
    from repro.experiments import replay

    start = time_module.perf_counter()
    result = run_fleet(spec, shards=args.shards, workers=args.workers)
    elapsed = time_module.perf_counter() - start
    payload = result.to_dict()
    payload["wall_seconds"] = round(elapsed, 3)
    payload["replay"] = replay.stats()
    if elapsed > 0:
        payload["flow_events_per_second"] = round(result.flow_events / elapsed, 1)
        payload["flows_per_second"] = round(result.flows / elapsed, 1)
    if args.curve:
        sizes = [int(item) for item in args.curve.split(",") if item.strip()]
        payload["curve"] = [
            {
                "flows": size,
                "strategy_success": point.strategy_rates(),
                "benign_success": point.success_rate("benign"),
                "flows_evicted_active": point.flows_evicted_active,
                "eviction_false_negatives": point.eviction_false_negatives,
                "blacklist_false_positives": point.blacklist_false_positives,
            }
            for size, point in effectiveness_curve(
                spec, sizes, shards=args.shards, workers=args.workers
            )
        ]
    if args.out:
        with open(args.out, "w", encoding="utf-8") as sink:
            json_module.dump(payload, sink, indent=2, sort_keys=True)
            sink.write("\n")
        print(f"wrote {args.out}", file=sys.stderr)
    if args.json:
        print(json_module.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(
        f"fleet: {result.flows} flows, {result.flow_events} flow events in "
        f"{elapsed:.2f}s"
        + (
            f" ({result.flow_events / elapsed:,.0f} events/s, "
            f"{result.flows / elapsed:,.0f} flows/s)"
            if elapsed > 0
            else ""
        )
    )
    print(
        f"  shared censor: peak {result.peak_flows_tracked} tracked flows, "
        f"{result.flows_evicted} evictions "
        f"({result.flows_evicted_active} mid-stream / "
        f"{result.flows_evicted_after_fin} after FIN, "
        f"{result.evictions_in_resync} in RESYNC), "
        f"{result.blacklistings} blacklistings"
    )
    print(
        f"  load-induced errors: {result.eviction_false_negatives} eviction "
        f"false negatives, {result.blacklist_false_positives} blacklist "
        f"false positives (extension, not a paper result)"
    )
    latency = payload.get("flow_sim_latency") or {}
    if latency.get("count"):
        print(
            f"  first-byte-to-verdict sim-latency: "
            f"p50={latency['p50']:.3f}s p90={latency['p90']:.3f}s "
            f"p99={latency['p99']:.3f}s "
            f"(mean {latency['mean']:.3f}s over {latency['count']} flows)"
        )
    for label, counts in result.outcomes.items():
        total = sum(counts)
        rate = counts[0] / total if total else 0.0
        print(
            f"  {label:<36} {rate:7.1%} success  "
            f"({counts[0]}/{counts[1]}/{counts[2]} s/f1/f2 of {total})"
        )
    for point in payload.get("curve", []):
        print(
            f"  curve @{point['flows']:>7} flows: "
            + ", ".join(
                f"{label}={rate:.0%}"
                for label, rate in sorted(point["strategy_success"].items())
            )
        )
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    if args.mode == "trace":
        return _obs_trace(args)
    if args.mode == "export":
        return _obs_export(args)
    if args.mode == "flight":
        return _obs_flight(args)
    return _obs_report(args)


def _obs_trace(args: argparse.Namespace) -> int:
    """Span-trace a conformance subset and export Chrome trace-event JSON.

    The tracer is force-enabled for the run (the parallel engine
    forwards the flag into workers, whose drained span trees merge back
    under the sweep span), then the whole forest is flattened to the
    ``chrome://tracing`` / Perfetto trace-event format.
    """
    import json as json_module

    from repro.conformance import run_matrix
    from repro.telemetry import chrome_trace, enable_tracer, get_tracer

    cells = _conformance_cells(args)
    enable_tracer(True)
    try:
        get_tracer().clear()
        results = run_matrix(
            cells, repeats=args.repeats, seed=args.seed,
            workers=args.workers, shards=args.shards,
        )
        trees = get_tracer().drain()
    finally:
        enable_tracer(False)
    document = chrome_trace(trees)
    print(
        f"obs trace: {len(results)} cells -> {len(trees)} root spans, "
        f"{len(document['traceEvents'])} trace events",
        file=sys.stderr,
    )
    if args.out:
        with open(args.out, "w", encoding="utf-8") as sink:
            json_module.dump(document, sink, indent=1, default=repr)
            sink.write("\n")
        print(f"wrote {args.out} (open in ui.perfetto.dev or "
              f"chrome://tracing)", file=sys.stderr)
    else:
        print(json_module.dumps(document, indent=1, default=repr))
    return 0


def _obs_export(args: argparse.Namespace) -> int:
    """Export a metrics snapshot as OpenMetrics text (plus latency table).

    Reads a snapshot JSON written earlier (``--snapshot``, e.g. by
    ``repro telemetry metrics --out``) or runs the same small sweep as
    ``repro telemetry metrics`` to produce one.
    """
    import json as json_module

    from repro.telemetry import filter_snapshot, latency_summary, openmetrics

    if args.snapshot:
        with open(args.snapshot, "r", encoding="utf-8") as handle:
            snapshot = json_module.load(handle)
    else:
        from repro.experiments import (
            CHINA_VANTAGE_POINTS,
            DEFAULT_CALIBRATION,
            outside_china_catalog,
            run_strategy_cell,
        )
        from repro.telemetry import get_registry

        run_strategy_cell(
            args.strategy or "none", CHINA_VANTAGE_POINTS,
            outside_china_catalog(count=args.sites), DEFAULT_CALIBRATION,
            repeats=args.repeats, seed=args.seed, keyword=True,
        )
        snapshot = get_registry().snapshot()
    snapshot = filter_snapshot(snapshot, args.prefix)
    text = openmetrics(snapshot)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as sink:
            sink.write(text)
        print(f"wrote {args.out}", file=sys.stderr)
    else:
        print(text, end="")
    if args.latency:
        summaries = latency_summary(snapshot)
        if summaries:
            print("\n# latency summaries (seconds)", file=sys.stderr)
            for name, stats in sorted(summaries.items()):
                print(
                    f"#   {name}: n={stats['count']} "
                    f"mean={stats['mean']:.4f} p50={stats['p50']:.4f} "
                    f"p90={stats['p90']:.4f} p99={stats['p99']:.4f}",
                    file=sys.stderr,
                )
    return 0


def _obs_flight(args: argparse.Namespace) -> int:
    """Run a fleet workload with the flight recorder armed; dump anomalies.

    Each anomaly (eviction false negative, blacklist false positive)
    produces one JSON dump: the per-flow event ring, the shared flow
    table's TCB snapshots, and the packets still queued at the client.
    """
    import json as json_module
    import os

    from repro.experiments.fleet import FleetSpec, run_fleet
    from repro.telemetry import enable_flight, get_flight

    spec = FleetSpec(
        flows=args.flows,
        seed=args.seed,
        sites=args.fleet_sites,
        groups=args.groups,
        window=args.window,
        gfw_variant=args.variant,
        max_flows=args.max_flows,
    )
    enable_flight(True)
    try:
        get_flight().clear()
        result = run_fleet(spec, shards=1)
        dumps = get_flight().drain()
    finally:
        enable_flight(False)
    print(
        f"obs flight: {result.flows} flows -> "
        f"{result.eviction_false_negatives} eviction FNs, "
        f"{result.blacklist_false_positives} blacklist FPs, "
        f"{len(dumps)} flight dumps",
        file=sys.stderr,
    )
    if args.out:
        os.makedirs(args.out, exist_ok=True)
        for index, dump in enumerate(dumps):
            path = os.path.join(
                args.out, f"flight_{index:03d}_{dump['anomaly']}.json"
            )
            with open(path, "w", encoding="utf-8") as sink:
                json_module.dump(dump, sink, indent=1, default=repr)
                sink.write("\n")
            print(f"wrote {path}", file=sys.stderr)
        if not dumps:
            # CI uploads this directory; an empty marker beats a
            # missing-artifact failure when the run is clean.
            marker = os.path.join(args.out, "NO_ANOMALIES")
            with open(marker, "w", encoding="utf-8") as sink:
                sink.write("flight recorder armed; no anomalies fired\n")
    else:
        print(json_module.dumps(dumps, indent=1, default=repr))
    return 0


def _obs_report(args: argparse.Namespace) -> int:
    """Render the perf trajectory across recorded benchmark runs.

    Reads ``BENCH_history.jsonl`` (one line per ``make bench`` run,
    appended by the benchmark harness) and tabulates every throughput
    figure across the last ``--last`` runs, with the delta from the
    previous run.  Falls back to the single committed BENCH_perf.json
    when no history exists yet.
    """
    import json as json_module
    import os

    documents = []
    if os.path.exists(args.history):
        with open(args.history, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    documents.append(json_module.loads(line))
    elif os.path.exists(args.perf):
        with open(args.perf, "r", encoding="utf-8") as handle:
            documents.append(json_module.load(handle))
    if not documents:
        print(f"obs report: neither {args.history} nor {args.perf} exists",
              file=sys.stderr)
        return 2
    documents.sort(key=lambda doc: doc.get("run", 0))
    documents = documents[-args.last:]
    runs = [doc.get("run", index) for index, doc in enumerate(documents)]
    rates = [_perf_rates(doc) for doc in documents]
    names = sorted(set().union(*rates))

    def cell(value):
        return f"{value:,.0f}" if value is not None else "-"

    header = ["bench"] + [f"run {run}" for run in runs] + ["delta"]
    rows = []
    for name in names:
        series = [r.get(name) for r in rates]
        present = [v for v in series if v is not None]
        delta = "-"
        if len(present) >= 2 and present[-2]:
            delta = f"{(present[-1] - present[-2]) / present[-2]:+.1%}"
        rows.append([name] + [cell(v) for v in series] + [delta])
    if args.format == "md":
        print("| " + " | ".join(header) + " |")
        print("|" + "|".join("---" for _ in header) + "|")
        for row in rows:
            print("| " + " | ".join(row) + " |")
    else:
        widths = [
            max(len(str(row[i])) for row in [header] + rows)
            for i in range(len(header))
        ]
        print("  ".join(h.ljust(w) for h, w in zip(header, widths)))
        for row in rows:
            print("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    print(f"({len(documents)} run(s); rates are per-second throughput)",
          file=sys.stderr)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate artifacts from 'Your State is Not Mine' (IMC '17).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list artifacts and strategies")

    for name in ("table1", "table4"):
        p = sub.add_parser(name, help=f"regenerate {name}")
        p.add_argument("--sites", type=int, default=12)
        p.add_argument("--repeats", type=int, default=1)
        p.add_argument("--seed", type=int, default=7)
        p.add_argument("--shards", type=int, default=None,
                       help="persistent shard runner: contiguous work "
                            "slices per worker (default: per-window dispatch)")

    sub.add_parser("table2", help="regenerate table 2")
    sub.add_parser("table3", help="regenerate table 3")
    sub.add_parser("table5", help="regenerate table 5")
    p = sub.add_parser("table6", help="regenerate table 6")
    p.add_argument("--queries", type=int, default=15)

    p = sub.add_parser("matrix", help="strategy × GFW-generation matrix")
    p.add_argument("--seed", type=int, default=1)

    p = sub.add_parser("probe", help="GFW responsiveness probe")
    p.add_argument("--model", choices=("old", "evolved"), default="evolved")
    p.add_argument("--clean", action="store_true",
                   help="probe an uncensored path")
    p.add_argument("--seed", type=int, default=1)

    p = sub.add_parser("trial", help="one HTTP trial")
    p.add_argument("--strategy", default="tcb-teardown+tcb-reversal")
    p.add_argument("--vantage", default="aliyun-beijing")
    p.add_argument("--site", type=int, default=0)
    p.add_argument("--seed", type=int, default=7)

    p = sub.add_parser("ladder", help="Fig. 3/4 packet ladder")
    p.add_argument("--figure", type=int, choices=(3, 4), default=3)
    p.add_argument("--seed", type=int, default=8)

    p = sub.add_parser(
        "perf",
        help="profile one experiment cell (cProfile) for hot-path work",
    )
    p.add_argument("mode", choices=("profile", "compare"))
    p.add_argument("files", nargs="*",
                   help="compare: BASELINE.json CANDIDATE.json "
                        "(two BENCH_perf.json documents)")
    p.add_argument("--threshold", type=float, default=0.30,
                   help="compare: max tolerated fractional trials/s drop "
                        "per bench before exiting non-zero (default 0.30)")
    p.add_argument("--strategy", default=None,
                   help="strategy id (default: none/baseline)")
    p.add_argument("--vantage", default="aliyun-beijing",
                   help="vantage point name")
    p.add_argument("--site", type=int, default=0,
                   help="catalog index of the target site")
    p.add_argument("--benign", action="store_true",
                   help="request the keyword-free URL")
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--repeats", type=int, default=50,
                   help="trials to profile (consecutive seeds)")
    p.add_argument("--top", type=int, default=25,
                   help="rows of the cumulative-time table to print")
    p.add_argument("--exec", dest="exec_mode",
                   choices=("serial", "batch", "replay"), default="serial",
                   help="profile: execution tier to profile — per-trial "
                        "simulator, batch-stepped shared heap "
                        "(REPRO_BATCH_TRIALS), or replay against a "
                        "pre-warmed cell")
    p.add_argument("--out", default=None,
                   help="also dump raw pstats here (e.g. profile.pstats)")

    p = sub.add_parser(
        "conformance",
        help="differential conformance matrix: run, diff, or bless",
    )
    p.add_argument("mode", choices=("run", "diff", "bless"))
    p.add_argument("--strategies", default=None,
                   help="comma-separated strategy ids (default: all)")
    p.add_argument("--variants", default=None,
                   help="comma-separated GFW model variants (default: all)")
    p.add_argument("--profiles", default=None,
                   help="comma-separated middlebox profiles "
                        "(default: neutral,aliyun,unicom-tj)")
    p.add_argument("--faults", default=None,
                   help="comma-separated fault-grid points "
                        "(default: clean,lossy)")
    p.add_argument("--repeats", type=int, default=6,
                   help="trials per cell (verdict majority base)")
    p.add_argument("--seed", type=int, default=2017)
    p.add_argument("--workers", type=int, default=None,
                   help="process-pool size (default: REPRO_WORKERS)")
    p.add_argument("--shards", type=int, default=None,
                   help="persistent shard runner: contiguous cell slices "
                        "per worker (default: per-cell dispatch)")
    p.add_argument("--golden-dir", default=None,
                   help="override the tests/golden/ directory")
    p.add_argument("--json", action="store_true",
                   help="[run] print the verdict map as JSON")
    p.add_argument("--max-diagnose", type=int, default=3,
                   help="[run] drifted cells to explain via telemetry "
                        "diagnosis")
    p.add_argument("--max-ladder-lines", type=int, default=40,
                   help="[diff] ladder-diff lines to show per cell")

    p = sub.add_parser(
        "inconsistency",
        help="Ensafi-style sweep: vantage × hour grid vs the "
             "heterogeneous GFW, reduced to disagreement/diurnal/churn",
    )
    p.add_argument("mode", choices=("run",))
    p.add_argument("--vantages", type=int, default=8,
                   help="synthetic lab vantage points (routes)")
    p.add_argument("--hours", default="0,6,12,18",
                   help="comma-separated simulated hours-of-day")
    p.add_argument("--strategies", default=None,
                   help="comma-separated strategy ids (default: the "
                        "generation-discriminating subset)")
    p.add_argument("--repeats", type=int, default=6,
                   help="trials per (vantage, hour, strategy) cell")
    p.add_argument("--seed", type=int, default=2017)
    p.add_argument("--ensemble-seed", type=int, default=None,
                   dest="ensemble_seed",
                   help="route-assignment seed (default: the built-in "
                        "ensemble's)")
    p.add_argument("--shards", type=int, default=None,
                   help="persistent shard runner over the cell grid "
                        "(byte-identical to serial)")
    p.add_argument("--workers", type=int, default=None,
                   help="process-pool size (default: REPRO_WORKERS)")
    p.add_argument("--json", action="store_true",
                   help="print the full report as canonical JSON")
    p.add_argument("--out", default=None,
                   help="also write the JSON report here")

    p = sub.add_parser(
        "fleet",
        help="fleet workload: thousands of client flows, one shared GFW",
    )
    p.add_argument("mode", choices=("run",))
    p.add_argument("--flows", type=int, default=2000,
                   help="total client flows across all groups")
    p.add_argument("--seed", type=int, default=2017)
    p.add_argument("--sites", type=int, default=32,
                   help="catalog size for Zipf-like site popularity")
    p.add_argument("--zipf-alpha", type=float, default=1.1,
                   dest="zipf_alpha", help="popularity tail exponent")
    p.add_argument("--sensitive", type=float, default=0.5,
                   help="fraction of flows requesting the keyword URL")
    p.add_argument("--strategies", default=None,
                   help="comma-separated strategy pool for sensitive "
                        "flows (default: the Table-1 rows incl. none)")
    p.add_argument("--groups", type=int, default=4,
                   help="client groups == independent shared censors")
    p.add_argument("--window", type=int, default=64,
                   help="concurrent flows per shared batch heap")
    p.add_argument("--variant", default="evolved",
                   help="GFW model variant (see gfw/models.py)")
    p.add_argument("--max-flows", type=int, default=None, dest="max_flows",
                   help="shared flow-table capacity override")
    p.add_argument("--shards", type=int, default=1,
                   help="process shards (whole client groups each)")
    p.add_argument("--workers", type=int, default=None,
                   help="process-pool size (default: REPRO_WORKERS)")
    p.add_argument("--curve", default=None,
                   help="comma-separated fleet sizes for the "
                        "effectiveness-vs-load sweep")
    p.add_argument("--json", action="store_true",
                   help="print the full report as JSON")
    p.add_argument("--out", default=None,
                   help="also write the JSON report here")

    p = sub.add_parser(
        "telemetry",
        help="diagnose one trial or dump a sweep's metrics registry",
    )
    p.add_argument("mode", choices=("diagnose", "metrics"))
    p.add_argument("--strategy", default=None,
                   help="strategy id (default: none/baseline)")
    p.add_argument("--vantage", default="aliyun-beijing",
                   help="[diagnose] vantage point name")
    p.add_argument("--site", type=int, default=0,
                   help="[diagnose] catalog index of the target site")
    p.add_argument("--benign", action="store_true",
                   help="[diagnose] request the keyword-free URL")
    p.add_argument("--sites", type=int, default=4,
                   help="[metrics] catalog size for the sweep")
    p.add_argument("--repeats", type=int, default=1,
                   help="[metrics] repeats per vantage x site")
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--json", action="store_true",
                   help="[metrics] print the snapshot as JSON")
    p.add_argument("--prefix", default=None,
                   help="[metrics] restrict output (table and JSON alike) "
                        "to instrument names with this prefix")
    p.add_argument("--out", default=None,
                   help="[metrics] also write the JSON snapshot here")
    p.add_argument("--check-baseline", action="store_true",
                   help="[metrics] exit nonzero unless the sweep saw "
                        "dpi.match and gfw.rst_sent")

    p = sub.add_parser(
        "obs",
        help="run observability: span traces, exporters, flight dumps, "
             "perf trajectory",
    )
    p.add_argument("mode", choices=("trace", "export", "flight", "report"))
    p.add_argument("--strategies", default="tcb-teardown-rst/ttl",
                   help="[trace] comma-separated strategy ids for the "
                        "traced conformance subset")
    p.add_argument("--variants", default="evolved",
                   help="[trace] comma-separated GFW model variants")
    p.add_argument("--profiles", default="neutral",
                   help="[trace] comma-separated middlebox profiles")
    p.add_argument("--faults", default="clean",
                   help="[trace] comma-separated fault-grid points")
    p.add_argument("--repeats", type=int, default=4,
                   help="[trace/export] repeats per cell / sweep")
    p.add_argument("--seed", type=int, default=2017)
    p.add_argument("--workers", type=int, default=None,
                   help="[trace] process-pool size (default: REPRO_WORKERS)")
    p.add_argument("--shards", type=int, default=None,
                   help="[trace] persistent shard runner (span trees merge "
                        "across shards)")
    p.add_argument("--snapshot", default=None,
                   help="[export] read this snapshot JSON instead of "
                        "running a sweep")
    p.add_argument("--strategy", default=None,
                   help="[export] strategy id for the fallback sweep")
    p.add_argument("--sites", type=int, default=4,
                   help="[export] catalog size for the fallback sweep")
    p.add_argument("--prefix", default=None,
                   help="[export] restrict to instrument names with this "
                        "prefix")
    p.add_argument("--latency", action="store_true",
                   help="[export] also print p50/p90/p99 latency summaries")
    p.add_argument("--flows", type=int, default=120,
                   help="[flight] total fleet flows")
    p.add_argument("--groups", type=int, default=3,
                   help="[flight] client groups")
    p.add_argument("--window", type=int, default=16,
                   help="[flight] concurrent flows per shared batch heap")
    p.add_argument("--max-flows", type=int, default=24, dest="max_flows",
                   help="[flight] shared flow-table capacity")
    p.add_argument("--fleet-sites", type=int, default=12, dest="fleet_sites",
                   help="[flight] catalog size for the fleet workload")
    p.add_argument("--variant", default="evolved",
                   help="[flight] GFW model variant")
    p.add_argument("--history", default="benchmarks/results/BENCH_history.jsonl",
                   help="[report] benchmark-history JSONL path")
    p.add_argument("--perf", default="benchmarks/results/BENCH_perf.json",
                   help="[report] fallback single BENCH_perf.json")
    p.add_argument("--last", type=int, default=8,
                   help="[report] runs of history to tabulate")
    p.add_argument("--format", choices=("table", "md"), default="table",
                   help="[report] output format")
    p.add_argument("--out", default=None,
                   help="[trace/export] output file; [flight] dump directory")
    return parser


_COMMANDS = {
    "list": _cmd_list,
    "table1": _cmd_table1,
    "table2": _cmd_table2,
    "table3": _cmd_table3,
    "table4": _cmd_table4,
    "table5": _cmd_table5,
    "table6": _cmd_table6,
    "matrix": _cmd_matrix,
    "probe": _cmd_probe,
    "trial": _cmd_trial,
    "ladder": _cmd_ladder,
    "perf": _cmd_perf,
    "conformance": _cmd_conformance,
    "inconsistency": _cmd_inconsistency,
    "telemetry": _cmd_telemetry,
    "fleet": _cmd_fleet,
    "obs": _cmd_obs,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
