"""Deterministic-replay execution tier: per-cell RNG-ledger programs.

The simulate-once-replay-many tier in front of the HTTP trial hot path.
A *cell* is everything about a trial except its seed — vantage, website,
strategy, calibration, keyword flag, forced GFW variant.  The first
trials in a cell run fully instrumented (``repro.rngledger``),
recording their ordered draw fingerprint plus a flat outcome artifact
(the trial-record payload and the trial's telemetry registry delta).
Later trials re-derive only their RNG streams against the stored
fingerprints: if every recorded value-bucket matches, the trial *is* the
recorded one — the artifact is returned and its registry delta folded,
without touching the event heap.

Cells store multiple programs in a shared prefix trie, so the distinct
behaviour classes of one cell (drift off/on, composition draws, NB3
coins, loss patterns) each become replayable after one recording, and a
single walk checks a candidate against every stored program at once.

Divergence accounting follows the snapshot-fork model: the recorded
setup prefix doubles as the checkpoint.  A candidate that matches the
whole setup phase (past the ``("p", "run")`` mark) but diverges inside
the run phase counts as a *fork* — the build/checkpoint work was
validated, only the run must be re-simulated; divergence before the mark
is a plain *miss*.  Either way the trial falls back to full simulation
(and may record a new program, growing the cell's behaviour coverage).

Knobs:

- ``REPRO_REPLAY`` (default on) — the tier as a whole;
- ``REPRO_REPLAY_PROGRAMS`` (default 16) — max recorded programs per
  cell; misses beyond the cap run through the normal batched simulator.

Counters (``MetricsRegistry``): ``replay.hits``, ``replay.misses``,
``replay.forks``, ``replay.programs``, ``replay.bytes_cached``,
``replay.store_conflicts``.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.core.env import env_flag, env_int
from repro.rngledger import RngLedger, StreamSet
from repro.experiments.result_cache import _fingerprint
from repro.telemetry.metrics import get_registry

_REGISTRY = get_registry()
_HITS = _REGISTRY.counter("replay.hits")
_MISSES = _REGISTRY.counter("replay.misses")
_FORKS = _REGISTRY.counter("replay.forks")
_PROGRAMS = _REGISTRY.counter("replay.programs")
_BYTES_CACHED = _REGISTRY.counter("replay.bytes_cached")
_CONFLICTS = _REGISTRY.counter("replay.store_conflicts")

#: Registry instruments owned by the execution engine rather than the
#: simulated trial.  They are stripped from recorded deltas: replaying a
#: trial must fold the *trial's* accounting (outcomes, GFW/DPI/TCP
#: counters, byte histograms) while the engine's own accounting (pool
#: traffic, cache hits, replay counters themselves) keeps describing
#: what the engine actually did this run.
ENGINE_PREFIXES = ("scenario.", "pool.", "netsim.", "result_cache.", "replay.")


def enabled() -> bool:
    """Whether the replay tier is on (``REPRO_REPLAY``, default on)."""
    return env_flag("REPRO_REPLAY", default=True)


def program_cap() -> int:
    """Max recorded programs per cell (``REPRO_REPLAY_PROGRAMS``)."""
    return env_int("REPRO_REPLAY_PROGRAMS", 16, minimum=0)


def cell_key(
    vantage,
    website,
    strategy_id: Optional[str],
    calibration,
    keyword: bool,
    gfw_variant: Optional[str],
) -> str:
    """The replay cell identity: every trial input *except* the seed.

    Same CRC-32-over-repr fingerprinting as the historical-result cache —
    stable across interpreter runs, automatically sensitive to new
    calibration/catalog fields.
    """
    return "|".join(
        (
            "replay",
            f"v{_fingerprint(vantage):08x}",
            f"t{_fingerprint(website):08x}",
            strategy_id or "none",
            f"c{_fingerprint(calibration):08x}",
            "kw" if keyword else "benign",
            gfw_variant or "drawn",
        )
    )


def task_key(task: Tuple, gfw_variant: Optional[str]) -> str:
    """:func:`cell_key` from the runner's standard HTTP task tuple."""
    vantage, website, strategy_id, calibration, _seed, keyword = task
    return cell_key(vantage, website, strategy_id, calibration, keyword, gfw_variant)


class _Node:
    """One prefix-trie state: the next entry spec to evaluate, edges
    keyed by the bucket a candidate draws there, and (at leaves) the
    recorded artifact."""

    __slots__ = ("spec", "edges", "program")

    def __init__(self) -> None:
        self.spec: Optional[tuple] = None
        self.edges: Dict[object, "_Node"] = {}
        self.program: Optional[dict] = None


class _CellStore:
    __slots__ = ("root", "programs")

    def __init__(self) -> None:
        self.root = _Node()
        self.programs = 0


_CELLS: Dict[str, _CellStore] = {}


def clear() -> None:
    """Forget every recorded program (tests; simulator monkeypatching)."""
    _CELLS.clear()


def program_count(key: Optional[str] = None) -> int:
    """Recorded programs in one cell (or across the whole store)."""
    if key is not None:
        cell = _CELLS.get(key)
        return cell.programs if cell is not None else 0
    return sum(cell.programs for cell in _CELLS.values())


def can_record(key: str) -> bool:
    """Whether this cell still has program slots under the cap."""
    cap = program_cap()
    if cap <= 0:
        return False
    cell = _CELLS.get(key)
    return cell is None or cell.programs < cap


def lookup(key: str, seed: int) -> Optional[dict]:
    """Walk the cell's program trie with ``seed``'s re-derived streams.

    Returns the stored artifact on a full-fingerprint match (counted as
    ``replay.hits``) or ``None`` on divergence — counted as
    ``replay.forks`` when the whole setup prefix (past the ``run`` phase
    mark) had matched, ``replay.misses`` otherwise.
    """
    cell = _CELLS.get(key)
    if cell is None:
        _MISSES.inc()
        return None
    node = cell.root
    streams = StreamSet(seed)
    passed_run = False
    while True:
        if node.program is not None:
            _HITS.inc()
            return node.program
        spec = node.spec
        if spec is None:
            # Empty trie (all inserts conflicted away).
            _MISSES.inc()
            return None
        if spec[0] == "p" and spec[1] == "run":
            passed_run = True
        bucket = streams.advance(spec)
        node = node.edges.get(bucket)
        if node is None:
            if passed_run:
                _FORKS.inc()
            else:
                _MISSES.inc()
            return None


def record(key: str, ledger: RngLedger, record_payload: dict, delta: dict) -> None:
    """Insert one recorded trial as a program of ``key``'s cell.

    The registry delta is stripped of engine-owned instruments before
    storage (see :data:`ENGINE_PREFIXES`).  A spec mismatch against the
    stored trie — which would mean the simulator consumed RNG
    nondeterministically — drops the insert and counts
    ``replay.store_conflicts`` instead of corrupting the store.
    """
    if not can_record(key):
        return
    cell = _CELLS.get(key)
    if cell is None:
        cell = _CELLS[key] = _CellStore()
    node = cell.root
    for spec, bucket in ledger.entries:
        if node.program is not None:
            _CONFLICTS.inc()
            return
        if node.spec is None:
            node.spec = spec
        elif node.spec != spec:
            _CONFLICTS.inc()
            return
        child = node.edges.get(bucket)
        if child is None:
            child = node.edges[bucket] = _Node()
        node = child
    if node.spec is not None or node.program is not None:
        _CONFLICTS.inc()
        return
    program = {"record": record_payload, "delta": _strip_delta(delta)}
    node.program = program
    cell.programs += 1
    _PROGRAMS.inc()
    _BYTES_CACHED.inc(
        len(repr(program["record"])) + len(repr(program["delta"]))
    )


def fold(program: dict) -> None:
    """Fold a replayed trial's recorded registry delta into the process
    registry — the telemetry a full simulation of that trial would have
    emitted, without re-instrumenting anything.  Counters add and
    histograms bucket-add (both order-free), so a replayed window's
    merged registry is byte-identical to the simulated one."""
    get_registry().merge(program["delta"])


def _strip_delta(delta: dict) -> dict:
    counters = {
        name: value
        for name, value in delta.get("counters", {}).items()
        if not name.startswith(ENGINE_PREFIXES)
    }
    gauges = {
        name: value
        for name, value in delta.get("gauges", {}).items()
        if not name.startswith(ENGINE_PREFIXES)
    }
    return {
        "counters": counters,
        "gauges": gauges,
        "histograms": delta.get("histograms", {}),
    }


def stats() -> Dict[str, int]:
    """Counter snapshot for CLI summaries and CI artifacts."""
    return {
        "cells": len(_CELLS),
        "programs": program_count(),
        "hits": _REGISTRY.counter_value("replay.hits"),
        "misses": _REGISTRY.counter_value("replay.misses"),
        "forks": _REGISTRY.counter_value("replay.forks"),
        "bytes_cached": _REGISTRY.counter_value("replay.bytes_cached"),
        "store_conflicts": _REGISTRY.counter_value("replay.store_conflicts"),
    }
