"""Experiment harness: vantage points, catalogs, trials, and tables.

This package turns the substrate (netsim + tcp + gfw + middlebox +
strategies + INTANG) into the paper's measurement campaign:

- :mod:`repro.experiments.calibration` — the environmental frequencies
  from which table-shaped rates emerge;
- :mod:`repro.experiments.vantage` — the 11 in-China and 4 outside-China
  measurement clients (§3.3, §7);
- :mod:`repro.experiments.websites` — synthetic Alexa-style catalogs and
  DNS resolvers;
- :mod:`repro.experiments.scenarios` — per-trial topology assembly;
- :mod:`repro.experiments.runner` — trial execution and the
  Success/Failure-1/Failure-2 classification of §3.4;
- :mod:`repro.experiments.middlebox_probe` — the Table 2 probes;
- :mod:`repro.experiments.tables` — paper-shaped table rendering.
"""

from repro.experiments.calibration import CLEAN_ROOM, Calibration, DEFAULT_CALIBRATION
from repro.experiments.vantage import (
    ALL_VANTAGE_POINTS,
    CHINA_VANTAGE_POINTS,
    OUTSIDE_VANTAGE_POINTS,
    VantagePoint,
    vantage_by_name,
)
from repro.experiments.websites import (
    DYN_RESOLVERS,
    OPENDNS_RESOLVERS,
    Resolver,
    Website,
    inside_china_catalog,
    outside_china_catalog,
)
from repro.experiments.scenarios import Scenario, build_scenario
from repro.experiments.parallel import (
    configured_workers,
    map_trials,
    trials_completed,
)
from repro.experiments.runner import (
    Outcome,
    PerVantageRates,
    RateTriple,
    TrialRecord,
    diagnose_failure,
    run_cell_by_provider,
    run_dns_cell,
    run_dns_trial,
    run_http_outcomes,
    run_http_trial,
    run_per_vantage,
    run_strategy_cell,
    run_table4_row,
    run_tor_cell,
    run_tor_trial,
    run_vpn_cell,
    run_vpn_trial,
    strategy_salt,
    trial_seed,
)
from repro.experiments.fleet import (
    DEFAULT_FLEET_STRATEGIES,
    FleetResult,
    FleetSpec,
    FlowSpec,
    effectiveness_curve,
    flow_spec,
    run_fleet,
    run_fleet_group,
)

__all__ = [
    "CLEAN_ROOM",
    "Calibration",
    "DEFAULT_CALIBRATION",
    "ALL_VANTAGE_POINTS",
    "CHINA_VANTAGE_POINTS",
    "OUTSIDE_VANTAGE_POINTS",
    "VantagePoint",
    "vantage_by_name",
    "DYN_RESOLVERS",
    "OPENDNS_RESOLVERS",
    "Resolver",
    "Website",
    "inside_china_catalog",
    "outside_china_catalog",
    "Scenario",
    "build_scenario",
    "configured_workers",
    "map_trials",
    "trials_completed",
    "Outcome",
    "PerVantageRates",
    "RateTriple",
    "TrialRecord",
    "diagnose_failure",
    "run_cell_by_provider",
    "run_dns_cell",
    "run_dns_trial",
    "run_http_outcomes",
    "run_http_trial",
    "run_per_vantage",
    "run_strategy_cell",
    "run_table4_row",
    "run_tor_cell",
    "run_tor_trial",
    "run_vpn_cell",
    "run_vpn_trial",
    "strategy_salt",
    "trial_seed",
    "DEFAULT_FLEET_STRATEGIES",
    "FleetResult",
    "FleetSpec",
    "FlowSpec",
    "effectiveness_curve",
    "flow_spec",
    "run_fleet",
    "run_fleet_group",
]
