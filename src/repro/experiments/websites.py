"""Synthetic website catalogs standing in for the Alexa measurements.

§3.3 filtered Alexa's top sites down to 77 HTTP websites (ranks 41-2091,
one IP per AS) reachable outside China and reset-censored on the keyword
``ultrasurf``; §7 adds 33 Chinese websites for the inbound direction.

The catalog's role in the measurement is *diversity*: per-site network
paths (hop counts, GFW placement), per-site server stacks (kernel
versions, reassembly preferences), and per-site AS identity.  All of it
is generated deterministically from a seed so every experiment run sees
the same "Internet".
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from functools import lru_cache
from typing import List, Tuple

from repro.experiments.calibration import Calibration, DEFAULT_CALIBRATION


@dataclass(frozen=True)
class Website:
    """One measurement target."""

    name: str
    ip: str
    alexa_rank: int
    asn: int
    #: Kernel behaviour profile name (see repro.tcp.profiles).
    server_profile: str
    #: Server prefers later data on out-of-order overlaps (§3.4's
    #: "a server might accept the junk data (just like the GFW)").
    server_ooo_lastwins: bool
    #: Hop count from an in-China client (outside-China paths get their
    #: own geometry from the calibration).
    hop_count: int
    #: GFW tap position (client-based hop index) for in-China clients.
    gfw_hop: int
    inside_china: bool = False


_MODERN_KERNELS = ("linux-4.4", "linux-4.0", "linux-3.14")


def _profile_quota(count: int, calibration: Calibration, rng: random.Random) -> List[str]:
    """Deterministic kernel-profile quotas (shuffled assignment).

    Exact quotas instead of per-site coin flips keep small catalogs
    representative: ``old_server_fraction`` of the sites run legacy
    kernels, of which a quarter (at least one) are pre-RFC2385 2.4.37.
    """
    old_total = round(count * calibration.old_server_fraction)
    n_2437 = max(1, old_total // 4) if old_total else 0
    n_2634 = old_total - n_2437
    profiles = ["linux-2.4.37"] * n_2437 + ["linux-2.6.34"] * n_2634
    modern_total = count - old_total
    for index in range(modern_total):
        profiles.append(_MODERN_KERNELS[index % len(_MODERN_KERNELS)])
    rng.shuffle(profiles)
    return profiles


def _ooo_quota(count: int, calibration: Calibration, rng: random.Random) -> List[bool]:
    lastwins_total = round(count * calibration.server_ooo_lastwins_fraction)
    flags = [True] * lastwins_total + [False] * (count - lastwins_total)
    rng.shuffle(flags)
    return flags


def _make_site(
    index: int,
    rng: random.Random,
    calibration: Calibration,
    inside_china: bool,
    server_profile: str,
    server_ooo_lastwins: bool,
) -> Website:
    if inside_china:
        name = f"site{index:02d}.example.cn"
        ip = f"122.{100 + index // 200}.{(index * 7) % 250 + 1}.{(index * 13) % 250 + 1}"
        rank = rng.randint(100, 9999)
    else:
        name = f"site{index:02d}.example.org"
        ip = f"203.{index // 200}.{(index * 7) % 250 + 1}.{(index * 13) % 250 + 1}"
        rank = 41 + index * 26  # spans the paper's 41..2091 rank range
    hop_count = rng.randint(12, 20)
    low, high = calibration.gfw_position_range
    gfw_hop = max(2, min(hop_count - 2, round(hop_count * rng.uniform(low, high))))
    return Website(
        name=name,
        ip=ip,
        alexa_rank=rank,
        asn=10000 + index,
        server_profile=server_profile,
        server_ooo_lastwins=server_ooo_lastwins,
        hop_count=hop_count,
        gfw_hop=gfw_hop,
        inside_china=inside_china,
    )


@lru_cache(maxsize=64)
def _catalog_cached(
    count: int, seed: int, calibration: Calibration, inside_china: bool
) -> Tuple[Website, ...]:
    """Memoized catalog generation.

    Catalogs are pure functions of ``(count, seed, calibration)`` and are
    requested once per cell by every bench and runner; :class:`Website`
    entries are frozen, so one generation can be shared safely.  Stored as
    a tuple; the public functions hand out fresh lists.
    """
    rng = random.Random(seed)
    profiles = _profile_quota(count, calibration, rng)
    ooo_flags = _ooo_quota(count, calibration, rng)
    return tuple(
        _make_site(i, rng, calibration, inside_china, profiles[i], ooo_flags[i])
        for i in range(count)
    )


def _catalog(
    count: int, seed: int, calibration: Calibration, inside_china: bool
) -> List[Website]:
    return list(_catalog_cached(count, seed, calibration, inside_china))


def outside_china_catalog(
    count: int = 77,
    seed: int = 2017,
    calibration: Calibration = DEFAULT_CALIBRATION,
) -> List[Website]:
    """The 77-site dataset measured from inside China (§3.3)."""
    return _catalog(count, seed, calibration, inside_china=False)


def inside_china_catalog(
    count: int = 33,
    seed: int = 7102,
    calibration: Calibration = DEFAULT_CALIBRATION,
) -> List[Website]:
    """The 33 Chinese sites measured from outside China (§7)."""
    return _catalog(count, seed, calibration, inside_china=True)


@dataclass(frozen=True)
class Resolver:
    """A public DNS resolver target (§7.2)."""

    name: str
    ip: str
    hop_count: int
    gfw_hop: int
    #: Paths to OpenDNS's resolvers were observed to bypass DNS
    #: censorship entirely (§7.2's accidental discovery).
    censored_path: bool = True


DYN_RESOLVERS = [
    Resolver("Dyn 1", "216.146.35.35", hop_count=16, gfw_hop=9),
    Resolver("Dyn 2", "216.146.36.36", hop_count=17, gfw_hop=10),
]

OPENDNS_RESOLVERS = [
    Resolver("OpenDNS 1", "208.67.222.222", hop_count=16, gfw_hop=9,
             censored_path=False),
    Resolver("OpenDNS 2", "208.67.220.220", hop_count=16, gfw_hop=9,
             censored_path=False),
]
