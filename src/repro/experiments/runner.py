"""Trial runner and outcome classification (§3.3 / §3.4 notation).

"Success means that we receive the HTTP response from the server and
receive no reset packets from the GFW.  Failure 1 means that we receive
no HTTP response from the server nor do we receive any resets from the
GFW.  Failure 2 means that we receive reset packets from the GFW."

One call to :func:`run_http_trial` is one row-cell repetition: a fresh
topology is built (equivalent to the paper's inter-test intervals that
let the 90-second blacklist lapse), INTANG measures the hop count, the
route possibly drifts out from under that measurement, the client
requests a page whose URL carries (or not) the sensitive keyword, and
the outcome is classified from the client's viewpoint only — exactly
what a real measurement client can see.
"""

from __future__ import annotations

import enum
import random
import zlib
from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.cache import KeyValueStore
from repro.core.env import env_int
from repro.core.intang import INTANG
from repro.rngledger import begin_ledger, end_ledger, ledger_root
from repro.core.selection import StrategySelector
from repro.apps.dns import DNSUdpClient
from repro.apps.http import HTTPClient
from repro.apps.tor import TorClient
from repro.apps.vpn import OpenVPNClient
from repro.experiments import replay, result_cache
from repro.experiments.calibration import Calibration, DEFAULT_CALIBRATION
from repro.experiments.parallel import map_trials, note_trials, run_sharded
from repro.experiments.scenarios import (
    HONEST_DNS_ANSWER,
    Scenario,
    acquire_scenario,
    build_scenario,
    release_scenario,
)
from repro.netsim.batch import BatchSim
from repro.netstack.packet import recycle_packets
from repro.experiments.vantage import VantagePoint
from repro.experiments.websites import Resolver, Website
from repro.telemetry.events import get_bus
from repro.telemetry.metrics import get_registry
from repro.telemetry.trace import get_tracer, make_span

#: The keyword the paper probes with (§3.3).
SENSITIVE_PATH = "/?search=ultrasurf"
BENIGN_PATH = "/index.html"

#: §7.2: Tianjin's resolver paths cross equipment that adopts forged
#: RSTs often enough to push success down to the observed 24-38 %
#: (two redundant RSTs must both fail to poison it: (1-p)^2 ≈ 0.30).
TIANJIN_DNS_FIREWALL_TEARDOWN = 0.45


class Outcome(enum.Enum):
    SUCCESS = "success"
    FAILURE1 = "failure1"  # silence: no response, no GFW resets
    FAILURE2 = "failure2"  # GFW resets observed


def strategy_salt(strategy_id: str) -> int:
    """A 16-bit seed salt that is stable across interpreter runs.

    ``hash(strategy_id)`` is randomized per process (PYTHONHASHSEED), so
    two runs of the same cell would draw different trial seeds — and two
    strategy ids could silently collide within a run.  CRC-32 is stable
    and spreads the registry's ids without collisions.
    """
    return zlib.crc32(strategy_id.encode("utf-8")) & 0xFFFF


def trial_seed(
    seed: int, v_index: int, w_index: int, repeat: int, strategy_id: str
) -> int:
    """The per-trial seed shared by the serial and parallel paths."""
    return (
        seed * 1_000_003 + v_index * 10_007 + w_index * 101 + repeat
    ) ^ strategy_salt(strategy_id)


@dataclass
class TrialRecord:
    outcome: Outcome
    strategy_id: str
    vantage: str
    target: str
    keyword: bool
    drift: Optional[str] = None
    detections: int = 0
    #: Best-effort failure attribution (the §3.4 "microscopic study" of
    #: failure cases, automated): None on success.
    diagnosis: Optional[str] = None


def diagnose_failure(scenario: Scenario, outcome: Outcome) -> Optional[str]:
    """Attribute a failed trial to its most likely §3.4 cause.

    Heuristics mirror the paper's failure taxonomy: Failure 2 is a
    detection (or an insertion that never reached the censor); Failure 1
    is middlebox state poisoning, an insertion hitting the server, a
    server that swallowed the junk, or plain loss.
    """
    from repro.middlebox.boxes import StatefulFirewallBox
    from repro.tcp.stack import CloseReason

    if outcome is Outcome.SUCCESS:
        return None
    if outcome is Outcome.FAILURE2:
        kinds = sorted(
            {
                str(p.meta.get("origin", "gfw")).replace("gfw-", "")
                for p in scenario.gfw_packets_at_client
            }
        )
        return f"keyword-detected ({'+'.join(kinds)} resets)"
    for element in scenario.path.elements:
        if isinstance(element, StatefulFirewallBox) and element.packets_blocked:
            return "client-side-firewall-blackhole"
    for connection in scenario.server_tcp.connections.values():
        if connection.close_reason is CloseReason.RESET:
            return "insertion-packet-reset-server"
    if scenario.http_server is not None:
        served = scenario.http_server.requests_served
        got_data = any(
            connection.application_data
            for connection in scenario.server_tcp.connections.values()
        )
        if served == 0 and got_data:
            return "server-consumed-junk-data"
    if scenario.path.loss_rate > 0.2:
        return "loss-burst"
    return "silent (loss or unreached server)"


def classify(got_response: bool, gfw_resets: int) -> Outcome:
    if gfw_resets > 0:
        return Outcome.FAILURE2
    if got_response:
        return Outcome.SUCCESS
    return Outcome.FAILURE1


def make_persistent_selector(priority: Optional[Sequence[str]] = None) -> StrategySelector:
    """A selector whose memory survives across (fresh-clock) trials."""
    from repro.strategies.registry import DEFAULT_PRIORITY

    counter = [0.0]

    def time_source() -> float:
        counter[0] += 1.0
        return counter[0]

    store = KeyValueStore(time_source=time_source)
    return StrategySelector(store, priority=list(priority or DEFAULT_PRIORITY))


# ---------------------------------------------------------------------------
# HTTP (Tables 1 and 4)
# ---------------------------------------------------------------------------
def _http_record_payload(record: TrialRecord) -> Dict:
    """A JSON-representable image of a trial record (for the
    historical-result cache)."""
    return {
        "outcome": record.outcome.value,
        "strategy_id": record.strategy_id,
        "vantage": record.vantage,
        "target": record.target,
        "keyword": record.keyword,
        "drift": record.drift,
        "detections": record.detections,
        "diagnosis": record.diagnosis,
    }


def _http_record_from_payload(payload: Dict) -> TrialRecord:
    return TrialRecord(
        outcome=Outcome(payload["outcome"]),
        strategy_id=payload["strategy_id"],
        vantage=payload["vantage"],
        target=payload["target"],
        keyword=payload["keyword"],
        drift=payload.get("drift"),
        detections=payload.get("detections", 0),
        diagnosis=payload.get("diagnosis"),
    )


_REGISTRY = get_registry()
_TRIALS_RUN = _REGISTRY.counter("trials.run")
_OUTCOME_COUNTERS = {
    Outcome.SUCCESS: _REGISTRY.counter("trials.success"),
    Outcome.FAILURE1: _REGISTRY.counter("trials.failure1"),
    Outcome.FAILURE2: _REGISTRY.counter("trials.failure2"),
}
_BYTES_INSPECTED = _REGISTRY.histogram("trial.bytes_inspected")
#: Wall-clock trial latency.  Registered unconditionally (so serial and
#: sharded instrument sets match) but *observed* only while tracing is
#: on — wall times are nondeterministic and would break the
#: serial-vs-sharded telemetry identity the parity tests pin.
_TRIAL_WALL_SECONDS = _REGISTRY.histogram(
    "trial.wall_seconds",
    buckets=(0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.5),
)


@dataclass
class _HttpTrialContext:
    """The live state of one HTTP trial between setup and finalization.

    Batched execution interleaves many trials through one shared event
    heap; each trial's pre-run state (the INTANG instance, the in-flight
    HTTP exchange, the drift that was applied) parks here until the batch
    run drains and the trial can be classified.
    """

    vantage: VantagePoint
    website: Website
    strategy_id: Optional[str]
    keyword: bool
    selector: Optional[StrategySelector]
    scenario: Scenario
    intang: INTANG
    exchange: object
    drift: Optional[str]
    seed: int = 0
    wall_start: float = 0.0


def _http_trial_setup(
    vantage: VantagePoint,
    website: Website,
    strategy_id: Optional[str],
    calibration: Calibration,
    seed: int,
    keyword: bool,
    selector: Optional[StrategySelector] = None,
    trace: bool = False,
    gfw_variant: Optional[str] = None,
    batch: Optional[BatchSim] = None,
) -> _HttpTrialContext:
    """Build the trial topology and queue its workload, without running.

    The setup phase only *schedules* (INTANG's interception hooks, the
    client's request segments); no event fires until the clock runs, so a
    batch runner can interleave many set-up trials through one heap.
    When ``batch`` is given the scenario is leased from the pool (the
    caller hands it back via ``release_scenario``) and its clock is
    adopted into the shared heap before anything is scheduled on it.
    """
    wall_start = perf_counter() if get_tracer().enabled else 0.0
    scenario = acquire_scenario(
        vantage=vantage, website=website, calibration=calibration,
        seed=seed, workload="http", trace=trace, gfw_variant=gfw_variant,
        lease=batch is not None,
    )
    if batch is not None:
        batch.adopt(scenario.clock)
    intang = INTANG(
        host=scenario.client,
        tcp_host=scenario.client_tcp,
        clock=scenario.clock,
        network=scenario.network,
        rng=ledger_root(seed, salt=0x5EED),
        fixed_strategy=strategy_id,
        hop_delta=calibration.hop_delta,
        selector=selector,
    )
    if intang.hop_estimator is not None:
        intang.hop_estimator.measure(website.ip)
        if (
            not vantage.inside_china
            and scenario.rng.coin(calibration.outside_ttl_error_probability)
        ):
            # §7.1: on outside-China routes the hop measurement is hard
            # to get right; an overshoot sends TTL-limited insertions
            # all the way to the (nearly co-located) server.
            intang.hop_estimator.adjust(website.ip, +2)
    drift = scenario.apply_route_drift()
    client = HTTPClient(scenario.client_tcp)
    _conn, exchange = client.get(
        website.ip,
        host=website.name,
        path=SENSITIVE_PATH if keyword else BENIGN_PATH,
    )
    return _HttpTrialContext(
        vantage=vantage,
        website=website,
        strategy_id=strategy_id,
        keyword=keyword,
        selector=selector,
        scenario=scenario,
        intang=intang,
        exchange=exchange,
        drift=drift,
        seed=seed,
        wall_start=wall_start,
    )


def _http_trial_finalize(ctx: _HttpTrialContext) -> TrialRecord:
    """Classify a finished trial and count it; the run phase is over."""
    scenario = ctx.scenario
    outcome = classify(ctx.exchange.got_response, scenario.gfw_resets_received())
    used = ctx.intang.last_strategy_for(ctx.website.ip) or (ctx.strategy_id or "none")
    if ctx.selector is not None:
        ctx.intang.report_result(ctx.website.ip, outcome is Outcome.SUCCESS)
    record = TrialRecord(
        outcome=outcome,
        strategy_id=used,
        vantage=ctx.vantage.name,
        target=ctx.website.name,
        keyword=ctx.keyword,
        drift=ctx.drift,
        detections=scenario.gfw_detections(),
        diagnosis=diagnose_failure(scenario, outcome),
    )
    # Outcome accounting lives here — inside the fresh simulation — so a
    # cache-replayed trial never re-counts and the parallel engine's
    # merged registry equals the serial run's.
    _OUTCOME_COUNTERS[outcome].inc()
    _BYTES_INSPECTED.observe(
        sum(device.bytes_inspected for device in scenario.gfw_devices)
    )
    tracer = get_tracer()
    if tracer.enabled:
        # The trial span is built whole here — batched trials finish out
        # of order, so begin/end stack discipline can't describe them.
        wall_end = perf_counter()
        _TRIAL_WALL_SECONDS.observe(max(0.0, wall_end - ctx.wall_start))
        sim_end = scenario.clock.now
        tracer.add(
            make_span(
                f"trial:{used}",
                "trial",
                sim_start=0.0,
                sim_end=sim_end,
                wall_start=ctx.wall_start,
                wall_end=wall_end,
                attrs={
                    "strategy": used,
                    "vantage": ctx.vantage.name,
                    "target": ctx.website.name,
                    "keyword": ctx.keyword,
                    "outcome": outcome.value,
                    "seed": ctx.seed,
                },
                children=[
                    make_span("setup", "phase", sim_start=0.0, sim_end=0.0),
                    make_span("run", "phase", sim_start=0.0, sim_end=sim_end),
                ],
            )
        )
    return record


def _simulate_http_trial(
    vantage: VantagePoint,
    website: Website,
    strategy_id: Optional[str],
    calibration: Calibration = DEFAULT_CALIBRATION,
    seed: int = 0,
    keyword: bool = True,
    selector: Optional[StrategySelector] = None,
    trace: bool = False,
    gfw_variant: Optional[str] = None,
) -> Tuple[TrialRecord, Scenario]:
    """Simulate one HTTP trial from scratch, returning the record *and*
    the finished scenario (for diagnosis; the cache layer above discards
    it).  ``trace=True`` turns on the packet trace recorder, whose events
    also land on the telemetry bus when that is enabled.  ``gfw_variant``
    forces a named installation variant (conformance cells)."""
    ctx = _http_trial_setup(
        vantage, website, strategy_id, calibration, seed, keyword,
        selector=selector, trace=trace, gfw_variant=gfw_variant,
    )
    ctx.scenario.run()
    record = _http_trial_finalize(ctx)
    return record, ctx.scenario


def batch_window() -> int:
    """Trials multiplexed per shared event heap (``REPRO_BATCH_TRIALS``).

    1 disables batching (the per-trial run loop); the default window of
    16 amortizes scheduler entry across a cell's seed sweep without
    leasing more than 16 live scenario object graphs per cell.
    """
    return env_int("REPRO_BATCH_TRIALS", 16, minimum=1)


def _replay_tier_active() -> bool:
    """Whether the deterministic-replay tier may stand in for simulation.

    Off when the span tracer or the event bus is enabled: both observe
    the *simulation itself* (wall-clock spans, per-packet device events
    carrying adopted sequence numbers), which a replayed trial by design
    never performs — those runs must simulate for real.
    """
    return replay.enabled() and not get_tracer().enabled and not get_bus().enabled


def _record_http_trial(
    task: Tuple, key: str, gfw_variant: Optional[str]
) -> TrialRecord:
    """Run one trial solo under an RNG ledger and store it as a replay
    program: the full draw fingerprint, the record payload, and the
    trial's registry delta (captured solo — batched trials interleave
    their counter increments unattributably)."""
    vantage, website, strategy_id, calibration, seed, keyword = task
    registry = get_registry()
    before = registry.snapshot()
    ledger = begin_ledger(seed)
    try:
        ctx = _http_trial_setup(
            vantage, website, strategy_id, calibration, seed, keyword,
            gfw_variant=gfw_variant,
        )
        ledger.mark("run")
        ctx.scenario.run()
        record = _http_trial_finalize(ctx)
    finally:
        end_ledger()
    delta = registry.diff(before)
    scenario = ctx.scenario
    trace = scenario.trace
    if scenario.gfw_packets_at_client and (trace is None or not trace.enabled):
        recycle_packets(scenario.gfw_packets_at_client)
        scenario.gfw_packets_at_client.clear()
    # No release: the solo (non-lease) acquire already parked the scenario
    # in the pool; releasing again would alias one object on the free list.
    replay.record(key, ledger, _http_record_payload(record), delta)
    return record


def _run_http_batch_records(
    tasks: Sequence[Tuple],
    gfw_variant: Optional[str] = None,
) -> List[TrialRecord]:
    """The batch execution entry point, fronted by the replay tier.

    Each task replays (ledger fingerprint matches a stored program — the
    artifact is returned and its registry delta folded), records (a miss
    with program slots left runs solo under a ledger), or falls through
    to the shared-heap batch simulator with the window's other leftovers.
    Byte-identical records and semantic telemetry either way — pinned by
    the replay-parity tier-1 tests.
    """
    if not _replay_tier_active():
        return _run_http_batch_sim(tasks, gfw_variant)
    records: List[Optional[TrialRecord]] = [None] * len(tasks)
    pending: List[Tuple[int, str]] = []
    for index, task in enumerate(tasks):
        key = replay.task_key(task, gfw_variant)
        program = replay.lookup(key, task[4])
        if program is not None:
            records[index] = _http_record_from_payload(program["record"])
            replay.fold(program)
        else:
            pending.append((index, key))
    leftover: List[int] = []
    for index, key in pending:
        if replay.can_record(key):
            records[index] = _record_http_trial(tasks[index], key, gfw_variant)
        else:
            leftover.append(index)
    if leftover:
        fresh = _run_http_batch_sim([tasks[i] for i in leftover], gfw_variant)
        for index, record in zip(leftover, fresh):
            records[index] = record
    return records


def _run_http_batch_sim(
    tasks: Sequence[Tuple],
    gfw_variant: Optional[str] = None,
) -> List[TrialRecord]:
    """Run a window of independent HTTP trials through one shared heap.

    Each task is the usual ``(vantage, website, strategy_id, calibration,
    seed, keyword)`` tuple.  Setup happens in task order (every RNG draw
    a trial makes flows from its own seeded generators, so interleaving
    the *run* phases cannot perturb any trial's draw sequence), then one
    batch run drains every trial to its own horizon, then finalization
    again walks task order.  Byte-identical to running the tasks one at a
    time — pinned by the batch-parity tier-1 tests.
    """
    tracer = get_tracer()
    batch_span = tracer.begin(
        f"http-batch[{len(tasks)}]", "batch", window=len(tasks)
    )
    try:
        batch = BatchSim()
        contexts: List[_HttpTrialContext] = []
        try:
            for task in tasks:
                vantage, website, strategy_id, calibration, seed, keyword = task
                contexts.append(
                    _http_trial_setup(
                        vantage, website, strategy_id, calibration, seed,
                        keyword, gfw_variant=gfw_variant, batch=batch,
                    )
                )
            batch.run(
                [ctx.scenario.calibration.trial_duration for ctx in contexts]
            )
        finally:
            batch.release()
        records = []
        for ctx in contexts:
            records.append(_http_trial_finalize(ctx))
            scenario = ctx.scenario
            # The record is final and the scenario goes straight back to
            # the pool, so the sniffer's forged-reset packets are dead —
            # harvest them into the packet free lists (unless a trace
            # retains them).
            trace = scenario.trace
            if scenario.gfw_packets_at_client and (
                trace is None or not trace.enabled
            ):
                recycle_packets(scenario.gfw_packets_at_client)
                scenario.gfw_packets_at_client.clear()
            release_scenario(scenario)
        return records
    finally:
        tracer.end(batch_span)


def run_http_trial(
    vantage: VantagePoint,
    website: Website,
    strategy_id: Optional[str],
    calibration: Calibration = DEFAULT_CALIBRATION,
    seed: int = 0,
    keyword: bool = True,
    selector: Optional[StrategySelector] = None,
) -> TrialRecord:
    """One request; ``strategy_id=None`` lets INTANG's selector choose.

    When no adaptive selector is threaded through (the trial is then a
    pure function of its arguments), the historical-result cache may
    replay a previously recorded outcome instead of re-simulating —
    INTANG's own trick (§6), applied to the harness.  Disable with
    ``REPRO_RESULT_CACHE=0``.
    """
    note_trials()
    get_registry().counter("trials.run").inc()
    cache_key: Optional[str] = None
    if selector is None and result_cache.enabled():
        cache_key = result_cache.trial_key(
            "http", vantage, website, strategy_id, calibration, seed, keyword
        )
        hit = result_cache.lookup(cache_key)
        if hit is not None and hit.get("record") is not None:
            return _http_record_from_payload(hit["record"])
    record: Optional[TrialRecord] = None
    if selector is None and _replay_tier_active():
        # The replay tier sits behind the result cache: a cache hit never
        # folds telemetry (historical contract), so replay only stands in
        # for trials the cache would have simulated.
        task = (vantage, website, strategy_id, calibration, seed, keyword)
        key = replay.task_key(task, None)
        program = replay.lookup(key, seed)
        if program is not None:
            record = _http_record_from_payload(program["record"])
            replay.fold(program)
        elif replay.can_record(key):
            record = _record_http_trial(task, key, None)
    if record is None:
        record, _scenario = _simulate_http_trial(
            vantage, website, strategy_id, calibration,
            seed=seed, keyword=keyword, selector=selector,
        )
    if cache_key is not None:
        result_cache.record_trial(
            cache_key, record.outcome.value, _http_record_payload(record)
        )
    return record


@dataclass
class RateTriple:
    """Aggregated Success / Failure-1 / Failure-2 rates.

    Carries the raw outcome *counts* beside the historical rate floats,
    so every table row can be read as a distribution-valued verdict
    (``distribution``/``wilson``) instead of a bare point estimate.  The
    count fields default to zero and sit after the originals, keeping
    positional construction in older call sites valid.
    """

    success: float = 0.0
    failure1: float = 0.0
    failure2: float = 0.0
    trials: int = 0
    successes: int = 0
    failure1s: int = 0
    failure2s: int = 0

    @classmethod
    def from_outcomes(cls, outcomes: Iterable[Outcome]) -> "RateTriple":
        counts = {Outcome.SUCCESS: 0, Outcome.FAILURE1: 0, Outcome.FAILURE2: 0}
        total = 0
        for outcome in outcomes:
            counts[outcome] += 1
            total += 1
        if total == 0:
            return cls()
        return cls(
            success=counts[Outcome.SUCCESS] / total,
            failure1=counts[Outcome.FAILURE1] / total,
            failure2=counts[Outcome.FAILURE2] / total,
            trials=total,
            successes=counts[Outcome.SUCCESS],
            failure1s=counts[Outcome.FAILURE1],
            failure2s=counts[Outcome.FAILURE2],
        )

    def as_percentages(self) -> Tuple[float, float, float]:
        return (self.success * 100, self.failure1 * 100, self.failure2 * 100)

    @property
    def distribution(self):
        """The counts as a :class:`~repro.analysis.inconsistency.
        VerdictDistribution` (lazy import: the analysis layer must stay
        optional for pickled pool workers)."""
        from repro.analysis.inconsistency import VerdictDistribution

        return VerdictDistribution(
            self.successes, self.failure1s, self.failure2s
        )

    def wilson(self, z: float = 1.96) -> Tuple[float, float]:
        """Wilson confidence bounds on the success rate."""
        return self.distribution.wilson(z=z)


def _http_outcome_worker(task: Tuple) -> Outcome:
    """Process-pool work unit: one HTTP trial, reduced to its outcome."""
    vantage, website, strategy_id, calibration, seed, keyword = task
    record = run_http_trial(
        vantage, website, strategy_id, calibration, seed=seed, keyword=keyword,
    )
    return record.outcome


def _http_task_key(task: Tuple) -> str:
    vantage, website, strategy_id, calibration, seed, keyword = task
    return result_cache.trial_key(
        "http", vantage, website, strategy_id, calibration, seed, keyword
    )


def _http_outcome_batch_worker(window: Tuple[Tuple, ...]) -> List[Outcome]:
    """Process-pool work unit: a window of HTTP trials on one shared heap.

    Mirrors :func:`run_http_trial`'s bookkeeping per trial (trial count,
    ``trials.run``, historical-result recording) — the parent has already
    filtered cache hits out of the window.
    """
    tasks = list(window)
    cache_on = result_cache.enabled()
    note_trials(len(tasks))
    _TRIALS_RUN.inc(len(tasks))
    records = _run_http_batch_records(tasks)
    outcomes: List[Outcome] = []
    for task, record in zip(tasks, records):
        if cache_on:
            result_cache.record_trial(
                _http_task_key(task), record.outcome.value,
                _http_record_payload(record),
            )
        outcomes.append(record.outcome)
    return outcomes


def _dispatch_http_tasks(
    tasks: List[Tuple], workers: Optional[int], shards: Optional[int] = None
) -> List[Outcome]:
    """Fan trial tasks out — batch-stepped windows unless disabled.

    ``shards`` switches from per-window pool dispatch to the persistent
    shard runner (one contiguous slice of windows per worker, one
    telemetry delta per shard).  Outcomes are identical either way.
    """
    window = batch_window()
    sharded = shards is not None and shards > 1
    if window <= 1 or len(tasks) <= 1:
        if sharded:
            return run_sharded(
                _http_outcome_worker, tasks, shards=shards, workers=workers
            )
        return map_trials(_http_outcome_worker, tasks, workers=workers)
    windows = [
        tuple(tasks[start : start + window])
        for start in range(0, len(tasks), window)
    ]
    trials = [len(w) for w in windows]
    if sharded:
        chunks = run_sharded(
            _http_outcome_batch_worker, windows, shards=shards,
            workers=workers, trials_per_task=trials,
        )
    else:
        chunks = map_trials(
            _http_outcome_batch_worker, windows, workers=workers,
            trials_per_task=trials,
        )
    return [outcome for chunk in chunks for outcome in chunk]


def run_http_outcomes(
    tasks: Sequence[Tuple],
    workers: Optional[int] = None,
    shards: Optional[int] = None,
) -> List[Outcome]:
    """Run independent HTTP trials (serial or fanned out) in task order.

    Each task is a ``(vantage, website, strategy_id, calibration, seed,
    keyword)`` tuple; this is the engine entry point for benches that
    build their own seed formulas (the ablation sweeps).

    Historical results are consulted here, *before* the process-pool
    fan-out, so a fully-cached cell costs a few dict lookups and never
    spawns a worker; outcomes computed by workers are recorded in this
    (parent) process so the next sweep over the same cell is warm.

    Uncached trials run in batch-stepped windows (``REPRO_BATCH_TRIALS``
    trials per shared event heap); set the knob to 1 for the per-trial
    run loop.  The two paths are byte-identical.
    """
    tasks = [tuple(t) for t in tasks]
    if not result_cache.enabled():
        return _dispatch_http_tasks(tasks, workers, shards)
    keys = [_http_task_key(task) for task in tasks]
    outcomes: List[Optional[Outcome]] = []
    for key in keys:
        hit = result_cache.lookup(key)
        outcomes.append(Outcome(hit["outcome"]) if hit is not None else None)
    pending = [index for index, outcome in enumerate(outcomes) if outcome is None]
    if len(pending) < len(tasks):
        note_trials(len(tasks) - len(pending))  # replayed, but still trials
    if pending:
        fresh = _dispatch_http_tasks(
            [tasks[index] for index in pending], workers, shards
        )
        for index, outcome in zip(pending, fresh):
            outcomes[index] = outcome
            result_cache.record_outcome(keys[index], outcome.value)
    return outcomes  # type: ignore[return-value]


def _cell_tasks(
    strategy_id: str,
    vantages: Sequence[VantagePoint],
    websites: Sequence[Website],
    calibration: Calibration,
    repeats: int,
    seed: int,
    keyword: bool,
) -> List[Tuple]:
    return [
        (
            vantage, website, strategy_id, calibration,
            trial_seed(seed, v_index, w_index, repeat, strategy_id), keyword,
        )
        for v_index, vantage in enumerate(vantages)
        for w_index, website in enumerate(websites)
        for repeat in range(repeats)
    ]


def run_strategy_cell(
    strategy_id: str,
    vantages: Sequence[VantagePoint],
    websites: Sequence[Website],
    calibration: Calibration = DEFAULT_CALIBRATION,
    repeats: int = 1,
    seed: int = 0,
    keyword: bool = True,
    workers: Optional[int] = None,
    shards: Optional[int] = None,
) -> RateTriple:
    """One Table 1 cell: a strategy across vantage × site × repeats.

    Trials fan out over ``workers`` processes (default: the
    ``REPRO_WORKERS`` environment knob); the seeds are fixed before
    fan-out, so the resulting :class:`RateTriple` is identical for any
    worker count.  ``shards`` (> 1) routes the fan-out through the
    persistent shard runner instead of per-window dispatch.
    """
    tasks = _cell_tasks(
        strategy_id, vantages, websites, calibration, repeats, seed, keyword
    )
    with get_tracer().span(
        f"cell:{strategy_id}", "sweep",
        strategy=strategy_id, trials=len(tasks), keyword=keyword,
    ):
        outcomes = run_http_outcomes(tasks, workers=workers, shards=shards)
    return RateTriple.from_outcomes(outcomes)


@dataclass
class PerVantageRates:
    """Per-vantage success rates, summarized as Table 4's min/max/avg."""

    rates: Dict[str, RateTriple] = field(default_factory=dict)

    def _extremes(self, attribute: str) -> Tuple[float, float, float]:
        values = [getattr(rate, attribute) for rate in self.rates.values()]
        if not values:
            return (0.0, 0.0, 0.0)
        return (min(values) * 100, max(values) * 100, sum(values) / len(values) * 100)

    def success_min_max_avg(self) -> Tuple[float, float, float]:
        return self._extremes("success")

    def failure1_min_max_avg(self) -> Tuple[float, float, float]:
        return self._extremes("failure1")

    def failure2_min_max_avg(self) -> Tuple[float, float, float]:
        return self._extremes("failure2")


def run_cell_by_provider(
    strategy_id: str,
    vantages: Sequence[VantagePoint],
    websites: Sequence[Website],
    calibration: Calibration = DEFAULT_CALIBRATION,
    repeats: int = 1,
    seed: int = 0,
    keyword: bool = True,
    workers: Optional[int] = None,
) -> Dict[str, RateTriple]:
    """One strategy's rates broken down by provider profile.

    §7.1 observes that "both the Failures 1 and Failures 2 always happen
    with regards to a few specific websites/IPs" and vantage points; the
    per-provider view makes middlebox-driven asymmetries (e.g. Tianjin's
    sanitizers, Aliyun's fragment policy) directly visible.
    """
    tasks = _cell_tasks(
        strategy_id, vantages, websites, calibration, repeats, seed, keyword
    )
    outcomes = run_http_outcomes(tasks, workers=workers)
    outcomes_by_provider: Dict[str, List[Outcome]] = {}
    for task, outcome in zip(tasks, outcomes):
        vantage = task[0]
        outcomes_by_provider.setdefault(vantage.provider_profile, []).append(outcome)
    return {
        provider: RateTriple.from_outcomes(bucket)
        for provider, bucket in outcomes_by_provider.items()
    }


def _vantage_row_worker(task: Tuple) -> RateTriple:
    """Process-pool work unit: one vantage's full trial sequence.

    A whole vantage is one unit (not one trial) because the adaptive
    INTANG row threads a persistent selector through its vantage's
    trials — that sequence is inherently serial, but vantages never share
    state and so fan out cleanly.
    """
    (
        vantage, v_index, websites, strategy_id,
        calibration, repeats, seed, adaptive,
    ) = task
    selector = make_persistent_selector() if adaptive else None
    outcomes: List[Outcome] = []
    for w_index, website in enumerate(websites):
        for repeat in range(repeats):
            record = run_http_trial(
                vantage, website,
                None if adaptive else strategy_id,
                calibration,
                seed=trial_seed(seed, v_index, w_index, repeat,
                                strategy_id or "intang"),
                keyword=True,
                selector=selector,
            )
            outcomes.append(record.outcome)
    return RateTriple.from_outcomes(outcomes)


def run_per_vantage(
    strategy_id: Optional[str],
    vantages: Sequence[VantagePoint],
    websites: Sequence[Website],
    calibration: Calibration = DEFAULT_CALIBRATION,
    repeats: int = 1,
    seed: int = 0,
    adaptive: bool = False,
    workers: Optional[int] = None,
    shards: Optional[int] = None,
) -> PerVantageRates:
    """Per-vantage rates for one strategy, fanned out a vantage at a time."""
    websites = tuple(websites)
    tasks = [
        (vantage, v_index, websites, strategy_id,
         calibration, repeats, seed, adaptive)
        for v_index, vantage in enumerate(vantages)
    ]
    if shards is not None and shards > 1:
        triples = run_sharded(
            _vantage_row_worker, tasks, shards=shards, workers=workers,
            trials_per_task=len(websites) * repeats,
        )
    else:
        triples = map_trials(
            _vantage_row_worker, tasks, workers=workers,
            trials_per_task=len(websites) * repeats,
        )
    result = PerVantageRates()
    for vantage, triple in zip(vantages, triples):
        result.rates[vantage.name] = triple
    return result


def run_table4_row(
    strategy_id: Optional[str],
    vantages: Sequence[VantagePoint],
    websites: Sequence[Website],
    calibration: Calibration = DEFAULT_CALIBRATION,
    repeats: int = 1,
    seed: int = 0,
    adaptive: bool = False,
    workers: Optional[int] = None,
    shards: Optional[int] = None,
) -> PerVantageRates:
    """One Table 4 row; ``adaptive=True`` is the "INTANG Performance" row
    (the selector carries measurement history across repeats)."""
    return run_per_vantage(
        strategy_id, vantages, websites, calibration,
        repeats=repeats, seed=seed, adaptive=adaptive, workers=workers,
        shards=shards,
    )


# ---------------------------------------------------------------------------
# DNS over TCP (Table 6)
# ---------------------------------------------------------------------------
@dataclass
class DNSTrialResult:
    answered: bool
    answer: Optional[str]
    poisoned: bool

    @property
    def success(self) -> bool:
        return self.answered and not self.poisoned and self.answer == HONEST_DNS_ANSWER


def _dns_task_key(
    vantage: VantagePoint,
    resolver: Resolver,
    strategy_id: Optional[str],
    calibration: Calibration,
    seed: int,
    domain: str,
    use_intang: bool,
) -> str:
    return result_cache.trial_key(
        "dns", vantage, resolver, strategy_id, calibration, seed,
        extra=f"{domain}:{'intang' if use_intang else 'bare'}",
    )


def run_dns_trial(
    vantage: VantagePoint,
    resolver: Resolver,
    strategy_id: Optional[str] = "improved-tcb-teardown",
    calibration: Calibration = DEFAULT_CALIBRATION,
    seed: int = 0,
    domain: str = "www.dropbox.com",
    use_intang: bool = True,
) -> DNSTrialResult:
    """Resolve a censored domain once, through INTANG's DNS forwarder.

    Success is the paper's: the honest answer arrives (no poisoning, no
    TCP reset).  Without INTANG the UDP query is poisoned in flight.
    """
    note_trials()
    get_registry().counter("trials.run").inc()
    cache_key: Optional[str] = None
    if result_cache.enabled():
        cache_key = _dns_task_key(
            vantage, resolver, strategy_id, calibration, seed, domain, use_intang
        )
        hit = result_cache.lookup(cache_key)
        if hit is not None and hit.get("record") is not None:
            payload = hit["record"]
            return DNSTrialResult(
                answered=payload["answered"],
                answer=payload["answer"],
                poisoned=payload["poisoned"],
            )
    # §7.2 measured two *specific* resolver routes: interference was
    # seen only from Tianjin, so the firewall is forced there and
    # forced absent elsewhere rather than drawn from the population.
    force_firewall: Optional[bool] = False
    firewall_teardown = 1.0
    if vantage.name == "unicom-tianjin":
        force_firewall = True
        firewall_teardown = TIANJIN_DNS_FIREWALL_TEARDOWN
    scenario = acquire_scenario(
        vantage=vantage, resolver=resolver, calibration=calibration,
        seed=seed, workload="dns",
        force_firewall=force_firewall,
        firewall_teardown_probability=firewall_teardown,
    )
    if use_intang:
        INTANG(
            host=scenario.client,
            tcp_host=scenario.client_tcp,
            clock=scenario.clock,
            network=scenario.network,
            rng=random.Random(seed ^ 0xD5),
            fixed_strategy=strategy_id,
            hop_delta=calibration.hop_delta,
            dns_resolver_ip=resolver.ip,
        )
    assert scenario.udp_client is not None
    client = DNSUdpClient(scenario.udp_client, resolver.ip, scenario.clock)
    answers: List[str] = []
    client.resolve(domain, lambda message: answers.extend(message.answers))
    scenario.run()
    answered = bool(answers)
    answer = answers[0] if answers else None
    result = DNSTrialResult(
        answered=answered,
        answer=answer,
        poisoned=answered and answer != HONEST_DNS_ANSWER,
    )
    if cache_key is not None:
        result_cache.record_trial(
            cache_key,
            "success" if result.success else "failure",
            {
                "answered": result.answered,
                "answer": result.answer,
                "poisoned": result.poisoned,
            },
        )
    return result


def _dns_trial_worker(task: Tuple) -> DNSTrialResult:
    vantage, resolver, strategy_id, calibration, seed, domain, use_intang = task
    return run_dns_trial(
        vantage, resolver, strategy_id, calibration,
        seed=seed, domain=domain, use_intang=use_intang,
    )


def run_dns_cell(
    vantage: VantagePoint,
    resolver: Resolver,
    queries: int,
    strategy_id: Optional[str] = "improved-tcb-teardown",
    calibration: Calibration = DEFAULT_CALIBRATION,
    seed: int = 0,
    domain: str = "www.dropbox.com",
    use_intang: bool = True,
    workers: Optional[int] = None,
) -> float:
    """One Table 6 cell: the success rate of ``queries`` resolutions.

    Query ``q`` uses seed ``seed + q``, fixed before fan-out, so the rate
    is identical for any worker count.
    """
    if queries <= 0:
        return 0.0
    tasks = [
        (vantage, resolver, strategy_id, calibration, seed + q, domain, use_intang)
        for q in range(queries)
    ]
    if not result_cache.enabled():
        results = map_trials(_dns_trial_worker, tasks, workers=workers)
        return sum(1 for r in results if r.success) / queries
    # Replay recorded resolutions before fanning out (see
    # run_http_outcomes for the rationale).
    successes = 0
    pending: List[Tuple] = []
    for task in tasks:
        hit = result_cache.lookup(_dns_task_key(*task))
        if hit is not None:
            note_trials()
            successes += 1 if hit["outcome"] == "success" else 0
        else:
            pending.append(task)
    if pending:
        fresh = map_trials(_dns_trial_worker, pending, workers=workers)
        for task, result in zip(pending, fresh):
            result_cache.record_trial(
                _dns_task_key(*task),
                "success" if result.success else "failure",
                {
                    "answered": result.answered,
                    "answer": result.answer,
                    "poisoned": result.poisoned,
                },
            )
            successes += 1 if result.success else 0
    return successes / queries


# ---------------------------------------------------------------------------
# Tor and VPN (§7.3)
# ---------------------------------------------------------------------------
@dataclass
class TorTrialResult:
    first_circuit_ok: bool
    probe_launched: bool
    ip_blocked: bool
    reconnect_ok: bool


def run_tor_trial(
    vantage: VantagePoint,
    bridge_site: Website,
    strategy_id: Optional[str] = None,
    calibration: Calibration = DEFAULT_CALIBRATION,
    seed: int = 0,
) -> TorTrialResult:
    """Open a circuit, wait out the probe window, try to reconnect.

    ``strategy_id=None`` means bare Tor; with a strategy INTANG hides the
    handshake fingerprint from the GFW so no probe ever fires.
    """
    note_trials()
    get_registry().counter("trials.run").inc()
    scenario = acquire_scenario(
        vantage=vantage, website=bridge_site, calibration=calibration,
        seed=seed, workload="tor",
    )
    if strategy_id is not None:
        INTANG(
            host=scenario.client,
            tcp_host=scenario.client_tcp,
            clock=scenario.clock,
            network=scenario.network,
            rng=random.Random(seed ^ 0x70),
            fixed_strategy=strategy_id,
            hop_delta=calibration.hop_delta,
        )
    client = TorClient(scenario.client_tcp)
    first = client.open_circuit(bridge_site.ip)
    scenario.run(6.0)  # roomy window for detection + active probe
    probes = [
        probe
        for device in scenario.gfw_devices
        if device.active_prober is not None
        for probe in device.active_prober.probes
    ]
    blocked = any(
        bridge_site.ip in device.blocked_ips for device in scenario.gfw_devices
    )
    second = client.open_circuit(bridge_site.ip)
    scenario.run(6.0)
    return TorTrialResult(
        first_circuit_ok=first.established and first.cells_relayed > 0,
        probe_launched=bool(probes),
        ip_blocked=blocked,
        reconnect_ok=second.established and second.cells_relayed > 0,
    )


def _tor_trial_worker(task: Tuple) -> TorTrialResult:
    vantage, bridge_site, strategy_id, calibration, seed = task
    return run_tor_trial(vantage, bridge_site, strategy_id, calibration, seed=seed)


def run_tor_cell(
    vantages: Sequence[VantagePoint],
    bridge_site: Website,
    strategy_id: Optional[str] = None,
    calibration: Calibration = DEFAULT_CALIBRATION,
    seed: int = 0,
    workers: Optional[int] = None,
) -> List[TorTrialResult]:
    """One Tor trial per vantage, in vantage order (§7.3's campaign)."""
    tasks = [
        (vantage, bridge_site, strategy_id, calibration, seed)
        for vantage in vantages
    ]
    return map_trials(_tor_trial_worker, tasks, workers=workers)


@dataclass
class VPNTrialResult:
    established: bool
    frames_ok: bool
    reset: bool


def run_vpn_trial(
    vantage: VantagePoint,
    vpn_site: Website,
    strategy_id: Optional[str] = None,
    calibration: Calibration = DEFAULT_CALIBRATION,
    seed: int = 0,
) -> VPNTrialResult:
    note_trials()
    get_registry().counter("trials.run").inc()
    scenario = acquire_scenario(
        vantage=vantage, website=vpn_site, calibration=calibration,
        seed=seed, workload="vpn",
    )
    if strategy_id is not None:
        INTANG(
            host=scenario.client,
            tcp_host=scenario.client_tcp,
            clock=scenario.clock,
            network=scenario.network,
            rng=random.Random(seed ^ 0x4A),
            fixed_strategy=strategy_id,
            hop_delta=calibration.hop_delta,
        )
    client = OpenVPNClient(scenario.client_tcp)
    session = client.open_session(vpn_site.ip)
    scenario.run(8.0)
    return VPNTrialResult(
        established=session.established,
        frames_ok=session.payload_frames > 0,
        reset=session.reset or scenario.gfw_resets_received() > 0,
    )


def _vpn_trial_worker(task: Tuple) -> VPNTrialResult:
    vantage, vpn_site, strategy_id, calibration, seed = task
    return run_vpn_trial(vantage, vpn_site, strategy_id, calibration, seed=seed)


def run_vpn_cell(
    vantages: Sequence[VantagePoint],
    vpn_site: Website,
    strategy_id: Optional[str] = None,
    calibration: Calibration = DEFAULT_CALIBRATION,
    seed: int = 0,
    workers: Optional[int] = None,
) -> List[VPNTrialResult]:
    """One VPN trial per vantage, in vantage order (§7.3's campaign)."""
    tasks = [
        (vantage, vpn_site, strategy_id, calibration, seed)
        for vantage in vantages
    ]
    return map_trials(_vpn_trial_worker, tasks, workers=workers)
