"""Fleet-scale concurrent-flow engine: many clients, one shared GFW.

The paper measures the GFW one client flow at a time, so its stateful
machinery — the bounded TCB table (§2.1 "costly"), the resync states
(§4), the 90-second blacklist — is never observed under concurrent
load.  This module multiplexes thousands-to-millions of simulated
client flows through **one shared censoring installation**: every flow
still gets its own topology (client, path, TCP stacks) from the
scenario pool, but the GFW devices of all flows in a group are grafted
onto one shared :class:`~repro.gfw.flow.FlowTable`, one shared
:class:`~repro.gfw.blacklist.Blacklist`, one shared
:class:`~repro.gfw.cluster.GFWCluster`, and one shared blocked-IP set.
Flow-table keys are namespaced by a global flow id
(:attr:`GFWDevice.flow_namespace`), so the four-tuples of pooled
scenarios never alias while LRU churn, resync-state pressure, and
blacklist contention are exercised for real.

Everything is deterministic by construction:

- the workload is a pure function of ``(FleetSpec, flow index)`` —
  site popularity, benign/sensitive mix, vantage, strategy, and trial
  seed all derive from crc32 hashes of the spec seed and the index;
- flows are partitioned into ``spec.groups`` client groups (round
  robin by index), each group owning one shared GFW installation, so a
  group is a pure function of ``(spec, group_index)`` and groups can
  run serially or via :func:`run_sharded` with byte-identical merged
  results and trial-semantic telemetry;
- within a group, flows run in waves of ``spec.window`` concurrent
  trials on one ``BatchSim(shared=True)`` heap; the heap's
  ``(time, seq)`` order is deterministic, so the race for shared
  tables replays exactly.

The eviction-induced error accounting (a sensitive flow whose TCB was
LRU-evicted mid-stream sails past the DPI; a benign flow reset purely
because a *different* flow blacklisted its host pair) is an
**extension** of the paper's model — the paper never measured the live
GFW under load — and is labelled as such in DESIGN.md.
"""

from __future__ import annotations

import math
import random
import zlib
from bisect import bisect_right
from dataclasses import dataclass, field, replace
from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.apps.http import HTTPClient
from repro.core.intang import INTANG
from repro.experiments.calibration import DEFAULT_CALIBRATION, Calibration
from repro.experiments.parallel import note_trials, run_sharded
from repro.experiments.runner import BENIGN_PATH, SENSITIVE_PATH, Outcome, classify
from repro.experiments.scenarios import (
    Scenario,
    acquire_scenario,
    release_scenario,
)
from repro.experiments.vantage import CHINA_VANTAGE_POINTS, VantagePoint
from repro.experiments.websites import Website, outside_china_catalog
from repro.gfw.blacklist import Blacklist
from repro.gfw.cluster import GFWCluster
from repro.gfw.flow import FlowTable, GFWFlow, GFWFlowState
from repro.gfw.heterogeneity import (
    active_ensemble,
    is_heterogeneous,
    validate_variant,
)
from repro.gfw.models import model_variant_configs
from repro.netsim.batch import BatchSim
from repro.netstack.packet import recycle_packets
from repro.strategies.registry import TABLE1_ROWS
from repro.telemetry.events import enable_bus, get_bus
from repro.telemetry.export import histogram_quantile
from repro.telemetry.flight import get_flight, packet_summary, tcb_summary
from repro.telemetry.metrics import get_registry
from repro.telemetry.trace import get_tracer, make_span

__all__ = [
    "FleetSpec",
    "FlowSpec",
    "FleetResult",
    "SharedGFWState",
    "flow_spec",
    "site_index",
    "run_fleet",
    "run_fleet_group",
    "effectiveness_curve",
    "DEFAULT_FLEET_STRATEGIES",
]

#: Table-1 strategy ids in row order ("none" first), the default
#: round-robin assignment pool for sensitive flows.
DEFAULT_FLEET_STRATEGIES: Tuple[str, ...] = tuple(
    dict.fromkeys(strategy_id for _, strategy_id, _ in TABLE1_ROWS)
)

_REGISTRY = get_registry()
_FLEET_FLOWS = _REGISTRY.counter("fleet.flows")
_FLEET_SUCCESS = _REGISTRY.counter("fleet.success")
_FLEET_FAILURE1 = _REGISTRY.counter("fleet.failure1")
_FLEET_FAILURE2 = _REGISTRY.counter("fleet.failure2")
#: Sensitive flow that evaded with *no* DPI detection and no cluster
#: miss-draw, whose TCB was LRU-evicted mid-stream: the censor forgot
#: the flow before the keyword arrived.
_FLEET_EVICTION_FN = _REGISTRY.counter("fleet.eviction_false_negatives")
#: Benign flow that received forged resets — collateral from a host
#: pair some *other* flow blacklisted.
_FLEET_BLACKLIST_FP = _REGISTRY.counter("fleet.blacklist_false_positives")
#: Evictions that destroyed a flow parked in the RESYNC state (§4)
#: before it could re-anchor.
_FLEET_EVICT_RESYNC = _REGISTRY.counter("fleet.evictions_in_resync")

#: First-byte-to-verdict sim-latency buckets (seconds of simulated
#: time).  Deterministic — sim times are a pure function of the spec —
#: so this histogram is always on and survives the serial-vs-sharded
#: telemetry parity pins.
_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0
)
_FLEET_LATENCY = _REGISTRY.histogram(
    "fleet.flow_sim_latency", buckets=_LATENCY_BUCKETS
)


def _new_latency_hist() -> Dict[str, object]:
    """An empty per-group latency histogram (registry snapshot shape)."""
    return {
        "buckets": list(_LATENCY_BUCKETS),
        "counts": [0] * (len(_LATENCY_BUCKETS) + 1),
        "sum": 0.0,
        "count": 0,
    }


def _observe_latency(hist: Dict[str, object], value: float) -> None:
    """Mirror ``Histogram.observe`` onto a plain-dict histogram."""
    counts = hist["counts"]
    for i, bound in enumerate(hist["buckets"]):
        if value <= bound:
            counts[i] += 1
            break
    else:
        counts[-1] += 1
    hist["sum"] += value
    hist["count"] += 1

_OUTCOME_COUNTERS = {
    Outcome.SUCCESS: _FLEET_SUCCESS,
    Outcome.FAILURE1: _FLEET_FAILURE1,
    Outcome.FAILURE2: _FLEET_FAILURE2,
}


def _unit(seed: int, index: int, salt: str) -> float:
    """A stable uniform draw in [0, 1) from (seed, index, salt)."""
    return (zlib.crc32(f"{seed}:{index}:{salt}".encode()) & 0xFFFFFFFF) / 2.0**32


@dataclass(frozen=True)
class FleetSpec:
    """A deterministic description of a whole client population.

    Every knob here is *workload* semantics: two runs with equal specs
    produce byte-identical merged results regardless of sharding.  In
    particular ``window`` (how many flows share one batch heap at a
    time) and ``groups`` (how many independent censoring installations
    the population is split across) change which flows race each other
    for shared GFW state, so they live in the spec, not in the
    execution layer.
    """

    #: Total client flows across all groups.
    flows: int
    seed: int = 2017
    #: Catalog size for the heavy-tailed site popularity.
    sites: int = 32
    #: Zipf-like exponent: site at popularity rank r has weight
    #: 1/(r+1)**alpha.
    zipf_alpha: float = 1.1
    #: Fraction of flows that request the sensitive path.
    sensitive_fraction: float = 0.5
    #: Strategy pool assigned round-robin to sensitive flows
    #: ("none" = the paper's baseline client).
    strategies: Tuple[str, ...] = DEFAULT_FLEET_STRATEGIES
    #: Client groups == independent shared GFW installations; sharding
    #: partitions groups (clients), never cells.
    groups: int = 4
    #: Concurrent flows per shared batch heap (wave size).
    window: int = 64
    #: GFW model variant for every device (see gfw/models.py).
    gfw_variant: str = "evolved"
    #: Shared flow-table capacity override; ``None`` keeps the
    #: variant's ``GFWConfig.max_flows``.
    max_flows: Optional[int] = None

    def __post_init__(self) -> None:
        if self.flows < 1:
            raise ValueError("fleet needs at least one flow")
        if self.groups < 1 or self.window < 1 or self.sites < 1:
            raise ValueError("groups, window, and sites must be >= 1")
        if not 0.0 <= self.sensitive_fraction <= 1.0:
            raise ValueError("sensitive_fraction must be within [0, 1]")
        if self.zipf_alpha <= 0.0:
            raise ValueError("zipf_alpha must be positive")
        if not self.strategies:
            raise ValueError("strategies pool must not be empty")
        if self.max_flows is not None and self.max_flows < 1:
            raise ValueError("max_flows override must be >= 1")
        validate_variant(self.gfw_variant)  # registered or heterogeneous

    def group_indices(self, group: int) -> range:
        """Global flow indices owned by ``group`` (round robin)."""
        return range(group, self.flows, self.groups)


@dataclass(frozen=True)
class FlowSpec:
    """One client flow, fully determined by ``(FleetSpec, index)``."""

    index: int
    vantage: VantagePoint
    website: Website
    sensitive: bool
    #: ``None`` for benign flows (no interception framework at all);
    #: ``"none"`` for sensitive baseline clients.
    strategy_id: Optional[str]
    seed: int

    @property
    def label(self) -> str:
        """Aggregation bucket: strategy id, or ``benign``."""
        if not self.sensitive:
            return "benign"
        return self.strategy_id or "none"


@lru_cache(maxsize=64)
def _site_cdf(sites: int, alpha: float) -> Tuple[float, ...]:
    """Normalized CDF of the Zipf-like popularity distribution."""
    weights = [1.0 / (rank + 1) ** alpha for rank in range(sites)]
    total = sum(weights)
    cdf: List[float] = []
    acc = 0.0
    for weight in weights:
        acc += weight / total
        cdf.append(acc)
    cdf[-1] = 1.0
    return tuple(cdf)


def site_index(spec: FleetSpec, index: int) -> int:
    """Popularity-rank site index for flow ``index`` (permutation-stable).

    The draw hashes ``(spec.seed, index)`` directly — no RNG stream is
    shared between flows — so any partition of the index space (group
    round robin, process shards) sees exactly the same site per flow.
    """
    return bisect_right(
        _site_cdf(spec.sites, spec.zipf_alpha), _unit(spec.seed, index, "site")
    )


def flow_spec(spec: FleetSpec, index: int) -> FlowSpec:
    """The fully resolved workload of flow ``index`` (pure function)."""
    catalog = outside_china_catalog(count=spec.sites)
    website = catalog[site_index(spec, index)]
    vantage = CHINA_VANTAGE_POINTS[index % len(CHINA_VANTAGE_POINTS)]
    sensitive = _unit(spec.seed, index, "sensitive") < spec.sensitive_fraction
    strategy_id: Optional[str] = None
    if sensitive:
        strategy_id = spec.strategies[index % len(spec.strategies)]
    return FlowSpec(
        index=index,
        vantage=vantage,
        website=website,
        sensitive=sensitive,
        strategy_id=strategy_id,
        seed=zlib.crc32(f"{spec.seed}:{index}:trial".encode()) & 0x7FFFFFFF,
    )


class SharedGFWState:
    """The one censoring installation an entire flow group shares.

    Holds one flow table, blacklist, and blocked-IP set per device
    position of the model variant, plus one cluster, and persists them
    across every wave of the group — that persistence *is* the load:
    wave N's blacklistings disrupt wave N+1's benign flows, and a full
    table keeps evicting whichever flow was touched least recently.
    """

    def __init__(self, spec: FleetSpec, group: int) -> None:
        self.spec = spec
        self._hetero = is_heterogeneous(spec.gfw_variant)
        self.flow_tables: List[FlowTable] = []
        self.blacklists: List[Blacklist] = []
        self.blocked_ips: List[set] = []
        self.clusters: List[GFWCluster] = []
        #: member variant -> (its cluster, base index into the flat
        #: per-position lists above).  Homogeneous groups hold exactly
        #: one entry keyed by ``spec.gfw_variant``.
        self._members: Dict[str, Tuple[GFWCluster, int]] = {}
        #: Flow ids whose TCB was evicted while still mid-stream.
        self.evicted_active_flows: Set[int] = set()
        #: namespace -> the namespaced flow-table key that was evicted
        #: (flight-recorder context: *which* TCB the LRU dropped).
        self.evicted_keys: Dict[int, object] = {}
        self.evictions_in_resync = 0
        self._bus = get_bus()
        if self._hetero:
            # One full installation per ensemble member, living side by
            # side: routes resolve to members, so wave N's blacklistings
            # on an evolved route never leak onto an old-model route —
            # exactly Ensafi's per-path state independence.  Seeds are
            # salted per member, keeping serial == sharded.
            for member in active_ensemble().members:
                self._install_member(member, spec, group, salt=f":{member}")
        else:
            # Historical single-installation path: seed strings, draw
            # order, and list layout byte-identical to before the
            # heterogeneous axis existed (pinned by the fleet parity
            # tests).
            self._install_member(spec.gfw_variant, spec, group, salt="")
        self.cluster = self.clusters[0]

    def _install_member(
        self, member: str, spec: FleetSpec, group: int, salt: str
    ) -> None:
        """Build one member installation (cluster + per-position state)."""
        configs = model_variant_configs(member)
        group_rng = random.Random(
            zlib.crc32(f"{spec.seed}:{group}:gfw{salt}".encode()) & 0xFFFFFFFF
        )
        cluster = GFWCluster(
            rng=random.Random(group_rng.randrange(2**31)),
            miss_probability=configs[0].miss_probability,
        )
        # NB3 coins are drawn once per installation (device __init__
        # only draws when the cluster lacks them); pre-draw here from
        # the group RNG so grafted devices all share one consistent
        # installation period.
        cluster.rst_resyncs_established = (
            cluster.rng.random() < configs[0].resync_on_rst_probability
        )
        cluster.rst_resyncs_handshake = (
            cluster.rng.random() < configs[0].resync_on_rst_handshake_probability
        )
        self._members[member] = (cluster, len(self.flow_tables))
        self.clusters.append(cluster)
        for config in configs:
            capacity = spec.max_flows or config.max_flows
            table = FlowTable(capacity)
            table.on_evict = self._record_eviction
            self.flow_tables.append(table)
            self.blacklists.append(Blacklist(config.blacklist_duration))
            self.blocked_ips.append(set())

    def _record_eviction(self, key: object, flow: GFWFlow) -> None:
        # Namespaced keys are (flow_id, ConnKey); the fleet engine
        # always namespaces, but stay defensive about plain keys.
        namespace = (
            key[0]
            if isinstance(key, tuple) and key and isinstance(key[0], int)
            else None
        )
        in_resync = flow.state is GFWFlowState.RESYNC
        if in_resync:
            self.evictions_in_resync += 1
            _FLEET_EVICT_RESYNC.inc()
        if not flow.fin_seen and namespace is not None:
            self.evicted_active_flows.add(namespace)
            self.evicted_keys[namespace] = key
        self._bus.publish(
            "fleet",
            "flow_evicted",
            flow=namespace,
            key=repr(key),
            state=flow.state.value,
            after_fin=flow.fin_seen,
            in_resync=in_resync,
        )

    def graft(self, scenario: Scenario, flow_id: int) -> None:
        """Point a freshly built scenario's devices at the shared state.

        Safe because ``build_scenario`` constructs brand-new
        ``GFWDevice`` objects on every (re)build — the per-scenario
        tables we displace here are garbage, and per-flow measurement
        hooks (``detections``, reset counts) stay on the private
        device, so classification remains per-flow.
        """
        member = self.spec.gfw_variant
        if self._hetero:
            # Same pure-crc32 resolution build_scenario used, so the
            # grafted slice always matches the devices the build
            # produced (device count == the member's config count).
            member = active_ensemble().member_for(
                scenario.vantage.name, scenario.website.name
            )
        cluster, base = self._members[member]
        for position, device in enumerate(scenario.gfw_devices):
            device.flows = self.flow_tables[base + position]
            device.blacklist = self.blacklists[base + position]
            device.blocked_ips = self.blocked_ips[base + position]
            device.cluster = cluster
            device.flow_namespace = flow_id

    def end_wave(self) -> None:
        """Per-wave housekeeping: drop the cluster's per-flow miss cache.

        Flows complete within their wave, so their miss draws are dead;
        clearing bounds the cache for million-flow runs.  Table,
        blacklist, and blocked-IP state live on — that is the load.
        """
        for cluster in self.clusters:
            cluster.new_trial()

    @property
    def peak_flows_tracked(self) -> int:
        return max(table.peak_tracked for table in self.flow_tables)


@dataclass
class _FleetFlowContext:
    """One in-flight fleet flow between setup and finalization."""

    flow: FlowSpec
    scenario: Scenario
    intang: Optional[INTANG]
    exchange: object
    #: Sim-time marks: ``start`` (connection established) and
    #: ``verdict`` (first response parse or close, whichever first).
    timing: Dict[str, float] = field(default_factory=dict)


def _fleet_flow_setup(
    spec: FleetSpec,
    flow: FlowSpec,
    shared: SharedGFWState,
    batch: BatchSim,
    calibration: Calibration,
) -> _FleetFlowContext:
    """Lease a scenario, graft the shared censor, queue the workload."""
    scenario = acquire_scenario(
        vantage=flow.vantage,
        website=flow.website,
        calibration=calibration,
        seed=flow.seed,
        workload="http",
        gfw_variant=spec.gfw_variant,
        lease=True,
    )
    batch.adopt(scenario.clock, flow_id=flow.index)
    shared.graft(scenario, flow.index)
    intang: Optional[INTANG] = None
    if flow.strategy_id is not None and flow.strategy_id != "none":
        intang = INTANG(
            host=scenario.client,
            tcp_host=scenario.client_tcp,
            clock=scenario.clock,
            network=scenario.network,
            rng=random.Random(flow.seed ^ 0x5EED),
            fixed_strategy=flow.strategy_id,
            hop_delta=calibration.hop_delta,
        )
        if intang.hop_estimator is not None:
            intang.hop_estimator.measure(flow.website.ip)
    scenario.apply_route_drift()
    client = HTTPClient(scenario.client_tcp)
    timing: Dict[str, float] = {}
    clock = scenario.clock
    conn, exchange = client.get(
        flow.website.ip,
        host=flow.website.name,
        path=SENSITIVE_PATH if flow.sensitive else BENIGN_PATH,
        on_done=lambda _exchange: timing.setdefault("verdict", clock.now),
    )
    # Wrap the client's own callbacks to timestamp the flow's sim-time
    # life: established -> start, first parse or close -> verdict.
    prior_established = conn.on_established
    prior_close = conn.on_close

    def _mark_established(c):
        timing.setdefault("start", clock.now)
        prior_established(c)

    def _mark_close(c, reason):
        timing.setdefault("verdict", clock.now)
        prior_close(c, reason)

    conn.on_established = _mark_established
    conn.on_close = _mark_close
    return _FleetFlowContext(
        flow=flow, scenario=scenario, intang=intang, exchange=exchange,
        timing=timing,
    )


@dataclass
class FleetGroupResult:
    """Order-independent aggregates of one client group."""

    group: int
    flows: int
    flow_events: int
    #: label -> [success, failure1, failure2] counts.
    outcomes: Dict[str, List[int]] = field(default_factory=dict)
    eviction_false_negatives: int = 0
    blacklist_false_positives: int = 0
    evictions_in_resync: int = 0
    flows_created: int = 0
    flows_evicted: int = 0
    flows_evicted_active: int = 0
    flows_evicted_after_fin: int = 0
    blacklistings: int = 0
    peak_flows_tracked: int = 0
    #: First-byte-to-verdict sim-latency histogram (snapshot shape).
    flow_sim_latency: Dict[str, object] = field(
        default_factory=_new_latency_hist
    )


def _dump_flow_anomaly(
    anomaly: str,
    ctx: "_FleetFlowContext",
    shared: SharedGFWState,
    extra_context: Dict[str, object],
) -> None:
    """Flight-record one anomalous flow: ring of its events + snapshots.

    Must run *before* the scenario's sniffed packets are recycled —
    the dump summarizes them.
    """
    flight = get_flight()
    if not flight.enabled:
        return
    flow = ctx.flow
    scenario = ctx.scenario
    ring = [
        e
        for e in get_bus().events()
        if e.fields.get("flow") == flow.index
        or e.fields.get("namespace") == flow.index
    ]
    tcbs = {}
    for position, table in enumerate(shared.flow_tables):
        for key, entry in table.items():
            if isinstance(key, tuple) and key and key[0] == flow.index:
                tcbs[f"device{position}:{key!r}"] = tcb_summary(entry)
    evicted_key = shared.evicted_keys.get(flow.index)
    flight.record(
        anomaly,
        time=scenario.clock.now,
        context={
            "flow": flow.index,
            "label": flow.label,
            "site": flow.website.name,
            "vantage": flow.vantage.name,
            "evicted_key": repr(evicted_key) if evicted_key else None,
            **extra_context,
        },
        events=ring,
        snapshots={
            "tcbs": tcbs,
            "gfw_packets_at_client": [
                packet_summary(p) for p in scenario.gfw_packets_at_client
            ],
        },
    )


def _finalize_flow(
    ctx: _FleetFlowContext, shared: SharedGFWState, result: FleetGroupResult
) -> None:
    """Classify one finished flow and attribute shared-state errors."""
    scenario = ctx.scenario
    flow = ctx.flow
    resets = scenario.gfw_resets_received()
    outcome = classify(ctx.exchange.got_response, resets)
    bucket = result.outcomes.setdefault(flow.label, [0, 0, 0])
    bucket[
        0 if outcome is Outcome.SUCCESS
        else 1 if outcome is Outcome.FAILURE1
        else 2
    ] += 1
    _FLEET_FLOWS.inc()
    _OUTCOME_COUNTERS[outcome].inc()
    # First byte to verdict, in simulated seconds.  A flow that never
    # established starts at 0; one that never resolved is charged the
    # full horizon (the honest p99 for a stalled flow).
    started = ctx.timing.get("start", 0.0)
    verdict_time = ctx.timing.get("verdict", scenario.clock.now)
    # Quantized to a dyadic grid (multiples of 2^-20 s, ~1 µs): every
    # observation and every partial sum is then exactly representable,
    # so the histogram's float ``sum`` is identical under any
    # serial/sharded grouping (the telemetry-parity pins).
    latency = round(max(0.0, verdict_time - started) * 1048576.0) / 1048576.0
    _FLEET_LATENCY.observe(latency)
    _observe_latency(result.flow_sim_latency, latency)
    tracer = get_tracer()
    if tracer.enabled:
        tracer.add(
            make_span(
                f"flow{flow.index}",
                "flow",
                sim_start=started,
                sim_end=verdict_time,
                attrs={
                    "flow": flow.index,
                    "label": flow.label,
                    "site": flow.website.name,
                    "outcome": outcome.value,
                    "sim_latency": latency,
                },
            )
        )
    bus = get_bus()
    if (
        flow.sensitive
        and outcome is Outcome.SUCCESS
        and scenario.gfw_detections() == 0
        and not any(d.missed_detections for d in scenario.gfw_devices)
        and flow.index in shared.evicted_active_flows
    ):
        result.eviction_false_negatives += 1
        _FLEET_EVICTION_FN.inc()
        bus.publish(
            "fleet",
            "eviction_false_negative",
            time=scenario.clock.now,
            flow=flow.index,
            site=flow.website.name,
            strategy=flow.label,
        )
        _dump_flow_anomaly(
            "eviction_false_negative", ctx, shared,
            {"outcome": outcome.value, "strategy": flow.label},
        )
    if not flow.sensitive and resets > 0:
        result.blacklist_false_positives += 1
        _FLEET_BLACKLIST_FP.inc()
        bus.publish(
            "fleet",
            "blacklist_false_positive",
            time=scenario.clock.now,
            flow=flow.index,
            site=flow.website.name,
            resets=resets,
        )
        _dump_flow_anomaly(
            "blacklist_false_positive", ctx, shared,
            {"outcome": outcome.value, "resets": resets},
        )
    # The record is final; harvest the sniffer's forged packets into
    # the packet free lists and hand the scenario back to the pool.
    if scenario.gfw_packets_at_client:
        recycle_packets(scenario.gfw_packets_at_client)
        scenario.gfw_packets_at_client.clear()
    release_scenario(scenario)


def run_fleet_group(
    spec: FleetSpec,
    group: int,
    calibration: Calibration = DEFAULT_CALIBRATION,
) -> FleetGroupResult:
    """Run one client group against its shared censor, wave by wave.

    Pure function of ``(spec, group)``: this is the unit
    :func:`run_fleet` shards across processes.
    """
    if get_flight().enabled:
        # The ring must be filling on the serial-inline path too, where
        # no pool-worker payload flipped the bus on.
        enable_bus(True)
    tracer = get_tracer()
    shared = SharedGFWState(spec, group)
    indices = list(spec.group_indices(group))
    result = FleetGroupResult(group=group, flows=len(indices), flow_events=0)
    group_span = tracer.begin(
        f"fleet.group{group}", "sweep", group=group, flows=len(indices)
    )
    for wave_number, start in enumerate(range(0, len(indices), spec.window)):
        wave = indices[start : start + spec.window]
        wave_span = tracer.begin(
            f"wave{wave_number}", "wave", wave=wave_number, flows=len(wave)
        )
        batch = BatchSim(shared=True)
        contexts: List[_FleetFlowContext] = []
        try:
            for index in wave:
                contexts.append(
                    _fleet_flow_setup(
                        spec, flow_spec(spec, index), shared, batch, calibration
                    )
                )
            result.flow_events += batch.run(
                [ctx.scenario.calibration.trial_duration for ctx in contexts]
            )
        finally:
            batch.release()
        for ctx in contexts:
            _finalize_flow(ctx, shared, result)
        shared.end_wave()
        if wave_span is not None:
            # The wave ends when its slowest flow does (sim time).
            tracer.end(
                wave_span,
                sim_end=max(
                    (s["sim_end"] for s in wave_span["children"]),
                    default=0.0,
                ),
            )
    tracer.end(group_span)
    result.evictions_in_resync = shared.evictions_in_resync
    result.flows_created = sum(t.flows_created for t in shared.flow_tables)
    result.flows_evicted = sum(t.flows_evicted for t in shared.flow_tables)
    result.flows_evicted_active = sum(
        t.flows_evicted_active for t in shared.flow_tables
    )
    result.flows_evicted_after_fin = sum(
        t.flows_evicted_after_fin for t in shared.flow_tables
    )
    result.blacklistings = sum(b.total_blacklistings for b in shared.blacklists)
    result.peak_flows_tracked = shared.peak_flows_tracked
    return result


def _fleet_group_worker(task: Tuple[FleetSpec, int]) -> FleetGroupResult:
    """Module-level shard worker (pickles); counts its own trials."""
    spec, group = task
    result = run_fleet_group(spec, group)
    note_trials(result.flows)
    return result


@dataclass
class FleetResult:
    """Merged, order-independent aggregates of a whole fleet run."""

    spec: FleetSpec
    flows: int
    flow_events: int
    outcomes: Dict[str, List[int]]
    eviction_false_negatives: int
    blacklist_false_positives: int
    evictions_in_resync: int
    flows_created: int
    flows_evicted: int
    flows_evicted_active: int
    flows_evicted_after_fin: int
    blacklistings: int
    peak_flows_tracked: int
    flow_sim_latency: Dict[str, object] = field(
        default_factory=_new_latency_hist
    )

    @classmethod
    def merge(
        cls, spec: FleetSpec, groups: Sequence[FleetGroupResult]
    ) -> "FleetResult":
        outcomes: Dict[str, List[int]] = {}
        latency = _new_latency_hist()
        for group in groups:
            for label, counts in group.outcomes.items():
                bucket = outcomes.setdefault(label, [0, 0, 0])
                for i in range(3):
                    bucket[i] += counts[i]
            other = group.flow_sim_latency
            latency["counts"] = [
                a + b for a, b in zip(latency["counts"], other["counts"])
            ]
            latency["count"] += other["count"]
        # fsum, not +=: exact summation makes the merged float identical
        # under any group permutation (the order-independence pin).
        latency["sum"] = math.fsum(
            g.flow_sim_latency["sum"] for g in groups
        )
        return cls(
            spec=spec,
            flows=sum(g.flows for g in groups),
            flow_events=sum(g.flow_events for g in groups),
            outcomes={label: outcomes[label] for label in sorted(outcomes)},
            eviction_false_negatives=sum(
                g.eviction_false_negatives for g in groups
            ),
            blacklist_false_positives=sum(
                g.blacklist_false_positives for g in groups
            ),
            evictions_in_resync=sum(g.evictions_in_resync for g in groups),
            flows_created=sum(g.flows_created for g in groups),
            flows_evicted=sum(g.flows_evicted for g in groups),
            flows_evicted_active=sum(g.flows_evicted_active for g in groups),
            flows_evicted_after_fin=sum(
                g.flows_evicted_after_fin for g in groups
            ),
            blacklistings=sum(g.blacklistings for g in groups),
            peak_flows_tracked=max(g.peak_flows_tracked for g in groups),
            flow_sim_latency=latency,
        )

    def success_rate(self, label: str) -> Optional[float]:
        counts = self.outcomes.get(label)
        if not counts or sum(counts) == 0:
            return None
        return counts[0] / sum(counts)

    def strategy_rates(self) -> Dict[str, float]:
        """Evasion success per strategy label (benign bucket excluded)."""
        rates = {}
        for label in self.outcomes:
            if label == "benign":
                continue
            rate = self.success_rate(label)
            if rate is not None:
                rates[label] = rate
        return rates

    def to_dict(self) -> Dict[str, object]:
        return {
            "spec": {
                "flows": self.spec.flows,
                "seed": self.spec.seed,
                "sites": self.spec.sites,
                "zipf_alpha": self.spec.zipf_alpha,
                "sensitive_fraction": self.spec.sensitive_fraction,
                "strategies": list(self.spec.strategies),
                "groups": self.spec.groups,
                "window": self.spec.window,
                "gfw_variant": self.spec.gfw_variant,
                "max_flows": self.spec.max_flows,
            },
            "flows": self.flows,
            "flow_events": self.flow_events,
            "outcomes": {k: list(v) for k, v in self.outcomes.items()},
            "strategy_success": self.strategy_rates(),
            "eviction_false_negatives": self.eviction_false_negatives,
            "blacklist_false_positives": self.blacklist_false_positives,
            "evictions_in_resync": self.evictions_in_resync,
            "flows_created": self.flows_created,
            "flows_evicted": self.flows_evicted,
            "flows_evicted_active": self.flows_evicted_active,
            "flows_evicted_after_fin": self.flows_evicted_after_fin,
            "blacklistings": self.blacklistings,
            "peak_flows_tracked": self.peak_flows_tracked,
            "flow_sim_latency": {
                "count": self.flow_sim_latency["count"],
                "mean": (
                    self.flow_sim_latency["sum"]
                    / self.flow_sim_latency["count"]
                    if self.flow_sim_latency["count"]
                    else 0.0
                ),
                "p50": histogram_quantile(self.flow_sim_latency, 0.50),
                "p90": histogram_quantile(self.flow_sim_latency, 0.90),
                "p99": histogram_quantile(self.flow_sim_latency, 0.99),
            },
        }


def run_fleet(
    spec: FleetSpec,
    shards: Optional[int] = 1,
    workers: Optional[int] = None,
) -> FleetResult:
    """Run the whole fleet, optionally sharding groups across processes.

    Sharding partitions *clients* (whole groups, each with its own
    shared censor), never cells: a group never straddles two
    processes, so shared-state coupling is identical for any shard
    count and the merged result is byte-identical to the serial run
    (telemetry modulo execution-strategy counters, exactly like
    ``run_sharded`` elsewhere).
    """
    tasks = [(spec, group) for group in range(spec.groups)]
    trials_per_task = [len(spec.group_indices(g)) for g in range(spec.groups)]
    results = run_sharded(
        _fleet_group_worker,
        tasks,
        shards=1 if shards is None else shards,
        workers=workers,
        trials_per_task=trials_per_task,
    )
    return FleetResult.merge(spec, results)


def effectiveness_curve(
    base_spec: FleetSpec,
    sizes: Sequence[int],
    shards: Optional[int] = 1,
    workers: Optional[int] = None,
) -> List[Tuple[int, FleetResult]]:
    """Strategy effectiveness as fleet size sweeps past ``max_flows``.

    Returns ``(fleet_size, FleetResult)`` per point; plotting
    ``strategy_rates()`` against size shows what the paper could never
    measure — how each Table-1 strategy fares once the censor's bounded
    TCB table starts thrashing.
    """
    points: List[Tuple[int, FleetResult]] = []
    for size in sizes:
        spec = replace(base_spec, flows=size)
        points.append((size, run_fleet(spec, shards=shards, workers=workers)))
    return points
