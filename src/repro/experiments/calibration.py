"""Calibration knobs: where the table-shaped numbers come from.

Every stochastic ingredient of the measurement environment is a field
here, each anchored to a paper observation.  The success/failure rates
of Tables 1/4/6 are *emergent*: they fall out of mechanism (TTL expiry,
middlebox profiles, the GFW state machines) exercised under these
environmental frequencies — no table cell is hard-coded anywhere.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Tuple


@dataclass(frozen=True)
class Calibration:
    """Environmental frequencies for experiment scenarios."""

    # -- GFW population ------------------------------------------------------
    #: §3.4: a persistent ~2.8 % of flows slip past even with no strategy
    #: ("possibly because of overloading of the GFW", first seen in 2007).
    gfw_miss_probability: float = 0.028
    #: Fraction of paths still served only by old-model devices — the
    #: headroom above the miss rate in Table 1's "TCB creation" success.
    old_model_only_fraction: float = 0.04
    #: Fraction of paths where old and evolved devices co-exist (§7.1's
    #: reason for combining strategies).
    both_models_fraction: float = 0.15
    #: Evolved devices that kept the old last-wins preference for queued
    #: out-of-order TCP segments (Table 1: that strategy still succeeds
    #: ~31 % of the time).
    evolved_tcp_ooo_lastwins_fraction: float = 0.32
    #: Evolved devices that ignore flag-less segments (Table 1's ~48 %
    #: "No TCP flag" failure rate net of the Tianjin middlebox).
    evolved_ignores_noflag_fraction: float = 0.42
    #: Evolved devices that do validate ACK numbers on data packets
    #: (Table 1 "Bad ACK number": 9.5 % Failure 2).
    evolved_validates_ack_fraction: float = 0.07
    #: Evolved devices that retained FIN teardown (Table 1's FIN rows
    #: succeed slightly above the old-model+overload floor).
    evolved_fin_teardown_fraction: float = 0.06
    #: NB3 coin: RST becomes RESYNC instead of teardown (§4: "the overall
    #: success rate is roughly 80 %"), drawn per installation per period.
    resync_on_rst_probability: float = 0.20
    #: Same, for RSTs inside the handshake window ("way more frequently").
    resync_on_rst_handshake_probability: float = 0.80

    # -- network dynamics -------------------------------------------------------
    #: Probability the route changed between hop measurement and trial
    #: (§3.4 "network dynamics"), inside China…
    route_drift_probability: float = 0.12
    #: …and for outside-China vantage points, where the GFW sits within a
    #: few hops of the server and routes are long (§7.1).
    route_drift_probability_outside: float = 0.15
    #: (side, delta, weight): how routes drift when they do.  Server-side
    #: shortening makes stale TTLs reach the server (Failure 1);
    #: client-side lengthening makes them fall short of the GFW
    #: (Failure 2).
    drift_choices: Tuple[Tuple[str, int, float], ...] = (
        ("server", -2, 0.35),
        ("server", -1, 0.10),
        ("client", 4, 0.30),
        ("client", 2, 0.25),
    )
    #: Outside-China routes drift mostly within China's border segment
    #: (server side, relative to the measuring client).
    outside_drift_choices: Tuple[Tuple[str, int, float], ...] = (
        ("server", -2, 0.50),
        ("server", -1, 0.20),
        ("client", 2, 0.30),
    )
    #: §7.1 outside China: "it is extremely hard to converge to a TTL
    #: value … that satisfies the requirement of hitting the GFW but not
    #: the server" — probability the tcptraceroute-style measurement
    #: overshoots by two hops on those long asymmetric routes, sending
    #: TTL-limited insertion packets all the way to the server.
    outside_ttl_error_probability: float = 0.07
    #: Steady-state per-traversal loss probability.
    base_loss_rate: float = 0.01
    #: Probability a trial happens during a loss burst, and the burst's
    #: loss rate (stands in for the paper's excluded "slow or
    #: unresponsive" tail and transient congestion).
    burst_loss_probability: float = 0.012
    burst_loss_rate: float = 0.45
    #: Per-segment delay jitter as a fraction of the nominal per-hop
    #: delay (see :class:`repro.netsim.network.Path`).  Zero in the
    #: paper-default environment; the conformance fault grid sweeps it to
    #: exercise reordering under the same verdict oracles.
    path_jitter: float = 0.0

    # -- client-side equipment ---------------------------------------------------
    #: §3.4: some NAT/state-checking firewalls adopt insertion packets
    #: into their own state and then blackhole the real connection.
    stateful_firewall_fraction: float = 0.025
    #: Of those, the fraction that additionally enforce sequence windows
    #: (and therefore also eat fake-SYN/desync insertion packets).
    firewall_checks_sequences_fraction: float = 0.5

    # -- server population ---------------------------------------------------------
    #: Alexa servers still on pre-3.x kernels (accept no-flag data,
    #: don't validate ACK numbers, pre-RFC5961 RST handling).
    old_server_fraction: float = 0.08
    #: Servers whose out-of-order overlap preference matches the GFW's
    #: junk-keeping (§3.4 "a server might accept the junk data").
    server_ooo_lastwins_fraction: float = 0.05

    # -- GFW placement -----------------------------------------------------------
    #: Inside China the GFW tap sits at this fraction of the path.
    gfw_position_range: Tuple[float, float] = (0.50, 0.75)
    #: Outside China the GFW is within a few hops of the Chinese server
    #: (§7.1: "sometimes co-located"): hops-from-server and weights.
    outside_gfw_server_gap: Tuple[Tuple[int, float], ...] = (
        (2, 0.04),
        (3, 0.40),
        (4, 0.36),
        (5, 0.20),
    )

    # -- spatiotemporal heterogeneity (extension, not paper) -------------------------
    #: Simulated hour-of-day (0–24) the trial runs at.  Only routes of
    #: the ``heterogeneous`` GFW pseudo-variant consult it (diurnal
    #: reset-suppression curves, :mod:`repro.gfw.heterogeneity`); every
    #: paper-default experiment is hour-invariant.  A distinct hour also
    #: changes the calibration fingerprint, so the replay/result-cache
    #: tiers key hours apart instead of aliasing them.
    sim_hour: float = 12.0

    # -- tool parameters ------------------------------------------------------------
    #: §3.4: insertion packets are repeated against loss.
    insertion_copies: int = 3
    #: §7.1: δ subtracted from the measured hop count.
    hop_delta: int = 2
    #: Sim-seconds to run each trial before classification.
    trial_duration: float = 10.0

    def variant(self, **changes: object) -> "Calibration":
        return replace(self, **changes)  # type: ignore[arg-type]


#: The default environment used by all table reproductions.
DEFAULT_CALIBRATION = Calibration()

#: A sterile environment — no loss, no drift, no middlebox randomness,
#: no GFW misses — used by unit/integration tests that assert mechanism.
CLEAN_ROOM = Calibration(
    gfw_miss_probability=0.0,
    old_model_only_fraction=0.0,
    both_models_fraction=0.0,
    evolved_tcp_ooo_lastwins_fraction=0.0,
    evolved_ignores_noflag_fraction=0.0,
    evolved_validates_ack_fraction=0.0,
    evolved_fin_teardown_fraction=0.0,
    resync_on_rst_probability=0.0,
    resync_on_rst_handshake_probability=0.0,
    route_drift_probability=0.0,
    route_drift_probability_outside=0.0,
    outside_ttl_error_probability=0.0,
    base_loss_rate=0.0,
    burst_loss_probability=0.0,
    stateful_firewall_fraction=0.0,
    old_server_fraction=0.0,
    server_ooo_lastwins_fraction=0.0,
)
