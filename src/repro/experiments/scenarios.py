"""Scenario builders: assemble Fig. 1's threat model as a live topology.

One scenario = one client (a vantage point) + one target (a website,
resolver, Tor bridge, or VPN server) joined by a multi-hop path carrying
the vantage's client-side middleboxes (Table 2) and a GFW installation
whose composition (device generations, reassembly quirks, NB3 coin) is
drawn from the :class:`~repro.experiments.calibration.Calibration`.

Scenarios are cheap, disposable objects: the experiment runner builds a
fresh one per trial, which both isolates trials (no 90-second blacklist
bleed) and re-draws the per-installation behaviour coins — matching the
paper's observation that GFW behaviour is consistent within a period but
varies across periods.
"""

from __future__ import annotations

import random
from collections import OrderedDict
from dataclasses import dataclass, field, replace as dataclass_replace
from functools import lru_cache
from typing import Any, Dict, List, Optional

from repro.netstack.fragment import OverlapPolicy
from repro.netstack.packet import IPPacket
from repro.netsim.network import Network, Path
from repro.netsim.node import Host
from repro.netsim.simclock import SimClock
from repro.netsim.trace import TraceRecorder
from repro.tcp.profiles import profile_by_name
from repro.tcp.stack import TCPHost
from repro.middlebox.boxes import StatefulFirewallBox
from repro.gfw.active_prober import ActiveProber
from repro.gfw.cluster import GFWCluster
from repro.gfw.device import GFWDevice
from repro.gfw.dns_poisoner import DNSPoisoner
from repro.gfw.heterogeneity import resolve_route
from repro.gfw.models import (
    GFWConfig,
    evolved_config,
    model_variant_configs,
    old_config,
)
from repro.apps.http import HTTPServer
from repro.apps.dns import DNSTcpResolver, DNSUdpResolver
from repro.apps.tor import TorBridge
from repro.apps.udp import UDPHost
from repro.apps.vpn import OpenVPNServer
from repro.core.env import env_flag, env_int
from repro.rngledger import TrialRandom, ledger_root
from repro.experiments.calibration import Calibration, DEFAULT_CALIBRATION
from repro.experiments.vantage import VantagePoint
from repro.experiments.websites import Resolver, Website
from repro.telemetry.metrics import get_registry

#: Hop index where the vantage provider's equipment sits.
CLIENT_MIDDLEBOX_HOP = 2
#: Hop index for optional stateful firewalls (client side, past the NAT).
FIREWALL_HOP = 3

#: The real answer our simulated resolvers return for censored domains.
HONEST_DNS_ANSWER = "104.16.100.29"


@dataclass
class Scenario:
    """A fully wired client/GFW/server topology for one trial."""

    clock: SimClock
    network: Network
    rng: random.Random
    vantage: VantagePoint
    calibration: Calibration
    path: Path
    client: Host
    server: Host
    client_tcp: TCPHost
    server_tcp: TCPHost
    gfw_devices: List[GFWDevice]
    cluster: GFWCluster
    website: Optional[Website] = None
    resolver: Optional[Resolver] = None
    trace: Optional[TraceRecorder] = None
    #: GFW-forged packets that reached the client (set by the sniffer).
    gfw_packets_at_client: List[IPPacket] = field(default_factory=list)
    http_server: Optional[HTTPServer] = None
    udp_client: Optional[UDPHost] = None
    udp_server: Optional[UDPHost] = None
    tor_bridge: Optional[TorBridge] = None
    vpn_server: Optional[OpenVPNServer] = None
    #: Keyword arguments :func:`build_scenario` was called with (everything
    #: but ``seed``), kept so :meth:`reset` can replay the build.
    _build_args: Optional[Dict[str, Any]] = None
    #: Free-list key when this scenario came from :func:`acquire_scenario`;
    #: :func:`release_scenario` uses it to return the scenario to its cell.
    _pool_key: Optional[tuple] = None

    def run(self, duration: Optional[float] = None) -> None:
        self.clock.run_for(duration or self.calibration.trial_duration)

    def apply_route_drift(self) -> Optional[str]:
        """Maybe drift the route (call *after* hop measurement).

        Returns a description of the applied drift, or None.
        """
        probability = (
            self.calibration.route_drift_probability
            if self.vantage.inside_china
            else self.calibration.route_drift_probability_outside
        )
        if not self.rng.coin(probability):
            return None
        choices = (
            self.calibration.drift_choices
            if self.vantage.inside_china
            else self.calibration.outside_drift_choices
        )
        side, delta, _weight = choices[
            self.rng.branch(tuple(weight for _, _, weight in choices))
        ]
        try:
            if side == "server":
                self.path.drift_server_side(delta)
            else:
                self.path.drift_client_side(delta)
        except ValueError:
            return None  # drift would be geometrically impossible; skip
        return f"{side}{delta:+d}"

    def reset(self, seed: int) -> "Scenario":
        """Rebuild this trial topology for a new seed, reusing the heavy
        pieces (clock, network, hosts, path, TCP stacks) in place.

        Returns a fresh :class:`Scenario` wrapper.  The rebuild replays
        :func:`build_scenario`'s exact RNG draw sequence against reset
        objects, so results are byte-identical to a from-scratch build
        with the same arguments and seed.
        """
        if self._build_args is None:
            raise ValueError(
                "scenario was not created by build_scenario; cannot reset"
            )
        return build_scenario(seed=seed, reuse=self, **self._build_args)

    def gfw_detections(self) -> int:
        return sum(len(device.detections) for device in self.gfw_devices)

    def gfw_resets_received(self) -> int:
        return len(self.gfw_packets_at_client)


def _draw_loss_rate(rng: TrialRandom, calibration: Calibration) -> float:
    if rng.coin(calibration.burst_loss_probability):
        return calibration.burst_loss_rate
    return calibration.base_loss_rate


#: The three installation compositions, indexed by the population pick.
_GFW_GENERATIONS = (["old", "old2"], ["evolved", "old"], ["evolved", "evolved2"])


def _gfw_configs(
    rng: TrialRandom, calibration: Calibration, vantage: VantagePoint
) -> List[GFWConfig]:
    """Draw the installation composition and shared behaviour quirks."""
    generations = list(
        _GFW_GENERATIONS[
            rng.pick(
                (
                    calibration.old_model_only_fraction,
                    calibration.old_model_only_fraction
                    + calibration.both_models_fraction,
                )
            )
        ]
    )
    # Installation-wide quirk draws (devices at one tap share a version).
    tcp_ooo = (
        OverlapPolicy.LAST_WINS
        if rng.coin(calibration.evolved_tcp_ooo_lastwins_fraction)
        else OverlapPolicy.FIRST_WINS
    )
    ignores_noflag = rng.coin(calibration.evolved_ignores_noflag_fraction)
    validates_ack = rng.coin(calibration.evolved_validates_ack_fraction)
    fin_teardown = rng.coin(calibration.evolved_fin_teardown_fraction)
    configs: List[GFWConfig] = []
    for generation in generations:
        if generation.startswith("old"):
            config = old_config(reset_type=1 if generation == "old" else 2)
        else:
            config = evolved_config(
                reset_type=2 if generation == "evolved" else 1
            )
            config.tcp_ooo_policy = tcp_ooo
            config.accepts_no_flag_data = not ignores_noflag
            config.validates_ack_number = validates_ack
            config.fin_tears_down = fin_teardown
            config.resync_on_rst_probability = calibration.resync_on_rst_probability
            config.resync_on_rst_handshake_probability = (
                calibration.resync_on_rst_handshake_probability
            )
        config.miss_probability = calibration.gfw_miss_probability
        config.rules.detect_tor = vantage.tor_filtered
        configs.append(config)
    # Evolved devices must initialize the cluster's NB3 coin, so order
    # them first (old devices never consult it).
    configs.sort(key=lambda cfg: cfg.model != "evolved")
    return configs


@lru_cache(maxsize=64)
def _profile_variant(name: str, ooo_lastwins: bool):
    """Memoized stack-profile lookup (profiles are frozen dataclasses).

    A paper-scale sweep builds millions of scenarios against a handful of
    distinct profile variants; sharing one instance per variant replaces a
    per-trial linear registry scan + dataclass copy with a dict hit.
    """
    profile = profile_by_name(name)
    if ooo_lastwins:
        profile = dataclass_replace(profile, ooo_overlap=OverlapPolicy.LAST_WINS)
    return profile


def _server_profile(website: Optional[Website]):
    if website is None:
        return _profile_variant("linux-4.4", False)
    return _profile_variant(website.server_profile, website.server_ooo_lastwins)


def _path_geometry(
    vantage: VantagePoint,
    rng: random.Random,
    calibration: Calibration,
    hop_count: int,
    gfw_hop: int,
) -> tuple:
    """Inside China the geometry comes from the website; outside China
    the GFW squeezes up against the Chinese server (§7.1)."""
    if vantage.inside_china:
        return hop_count, gfw_hop
    hop_count = hop_count + 6  # transcontinental transit
    gaps = calibration.outside_gfw_server_gap
    gap = gaps[rng.branch(tuple(weight for _, weight in gaps))][0]
    return hop_count, max(2, hop_count - gap)


def build_scenario(
    vantage: VantagePoint,
    website: Optional[Website] = None,
    resolver: Optional[Resolver] = None,
    calibration: Calibration = DEFAULT_CALIBRATION,
    seed: int = 0,
    workload: str = "http",
    trace: bool = False,
    force_firewall: Optional[bool] = None,
    firewall_teardown_probability: float = 1.0,
    gfw_variant: Optional[str] = None,
    reuse: Optional[Scenario] = None,
) -> Scenario:
    """Build one trial topology.

    ``workload`` is one of ``http``, ``dns``, ``tor``, ``vpn``.  The
    server end is the website (http), the resolver (dns), a Tor bridge,
    or a VPN server.

    ``gfw_variant`` forces the installation to a named model variant from
    :data:`repro.gfw.models.MODEL_VARIANT_FACTORIES` instead of drawing
    the device composition from the calibration's population fractions —
    the conformance harness uses this so a matrix cell's verdict is a
    pure function of (strategy, variant, profile, fault point, seed).

    ``reuse`` hands back a previous scenario for the same endpoints whose
    heavy objects (clock, network, hosts, path, TCP stacks) are reset and
    re-wired in place rather than reallocated.  Both code paths share the
    same draw sequence from ``Random(seed)``, so fresh and reused builds
    are indistinguishable trial-for-trial; everything behavioural
    (middleboxes, firewall, GFW devices, workload apps) is still rebuilt
    per trial, preserving the trial-isolation contract above.
    """
    rng = ledger_root(seed)
    if reuse is None:
        clock = SimClock()
        recorder = TraceRecorder(enabled=trace)
        network = Network(clock=clock, rng=rng.spawn(), trace=recorder)
    else:
        clock = reuse.clock
        clock.reset()
        recorder = reuse.trace
        recorder.reset(enabled=trace)
        network = reuse.network
        network.rng = rng.spawn()
        network.undeliverable = 0

    if workload == "dns":
        if resolver is None:
            raise ValueError("dns workload needs a resolver")
        server_ip = resolver.ip
        hop_count, gfw_hop = resolver.hop_count, resolver.gfw_hop
        server_name = resolver.name
    else:
        if website is None:
            raise ValueError(f"{workload} workload needs a website")
        server_ip = website.ip
        hop_count, gfw_hop = website.hop_count, website.gfw_hop
        server_name = website.name
    hop_count, gfw_hop = _path_geometry(vantage, rng, calibration, hop_count, gfw_hop)

    base_delay = 0.04 if vantage.inside_china else 0.09
    if reuse is None:
        client = network.add_host(Host(vantage.ip, vantage.name))
        server = network.add_host(Host(server_ip, server_name))
        path = Path(
            client_ip=vantage.ip,
            server_ip=server_ip,
            hop_count=hop_count,
            base_delay=base_delay,
            loss_rate=_draw_loss_rate(rng, calibration),
            jitter=calibration.path_jitter,
        )
        network.add_path(path)
    else:
        if reuse.client.ip != vantage.ip or reuse.server.ip != server_ip:
            raise ValueError(
                "reuse scenario endpoints do not match: "
                f"{reuse.client.ip}->{reuse.server.ip} vs {vantage.ip}->{server_ip}"
            )
        client = reuse.client
        server = reuse.server
        client.reset()
        server.reset()
        path = reuse.path
        path.clear_elements()
        path.reconfigure(
            hop_count, base_delay, _draw_loss_rate(rng, calibration),
            jitter=calibration.path_jitter,
        )

    # -- client-side middleboxes (Table 2) --------------------------------
    for box in vantage.middleboxes.build_boxes(
        hop=CLIENT_MIDDLEBOX_HOP, rng=rng.spawn()
    ):
        path.add_element(box)
    firewall_present = (
        force_firewall
        if force_firewall is not None
        else rng.coin(calibration.stateful_firewall_fraction)
    )
    if firewall_present:
        path.add_element(
            StatefulFirewallBox(
                name=f"{vantage.name}-fw",
                hop=FIREWALL_HOP,
                teardown_probability=firewall_teardown_probability,
                check_sequences=(
                    rng.coin(calibration.firewall_checks_sequences_fraction)
                ),
                rng=rng.spawn(),
            )
        )

    # -- the GFW installation ------------------------------------------------
    cluster = GFWCluster(
        rng=rng.spawn(),
        miss_probability=calibration.gfw_miss_probability,
    )
    censored_path = resolver.censored_path if resolver is not None else True
    devices: List[GFWDevice] = []
    if censored_path:
        prober = ActiveProber(clock)
        poisoner = DNSPoisoner()
        if gfw_variant is not None:
            # Forced installation: exact configs, no population draws.
            # Fresh instances per build, so per-scenario mutation below
            # cannot leak across matrix cells.  The heterogeneous
            # pseudo-variant resolves to one concrete member variant per
            # (vantage, target) route — a pure crc32 function with no
            # recorded draws, so pooled scenario reuse replays the same
            # installation and the build draw order is untouched.
            member_variant, temporal_profile = resolve_route(
                gfw_variant, vantage.name, server_name
            )
            configs = model_variant_configs(member_variant)
            for config in configs:
                config.miss_probability = calibration.gfw_miss_probability
                config.rules.detect_tor = vantage.tor_filtered
                if temporal_profile is not None:
                    config.temporal = temporal_profile
                    config.sim_hour = calibration.sim_hour
                    # Blacklist TTL drift (Ensafi): scale the 90 s
                    # window per route.
                    config.blacklist_duration = (
                        config.blacklist_duration
                        * temporal_profile.ttl_factor
                    )
        else:
            configs = _gfw_configs(rng, calibration, vantage)
        for index, config in enumerate(configs):
            device = GFWDevice(
                name=f"gfw-{config.model}-t{config.reset_type}-{index}",
                hop=gfw_hop,
                config=config,
                clock=clock,
                rng=rng.spawn(),
                cluster=cluster,
            )
            device.dns_poisoner = poisoner
            device.active_prober = prober
            path.add_element(device)
            devices.append(device)

    # -- endpoint stacks ---------------------------------------------------------
    client_profile = _profile_variant("linux-4.4", False)
    server_profile = _server_profile(website)
    if reuse is None:
        # The endpoint stacks draw only their ISNs — values that never
        # steer control flow — so their streams record opaquely and a
        # replay candidate can match across seeds.
        client_tcp = TCPHost(
            client, clock, profile=client_profile, rng=rng.spawn(opaque=True),
        )
        server_tcp = TCPHost(
            server, clock, profile=server_profile, rng=rng.spawn(opaque=True),
        )
    else:
        client_tcp = reuse.client_tcp
        client_tcp.reset(profile=client_profile, rng=rng.spawn(opaque=True))
        server_tcp = reuse.server_tcp
        server_tcp.reset(profile=server_profile, rng=rng.spawn(opaque=True))

    scenario = Scenario(
        clock=clock,
        network=network,
        rng=rng,
        vantage=vantage,
        calibration=calibration,
        path=path,
        client=client,
        server=server,
        client_tcp=client_tcp,
        server_tcp=server_tcp,
        gfw_devices=devices,
        cluster=cluster,
        website=website,
        resolver=resolver,
        trace=recorder,
        _build_args=dict(
            vantage=vantage,
            website=website,
            resolver=resolver,
            calibration=calibration,
            workload=workload,
            trace=trace,
            force_firewall=force_firewall,
            firewall_teardown_probability=firewall_teardown_probability,
            gfw_variant=gfw_variant,
        ),
    )

    # -- workload --------------------------------------------------------------
    if workload == "http":
        scenario.http_server = HTTPServer(server_tcp)
    elif workload == "dns":
        zone = _censored_zone()
        scenario.udp_server = UDPHost(server)
        DNSUdpResolver(scenario.udp_server, zone)
        DNSTcpResolver(server_tcp, zone)
        scenario.udp_client = UDPHost(client)
    elif workload == "tor":
        scenario.tor_bridge = TorBridge(server_tcp)
        for device in devices:
            if device.active_prober is not None:
                device.active_prober.bridge_oracle = scenario.tor_bridge.answers_probe
    elif workload == "vpn":
        scenario.vpn_server = OpenVPNServer(server_tcp)
    else:
        raise ValueError(f"unknown workload {workload!r}")

    # -- measurement sniffer: GFW-forged packets reaching the client ------------
    def sniff(packet: IPPacket, now: float) -> bool:
        meta = packet.meta
        if meta:  # ordinary traffic carries no metadata — skip the lookups
            origin = str(meta.get("origin", ""))
            if origin.startswith("gfw") and packet.is_tcp and packet.tcp.is_rst:
                scenario.gfw_packets_at_client.append(packet)
        return False

    client.register_handler(sniff, prepend=True)
    return scenario


#: Pooled scenarios keyed by endpoint identity — the only build inputs the
#: reuse fast path cannot re-draw or rebuild.  Everything else (calibration
#: coins, middlebox composition, GFW installation, workload apps) is derived
#: from the seed per build, so two calls with the same key but different
#: seeds or workloads still reuse one set of heavy objects.
#:
#: Each key maps to a *free list* of idle scenarios: batched execution
#: needs several live scenarios per cell simultaneously (one per trial in
#: the window), so the pool stacks them instead of keeping one.  Keys are
#: LRU-ordered; the total scenario count is bounded by
#: ``REPRO_SCENARIO_POOL_MAX`` (a 792-cell conformance sweep would
#: otherwise keep every cell's topology alive forever).
_SCENARIO_POOL: "OrderedDict[tuple, List[Scenario]]" = OrderedDict()
#: Default total-scenario cap; override with REPRO_SCENARIO_POOL_MAX.
_SCENARIO_POOL_DEFAULT_MAX = 256
#: Total scenarios currently pooled across all keys.
_pool_count = 0

_SCENARIOS_BUILT = get_registry().counter("scenario.built")
_SCENARIOS_REUSED = get_registry().counter("scenario.reused")
_SCENARIOS_EVICTED = get_registry().counter("scenario.evicted")


def _pool_limit() -> int:
    return env_int("REPRO_SCENARIO_POOL_MAX", _SCENARIO_POOL_DEFAULT_MAX, minimum=0)


def release_scenario(scenario: Scenario) -> None:
    """Return an idle scenario to its cell's free list.

    Evicts least-recently-used entries (oldest key first) once the total
    pooled count exceeds ``REPRO_SCENARIO_POOL_MAX``; evictions are
    counted by the ``scenario.evicted`` telemetry counter.  Scenarios
    without a pool key (fresh builds taken outside :func:`acquire_scenario`)
    are dropped silently.
    """
    global _pool_count
    key = scenario._pool_key
    if key is None:
        return
    free = _SCENARIO_POOL.get(key)
    if free is None:
        _SCENARIO_POOL[key] = [scenario]
    else:
        free.append(scenario)
        _SCENARIO_POOL.move_to_end(key)
    _pool_count += 1
    limit = _pool_limit()
    while _pool_count > limit and _SCENARIO_POOL:
        oldest_key, oldest_free = next(iter(_SCENARIO_POOL.items()))
        oldest_free.pop(0)
        if not oldest_free:
            del _SCENARIO_POOL[oldest_key]
        _pool_count -= 1
        _SCENARIOS_EVICTED.inc()


def acquire_scenario(
    vantage: VantagePoint,
    website: Optional[Website] = None,
    resolver: Optional[Resolver] = None,
    calibration: Calibration = DEFAULT_CALIBRATION,
    seed: int = 0,
    workload: str = "http",
    trace: bool = False,
    force_firewall: Optional[bool] = None,
    firewall_teardown_probability: float = 1.0,
    gfw_variant: Optional[str] = None,
    lease: bool = False,
) -> Scenario:
    """:func:`build_scenario`, but reusing pooled topology objects per cell.

    Behaviourally identical to a fresh build: reuse replays the exact RNG
    draw sequence against reset objects, so for a fixed seed the reused
    and freshly-built scenarios produce byte-identical trial results.
    Falls back to plain builds when tracing is requested (traced trials
    are for debugging; keep them maximally isolated) or when the
    ``REPRO_SCENARIO_REUSE`` knob is off.  The pool is per-process, so
    parallel sweeps (``REPRO_WORKERS``) reuse within each worker.

    By default the scenario is returned to the free list immediately (a
    serial trial finishes with it before the next acquire can pop it).
    ``lease=True`` keeps it checked out — batched execution leases a whole
    window of scenarios at once and hands each back via
    :func:`release_scenario` when its trial is finalized.
    """
    target = resolver if workload == "dns" else website
    if trace or target is None or not env_flag("REPRO_SCENARIO_REUSE", True):
        _SCENARIOS_BUILT.inc()
        return build_scenario(
            vantage,
            website=website,
            resolver=resolver,
            calibration=calibration,
            seed=seed,
            workload=workload,
            trace=trace,
            force_firewall=force_firewall,
            firewall_teardown_probability=firewall_teardown_probability,
            gfw_variant=gfw_variant,
        )
    global _pool_count
    key = (vantage.ip, vantage.name, target.ip, target.name)
    free = _SCENARIO_POOL.get(key)
    if free:
        pooled = free.pop()
        if not free:
            del _SCENARIO_POOL[key]
        _pool_count -= 1
        _SCENARIOS_REUSED.inc()
    else:
        pooled = None
        _SCENARIOS_BUILT.inc()
    scenario = build_scenario(
        vantage,
        website=website,
        resolver=resolver,
        calibration=calibration,
        seed=seed,
        workload=workload,
        trace=trace,
        force_firewall=force_firewall,
        firewall_teardown_probability=firewall_teardown_probability,
        gfw_variant=gfw_variant,
        reuse=pooled,
    )
    scenario._pool_key = key
    if not lease:
        # Mirror the historical contract: the scenario sits in the pool
        # while its (strictly serial) trial runs on it.
        release_scenario(scenario)
    return scenario


def clear_scenario_pool() -> None:
    """Drop all pooled scenarios (tests and benchmarks)."""
    global _pool_count
    _SCENARIO_POOL.clear()
    _pool_count = 0


def scenario_pool_size() -> int:
    """Total idle scenarios currently pooled (tests and diagnostics)."""
    return _pool_count


@lru_cache(maxsize=1)
def _censored_zone() -> dict:
    """The honest zone, built once: resolvers copy it on construction."""
    from repro.gfw.rules import DEFAULT_POISONED_DOMAINS

    return {domain: HONEST_DNS_ANSWER for domain in DEFAULT_POISONED_DOMAINS}
