"""Vantage points (§3.3 / §7).

Eleven clients inside China across nine cities and three providers —
six on Aliyun, three on QCloud, two on China Unicom home networks
(Shijiazhuang and Tianjin) — each carrying its provider's middlebox
profile from Table 2.  Four more sit outside China (US, UK, Germany,
Japan; EC2) for the inbound-direction measurements of Table 4.

§7.3 found Tor connections from four vantage points in three northern
cities (Beijing, Zhangjiakou, Qingdao) unfiltered — those paths simply
do not traverse Tor-fingerprinting devices, encoded here as
``tor_filtered=False``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.middlebox.profiles import MiddleboxProfile, PROVIDER_PROFILES


@dataclass(frozen=True)
class VantagePoint:
    """One measurement client."""

    name: str
    city: str
    isp: str
    provider_profile: str  # key into PROVIDER_PROFILES
    ip: str
    inside_china: bool = True
    #: Paths from here traverse Tor-fingerprinting GFW devices (§7.3).
    tor_filtered: bool = True

    @property
    def middleboxes(self) -> MiddleboxProfile:
        return PROVIDER_PROFILES[self.provider_profile]


#: The 11 in-China vantage points (§3.3): 9 cities, 3 ISPs.
CHINA_VANTAGE_POINTS: List[VantagePoint] = [
    VantagePoint("aliyun-beijing", "Beijing", "Aliyun", "aliyun",
                 "42.120.1.10", tor_filtered=False),
    VantagePoint("aliyun-shanghai", "Shanghai", "Aliyun", "aliyun",
                 "42.120.2.10"),
    VantagePoint("aliyun-guangzhou", "Guangzhou", "Aliyun", "aliyun",
                 "42.120.3.10"),
    VantagePoint("aliyun-shenzhen", "Shenzhen", "Aliyun", "aliyun",
                 "42.120.4.10"),
    VantagePoint("aliyun-hangzhou", "Hangzhou", "Aliyun", "aliyun",
                 "42.120.5.10"),
    VantagePoint("aliyun-zhangjiakou", "Zhangjiakou", "Aliyun", "aliyun",
                 "42.120.6.10", tor_filtered=False),
    VantagePoint("qcloud-qingdao", "Qingdao", "QCloud", "qcloud",
                 "119.29.1.10", tor_filtered=False),
    VantagePoint("qcloud-beijing", "Beijing", "QCloud", "qcloud",
                 "119.29.2.10", tor_filtered=False),
    VantagePoint("qcloud-guangzhou", "Guangzhou", "QCloud", "qcloud",
                 "119.29.3.10"),
    VantagePoint("unicom-shijiazhuang", "Shijiazhuang", "China Unicom",
                 "unicom-sjz", "101.28.1.10"),
    VantagePoint("unicom-tianjin", "Tianjin", "China Unicom",
                 "unicom-tj", "101.30.1.10"),
]

#: The 4 outside-China vantage points (§7: Amazon EC2).
OUTSIDE_VANTAGE_POINTS: List[VantagePoint] = [
    VantagePoint("ec2-us", "N. Virginia", "AWS", "transparent",
                 "54.85.1.10", inside_china=False),
    VantagePoint("ec2-uk", "London", "AWS", "transparent",
                 "18.130.1.10", inside_china=False),
    VantagePoint("ec2-de", "Frankfurt", "AWS", "transparent",
                 "18.185.1.10", inside_china=False),
    VantagePoint("ec2-jp", "Tokyo", "AWS", "transparent",
                 "13.112.1.10", inside_china=False),
]

ALL_VANTAGE_POINTS = CHINA_VANTAGE_POINTS + OUTSIDE_VANTAGE_POINTS


def vantage_by_name(name: str) -> VantagePoint:
    for vantage in ALL_VANTAGE_POINTS:
        if vantage.name == name:
            return vantage
    raise KeyError(f"unknown vantage point {name!r}")


def tor_unfiltered_points() -> List[VantagePoint]:
    """The northern-China vantage points whose Tor traffic flows free."""
    return [v for v in CHINA_VANTAGE_POINTS if not v.tor_filtered]


def provider_counts() -> dict:
    """Sanity view matching §3.3's 6/3/2 provider split."""
    counts: dict = {}
    for vantage in CHINA_VANTAGE_POINTS:
        counts[vantage.isp] = counts.get(vantage.isp, 0) + 1
    return counts
