"""Plain-text table rendering for the benchmark harness.

Each ``format_*`` function prints rows in the same shape as the paper's
tables so a reproduction run can be eyeballed against the originals.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.experiments.runner import PerVantageRates, RateTriple


def _rule(widths: Sequence[int]) -> str:
    return "-+-".join("-" * width for width in widths)


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence[str]], title: str = ""
) -> str:
    """Render an aligned ASCII table."""
    widths = [len(header) for header in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(
        " | ".join(header.ljust(widths[i]) for i, header in enumerate(headers))
    )
    lines.append(_rule(widths))
    for row in rows:
        lines.append(
            " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def pct(value: float) -> str:
    return f"{value:.1f}%"


def format_table1(
    results: List[Tuple[str, str, RateTriple, RateTriple]],
    title: str = "Table 1: existing evasion strategies",
) -> str:
    """``results``: (strategy label, discrepancy, with-kw, without-kw)."""
    headers = [
        "Strategy", "Discrepancy",
        "Success", "Failure 1", "Failure 2",
        "Success (benign)", "Failure 1 (benign)",
    ]
    rows = []
    for label, discrepancy, with_kw, without_kw in results:
        s, f1, f2 = with_kw.as_percentages()
        bs, bf1, _bf2 = without_kw.as_percentages()
        rows.append(
            [label, discrepancy, pct(s), pct(f1), pct(f2), pct(bs), pct(bf1 + _bf2)]
        )
    return render_table(headers, rows, title)


def format_table2(reports, title: str = "Table 2: client-side middlebox behaviors") -> str:
    headers = ["Vantage point", "IP fragments", "Wrong checksum", "No TCP flag", "RST", "FIN"]
    rows = [report.row() for report in reports]
    return render_table(headers, rows, title)


def format_table3(rows: List[Sequence[str]], title: str = "Table 3: candidate insertion packets") -> str:
    headers = ["TCP state", "GFW state", "TCP flags", "Condition"]
    return render_table(headers, [list(row) for row in rows], title)


def format_table4(
    results: List[Tuple[str, PerVantageRates]],
    title: str = "Table 4: success rate of new strategies",
) -> str:
    headers = [
        "Strategy",
        "Succ min", "Succ max", "Succ avg",
        "F1 min", "F1 max", "F1 avg",
        "F2 min", "F2 max", "F2 avg",
    ]
    rows = []
    for label, per_vantage in results:
        s_min, s_max, s_avg = per_vantage.success_min_max_avg()
        f1_min, f1_max, f1_avg = per_vantage.failure1_min_max_avg()
        f2_min, f2_max, f2_avg = per_vantage.failure2_min_max_avg()
        rows.append([
            label,
            pct(s_min), pct(s_max), pct(s_avg),
            pct(f1_min), pct(f1_max), pct(f1_avg),
            pct(f2_min), pct(f2_max), pct(f2_avg),
        ])
    return render_table(headers, rows, title)


def format_table5(
    preferences: Dict[str, Sequence[str]],
    title: str = "Table 5: preferred construction of insertion packets",
) -> str:
    all_vehicles = ["ttl", "md5", "bad-ack", "old-timestamp"]
    headers = ["Packet type"] + ["TTL", "MD5", "Bad ACK", "Timestamp"]
    rows = []
    for packet_type, vehicles in preferences.items():
        marks = ["x" if vehicle in vehicles else "" for vehicle in all_vehicles]
        rows.append([packet_type] + marks)
    return render_table(headers, rows, title)


def format_table6(
    results: List[Tuple[str, str, float, float]],
    title: str = "Table 6: TCP DNS censorship evasion",
) -> str:
    headers = ["DNS resolver", "IP", "except Tianjin", "All"]
    rows = [
        [name, ip, pct(ex_tj * 100), pct(all_rate * 100)]
        for name, ip, ex_tj, all_rate in results
    ]
    return render_table(headers, rows, title)


def format_rate_line(label: str, triple: RateTriple) -> str:
    s, f1, f2 = triple.as_percentages()
    line = (
        f"{label:<42} success={s:5.1f}%  failure1={f1:5.1f}%  "
        f"failure2={f2:5.1f}%  (n={triple.trials})"
    )
    if triple.successes + triple.failure1s + triple.failure2s:
        # Distribution-valued view: the Wilson 95 % band on the success
        # rate, present whenever the triple carries raw counts.
        low, high = triple.wilson()
        line += f"  ci95=[{low * 100:.1f}%,{high * 100:.1f}%]"
    return line


def format_distribution_cell(distribution) -> str:
    """One distribution-valued verdict cell: point verdict, counts, and
    the Wilson 95 % interval on the success proportion."""
    low, high = distribution.wilson()
    return (
        f"{distribution.verdict} {distribution.success}/{distribution.trials}"
        f" [{low:.2f},{high:.2f}]"
    )


def format_disagreement_matrix(
    matrix: Dict[str, Dict[str, str]],
    routes: Sequence[str],
    title: str = "Per-route disagreement matrix (verdicts across vantage points)",
) -> str:
    """Ensafi-style strategy × route verdict matrix; rows where the
    verdict set has more than one element are flagged with ``!=``."""
    headers = ["Strategy"] + [route.replace("route-vp-", "vp") for route in routes]
    headers.append("agree?")
    rows = []
    for strategy, verdicts in matrix.items():
        row = [strategy] + [verdicts.get(route, "-") for route in routes]
        row.append("yes" if len(set(verdicts.values())) <= 1 else "!=")
        rows.append(row)
    return render_table(headers, rows, title)


def format_diurnal_curve(
    curve: Sequence[Dict],
    title: str = "Diurnal reset suppression (all routes pooled)",
) -> str:
    headers = ["Hour", "Detections", "RSTs injected", "Suppressed", "Suppression"]
    rows = [
        [
            f"{point['hour']:g}h",
            str(point["detections"]),
            str(point["resets_injected"]),
            str(point["resets_suppressed"]),
            pct(point["suppression_rate"] * 100),
        ]
        for point in curve
    ]
    return render_table(headers, rows, title)


def format_churn_timeline(
    timeline: Sequence[Dict],
    title: str = "Blacklist churn (adds / TTL expirations per hour)",
) -> str:
    headers = ["Hour", "Blacklist adds", "TTL expirations"]
    rows = [
        [
            f"{point['hour']:g}h",
            str(point["blacklist_adds"]),
            str(point["ttl_expirations"]),
        ]
        for point in timeline
    ]
    return render_table(headers, rows, title)
