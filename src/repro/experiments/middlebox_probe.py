"""Client-side middlebox probing (§3.4, Table 2).

"We probed for client-side middleboxes from all our 11 vantage points
trying to connect with our own servers."  The probe establishes a real
connection to a controlled server (no GFW on the path matters here — we
include one but probe packets are benign) and fires each anomalous
packet type several times, observing at the server which ones survive
the provider's equipment:

- IP fragments → Discarded / Reassembled (by a middlebox) / Fragments
  arrive intact;
- wrong TCP checksum, no TCP flag, RST, FIN → Pass / Sometimes dropped /
  Dropped.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List

from repro.netstack.fragment import fragment_packet
from repro.netstack.packet import ACK, FIN, IPPacket, RST
from repro.experiments.calibration import CLEAN_ROOM, Calibration
from repro.experiments.scenarios import build_scenario
from repro.experiments.vantage import VantagePoint
from repro.experiments.websites import Website

PROBE_REPEATS = 8

#: A controlled server (the paper's "our own servers").
CONTROLLED_SERVER = Website(
    name="controlled.probe.server",
    ip="198.51.100.7",
    alexa_rank=0,
    asn=64500,
    server_profile="linux-4.4",
    server_ooo_lastwins=False,
    hop_count=14,
    gfw_hop=8,
)


@dataclass
class ProbeReport:
    """Observed fate of each probe packet type from one vantage point."""

    vantage: str
    results: Dict[str, str]

    def row(self) -> List[str]:
        order = ["ip-fragments", "bad-checksum", "no-flag", "rst", "fin"]
        return [self.vantage] + [self.results[key] for key in order]


def _fate(delivered: int, attempts: int) -> str:
    if delivered == attempts:
        return "Pass"
    if delivered == 0:
        return "Dropped"
    return "Sometimes dropped"


def probe_vantage(
    vantage: VantagePoint,
    calibration: Calibration = CLEAN_ROOM,
    seed: int = 42,
) -> ProbeReport:
    """Run the five-row probe of Table 2 from one vantage point."""
    results: Dict[str, str] = {}
    results["ip-fragments"] = _probe_fragments(vantage, calibration, seed)
    for label, builder in (
        ("bad-checksum", _bad_checksum_packet),
        ("no-flag", _no_flag_packet),
        ("rst", _rst_packet),
        ("fin", _fin_packet),
    ):
        delivered = 0
        for repeat in range(PROBE_REPEATS):
            if _probe_crafted(vantage, calibration, seed + repeat, builder):
                delivered += 1
        results[label] = _fate(delivered, PROBE_REPEATS)
    return ProbeReport(vantage=vantage.name, results=results)


def _base_scenario(vantage: VantagePoint, calibration: Calibration, seed: int):
    return build_scenario(
        vantage=vantage,
        website=CONTROLLED_SERVER,
        calibration=calibration,
        seed=seed,
        workload="http",
    )


def _probe_fragments(
    vantage: VantagePoint, calibration: Calibration, seed: int
) -> str:
    scenario = _base_scenario(vantage, calibration, seed)
    seen: List[IPPacket] = []

    def sniff(packet: IPPacket, now: float) -> bool:
        seen.append(packet)
        return False

    scenario.server.register_handler(sniff, prepend=True)
    rng = random.Random(seed)
    probe = scenario.client_tcp  # only used for port allocation symmetry
    del probe
    packet = IPPacket(
        src=vantage.ip,
        dst=CONTROLLED_SERVER.ip,
        payload=_payload_segment(rng),
        ttl=64,
    )
    fragments = fragment_packet(packet, fragment_size=24, identification=777)
    for fragment in fragments:
        scenario.client.send(fragment)
    scenario.run(2.0)
    arrived_fragments = [p for p in seen if p.is_fragment]
    arrived_whole = [p for p in seen if not p.is_fragment and p.is_tcp]
    if arrived_fragments:
        return "Fragments arrive intact"
    if arrived_whole:
        return "Reassembled"
    return "Discarded"


def _payload_segment(rng: random.Random):
    from repro.netstack.packet import TCPSegment

    return TCPSegment(
        src_port=rng.randint(32768, 60000),
        dst_port=80,
        seq=rng.randrange(2**32),
        ack=0,
        flags=ACK,
        payload=b"PROBE-" + bytes(58),
    )


def _probe_crafted(vantage, calibration, seed, builder) -> bool:
    """Open a connection, fire one crafted packet, check server arrival."""
    scenario = _base_scenario(vantage, calibration, seed)
    seen: List[IPPacket] = []

    def sniff(packet: IPPacket, now: float) -> bool:
        if packet.is_tcp and packet.meta.get("probe"):
            seen.append(packet)
        return False

    scenario.server.register_handler(sniff, prepend=True)
    connection = scenario.client_tcp.connect(CONTROLLED_SERVER.ip, 80)
    scenario.run(1.0)
    if not connection.is_established:
        return False
    probe = builder(connection)
    probe.meta["probe"] = True
    scenario.client.send_raw(probe)
    scenario.run(1.0)
    return bool(seen)


def _bad_checksum_packet(connection) -> IPPacket:
    packet = connection.make_packet(flags=ACK, payload=b"x" * 16)
    packet.tcp.checksum_override = 0xBEEF
    return packet


def _no_flag_packet(connection) -> IPPacket:
    return connection.make_packet(flags=0, payload=b"x" * 16)


def _rst_packet(connection) -> IPPacket:
    return connection.make_packet(flags=RST)


def _fin_packet(connection) -> IPPacket:
    return connection.make_packet(flags=FIN | ACK)


def probe_all(
    vantages: List[VantagePoint],
    calibration: Calibration = CLEAN_ROOM,
    seed: int = 42,
) -> List[ProbeReport]:
    return [probe_vantage(vantage, calibration, seed) for vantage in vantages]
