"""Parallel trial-execution engine: process-pool fan-out over trials.

Every table in the paper is a vantage × site × repeats sweep (Table 1
alone is 15 rows × 2 keyword modes × 11 vantages × 77 sites × 50 trials)
and every trial is seeded and independent — a fresh topology per trial
means no shared state, which makes the sweep embarrassingly parallel.
This module supplies the deterministic fan-out:

- :func:`map_trials` — an order-preserving map over picklable work-unit
  tuples, executed inline when ``workers == 1`` (byte-identical to the
  historical serial loops) or on a shared :class:`ProcessPoolExecutor`
  otherwise.  Results come back in task order, so any merge downstream
  (rate counting, per-vantage grouping) is independent of scheduling.
- ``REPRO_WORKERS`` — the environment knob every cell runner and bench
  reads through :func:`configured_workers`; ``0`` (or any non-positive
  value) means "all cores".
- a session-wide trial counter that the bench harness samples to report
  trials/sec into ``BENCH_perf.json``.

Determinism contract: trial seeds are computed *before* fan-out (see
:func:`repro.experiments.runner.trial_seed`), each work unit derives all
its randomness from its own seed, and the merge is positional — so for
fixed seeds the results are identical for any worker count.
"""

from __future__ import annotations

import atexit
import os
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Iterable, List, Optional, Sequence, Tuple, Union

from repro.core.env import env_int
from repro.telemetry.flight import get_flight
from repro.telemetry.metrics import get_registry
from repro.telemetry.trace import get_tracer

__all__ = [
    "configured_workers",
    "map_trials",
    "note_trials",
    "reset_trial_count",
    "run_sharded",
    "shutdown_pool",
    "trials_completed",
]

#: Target number of chunks handed to each worker; >1 smooths out uneven
#: per-trial cost (a Tor trial simulates ~12 s, a plain HTTP trial ~5 s).
DEFAULT_CHUNKS_PER_WORKER = 4

_pool: Optional[ProcessPoolExecutor] = None
_pool_workers = 0
_trials_completed = 0


def configured_workers(workers: Optional[int] = None) -> int:
    """Resolve the effective worker count.

    An explicit ``workers`` argument wins; otherwise ``REPRO_WORKERS`` is
    consulted (default 1 — the serial path).  Non-positive values mean
    "one worker per CPU core".
    """
    if workers is None:
        workers = env_int("REPRO_WORKERS", default=1)
    if workers <= 0:
        workers = os.cpu_count() or 1
    return max(1, int(workers))


def shutdown_pool() -> None:
    """Tear down the shared process pool (tests, interpreter exit)."""
    global _pool, _pool_workers
    if _pool is not None:
        _pool.shutdown(wait=True, cancel_futures=True)
        _pool = None
        _pool_workers = 0


def _get_pool(workers: int) -> ProcessPoolExecutor:
    """The shared executor; workers live for the whole sweep.

    Grow-only: the pool is recreated when more workers are needed, never
    torn down for fewer — a small map mid-sweep (3 tasks after a
    10,000-task cell) must not cycle every worker process.  A call that
    needs fewer workers than the pool holds simply submits fewer chunks,
    so surplus processes sleep.  Reuse amortizes both process start-up
    and worker-side warm state (scenario pools, packet free lists)
    across the many cells of a sweep.
    """
    global _pool, _pool_workers
    if _pool is None or _pool_workers < workers:
        shutdown_pool()
        _pool = ProcessPoolExecutor(max_workers=workers)
        _pool_workers = workers
    return _pool


atexit.register(shutdown_pool)


# -- execution-shape accounting (sampled by benchmarks/conftest.py) ---------
_exec_stats = {"workers": 0, "shards": 0}


def reset_execution_stats() -> None:
    """Zero the per-window effective worker/shard high-water marks."""
    _exec_stats["workers"] = 0
    _exec_stats["shards"] = 0


def execution_stats() -> dict:
    """High-water effective worker and shard counts since the last reset.

    ``configured_workers()`` reports what the environment *asked for*;
    these are what the engine actually used — maps clamp the worker count
    to the task count and sharded runs may collapse to the serial path,
    so a bench's recorded throughput is only interpretable against the
    effective values.
    """
    return dict(_exec_stats)


def _note_execution(workers: int, shards: int = 0) -> None:
    _exec_stats["workers"] = max(_exec_stats["workers"], workers)
    _exec_stats["shards"] = max(_exec_stats["shards"], shards)


# -- trial accounting (sampled by benchmarks/conftest.py) -------------------
def note_trials(count: int = 1) -> None:
    """Record ``count`` completed trials in this process."""
    global _trials_completed
    _trials_completed += count


def trials_completed() -> int:
    """Trials completed in (or accounted to) this process so far."""
    return _trials_completed


def reset_trial_count() -> None:
    global _trials_completed
    _trials_completed = 0


def _run_task_with_snapshot(
    payload: Tuple[Callable, Tuple, bool, bool]
) -> Tuple[Any, dict]:
    """Worker-side wrapper: run one task, return its result plus the
    metrics-registry delta it produced.

    The delta (not the full snapshot) is what merges cleanly: a worker
    process is reused for many tasks, so its registry accumulates — the
    parent must see only what *this* task added or counts double.

    The payload carries the parent's trace/flight switches: pool workers
    persist across calls, so environment knobs flipped after pool start
    (``enable_tracer`` in the CLI, ``tracing()`` in tests) would never
    reach them otherwise.  Span trees and flight dumps ride back inside
    the delta dict — :meth:`MetricsRegistry.merge` ignores unknown
    top-level keys, so the channel is free.
    """
    func, task, trace_on, flight_on = payload
    registry = get_registry()
    tracer = get_tracer()
    tracer.enabled = trace_on
    flight = get_flight()
    flight.enabled = flight_on
    if flight_on:
        from repro.telemetry.events import enable_bus

        enable_bus(True)
    # Stale trees/dumps from a task whose parent died mid-merge must not
    # leak into this task's delta.
    tracer.drain()
    flight.drain()
    before = registry.snapshot()
    result = func(task)
    delta = registry.diff(before)
    if trace_on:
        delta["spans"] = tracer.drain()
    dumps = flight.drain()
    if dumps:
        delta["flight"] = dumps
    return result, delta


def _merge_worker_delta(registry, delta: dict) -> None:
    """Fold one worker delta into the parent: metrics, spans, dumps."""
    registry.merge(delta)
    spans = delta.get("spans")
    if spans:
        get_tracer().merge(spans)
    get_flight().adopt(delta.get("flight"))


def _mirrored_trials(
    trials_per_task: Union[int, Sequence[int]], task_count: int
) -> int:
    """Total paper-trials represented by ``task_count`` work units."""
    if isinstance(trials_per_task, int):
        return trials_per_task * task_count
    if len(trials_per_task) != task_count:
        raise ValueError(
            f"trials_per_task has {len(trials_per_task)} entries "
            f"for {task_count} tasks"
        )
    return sum(trials_per_task)


def map_trials(
    func: Callable[[Tuple], Any],
    tasks: Iterable[Tuple],
    workers: Optional[int] = None,
    chunksize: Optional[int] = None,
    trials_per_task: Union[int, Sequence[int]] = 1,
) -> List[Any]:
    """Order-preserving (possibly parallel) map over trial work units.

    ``func`` must be a module-level callable and every task tuple must be
    picklable.  With one worker the map runs inline in this process, which
    is byte-identical to the pre-engine serial loops; with more, tasks are
    chunked onto the shared process pool and results are collected back in
    task order, so the caller's merge never depends on scheduling.

    The effective worker count is clamped to the task count: a 3-task map
    never engages more than 3 workers, so the chunk layout cannot
    degenerate into idle workers plus one overloaded straggler.

    Each worker task also returns the metrics-registry delta it produced
    (see :mod:`repro.telemetry.metrics`); the parent merges those deltas
    into its own registry.  The merge is order-independent — counters and
    histogram buckets add — so the merged registry equals the one a
    serial run would have built, for any worker count or schedule.

    ``trials_per_task`` tells the parent how many paper-trials one work
    unit performs — a single count shared by every task, or one entry per
    task (batched windows have a short tail) — keeping the trials/sec
    accounting truthful when the actual counting happens inside worker
    processes.
    """
    tasks = list(tasks)
    effective = min(configured_workers(workers), len(tasks))
    _note_execution(max(1, effective))
    if effective <= 1 or len(tasks) <= 1:
        # Inline path: the trial functions themselves count trials and
        # write the parent registry directly.
        return [func(task) for task in tasks]
    if chunksize is None:
        chunksize = max(1, len(tasks) // (effective * DEFAULT_CHUNKS_PER_WORKER))
    pool = _get_pool(effective)
    trace_on = get_tracer().enabled
    flight_on = get_flight().enabled
    payloads = [(func, task, trace_on, flight_on) for task in tasks]
    registry = get_registry()
    results: List[Any] = []
    for result, delta in pool.map(
        _run_task_with_snapshot, payloads, chunksize=chunksize
    ):
        _merge_worker_delta(registry, delta)
        results.append(result)
    # Worker-process counters are invisible here; mirror their work.
    note_trials(_mirrored_trials(trials_per_task, len(tasks)))
    return results


def _shard_worker(payload: Tuple[Callable, Tuple]) -> List[Any]:
    """Worker-side shard loop: run every task of one shard in order.

    Lives at module level so the payload pickles; per-worker warm state
    (the scenario pool, packet free lists) persists across the shard's
    tasks, which is the point of sharding.
    """
    func, shard = payload
    tracer = get_tracer()
    span = tracer.begin(f"shard[{len(shard)}]", "shard", tasks=len(shard))
    try:
        return [func(task) for task in shard]
    finally:
        tracer.end(span)


def run_sharded(
    func: Callable[[Tuple], Any],
    tasks: Iterable[Tuple],
    shards: Optional[int] = None,
    workers: Optional[int] = None,
    trials_per_task: Union[int, Sequence[int]] = 1,
) -> List[Any]:
    """Partition ``tasks`` into contiguous shards, one worker unit each.

    Where :func:`map_trials` ships every task through the pool
    individually (one pickled payload and one registry delta per task),
    sharding ships ``shards`` payloads total: each worker receives a
    contiguous slice of the task list, runs it serially with its warm
    per-process scenario pool, and returns one result list plus one
    merged telemetry delta.  Contiguity matters — task lists are grouped
    by cell, so a shard's tasks hit the same pooled topologies.

    Results come back in task order (shards are reassembled in slice
    order) and the registry merge is order-independent, so the output is
    identical to :func:`map_trials` for any shard or worker count.
    ``shards`` defaults to the worker count.
    """
    tasks = list(tasks)
    requested = configured_workers(workers)
    if shards is None:
        shards = requested
    shards = max(1, min(shards, len(tasks)))
    if requested <= 1 or shards <= 1 or len(tasks) <= 1:
        _note_execution(1, shards=1)
        return [func(task) for task in tasks]
    _note_execution(min(requested, shards), shards=shards)
    base, extra = divmod(len(tasks), shards)
    slices: List[tuple] = []
    start = 0
    for index in range(shards):
        size = base + (1 if index < extra else 0)
        slices.append(tuple(tasks[start : start + size]))
        start += size
    pool = _get_pool(min(requested, shards))
    trace_on = get_tracer().enabled
    flight_on = get_flight().enabled
    payloads = [
        (_shard_worker, (func, shard), trace_on, flight_on)
        for shard in slices
    ]
    registry = get_registry()
    results: List[Any] = []
    for shard_results, delta in pool.map(
        _run_task_with_snapshot, payloads, chunksize=1
    ):
        _merge_worker_delta(registry, delta)
        results.extend(shard_results)
    note_trials(_mirrored_trials(trials_per_task, len(tasks)))
    return results
