"""INTANG-style historical-result reuse for experiment sweeps.

§6 (Fig. 2): INTANG keeps "historical results" per server in its Redis
store, fronted by a main-thread LRU cache, so it never re-measures what
it already knows.  This module applies the same idea one level up — to
the *experiment harness*: a trial's outcome is a pure function of
(workload kind, vantage, target, strategy, calibration, seed, keyword),
so repeated cells in a sweep (Table 1 re-runs, ablation grids,
calibration passes, warm bench iterations) can replay recorded results
instead of re-simulating the whole network.

The store is the same :class:`~repro.core.cache.KeyValueStore` +
:class:`~repro.core.cache.LRUCache` composition INTANG itself uses
(via :class:`~repro.core.cache.FrontedStore`), held process-wide.

Knobs and rules:

- ``REPRO_RESULT_CACHE=0`` disables reuse entirely (default: enabled);
- adaptive-selector trials are **never** cached: the selector mutates
  per-server history between trials, so their outcomes are not pure
  functions of the key (the callers pass ``selector is None`` checks);
- :func:`clear` is the explicit invalidation path — call it after
  changing anything the key does not capture (e.g. monkeypatching
  simulator internals in a test);
- cache lookups happen *before* the process-pool fan-out in the cell
  runners, so fully-cached cells never spawn a worker, and results
  computed by workers are recorded in the parent so the next sweep is
  warm (worker-process caches die with the pool).

Keys fingerprint every input with CRC-32 over the frozen dataclasses'
reprs — stable across interpreter runs (no ``PYTHONHASHSEED``
dependence), cheap, and automatically sensitive to new calibration or
catalog fields.
"""

from __future__ import annotations

import zlib
from typing import Any, Dict, Optional

from repro.core.cache import FrontedStore, KeyValueStore
from repro.core.env import env_flag
from repro.telemetry.metrics import get_registry


def enabled() -> bool:
    """Whether historical-result reuse is on (``REPRO_RESULT_CACHE``)."""
    return env_flag("REPRO_RESULT_CACHE", default=True)


def _fingerprint(value: Any) -> int:
    """CRC-32 of ``repr(value)``; the experiment inputs are frozen
    dataclasses whose reprs enumerate every field."""
    return zlib.crc32(repr(value).encode("utf-8")) & 0xFFFFFFFF


def trial_key(
    kind: str,
    vantage: Any,
    target: Any,
    strategy_id: Optional[str],
    calibration: Any,
    seed: int,
    keyword: bool = True,
    extra: str = "",
) -> str:
    """The canonical cache key of one deterministic trial.

    ``extra`` carries workload-specific inputs outside the common tuple
    (e.g. the DNS query's domain and forwarder toggle).
    """
    return "|".join(
        (
            "trial",
            kind,
            f"v{_fingerprint(vantage):08x}",
            f"t{_fingerprint(target):08x}",
            strategy_id or "none",
            f"c{_fingerprint(calibration):08x}",
            str(seed),
            "kw" if keyword else "benign",
            extra,
        )
    )


# ---------------------------------------------------------------------------
# The process-wide store.  Wall-clock time is irrelevant here (entries
# never carry a TTL — invalidation is explicit), so the store runs on a
# constant clock.
# ---------------------------------------------------------------------------
_store: Optional[FrontedStore] = None


def _hit_counter():
    return get_registry().counter("result_cache.hits")


def _miss_counter():
    return get_registry().counter("result_cache.misses")


def _get_store() -> FrontedStore:
    global _store
    if _store is None:
        _store = FrontedStore(KeyValueStore(time_source=lambda: 0.0))
    return _store


def lookup(key: str) -> Optional[Dict[str, Any]]:
    """The stored payload for ``key`` — ``{"outcome": str, "record":
    dict-or-None}`` — or None.  Counts a hit/miss either way."""
    if not enabled():
        return None
    payload = _get_store().get(key)
    if payload is None:
        _miss_counter().inc()
        return None
    _hit_counter().inc()
    return payload


def record_outcome(key: str, outcome: str) -> None:
    """Record an outcome-only result (the process-pool reduction keeps
    nothing else).  Never downgrades an existing full record."""
    if not enabled():
        return
    store = _get_store()
    if store.get(key) is None:
        store.set(key, {"outcome": outcome, "record": None})


def record_trial(key: str, outcome: str, record: Dict[str, Any]) -> None:
    """Record a full trial result (JSON-representable fields only)."""
    if not enabled():
        return
    _get_store().set(key, {"outcome": outcome, "record": record})


def clear() -> None:
    """Explicit invalidation: forget every historical result.

    Also zeroes the hit/miss accounting — it describes the store that
    just ceased to exist."""
    global _store
    _store = None
    _hit_counter().reset()
    _miss_counter().reset()


def stats() -> Dict[str, int]:
    """Compatibility shim: the historical dict shape, now registry-backed.

    ``hits``/``misses`` read the ``result_cache.*`` counters of the
    process :class:`~repro.telemetry.metrics.MetricsRegistry`, so the
    numbers also appear in merged telemetry snapshots."""
    store = _store
    registry = get_registry()
    return {
        "entries": len(store) if store is not None else 0,
        "hits": registry.counter_value("result_cache.hits"),
        "misses": registry.counter_value("result_cache.misses"),
        "front_hits": store.front.hits if store is not None else 0,
        "front_evictions": store.front.evictions if store is not None else 0,
    }


# -- persistence (mirrors INTANG's save/load of its Redis snapshot) ---------
def dump() -> str:
    return _get_store().dump()


def load(blob: str) -> None:
    _get_store().load(blob)
