"""UDP demultiplexing on a simulated host.

The analogue of :class:`repro.tcp.stack.TCPHost` for datagram traffic;
used by the DNS client/resolver pair and by INTANG's DNS forwarder.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.netstack.packet import IPPacket, UDPDatagram, udp_packet
from repro.netsim.node import Host

#: handler(src_ip, src_port, payload, now)
DatagramHandler = Callable[[str, int, bytes, float], None]


class UDPHost:
    """Port-keyed UDP socket table for one host."""

    def __init__(self, host: Host) -> None:
        self.host = host
        self._sockets: Dict[int, DatagramHandler] = {}
        self._ephemeral_port = 40000
        host.register_handler(self._on_packet)

    def bind(self, port: int, handler: DatagramHandler) -> int:
        """Listen on ``port`` (0 allocates an ephemeral port)."""
        if port == 0:
            port = self._ephemeral_port
            self._ephemeral_port += 1
        if port in self._sockets:
            raise ValueError(f"UDP port {port} already bound on {self.host.ip}")
        self._sockets[port] = handler
        return port

    def unbind(self, port: int) -> None:
        self._sockets.pop(port, None)

    def sendto(
        self, payload: bytes, dst_ip: str, dst_port: int, src_port: int
    ) -> None:
        packet = udp_packet(
            src=self.host.ip,
            dst=dst_ip,
            src_port=src_port,
            dst_port=dst_port,
            payload=payload,
        )
        self.host.send(packet)

    def _on_packet(self, packet: IPPacket, now: float) -> bool:
        if not packet.is_udp or packet.dst != self.host.ip:
            return False
        datagram: UDPDatagram = packet.udp
        handler = self._sockets.get(datagram.dst_port)
        if handler is None:
            return True  # addressed to us; silently dropped (no ICMP)
        handler(packet.src, datagram.src_port, datagram.payload, now)
        return True
