"""A Tor-like bridge protocol with a fingerprintable handshake.

§7.3: the GFW identifies Tor by passive traffic analysis of the client's
handshake and confirms with an active probe before blocking the bridge's
entire IP.  The simulation needs (a) a client handshake distinctive
enough for DPI fingerprinting, (b) a bridge that answers both genuine
clients and the GFW's probes, and (c) a relay channel that works once the
handshake completes.  Cryptographic realism is irrelevant to the evasion
mechanics, so the "TLS" here is a fixed preamble followed by a cell
exchange.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.tcp.stack import CloseReason, TCPConnection, TCPHost

#: The client-hello bytes the GFW's DPI fingerprints.  Modelled on the
#: distinctive cipher-suite ordering of Tor's TLS handshake.
TOR_HANDSHAKE_PREAMBLE = b"\x16\x03\x01TOR-CLIENT-HELLO:cipherlist=FFCC"

TOR_SERVER_HELLO = b"\x16\x03\x01TOR-SERVER-HELLO"
TOR_DEFAULT_PORT = 443


@dataclass
class TorCircuit:
    """State of one client<->bridge session, for assertions in tests."""

    established: bool = False
    cells_relayed: int = 0
    reset: bool = False
    close_reason: Optional[CloseReason] = None
    rsts_received: List[object] = field(default_factory=list)


class TorBridge:
    """A hidden bridge: answers the Tor handshake on its port.

    The bridge also answers the GFW's active probes — that is the point
    of active probing: a genuine bridge cannot distinguish the censor
    from a user.  The scenario builder exposes :meth:`answers_probe` as
    the prober's oracle.
    """

    def __init__(self, tcp_host: TCPHost, port: int = TOR_DEFAULT_PORT) -> None:
        self.tcp = tcp_host
        self.port = port
        self.handshakes_completed = 0
        self.cells_received = 0
        tcp_host.listen(port, self._on_accept)

    def answers_probe(self, ip: str, port: int) -> bool:
        """Would a probe of ``ip:port`` confirm a Tor bridge?"""
        return ip == self.tcp.host.ip and port == self.port

    def _on_accept(self, connection: TCPConnection) -> None:
        buffer = bytearray()
        state = {"handshaken": False}

        def on_data(conn: TCPConnection, data: bytes) -> None:
            buffer.extend(data)
            if not state["handshaken"]:
                if bytes(buffer).startswith(TOR_HANDSHAKE_PREAMBLE):
                    state["handshaken"] = True
                    self.handshakes_completed += 1
                    del buffer[: len(TOR_HANDSHAKE_PREAMBLE)]
                    conn.send(TOR_SERVER_HELLO)
                elif len(buffer) >= len(TOR_HANDSHAKE_PREAMBLE):
                    conn.abort()  # not a Tor client
                return
            # Relay mode: echo cells back (stands in for circuit traffic).
            while len(buffer) >= 16:
                cell = bytes(buffer[:16])
                del buffer[:16]
                self.cells_received += 1
                conn.send(cell)

        connection.on_data = on_data


class TorClient:
    """Connects to a bridge, handshakes, then exchanges cells."""

    def __init__(self, tcp_host: TCPHost) -> None:
        self.tcp = tcp_host

    def open_circuit(
        self,
        bridge_ip: str,
        port: int = TOR_DEFAULT_PORT,
        cells_to_send: int = 3,
        on_established: Optional[Callable[[TorCircuit], None]] = None,
    ) -> TorCircuit:
        circuit = TorCircuit()
        connection = self.tcp.connect(bridge_ip, port)
        pending = {"cells": cells_to_send}
        buffer = bytearray()

        def start(conn: TCPConnection) -> None:
            conn.send(TOR_HANDSHAKE_PREAMBLE)

        def on_data(conn: TCPConnection, data: bytes) -> None:
            buffer.extend(data)
            if not circuit.established:
                if bytes(buffer).startswith(TOR_SERVER_HELLO):
                    circuit.established = True
                    del buffer[: len(TOR_SERVER_HELLO)]
                    if on_established is not None:
                        on_established(circuit)
                    if pending["cells"] > 0:
                        conn.send(b"CELL" + bytes(12))
                return
            while len(buffer) >= 16:
                del buffer[:16]
                circuit.cells_relayed += 1
                pending["cells"] -= 1
                if pending["cells"] > 0:
                    conn.send(b"CELL" + bytes(12))

        def on_close(conn: TCPConnection, reason: CloseReason) -> None:
            circuit.close_reason = reason
            circuit.rsts_received = list(conn.received_rsts)
            if reason is CloseReason.RESET:
                circuit.reset = True

        connection.on_established = start
        connection.on_data = on_data
        connection.on_close = on_close
        return circuit
