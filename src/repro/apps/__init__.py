"""Application protocols used as censorship workloads.

These are the protocols the paper evaluates INTANG with (§7): HTTP
(§7.1), DNS over UDP and TCP (§7.2), Tor (§7.3), and OpenVPN-over-TCP
(§7.3).  Each implementation is intentionally minimal but produces real
bytes the GFW's DPI engine can parse — requests cross the wire, get
reassembled, and match (or evade) the rule set for mechanistic reasons.
"""

from repro.apps.udp import UDPHost
from repro.apps.http import (
    HTTPClient,
    HTTPExchange,
    HTTPServer,
    build_request,
    parse_request,
    parse_response,
)
from repro.apps.dns import (
    DNSMessage,
    DNSTcpResolver,
    DNSUdpClient,
    DNSUdpResolver,
    encode_query,
    encode_response,
    extract_query_name,
    parse_message,
)
from repro.apps.tor import TorBridge, TorClient, TOR_HANDSHAKE_PREAMBLE
from repro.apps.vpn import OpenVPNClient, OpenVPNServer, OPENVPN_TCP_PREAMBLE

__all__ = [
    "UDPHost",
    "HTTPClient",
    "HTTPExchange",
    "HTTPServer",
    "build_request",
    "parse_request",
    "parse_response",
    "DNSMessage",
    "DNSTcpResolver",
    "DNSUdpClient",
    "DNSUdpResolver",
    "encode_query",
    "encode_response",
    "extract_query_name",
    "parse_message",
    "TorBridge",
    "TorClient",
    "TOR_HANDSHAKE_PREAMBLE",
    "OpenVPNClient",
    "OpenVPNServer",
    "OPENVPN_TCP_PREAMBLE",
]
