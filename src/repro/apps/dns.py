"""DNS message codec plus UDP/TCP clients and resolvers.

The GFW censors DNS two ways (§2.1): forged answers for UDP queries and
connection resets for TCP queries.  INTANG's DNS forwarder (§6) converts
UDP queries to TCP so the reset-evasion strategies apply.  The codec here
implements enough of RFC 1035 for those mechanics: a query section, an
A-record answer, and the 2-byte length framing used over TCP.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.netstack.packet import ip_to_int, int_to_ip
from repro.netsim.simclock import SimClock
from repro.apps.udp import UDPHost

QTYPE_A = 1
QCLASS_IN = 1
FLAG_RESPONSE = 0x8000
FLAG_RECURSION_DESIRED = 0x0100


@dataclass
class DNSMessage:
    """A parsed (single-question, A-records-only) DNS message."""

    qid: int
    qname: str
    is_response: bool = False
    answers: List[str] = field(default_factory=list)


def _encode_qname(qname: str) -> bytes:
    encoded = bytearray()
    for label in qname.rstrip(".").split("."):
        raw = label.encode("ascii")
        if not 0 < len(raw) < 64:
            raise ValueError(f"bad DNS label in {qname!r}")
        encoded.append(len(raw))
        encoded.extend(raw)
    encoded.append(0)
    return bytes(encoded)


def _decode_qname(payload: bytes, offset: int) -> Tuple[str, int]:
    labels = []
    while True:
        if offset >= len(payload):
            raise ValueError("truncated DNS name")
        length = payload[offset]
        offset += 1
        if length == 0:
            break
        if length >= 0xC0:
            raise ValueError("compressed names not supported")
        if offset + length > len(payload):
            raise ValueError("truncated DNS label")
        labels.append(payload[offset : offset + length].decode("ascii"))
        offset += length
    return ".".join(labels), offset


def encode_query(qid: int, qname: str) -> bytes:
    """Build a standard recursive A query."""
    header = struct.pack(
        "!HHHHHH", qid & 0xFFFF, FLAG_RECURSION_DESIRED, 1, 0, 0, 0
    )
    return header + _encode_qname(qname) + struct.pack("!HH", QTYPE_A, QCLASS_IN)


def encode_response(qid: int, qname: str, address: str, ttl: int = 300) -> bytes:
    """Build a one-answer A response (also used by the GFW's poisoner)."""
    header = struct.pack(
        "!HHHHHH", qid & 0xFFFF, FLAG_RESPONSE | FLAG_RECURSION_DESIRED, 1, 1, 0, 0
    )
    question = _encode_qname(qname) + struct.pack("!HH", QTYPE_A, QCLASS_IN)
    answer = (
        _encode_qname(qname)
        + struct.pack("!HHIH", QTYPE_A, QCLASS_IN, ttl, 4)
        + struct.pack("!I", ip_to_int(address))
    )
    return header + question + answer


def parse_message(payload: bytes) -> DNSMessage:
    """Parse a query or response; raises ValueError on malformed input."""
    if len(payload) < 12:
        raise ValueError("truncated DNS header")
    qid, flags, qdcount, ancount, _ns, _ar = struct.unpack("!HHHHHH", payload[:12])
    if qdcount != 1:
        raise ValueError("expected exactly one question")
    qname, offset = _decode_qname(payload, 12)
    offset += 4  # qtype + qclass
    message = DNSMessage(qid=qid, qname=qname, is_response=bool(flags & FLAG_RESPONSE))
    for _ in range(ancount):
        _name, offset = _decode_qname(payload, offset)
        if offset + 10 > len(payload):
            raise ValueError("truncated DNS answer")
        rtype, rclass, _ttl, rdlength = struct.unpack(
            "!HHIH", payload[offset : offset + 10]
        )
        offset += 10
        rdata = payload[offset : offset + rdlength]
        offset += rdlength
        if rtype == QTYPE_A and rclass == QCLASS_IN and rdlength == 4:
            message.answers.append(int_to_ip(struct.unpack("!I", rdata)[0]))
    return message


def extract_query_name(payload: bytes) -> str:
    """Just the question name — the field the GFW's DPI matches on."""
    return parse_message(payload).qname


# ---------------------------------------------------------------------------
# Applications
# ---------------------------------------------------------------------------
class DNSUdpResolver:
    """A recursive resolver answering A queries from a zone dict."""

    def __init__(self, udp_host: UDPHost, zone: Dict[str, str], port: int = 53) -> None:
        self.udp = udp_host
        self.zone = {name.lower().rstrip("."): ip for name, ip in zone.items()}
        self.port = port
        self.queries_served = 0
        udp_host.bind(port, self._on_query)

    def _on_query(self, src_ip: str, src_port: int, payload: bytes, now: float) -> None:
        try:
            message = parse_message(payload)
        except ValueError:
            return
        if message.is_response:
            return
        address = self.zone.get(message.qname.lower().rstrip("."))
        if address is None:
            return
        self.queries_served += 1
        response = encode_response(message.qid, message.qname, address)
        self.udp.sendto(response, src_ip, src_port, self.port)


class DNSUdpClient:
    """A stub resolver issuing UDP queries and taking the first answer.

    Taking the first answer is deliberate: it is exactly the behaviour
    DNS poisoning exploits (the GFW's forgery beats the real response).
    """

    def __init__(self, udp_host: UDPHost, resolver_ip: str, clock: SimClock) -> None:
        self.udp = udp_host
        self.resolver_ip = resolver_ip
        self.clock = clock
        self._next_qid = 0x1000
        self._pending: Dict[int, Callable[[DNSMessage], None]] = {}
        self.port = udp_host.bind(0, self._on_response)

    def resolve(self, qname: str, on_answer: Callable[[DNSMessage], None]) -> int:
        qid = self._next_qid
        self._next_qid = (self._next_qid + 1) & 0xFFFF
        self._pending[qid] = on_answer
        self.udp.sendto(encode_query(qid, qname), self.resolver_ip, 53, self.port)
        return qid

    def _on_response(
        self, src_ip: str, src_port: int, payload: bytes, now: float
    ) -> None:
        try:
            message = parse_message(payload)
        except ValueError:
            return
        if not message.is_response:
            return
        callback = self._pending.pop(message.qid, None)
        if callback is not None:
            callback(message)


class DNSTcpResolver:
    """A resolver speaking DNS-over-TCP (2-byte length framing)."""

    def __init__(self, tcp_host, zone: Dict[str, str], port: int = 53) -> None:
        self.tcp = tcp_host
        self.zone = {name.lower().rstrip("."): ip for name, ip in zone.items()}
        self.port = port
        self.queries_served = 0
        tcp_host.listen(port, self._on_accept)

    def _on_accept(self, connection) -> None:
        buffer = bytearray()

        def on_data(conn, data: bytes) -> None:
            buffer.extend(data)
            while len(buffer) >= 2:
                length = int.from_bytes(buffer[:2], "big")
                if len(buffer) < 2 + length:
                    break
                payload = bytes(buffer[2 : 2 + length])
                del buffer[: 2 + length]
                self._answer(conn, payload)

        connection.on_data = on_data

    def _answer(self, connection, payload: bytes) -> None:
        try:
            message = parse_message(payload)
        except ValueError:
            return
        address = self.zone.get(message.qname.lower().rstrip("."))
        if address is None:
            return
        self.queries_served += 1
        response = encode_response(message.qid, message.qname, address)
        connection.send(len(response).to_bytes(2, "big") + response)
