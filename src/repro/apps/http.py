"""A minimal HTTP/1.1 client and server.

This is the measurement workload of §3/§7.1: the client issues a GET
whose request line or headers may contain a sensitive keyword (the paper
uses ``ultrasurf``), and the trial outcome is classified from what comes
back — a response (Success), silence (Failure 1), or GFW resets
(Failure 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.tcp.stack import CloseReason, TCPConnection, TCPHost


def build_request(
    host: str, path: str = "/", headers: Optional[Dict[str, str]] = None
) -> bytes:
    """Serialize a GET request (keyword goes in ``path`` or a header)."""
    lines = [f"GET {path} HTTP/1.1", f"Host: {host}"]
    for name, value in (headers or {}).items():
        lines.append(f"{name}: {value}")
    lines.append("Connection: close")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("ascii")


def parse_request(raw: bytes) -> Optional[Tuple[str, str, Dict[str, str]]]:
    """Parse a request head; returns (method, path, headers) or None."""
    if b"\r\n\r\n" not in raw:
        return None
    head = raw.split(b"\r\n\r\n", 1)[0].decode("ascii", "replace")
    lines = head.split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3:
        return None
    method, path, _version = parts
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if ":" in line:
            name, value = line.split(":", 1)
            headers[name.strip().lower()] = value.strip()
    return method, path, headers


def build_response(body: bytes, status: str = "200 OK") -> bytes:
    head = (
        f"HTTP/1.1 {status}\r\n"
        f"Content-Type: text/html\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: close\r\n\r\n"
    )
    return head.encode("ascii") + body


def parse_response(raw: bytes) -> Optional[Tuple[str, bytes]]:
    """Parse a response; returns (status_line, body) once complete."""
    if b"\r\n\r\n" not in raw:
        return None
    head, body = raw.split(b"\r\n\r\n", 1)
    lines = head.decode("ascii", "replace").split("\r\n")
    status_line = lines[0]
    content_length: Optional[int] = None
    for line in lines[1:]:
        if line.lower().startswith("content-length:"):
            try:
                content_length = int(line.split(":", 1)[1].strip())
            except ValueError:
                return None
    if content_length is not None and len(body) < content_length:
        return None
    return status_line, body


class HTTPServer:
    """Serves a canned page for any request on a listening port."""

    def __init__(
        self,
        tcp_host: TCPHost,
        port: int = 80,
        body: bytes = b"<html><body>It works!</body></html>",
    ) -> None:
        self.tcp = tcp_host
        self.body = body
        self.requests_served = 0
        tcp_host.listen(port, self._on_accept)

    def _on_accept(self, connection: TCPConnection) -> None:
        buffer = bytearray()

        def on_data(conn: TCPConnection, data: bytes) -> None:
            buffer.extend(data)
            parsed = parse_request(bytes(buffer))
            if parsed is None:
                return
            self.requests_served += 1
            conn.send(build_response(self.body))
            conn.close()

        connection.on_data = on_data


@dataclass
class HTTPExchange:
    """Everything observed during one client request, for classification."""

    request: bytes
    response_status: Optional[str] = None
    response_body: Optional[bytes] = None
    rsts_received: List[object] = field(default_factory=list)
    close_reason: Optional[CloseReason] = None
    connected: bool = False

    @property
    def got_response(self) -> bool:
        return self.response_status is not None


class HTTPClient:
    """Issues one GET per connection and records the outcome."""

    def __init__(self, tcp_host: TCPHost) -> None:
        self.tcp = tcp_host

    def get(
        self,
        server_ip: str,
        host: str,
        path: str = "/",
        headers: Optional[Dict[str, str]] = None,
        port: int = 80,
        segment_size: int = 1460,
        on_done: Optional[Callable[[HTTPExchange], None]] = None,
    ) -> Tuple[TCPConnection, HTTPExchange]:
        """Open a connection, send the request, collect the response.

        Returns immediately; run the clock to completion and inspect the
        returned :class:`HTTPExchange`.
        """
        request = build_request(host, path, headers)
        exchange = HTTPExchange(request=request)
        connection = self.tcp.connect(server_ip, port)
        buffer = bytearray()

        def on_established(conn: TCPConnection) -> None:
            exchange.connected = True
            conn.send(request, segment_size=segment_size)

        def on_data(conn: TCPConnection, data: bytes) -> None:
            buffer.extend(data)
            parsed = parse_response(bytes(buffer))
            if parsed is not None and exchange.response_status is None:
                exchange.response_status, exchange.response_body = parsed
                if on_done is not None:
                    on_done(exchange)

        def on_close(conn: TCPConnection, reason: CloseReason) -> None:
            exchange.close_reason = reason
            exchange.rsts_received = list(conn.received_rsts)

        connection.on_established = on_established
        connection.on_data = on_data
        connection.on_close = on_close
        return connection, exchange
