"""An OpenVPN-over-TCP stand-in with a fingerprintable handshake.

§7.3: a preliminary INTANG version kept an openvpn-over-TCP session
alive where the bare protocol was reset by the GFW "during the handshake
phase (the GFW seemingly used DPI)".  The wire format below mimics the
aspect that matters: OpenVPN's TCP transport prefixes each message with
a 2-byte length, and the first client message (P_CONTROL_HARD_RESET_V2)
has a recognizable leading opcode byte — which is what DPI keys on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.tcp.stack import CloseReason, TCPConnection, TCPHost

#: Length-prefixed P_CONTROL_HARD_RESET_CLIENT_V2 lookalike.
OPENVPN_TCP_PREAMBLE = b"\x00\x2a\x38OPENVPN-HARD-RESET-CLIENT-V2" + bytes(13)
OPENVPN_SERVER_REPLY = b"\x00\x1e\x40OPENVPN-HARD-RESET-SERVER-V2"
OPENVPN_DEFAULT_PORT = 1194


@dataclass
class VPNSession:
    established: bool = False
    payload_frames: int = 0
    reset: bool = False
    close_reason: Optional[CloseReason] = None
    rsts_received: List[object] = field(default_factory=list)


class OpenVPNServer:
    """Accepts the handshake and echoes tunneled frames."""

    def __init__(self, tcp_host: TCPHost, port: int = OPENVPN_DEFAULT_PORT) -> None:
        self.tcp = tcp_host
        self.port = port
        self.sessions_established = 0
        tcp_host.listen(port, self._on_accept)

    def _on_accept(self, connection: TCPConnection) -> None:
        buffer = bytearray()
        state = {"handshaken": False}

        def on_data(conn: TCPConnection, data: bytes) -> None:
            buffer.extend(data)
            if not state["handshaken"]:
                if bytes(buffer).startswith(OPENVPN_TCP_PREAMBLE):
                    state["handshaken"] = True
                    self.sessions_established += 1
                    del buffer[: len(OPENVPN_TCP_PREAMBLE)]
                    conn.send(OPENVPN_SERVER_REPLY)
                return
            while len(buffer) >= 32:
                frame = bytes(buffer[:32])
                del buffer[:32]
                conn.send(frame)

        connection.on_data = on_data


class OpenVPNClient:
    """Handshakes then pushes tunneled frames through the session."""

    def __init__(self, tcp_host: TCPHost) -> None:
        self.tcp = tcp_host

    def open_session(
        self,
        server_ip: str,
        port: int = OPENVPN_DEFAULT_PORT,
        frames_to_send: int = 2,
    ) -> VPNSession:
        session = VPNSession()
        connection = self.tcp.connect(server_ip, port)
        buffer = bytearray()
        pending = {"frames": frames_to_send}

        def start(conn: TCPConnection) -> None:
            conn.send(OPENVPN_TCP_PREAMBLE)

        def on_data(conn: TCPConnection, data: bytes) -> None:
            buffer.extend(data)
            if not session.established:
                if bytes(buffer).startswith(OPENVPN_SERVER_REPLY):
                    session.established = True
                    del buffer[: len(OPENVPN_SERVER_REPLY)]
                    if pending["frames"] > 0:
                        conn.send(b"TUN-FRAME" + bytes(23))
                return
            while len(buffer) >= 32:
                del buffer[:32]
                session.payload_frames += 1
                pending["frames"] -= 1
                if pending["frames"] > 0:
                    conn.send(b"TUN-FRAME" + bytes(23))

        def on_close(conn: TCPConnection, reason: CloseReason) -> None:
            session.close_reason = reason
            session.rsts_received = list(conn.received_rsts)
            if reason is CloseReason.RESET:
                session.reset = True

        connection.on_established = start
        connection.on_data = on_data
        connection.on_close = on_close
        return session
