"""Concrete in-path middlebox implementations.

Three families cover everything Table 2 and §3.4 describe:

- :class:`FragmentHandlingBox` — passes, discards, or *reassembles* IP
  fragments.  Reassembly is the insidious case: the garbage/real overlap
  trick is resolved *before* the GFW sees the traffic, re-exposing the
  original request (§3.4: "these packets were deterministically captured
  by the GFW");
- :class:`FieldSanitizerBox` — drops packets with wrong TCP checksums, no
  TCP flags, FIN, or RST, each with its own (possibly probabilistic,
  "sometimes dropped") policy;
- :class:`StatefulFirewallBox` — a NAT-style connection tracker that
  *accepts* insertion packets: a spoofed RST tears down its entry and
  every subsequent legitimate packet is dropped ("Failure 1", §3.4).
"""

from __future__ import annotations

import enum
import random
from typing import Dict, Optional, Tuple

from repro.rngledger import TrialRandom, as_trial_random
from repro.netstack.fragment import FragmentReassembler, OverlapPolicy
from repro.netstack.options import KIND_MD5SIG
from repro.netstack.packet import FIN, IPPacket, RST, TCPSegment, seq_add, seq_sub
from repro.netstack.wire import tcp_checksum_valid
from repro.netsim.path import Direction, InlineBox, ProcessResult


class FragmentMode(enum.Enum):
    PASS = "pass"
    DISCARD = "discard"
    REASSEMBLE = "reassemble"


class FragmentHandlingBox(InlineBox):
    """Implements the "IP fragments" row of Table 2."""

    def __init__(
        self,
        name: str,
        hop: int,
        mode: FragmentMode = FragmentMode.PASS,
        reassembly_policy: OverlapPolicy = OverlapPolicy.FIRST_WINS,
    ) -> None:
        super().__init__(name, hop)
        self.mode = mode
        self.reassembly_policy = reassembly_policy
        self._reassembler = FragmentReassembler(policy=reassembly_policy)
        self.fragments_discarded = 0
        self.packets_reassembled = 0

    def process(
        self, packet: IPPacket, direction: Direction, now: float
    ) -> ProcessResult:
        if not packet.is_fragment or self.mode is FragmentMode.PASS:
            return ProcessResult.forward()
        if self.mode is FragmentMode.DISCARD:
            self.fragments_discarded += 1
            return ProcessResult.drop()
        whole = self._reassembler.add(packet)
        if whole is None:
            return ProcessResult.drop()  # buffered, nothing forwarded yet
        self.packets_reassembled += 1
        return ProcessResult.replace([whole])

    def reset_state(self) -> None:
        self._reassembler = FragmentReassembler(policy=self.reassembly_policy)


class FieldSanitizerBox(InlineBox):
    """Drops packets whose headers look anomalous (Table 2 rows 2-5).

    Each drop probability may be 0.0 (pass), 1.0 (always dropped), or in
    between ("sometimes dropped", as measured for Aliyun FINs and QCloud
    RSTs).
    """

    def __init__(
        self,
        name: str,
        hop: int,
        drop_bad_checksum: float = 0.0,
        drop_no_flag: float = 0.0,
        drop_fin: float = 0.0,
        drop_rst: float = 0.0,
        rng: Optional[random.Random] = None,
    ) -> None:
        super().__init__(name, hop)
        self.drop_bad_checksum = drop_bad_checksum
        self.drop_no_flag = drop_no_flag
        self.drop_fin = drop_fin
        self.drop_rst = drop_rst
        self.rng = as_trial_random(rng) or TrialRandom(hash(name) & 0xFFFFFFFF)
        self.dropped: Dict[str, int] = {}

    def _roll(self, probability: float, label: str) -> bool:
        if probability <= 0.0:
            return False
        if probability >= 1.0 or self.rng.coin(probability):
            self.dropped[label] = self.dropped.get(label, 0) + 1
            return True
        return False

    def process(
        self, packet: IPPacket, direction: Direction, now: float
    ) -> ProcessResult:
        segment = packet.payload
        if segment.__class__ is not TCPSegment:
            return ProcessResult.forward()
        if not tcp_checksum_valid(segment, packet.src, packet.dst):
            if self._roll(self.drop_bad_checksum, "bad-checksum"):
                return ProcessResult.drop()
        # §5.3: "insertion packets leveraging the unsolicited MD5 header
        # … are never dropped by the middleboxes we encounter" — the
        # option changes how the sanitizers classify the packet.
        if segment.options and segment.find_option(KIND_MD5SIG) is not None:
            return ProcessResult.forward()
        flags = segment.flags
        if flags == 0 and self._roll(self.drop_no_flag, "no-flag"):
            return ProcessResult.drop()
        if flags & FIN and self._roll(self.drop_fin, "fin"):
            return ProcessResult.drop()
        if flags & RST and self._roll(self.drop_rst, "rst"):
            return ProcessResult.drop()
        return ProcessResult.forward()


class _FirewallEntry:
    __slots__ = (
        "client_ip",
        "client_next",
        "server_next",
        "server_seq_known",
        "torn_down",
    )

    def __init__(self, client_ip: str, client_next: int) -> None:
        self.client_ip = client_ip
        self.client_next = client_next
        self.server_next = 0
        self.server_seq_known = False
        self.torn_down = False


class StatefulFirewallBox(InlineBox):
    """A connection-tracking firewall that insertion packets can poison.

    The failure mode of §3.4: the box accepts a spoofed RST/FIN as
    genuine, marks the connection dead, and then drops all later packets
    of the real connection.  Optionally it also checks sequence windows,
    so a desync packet can shift its expectations.
    """

    def __init__(
        self,
        name: str,
        hop: int,
        teardown_on_rst: bool = True,
        teardown_on_fin: bool = True,
        check_sequences: bool = False,
        seq_window: int = 65535,
        teardown_probability: float = 1.0,
        rng: Optional[random.Random] = None,
    ) -> None:
        super().__init__(name, hop)
        self.teardown_on_rst = teardown_on_rst
        self.teardown_on_fin = teardown_on_fin
        self.check_sequences = check_sequences
        self.seq_window = seq_window
        #: Probability a matching RST/FIN actually poisons the entry —
        #: some boxes only "sometimes" adopt forged control packets.
        self.teardown_probability = teardown_probability
        self.rng = as_trial_random(rng) or TrialRandom(hash(name) & 0xFFFFFFFF)
        self._entries: Dict[Tuple, _FirewallEntry] = {}
        self.packets_blocked = 0
        self.teardowns = 0

    @staticmethod
    def _key(packet: IPPacket, segment: TCPSegment) -> Tuple:
        ends = sorted(
            [(packet.src, segment.src_port), (packet.dst, segment.dst_port)]
        )
        return (ends[0], ends[1])

    def process(
        self, packet: IPPacket, direction: Direction, now: float
    ) -> ProcessResult:
        if not packet.is_tcp:
            return ProcessResult.forward()
        segment = packet.tcp
        key = self._key(packet, segment)
        entry = self._entries.get(key)
        if entry is None:
            if segment.is_pure_syn:
                self._entries[key] = _FirewallEntry(
                    packet.src, seq_add(segment.seq, 1)
                )
            return ProcessResult.forward()
        if entry.torn_down:
            if segment.is_rst:
                return ProcessResult.forward()  # let resets through
            self.packets_blocked += 1
            return ProcessResult.drop()
        if segment.is_synack and not entry.server_seq_known:
            entry.server_next = seq_add(segment.seq, 1)
            entry.server_seq_known = True
        if segment.is_rst and self.teardown_on_rst and self._teardown_roll():
            entry.torn_down = True
            self.teardowns += 1
            return ProcessResult.forward()
        if segment.is_fin and self.teardown_on_fin and self._teardown_roll():
            entry.torn_down = True
            self.teardowns += 1
            return ProcessResult.forward()
        if self.check_sequences and segment.payload:
            from_client = packet.src == entry.client_ip
            expected = entry.client_next if from_client else entry.server_next
            if not from_client and not entry.server_seq_known:
                return ProcessResult.forward()
            offset = seq_sub(segment.seq, expected)
            if not -self.seq_window < offset < self.seq_window:
                self.packets_blocked += 1
                return ProcessResult.drop()
            end = seq_add(segment.seq, len(segment.payload))
            if seq_sub(end, expected) > 0:
                if from_client:
                    entry.client_next = end
                else:
                    entry.server_next = end
        return ProcessResult.forward()

    def _teardown_roll(self) -> bool:
        if self.teardown_probability >= 1.0:
            return True
        return self.rng.coin(self.teardown_probability)

    def reset_state(self) -> None:
        self._entries.clear()
