"""In-path middleboxes and the provider profiles of Table 2.

Middlebox interference is one of the paper's two root causes for the
failure of classic evasion strategies (§3.4): client-side boxes drop the
very packet anomalies insertion packets rely on (wrong checksums,
missing flags, FINs, RSTs), discard or — worse — transparently
*reassemble* IP fragments, and stateful firewalls adopt insertion
packets into their own connection state, blackholing the real traffic
afterwards.
"""

from repro.middlebox.boxes import (
    FieldSanitizerBox,
    FragmentHandlingBox,
    FragmentMode,
    StatefulFirewallBox,
)
from repro.middlebox.profiles import (
    MiddleboxProfile,
    PROFILE_ALIYUN,
    PROFILE_QCLOUD,
    PROFILE_UNICOM_SJZ,
    PROFILE_UNICOM_TJ,
    PROFILE_TRANSPARENT,
    PROVIDER_PROFILES,
)

__all__ = [
    "FieldSanitizerBox",
    "FragmentHandlingBox",
    "FragmentMode",
    "StatefulFirewallBox",
    "MiddleboxProfile",
    "PROFILE_ALIYUN",
    "PROFILE_QCLOUD",
    "PROFILE_UNICOM_SJZ",
    "PROFILE_UNICOM_TJ",
    "PROFILE_TRANSPARENT",
    "PROVIDER_PROFILES",
]
