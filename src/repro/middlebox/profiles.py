"""Provider middlebox profiles — a direct transcription of Table 2.

| Packet type        | Aliyun (6/11) | QCloud (3/11) | Unicom SJZ | Unicom TJ |
|--------------------|---------------|---------------|------------|-----------|
| IP fragments       | Discarded     | Reassembled   | Reassembled| Reassembled |
| Wrong TCP checksum | Pass          | Pass          | Pass       | Dropped   |
| No TCP flag        | Pass          | Pass          | Pass       | Dropped   |
| RST packets        | Pass          | Sometimes     | Pass       | Pass      |
| FIN packets        | Sometimes     | Pass          | Dropped    | Dropped   |

"Sometimes dropped" is modelled as a 0.5 per-packet probability; every
other cell is deterministic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from repro.middlebox.boxes import (
    FieldSanitizerBox,
    FragmentHandlingBox,
    FragmentMode,
)
from repro.netstack.fragment import OverlapPolicy
from repro.netsim.path import InlineBox

#: Probability used for Table 2's "Sometimes dropped" cells.
SOMETIMES = 0.5


@dataclass(frozen=True)
class MiddleboxProfile:
    """A provider's observable client-side middlebox behaviour."""

    name: str
    fragment_mode: FragmentMode = FragmentMode.PASS
    drop_bad_checksum: float = 0.0
    drop_no_flag: float = 0.0
    drop_fin: float = 0.0
    drop_rst: float = 0.0

    def build_boxes(
        self, hop: int, rng: Optional[random.Random] = None
    ) -> List[InlineBox]:
        """Instantiate this profile as path elements at ``hop``."""
        boxes: List[InlineBox] = []
        if self.fragment_mode is not FragmentMode.PASS:
            # Reassembling boxes keep the *latest* data on overlaps, which
            # restores the real request and re-exposes it to the GFW —
            # §3.4: "these packets were deterministically captured".
            boxes.append(
                FragmentHandlingBox(
                    name=f"{self.name}-frag",
                    hop=hop,
                    mode=self.fragment_mode,
                    reassembly_policy=OverlapPolicy.LAST_WINS,
                )
            )
        if any(
            (self.drop_bad_checksum, self.drop_no_flag, self.drop_fin, self.drop_rst)
        ):
            boxes.append(
                FieldSanitizerBox(
                    name=f"{self.name}-sanitizer",
                    hop=hop,
                    drop_bad_checksum=self.drop_bad_checksum,
                    drop_no_flag=self.drop_no_flag,
                    drop_fin=self.drop_fin,
                    drop_rst=self.drop_rst,
                    rng=rng,
                )
            )
        return boxes


PROFILE_ALIYUN = MiddleboxProfile(
    name="aliyun",
    fragment_mode=FragmentMode.DISCARD,
    drop_fin=SOMETIMES,
)

PROFILE_QCLOUD = MiddleboxProfile(
    name="qcloud",
    fragment_mode=FragmentMode.REASSEMBLE,
    drop_rst=SOMETIMES,
)

PROFILE_UNICOM_SJZ = MiddleboxProfile(
    name="unicom-sjz",
    fragment_mode=FragmentMode.REASSEMBLE,
    drop_fin=1.0,
)

PROFILE_UNICOM_TJ = MiddleboxProfile(
    name="unicom-tj",
    fragment_mode=FragmentMode.REASSEMBLE,
    drop_bad_checksum=1.0,
    drop_no_flag=1.0,
    drop_fin=1.0,
)

#: A path with no interfering client-side middleboxes (used for the
#: outside-China vantage points and for controlled experiments).
PROFILE_TRANSPARENT = MiddleboxProfile(name="transparent")

PROVIDER_PROFILES = {
    profile.name: profile
    for profile in (
        PROFILE_ALIYUN,
        PROFILE_QCLOUD,
        PROFILE_UNICOM_SJZ,
        PROFILE_UNICOM_TJ,
        PROFILE_TRANSPARENT,
    )
}
