"""IPv4 fragmentation and overlap-policy-aware reassembly.

§3.2 of the paper exploits a reassembly discrepancy: for two out-of-order
IP fragments with the same offset and length, the GFW keeps the *former*
(first-wins) while typical endpoint stacks keep different data depending
on implementation.  Middleboxes add a third behaviour: some discard all
fragments (Aliyun, Table 2) and some reassemble them in-path before
forwarding, which re-exposes the original payload to the GFW.

This module provides:

- :func:`fragment_packet` — split a serialized transport payload into
  IP fragments at 8-byte-aligned boundaries;
- :class:`FragmentReassembler` — a policy-parameterized reassembler used
  by endpoint stacks, middleboxes, and the GFW alike.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.netstack.packet import IPPacket, PROTO_TCP, PROTO_UDP
from repro.netstack.wire import parse_tcp, parse_udp, transport_bytes


class OverlapPolicy(enum.Enum):
    """How overlapping fragment data is resolved during reassembly.

    ``FIRST_WINS`` keeps the data that arrived first (the GFW's observed
    behaviour for IP fragments); ``LAST_WINS`` keeps the most recent data.
    """

    FIRST_WINS = "first-wins"
    LAST_WINS = "last-wins"


def fragment_packet(
    packet: IPPacket, fragment_size: int, identification: Optional[int] = None
) -> List[IPPacket]:
    """Split ``packet`` into IP fragments carrying raw transport bytes.

    ``fragment_size`` is the transport-payload bytes per fragment and must
    be a multiple of 8 (the IP fragment-offset unit) except for the final
    fragment.  The original packet is not modified.
    """
    if fragment_size % 8:
        raise ValueError("fragment size must be a multiple of 8")
    body = transport_bytes(packet)
    if fragment_size >= len(body):
        raise ValueError("fragment size must be smaller than the payload")
    ident = identification if identification is not None else packet.identification
    fragments: List[IPPacket] = []
    offset = 0
    while offset < len(body):
        chunk = body[offset : offset + fragment_size]
        is_last = offset + len(chunk) >= len(body)
        fragments.append(
            IPPacket(
                src=packet.src,
                dst=packet.dst,
                payload=chunk,
                ttl=packet.ttl,
                identification=ident,
                dont_fragment=False,
                more_fragments=not is_last,
                frag_offset=offset // 8,
            )
        )
        offset += len(chunk)
    return fragments


def make_fragment(
    template: IPPacket,
    data: bytes,
    byte_offset: int,
    more_fragments: bool,
    identification: Optional[int] = None,
) -> IPPacket:
    """Craft a single (possibly overlapping or garbage) fragment by hand.

    Evasion strategies use this to send a garbage fragment at the same
    offset/length as the real data (§3.2 "out-of-order data overlapping").
    """
    if byte_offset % 8:
        raise ValueError("fragment byte offset must be a multiple of 8")
    return IPPacket(
        src=template.src,
        dst=template.dst,
        payload=data,
        ttl=template.ttl,
        identification=(
            identification if identification is not None else template.identification
        ),
        dont_fragment=False,
        more_fragments=more_fragments,
        frag_offset=byte_offset // 8,
    )


@dataclass
class _FragmentBuffer:
    """Accumulated fragment data for one (src, dst, id, proto) key."""

    #: byte offset -> bytes, as accepted under the overlap policy
    chunks: Dict[int, bytes] = field(default_factory=dict)
    total_length: Optional[int] = None
    first_packet: Optional[IPPacket] = None


class FragmentReassembler:
    """Reassemble IP fragments under a configurable overlap policy.

    Each call to :meth:`add` either returns ``None`` (more fragments
    needed) or the fully reassembled :class:`IPPacket` with its transport
    payload re-parsed.  The reassembler resolves overlapping byte ranges
    per :class:`OverlapPolicy`, which is exactly the discrepancy lever of
    the out-of-order IP-fragment evasion strategy.
    """

    def __init__(self, policy: OverlapPolicy = OverlapPolicy.LAST_WINS) -> None:
        self.policy = policy
        self._buffers: Dict[Tuple[str, str, int, int], _FragmentBuffer] = {}

    def add(self, fragment: IPPacket) -> Optional[IPPacket]:
        """Feed one fragment; return the reassembled packet when complete."""
        if not fragment.is_fragment:
            return fragment
        if not isinstance(fragment.payload, (bytes, bytearray)):
            raise TypeError("fragments must carry raw bytes")
        key = (fragment.src, fragment.dst, fragment.identification, fragment.protocol)
        buffer = self._buffers.setdefault(key, _FragmentBuffer())
        if buffer.first_packet is None:
            buffer.first_packet = fragment
        offset = fragment.frag_offset * 8
        self._merge(buffer, offset, bytes(fragment.payload))
        if not fragment.more_fragments:
            buffer.total_length = max(
                buffer.total_length or 0, offset + len(fragment.payload)
            )
        packet = self._try_complete(key, buffer)
        return packet

    def pending_count(self) -> int:
        """Number of flows with incomplete fragment buffers."""
        return len(self._buffers)

    def _merge(self, buffer: _FragmentBuffer, offset: int, data: bytes) -> None:
        """Insert ``data`` at ``offset`` byte-by-byte under the policy.

        Byte-granular merging keeps the semantics simple and exactly
        matches how first-wins/last-wins differ on partial overlaps.
        """
        existing: Dict[int, int] = {}
        for chunk_offset, chunk in buffer.chunks.items():
            for i, value in enumerate(chunk):
                existing[chunk_offset + i] = value
        for i, value in enumerate(data):
            position = offset + i
            if position in existing and self.policy is OverlapPolicy.FIRST_WINS:
                continue
            existing[position] = value
        buffer.chunks = _bytes_map_to_chunks(existing)

    def _try_complete(
        self, key: Tuple[str, str, int, int], buffer: _FragmentBuffer
    ) -> Optional[IPPacket]:
        if buffer.total_length is None:
            return None
        covered = bytearray(buffer.total_length)
        seen = [False] * buffer.total_length
        for chunk_offset, chunk in buffer.chunks.items():
            for i, value in enumerate(chunk):
                if chunk_offset + i < buffer.total_length:
                    covered[chunk_offset + i] = value
                    seen[chunk_offset + i] = True
        if not all(seen):
            return None
        del self._buffers[key]
        template = buffer.first_packet
        assert template is not None
        body = bytes(covered)
        if template.protocol == PROTO_TCP:
            payload = parse_tcp(body)
        elif template.protocol == PROTO_UDP:
            payload = parse_udp(body)
        else:  # pragma: no cover - only TCP/UDP exist in this simulator
            raise ValueError("unknown transport protocol")
        return IPPacket(
            src=template.src,
            dst=template.dst,
            payload=payload,
            ttl=template.ttl,
            identification=template.identification,
            dont_fragment=False,
            more_fragments=False,
            frag_offset=0,
        )


def _bytes_map_to_chunks(byte_map: Dict[int, int]) -> Dict[int, bytes]:
    """Compact a position->byte map into contiguous offset->bytes chunks."""
    chunks: Dict[int, bytes] = {}
    if not byte_map:
        return chunks
    positions = sorted(byte_map)
    start = positions[0]
    current = bytearray([byte_map[start]])
    previous = start
    for position in positions[1:]:
        if position == previous + 1:
            current.append(byte_map[position])
        else:
            chunks[start] = bytes(current)
            start = position
            current = bytearray([byte_map[position]])
        previous = position
    chunks[start] = bytes(current)
    return chunks
