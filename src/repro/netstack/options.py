"""TCP options, including the ones the paper uses as insertion discrepancies.

Two options matter especially for the reproduction:

- :class:`MD5SignatureOption` (RFC 2385, kind 19): §5.3 finds that packets
  carrying an *unsolicited* MD5 signature option are ignored by Linux
  servers (≥ 2.6) but accepted by the GFW, and — crucially — are never
  dropped by middleboxes, making them the most robust insertion vehicle.
- :class:`TimestampOption` (RFC 7323, kind 8): a data packet with a
  timestamp older than the peer's last recorded ``TSval`` fails the PAWS
  check and is ignored by the server while the GFW still processes it
  (Table 3 last row).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import List, Optional

KIND_EOL = 0
KIND_NOP = 1
KIND_MSS = 2
KIND_WSCALE = 3
KIND_SACK_PERMITTED = 4
KIND_TIMESTAMP = 8
KIND_MD5SIG = 19


@dataclass(frozen=True)
class TCPOption:
    """Base class for TCP options.

    Concrete options override :meth:`to_bytes`.  Unknown options round-trip
    through :class:`RawOption`.
    """

    kind: int = field(init=False, default=0)

    def to_bytes(self) -> bytes:
        raise NotImplementedError


@dataclass(frozen=True)
class EndOfOptionsOption(TCPOption):
    kind: int = field(init=False, default=KIND_EOL)

    def to_bytes(self) -> bytes:
        return bytes([KIND_EOL])


@dataclass(frozen=True)
class NopOption(TCPOption):
    kind: int = field(init=False, default=KIND_NOP)

    def to_bytes(self) -> bytes:
        return bytes([KIND_NOP])


@dataclass(frozen=True)
class MSSOption(TCPOption):
    """Maximum segment size, negotiated on SYN/SYN-ACK."""

    mss: int = 1460
    kind: int = field(init=False, default=KIND_MSS)

    def to_bytes(self) -> bytes:
        return struct.pack("!BBH", KIND_MSS, 4, self.mss)


@dataclass(frozen=True)
class WindowScaleOption(TCPOption):
    shift: int = 7
    kind: int = field(init=False, default=KIND_WSCALE)

    def to_bytes(self) -> bytes:
        return struct.pack("!BBB", KIND_WSCALE, 3, self.shift)


@dataclass(frozen=True)
class SACKPermittedOption(TCPOption):
    kind: int = field(init=False, default=KIND_SACK_PERMITTED)

    def to_bytes(self) -> bytes:
        return struct.pack("!BB", KIND_SACK_PERMITTED, 2)


@dataclass(frozen=True)
class TimestampOption(TCPOption):
    """RFC 7323 timestamps; ``tsval`` feeds the receiver's PAWS check."""

    tsval: int = 0
    tsecr: int = 0
    kind: int = field(init=False, default=KIND_TIMESTAMP)

    def to_bytes(self) -> bytes:
        return struct.pack("!BBII", KIND_TIMESTAMP, 10, self.tsval, self.tsecr)


@dataclass(frozen=True)
class MD5SignatureOption(TCPOption):
    """RFC 2385 TCP MD5 signature option (kind 19, length 18).

    The 16-byte digest is opaque here — what matters to the reproduction
    is the *presence* of the option on a connection that never negotiated
    MD5 protection, which makes modern Linux stacks drop the packet on a
    dedicated ignore path (``tcp_v4_inbound_md5_hash``).
    """

    digest: bytes = b"\x00" * 16
    kind: int = field(init=False, default=KIND_MD5SIG)

    def __post_init__(self) -> None:
        if len(self.digest) != 16:
            raise ValueError("MD5 signature digest must be 16 bytes")

    def to_bytes(self) -> bytes:
        return struct.pack("!BB", KIND_MD5SIG, 18) + self.digest


@dataclass(frozen=True)
class RawOption(TCPOption):
    """An option whose kind we do not model; preserved byte-for-byte."""

    raw_kind: int = 253
    data: bytes = b""
    kind: int = field(init=False, default=-1)

    def __post_init__(self) -> None:
        object.__setattr__(self, "kind", self.raw_kind)

    def to_bytes(self) -> bytes:
        return struct.pack("!BB", self.raw_kind, 2 + len(self.data)) + self.data


def serialize_options(options: List[TCPOption]) -> bytes:
    """Serialize options and pad with NOPs to a 4-byte boundary."""
    blob = b"".join(option.to_bytes() for option in options)
    while len(blob) % 4:
        blob += bytes([KIND_NOP])
    return blob


def parse_options(blob: bytes) -> List[TCPOption]:
    """Parse a TCP options blob back into option objects.

    Malformed trailing bytes are silently discarded, mirroring the lenient
    parsing of real stacks (the GFW is even more lenient).
    """
    options: List[TCPOption] = []
    i = 0
    while i < len(blob):
        kind = blob[i]
        if kind == KIND_EOL:
            break
        if kind == KIND_NOP:
            i += 1
            continue
        if i + 1 >= len(blob):
            break
        length = blob[i + 1]
        if length < 2 or i + length > len(blob):
            break
        body = blob[i + 2 : i + length]
        options.append(_parse_one(kind, body))
        i += length
    return options


def _parse_one(kind: int, body: bytes) -> TCPOption:
    if kind == KIND_MSS and len(body) == 2:
        return MSSOption(mss=struct.unpack("!H", body)[0])
    if kind == KIND_WSCALE and len(body) == 1:
        return WindowScaleOption(shift=body[0])
    if kind == KIND_SACK_PERMITTED and not body:
        return SACKPermittedOption()
    if kind == KIND_TIMESTAMP and len(body) == 8:
        tsval, tsecr = struct.unpack("!II", body)
        return TimestampOption(tsval=tsval, tsecr=tsecr)
    if kind == KIND_MD5SIG and len(body) == 16:
        return MD5SignatureOption(digest=body)
    return RawOption(raw_kind=kind, data=body)


def find_option(options: List[TCPOption], kind: int) -> Optional[TCPOption]:
    """Return the first option of ``kind`` in ``options``, or None."""
    for option in options:
        if option.kind == kind:
            return option
    return None
