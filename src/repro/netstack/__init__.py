"""Packet model and wire formats.

This package provides the low-level substrate every other layer builds on:

- :mod:`repro.netstack.packet` — dataclasses for IPv4 packets, TCP segments
  and UDP datagrams, including the *corruptible* fields (checksum, TTL,
  data offset, total length) that censorship-evasion insertion packets
  deliberately mangle.
- :mod:`repro.netstack.options` — TCP options, including the RFC 2385 MD5
  signature option and RFC 7323 timestamps that the paper's Table 3 uses
  as insertion-packet discrepancies.
- :mod:`repro.netstack.checksum` — the RFC 1071 Internet checksum plus the
  TCP/UDP pseudo-header variants.
- :mod:`repro.netstack.wire` — byte-level serialization and parsing, so a
  "wrong checksum" is a real wrong 16-bit value on a real wire image.
- :mod:`repro.netstack.fragment` — IPv4 fragmentation and the overlap
  reassembly *policies* (first-wins vs last-wins) that §3.2 exploits.
"""

from repro.netstack.packet import (
    FIN,
    SYN,
    RST,
    PSH,
    ACK,
    URG,
    IPPacket,
    TCPSegment,
    UDPDatagram,
    flags_to_str,
    ip_to_int,
    int_to_ip,
)
from repro.netstack.options import (
    TCPOption,
    MSSOption,
    WindowScaleOption,
    SACKPermittedOption,
    TimestampOption,
    MD5SignatureOption,
    NopOption,
    EndOfOptionsOption,
)
from repro.netstack.checksum import internet_checksum, pseudo_header_checksum
from repro.netstack.wire import (
    serialize_ip,
    parse_ip,
    serialize_tcp,
    parse_tcp,
    serialize_udp,
    parse_udp,
)
from repro.netstack.fragment import (
    FragmentReassembler,
    OverlapPolicy,
    fragment_packet,
)

__all__ = [
    "FIN",
    "SYN",
    "RST",
    "PSH",
    "ACK",
    "URG",
    "IPPacket",
    "TCPSegment",
    "UDPDatagram",
    "flags_to_str",
    "ip_to_int",
    "int_to_ip",
    "TCPOption",
    "MSSOption",
    "WindowScaleOption",
    "SACKPermittedOption",
    "TimestampOption",
    "MD5SignatureOption",
    "NopOption",
    "EndOfOptionsOption",
    "internet_checksum",
    "pseudo_header_checksum",
    "serialize_ip",
    "parse_ip",
    "serialize_tcp",
    "parse_tcp",
    "serialize_udp",
    "parse_udp",
    "FragmentReassembler",
    "OverlapPolicy",
    "fragment_packet",
]
