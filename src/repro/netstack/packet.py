"""IPv4 / TCP / UDP packet dataclasses.

Packets travel through the simulator as objects, but every field a real
censor or middlebox can observe is modelled, including the fields that
insertion packets deliberately corrupt:

- ``TCPSegment.checksum_override`` — carry a wrong transport checksum
  ("Bad checksum" rows of Table 1);
- ``TCPSegment.data_offset_override`` — a TCP header length below 20 bytes
  (Table 3 row 2);
- ``IPPacket.total_length_override`` — an IP total length larger than the
  actual packet (Table 3 row 1);
- ``IPPacket.ttl`` — decremented per hop so low-TTL insertion packets die
  between the GFW and the server exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Tuple, Union

from repro.netstack.options import TCPOption
from repro.telemetry.metrics import get_registry

# TCP flag bits (RFC 793).
FIN = 0x01
SYN = 0x02
RST = 0x04
PSH = 0x08
ACK = 0x10
URG = 0x20

PROTO_TCP = 6
PROTO_UDP = 17

_FLAG_NAMES = [(SYN, "S"), (FIN, "F"), (RST, "R"), (PSH, "P"), (ACK, "A"), (URG, "U")]


def flags_to_str(flags: int) -> str:
    """Render a TCP flag bitmask as a compact string like ``"SA"``.

    >>> flags_to_str(SYN | ACK)
    'SA'
    >>> flags_to_str(0)
    '-'
    """
    text = "".join(name for bit, name in _FLAG_NAMES if flags & bit)
    return text or "-"


def ip_to_int(address: str) -> int:
    """Convert dotted-quad notation to a 32-bit integer.

    >>> hex(ip_to_int("10.0.0.1"))
    '0xa000001'
    """
    parts = address.split(".")
    if len(parts) != 4:
        raise ValueError(f"not an IPv4 address: {address!r}")
    value = 0
    for part in parts:
        octet = int(part)
        if not 0 <= octet <= 255:
            raise ValueError(f"octet out of range in {address!r}")
        value = (value << 8) | octet
    return value


def int_to_ip(value: int) -> str:
    """Convert a 32-bit integer back to dotted-quad notation.

    >>> int_to_ip(0x0A000001)
    '10.0.0.1'
    """
    if not 0 <= value <= 0xFFFFFFFF:
        raise ValueError("IPv4 address out of range")
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


@dataclass(slots=True)
class TCPSegment:
    """A TCP segment with every censorship-relevant knob exposed.

    ``slots=True``: packets are the simulator's hottest allocation (every
    hop traversal copies), and slotted instances are smaller and faster
    to create than ``__dict__``-backed ones.
    """

    src_port: int
    dst_port: int
    seq: int = 0
    ack: int = 0
    flags: int = 0
    window: int = 65535
    payload: bytes = b""
    options: List[TCPOption] = field(default_factory=list)
    urgent: int = 0
    #: When set, serialized with this (typically wrong) checksum instead of
    #: the computed one.  ``None`` means "compute the correct checksum".
    checksum_override: Optional[int] = None
    #: When set, the header length field is forced to this many 32-bit
    #: words; values below 5 make the header illegally short.
    data_offset_override: Optional[int] = None

    # -- flag helpers -----------------------------------------------------
    @property
    def is_syn(self) -> bool:
        return bool(self.flags & SYN)

    @property
    def is_fin(self) -> bool:
        return bool(self.flags & FIN)

    @property
    def is_rst(self) -> bool:
        return bool(self.flags & RST)

    @property
    def has_ack(self) -> bool:
        return bool(self.flags & ACK)

    @property
    def is_pure_syn(self) -> bool:
        return self.flags & (SYN | ACK | RST | FIN) == SYN

    @property
    def is_synack(self) -> bool:
        return self.flags & (SYN | ACK | RST | FIN) == (SYN | ACK)

    @property
    def has_no_flags(self) -> bool:
        """True for the "no TCP flag" insertion packet of Table 1/3."""
        return self.flags == 0

    # -- sequence space ---------------------------------------------------
    @property
    def seg_len(self) -> int:
        """Sequence-space length: payload bytes plus one for SYN and FIN."""
        length = len(self.payload)
        if self.is_syn:
            length += 1
        if self.is_fin:
            length += 1
        return length

    @property
    def end_seq(self) -> int:
        return (self.seq + self.seg_len) & 0xFFFFFFFF

    def find_option(self, kind: int) -> Optional[TCPOption]:
        for option in self.options:
            if option.kind == kind:
                return option
        return None

    def copy(self, **changes: object) -> "TCPSegment":
        """Return a field-for-field copy with ``changes`` applied.

        Hand-rolled instead of :func:`dataclasses.replace`: copies happen
        once per tap per hop per packet, and ``replace`` re-enters
        ``__init__`` through a kwargs dict — several times slower than
        direct slot assignment.
        """
        free = _SEGMENT_FREE
        if free:
            duplicate = free.pop()
            _POOL_REUSE[0] += 1
        else:
            duplicate = TCPSegment.__new__(TCPSegment)
        duplicate.src_port = self.src_port
        duplicate.dst_port = self.dst_port
        duplicate.seq = self.seq
        duplicate.ack = self.ack
        duplicate.flags = self.flags
        duplicate.window = self.window
        duplicate.payload = self.payload
        duplicate.options = list(self.options)
        duplicate.urgent = self.urgent
        duplicate.checksum_override = self.checksum_override
        duplicate.data_offset_override = self.data_offset_override
        for name, value in changes.items():
            setattr(duplicate, name, value)
        return duplicate

    def summary(self) -> str:
        text = (
            f"{self.src_port}>{self.dst_port} [{flags_to_str(self.flags)}] "
            f"seq={self.seq} ack={self.ack} len={len(self.payload)}"
        )
        if self.checksum_override is not None:
            text += " badcsum"
        if self.options:
            kinds = ",".join(str(option.kind) for option in self.options)
            text += f" opts[{kinds}]"
        return text


@dataclass(slots=True)
class UDPDatagram:
    """A UDP datagram (used by the DNS-over-UDP path the GFW poisons)."""

    src_port: int
    dst_port: int
    payload: bytes = b""
    checksum_override: Optional[int] = None

    def summary(self) -> str:
        return f"{self.src_port}>{self.dst_port} UDP len={len(self.payload)}"


@dataclass(slots=True)
class IPPacket:
    """An IPv4 packet wrapping a TCP segment, UDP datagram, or raw bytes.

    Raw ``bytes`` payloads occur only for IP fragments, where the transport
    header may be split across fragments; the reassembler restores the
    transport object.
    """

    src: str
    dst: str
    payload: Union[TCPSegment, UDPDatagram, bytes]
    ttl: int = 64
    identification: int = 0
    dont_fragment: bool = True
    more_fragments: bool = False
    #: Fragment offset in 8-byte units, as on the wire.
    frag_offset: int = 0
    #: When set, serialized with this (typically oversized) total length.
    total_length_override: Optional[int] = None
    #: Free-form annotations (e.g. ``origin="gfw-type2"``); never on the
    #: wire, used only by trace recorders and measurement classification.
    meta: dict = field(default_factory=dict)

    @property
    def protocol(self) -> int:
        if isinstance(self.payload, TCPSegment):
            return PROTO_TCP
        if isinstance(self.payload, UDPDatagram):
            return PROTO_UDP
        return PROTO_TCP  # raw fragments in this simulator carry TCP

    @property
    def is_fragment(self) -> bool:
        return self.more_fragments or self.frag_offset > 0

    @property
    def tcp(self) -> TCPSegment:
        """The TCP payload; raises if the packet does not carry whole TCP."""
        if not isinstance(self.payload, TCPSegment):
            raise TypeError("packet does not carry a parsed TCP segment")
        return self.payload

    @property
    def udp(self) -> UDPDatagram:
        if not isinstance(self.payload, UDPDatagram):
            raise TypeError("packet does not carry a UDP datagram")
        return self.payload

    @property
    def is_tcp(self) -> bool:
        return isinstance(self.payload, TCPSegment)

    @property
    def is_udp(self) -> bool:
        return isinstance(self.payload, UDPDatagram)

    def flow_key(self) -> Tuple[str, int, str, int]:
        """The directional four-tuple ``(src, sport, dst, dport)``."""
        if isinstance(self.payload, TCPSegment):
            return (self.src, self.payload.src_port, self.dst, self.payload.dst_port)
        if isinstance(self.payload, UDPDatagram):
            return (self.src, self.payload.src_port, self.dst, self.payload.dst_port)
        raise TypeError("raw fragments have no flow key until reassembled")

    def connection_key(self) -> Tuple[Tuple[str, int], Tuple[str, int]]:
        """A direction-agnostic connection key (sorted endpoint pairs)."""
        src, sport, dst, dport = self.flow_key()
        ends = sorted([(src, sport), (dst, dport)])
        return (ends[0], ends[1])

    def copy(self, **changes: object) -> "IPPacket":
        """A deep-enough copy: the TCP payload and meta dict are fresh
        (UDP/raw payloads are shared, matching the historical semantics).
        Hand-rolled for the same hot-path reason as
        :meth:`TCPSegment.copy`."""
        free = _PACKET_FREE
        if free:
            duplicate = free.pop()
            _POOL_REUSE[0] += 1
        else:
            duplicate = IPPacket.__new__(IPPacket)
        duplicate.src = self.src
        duplicate.dst = self.dst
        payload = self.payload
        if isinstance(payload, TCPSegment):
            payload = payload.copy()
        duplicate.payload = payload
        duplicate.ttl = self.ttl
        duplicate.identification = self.identification
        duplicate.dont_fragment = self.dont_fragment
        duplicate.more_fragments = self.more_fragments
        duplicate.frag_offset = self.frag_offset
        duplicate.total_length_override = self.total_length_override
        duplicate.meta = dict(self.meta)
        for name, value in changes.items():
            setattr(duplicate, name, value)
        return duplicate

    def summary(self) -> str:
        if isinstance(self.payload, (TCPSegment, UDPDatagram)):
            body = self.payload.summary()
        else:
            body = f"frag off={self.frag_offset * 8} len={len(self.payload)}"
        extras = "" if not self.is_fragment else " MF" if self.more_fragments else " LF"
        return f"{self.src}->{self.dst} ttl={self.ttl}{extras} {body}"


# -- packet free-list pool ----------------------------------------------------
#
# Packets and segments are the simulator's dominant allocation: a censored
# HTTP trial creates on the order of 200 of them (stack transmissions,
# per-hop defensive copies, forged reset volleys).  Instead of paying
# allocator + GC tracking cost for each, finished trials *recycle* their
# dead packets into module free lists, and the two allocation fast paths
# (:meth:`TCPSegment.copy` / :meth:`IPPacket.copy` and the shell
# constructors below) pop a shell instead of calling ``__new__``.
#
# Safety contract: a recycled object must be truly dead — recycling a
# packet that any stack, flow buffer, or trace recorder still references
# corrupts that holder when the shell is reissued.  The only call sites
# are therefore trial-teardown harvests of buffers with known lifetimes
# (e.g. the measurement sniffer's forged-reset list, once the trial
# record has been finalized and traces are off).  Every shell consumer
# assigns *all* slots before the object escapes, so a reissued shell is
# indistinguishable from a fresh ``__new__`` instance.
#
# ``REPRO_PACKET_POOL=0`` disables recycling (the free lists then stay
# empty and every allocation takes the ``__new__`` path).

#: Per-list cap; beyond it recycled objects are simply dropped to the GC.
_POOL_CAP = 4096

_SEGMENT_FREE: List["TCPSegment"] = []
_PACKET_FREE: List["IPPacket"] = []
#: Shells reissued from the free lists (single-element list so the hot
#: paths bump it without a ``global`` declaration or method call).
_POOL_REUSE = [0]
#: Objects accepted by :func:`recycle_packet` since process start.
_POOL_RECYCLED = [0]

_POOL_RECYCLED_METRIC = get_registry().counter("pool.packets_recycled")


def _pool_enabled() -> bool:
    # Deferred import: repro.core's package __init__ imports this module,
    # so a top-level import of repro.core.env would be circular.
    from repro.core.env import env_flag

    return env_flag("REPRO_PACKET_POOL", True)


def segment_shell() -> "TCPSegment":
    """A blank segment shell: pooled when available, fresh otherwise.

    The caller MUST assign every field before the shell escapes; stale
    slot values from the shell's previous life are otherwise visible.
    """
    free = _SEGMENT_FREE
    if free:
        _POOL_REUSE[0] += 1
        return free.pop()
    return TCPSegment.__new__(TCPSegment)


def packet_shell() -> "IPPacket":
    """A blank IP packet shell; same all-fields contract as
    :func:`segment_shell`."""
    free = _PACKET_FREE
    if free:
        _POOL_REUSE[0] += 1
        return free.pop()
    return IPPacket.__new__(IPPacket)


def recycle_packet(packet: "IPPacket") -> None:
    """Return a dead packet (and its TCP segment, if any) to the pool.

    The caller asserts nothing else references ``packet`` or its
    payload.  Heavy references (payload bytes, meta dict) are dropped so
    pooled shells pin no trial state.  No-op when ``REPRO_PACKET_POOL``
    is off or the free lists are full.
    """
    if not _pool_enabled():
        return
    recycled = 0
    segment = packet.payload
    if type(segment) is TCPSegment and len(_SEGMENT_FREE) < _POOL_CAP:
        segment.payload = b""
        segment.options = []
        _SEGMENT_FREE.append(segment)
        recycled += 1
    if len(_PACKET_FREE) < _POOL_CAP:
        packet.payload = b""
        packet.meta = None  # type: ignore[assignment]  # reassigned on reissue
        _PACKET_FREE.append(packet)
        recycled += 1
    if recycled:
        _POOL_RECYCLED[0] += recycled
        _POOL_RECYCLED_METRIC.inc(recycled)


def recycle_packets(packets: Iterable["IPPacket"]) -> None:
    """Recycle a batch of dead packets (trial-teardown harvest)."""
    if not _pool_enabled():
        return
    for packet in packets:
        recycle_packet(packet)


def packet_pool_stats() -> dict:
    """Pool diagnostics: reuse/recycle totals and current free-list sizes."""
    return {
        "reused": _POOL_REUSE[0],
        "recycled": _POOL_RECYCLED[0],
        "free_segments": len(_SEGMENT_FREE),
        "free_packets": len(_PACKET_FREE),
    }


def clear_packet_pool() -> None:
    """Drop pooled shells and zero the stats (tests)."""
    _SEGMENT_FREE.clear()
    _PACKET_FREE.clear()
    _POOL_REUSE[0] = 0
    _POOL_RECYCLED[0] = 0


def tcp_packet(
    src: str,
    dst: str,
    src_port: int,
    dst_port: int,
    flags: int = 0,
    seq: int = 0,
    ack: int = 0,
    payload: bytes = b"",
    ttl: int = 64,
    window: int = 65535,
    options: Optional[List[TCPOption]] = None,
    checksum_override: Optional[int] = None,
) -> IPPacket:
    """Convenience constructor for a whole TCP/IPv4 packet."""
    segment = TCPSegment(
        src_port=src_port,
        dst_port=dst_port,
        seq=seq,
        ack=ack,
        flags=flags,
        window=window,
        payload=payload,
        options=list(options) if options else [],
        checksum_override=checksum_override,
    )
    return IPPacket(src=src, dst=dst, payload=segment, ttl=ttl)


def udp_packet(
    src: str,
    dst: str,
    src_port: int,
    dst_port: int,
    payload: bytes = b"",
    ttl: int = 64,
) -> IPPacket:
    """Convenience constructor for a whole UDP/IPv4 packet."""
    datagram = UDPDatagram(src_port=src_port, dst_port=dst_port, payload=payload)
    return IPPacket(src=src, dst=dst, payload=datagram, ttl=ttl)


def seq_lt(a: int, b: int) -> bool:
    """Modulo-2**32 sequence comparison: True when ``a`` precedes ``b``.

    >>> seq_lt(1, 2)
    True
    >>> seq_lt(0xFFFFFFF0, 5)  # wrapped
    True
    """
    return ((a - b) & 0xFFFFFFFF) > 0x7FFFFFFF


def seq_lte(a: int, b: int) -> bool:
    return a == b or seq_lt(a, b)


def seq_add(a: int, delta: int) -> int:
    return (a + delta) & 0xFFFFFFFF


def seq_sub(a: int, b: int) -> int:
    """Signed distance from ``b`` to ``a`` in sequence space."""
    diff = (a - b) & 0xFFFFFFFF
    if diff > 0x7FFFFFFF:
        diff -= 0x100000000
    return diff


def in_window(seq: int, window_start: int, window_size: int) -> bool:
    """RFC 793 window membership with wraparound.

    >>> in_window(105, 100, 10)
    True
    >>> in_window(115, 100, 10)
    False
    """
    offset = (seq - window_start) & 0xFFFFFFFF
    return offset < window_size


# Needed by wire.py for raw fragment payload sizing.
def transport_length(packet: IPPacket) -> int:
    """Length in bytes of the serialized transport payload.

    Computed arithmetically — serializing (and checksumming) the segment
    just to measure it would dominate the fragmenter's cost.
    """
    from repro.netstack.wire import UDP_HEADER_LEN, tcp_wire_length

    if isinstance(packet.payload, TCPSegment):
        return tcp_wire_length(packet.payload)
    if isinstance(packet.payload, UDPDatagram):
        return UDP_HEADER_LEN + len(packet.payload.payload)
    return len(packet.payload)
