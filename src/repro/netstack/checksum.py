"""RFC 1071 Internet checksum and the TCP/UDP pseudo-header variant.

The checksum is central to this reproduction: several insertion packets in
the paper (Table 1 "Bad checksum" rows, Table 3 row 3) rely on the fact
that end hosts *validate* the TCP checksum while the GFW does not.  We
therefore compute and validate real 16-bit ones-complement checksums over
real wire images rather than modelling "valid/invalid" as a boolean.

The hot path is vectorized: instead of a Python-level loop over
``struct.iter_unpack`` (one iteration per 16-bit word — ~730 for a full
MSS segment), the whole byte image is read as one big-endian integer and
reduced modulo ``0xFFFF`` in C.  The big-endian word sum of ``data``
equals ``int.from_bytes(data, "big")`` modulo ``2**16 - 1`` (because
``2**16 ≡ 1 (mod 2**16 - 1)``, every 16-bit limb contributes its face
value), and folding a ones-complement sum is exactly reduction mod
``0xFFFF`` with nonzero sums mapping to ``0xFFFF`` instead of ``0``.
Outputs are bit-identical to the loop version.
"""

from __future__ import annotations

import struct

_PSEUDO_HEADER = struct.Struct("!IIBBH")


def ones_complement_sum(data: bytes) -> int:
    """A folded-equivalent sum of ``data``'s big-endian 16-bit words.

    The input is zero-padded to even length.  The return value is the
    word sum already reduced mod ``0xFFFF`` (nonzero sums that reduce to
    zero are returned as ``0xFFFF``, matching ones-complement folding) —
    interchangeable with the raw word sum under further addition and
    :func:`fold_carries`.  Keeping an additive sum lets serializers add
    header-field words arithmetically without building intermediate byte
    strings (the wire codec's pack-once fast path).
    """
    if len(data) % 2:
        data += b"\x00"
    value = int.from_bytes(data, "big")
    total = value % 0xFFFF
    if total == 0 and value:
        return 0xFFFF
    return total


def fold_carries(total: int) -> int:
    """Fold a ones-complement sum's carries back until it fits 16 bits."""
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return total


def internet_checksum(data: bytes) -> int:
    """Compute the RFC 1071 ones-complement checksum of ``data``.

    The input is padded with a zero byte if its length is odd.  The result
    is the 16-bit ones-complement of the ones-complement sum, as used in
    the IPv4 header checksum and (together with a pseudo header) in the
    TCP and UDP checksums.

    >>> internet_checksum(b"\\x00\\x01\\xf2\\x03\\xf4\\xf5\\xf6\\xf7")
    8717
    """
    return (~fold_carries(ones_complement_sum(data))) & 0xFFFF


def pseudo_header(src_ip: int, dst_ip: int, protocol: int, length: int) -> bytes:
    """Build the IPv4 pseudo header used by the TCP and UDP checksums."""
    return _PSEUDO_HEADER.pack(src_ip, dst_ip, 0, protocol, length)


def pseudo_header_sum(src_ip: int, dst_ip: int, protocol: int, length: int) -> int:
    """The pseudo header's word sum, without serializing it.

    Identical to ``ones_complement_sum(pseudo_header(...))`` — the zero
    byte preceding the protocol makes its word just ``protocol``.
    """
    return (
        (src_ip >> 16) + (src_ip & 0xFFFF)
        + (dst_ip >> 16) + (dst_ip & 0xFFFF)
        + protocol + length
    )


def pseudo_header_checksum(
    src_ip: int, dst_ip: int, protocol: int, segment: bytes
) -> int:
    """Checksum a transport segment together with its IPv4 pseudo header.

    ``segment`` must already contain a zeroed checksum field; callers patch
    the result into the wire image afterwards.
    """
    total = pseudo_header_sum(
        src_ip, dst_ip, protocol, len(segment)
    ) + ones_complement_sum(segment)
    return (~fold_carries(total)) & 0xFFFF


def verify_checksum(
    src_ip: int, dst_ip: int, protocol: int, segment: bytes
) -> bool:
    """Return True if the transport ``segment`` carries a valid checksum.

    Summing the segment *including* its checksum field together with the
    pseudo header yields zero for a correct checksum.
    """
    return pseudo_header_checksum(src_ip, dst_ip, protocol, segment) == 0
