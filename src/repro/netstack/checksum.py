"""RFC 1071 Internet checksum and the TCP/UDP pseudo-header variant.

The checksum is central to this reproduction: several insertion packets in
the paper (Table 1 "Bad checksum" rows, Table 3 row 3) rely on the fact
that end hosts *validate* the TCP checksum while the GFW does not.  We
therefore compute and validate real 16-bit ones-complement checksums over
real wire images rather than modelling "valid/invalid" as a boolean.
"""

from __future__ import annotations

import struct


def internet_checksum(data: bytes) -> int:
    """Compute the RFC 1071 ones-complement checksum of ``data``.

    The input is padded with a zero byte if its length is odd.  The result
    is the 16-bit ones-complement of the ones-complement sum, as used in
    the IPv4 header checksum and (together with a pseudo header) in the
    TCP and UDP checksums.

    >>> internet_checksum(b"\\x00\\x01\\xf2\\x03\\xf4\\xf5\\xf6\\xf7")
    8717
    """
    if len(data) % 2:
        data += b"\x00"
    total = 0
    for (word,) in struct.iter_unpack("!H", data):
        total += word
    # Fold the carries back in until the sum fits in 16 bits.
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


def pseudo_header(src_ip: int, dst_ip: int, protocol: int, length: int) -> bytes:
    """Build the IPv4 pseudo header used by the TCP and UDP checksums."""
    return struct.pack("!IIBBH", src_ip, dst_ip, 0, protocol, length)


def pseudo_header_checksum(
    src_ip: int, dst_ip: int, protocol: int, segment: bytes
) -> int:
    """Checksum a transport segment together with its IPv4 pseudo header.

    ``segment`` must already contain a zeroed checksum field; callers patch
    the result into the wire image afterwards.
    """
    header = pseudo_header(src_ip, dst_ip, protocol, len(segment))
    return internet_checksum(header + segment)


def verify_checksum(
    src_ip: int, dst_ip: int, protocol: int, segment: bytes
) -> bool:
    """Return True if the transport ``segment`` carries a valid checksum.

    Summing the segment *including* its checksum field together with the
    pseudo header yields zero for a correct checksum.
    """
    header = pseudo_header(src_ip, dst_ip, protocol, len(segment))
    return internet_checksum(header + segment) == 0
