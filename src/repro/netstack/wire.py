"""Byte-level serialization and parsing for IPv4, TCP, and UDP.

The simulator mostly moves packet *objects*, but wire images matter in
three places, all of which the paper exploits:

1. Checksums — an insertion packet's "bad checksum" must be a real wrong
   16-bit value so that endpoint validation (and the GFW's lack of it) are
   exercised for real;
2. IP fragmentation — fragments split the serialized transport segment at
   arbitrary 8-byte boundaries, so the bytes must exist;
3. Header-length corruption — a TCP data offset below 5 words must survive
   a serialize/parse round trip as an observable anomaly.

Serialization is a hot path (every hop traversal in a paper-scale sweep
may reserialize), so headers are packed exactly once: the checksum is
computed arithmetically from the header fields plus the body's word sum
(ones-complement addition is order-independent) and packed directly into
place, rather than packing a zero-checksum image and splicing the
checksum in afterwards.
"""

from __future__ import annotations

import struct
from functools import lru_cache
from typing import Optional, Tuple, Union

from repro.netstack.checksum import (
    fold_carries,
    internet_checksum,
    ones_complement_sum,
    pseudo_header_sum,
)
from repro.netstack.options import parse_options, serialize_options
from repro.netstack.packet import (
    IPPacket,
    PROTO_TCP,
    PROTO_UDP,
    TCPSegment,
    UDPDatagram,
    ip_to_int,
    int_to_ip,
)

IP_HEADER_LEN = 20
TCP_MIN_HEADER_LEN = 20
UDP_HEADER_LEN = 8

_TCP_HEADER = struct.Struct("!HHIIBBHHH")
_UDP_HEADER = struct.Struct("!HHHH")
_IP_HEADER = struct.Struct("!BBHHHBBHII")
_CHECKSUM_FIELD = struct.Struct("!H")


@lru_cache(maxsize=4096)
def _ip_word_sum_raw(address: str) -> int:
    """``ip_to_int`` with caching.

    Scenario topologies reuse a small set of addresses millions of times
    across a sweep; caching skips the repeated string parse.
    """
    return ip_to_int(address)


@lru_cache(maxsize=2048)
def _body_word_sum(body: bytes) -> int:
    """Ones-complement word sum of a segment body, pre-packed per blob.

    A sweep serializes the *same* byte bodies over and over — every trial
    of a cell sends the identical HTTP request, and fragmentation
    strategies re-split it per trial — so the O(n) word fold runs once
    per distinct blob.  Keyed on the bytes object itself: Python caches a
    bytes object's hash in-object and segment copies share payload
    references, so repeat lookups cost one cached-hash dict probe.
    """
    return ones_complement_sum(body)


def serialize_tcp(segment: TCPSegment, src: str, dst: str) -> bytes:
    """Serialize a TCP segment, computing (or overriding) its checksum.

    ``src``/``dst`` are needed for the pseudo header.  When
    ``checksum_override`` is set, that value is emitted verbatim — this is
    how "bad checksum" insertion packets are made.
    """
    options_blob = serialize_options(segment.options)
    data_offset_words = (TCP_MIN_HEADER_LEN + len(options_blob)) // 4
    emitted_offset = (
        segment.data_offset_override
        if segment.data_offset_override is not None
        else data_offset_words
    )
    offset_byte = (emitted_offset & 0xF) << 4
    flags = segment.flags & 0x3F
    seq = segment.seq & 0xFFFFFFFF
    ack = segment.ack & 0xFFFFFFFF
    window = segment.window & 0xFFFF
    urgent = segment.urgent & 0xFFFF
    if segment.checksum_override is not None:
        checksum = segment.checksum_override & 0xFFFF
    else:
        body = options_blob + segment.payload
        total = (
            segment.src_port + segment.dst_port
            + (seq >> 16) + (seq & 0xFFFF)
            + (ack >> 16) + (ack & 0xFFFF)
            + ((offset_byte << 8) | flags)
            + window + urgent
            + pseudo_header_sum(
                _ip_word_sum_raw(src), _ip_word_sum_raw(dst),
                PROTO_TCP, TCP_MIN_HEADER_LEN + len(body),
            )
            + _body_word_sum(body)
        )
        checksum = (~fold_carries(total)) & 0xFFFF
    header = _TCP_HEADER.pack(
        segment.src_port,
        segment.dst_port,
        seq,
        ack,
        offset_byte,
        flags,
        window,
        checksum,
        urgent,
    )
    return header + options_blob + segment.payload


def parse_tcp(blob: bytes) -> TCPSegment:
    """Parse wire bytes back into a :class:`TCPSegment`.

    The parsed segment keeps the on-wire checksum in ``checksum_override``;
    callers compare against a recomputation to validate.  A data offset
    below 5 words is preserved in ``data_offset_override``.
    """
    if len(blob) < TCP_MIN_HEADER_LEN:
        raise ValueError("truncated TCP header")
    (
        src_port,
        dst_port,
        seq,
        ack,
        offset_byte,
        flags,
        window,
        checksum,
        urgent,
    ) = _TCP_HEADER.unpack(blob[:TCP_MIN_HEADER_LEN])
    data_offset = (offset_byte >> 4) & 0xF
    header_len = data_offset * 4
    anomalous_offset: Optional[int] = None
    if header_len < TCP_MIN_HEADER_LEN or header_len > len(blob):
        # Illegal header length: keep the raw value, treat all bytes past
        # the fixed header as payload (what a naive DPI engine would do).
        anomalous_offset = data_offset
        options = []
        payload = blob[TCP_MIN_HEADER_LEN:]
    else:
        options = parse_options(blob[TCP_MIN_HEADER_LEN:header_len])
        payload = blob[header_len:]
    return TCPSegment(
        src_port=src_port,
        dst_port=dst_port,
        seq=seq,
        ack=ack,
        flags=flags,
        window=window,
        payload=payload,
        options=options,
        urgent=urgent,
        checksum_override=checksum,
        data_offset_override=anomalous_offset,
    )


def tcp_checksum_valid(segment: TCPSegment, src: str, dst: str) -> bool:
    """True when the segment would carry a correct checksum on the wire."""
    if segment.checksum_override is None:
        return True
    correct = segment.copy(checksum_override=None)
    wire = serialize_tcp(correct, src, dst)
    actual = _CHECKSUM_FIELD.unpack(wire[16:18])[0]
    return actual == (segment.checksum_override & 0xFFFF)


def serialize_udp(datagram: UDPDatagram, src: str, dst: str) -> bytes:
    length = UDP_HEADER_LEN + len(datagram.payload)
    if datagram.checksum_override is not None:
        checksum = datagram.checksum_override & 0xFFFF
    else:
        total = (
            datagram.src_port + datagram.dst_port + length
            + pseudo_header_sum(
                _ip_word_sum_raw(src), _ip_word_sum_raw(dst), PROTO_UDP, length,
            )
            + _body_word_sum(datagram.payload)
        )
        checksum = ((~fold_carries(total)) & 0xFFFF) or 0xFFFF
    header = _UDP_HEADER.pack(
        datagram.src_port, datagram.dst_port, length, checksum
    )
    return header + datagram.payload


def parse_udp(blob: bytes) -> UDPDatagram:
    if len(blob) < UDP_HEADER_LEN:
        raise ValueError("truncated UDP header")
    src_port, dst_port, length, checksum = _UDP_HEADER.unpack(blob[:8])
    return UDPDatagram(
        src_port=src_port,
        dst_port=dst_port,
        payload=blob[8 : max(8, length)],
        checksum_override=checksum,
    )


def serialize_ip(packet: IPPacket) -> bytes:
    """Serialize a whole IPv4 packet including its transport payload."""
    body = transport_bytes(packet)
    actual_total = IP_HEADER_LEN + len(body)
    emitted_total = (
        packet.total_length_override
        if packet.total_length_override is not None
        else actual_total
    )
    flags_and_offset = packet.frag_offset & 0x1FFF
    if packet.dont_fragment:
        flags_and_offset |= 0x4000
    if packet.more_fragments:
        flags_and_offset |= 0x2000
    version_word = ((4 << 4) | 5) << 8  # version/IHL byte, zero TOS
    ttl_proto_word = ((packet.ttl & 0xFF) << 8) | packet.protocol
    src_int = _ip_word_sum_raw(packet.src)
    dst_int = _ip_word_sum_raw(packet.dst)
    total = (
        version_word
        + (emitted_total & 0xFFFF)
        + (packet.identification & 0xFFFF)
        + flags_and_offset
        + ttl_proto_word
        + (src_int >> 16) + (src_int & 0xFFFF)
        + (dst_int >> 16) + (dst_int & 0xFFFF)
    )
    checksum = (~fold_carries(total)) & 0xFFFF
    header = _IP_HEADER.pack(
        (4 << 4) | 5,
        0,
        emitted_total & 0xFFFF,
        packet.identification & 0xFFFF,
        flags_and_offset,
        packet.ttl & 0xFF,
        packet.protocol,
        checksum,
        src_int,
        dst_int,
    )
    return header + body


def transport_bytes(packet: IPPacket) -> bytes:
    """Serialize just the transport payload of ``packet``."""
    if isinstance(packet.payload, TCPSegment):
        return serialize_tcp(packet.payload, packet.src, packet.dst)
    if isinstance(packet.payload, UDPDatagram):
        return serialize_udp(packet.payload, packet.src, packet.dst)
    return bytes(packet.payload)


def tcp_wire_length(segment: TCPSegment) -> int:
    """The serialized length of ``segment`` without serializing it."""
    options_len = len(serialize_options(segment.options)) if segment.options else 0
    return TCP_MIN_HEADER_LEN + options_len + len(segment.payload)


def parse_ip(blob: bytes) -> IPPacket:
    """Parse wire bytes into an :class:`IPPacket`.

    Fragments (offset > 0 or MF set) keep raw transport bytes as payload;
    a :class:`~repro.netstack.fragment.FragmentReassembler` restores the
    transport object once all pieces arrive.
    """
    if len(blob) < IP_HEADER_LEN:
        raise ValueError("truncated IP header")
    (
        version_ihl,
        _tos,
        total_length,
        identification,
        flags_and_offset,
        ttl,
        protocol,
        _checksum,
        src_int,
        dst_int,
    ) = _IP_HEADER.unpack(blob[:IP_HEADER_LEN])
    ihl = (version_ihl & 0xF) * 4
    body = blob[ihl:]
    frag_offset = flags_and_offset & 0x1FFF
    more_fragments = bool(flags_and_offset & 0x2000)
    dont_fragment = bool(flags_and_offset & 0x4000)
    payload: Union[TCPSegment, UDPDatagram, bytes]
    if frag_offset > 0 or more_fragments:
        payload = body
    elif protocol == PROTO_TCP:
        payload = parse_tcp(body)
    elif protocol == PROTO_UDP:
        payload = parse_udp(body)
    else:
        payload = body
    packet = IPPacket(
        src=int_to_ip(src_int),
        dst=int_to_ip(dst_int),
        payload=payload,
        ttl=ttl,
        identification=identification,
        dont_fragment=dont_fragment,
        more_fragments=more_fragments,
        frag_offset=frag_offset,
    )
    if total_length != ihl + len(body):
        packet.total_length_override = total_length
    return packet


def roundtrip(packet: IPPacket) -> IPPacket:
    """Serialize then reparse a packet (useful in tests)."""
    return parse_ip(serialize_ip(packet))


def wire_lengths(packet: IPPacket) -> Tuple[int, int]:
    """Return ``(emitted_total_length, actual_total_length)`` for a packet.

    A mismatch is the Table 3 "IP total length > actual length" anomaly.
    Lengths are computed arithmetically — every endpoint checks them on
    every delivered packet, and serializing (which also checksums the
    payload) just to take ``len()`` used to dominate the receive path.
    """
    from repro.netstack.packet import transport_length

    actual = IP_HEADER_LEN + transport_length(packet)
    emitted = (
        packet.total_length_override
        if packet.total_length_override is not None
        else actual
    )
    return emitted, actual
