"""Anomaly flight recorder: bounded-overhead post-mortems.

The fleet engine (PR 7) can *count* eviction false negatives and
blacklist false positives, but counting doesn't explain — and re-running
a million-flow fleet under ``diagnose`` to explain one flow is not an
option.  The flight recorder closes that gap the way an aircraft FDR
does: while everything is normal it keeps nothing (the EventBus ring is
the in-flight buffer), and when an anomaly fires it *dumps* — the last
``ring`` relevant events, packet summaries, and TCB snapshots — as one
plain-dict record.  Overhead is O(ring) per anomaly, zero per normal
flow.

Recognized anomalies (the callers own the detection logic):

- ``eviction_false_negative`` — a sensitive fleet flow succeeded with
  zero detections after its shared-table TCB was evicted live;
- ``blacklist_false_positive`` — a benign fleet flow reset by shared
  blacklist collateral;
- ``oracle_drift`` — a conformance cell whose verdict left the
  paper-derived oracle;
- ``broken`` — a conformance cell that produced error outcomes.

Dumps are picklable and cross the ``run_sharded`` process boundary
piggybacked on the telemetry delta (:meth:`FlightRecorder.drain` in the
worker, :meth:`FlightRecorder.adopt` in the parent), exactly like
registry diffs and span trees.  ``REPRO_FLIGHT=1`` enables recording
(and force-enables the EventBus so the ring has content);
``REPRO_FLIGHT_RING`` sizes the per-dump event window (default 128).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional

from repro.telemetry.metrics import get_registry

__all__ = [
    "FlightRecorder",
    "enable_flight",
    "event_payload",
    "get_flight",
    "packet_summary",
    "reset_flight",
    "tcb_summary",
]


def _plain(value: Any) -> Any:
    """JSON/pickle-safe projection of an arbitrary field value."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_plain(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _plain(v) for k, v in value.items()}
    return repr(value)


def event_payload(event: Any) -> Dict[str, Any]:
    """A :class:`~repro.telemetry.events.TelemetryEvent` as a dict."""
    return {
        "seq": event.seq,
        "time": event.time,
        "component": event.component,
        "kind": event.kind,
        "fields": {str(k): _plain(v) for k, v in event.fields.items()},
    }


def packet_summary(packet: Any) -> Dict[str, Any]:
    """A compact, dump-safe view of one simulated packet."""
    summary: Dict[str, Any] = {
        "src": _plain(getattr(packet, "src", None)),
        "dst": _plain(getattr(packet, "dst", None)),
        "meta": _plain(dict(getattr(packet, "meta", {}) or {})),
    }
    if getattr(packet, "is_tcp", False):
        tcp = packet.tcp
        summary.update(
            flags=_plain(getattr(tcp, "flags", None)),
            seq=getattr(tcp, "seq", None),
            ack=getattr(tcp, "ack", None),
            payload_len=len(getattr(tcp, "payload", b"") or b""),
        )
    return summary


def tcb_summary(flow: Any) -> Dict[str, Any]:
    """A compact view of one GFW flow-table entry (TCB)."""
    return {
        "state": _plain(getattr(flow, "state", None)),
        "believed_client": _plain(getattr(flow, "believed_client", None)),
        "believed_server": _plain(getattr(flow, "believed_server", None)),
        "client_next_seq": getattr(flow, "client_next_seq", None),
        "fin_seen": getattr(flow, "fin_seen", None),
        "punished": getattr(flow, "punished", None),
        "created_at": getattr(flow, "created_at", None),
    }


class FlightRecorder:
    """Process-local dump collector (one per process, like the bus)."""

    def __init__(
        self, enabled: Optional[bool] = None, ring: Optional[int] = None
    ):
        if enabled is None or ring is None:
            # Lazy for the same bootstrap reason as SpanTracer/EventBus:
            # repro.core.env import would re-enter the engine imports.
            from repro.core.env import env_flag, env_int

            if enabled is None:
                enabled = env_flag("REPRO_FLIGHT", False)
            if ring is None:
                ring = env_int("REPRO_FLIGHT_RING", 128, minimum=1)
        self.enabled = bool(enabled)
        self.ring = int(ring)
        self.dumps: List[Dict[str, Any]] = []
        self._metric_dumps = get_registry().counter("flight.dumps")

    def record(
        self,
        anomaly: str,
        *,
        time: float = 0.0,
        context: Optional[Dict[str, Any]] = None,
        events: Iterable[Any] = (),
        snapshots: Optional[Dict[str, Any]] = None,
    ) -> Optional[Dict[str, Any]]:
        """Dump one anomaly; returns the dump dict (None when off)."""
        if not self.enabled:
            return None
        window = list(events)[-self.ring:]
        dump = {
            "anomaly": anomaly,
            "time": time,
            "context": _plain(dict(context or {})),
            "events": [event_payload(e) for e in window],
            "snapshots": _plain(dict(snapshots or {})),
        }
        self.dumps.append(dump)
        self._metric_dumps.inc()
        return dump

    # -- worker-merge protocol ------------------------------------------
    def drain(self) -> List[Dict[str, Any]]:
        dumps, self.dumps = self.dumps, []
        return dumps

    def adopt(self, dumps: Optional[Iterable[Dict[str, Any]]]) -> None:
        """Fold worker-drained dumps in (regardless of ``enabled``)."""
        if dumps:
            self.dumps.extend(dumps)

    def clear(self) -> None:
        self.dumps = []


# -- process-local singleton --------------------------------------------

_FLIGHT: Optional[FlightRecorder] = None


def get_flight() -> FlightRecorder:
    global _FLIGHT
    if _FLIGHT is None:
        _FLIGHT = FlightRecorder()
        if _FLIGHT.enabled:
            # The ring is only useful if events are flowing.
            from repro.telemetry.events import enable_bus

            enable_bus(True)
    return _FLIGHT


def reset_flight() -> FlightRecorder:
    """Fresh recorder honouring the current environment."""
    global _FLIGHT
    _FLIGHT = None
    return get_flight()


def enable_flight(enabled: bool = True) -> FlightRecorder:
    recorder = get_flight()
    recorder.enabled = bool(enabled)
    if enabled:
        from repro.telemetry.events import enable_bus

        enable_bus(True)
    return recorder
