"""Per-trial diagnosis: re-run one cell with full telemetry and explain it.

:func:`diagnose_trial` re-simulates a single experiment cell with the
packet trace recorder *and* the event bus turned on, then renders the
merged timeline — packet observations from the trace recorder
interleaved with the GFW's TCB state transitions, strategy decisions,
and INTANG's bookkeeping, all in one ``(time, seq)`` order (the bus-wide
sequence counter makes the interleaving exact, not a tie-break
heuristic).

The point is attribution.  A Table 1/4 cell says *what* happened
(Success / Failure 1 / Failure 2); the diagnosis timeline says *which
state transition made it happen* — e.g. a teardown RST deleting the TCB,
a junk packet being adopted on RESYNC exit (the §5.1 desynchronization),
or a SYN/ACK-created TCB with the endpoints reversed (NB1 → §5.2).

Exposed on the command line as ``repro telemetry diagnose``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.telemetry.events import TelemetryEvent, get_bus
from repro.telemetry.metrics import get_registry

__all__ = [
    "FleetFlowDiagnosis",
    "TrialDiagnosis",
    "diagnose_fleet_flow",
    "diagnose_trial",
]


@dataclass
class TrialDiagnosis:
    """Everything :func:`diagnose_trial` learned about one trial."""

    #: The :class:`~repro.experiments.runner.TrialRecord` of the re-run.
    record: Any
    #: Every telemetry event the trial published, in publication order.
    events: List[TelemetryEvent] = field(default_factory=list)
    #: The metrics-registry delta the trial produced.
    metrics: Dict = field(default_factory=dict)

    # -- views -----------------------------------------------------------
    def timeline(self) -> str:
        """The merged packet-ladder + state-transition timeline."""
        ordered = sorted(self.events, key=lambda e: (e.time, e.seq))
        return "\n".join(event.format() for event in ordered)

    def transitions(self) -> List[TelemetryEvent]:
        """Only the GFW's TCB lifecycle events, in order."""
        return [e for e in self.events if e.component == "gfw"]

    def explanation(self) -> str:
        """One paragraph naming the transition responsible for the outcome."""
        outcome = self.record.outcome.value
        gfw = self.transitions()

        def last(kind: str) -> Optional[TelemetryEvent]:
            matches = [e for e in gfw if e.kind == kind]
            return matches[-1] if matches else None

        if outcome == "failure2":
            match = last("dpi_match")
            rst = last("rst_sent")
            parts = ["Failure 2: the GFW reset the connection."]
            if match is not None:
                parts.append(
                    f"Responsible transition: dpi_match at "
                    f"{match.time * 1000:.3f}ms "
                    f"(rule={match.fields.get('rule')}, "
                    f"detail={match.fields.get('detail')})."
                )
            if rst is not None:
                parts.append(
                    f"Enforcement: rst_sent at {rst.time * 1000:.3f}ms "
                    f"(count={rst.fields.get('count')})."
                )
            if match is None and rst is None:
                parts.append(
                    "No dpi_match on this run's bus — the resets came from "
                    "a middlebox or blacklist state outside this window."
                )
            return " ".join(parts)

        if outcome == "success":
            teardown = last("tcb_teardown")
            resync_exit = last("resync_exit")
            resync_enter = last("resync_enter")
            created = [e for e in gfw if e.kind == "tcb_create"]
            if teardown is not None:
                return (
                    "Success: the censor's TCB was torn down "
                    f"(cause={teardown.fields.get('cause')}) at "
                    f"{teardown.time * 1000:.3f}ms, so later keyword bytes "
                    "were invisible — the TCB-teardown building block."
                )
            if resync_exit is not None:
                return (
                    "Success: the censor left RESYNC by adopting "
                    f"seq={resync_exit.fields.get('adopted_seq')} via "
                    f"{resync_exit.fields.get('via')} at "
                    f"{resync_exit.time * 1000:.3f}ms — if that sequence "
                    "came from an insertion packet, the flow is "
                    "desynchronized (§5.1) and the real request is "
                    "out-of-window."
                )
            if resync_enter is not None:
                return (
                    "Success: the censor entered RESYNC "
                    f"(cause={resync_enter.fields.get('cause')}) at "
                    f"{resync_enter.time * 1000:.3f}ms and never "
                    "resynchronized onto the real stream."
                )
            if any(e.fields.get("on") == "synack" for e in created):
                return (
                    "Success: the only TCB was created from a SYN/ACK "
                    "(NB1), so the censor has client and server reversed "
                    "— TCB reversal (§5.2); the monitored direction never "
                    "carries the keyword."
                )
            if not created:
                return (
                    "Success: no TCB was ever created for this flow — the "
                    "censor never tracked it (miss or eviction)."
                )
            return (
                "Success without an evasion transition on record — the "
                "overload draw likely let the flow escape inspection (the "
                "paper's baseline ~2.8%)."
            )

        # failure1
        detail = self.record.diagnosis or "silence"
        resync_exit = last("resync_exit")
        suffix = ""
        if resync_exit is not None:
            suffix = (
                "  The censor did resynchronize "
                f"(via {resync_exit.fields.get('via')}), so evasion state "
                "was not the blocker."
            )
        return (
            "Failure 1: no response and no GFW resets. Harness "
            f"attribution: {detail}.{suffix}"
        )

    def render(self, metrics_prefix: Optional[str] = None) -> str:
        """The full human-readable report."""
        record = self.record
        header = [
            f"trial   : {record.vantage} -> {record.target} "
            f"strategy={record.strategy_id} keyword={record.keyword}",
            f"outcome : {record.outcome.value}"
            + (f" (drift={record.drift})" if record.drift else ""),
            f"verdict : {self.explanation()}",
        ]
        registry_view = get_registry().__class__()
        registry_view.merge(self.metrics)
        sections = [
            "\n".join(header),
            "-- timeline (packets + GFW state, one sequence) " + "-" * 24,
            self.timeline() or "(no events: is the bus capturing?)",
            "-- metrics delta " + "-" * 55,
            registry_view.format_table(metrics_prefix),
        ]
        return "\n".join(sections)


def diagnose_trial(
    vantage: Any,
    website: Any,
    strategy_id: Optional[str],
    calibration: Any = None,
    seed: int = 0,
    keyword: bool = True,
    gfw_variant: Optional[str] = None,
) -> TrialDiagnosis:
    """Re-run one HTTP cell with full telemetry and explain its outcome.

    Always re-simulates (never replays the historical-result cache —
    a cached outcome has no events to explain) and leaves the cache
    untouched.  The bus is force-enabled for the duration via
    :func:`~repro.telemetry.events.capturing`, so this works regardless
    of ``REPRO_TELEMETRY``.  ``gfw_variant`` forces a named installation
    variant, letting the conformance harness explain a drifted matrix
    cell with the exact censor configuration that produced it.
    """
    from repro.experiments.calibration import DEFAULT_CALIBRATION
    from repro.experiments.runner import _simulate_http_trial
    from repro.telemetry.events import capturing

    if calibration is None:
        calibration = DEFAULT_CALIBRATION
    registry = get_registry()
    before = registry.snapshot()
    with capturing() as bus:
        watermark = bus.next_seq
        record, _scenario = _simulate_http_trial(
            vantage, website, strategy_id, calibration,
            seed=seed, keyword=keyword, trace=True, gfw_variant=gfw_variant,
        )
        events = bus.events(since_seq=watermark - 1)
    return TrialDiagnosis(
        record=record, events=events, metrics=registry.diff(before)
    )


@dataclass
class FleetFlowDiagnosis:
    """One fleet flow's timeline, extracted from a shared-device re-run.

    The fleet engine multiplexes pooled scenarios through one shared
    GFW installation, so the raw bus interleaves every flow in the
    group; ``events`` holds only the records attributed to the target
    flow via its namespaced identity (``GFWDevice.flow_namespace`` on
    censor events, the ``flow`` field on fleet-level ones).
    """

    #: The :class:`~repro.experiments.fleet.FlowSpec` that was diagnosed.
    flow: Any
    #: The whole group's :class:`FleetGroupResult` (context: the load).
    group_result: Any
    #: Only this flow's events, in publication order.
    events: List[TelemetryEvent] = field(default_factory=list)
    #: The group re-run's registry delta.
    metrics: Dict = field(default_factory=dict)

    def timeline(self) -> str:
        ordered = sorted(self.events, key=lambda e: (e.time, e.seq))
        return "\n".join(event.format() for event in ordered)

    def render(self) -> str:
        flow = self.flow
        header = [
            f"flow    : #{flow.index} {flow.vantage.name} -> "
            f"{flow.website.name} label={flow.label}",
            f"group   : {self.group_result.group} "
            f"({self.group_result.flows} flows, "
            f"{self.group_result.flows_evicted} evictions, "
            f"{self.group_result.blacklistings} blacklistings)",
        ]
        return "\n".join(
            [
                "\n".join(header),
                "-- this flow's timeline (shared censor, namespaced) "
                + "-" * 20,
                self.timeline() or "(no events attributed to this flow)",
            ]
        )


def diagnose_fleet_flow(spec: Any, index: int) -> FleetFlowDiagnosis:
    """Re-run one fleet group under full telemetry; explain one flow.

    Unlike :func:`diagnose_trial`, the re-run is *not* isolated — the
    whole group runs with its shared flow table, blacklist, and
    cluster, because the anomalies worth explaining (evictions,
    blacklist collateral) only exist under that load.  The target
    flow's records are then selected by namespaced identity, so pooled
    scenarios with colliding four-tuples cannot alias into the answer.
    """
    from repro.experiments.fleet import flow_spec, run_fleet_group
    from repro.telemetry.events import capturing

    if not 0 <= index < spec.flows:
        raise ValueError(
            f"flow index {index} outside the fleet's range "
            f"[0, {spec.flows})"
        )
    group = index % spec.groups
    registry = get_registry()
    before = registry.snapshot()
    with capturing() as bus:
        watermark = bus.next_seq
        group_result = run_fleet_group(spec, group)
        events = [
            e
            for e in bus.events(since_seq=watermark - 1)
            if e.fields.get("namespace") == index
            or e.fields.get("flow") == index
        ]
    return FleetFlowDiagnosis(
        flow=flow_spec(spec, index),
        group_result=group_result,
        events=events,
        metrics=registry.diff(before),
    )
