"""The structured event bus: one sequence of timestamped records.

Every component with something attributable to say publishes here — the
trace recorder (packet observations), the GFW device (TCB create /
teardown / resync transitions, DPI matches, reset emission), strategy
callbacks (``on_outgoing`` verdicts, insertion-packet injections), and
INTANG (strategy selection, result feedback).  Because all publishers
share one monotonic sequence counter, a diagnosis can interleave packet
events and censor state transitions into a single timeline without any
cross-source tie-breaking (sim-times collide constantly: a GFW device
observes, matches, and injects at the same instant).

The bus is a bounded ring (oldest events fall off; ``dropped`` counts
them) and is **off by default** — per-packet event construction is
measurable on paper-scale sweeps.  It turns on three ways:

- ``REPRO_TELEMETRY=1`` in the environment (read when the bus is built);
- :func:`enable_bus` / the :func:`capturing` context manager (what
  :func:`repro.telemetry.diagnose.diagnose_trial` uses);
- setting ``get_bus().enabled`` directly.

Events published inside pool workers stay in the worker's ring;
diagnosis is a serial, single-process affair by design.
"""

from __future__ import annotations

from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, Iterator, List, Optional

from repro.telemetry.metrics import get_registry

__all__ = [
    "TelemetryEvent",
    "EventBus",
    "get_bus",
    "enable_bus",
    "capturing",
    "reset_bus",
]

#: Default ring capacity; one HTTP trial with full tracing publishes a
#: few hundred events, so this holds several trials of history.
DEFAULT_CAPACITY = 8192


@dataclass
class TelemetryEvent:
    """One structured observation.

    ``seq`` is bus-wide monotonic (the total order of publication);
    ``time`` is sim-time.  ``fields`` carries component-specific
    key/values (packet summaries, state names, causes).
    """

    seq: int
    time: float
    component: str  # "netsim" | "gfw" | "strategy" | "intang" | ...
    kind: str       # "deliver", "resync_enter", "insertion", ...
    fields: Dict[str, Any] = field(default_factory=dict)

    def format(self) -> str:
        detail = " ".join(
            f"{key}={value}" for key, value in self.fields.items()
            if value not in (None, "")
        )
        return (
            f"{self.time * 1000.0:9.3f}ms  {self.component:<9} "
            f"{self.kind:<15} {detail}"
        )


class EventBus:
    """A bounded, sequenced event ring shared by all publishers."""

    def __init__(
        self, capacity: int = DEFAULT_CAPACITY, enabled: Optional[bool] = None
    ) -> None:
        self.capacity = capacity
        if enabled is None:
            # Imported here, not at module top: repro.core.__init__ pulls
            # in publishers that import this module, so a module-level
            # import of repro.core.env would be circular.
            from repro.core.env import env_flag

            enabled = env_flag("REPRO_TELEMETRY", False)
        self.enabled = enabled
        self._ring: Deque[TelemetryEvent] = deque(maxlen=capacity)
        self._next_seq = 0
        #: Events pushed out of the ring by newer ones.  Mirrored into
        #: the registry (``telemetry.events_dropped``), so snapshots and
        #: worker-merged deltas expose the silent loss.
        self.dropped = 0
        self._metric_dropped = get_registry().counter(
            "telemetry.events_dropped"
        )

    def publish(
        self, component: str, kind: str, time: float = 0.0, **fields: Any
    ) -> Optional[TelemetryEvent]:
        """Append an event; returns it, or None when the bus is off."""
        if not self.enabled:
            return None
        if len(self._ring) == self.capacity:
            self.dropped += 1
            self._metric_dropped.inc()
        event = TelemetryEvent(
            seq=self._next_seq, time=time, component=component, kind=kind,
            fields=fields,
        )
        self._next_seq += 1
        self._ring.append(event)
        return event

    # -- reads -----------------------------------------------------------
    def events(
        self,
        component: Optional[str] = None,
        kind: Optional[str] = None,
        since_seq: int = -1,
    ) -> List[TelemetryEvent]:
        """Events still in the ring, filtered and in publication order."""
        return [
            event
            for event in self._ring
            if event.seq > since_seq
            and (component is None or event.component == component)
            and (kind is None or event.kind == kind)
        ]

    @property
    def next_seq(self) -> int:
        """The watermark: events published after now have ``seq >= this``."""
        return self._next_seq

    def __len__(self) -> int:
        return len(self._ring)

    def clear(self) -> None:
        self._ring.clear()
        self.dropped = 0


# ---------------------------------------------------------------------------
_bus: Optional[EventBus] = None


def get_bus() -> EventBus:
    """The process-local bus (built on first use; reads ``REPRO_TELEMETRY``)."""
    global _bus
    if _bus is None:
        _bus = EventBus()
    return _bus


def reset_bus() -> None:
    """Discard the process bus; the next :func:`get_bus` rebuilds it
    (and re-reads the environment knob).  Test isolation hook."""
    global _bus
    _bus = None


def enable_bus(enabled: bool = True) -> EventBus:
    """Force the bus on (or off) regardless of the environment knob."""
    bus = get_bus()
    bus.enabled = enabled
    return bus


@contextmanager
def capturing(clear: bool = False) -> Iterator[EventBus]:
    """Temporarily enable the bus; restores the prior state on exit.

    ``clear=True`` empties the ring first so the captured window holds
    only events from the ``with`` body.
    """
    bus = get_bus()
    prior = bus.enabled
    if clear:
        bus.clear()
    bus.enabled = True
    try:
        yield bus
    finally:
        bus.enabled = prior
