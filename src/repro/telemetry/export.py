"""Exporters: Chrome trace-event JSON, OpenMetrics text, percentiles.

Three standard windows onto the run's observability data:

- :func:`chrome_trace` turns drained span trees into the Chrome
  trace-event format (``chrome://tracing`` / Perfetto's legacy JSON
  importer): one ``"X"`` complete event per span, timestamps in
  microseconds.  Spans with simulation-time bounds are laid out on the
  sim-time axis (that is the causally meaningful one); pure wall-clock
  spans are rebased to the earliest wall start.  Fleet flow spans get
  their flow index as the thread id, so Perfetto renders one track per
  flow and an evicted TCB is a visible gap.
- :func:`openmetrics` renders a :class:`MetricsRegistry` snapshot as
  OpenMetrics/Prometheus text exposition (counters ``_total``, gauges,
  histograms as cumulative ``_bucket{le=...}`` rows).
- :func:`histogram_quantile` / :func:`latency_summary` compute
  p50/p90/p99 from the registry's fixed-bucket histograms with linear
  interpolation inside the bucket — the same estimate Prometheus'
  ``histogram_quantile()`` makes.
"""

from __future__ import annotations

import json
import re
from typing import Any, Dict, Iterable, List, Optional, Sequence

__all__ = [
    "chrome_trace",
    "histogram_quantile",
    "latency_summary",
    "openmetrics",
    "write_chrome_trace",
]


# -- Chrome trace-event JSON --------------------------------------------

def chrome_trace(trees: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """Span trees -> a ``{"traceEvents": [...]}`` trace-event document."""
    wall_starts = [w for w in _walk_walls(trees) if w > 0.0]
    wall_base = min(wall_starts) if wall_starts else 0.0
    events: List[Dict[str, Any]] = []
    for index, tree in enumerate(trees):
        _emit(tree, events, tid=index, wall_base=wall_base)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def _walk_walls(trees: Iterable[Dict[str, Any]]) -> Iterable[float]:
    for node in trees:
        yield node.get("wall_start", 0.0)
        yield from _walk_walls(node.get("children", ()))


def _emit(
    node: Dict[str, Any],
    events: List[Dict[str, Any]],
    *,
    tid: int,
    wall_base: float,
) -> None:
    sim_start = node.get("sim_start", 0.0)
    sim_end = node.get("sim_end", 0.0)
    attrs = node.get("attrs", {})
    # A per-flow track when the span knows its flow index.
    flow = attrs.get("flow")
    if isinstance(flow, int):
        tid = flow
    if sim_end > sim_start or sim_start > 0.0:
        ts, dur = sim_start * 1e6, max(0.0, sim_end - sim_start) * 1e6
    else:
        wall_start = node.get("wall_start", 0.0)
        wall_end = node.get("wall_end", wall_start)
        ts = max(0.0, wall_start - wall_base) * 1e6
        dur = max(0.0, wall_end - wall_start) * 1e6
    events.append(
        {
            "name": node.get("name", "?"),
            "cat": node.get("kind", "span"),
            "ph": "X",
            "ts": ts,
            "dur": dur,
            "pid": 0,
            "tid": tid,
            "args": {
                **attrs,
                "sim_start": sim_start,
                "sim_end": sim_end,
                "wall_start": node.get("wall_start", 0.0),
                "wall_end": node.get("wall_end", 0.0),
            },
        }
    )
    for child in node.get("children", ()):
        _emit(child, events, tid=tid, wall_base=wall_base)


def write_chrome_trace(trees: Sequence[Dict[str, Any]], path: str) -> int:
    """Write :func:`chrome_trace` JSON to ``path``; returns event count."""
    doc = chrome_trace(trees)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(doc, handle, indent=1, default=repr)
        handle.write("\n")
    return len(doc["traceEvents"])


# -- OpenMetrics text exposition ----------------------------------------

_SANITIZE = re.compile(r"[^a-zA-Z0-9_:]")


def _metric_name(name: str, prefix: str) -> str:
    return prefix + _SANITIZE.sub("_", name)


def openmetrics(snapshot: Dict[str, Any], prefix: str = "repro_") -> str:
    """A registry snapshot as OpenMetrics text (Prometheus-scrapable)."""
    lines: List[str] = []
    for name in sorted(snapshot.get("counters", {})):
        metric = _metric_name(name, prefix)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric}_total {snapshot['counters'][name]}")
    for name in sorted(snapshot.get("gauges", {})):
        metric = _metric_name(name, prefix)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {snapshot['gauges'][name]}")
    for name in sorted(snapshot.get("histograms", {})):
        data = snapshot["histograms"][name]
        metric = _metric_name(name, prefix)
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        for bound, count in zip(data["buckets"], data["counts"]):
            cumulative += count
            lines.append(f'{metric}_bucket{{le="{bound:g}"}} {cumulative}')
        lines.append(f'{metric}_bucket{{le="+Inf"}} {data["count"]}')
        lines.append(f"{metric}_sum {data['sum']}")
        lines.append(f"{metric}_count {data['count']}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


# -- percentile estimation ----------------------------------------------

def histogram_quantile(data: Dict[str, Any], q: float) -> float:
    """Estimate the q-quantile of a fixed-bucket histogram snapshot.

    ``data`` is the registry's per-histogram snapshot shape:
    ``{"buckets": [bounds...], "counts": [len(bounds)+1 counts],
    "sum": ..., "count": ...}`` where ``counts[i]`` is the
    *non-cumulative* count of observations <= ``buckets[i]`` (last
    entry: the overflow bucket).  Linear interpolation inside the
    target bucket, like Prometheus' ``histogram_quantile()``.
    """
    total = data.get("count", 0)
    if total <= 0:
        return 0.0
    target = q * total
    buckets = data["buckets"]
    counts = data["counts"]
    cumulative = 0
    for i, bound in enumerate(buckets):
        prev = cumulative
        cumulative += counts[i]
        if cumulative >= target:
            lower = buckets[i - 1] if i > 0 else 0.0
            in_bucket = counts[i]
            fraction = (target - prev) / in_bucket if in_bucket else 0.0
            return lower + (bound - lower) * fraction
    # Target lands in the overflow bucket: the honest answer from
    # bucketed data is the largest finite bound.
    return float(buckets[-1]) if buckets else 0.0


def latency_summary(
    snapshot: Dict[str, Any], names: Optional[Iterable[str]] = None
) -> Dict[str, Dict[str, float]]:
    """p50/p90/p99 (plus count and mean) for selected histograms."""
    histograms = snapshot.get("histograms", {})
    if names is None:
        selected = sorted(histograms)
    else:
        selected = [n for n in names if n in histograms]
    out: Dict[str, Dict[str, float]] = {}
    for name in selected:
        data = histograms[name]
        count = data.get("count", 0)
        out[name] = {
            "count": count,
            "mean": (data.get("sum", 0.0) / count) if count else 0.0,
            "p50": histogram_quantile(data, 0.50),
            "p90": histogram_quantile(data, 0.90),
            "p99": histogram_quantile(data, 0.99),
        }
    return out
