"""Causal span tracing: a hierarchical wall+sim-time span layer.

A *span* is one timed unit of work — a conformance cell, a process
shard, a batched trial window, one trial or fleet flow, or a phase
inside a trial — carrying both wall-clock bounds (``wall_start`` /
``wall_end``, ``time.perf_counter`` seconds) and simulation-time bounds
(``sim_start`` / ``sim_end``, :class:`~repro.netsim.sim.SimClock`
seconds).  Spans nest: a sweep span contains shard spans, a shard span
contains batch spans, a batch span contains trial spans, a trial span
contains phase spans.

The contract mirrors :class:`~repro.telemetry.metrics.MetricsRegistry`
deltas exactly: span trees are plain nested dicts — picklable and
JSON-representable — and :meth:`SpanTracer.drain` / :meth:`SpanTracer.merge`
move finished trees across the ``run_sharded`` process boundary the same
way registry diffs do.  Merging is order-independent up to sibling
order, and :func:`trial_semantic` reduces any tree to its
execution-strategy-free content so serial and sharded runs can be
compared for identity (the acceptance contract pinned in
``tests/test_obs.py``).

Tracing is **off by default** (``REPRO_TRACE=1`` enables it at process
start; :func:`enable_tracer` flips it at runtime).  Every entry point
returns immediately when disabled, so the trial hot path pays one
attribute check and nothing else.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from time import perf_counter
from typing import Any, Dict, Iterable, List, Optional

__all__ = [
    "SEMANTIC_KINDS",
    "SpanTracer",
    "enable_tracer",
    "get_tracer",
    "make_span",
    "reset_tracer",
    "tracing",
    "trial_semantic",
]

#: Span kinds whose content is a function of the workload alone —
#: independent of worker count, shard layout, or batch windowing.
#: Everything else (``sweep`` dispatch wrappers aside, see
#: :func:`trial_semantic`) describes *how* the run was executed.
SEMANTIC_KINDS = frozenset({"cell", "trial", "flow", "phase", "wave"})


def make_span(
    name: str,
    kind: str,
    *,
    sim_start: float = 0.0,
    sim_end: float = 0.0,
    wall_start: float = 0.0,
    wall_end: float = 0.0,
    attrs: Optional[Dict[str, Any]] = None,
    children: Optional[List[Dict[str, Any]]] = None,
) -> Dict[str, Any]:
    """Build a finished span dict (for :meth:`SpanTracer.add`)."""
    return {
        "name": name,
        "kind": kind,
        "sim_start": sim_start,
        "sim_end": sim_end,
        "wall_start": wall_start,
        "wall_end": wall_end,
        "attrs": dict(attrs or {}),
        "children": list(children or []),
    }


class SpanTracer:
    """Process-local span collector with an explicit open-span stack.

    Two usage styles, matching the two lifetimes the engines have:

    - :meth:`begin` / :meth:`end` (or the :meth:`span` context manager)
      for LIFO lifetimes — sweeps, shards, batch windows;
    - :meth:`add` for spans whose bounds are only known at finalize
      time — batched trials and fleet flows end out of order, so the
      engine builds the whole tree with :func:`make_span` and attaches
      it under whatever span is open.
    """

    def __init__(self, enabled: Optional[bool] = None):
        if enabled is None:
            # Imported lazily: repro.core.env -> repro.core.__init__
            # pulls in the engines, which import this module at top
            # level (same bootstrap rule as EventBus.__init__).
            from repro.core.env import env_flag

            enabled = env_flag("REPRO_TRACE", False)
        self.enabled = bool(enabled)
        self.roots: List[Dict[str, Any]] = []
        self._stack: List[Dict[str, Any]] = []

    # -- recording -------------------------------------------------------
    def begin(
        self, name: str, kind: str, *, sim_start: float = 0.0, **attrs: Any
    ) -> Optional[Dict[str, Any]]:
        """Open a span; returns it (for :meth:`end`) or None when off."""
        if not self.enabled:
            return None
        span = make_span(
            name, kind, sim_start=sim_start, wall_start=perf_counter(),
            attrs=attrs,
        )
        self._stack.append(span)
        return span

    def end(
        self,
        span: Optional[Dict[str, Any]],
        *,
        sim_end: Optional[float] = None,
        **attrs: Any,
    ) -> None:
        """Close ``span``, attaching it to its parent (or the roots)."""
        if span is None or not self.enabled:
            return
        # Defensive pop: a child span leaked by an exception between
        # begin/end must not orphan this close.
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break
            self._attach(top)
        span["wall_end"] = perf_counter()
        if sim_end is not None:
            span["sim_end"] = sim_end
        if attrs:
            span["attrs"].update(attrs)
        self._attach(span)

    @contextmanager
    def span(
        self, name: str, kind: str, *, sim_start: float = 0.0, **attrs: Any
    ):
        """``with tracer.span(...)`` — yields the open span (or None)."""
        opened = self.begin(name, kind, sim_start=sim_start, **attrs)
        try:
            yield opened
        finally:
            self.end(opened)

    def add(self, tree: Dict[str, Any]) -> None:
        """Attach an externally built, finished span tree."""
        if not self.enabled:
            return
        self._attach(tree)

    def _attach(self, span: Dict[str, Any]) -> None:
        if self._stack:
            self._stack[-1]["children"].append(span)
        else:
            self.roots.append(span)

    # -- worker-merge protocol ------------------------------------------
    def drain(self) -> List[Dict[str, Any]]:
        """Return and clear the finished root spans (the shard delta)."""
        trees, self.roots = self.roots, []
        return trees

    def merge(self, trees: Optional[Iterable[Dict[str, Any]]]) -> None:
        """Fold worker-drained trees back in (order-independent, like
        :meth:`MetricsRegistry.merge` — merging happens regardless of
        ``enabled`` so a disabled parent still collects)."""
        if not trees:
            return
        if self._stack:
            self._stack[-1]["children"].extend(trees)
        else:
            self.roots.extend(trees)

    def clear(self) -> None:
        self.roots = []
        self._stack = []


# -- semantic comparison ------------------------------------------------

def trial_semantic(trees: Iterable[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Reduce span trees to their execution-strategy-free content.

    Strips wall-clock fields (worker-dependent), hoists the children of
    non-semantic kinds (shard/batch wrappers differ between serial and
    sharded runs), and sorts every sibling list into a canonical order
    (shards finish in arbitrary order).  Two runs of the same workload
    must reduce to equal lists whatever the execution strategy — the
    span analogue of the registry's serial-vs-sharded byte identity.
    """
    out: List[Dict[str, Any]] = []
    for tree in trees:
        out.extend(_semantic_node(tree))
    out.sort(key=_canonical_key)
    return out


def _semantic_node(node: Dict[str, Any]) -> List[Dict[str, Any]]:
    children: List[Dict[str, Any]] = []
    for child in node.get("children", ()):
        children.extend(_semantic_node(child))
    if node.get("kind") not in SEMANTIC_KINDS:
        # Execution wrapper: hoist its semantic descendants.
        children.sort(key=_canonical_key)
        return children
    children.sort(key=_canonical_key)
    return [
        {
            "name": node["name"],
            "kind": node["kind"],
            "sim_start": node.get("sim_start", 0.0),
            "sim_end": node.get("sim_end", 0.0),
            "attrs": dict(node.get("attrs", {})),
            "children": children,
        }
    ]


def _canonical_key(node: Dict[str, Any]) -> str:
    # json over the whole stripped node: a total order, so equal
    # multisets of siblings sort identically even when two spans differ
    # only deep in their subtrees.
    return json.dumps(node, sort_keys=True, default=repr)


# -- process-local singleton --------------------------------------------

_TRACER: Optional[SpanTracer] = None


def get_tracer() -> SpanTracer:
    global _TRACER
    if _TRACER is None:
        _TRACER = SpanTracer()
    return _TRACER


def reset_tracer() -> SpanTracer:
    """Fresh tracer honouring the current environment (test isolation)."""
    global _TRACER
    _TRACER = SpanTracer()
    return _TRACER


def enable_tracer(enabled: bool = True) -> SpanTracer:
    tracer = get_tracer()
    tracer.enabled = bool(enabled)
    return tracer


@contextmanager
def tracing():
    """Force-enable tracing for a scoped window (CLI / tests)."""
    tracer = get_tracer()
    prior = tracer.enabled
    tracer.enabled = True
    try:
        yield tracer
    finally:
        tracer.enabled = prior
