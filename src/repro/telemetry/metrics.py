"""The process-local metrics registry and its mergeable snapshots.

One :class:`MetricsRegistry` per process holds every instrument the
simulator, the GFW models, the strategies, and the experiment harness
register: monotonic :class:`Counter`\\ s, last-value :class:`Gauge`\\ s,
and fixed-bucket :class:`Histogram`\\ s.  The design constraint is the
parallel trial engine (:mod:`repro.experiments.parallel`): worker
processes return a :meth:`MetricsRegistry.snapshot` *delta* alongside
their trial results, and the parent merges those deltas back — so every
instrument must be

- **picklable as plain data** — snapshots are dicts of ints/floats/lists,
  never instrument objects;
- **order-independently mergeable** — counters and histogram buckets add,
  gauges take the maximum, so ``merge(a); merge(b)`` equals
  ``merge(b); merge(a)`` and a fanned-out sweep's merged registry equals
  the serial run's.

Instruments are created on first request and live for the process;
:meth:`MetricsRegistry.reset` zeroes them **in place**, so references
cached by hot paths (the GFW device holds its counters as attributes)
stay valid across experiment sessions and test isolation resets.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "filter_snapshot",
    "get_registry",
    "reset_registry",
]

#: Default histogram bucket upper bounds (bytes-ish scale); callers pass
#: their own when the quantity has a different shape.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    64.0, 256.0, 1024.0, 4096.0, 16384.0, 65536.0,
)


class Counter:
    """A monotonically increasing count (merge: addition)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self.value += amount

    def reset(self) -> None:
        self.value = 0


class Gauge:
    """A last-written value (merge: maximum, the only order-free choice)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def reset(self) -> None:
        self.value = 0.0


class Histogram:
    """Fixed-bucket histogram (merge: bucket-wise addition).

    ``buckets`` are inclusive upper bounds; one implicit overflow bucket
    catches everything above the last bound.  Buckets are fixed at
    registration so per-worker snapshots merge bucket-for-bucket.
    """

    __slots__ = ("name", "buckets", "counts", "sum", "count")

    def __init__(self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError(f"histogram {name} needs ascending buckets")
        self.name = name
        self.buckets: Tuple[float, ...] = tuple(float(b) for b in buckets)
        self.counts: List[int] = [0] * (len(self.buckets) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[index] += 1
                break
        else:
            self.counts[-1] += 1
        self.sum += value
        self.count += 1

    def reset(self) -> None:
        self.counts = [0] * (len(self.buckets) + 1)
        self.sum = 0.0
        self.count = 0


class MetricsRegistry:
    """A named collection of instruments with mergeable snapshots."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- registration ----------------------------------------------------
    def counter(self, name: str) -> Counter:
        self._check_free(name, self._counters)
        return self._counters.setdefault(name, Counter(name))

    def gauge(self, name: str) -> Gauge:
        self._check_free(name, self._gauges)
        return self._gauges.setdefault(name, Gauge(name))

    def histogram(
        self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        self._check_free(name, self._histograms)
        existing = self._histograms.get(name)
        if existing is not None:
            if existing.buckets != tuple(float(b) for b in buckets):
                raise ValueError(
                    f"histogram {name} already registered with buckets "
                    f"{existing.buckets}"
                )
            return existing
        histogram = Histogram(name, buckets)
        self._histograms[name] = histogram
        return histogram

    def _check_free(self, name: str, own: Dict) -> None:
        for family in (self._counters, self._gauges, self._histograms):
            if family is not own and name in family:
                raise ValueError(
                    f"instrument {name!r} already registered with a "
                    f"different type"
                )

    # -- reads -----------------------------------------------------------
    def counter_value(self, name: str) -> int:
        counter = self._counters.get(name)
        return counter.value if counter is not None else 0

    def gauge_value(self, name: str) -> float:
        gauge = self._gauges.get(name)
        return gauge.value if gauge is not None else 0.0

    def names(self) -> List[str]:
        return sorted(
            list(self._counters) + list(self._gauges) + list(self._histograms)
        )

    # -- snapshots -------------------------------------------------------
    def snapshot(self) -> Dict:
        """A JSON-representable, picklable image of every instrument."""
        return {
            "counters": {
                name: counter.value for name, counter in self._counters.items()
            },
            "gauges": {name: gauge.value for name, gauge in self._gauges.items()},
            "histograms": {
                name: {
                    "buckets": list(histogram.buckets),
                    "counts": list(histogram.counts),
                    "sum": histogram.sum,
                    "count": histogram.count,
                }
                for name, histogram in self._histograms.items()
            },
        }

    def diff(self, before: Dict) -> Dict:
        """The additive delta from ``before`` (an earlier snapshot) to now.

        This is what a pool worker returns per task: counters and
        histograms subtract, gauges report their current value (the
        parent merges gauges by maximum).
        """
        now = self.snapshot()
        before_counters = before.get("counters", {})
        before_histograms = before.get("histograms", {})
        # Zero-valued entries are kept on purpose: merging a delta then
        # registers every instrument the worker knew about, so the
        # parent's post-merge snapshot is *identical* to a serial run's
        # (same names, same zeros), not merely equal on nonzero values.
        delta_counters = {}
        for name, value in now["counters"].items():
            delta_counters[name] = value - before_counters.get(name, 0)
        delta_histograms = {}
        for name, data in now["histograms"].items():
            prior = before_histograms.get(name)
            if prior is None:
                delta_histograms[name] = data
                continue
            delta_histograms[name] = {
                "buckets": data["buckets"],
                "counts": [
                    a - b for a, b in zip(data["counts"], prior["counts"])
                ],
                "sum": data["sum"] - prior["sum"],
                "count": data["count"] - prior["count"],
            }
        return {
            "counters": delta_counters,
            "gauges": dict(now["gauges"]),
            "histograms": delta_histograms,
        }

    def merge(self, snapshot: Dict) -> None:
        """Fold a snapshot (or delta) into this registry, order-free."""
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).value += value
        for name, value in snapshot.get("gauges", {}).items():
            gauge = self.gauge(name)
            gauge.value = max(gauge.value, value)
        for name, data in snapshot.get("histograms", {}).items():
            histogram = self.histogram(name, data["buckets"])
            histogram.counts = [
                a + b for a, b in zip(histogram.counts, data["counts"])
            ]
            histogram.sum += data["sum"]
            histogram.count += data["count"]

    # -- lifecycle -------------------------------------------------------
    def reset(self) -> None:
        """Zero every instrument in place (references stay valid)."""
        for counter in self._counters.values():
            counter.reset()
        for gauge in self._gauges.values():
            gauge.reset()
        for histogram in self._histograms.values():
            histogram.reset()

    # -- rendering -------------------------------------------------------
    def format_table(self, prefix: Optional[str] = None) -> str:
        """A human-readable table of every (optionally filtered) instrument."""
        rows: List[Tuple[str, str, str]] = []
        for name in sorted(self._counters):
            rows.append((name, "counter", str(self._counters[name].value)))
        for name in sorted(self._gauges):
            rows.append((name, "gauge", f"{self._gauges[name].value:g}"))
        for name in sorted(self._histograms):
            histogram = self._histograms[name]
            mean = histogram.sum / histogram.count if histogram.count else 0.0
            rows.append(
                (name, "histogram",
                 f"count={histogram.count} mean={mean:.1f} "
                 f"buckets={histogram.counts}")
            )
        if prefix is not None:
            rows = [row for row in rows if row[0].startswith(prefix)]
        if not rows:
            return "(no instruments)"
        width_name = max(len(row[0]) for row in rows)
        width_type = max(len(row[1]) for row in rows)
        lines = [
            f"{name:<{width_name}}  {kind:<{width_type}}  {value}"
            for name, kind, value in rows
        ]
        return "\n".join(lines)


def filter_snapshot(snapshot: Dict, prefix: Optional[str]) -> Dict:
    """A snapshot restricted to instrument names starting with ``prefix``.

    The JSON twin of :meth:`MetricsRegistry.format_table`'s prefix
    filter — fleet runs dump thousands of counters, and the consumers
    (``repro telemetry metrics --prefix``, the OpenMetrics exporter)
    usually want one dotted family.  A falsy prefix returns the
    snapshot unchanged.
    """
    if not prefix:
        return snapshot
    return {
        family: {
            name: value
            for name, value in snapshot.get(family, {}).items()
            if name.startswith(prefix)
        }
        for family in ("counters", "gauges", "histograms")
    }


# ---------------------------------------------------------------------------
# The process-wide registry.  Worker processes each build their own on
# first use; the parallel engine merges their snapshot deltas back here.
# ---------------------------------------------------------------------------
_registry: Optional[MetricsRegistry] = None


def get_registry() -> MetricsRegistry:
    """The process-local registry (created on first use)."""
    global _registry
    if _registry is None:
        _registry = MetricsRegistry()
    return _registry


def reset_registry() -> None:
    """Zero the process registry in place (test isolation)."""
    if _registry is not None:
        _registry.reset()
