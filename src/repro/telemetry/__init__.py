"""Unified telemetry: metrics, events, spans, flight dumps, exporters.

Six layers, one import surface:

- :mod:`repro.telemetry.metrics` — the process-local
  :class:`~repro.telemetry.metrics.MetricsRegistry` of counters, gauges,
  and fixed-bucket histograms, with picklable snapshots the parallel
  trial engine merges across worker processes (order-independently);
- :mod:`repro.telemetry.events` — the bounded, sequenced
  :class:`~repro.telemetry.events.EventBus` that the trace recorder, the
  GFW device, strategies, and INTANG publish structured
  :class:`~repro.telemetry.events.TelemetryEvent` records into
  (``REPRO_TELEMETRY`` knob);
- :mod:`repro.telemetry.trace` — the hierarchical
  :class:`~repro.telemetry.trace.SpanTracer` (sweep → shard → batch/wave
  → trial/flow → phase spans, wall + sim time, ``REPRO_TRACE`` knob)
  whose drained trees merge across shards like registry deltas;
- :mod:`repro.telemetry.flight` — the anomaly
  :class:`~repro.telemetry.flight.FlightRecorder` (``REPRO_FLIGHT``
  knob): bounded event-ring + packet/TCB snapshot dumps emitted only
  when an eviction false negative, blacklist false positive, oracle
  drift, or broken verdict fires;
- :mod:`repro.telemetry.export` — Chrome/Perfetto trace-event JSON,
  OpenMetrics text exposition, and p50/p90/p99 summaries;
- :mod:`repro.telemetry.diagnose` — ``diagnose_trial()`` /
  ``diagnose_fleet_flow()``, which re-run one cell or fleet flow with
  full telemetry and render the merged packet+state timeline.

The diagnosis/trace/flight/export layers pull in heavier dependencies,
so they are exposed lazily — ``from repro.telemetry import
diagnose_trial`` works without making ``import repro.telemetry`` heavy.
"""

from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    filter_snapshot,
    get_registry,
    reset_registry,
)
from repro.telemetry.events import (
    EventBus,
    TelemetryEvent,
    capturing,
    enable_bus,
    get_bus,
    reset_bus,
)

#: Lazily exposed name -> providing submodule.
_LAZY = {
    "TrialDiagnosis": "diagnose",
    "diagnose_trial": "diagnose",
    "FleetFlowDiagnosis": "diagnose",
    "diagnose_fleet_flow": "diagnose",
    "SEMANTIC_KINDS": "trace",
    "SpanTracer": "trace",
    "enable_tracer": "trace",
    "get_tracer": "trace",
    "make_span": "trace",
    "reset_tracer": "trace",
    "tracing": "trace",
    "trial_semantic": "trace",
    "FlightRecorder": "flight",
    "enable_flight": "flight",
    "get_flight": "flight",
    "reset_flight": "flight",
    "chrome_trace": "export",
    "histogram_quantile": "export",
    "latency_summary": "export",
    "openmetrics": "export",
    "write_chrome_trace": "export",
}

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "filter_snapshot",
    "get_registry",
    "reset_registry",
    "EventBus",
    "TelemetryEvent",
    "capturing",
    "enable_bus",
    "get_bus",
    "reset_bus",
] + sorted(_LAZY)


def __getattr__(name):
    module_name = _LAZY.get(name)
    if module_name is not None:
        import importlib

        module = importlib.import_module(f"repro.telemetry.{module_name}")
        return getattr(module, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
