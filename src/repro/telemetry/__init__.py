"""Unified telemetry: metrics registry, event bus, per-trial diagnosis.

Three layers, one import surface:

- :mod:`repro.telemetry.metrics` — the process-local
  :class:`~repro.telemetry.metrics.MetricsRegistry` of counters, gauges,
  and fixed-bucket histograms, with picklable snapshots the parallel
  trial engine merges across worker processes (order-independently);
- :mod:`repro.telemetry.events` — the bounded, sequenced
  :class:`~repro.telemetry.events.EventBus` that the trace recorder, the
  GFW device, strategies, and INTANG publish structured
  :class:`~repro.telemetry.events.TelemetryEvent` records into
  (``REPRO_TELEMETRY`` knob);
- :mod:`repro.telemetry.diagnose` — ``diagnose_trial()``, which re-runs
  one experiment cell with full telemetry and renders a merged
  packet-ladder + GFW-state timeline explaining the Outcome
  (``repro telemetry diagnose`` on the command line).

The diagnosis layer pulls in the experiment harness, so it is exposed
lazily — ``from repro.telemetry import diagnose_trial`` works without
making ``import repro.telemetry`` heavy.
"""

from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    reset_registry,
)
from repro.telemetry.events import (
    EventBus,
    TelemetryEvent,
    capturing,
    enable_bus,
    get_bus,
    reset_bus,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "reset_registry",
    "EventBus",
    "TelemetryEvent",
    "capturing",
    "enable_bus",
    "get_bus",
    "reset_bus",
    "TrialDiagnosis",
    "diagnose_trial",
]


def __getattr__(name):
    if name in ("diagnose_trial", "TrialDiagnosis"):
        from repro.telemetry import diagnose

        return getattr(diagnose, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
