"""Conformance-matrix enumeration and execution.

One **cell** is ``(strategy, gfw_variant, middlebox_profile, fault
point)``.  The harness runs every cell through the ordinary
scenario/runner machinery (:func:`repro.experiments.runner.
_simulate_http_trial` with the ``gfw_variant`` override) and reduces the
repeats to a discrete **verdict**:

- ``evades``  — at least half the repeats succeeded;
- ``blocked`` — a majority ended in Failure 2 (GFW resets);
- ``broken``  — a majority ended in Failure 1 (silence: the strategy
  itself kills the connection, e.g. Aliyun discarding fragments);
- ``mixed``   — none of the above holds (genuinely probabilistic cell).

The historical-result cache is deliberately bypassed (cells call the
simulation directly): conformance asks "what does the *code* do today",
never "what did it do last week".  Scenario reuse and the process pool
are exercised on purpose — worker-count independence is itself part of
the contract under test.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.inconsistency import VerdictDistribution
from repro.experiments.calibration import CLEAN_ROOM, Calibration
from repro.experiments.parallel import map_trials, run_sharded
from repro.experiments.vantage import VantagePoint, vantage_by_name
from repro.experiments.websites import Website, outside_china_catalog
from repro.gfw.heterogeneity import HETEROGENEOUS_VARIANT, validate_variant
from repro.gfw.models import MODEL_VARIANTS
from repro.strategies.registry import STRATEGY_REGISTRY
from repro.telemetry.flight import get_flight
from repro.telemetry.trace import get_tracer

__all__ = [
    "CONFORMANCE_PROFILES",
    "CONFORMANCE_VARIANTS",
    "ConformanceCell",
    "CellResult",
    "DEFAULT_REPEATS",
    "DEFAULT_SEED",
    "FAULT_GRID",
    "FaultPoint",
    "cell_calibration",
    "classify_counts",
    "default_cells",
    "fault_by_name",
    "profile_vantage",
    "run_cell",
    "run_matrix",
]

#: Matrix-wide defaults; the CLI exposes both as flags.
DEFAULT_REPEATS = 6
DEFAULT_SEED = 2017

#: The full conformance variant axis: every registered model variant
#: plus the ``heterogeneous`` pseudo-variant, which resolves to one
#: member per (vantage, target) route and layers the diurnal
#: reset-suppression curve on top (extension, not paper — see
#: :mod:`repro.gfw.heterogeneity`).  ``MODEL_VARIANTS`` itself stays
#: untouched: fleet defaults and population draws never pick
#: ``heterogeneous`` implicitly.
CONFORMANCE_VARIANTS: Tuple[str, ...] = tuple(MODEL_VARIANTS) + (
    HETEROGENEOUS_VARIANT,
)


@dataclass(frozen=True)
class FaultPoint:
    """One point of the loss/jitter fault grid (``Network`` knobs)."""

    name: str
    loss_rate: float
    jitter: float


#: The fault grid: a clean network and a degraded one.  The degraded
#: point stresses the retransmission paths without drowning the verdict
#: in noise (10 % per-leg drop at 6 repeats would make every cell
#: ``mixed``).
FAULT_GRID: Tuple[FaultPoint, ...] = (
    FaultPoint("clean", loss_rate=0.0, jitter=0.0),
    FaultPoint("lossy", loss_rate=0.02, jitter=0.15),
)

#: A lab vantage with no client-side middleboxes: the pure
#: strategy-vs-censor differential, uncontaminated by Table 2 equipment.
NEUTRAL_VANTAGE = VantagePoint(
    name="conformance-neutral",
    city="Beijing",
    isp="Lab",
    provider_profile="transparent",
    ip="42.120.99.10",
    tor_filtered=False,
)

#: profile key -> vantage carrying it.  ``neutral`` is the lab vantage;
#: the others are the real Table 2 profiles via their vantage points.
_PROFILE_VANTAGE_NAMES: Dict[str, Optional[str]] = {
    "neutral": None,
    "aliyun": "aliyun-beijing",
    "qcloud": "qcloud-beijing",
    "unicom-sjz": "unicom-shijiazhuang",
    "unicom-tj": "unicom-tianjin",
}

#: The default matrix covers the no-middlebox baseline plus the two
#: most behaviour-bending profiles (Aliyun's fragment DISCARD and
#: Tianjin's sanitizers, §7.1/Table 5).
CONFORMANCE_PROFILES: Tuple[str, ...] = ("neutral", "aliyun", "unicom-tj")


def profile_vantage(profile: str) -> VantagePoint:
    """The vantage point that carries a named middlebox profile."""
    try:
        name = _PROFILE_VANTAGE_NAMES[profile]
    except KeyError:
        known = ", ".join(sorted(_PROFILE_VANTAGE_NAMES))
        raise KeyError(
            f"unknown conformance profile {profile!r} (known: {known})"
        ) from None
    if name is None:
        return NEUTRAL_VANTAGE
    return vantage_by_name(name)


def fault_by_name(name: str) -> FaultPoint:
    for fault in FAULT_GRID:
        if fault.name == name:
            return fault
    known = ", ".join(f.name for f in FAULT_GRID)
    raise KeyError(f"unknown fault point {name!r} (known: {known})")


@dataclass(frozen=True)
class ConformanceCell:
    """One cell of the conformance matrix (picklable work unit)."""

    strategy_id: str
    gfw_variant: str
    profile: str
    fault: FaultPoint

    @property
    def cell_id(self) -> str:
        return (
            f"{self.strategy_id}|{self.gfw_variant}"
            f"|{self.profile}|{self.fault.name}"
        )

    def seed_salt(self) -> int:
        """Interpreter-stable (crc32, not ``hash``) per-cell seed salt."""
        return zlib.crc32(self.cell_id.encode("utf-8")) & 0xFFFFFF


@dataclass
class CellResult:
    """The observed counts and reduced verdict of one cell."""

    cell: ConformanceCell
    success: int = 0
    failure1: int = 0
    failure2: int = 0

    @property
    def trials(self) -> int:
        return self.success + self.failure1 + self.failure2

    @property
    def verdict(self) -> str:
        return classify_counts(self.success, self.failure1, self.failure2)

    @property
    def distribution(self) -> VerdictDistribution:
        """The distribution-valued view of the cell (counts + Wilson
        bounds); ``verdict`` above remains the point estimate."""
        return VerdictDistribution(self.success, self.failure1, self.failure2)

    def as_payload(self) -> Dict:
        """A JSON-representable image (golden verdict snapshot rows).

        Every distribution-valued cell carries its Wilson confidence
        bounds on the success proportion; golden comparison keys on the
        ``verdict`` string, so the bounds are additive, not behavioural.
        """
        low, high = self.distribution.wilson()
        return {
            "verdict": self.verdict,
            "success": self.success,
            "failure1": self.failure1,
            "failure2": self.failure2,
            "wilson_low": round(low, 6),
            "wilson_high": round(high, 6),
        }


def classify_counts(success: int, failure1: int, failure2: int) -> str:
    """Reduce repeat counts to a verdict (ties resolve toward evasion
    first, then blocking — a 50 % evader still evades in expectation)."""
    trials = success + failure1 + failure2
    if trials == 0:
        return "mixed"
    if 2 * success >= trials:
        return "evades"
    if 2 * failure2 > trials:
        return "blocked"
    if 2 * failure1 > trials:
        return "broken"
    return "mixed"


def cell_calibration(fault: FaultPoint) -> Calibration:
    """The clean-room calibration dialled to one fault-grid point.

    Everything stochastic that is *not* the fault under test stays
    zeroed, so a verdict flip can only come from the strategy, the
    censor variant, the middlebox profile, or the injected fault.
    """
    return CLEAN_ROOM.variant(
        base_loss_rate=fault.loss_rate,
        path_jitter=fault.jitter,
    )


def conformance_site() -> Website:
    """The single fixed target site every cell fetches from."""
    return outside_china_catalog(count=1, seed=2017, calibration=CLEAN_ROOM)[0]


def default_cells(
    strategies: Optional[Sequence[str]] = None,
    variants: Optional[Sequence[str]] = None,
    profiles: Optional[Sequence[str]] = None,
    faults: Optional[Sequence[str]] = None,
) -> List[ConformanceCell]:
    """Enumerate the matrix in deterministic (registry) order."""
    strategy_ids = list(strategies or STRATEGY_REGISTRY)
    variant_ids = list(variants or CONFORMANCE_VARIANTS)
    profile_ids = list(profiles or CONFORMANCE_PROFILES)
    fault_points = [fault_by_name(name) for name in faults] if faults else list(FAULT_GRID)
    for strategy_id in strategy_ids:
        if strategy_id not in STRATEGY_REGISTRY:
            known = ", ".join(sorted(STRATEGY_REGISTRY))
            raise KeyError(f"unknown strategy {strategy_id!r} (known: {known})")
    for variant in variant_ids:
        validate_variant(variant)  # raises with the known list
    for profile in profile_ids:
        profile_vantage(profile)
    return [
        ConformanceCell(strategy_id, variant, profile, fault)
        for strategy_id in strategy_ids
        for variant in variant_ids
        for profile in profile_ids
        for fault in fault_points
    ]


def run_cell(
    cell: ConformanceCell,
    repeats: int = DEFAULT_REPEATS,
    seed: int = DEFAULT_SEED,
) -> CellResult:
    """Run one cell's repeats and reduce them to counts.

    Repeats are multiplexed through one shared event heap in windows of
    ``REPRO_BATCH_TRIALS`` (byte-identical to the serial loop — pinned by
    the batch-parity tier-1 tests); ``REPRO_BATCH_TRIALS=1`` falls back
    to running them one at a time.  Imports the runner lazily so the
    module stays importable in process-pool workers without dragging the
    app stack in at enumeration time.
    """
    from repro.experiments.runner import (
        Outcome,
        _run_http_batch_records,
        _simulate_http_trial,
        batch_window,
    )

    vantage = profile_vantage(cell.profile)
    website = conformance_site()
    calibration = cell_calibration(cell.fault)
    salt = cell.seed_salt()
    result = CellResult(cell=cell)
    tracer = get_tracer()
    cell_span = tracer.begin(
        f"cell:{cell.cell_id}", "cell",
        strategy=cell.strategy_id, variant=cell.gfw_variant,
        profile=cell.profile, fault=cell.fault.name,
    )
    window = batch_window()
    if window > 1 and repeats > 1:
        tasks = [
            (
                vantage,
                website,
                cell.strategy_id,
                calibration,
                (seed * 1_000_003 + repeat) ^ salt,
                True,
            )
            for repeat in range(repeats)
        ]
        records = []
        for start in range(0, len(tasks), window):
            records.extend(
                _run_http_batch_records(
                    tasks[start : start + window], gfw_variant=cell.gfw_variant
                )
            )
    else:
        records = [
            _simulate_http_trial(
                vantage,
                website,
                cell.strategy_id,
                calibration,
                seed=(seed * 1_000_003 + repeat) ^ salt,
                keyword=True,
                gfw_variant=cell.gfw_variant,
            )[0]
            for repeat in range(repeats)
        ]
    for record in records:
        if record.outcome is Outcome.SUCCESS:
            result.success += 1
        elif record.outcome is Outcome.FAILURE1:
            result.failure1 += 1
        else:
            result.failure2 += 1
    tracer.end(cell_span, verdict=result.verdict)
    if result.verdict == "broken":
        # The strategy itself killed the connection: flight-record the
        # cell so the silence is attributable without a re-run.
        flight = get_flight()
        if flight.enabled:
            from repro.telemetry.events import get_bus

            flight.record(
                "broken",
                context={
                    "cell": cell.cell_id,
                    "success": result.success,
                    "failure1": result.failure1,
                    "failure2": result.failure2,
                },
                events=get_bus().events(),
            )
    return result


def _cell_worker(task: Tuple) -> CellResult:
    """Process-pool work unit: one full cell."""
    cell, repeats, seed = task
    return run_cell(cell, repeats=repeats, seed=seed)


def run_matrix(
    cells: Optional[Sequence[ConformanceCell]] = None,
    repeats: int = DEFAULT_REPEATS,
    seed: int = DEFAULT_SEED,
    workers: Optional[int] = None,
    shards: Optional[int] = None,
) -> Dict[str, CellResult]:
    """Run the matrix (fanned out a cell at a time), keyed by cell id.

    Per-cell seeds are fixed before fan-out, so the verdict map is
    identical for any worker count.  ``shards`` switches the fan-out to
    the persistent shard runner: each worker gets one contiguous slice of
    the cell list (one pickled payload and one telemetry delta per shard
    instead of per cell) — same verdicts, less dispatch overhead.
    """
    if cells is None:
        cells = default_cells()
    tasks = [(cell, repeats, seed) for cell in cells]
    # The sweep span stays open through the merge so worker-drained cell
    # spans attach under it.
    with get_tracer().span(
        "conformance.matrix", "sweep", cells=len(tasks), repeats=repeats
    ):
        if shards is not None and shards > 1:
            results = run_sharded(
                _cell_worker,
                tasks,
                shards=shards,
                workers=workers,
                trials_per_task=repeats,
            )
        else:
            results = map_trials(
                _cell_worker, tasks, workers=workers, trials_per_task=repeats
            )
    return {result.cell.cell_id: result for result in results}
