"""Differential conformance harness: strategy × GFW-variant × profile × fault.

The paper's central claim is *differential*: an evasion strategy's fate
depends on which censor model variant it meets (old vs. evolved with
NB1–NB3, Fig. 3/4 and Table 4) and which middlebox profile sits on the
client side (Tables 2/5).  Correctness of this reproduction is therefore
a **matrix of verdicts**, not a single pass/fail — and this package is
the standing net that guards that matrix against regression:

- :mod:`repro.conformance.matrix` enumerates the full strategy-catalog ×
  model-variant × middlebox-profile × fault-grid matrix and runs every
  cell through the ordinary scenario/runner machinery (parallel pool and
  scenario reuse included);
- :mod:`repro.conformance.oracles` encodes the paper-derived expected
  verdicts as declarative data, with explicit ``KNOWN_DIVERGENCE``
  entries where the reproduction intentionally differs;
- :mod:`repro.conformance.golden` captures canonical packet ladders and
  the blessed verdict snapshot under ``tests/golden/`` and diffs the
  current behaviour against them.

Exposed on the command line as ``repro conformance run|diff|bless``.
"""

from repro.conformance.matrix import (
    CONFORMANCE_PROFILES,
    CONFORMANCE_VARIANTS,
    ConformanceCell,
    CellResult,
    FAULT_GRID,
    FaultPoint,
    classify_counts,
    default_cells,
    run_cell,
    run_matrix,
)
from repro.conformance.oracles import (
    KNOWN_DIVERGENCE,
    ORACLE_RULES,
    OracleRule,
    VerdictDrift,
    check_verdicts,
    expected_verdicts,
)
from repro.conformance.golden import (
    GoldenDiff,
    bless,
    capture_ladder,
    compare_golden,
    golden_cells,
    golden_dir,
)

__all__ = [
    "CONFORMANCE_PROFILES",
    "CONFORMANCE_VARIANTS",
    "ConformanceCell",
    "CellResult",
    "FAULT_GRID",
    "FaultPoint",
    "classify_counts",
    "default_cells",
    "run_cell",
    "run_matrix",
    "KNOWN_DIVERGENCE",
    "ORACLE_RULES",
    "OracleRule",
    "VerdictDrift",
    "check_verdicts",
    "expected_verdicts",
    "GoldenDiff",
    "bless",
    "capture_ladder",
    "compare_golden",
    "golden_cells",
    "golden_dir",
]
