"""Paper-derived verdict oracles for the conformance matrix.

Each :class:`OracleRule` states what verdict(s) a family of cells is
allowed to produce, with a ``provenance`` string naming the paper
passage that implies it.  Rules use :mod:`fnmatch` wildcards on every
axis and are consulted in order — **first match wins** — so specific
exceptions (a middlebox sanitizing a strategy's insertion packets, a
fault point washing a verdict out to ``mixed``) sit above the broad
table rows they carve out of.

Where the reproduction *intentionally* diverges from the paper's
numbers, the divergence is not hidden inside a permissive rule: it gets
an explicit :data:`KNOWN_DIVERGENCE` entry stating the paper's
expectation, the reproduction's verdict, and why the difference is
accepted.  ``repro conformance run`` prints these alongside failures so
a reader can always distinguish "modelled and accepted" from "drifted".
"""

from __future__ import annotations

from dataclasses import dataclass
from fnmatch import fnmatchcase
from typing import Dict, List, Optional, Sequence, Tuple

from repro.conformance.matrix import CellResult, ConformanceCell

__all__ = [
    "KNOWN_DIVERGENCE",
    "KnownDivergence",
    "ORACLE_RULES",
    "OracleRule",
    "VerdictDrift",
    "check_verdicts",
    "expected_verdicts",
    "find_rule",
]


@dataclass(frozen=True)
class OracleRule:
    """One row of the oracle table.

    ``strategy``/``variant``/``profile``/``fault`` are fnmatch patterns
    over the cell axes; ``allowed`` is the set of verdicts the rule
    admits; ``provenance`` cites the paper passage the expectation is
    derived from.
    """

    strategy: str
    variant: str
    profile: str
    fault: str
    allowed: Tuple[str, ...]
    provenance: str

    def matches(self, cell: ConformanceCell) -> bool:
        return (
            fnmatchcase(cell.strategy_id, self.strategy)
            and fnmatchcase(cell.gfw_variant, self.variant)
            and fnmatchcase(cell.profile, self.profile)
            and fnmatchcase(cell.fault.name, self.fault)
        )


@dataclass(frozen=True)
class KnownDivergence:
    """A cell family where the reproduction knowingly departs from the
    paper's reported behaviour (still enforced — via its own rule)."""

    strategy: str
    variant: str
    profile: str
    fault: str
    paper_expected: str
    repro_verdict: str
    reason: str

    def matches(self, cell: ConformanceCell) -> bool:
        return (
            fnmatchcase(cell.strategy_id, self.strategy)
            and fnmatchcase(cell.gfw_variant, self.variant)
            and fnmatchcase(cell.profile, self.profile)
            and fnmatchcase(cell.fault.name, self.fault)
        )


@dataclass(frozen=True)
class VerdictDrift:
    """One cell whose observed verdict escaped its oracle rule."""

    cell_id: str
    observed: str
    allowed: Tuple[str, ...]
    provenance: str

    def format(self) -> str:
        return (
            f"{self.cell_id}: observed {self.observed!r}, oracle allows "
            f"{'/'.join(self.allowed)}  [{self.provenance}]"
        )


# ---------------------------------------------------------------------------
# The oracle table.  Order matters: first match wins — middlebox
# carve-outs sit above the broad variant rows they puncture, and the
# degraded-network rows sit at the bottom.
# ---------------------------------------------------------------------------
ORACLE_RULES: List[OracleRule] = [
    # -- Heterogeneous pseudo-variant (extension, not paper) --------------
    # These cells run the Ensafi-style spatiotemporal model
    # (repro/gfw/heterogeneity.py): the route draws one member variant
    # (evolved/mixed/old) and a diurnal reset-suppression curve, so
    # verdicts here are *distributions* whose point estimate can differ
    # per route.  The block sits above every paper rule because the
    # variant="*" middlebox carve-outs below pin single verdicts that
    # load suppression is allowed to soften.  First the route-invariant
    # pins — behaviours Ensafi-style heterogeneity provably cannot flip
    # — then the catch-all that defers the route-dependent rest to the
    # blessed golden snapshot.
    OracleRule(
        "ooo-ip-fragments", "heterogeneous", "aliyun", "clean", ("broken",),
        "Extension (Ensafi et al., spatiotemporal inconsistencies): "
        "route-invariant — Aliyun's DISCARD fragment policy (Table 2) "
        "kills the fragmented request before *any* censor generation "
        "sees it, so no member variant or diurnal load level can change "
        "the silence",
    ),
    OracleRule(
        "improved-tcb-teardown", "heterogeneous", "*", "clean", ("evades",),
        "Extension (Ensafi et al.): route-invariant — §6.2's improved "
        "teardown evades old, evolved and mixed installations alike "
        "(golden: evades on every member variant), and load suppression "
        "only ever adds successes; per-path rule differences cannot "
        "surface here",
    ),
    OracleRule(
        "tcb-teardown+tcb-reversal", "heterogeneous", "*", "clean",
        ("evades",),
        "Extension (Ensafi et al.) + §7.1: combining strategies 'because "
        "both generations co-exist on real paths' is precisely the hedge "
        "against per-route heterogeneity — the combination evades "
        "whichever member variant the route ensemble draws",
    ),
    OracleRule(
        "none", "heterogeneous", "*", "*", ("blocked", "mixed", "evades"),
        "Extension (Ensafi et al.): diurnal load-dependent failure to "
        "inject RSTs — at peak hours a detected flow may draw no "
        "enforcement at all, so the no-strategy baseline wobbles from "
        "blocked toward mixed/evades with the route's suppression curve "
        "(never 'broken': nothing else kills the connection)",
    ),
    OracleRule(
        "*", "heterogeneous", "*", "*",
        ("evades", "blocked", "broken", "mixed"),
        "Extension (Ensafi et al.): route-dependent cells — the verdict "
        "is whichever member variant the seeded ensemble assigned the "
        "conformance route, softened by its temporal profile; pinned by "
        "the golden snapshot rather than the oracle",
    ),
    # -- Middlebox carve-outs (Table 2 / Table 5 / §7.1) ------------------
    OracleRule(
        "*bad-checksum", "*", "unicom-tj", "clean", ("blocked",),
        "Table 2/§7.1: Tianjin Unicom drops insertion packets with wrong "
        "checksums, re-exposing the keyword to the censor",
    ),
    OracleRule(
        "inorder-overlap/no-flag", "*", "unicom-tj", "clean", ("blocked",),
        "Table 2/§7.1: Tianjin Unicom drops insertion packets with no "
        "TCP flags set",
    ),
    OracleRule(
        "west-chamber", "old", "unicom-tj", "clean", ("blocked",),
        "Table 2/§7.1: West Chamber's wrong-checksum insertions are "
        "sanitized at Tianjin even against the old model",
    ),
    OracleRule(
        "tcb-teardown-fin/*", "old", "unicom-tj", "clean", ("blocked",),
        "Table 2 modelling: the Tianjin profile drops inserted bare FINs "
        "(see KNOWN_DIVERGENCE)",
    ),
    OracleRule(
        "ooo-ip-fragments", "*", "aliyun", "clean", ("broken",),
        "Table 5/§7.1: Aliyun middleboxes discard IP fragments — the "
        "request never arrives at all (Failure 1)",
    ),
    OracleRule(
        "ooo-ip-fragments", "*", "unicom-tj", "clean", ("blocked",),
        "§7.1: Tianjin equipment reassembles IP fragments in flight, "
        "re-exposing the keyword to the censor",
    ),
    # -- Baseline ---------------------------------------------------------
    OracleRule(
        "none", "*", "*", "clean", ("blocked",),
        "§3.3: a keyword request with no strategy is reset by every "
        "model generation (clean-room zeroes the ~2.8% overload residue; "
        "see KNOWN_DIVERGENCE)",
    ),
    OracleRule(
        "none", "*", "*", "lossy", ("blocked", "broken", "mixed"),
        "§3.3: no strategy never evades — loss can only silence the "
        "request, not sneak it past the censor",
    ),
    # -- TCB creation (Table 1) -------------------------------------------
    OracleRule(
        "tcb-creation-syn/*", "old", "*", "clean", ("evades",),
        "Table 1: a fake SYN desynchronizes the Khattak-era censor's TCB",
    ),
    OracleRule(
        "tcb-creation-syn/*", "evolved-nb2-off", "*", "clean", ("evades",),
        "§4.2: without the RESYNC state (NB2) the fake-SYN "
        "desynchronization sticks",
    ),
    OracleRule(
        "tcb-creation-syn/*", "*", "*", "clean", ("blocked",),
        "Table 1/§4.2: the evolved censor enters RESYNC on the ambiguous "
        "handshake (NB2) and re-locks onto the real stream",
    ),
    # -- Data reassembly (Table 1 / §4.3) ---------------------------------
    OracleRule(
        "ooo-ip-fragments", "*", "*", "clean", ("evades",),
        "Table 1: out-of-order IP fragments evade both generations on a "
        "path without reassembling middleboxes",
    ),
    OracleRule(
        "ooo-tcp-segments", "old", "*", "clean", ("evades",),
        "Table 1: the old model resolves out-of-order TCP segments "
        "last-wins and misses the split keyword",
    ),
    OracleRule(
        "ooo-tcp-segments", "*", "*", "clean", ("blocked",),
        "Table 1/§4.3: the evolved censor buffers and reorders TCP "
        "segments — under every NB1-NB3 ablation",
    ),
    OracleRule(
        "inorder-overlap/*", "*", "*", "clean", ("evades",),
        "Table 1: in-order data overlapping (first-wins reassembly) "
        "still evades both generations",
    ),
    # -- TCB teardown (Table 1 / §4.1) ------------------------------------
    OracleRule(
        "tcb-teardown-rst*", "old", "*", "clean", ("evades",),
        "Table 1: RST/RST-ACK teardown removes the old censor's TCB",
    ),
    OracleRule(
        "tcb-teardown-rst*", "evolved-nb2-off", "*", "clean", ("evades",),
        "§4.1: with no RESYNC state to fall into, teardown sticks",
    ),
    OracleRule(
        "tcb-teardown-rst*", "evolved-nb3-off", "*", "clean", ("evades",),
        "§4.1: with the NB3 coin forced off, client RSTs tear down "
        "instead of resynchronizing",
    ),
    OracleRule(
        "tcb-teardown-rst*", "*", "*", "clean", ("blocked",),
        "Table 1/§4.1 (NB3): the evolved censor treats the inserted RST "
        "as a resynchronization trigger, not a teardown",
    ),
    OracleRule(
        "tcb-teardown-fin/*", "old", "*", "clean", ("evades",),
        "Table 1: FIN teardown worked against the old model",
    ),
    OracleRule(
        "tcb-teardown-fin/*", "*", "*", "clean", ("blocked",),
        "§4.1: the evolved censor no longer tears down on FIN — under "
        "every NB1-NB3 ablation",
    ),
    # -- West Chamber (Table 1) -------------------------------------------
    OracleRule(
        "west-chamber", "old", "*", "clean", ("evades",),
        "Table 1: West Chamber worked against the Khattak-era censor",
    ),
    OracleRule(
        "west-chamber", "*", "*", "clean", ("blocked",),
        "Table 1: West Chamber no longer works against the evolved censor",
    ),
    # -- New attacks on the evolved model (§5.1 / §5.2) -------------------
    OracleRule(
        "resync-desync", "old", "*", "clean", ("blocked",),
        "§5.1: the old model has no RESYNC state to desynchronize",
    ),
    OracleRule(
        "resync-desync", "evolved-nb2-off", "*", "clean", ("blocked",),
        "§5.1: with NB2 ablated there is no RESYNC state to exploit",
    ),
    OracleRule(
        "resync-desync", "mixed", "*", "clean", ("blocked",),
        "§5.1: the mixed cluster's old-model device still catches the "
        "flow even while the evolved one is desynchronized",
    ),
    OracleRule(
        "resync-desync", "*", "*", "clean", ("evades",),
        "§5.1: an insertion packet poisons the RESYNC re-lock, leaving "
        "the censor out-of-window for the real request",
    ),
    OracleRule(
        "tcb-reversal", "old", "*", "clean", ("blocked",),
        "§5.2: the old model ignores SYN/ACKs, so no reversed TCB exists",
    ),
    OracleRule(
        "tcb-reversal", "evolved-nb1-off", "*", "clean", ("blocked",),
        "§5.2: reversal requires TCB-on-SYN/ACK (NB1); ablating it "
        "restores normal tracking",
    ),
    OracleRule(
        "tcb-reversal", "mixed", "*", "clean", ("blocked",),
        "§5.2: the mixed cluster's old-model device tracks the flow "
        "the ordinary way",
    ),
    OracleRule(
        "tcb-reversal", "*", "*", "clean", ("evades",),
        "§5.2: the SYN/ACK-created TCB has client and server reversed — "
        "the monitored direction never carries the keyword",
    ),
    # -- Improved / combined strategies (§5.3 / §5.4, Table 4) ------------
    OracleRule(
        "improved-tcb-teardown", "*", "*", "clean", ("evades",),
        "§5.3/Table 4: the improved teardown volley works against every "
        "model generation and ablation",
    ),
    OracleRule(
        "improved-inorder-overlap", "*", "*", "clean", ("evades",),
        "§5.3/Table 4: the improved in-order overlap works against every "
        "model generation and ablation",
    ),
    OracleRule(
        "tcb-creation+resync-desync", "*", "*", "clean", ("evades",),
        "§5.4: the combination covers both generations — the fake SYN "
        "beats the old model, the desync beats the evolved one",
    ),
    OracleRule(
        "tcb-teardown+tcb-reversal", "evolved-nb1-off", "*", "clean",
        ("blocked",),
        "§5.4 ablation: the reversal half requires NB1 and the teardown "
        "half is resynchronized away by NB3 — ablating NB1 alone defeats "
        "the combination",
    ),
    OracleRule(
        "tcb-teardown+tcb-reversal", "*", "*", "clean", ("evades",),
        "§5.4: the combination covers both generations",
    ),
    # -- Degraded network (fault grid) ------------------------------------
    OracleRule(
        "*", "*", "*", "lossy", ("evades", "blocked", "broken", "mixed"),
        "§3.4: residual failures track packet loss — the paper tables "
        "make no per-loss-rate prediction, so degraded-grid verdicts are "
        "pinned by the golden snapshot rather than the oracle",
    ),
]

KNOWN_DIVERGENCE: List[KnownDivergence] = [
    KnownDivergence(
        strategy="none", variant="*", profile="*", fault="clean",
        paper_expected="mixed",
        repro_verdict="blocked",
        reason=(
            "§3.4 reports a ~2.8% baseline success rate attributed to "
            "censor overload; the conformance calibration zeroes the "
            "miss probability so the baseline is strictly blocked and "
            "every other verdict flip is attributable to the cell axes."
        ),
    ),
    KnownDivergence(
        strategy="tcb-teardown-fin/*", variant="old", profile="unicom-tj",
        fault="clean",
        paper_expected="evades",
        repro_verdict="blocked",
        reason=(
            "Table 1 expects FIN teardown to beat the old model from "
            "every vantage; the reproduction's Tianjin profile drops "
            "inserted bare FINs deterministically (its Table 2 sanitizer "
            "modelling), so the insertion never reaches the censor."
        ),
    ),
]


def find_rule(cell: ConformanceCell) -> Optional[OracleRule]:
    """The first oracle rule matching a cell, or None (uncovered)."""
    for rule in ORACLE_RULES:
        if rule.matches(cell):
            return rule
    return None


def expected_verdicts(cell: ConformanceCell) -> Optional[Tuple[str, ...]]:
    rule = find_rule(cell)
    return rule.allowed if rule is not None else None


def divergences_for(cell: ConformanceCell) -> List[KnownDivergence]:
    return [entry for entry in KNOWN_DIVERGENCE if entry.matches(cell)]


def check_verdicts(
    results: Dict[str, CellResult],
) -> Tuple[List[VerdictDrift], List[str]]:
    """Check every observed verdict against the oracle table.

    Returns ``(drifts, uncovered)``: cells whose verdict escaped their
    rule, and cell ids no rule matches at all.  An uncovered cell is a
    harness bug (the table must blanket the matrix), so callers treat
    both lists as failures.
    """
    drifts: List[VerdictDrift] = []
    uncovered: List[str] = []
    for cell_id, result in results.items():
        rule = find_rule(result.cell)
        if rule is None:
            uncovered.append(cell_id)
            continue
        if result.verdict not in rule.allowed:
            drifts.append(
                VerdictDrift(
                    cell_id=cell_id,
                    observed=result.verdict,
                    allowed=rule.allowed,
                    provenance=rule.provenance,
                )
            )
    return drifts, uncovered
