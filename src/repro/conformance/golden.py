"""Golden verdict snapshot and canonical trace ladders.

Two kinds of blessed artifacts live under ``tests/golden/``:

- ``verdicts.json`` — the full verdict map of the conformance matrix
  (every cell's counts and verdict at the canonical repeats/seed).  The
  oracle table (:mod:`repro.conformance.oracles`) states what the paper
  *allows*; this snapshot pins what the code *does*, so a behaviour
  change that stays inside the oracle's tolerance is still surfaced.
- ``*.ladder`` — one canonical packet ladder per registered strategy
  (evolved censor, neutral profile, clean network, fixed seed): the
  wire-level shape of the strategy, as rendered by
  :meth:`~repro.netsim.trace.TraceRecorder.format_ladder`.

``repro conformance run`` fails on any un-blessed difference;
``repro conformance diff`` shows the differences; ``repro conformance
bless`` rewrites the artifacts after a reviewed, intentional change.
"""

from __future__ import annotations

import difflib
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.conformance.matrix import (
    CellResult,
    ConformanceCell,
    DEFAULT_SEED,
    FAULT_GRID,
    cell_calibration,
    conformance_site,
    profile_vantage,
)
from repro.strategies.registry import STRATEGY_REGISTRY

__all__ = [
    "GoldenDiff",
    "VERDICTS_FILE",
    "bless",
    "capture_ladder",
    "compare_golden",
    "golden_cells",
    "golden_dir",
    "ladder_filename",
    "load_verdicts",
]

VERDICTS_FILE = "verdicts.json"


def golden_dir() -> Path:
    """``tests/golden/`` resolved from the repository layout.

    The conformance harness is a development tool: it assumes a source
    checkout (``src/repro/…`` next to ``tests/``), like the table
    reproductions assume the paper datasets.
    """
    return Path(__file__).resolve().parents[3] / "tests" / "golden"


def golden_cells() -> List[ConformanceCell]:
    """The representative traced cell for every registered strategy:
    evolved censor, neutral profile, clean network."""
    return [
        ConformanceCell(strategy_id, "evolved", "neutral", FAULT_GRID[0])
        for strategy_id in STRATEGY_REGISTRY
    ]


def ladder_filename(cell: ConformanceCell) -> str:
    """A filesystem-safe name for a cell's ladder file."""
    return re.sub(r"[^A-Za-z0-9.-]+", "_", cell.cell_id) + ".ladder"


def capture_ladder(cell: ConformanceCell, seed: int = DEFAULT_SEED) -> str:
    """One traced run of a cell, rendered as a self-describing ladder."""
    from repro.experiments.runner import _simulate_http_trial

    record, scenario = _simulate_http_trial(
        profile_vantage(cell.profile),
        conformance_site(),
        cell.strategy_id,
        cell_calibration(cell.fault),
        seed=(seed * 1_000_003) ^ cell.seed_salt(),
        keyword=True,
        trace=True,
        gfw_variant=cell.gfw_variant,
    )
    assert scenario.trace is not None
    header = [
        f"# cell: {cell.cell_id}",
        f"# seed: {seed}",
        f"# outcome: {record.outcome.value}",
    ]
    return "\n".join(header) + "\n" + scenario.trace.format_ladder() + "\n"


def load_verdicts(directory: Optional[Path] = None) -> Optional[Dict]:
    directory = directory or golden_dir()
    path = directory / VERDICTS_FILE
    if not path.exists():
        return None
    return json.loads(path.read_text())


@dataclass
class GoldenDiff:
    """Everything that differs between current behaviour and the blessed
    artifacts.  ``clean`` is True only when *nothing* differs."""

    #: (cell_id, blessed verdict, observed verdict)
    verdict_changes: List[Tuple[str, str, str]] = field(default_factory=list)
    #: Cells present now but absent from the snapshot (new strategies…).
    unblessed_cells: List[str] = field(default_factory=list)
    #: Cells in the snapshot that the matrix no longer produces.
    vanished_cells: List[str] = field(default_factory=list)
    #: cell_id -> unified diff of blessed vs. observed ladder.
    ladder_diffs: Dict[str, str] = field(default_factory=dict)
    #: Golden cells with no blessed ladder file on disk.
    unblessed_ladders: List[str] = field(default_factory=list)
    #: No snapshot file exists at all (first run: bless to create).
    snapshot_missing: bool = False

    @property
    def clean(self) -> bool:
        return not (
            self.verdict_changes
            or self.unblessed_cells
            or self.vanished_cells
            or self.ladder_diffs
            or self.unblessed_ladders
            or self.snapshot_missing
        )

    def format(self, max_ladder_lines: int = 40) -> str:
        if self.clean:
            return "golden: clean (verdict snapshot and ladders match)"
        lines: List[str] = []
        if self.snapshot_missing:
            lines.append(
                f"golden: no {VERDICTS_FILE} snapshot — run "
                "`repro conformance bless` to create it"
            )
        for cell_id, blessed, observed in self.verdict_changes:
            lines.append(
                f"verdict drift vs snapshot: {cell_id}: "
                f"{blessed!r} -> {observed!r}"
            )
        for cell_id in self.unblessed_cells:
            lines.append(f"unblessed cell (not in snapshot): {cell_id}")
        for cell_id in self.vanished_cells:
            lines.append(f"vanished cell (snapshot only): {cell_id}")
        for cell_id in self.unblessed_ladders:
            lines.append(f"unblessed ladder (no golden file): {cell_id}")
        for cell_id, diff in self.ladder_diffs.items():
            lines.append(f"ladder drift: {cell_id}")
            shown = diff.splitlines()
            if len(shown) > max_ladder_lines:
                omitted = len(shown) - max_ladder_lines
                shown = shown[:max_ladder_lines] + [f"  … ({omitted} more lines)"]
            lines.extend("  " + line for line in shown)
        return "\n".join(lines)


def compare_golden(
    results: Dict[str, CellResult],
    directory: Optional[Path] = None,
    seed: int = DEFAULT_SEED,
    cells: Optional[Sequence[ConformanceCell]] = None,
) -> GoldenDiff:
    """Diff current behaviour against the blessed artifacts.

    ``results`` is a (possibly partial) matrix run; only snapshot rows
    for cells present in ``results`` are compared, so a filtered run
    never reports the filtered-out remainder as vanished.  Ladders are
    re-captured live for ``cells`` (default: all golden cells whose
    strategy appears in ``results``).
    """
    directory = directory or golden_dir()
    diff = GoldenDiff()

    snapshot = load_verdicts(directory)
    if snapshot is None:
        diff.snapshot_missing = True
    else:
        blessed: Dict[str, Dict] = snapshot.get("cells", {})
        # A filtered run restricts each axis independently; a snapshot
        # row only counts as vanished when this run *would* have
        # produced it — i.e. all four of its axis values were in scope.
        axes_seen = tuple(
            {axis(r.cell) for r in results.values()}
            for axis in (
                lambda c: c.strategy_id,
                lambda c: c.gfw_variant,
                lambda c: c.profile,
                lambda c: c.fault.name,
            )
        )
        for cell_id, result in results.items():
            row = blessed.get(cell_id)
            if row is None:
                diff.unblessed_cells.append(cell_id)
            elif row["verdict"] != result.verdict:
                diff.verdict_changes.append(
                    (cell_id, row["verdict"], result.verdict)
                )
        for cell_id in blessed:
            parts = cell_id.split("|")
            if cell_id not in results and len(parts) == 4 and all(
                part in seen for part, seen in zip(parts, axes_seen)
            ):
                diff.vanished_cells.append(cell_id)

    if cells is None:
        strategies_seen = {r.cell.strategy_id for r in results.values()}
        cells = [
            cell for cell in golden_cells()
            if cell.strategy_id in strategies_seen
        ]
    for cell in cells:
        path = directory / ladder_filename(cell)
        observed = capture_ladder(cell, seed=seed)
        if not path.exists():
            diff.unblessed_ladders.append(cell.cell_id)
            continue
        blessed_text = path.read_text()
        if blessed_text != observed:
            diff.ladder_diffs[cell.cell_id] = "\n".join(
                difflib.unified_diff(
                    blessed_text.splitlines(),
                    observed.splitlines(),
                    fromfile=f"blessed/{path.name}",
                    tofile="observed",
                    lineterm="",
                )
            )
    return diff


def bless(
    results: Dict[str, CellResult],
    directory: Optional[Path] = None,
    seed: int = DEFAULT_SEED,
    repeats: Optional[int] = None,
    cells: Optional[Sequence[ConformanceCell]] = None,
) -> List[Path]:
    """Write the verdict snapshot and golden ladders; returns the paths.

    Partial blessing is deliberate (a filtered run updates only its own
    rows): existing snapshot rows outside ``results`` are preserved.
    """
    directory = directory or golden_dir()
    directory.mkdir(parents=True, exist_ok=True)
    written: List[Path] = []

    snapshot = load_verdicts(directory) or {"cells": {}}
    snapshot["seed"] = seed
    if repeats is not None:
        snapshot["repeats"] = repeats
    snapshot["cells"].update(
        {cell_id: result.as_payload() for cell_id, result in results.items()}
    )
    snapshot["cells"] = dict(sorted(snapshot["cells"].items()))
    verdicts_path = directory / VERDICTS_FILE
    verdicts_path.write_text(json.dumps(snapshot, indent=2) + "\n")
    written.append(verdicts_path)

    if cells is None:
        strategies_seen = {r.cell.strategy_id for r in results.values()}
        cells = [
            cell for cell in golden_cells()
            if cell.strategy_id in strategies_seen
        ]
    for cell in cells:
        path = directory / ladder_filename(cell)
        path.write_text(capture_ladder(cell, seed=seed))
        written.append(path)
    return written
