"""Tor active probing (§7.3).

When the GFW's passive fingerprinting flags a flow as a Tor handshake,
it launches its own probe connection to the suspected bridge; if the
probe confirms Tor, the paper found (contrary to earlier reports that
only the Tor port was blocked) that the *entire IP* becomes unreachable
from China on any port.

In the simulator the probe itself is out-of-band: the scenario builder
wires :attr:`bridge_oracle`, a callable standing in for the prober's own
TCP connection to the bridge, with a realistic confirmation delay.
INTANG defeats this pipeline one step earlier — the fingerprint never
reaches the DPI engine — so the oracle is never consulted.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.netsim.simclock import SimClock

#: Seconds between fingerprint detection and the probe's verdict; real
#: probes arrive within seconds of the triggering flow.
PROBE_DELAY = 2.0


class ActiveProber:
    """Schedules probe connections and blocks confirmed bridge IPs."""

    def __init__(
        self,
        clock: SimClock,
        bridge_oracle: Optional[Callable[[str, int], bool]] = None,
        probe_delay: float = PROBE_DELAY,
    ) -> None:
        self.clock = clock
        self.bridge_oracle = bridge_oracle or (lambda ip, port: False)
        self.probe_delay = probe_delay
        self.probes: List[Tuple[float, str, int, bool]] = []
        self.confirmed_blocks: List[str] = []

    def schedule_probe(self, device, ip: str, port: int, now: float) -> None:
        """Queue a probe of ``ip:port``; on confirmation, block the IP."""

        def run_probe() -> None:
            confirmed = bool(self.bridge_oracle(ip, port))
            self.probes.append((self.clock.now, ip, port, confirmed))
            if confirmed:
                self.confirmed_blocks.append(ip)
                device.block_ip(ip)

        self.clock.schedule(self.probe_delay, run_probe)
