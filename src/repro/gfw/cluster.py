"""Shared state for co-located GFW devices.

§2.1/§8: type-1 and type-2 devices "usually exist together" at the same
tap point.  Operational effects that belong to the installation rather
than a single box live here:

- the **overload miss** draw: when the cluster is overloaded it fails to
  act on a flow — all devices at the tap miss together, which is why the
  paper's no-strategy success rate is ~2.8 % rather than the product of
  independent per-device misses;
- a trial nonce experiments can bump so per-flow draws refresh between
  repetitions of the same four-tuple.
"""

from __future__ import annotations

import random
from typing import Dict, Tuple

from repro.rngledger import as_trial_random
from repro.gfw.flow import ConnKey


class GFWCluster:
    """One censoring installation shared by the devices on a path."""

    def __init__(self, rng: random.Random, miss_probability: float = 0.028) -> None:
        # Coerced so the per-flow miss draw and the devices' shared NB3
        # coins can use the recordable ``coin`` helper; plain-RNG callers
        # (the fleet engine, tests) keep identical draw values.
        self.rng = as_trial_random(rng)
        self.miss_probability = miss_probability
        self._missed_flows: Dict[Tuple[ConnKey, int], bool] = {}
        self.trial_nonce = 0

    def flow_missed(self, key: ConnKey) -> bool:
        """Whether the whole cluster overlooks this flow (drawn once)."""
        cache_key = (key, self.trial_nonce)
        if cache_key not in self._missed_flows:
            self._missed_flows[cache_key] = self.rng.coin(self.miss_probability)
        return self._missed_flows[cache_key]

    def new_trial(self) -> None:
        """Refresh per-flow draws (call between experiment repetitions)."""
        self.trial_nonce += 1
        self._missed_flows.clear()
