"""UDP DNS poisoning (§2.1).

"For a UDP DNS request with a blacklisted domain, it simply injects a
fake DNS response; for a TCP DNS request, it turns to the connection
reset mechanism."  The TCP side is handled by the normal DPI/reset path;
this component handles the UDP side: it watches client→resolver queries
and injects a spoofed response carrying a bogus address.  Because the
device sits closer to the client than the resolver does, the forgery
almost always wins the race — which is why INTANG converts DNS to TCP
rather than trying to outrun it.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.netstack.packet import IPPacket, UDPDatagram
from repro.netsim.path import Direction

#: The bogus addresses observed in poisoned answers rotate through a
#: small pool; one representative is enough for the simulation.
POISONED_ANSWER_IP = "31.13.94.41"

DNS_PORT = 53


class DNSPoisoner:
    """Injects forged UDP DNS answers for blacklisted query names."""

    def __init__(self) -> None:
        self.poisonings: List[Tuple[float, str]] = []

    def handle(self, device, packet: IPPacket, direction: Direction, now: float) -> None:
        """Inspect one observed UDP packet; maybe inject a forged answer."""
        datagram = packet.udp
        if datagram.dst_port != DNS_PORT:
            return
        qname = self._query_name(datagram.payload)
        if qname is None:
            return
        if not device.config.rules.domain_is_poisoned(qname):
            return
        forged = self._forge_response(packet, datagram, qname)
        if forged is None:
            return
        self.poisonings.append((now, qname))
        forged.meta["origin"] = "gfw-dns-poison"
        device._inject(forged)

    @staticmethod
    def _query_name(payload: bytes) -> Optional[str]:
        from repro.apps.dns import extract_query_name

        try:
            return extract_query_name(payload)
        except ValueError:
            return None

    @staticmethod
    def _forge_response(
        packet: IPPacket, datagram: UDPDatagram, qname: str
    ) -> Optional[IPPacket]:
        from repro.apps.dns import encode_response, parse_message

        try:
            message = parse_message(datagram.payload)
        except ValueError:
            return None
        response_payload = encode_response(
            qid=message.qid, qname=qname, address=POISONED_ANSWER_IP
        )
        reply = UDPDatagram(
            src_port=datagram.dst_port,
            dst_port=datagram.src_port,
            payload=response_payload,
        )
        return IPPacket(src=packet.dst, dst=packet.src, payload=reply, ttl=64)
