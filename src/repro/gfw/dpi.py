"""The GFW's deep-packet-inspection engine over reassembled streams.

One :class:`StreamInspector` instance watches the *monitored* direction of
one flow (what the device believes is client→server).  It receives bytes
in stream order from the device's reassembly buffer — so splitting a
keyword across segments does not evade it (§4, hypothesis (2) ruled out:
the GFW reassembles before matching).

Protocol dispatch is heuristic, as on the real GFW:

- a stream starting with an HTTP method is matched against the keyword
  list (request line and headers alike);
- a stream that parses as DNS-over-TCP (2-byte length prefix) has its
  query name checked against the poisoned-domain list;
- Tor and OpenVPN sessions are recognized by their handshake preambles.

The engine is *streaming*: protocol classification reads only the first
few stream bytes (once — the prefix never changes), and keyword matching
advances a shared Aho–Corasick automaton (:mod:`repro.gfw.automaton`)
incrementally per ``feed``.  A flow therefore costs O(total bytes) to
inspect regardless of segmentation, where the historical engine
re-scanned its whole buffered stream on every in-order segment
(O(bytes²) on 1-byte segmentations).  The matcher cursor is carried
across the inspect-window trim, so a keyword straddling the window
boundary is still caught; the retired engine is preserved below as
:class:`RescanInspector` and serves as the parity oracle for the
property tests and the ``bench_dpi`` throughput comparison.
"""

from __future__ import annotations

from typing import Optional, Set

from repro.gfw.automaton import KeywordAutomaton, SMALL_SEGMENT, compile_keywords
from repro.gfw.rules import Detection, RuleSet

_HTTP_METHODS = (b"GET ", b"POST ", b"HEAD ", b"PUT ", b"DELETE ", b"OPTIONS ")
_HTTP_PREFIXES = _HTTP_METHODS + (b"HTTP/",)
#: Maximum bytes of a stream retained for inspection; the real GFW also
#: bounds its reassembly effort (§2.1: "costly to track ... and match").
_INSPECT_WINDOW = 8192

# Stream classes, latched from the (immutable) stream prefix.
_CLASS_UNDECIDED = 0  # too few prefix bytes to rule everything out
_CLASS_HTTP_REQUEST = 1
_CLASS_HTTP_RESPONSE = 2
_CLASS_OTHER = 3  # DNS-over-TCP candidate, preamble candidate, or noise

# DNS-over-TCP parse progress (monotone; parsing never restarts).
_DNS_COLLECTING = 0  # still waiting for the 2-byte frame + message
_DNS_DONE = 1  # parsed, unparseable, or framing ruled the stream out


def _classification_prefix_len() -> int:
    from repro.apps.tor import TOR_HANDSHAKE_PREAMBLE
    from repro.apps.vpn import OPENVPN_TCP_PREAMBLE

    return max(
        len(TOR_HANDSHAKE_PREAMBLE),
        len(OPENVPN_TCP_PREAMBLE),
        max(len(m) for m in _HTTP_PREFIXES),
    )


class StreamInspector:
    """Accumulates one direction of a flow and applies the rule set.

    Per-flow state is a handful of small cursors — the first ~44 stream
    bytes for protocol classification, the automaton's integer state
    plus the set of keyword indices matched so far, and (only while the
    stream might be DNS-over-TCP) the framed message bytes.  Nothing is
    ever re-scanned, and nothing here grows with the stream.
    """

    def __init__(self, rules: RuleSet) -> None:
        self.rules = rules
        self.automaton: KeywordAutomaton = compile_keywords(rules.keywords)
        self.detection: Optional[Detection] = None
        self.bytes_inspected = 0
        self._prefix = bytearray()
        self._prefix_needed = _classification_prefix_len()
        self._class = _CLASS_UNDECIDED
        #: Latched once the class says keyword hits are (ir)relevant.
        self._scan_on = True
        self._report_keywords = False
        #: The matcher cursor is one of two interchangeable forms: an
        #: automaton state (``_match_state``, used while stepping small
        #: segments per byte) or the raw last ``max_keyword_len - 1``
        #: stream bytes (``_tail``, used by the vectorized window scan —
        #: enough to cover any keyword straddling a segment boundary).
        #: Conversions happen only when the segment-size regime changes.
        self._match_state = 0
        self._tail: Optional[bytes] = None
        #: Indices (into ``rules.keywords``) matched anywhere in the
        #: stream so far.  Empty keywords match everywhere, exactly as
        #: they did under substring rescan.
        self._found: Set[int] = set(self.automaton.matches_empty)
        self._dns_phase = _DNS_COLLECTING
        self._dns_detection: Optional[Detection] = None
        #: DNS-over-TCP candidate bytes (bounded by the inspect window).
        self._buffer = bytearray()

    # -- resource accounting (GFWDevice.stats) --------------------------
    @property
    def state_bytes(self) -> int:
        """Approximate per-flow matcher footprint (excludes the shared
        automaton, which is compiled once per rule set per process)."""
        return (
            len(self._prefix)
            + len(self._buffer)
            + len(self._tail or b"")
            + 8 * len(self._found)
            + 64
        )

    def feed(self, data: bytes) -> Optional[Detection]:
        """Append in-order stream bytes; return a Detection on first hit.

        After a detection the inspector latches (continues returning the
        same detection) — the device's blacklist takes over from there.
        """
        if self.detection is not None:
            return self.detection
        if not data:
            return None
        self.bytes_inspected += len(data)
        if len(self._prefix) < self._prefix_needed:
            detection = self._ingest_prefix(data)
            if detection is not None:
                self.detection = detection
                return detection
        if self._scan_on:
            automaton = self.automaton
            if automaton.max_keyword_len:
                lowered = data.lower()
                if len(lowered) <= SMALL_SEGMENT:
                    if self._tail is not None:
                        # Fold the carried window tail back into an
                        # automaton state (re-found matches dedupe away).
                        self._match_state = automaton.advance(
                            0, self._tail, self._found
                        )
                        self._tail = None
                    self._match_state = automaton.advance(
                        self._match_state, lowered, self._found
                    )
                else:
                    tail = self._tail
                    if tail is None:
                        tail = automaton.state_string(self._match_state)
                    window = tail + lowered
                    automaton.scan_window(window, self._found)
                    keep = automaton.max_keyword_len - 1
                    self._tail = window[len(window) - keep :] if keep else b""
            if self._found and self._report_keywords:
                self.detection = self._keyword_detection()
                return self.detection
        if self._dns_phase == _DNS_COLLECTING:
            self._collect_dns(data)
            if self._dns_detection is not None:
                self.detection = self._dns_detection
        return self.detection

    # ------------------------------------------------------------------
    # Prefix ingestion: classification and preamble fingerprints.  The
    # stream prefix is immutable once written, so every outcome latches.
    # ------------------------------------------------------------------
    def _ingest_prefix(self, data: bytes) -> Optional[Detection]:
        from repro.apps.tor import TOR_HANDSHAKE_PREAMBLE
        from repro.apps.vpn import OPENVPN_TCP_PREAMBLE

        self._prefix.extend(data[: self._prefix_needed - len(self._prefix)])
        prefix = bytes(self._prefix)
        rules = self.rules
        if rules.detect_tor and prefix.startswith(TOR_HANDSHAKE_PREAMBLE):
            return Detection("tor", "handshake-fingerprint")
        if rules.detect_vpn and prefix.startswith(OPENVPN_TCP_PREAMBLE):
            return Detection("vpn", "openvpn-tcp-fingerprint")
        if self._class == _CLASS_UNDECIDED:
            self._classify(prefix)
        return None

    def _classify(self, prefix: bytes) -> None:
        if prefix.startswith(_HTTP_METHODS):
            self._class = _CLASS_HTTP_REQUEST
            self._report_keywords = True
            self._drop_dns()
        elif prefix.startswith(b"HTTP/"):
            # Response streams keep falling through to the DNS parse
            # attempt when response censorship is off, exactly like the
            # rescan engine (whose huge bogus frame "length" made that
            # attempt a no-op there too).
            self._class = _CLASS_HTTP_RESPONSE
            if self.rules.censor_http_responses:
                self._report_keywords = True
                self._drop_dns()
            else:
                self._scan_on = False
        elif not any(p.startswith(prefix) for p in _HTTP_PREFIXES):
            # No further bytes can turn this stream into HTTP.
            self._class = _CLASS_OTHER
            self._scan_on = False

    def _drop_dns(self) -> None:
        self._dns_phase = _DNS_DONE
        del self._buffer[:]

    # ------------------------------------------------------------------
    # DNS-over-TCP: buffer the framed message once, parse it once.
    # ------------------------------------------------------------------
    def _collect_dns(self, data: bytes) -> None:
        self._buffer.extend(data)
        if len(self._buffer) < 2:
            return
        length = int.from_bytes(self._buffer[:2], "big")
        if length == 0 or 2 + length > _INSPECT_WINDOW:
            # A zero length never parses, and an over-window message
            # could never sit fully framed inside the historical inspect
            # buffer either.  Stop buffering this stream.
            self._drop_dns()
            return
        if len(self._buffer) < 2 + length:
            return
        from repro.apps.dns import extract_query_name

        try:
            domain = extract_query_name(bytes(self._buffer[2 : 2 + length]))
        except ValueError:
            domain = None
        if domain is not None and self.rules.domain_is_poisoned(domain):
            self._dns_detection = Detection("dns-domain", domain)
        self._drop_dns()

    # ------------------------------------------------------------------
    def _keyword_detection(self) -> Detection:
        """Build the detection for the lowest-index matched keyword —
        the rescan engine's priority (it walked the keyword list in
        order over the whole buffer)."""
        keyword = self.rules.keywords[min(self._found)]
        detail = keyword.decode("ascii", "replace")
        if self._class == _CLASS_HTTP_RESPONSE:
            return Detection("http-response-keyword", detail)
        return Detection("http-keyword", detail)


class RescanInspector:
    """The retired full-rescan engine, kept as the parity oracle.

    This is the pre-streaming implementation verbatim: buffer the stream
    (trimmed to the inspect window) and re-run every protocol test and
    substring search over the whole buffer on each ``feed``.  Tests
    assert the streaming engine's detections are byte-identical on
    segmentations that fit the window, and ``benchmarks/bench_dpi.py``
    measures the throughput gap.  Its one known defect — a keyword
    straddling the window trim is silently lost — is intentionally
    preserved here (and fixed in :class:`StreamInspector`, whose matcher
    cursor survives the trim).
    """

    def __init__(self, rules: RuleSet) -> None:
        self.rules = rules
        self._buffer = bytearray()
        self.detection: Optional[Detection] = None
        self.bytes_inspected = 0

    def feed(self, data: bytes) -> Optional[Detection]:
        if self.detection is not None:
            return self.detection
        if not data:
            return None
        self._buffer.extend(data)
        self.bytes_inspected += len(data)
        if len(self._buffer) > _INSPECT_WINDOW:
            del self._buffer[: len(self._buffer) - _INSPECT_WINDOW]
        self.detection = self._inspect(bytes(self._buffer))
        return self.detection

    # ------------------------------------------------------------------
    def _inspect(self, stream: bytes) -> Optional[Detection]:
        detection = self._inspect_tor_vpn(stream)
        if detection is not None:
            return detection
        if stream.startswith(_HTTP_METHODS):
            keyword = self.rules.match_keyword(stream)
            if keyword is not None:
                return Detection("http-keyword", keyword.decode("ascii", "replace"))
            return None
        if stream.startswith(b"HTTP/") and self.rules.censor_http_responses:
            keyword = self.rules.match_keyword(stream)
            if keyword is not None:
                return Detection(
                    "http-response-keyword", keyword.decode("ascii", "replace")
                )
            return None
        domain = self._dns_tcp_query_name(stream)
        if domain is not None and self.rules.domain_is_poisoned(domain):
            return Detection("dns-domain", domain)
        return None

    def _inspect_tor_vpn(self, stream: bytes) -> Optional[Detection]:
        # Imported lazily to keep the substrate packages decoupled at
        # import time (apps also import nothing from gfw).
        from repro.apps.tor import TOR_HANDSHAKE_PREAMBLE
        from repro.apps.vpn import OPENVPN_TCP_PREAMBLE

        if self.rules.detect_tor and stream.startswith(TOR_HANDSHAKE_PREAMBLE):
            return Detection("tor", "handshake-fingerprint")
        if self.rules.detect_vpn and stream.startswith(OPENVPN_TCP_PREAMBLE):
            return Detection("vpn", "openvpn-tcp-fingerprint")
        return None

    def _dns_tcp_query_name(self, stream: bytes) -> Optional[str]:
        from repro.apps.dns import extract_query_name

        if len(stream) < 2:
            return None
        length = int.from_bytes(stream[:2], "big")
        if length == 0 or len(stream) < 2 + length:
            return None
        try:
            return extract_query_name(stream[2 : 2 + length])
        except ValueError:
            return None
