"""The GFW's deep-packet-inspection engine over reassembled streams.

One :class:`StreamInspector` instance watches the *monitored* direction of
one flow (what the device believes is client→server).  It receives bytes
in stream order from the device's reassembly buffer — so splitting a
keyword across segments does not evade it (§4, hypothesis (2) ruled out:
the GFW reassembles before matching).

Protocol dispatch is heuristic, as on the real GFW:

- a stream starting with an HTTP method is matched against the keyword
  list (request line and headers alike);
- a stream that parses as DNS-over-TCP (2-byte length prefix) has its
  query name checked against the poisoned-domain list;
- Tor and OpenVPN sessions are recognized by their handshake preambles.
"""

from __future__ import annotations

from typing import Optional

from repro.gfw.rules import Detection, RuleSet

_HTTP_METHODS = (b"GET ", b"POST ", b"HEAD ", b"PUT ", b"DELETE ", b"OPTIONS ")
#: Maximum bytes of a stream retained for inspection; the real GFW also
#: bounds its reassembly effort (§2.1: "costly to track ... and match").
_INSPECT_WINDOW = 8192


class StreamInspector:
    """Accumulates one direction of a flow and applies the rule set."""

    def __init__(self, rules: RuleSet) -> None:
        self.rules = rules
        self._buffer = bytearray()
        self.detection: Optional[Detection] = None
        self.bytes_inspected = 0

    def feed(self, data: bytes) -> Optional[Detection]:
        """Append in-order stream bytes; return a Detection on first hit.

        After a detection the inspector latches (continues returning the
        same detection) — the device's blacklist takes over from there.
        """
        if self.detection is not None:
            return self.detection
        if not data:
            return None
        self._buffer.extend(data)
        self.bytes_inspected += len(data)
        if len(self._buffer) > _INSPECT_WINDOW:
            del self._buffer[: len(self._buffer) - _INSPECT_WINDOW]
        self.detection = self._inspect(bytes(self._buffer))
        return self.detection

    # ------------------------------------------------------------------
    def _inspect(self, stream: bytes) -> Optional[Detection]:
        detection = self._inspect_tor_vpn(stream)
        if detection is not None:
            return detection
        if self._looks_like_http_request(stream):
            keyword = self.rules.match_keyword(stream)
            if keyword is not None:
                return Detection("http-keyword", keyword.decode("ascii", "replace"))
            return None
        if stream.startswith(b"HTTP/") and self.rules.censor_http_responses:
            keyword = self.rules.match_keyword(stream)
            if keyword is not None:
                return Detection(
                    "http-response-keyword", keyword.decode("ascii", "replace")
                )
            return None
        domain = self._dns_tcp_query_name(stream)
        if domain is not None and self.rules.domain_is_poisoned(domain):
            return Detection("dns-domain", domain)
        return None

    def _inspect_tor_vpn(self, stream: bytes) -> Optional[Detection]:
        # Imported lazily to keep the substrate packages decoupled at
        # import time (apps also import nothing from gfw).
        from repro.apps.tor import TOR_HANDSHAKE_PREAMBLE
        from repro.apps.vpn import OPENVPN_TCP_PREAMBLE

        if self.rules.detect_tor and stream.startswith(TOR_HANDSHAKE_PREAMBLE):
            return Detection("tor", "handshake-fingerprint")
        if self.rules.detect_vpn and stream.startswith(OPENVPN_TCP_PREAMBLE):
            return Detection("vpn", "openvpn-tcp-fingerprint")
        return None

    @staticmethod
    def _looks_like_http_request(stream: bytes) -> bool:
        return stream.startswith(_HTTP_METHODS)

    def _dns_tcp_query_name(self, stream: bytes) -> Optional[str]:
        from repro.apps.dns import extract_query_name

        if len(stream) < 2:
            return None
        length = int.from_bytes(stream[:2], "big")
        if length == 0 or len(stream) < 2 + length:
            return None
        try:
            return extract_query_name(stream[2 : 2 + length])
        except ValueError:
            return None
