"""The 90-second host-pair blacklist (§2.1).

After a detection, the GFW "sustains the disruption for a certain period
(90 seconds as per our measurements)": during that window any SYN between
the two hosts triggers a forged SYN/ACK with a wrong sequence number
(type-2 devices only) and any other packet triggers forged resets.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.telemetry.metrics import get_registry

HostPair = Tuple[str, str]

#: Entries that aged out of the window (read-side lazy expiry).  Beside
#: ``total_blacklistings`` this gives the Ensafi-style blacklist-churn
#: view: a re-match after expiry simply blacklists the pair again.
_METRIC_TTL_EXPIRED = get_registry().counter("blacklist.ttl_expired")

DEFAULT_BLACKLIST_DURATION = 90.0


class Blacklist:
    """Expiring set of (host, host) pairs."""

    def __init__(self, duration: float = DEFAULT_BLACKLIST_DURATION) -> None:
        self.duration = duration
        self._expiry: Dict[HostPair, float] = {}
        self.total_blacklistings = 0
        self.total_expirations = 0

    @staticmethod
    def _key(host_a: str, host_b: str) -> HostPair:
        return (host_a, host_b) if host_a <= host_b else (host_b, host_a)

    def add(self, host_a: str, host_b: str, now: float) -> None:
        self._expiry[self._key(host_a, host_b)] = now + self.duration
        self.total_blacklistings += 1

    def contains(self, host_a: str, host_b: str, now: float) -> bool:
        key = self._key(host_a, host_b)
        expiry = self._expiry.get(key)
        if expiry is None:
            return False
        if now >= expiry:
            del self._expiry[key]
            self.total_expirations += 1
            _METRIC_TTL_EXPIRED.inc()
            return False
        return True

    def remaining(self, host_a: str, host_b: str, now: float) -> float:
        """Seconds of blacklist left for the pair (0 when not listed)."""
        key = self._key(host_a, host_b)
        expiry = self._expiry.get(key)
        if expiry is None:
            return 0.0
        return max(0.0, expiry - now)

    def sweep(self, now: float) -> int:
        """Expire every stale entry now; returns how many aged out.

        ``contains`` expires lazily on read, so a pair whose connection
        died never materializes its expiry.  Measurement code (the
        inconsistency sweep's blacklist-churn timeline) calls this at a
        known sim time to account for those.
        """
        stale = [key for key, expiry in self._expiry.items() if now >= expiry]
        for key in stale:
            del self._expiry[key]
        self.total_expirations += len(stale)
        if stale:
            _METRIC_TTL_EXPIRED.inc(len(stale))
        return len(stale)

    def clear(self) -> None:
        self._expiry.clear()

    def __len__(self) -> int:
        return len(self._expiry)
